package seadopt

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// TestOptimizeParetoDeterministicAcrossParallelism: the public frontier —
// down to its wire JSON bytes — is identical at Parallelism 1, 4 and
// NumCPU, and ordered by ascending power.
func TestOptimizeParetoDeterministicAcrossParallelism(t *testing.T) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) string {
		frontier, err := sys.OptimizePareto(OptimizeOptions{
			DeadlineSec:      MPEG2Deadline,
			StreamIterations: MPEG2Frames,
			SearchMoves:      150,
			Seed:             2010,
			Parallelism:      par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(frontier) == 0 {
			t.Fatal("empty frontier")
		}
		data, err := json.Marshal(frontier)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	ref := run(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := run(par); got != ref {
			t.Errorf("frontier wire bytes diverged at parallelism %d", par)
		}
	}
}

// TestOptimizeParetoObjectives: the objectives option narrows the frontier
// and unknown names are rejected at parse time.
func TestOptimizeParetoObjectives(t *testing.T) {
	obj, err := ParseParetoObjectives("power,gamma")
	if err != nil {
		t.Fatal(err)
	}
	if obj != ObjectivePower|ObjectiveGamma {
		t.Fatalf("ParseParetoObjectives = %v", obj)
	}
	if _, err := ParseParetoObjectives("power,latency"); err == nil {
		t.Error("unknown objective accepted")
	}

	sys, err := NewARM7System(Fig8(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := OptimizeOptions{DeadlineSec: 0.075, SearchMoves: 120, Seed: 2010}
	full, err := sys.OptimizePareto(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Objectives = ObjectivePower
	powerOnly, err := sys.OptimizePareto(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(powerOnly) > len(full) {
		t.Errorf("power-only frontier (%d) larger than full frontier (%d)", len(powerOnly), len(full))
	}
	// The scalar optimum's power is the frontier's minimum power.
	best, err := sys.Optimize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if powerOnly[0].Eval.PowerW > best.Eval.PowerW {
		t.Errorf("frontier min power %v exceeds scalar best %v", powerOnly[0].Eval.PowerW, best.Eval.PowerW)
	}
}

// TestOptimizeParetoCancellation: a cancelled context aborts the Pareto
// exploration promptly.
func TestOptimizeParetoCancellation(t *testing.T) {
	g, err := RandomGraph(DefaultRandomGraphConfig(60), 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewARM7System(g, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := sys.OptimizeParetoContext(ctx, OptimizeOptions{
		DeadlineSec: RandomGraphDeadline(60),
		SearchMoves: 100000,
		Seed:        1,
	}); err == nil {
		t.Fatal("cancelled exploration returned no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
