package seadopt

import (
	"context"
	"fmt"
	"strings"

	"seadopt/internal/anneal"
	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/metrics"
	"seadopt/internal/pareto"
	"seadopt/internal/registers"
	"seadopt/internal/sched"
	"seadopt/internal/sim"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// Re-exported model types. The implementation lives in internal packages;
// these aliases are the supported public names.
type (
	// Graph is an application task graph (DAG with computation costs,
	// communication costs and per-task register footprints).
	Graph = taskgraph.Graph
	// GraphBuilder assembles custom Graphs.
	GraphBuilder = taskgraph.Builder
	// TaskID indexes a task within its graph.
	TaskID = taskgraph.TaskID
	// Platform is an MPSoC configuration: processor types with per-core DVS
	// level tables. Homogeneous (the paper's C identical ARM7 cores) and
	// heterogeneous platforms share this type.
	Platform = arch.Platform
	// ProcType is one processor type of a heterogeneous platform: a named
	// DVS level table.
	ProcType = arch.ProcType
	// Level is one DVS operating point (scaling coefficient, f, Vdd).
	Level = arch.Level
	// Interconnect is a contended communication fabric: a shared bus or
	// XY-routed 2D mesh with finite link bandwidth and per-hop latency.
	// Platforms built without one use the paper's ideal fabric.
	Interconnect = arch.Interconnect
	// Topology names an interconnect topology (TopologyBus, TopologyMesh).
	Topology = arch.Topology
	// PlatformOption customizes platform construction (WithInterconnect).
	PlatformOption = arch.Option
	// Mapping assigns each task to a core.
	Mapping = sched.Mapping
	// Schedule is a list-scheduled execution of a mapping.
	Schedule = sched.Schedule
	// Evaluation is the analytic assessment of one design point.
	Evaluation = metrics.Evaluation
	// SERModel maps supply voltage to soft error rate.
	SERModel = faults.SERModel
	// SimResult is a cycle-level simulation outcome.
	SimResult = sim.Result
	// InjectionResult is a fault-injection campaign outcome.
	InjectionResult = faults.Result
	// RandomGraphConfig parameterizes the random workload generator.
	RandomGraphConfig = taskgraph.RandomConfig
	// RegisterInventory catalogues an application's register resources.
	RegisterInventory = registers.Inventory
	// RegisterSet is a set of register IDs (a task's footprint).
	RegisterSet = registers.Set
)

// Workload constructors and paper constants.
var (
	// MPEG2 returns the 11-task MPEG-2 decoder graph of Fig. 2.
	MPEG2 = taskgraph.MPEG2
	// Fig8 returns the paper's 6-task worked example.
	Fig8 = taskgraph.Fig8
	// NewGraphBuilder starts a custom graph over a register inventory.
	NewGraphBuilder = taskgraph.NewBuilder
	// NewRegisterInventory returns an empty register inventory.
	NewRegisterInventory = registers.NewInventory
	// RandomGraph draws a paper-parameterized random task graph.
	RandomGraph = taskgraph.Random
	// DefaultRandomGraphConfig is the §V random-workload parameterization.
	DefaultRandomGraphConfig = taskgraph.DefaultRandomConfig
	// RandomGraphDeadline is the paper's 1000·N/2 ms deadline, in seconds.
	RandomGraphDeadline = taskgraph.RandomDeadline
)

const (
	// MPEG2Deadline is the tennis-stream real-time constraint in seconds.
	MPEG2Deadline = taskgraph.MPEG2Deadline
	// MPEG2Frames is the stream length in frames.
	MPEG2Frames = taskgraph.MPEG2Frames
	// DefaultSER is the paper's soft error rate (1e-9 SEU/bit/cycle).
	DefaultSER = faults.DefaultSER
)

// System bundles an application with the platform it is being designed for.
type System struct {
	Graph    *Graph
	Platform *Platform
}

// NewARM7System builds a system on an ARM7 MPSoC with the given core count
// and DVS level-table size (2, 3 or 4 — Table I and the Fig. 11 variants).
func NewARM7System(g *Graph, cores, levels int) (*System, error) {
	if g == nil {
		return nil, fmt.Errorf("seadopt: nil graph")
	}
	table, err := arch.ARM7LevelsFor(levels)
	if err != nil {
		return nil, err
	}
	p, err := arch.NewPlatform(cores, table)
	if err != nil {
		return nil, err
	}
	return &System{Graph: g, Platform: p}, nil
}

// NewSystem builds a system on a custom platform.
func NewSystem(g *Graph, p *Platform) (*System, error) {
	if g == nil || p == nil {
		return nil, fmt.Errorf("seadopt: nil graph or platform")
	}
	return &System{Graph: g, Platform: p}, nil
}

// NewHeterogeneousPlatform builds a mixed MPSoC: core i is an instance of
// types[coreTypes[i]], each type carrying its own DVS level table. The
// exploration engine enumerates the resulting mixed-radix scaling space —
// cores sharing a physical table are treated as interchangeable, exactly
// like the paper's identical-core argument — and every determinism and
// strategy-equivalence guarantee of Optimize/OptimizePareto carries over.
// Platforms whose cores all share one table behave identically to
// NewARM7System/NewCustomPlatform ones. Options add fabric and calibration
// overrides; WithInterconnect puts the cores behind a contended bus or NoC.
func NewHeterogeneousPlatform(types []ProcType, coreTypes []int, opts ...PlatformOption) (*Platform, error) {
	return arch.NewHeterogeneousPlatform(types, coreTypes, opts...)
}

// Interconnect topologies, re-exported for WithInterconnect.
const (
	// TopologyBus is a single shared link every transfer serializes on.
	TopologyBus = arch.TopologyBus
	// TopologyMesh is an XY-routed 2D mesh NoC with per-direction links.
	TopologyMesh = arch.TopologyMesh
)

// WithInterconnect declares the platform's communication fabric. With it,
// every cross-core edge rides the interconnect: a message of
// cycles×BitsPerCycle bits holds each link of its route for bits/bandwidth
// seconds after hop-latency staggering, and concurrent transfers sharing a
// link queue deterministically. Scheduler, simulator, analytic bounds and
// the exploration engine all charge the same model, and every byte-identity
// guarantee (parallelism, strategy equivalence, sharding) carries over.
func WithInterconnect(ic Interconnect) PlatformOption {
	return arch.WithInterconnect(ic)
}

// ExploreProgress reports one resolved scaling combination of an
// optimization's design-space exploration; callbacks arrive in enumeration
// order regardless of parallelism. Under the branch-and-bound strategy,
// events with Pruned or Skipped set mark combinations proven irrelevant
// without running the mapper (their Design is nil).
type ExploreProgress = mapping.Progress

// ExploreStrategy selects how the design loop walks the voltage-scaling
// enumeration; see the strategy constants.
type ExploreStrategy = mapping.Strategy

// Exploration telemetry types, re-exported for OptimizeOptions.Stats
// consumers. All are observe-only snapshots: filling them never changes the
// chosen Design or frontier.
type (
	// ExploreStats is the per-run telemetry snapshot — phase clocks,
	// verdict counters, probe-cache and evaluator statistics, incumbent /
	// bound / frontier events, and per-worker busy spans.
	ExploreStats = mapping.ExploreStats
	// ExplorePhaseStats breaks the run into overlapping per-phase busy
	// clocks (bounds precompute, enumeration, probe, mapper, fold).
	ExplorePhaseStats = mapping.PhaseStats
	// ExploreComboStats counts combination verdicts (evaluated / pruned /
	// skipped) and mapper invocations.
	ExploreComboStats = mapping.ComboStats
	// ExploreEvent is one timestamped incumbent / bound-tightening /
	// frontier-admission / prune event.
	ExploreEvent = mapping.ExploreEvent
	// ExploreWorkerStats is one worker's busy time and combination spans.
	ExploreWorkerStats = mapping.WorkerStats
	// EvalStats counts evaluator work (full vs delta re-binds, schedule
	// patches vs rebuilds).
	EvalStats = metrics.EvalStats
)

// Exploration strategies.
const (
	// StrategyBranchAndBound (the default) streams the full enumeration
	// but proves most combinations irrelevant without mapping them:
	// scalings whose admissible best-case makespan misses the deadline are
	// pruned, scalings dominated on nominal power by a resolved feasible
	// incumbent are skipped (including cancelling in-flight work). The
	// chosen Design is byte-identical to StrategyExhaustive.
	StrategyBranchAndBound = mapping.StrategyBranchAndBound
	// StrategyExhaustive maps every combination — the reference behavior
	// the paper tables are regenerated under.
	StrategyExhaustive = mapping.StrategyExhaustive
	// StrategySampled maps only a seed-deterministic random portfolio of
	// OptimizeOptions.SampleBudget combinations. Explicitly approximate:
	// the result is the best design within the sample.
	StrategySampled = mapping.StrategySampled
)

// ParseExploreStrategy resolves a strategy name from a flag or job option
// ("", "bnb", "exhaustive", "sampled", ...).
func ParseExploreStrategy(name string) (ExploreStrategy, error) {
	return mapping.ParseStrategy(name)
}

// ParetoObjectives selects which objective components participate in the
// multi-objective exploration's dominance tests; see the Objective
// constants. The zero value selects all three.
type ParetoObjectives = pareto.Objectives

// The Pareto objective components, all minimized.
const (
	// ObjectivePower is the scaling vector's full-utilization dynamic power
	// (eq. 5 with α ≡ 1) — the quantity the scalar loop minimizes.
	ObjectivePower = pareto.ObjPower
	// ObjectiveMakespan is T_M, the multiprocessor execution time;
	// minimizing it maximizes slack against the deadline.
	ObjectiveMakespan = pareto.ObjMakespan
	// ObjectiveGamma is Γ, the expected number of SEUs experienced (eq. 3)
	// — the paper's soft-error reliability metric.
	ObjectiveGamma = pareto.ObjGamma
)

// ParseParetoObjectives resolves a comma-separated objective list from a
// flag or job option ("power,gamma", "makespan", ...); the empty string
// selects all three objectives.
func ParseParetoObjectives(s string) (ParetoObjectives, error) {
	return pareto.ParseObjectives(s)
}

// OptimizeOptions tunes the design optimization.
type OptimizeOptions struct {
	// SER is the soft error rate per bit per cycle. 0 selects DefaultSER
	// (the paper's 1e-9); any negative value selects a true zero rate
	// (no soft errors, Γ ≡ 0), which the 0-means-default sentinel cannot
	// express.
	SER float64
	// DeadlineSec is the real-time constraint; 0 means unconstrained.
	DeadlineSec float64
	// StreamIterations is the number of stream iterations the task costs
	// cover (MPEG2Frames for the decoder; 0/1 for plain DAG semantics).
	StreamIterations int
	// SearchMoves bounds the per-scaling mapping search (0 = default).
	SearchMoves int
	// Seed makes runs reproducible. Results are identical at any
	// Parallelism for the same Seed.
	Seed int64
	// Parallelism bounds the worker pool exploring scaling combinations:
	// 0 selects GOMAXPROCS, 1 runs sequentially.
	Parallelism int
	// Progress, when non-nil, is called once per resolved scaling
	// combination, in enumeration order. It runs on the optimizing
	// goroutine; keep it fast.
	Progress func(ExploreProgress)
	// Strategy selects the exploration walk: "" or StrategyBranchAndBound
	// (default; provably the same design as exhaustive, much faster on
	// large platforms), StrategyExhaustive, or StrategySampled
	// (approximate).
	Strategy ExploreStrategy
	// SampleBudget bounds StrategySampled's portfolio size (0 selects the
	// engine default). Ignored by the exact strategies.
	SampleBudget int
	// Ranked makes StrategyBranchAndBound locate its first feasible
	// incumbent by walking combinations in ascending nominal power before
	// the deterministic stream starts, so dominance pruning is active from
	// the first combination. The chosen design is unchanged (still
	// byte-identical to exhaustive); only wall-clock and the
	// pruned/skipped split differ. Requires StrategyBranchAndBound;
	// ignored by OptimizePareto.
	Ranked bool
	// Objectives selects the objective components of the Pareto
	// exploration's dominance tests (OptimizePareto); 0 selects all three
	// (power, makespan, Γ). Ignored by the scalar optimizations.
	Objectives ParetoObjectives
	// Stats, when non-nil, receives an exploration-telemetry snapshot
	// after the run: per-phase busy clocks, verdict counters, probe-cache
	// and evaluator statistics, incumbent/bound events and per-worker
	// spans. Telemetry is observe-only — the chosen Design/frontier is
	// byte-identical with Stats set or nil.
	Stats *ExploreStats
	// WarmHints warm-starts the scalar branch-and-bound from prior results
	// over the same graph and platform: each hint is a candidate
	// combination index (e.g. a fingerprint-matching earlier run's winner)
	// that is re-validated by this run's own feasibility probe under THIS
	// run's deadline before it may seed the dominance incumbent. The
	// chosen Design is byte-identical to a cold run — stale hints can only
	// cost a probe, never change the answer; like Ranked, only the
	// pruned/skipped split of Progress may differ. Ignored when Ranked is
	// set, under non-BnB strategies, and by OptimizePareto.
	WarmHints []int
	// WarmFrontier warm-starts OptimizePareto's frontier-dominance pruning
	// with a prior run's frontier over the same problem whose options
	// differed at most in Objectives. The returned frontier is
	// byte-identical to a cold run. Ignored by the scalar optimizations.
	WarmFrontier []WarmPoint
	// Reuse shares probe verdicts, the bounds precompute and pooled
	// evaluators across optimizations of the same workload (see
	// ExploreReuse). Nil disables sharing. Results are byte-identical with
	// or without it.
	Reuse *ExploreReuse
}

// WarmPoint is one member of a prior result offered as a warm-start seed:
// combination index plus realized makespan and Γ (power is recomputed by
// the engine).
type WarmPoint = mapping.WarmPoint

// ExploreReuse bundles cross-run shared state — probe trajectory cache,
// bounds precompute, evaluator pool — for explorations over the same graph
// and platform (content-equal) with the same Seed and StreamIterations;
// DeadlineSec, SER and Objectives may vary between runs. Safe for
// concurrent use.
type ExploreReuse = mapping.Reuse

// NewExploreReuse returns an empty reuse bundle.
var NewExploreReuse = mapping.NewReuse

func (o OptimizeOptions) mappingConfig() mapping.Config {
	ser := o.SER
	switch {
	case ser == 0:
		ser = DefaultSER
	case ser < 0:
		ser = 0
	}
	return mapping.Config{
		SER:         faults.NewSERModel(ser),
		DeadlineSec: o.DeadlineSec,
		Iterations:  o.StreamIterations,
		SearchMoves: o.SearchMoves,
		Seed:        o.Seed,
		Parallelism: o.Parallelism,
		Progress:    o.Progress,
		Strategy:    o.Strategy,
		// The facade returns only the chosen design; don't retain one
		// Design per combination on large platforms.
		SampleBudget:      o.SampleBudget,
		Ranked:            o.Ranked,
		Objectives:        o.Objectives,
		DiscardPerScaling: true,
		Reuse:             o.Reuse,
		WarmHints:         o.WarmHints,
		WarmFrontier:      o.WarmFrontier,
	}
}

// telemetry installs a collector into cfg when o.Stats is non-nil and
// returns a snapshot function to run once the exploration finishes. The
// no-op fast path keeps telemetry-off runs allocation-free.
func (o OptimizeOptions) telemetry(cfg *mapping.Config) func() {
	if o.Stats == nil {
		return func() {}
	}
	tel := mapping.NewTelemetry()
	cfg.Telemetry = tel
	return func() { *o.Stats = *tel.Stats() }
}

// Design is an optimized design point.
type Design struct {
	Scaling []int
	Mapping Mapping
	Eval    *Evaluation
}

// Summary renders a human-readable description of the design.
func (d *Design) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scaling %v  P=%.3f mW  R=%.1f kbit  T_M=%.4f s  Γ=%.4g  deadline met: %v\n",
		d.Scaling, d.Eval.PowerW*1e3, float64(d.Eval.TotalRegBits)/1024.0,
		d.Eval.TMSeconds, d.Eval.Gamma, d.Eval.MeetsDeadline)
	coreTasks := d.Mapping.CoreTasks(len(d.Scaling))
	g := d.Eval.Schedule.Graph
	for c, tasks := range coreTasks {
		names := make([]string, len(tasks))
		for i, t := range tasks {
			names[i] = g.Task(t).Name
		}
		fmt.Fprintf(&sb, "  core %d (s=%d): %s\n", c, d.Scaling[c], strings.Join(names, ", "))
	}
	return sb.String()
}

// Gantt renders the design's schedule as an ASCII chart.
func (d *Design) Gantt(width int) string { return d.Eval.Schedule.Gantt(width) }

// Optimize runs the paper's full design loop (Fig. 4): voltage-scaling
// enumeration with the proposed soft error-aware task mapper, returning the
// deadline-meeting design with minimum power, tie-broken by minimum Γ.
// Scaling combinations are explored concurrently under
// OptimizeOptions.Parallelism, streamed (never materialized) and — under
// the default branch-and-bound strategy — pruned wherever an admissible
// bound proves a combination irrelevant; the result is identical at any
// parallelism and, for the exact strategies, at any strategy.
func (s *System) Optimize(opts OptimizeOptions) (*Design, error) {
	return s.OptimizeContext(context.Background(), opts)
}

// OptimizeContext is Optimize with cancellation: when ctx is cancelled the
// exploration stops promptly and returns ctx.Err().
func (s *System) OptimizeContext(ctx context.Context, opts OptimizeOptions) (*Design, error) {
	cfg := opts.mappingConfig()
	snap := opts.telemetry(&cfg)
	best, _, err := mapping.ExploreContext(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg)
	if err != nil {
		return nil, err
	}
	snap()
	return &Design{Scaling: best.Scaling, Mapping: best.Mapping, Eval: best.Eval}, nil
}

// OptimizePareto runs the multi-objective design loop: instead of
// collapsing the exploration to the single minimum-power design, it keeps
// the whole trade-off surface the paper's figures plot — the Pareto
// frontier of deadline-feasible designs over OptimizeOptions.Objectives
// (nominal power, T_M and Γ by default). The frontier is returned ordered
// ascending by the active objectives in canonical order — power, then T_M,
// then Γ, skipping excluded components — tie-broken by enumeration index
// (so with the default objectives, frontier[0] is the minimum-power
// member), and is byte-identical at any Parallelism and across the exact
// strategies:
// branch-and-bound prunes combinations the admissible makespan bound proves
// infeasible and skips combinations whose objective lower bound is
// dominated by a frontier member, and provably returns the exhaustive
// frontier. When no design meets the deadline, the frontier degenerates to
// the scalar loop's single "least infeasible" design.
func (s *System) OptimizePareto(opts OptimizeOptions) ([]*Design, error) {
	return s.OptimizeParetoContext(context.Background(), opts)
}

// OptimizeParetoContext is OptimizePareto with cancellation: when ctx is
// cancelled the exploration stops promptly and returns ctx.Err().
func (s *System) OptimizeParetoContext(ctx context.Context, opts OptimizeOptions) ([]*Design, error) {
	cfg := opts.mappingConfig()
	snap := opts.telemetry(&cfg)
	frontier, err := mapping.ExploreParetoContext(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg)
	if err != nil {
		return nil, err
	}
	snap()
	out := make([]*Design, len(frontier))
	for i, d := range frontier {
		out[i] = &Design{Scaling: d.Scaling, Mapping: d.Mapping, Eval: d.Eval}
	}
	return out, nil
}

// Distributed sharded exploration: the combination enumeration partitions
// into contiguous rank ranges explored by peer workers (in-process,
// sibling processes, or HTTP peers), with cross-shard bound facts keeping
// remote pruning tight. The merged Design/frontier and Progress stream
// are byte-identical to the single-node Optimize/OptimizePareto run.
type (
	// ShardRange is one contiguous [Lo,Hi) slice of the enumeration.
	ShardRange = mapping.ShardRange
	// ShardFact is one cross-shard bound tightening.
	ShardFact = mapping.Fact
	// ShardFactBoard is the coordinator's fact bus.
	ShardFactBoard = mapping.FactBoard
	// ShardRequest asks a worker to explore one range.
	ShardRequest = mapping.ShardRequest
	// ShardResult is a worker's per-combination record stream.
	ShardResult = mapping.ShardResult
	// ShardRunner executes one shard request wherever the shard lives.
	ShardRunner = mapping.ShardRunner
)

// NewShardFactBoard returns an empty fact bus for a coordinator run.
var NewShardFactBoard = mapping.NewFactBoard

// ShardRanges splits an enumeration of total combinations into n
// contiguous near-equal ranges.
var ShardRanges = mapping.ShardRanges

// RunShard is the worker side of the distributed exploration: it explores
// req.Range of this system under opts, publishing bound facts to (and
// pruning against) board, and returns the record stream the coordinator
// merges. Progress/Stats callbacks are coordinator concerns and are
// ignored here.
func (s *System) RunShard(ctx context.Context, opts OptimizeOptions, req ShardRequest, board *ShardFactBoard) (*ShardResult, error) {
	cfg := opts.mappingConfig()
	return mapping.ExploreShard(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg, req, board)
}

// OptimizeShardedContext is OptimizeContext distributed over len(runners)
// contiguous shards; nil runner entries execute their shard embedded in
// this process. The chosen Design and the Progress stream are
// byte-identical to OptimizeContext at any shard count and runner mix.
// OptimizeOptions.Stats is ignored (telemetry stays per-process).
func (s *System) OptimizeShardedContext(ctx context.Context, opts OptimizeOptions, runners []ShardRunner) (*Design, error) {
	cfg := opts.mappingConfig()
	best, _, err := mapping.ExploreSharded(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg, runners)
	if err != nil {
		return nil, err
	}
	return &Design{Scaling: best.Scaling, Mapping: best.Mapping, Eval: best.Eval}, nil
}

// OptimizeShardedParetoContext is OptimizeParetoContext distributed over
// len(runners) contiguous shards, with the same byte-identity guarantee
// for the returned frontier.
func (s *System) OptimizeShardedParetoContext(ctx context.Context, opts OptimizeOptions, runners []ShardRunner) ([]*Design, error) {
	cfg := opts.mappingConfig()
	frontier, err := mapping.ExploreShardedPareto(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg, runners)
	if err != nil {
		return nil, err
	}
	out := make([]*Design, len(frontier))
	for i, d := range frontier {
		out[i] = &Design{Scaling: d.Scaling, Mapping: d.Mapping, Eval: d.Eval}
	}
	return out, nil
}

// ScalingRank returns the enumeration rank of a per-core DVS scaling
// vector in this system's platform space — the Combination index carried
// by Progress events and consumed by WarmHints and WarmPoint seeds.
func (s *System) ScalingRank(scaling []int) (int, error) {
	sp, err := vscale.PlatformSpace(s.Platform)
	if err != nil {
		return 0, err
	}
	return sp.Rank(scaling)
}

// SweepPoint is one problem variant of a batch sweep: a deadline plus the
// reduction to run at it (scalar minimum-power, or a Pareto frontier over
// Objectives).
type SweepPoint struct {
	// DeadlineSec is the point's real-time constraint; 0 means
	// unconstrained.
	DeadlineSec float64
	// Pareto selects the multi-objective frontier reduction for this point;
	// false runs the scalar minimum-power reduction.
	Pareto bool
	// Objectives selects the Pareto dominance components (0 = all three).
	// Ignored for scalar points.
	Objectives ParetoObjectives
}

// SweepPointResult is one sweep point's outcome: Design for scalar points,
// Frontier for Pareto points.
type SweepPointResult struct {
	// Point is the index into the submitted points slice.
	Point int
	// Spec echoes the point definition.
	Spec SweepPoint
	// Design is the scalar result (nil for Pareto points).
	Design *Design
	// Frontier is the Pareto result (nil for scalar points).
	Frontier []*Design
}

// SweepOptions tunes OptimizeSweep.
type SweepOptions struct {
	// Options is the base optimization configuration shared by every point;
	// its DeadlineSec, Objectives and Progress fields are overridden per
	// point. When Options.Stats is set it receives ONE sweep-wide telemetry
	// aggregate (the probe-cache hit counters there are how a deadline-only
	// sweep's ~100% hit rate is observable). Options.Reuse, when set, lets
	// several sweeps (or a service) share one reuse bundle; otherwise the
	// sweep allocates a private one.
	Options OptimizeOptions
	// NoWarmStart disables the incumbent pre-seeding of scalar points (the
	// Ranked pass) and the frontier ghost chaining of Pareto points. Shared
	// probe/bounds/evaluator reuse stays on — it is verdict-preserving by
	// construction. With NoWarmStart the whole per-point event stream
	// (including the Pruned/Skipped split) is byte-identical to independent
	// cold runs; without it, only the per-point Design/frontier is.
	NoWarmStart bool
	// PointProgress, when non-nil, receives every point's exploration
	// progress, tagged with the point index. Called on the sweeping
	// goroutine, points in order.
	PointProgress func(point int, ev ExploreProgress)
}

// OptimizeSweep evaluates many problem variants — a deadline sweep,
// mixed scalar/Pareto reductions, per-point objective sets — over ONE
// shared reuse layer: one bounds precompute, one evaluator pool and one
// probe-trajectory cache for the whole batch, so a probe verdict computed
// for point 1 is never recomputed for point 2 (the probe's climb is
// deadline-independent; see ProbeCache). Points run in deterministic
// submission order and each point's result is byte-identical to an
// independent cold Optimize/OptimizePareto run at that point's options —
// warm-starting accelerates, never alters. An 8-point deadline sweep runs
// roughly an order of magnitude faster than 8 cold runs
// (BenchmarkSweepWarmVsCold).
func (s *System) OptimizeSweep(points []SweepPoint, o SweepOptions) ([]SweepPointResult, error) {
	return s.OptimizeSweepContext(context.Background(), points, o)
}

// OptimizeSweepContext is OptimizeSweep with cancellation: when ctx is
// cancelled the sweep stops promptly and returns ctx.Err().
func (s *System) OptimizeSweepContext(ctx context.Context, points []SweepPoint, o SweepOptions) ([]SweepPointResult, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("seadopt: sweep needs at least one point")
	}
	base := o.Options
	base.Progress = nil
	if base.Reuse == nil {
		base.Reuse = NewExploreReuse()
	}
	// Declare the tightest deadline up front: the first probe of each
	// combination climbs far enough for every point of the sweep, so later
	// points probe entirely from cache.
	minDeadline := 0.0
	for _, pt := range points {
		if pt.DeadlineSec > 0 && (minDeadline == 0 || pt.DeadlineSec < minDeadline) {
			minDeadline = pt.DeadlineSec
		}
	}
	base.Reuse.Probe().EnsureHorizon(minDeadline)

	// One telemetry collector spans the whole sweep, so Stats aggregates
	// probe hits, evaluator work and phase clocks across the points.
	var tel *mapping.Telemetry
	stats := base.Stats
	base.Stats = nil
	if stats != nil {
		tel = mapping.NewTelemetry()
	}

	bnb := base.Strategy == "" || base.Strategy == StrategyBranchAndBound
	var space *vscale.Space
	if !o.NoWarmStart {
		var err error
		space, err = vscale.PlatformSpace(s.Platform)
		if err != nil {
			return nil, err
		}
	}
	// ghostsAt chains Pareto warm-start within the sweep: the frontier of
	// an earlier Pareto point seeds the dominance ghosts of later Pareto
	// points at the SAME deadline (identical mapper inputs, possibly
	// different objectives — exactly the soundness contract of
	// WarmFrontier).
	ghostsAt := make(map[float64][]WarmPoint)

	results := make([]SweepPointResult, len(points))
	for i, pt := range points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		popt := base
		popt.DeadlineSec = pt.DeadlineSec
		popt.WarmHints = nil
		popt.WarmFrontier = nil
		cfg := popt.mappingConfig()
		cfg.Telemetry = tel
		if o.PointProgress != nil {
			point := i
			cfg.Progress = func(ev ExploreProgress) { o.PointProgress(point, ev) }
		}
		results[i] = SweepPointResult{Point: i, Spec: pt}
		if pt.Pareto {
			cfg.Objectives = pt.Objectives
			if !o.NoWarmStart {
				cfg.WarmFrontier = ghostsAt[pt.DeadlineSec]
			}
			frontier, err := mapping.ExploreParetoContext(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg)
			if err != nil {
				return nil, err
			}
			out := make([]*Design, len(frontier))
			for j, d := range frontier {
				out[j] = &Design{Scaling: d.Scaling, Mapping: d.Mapping, Eval: d.Eval}
			}
			results[i].Frontier = out
			if !o.NoWarmStart {
				for _, d := range frontier {
					if pt.DeadlineSec > 0 && !d.Eval.MeetsDeadline {
						continue // degenerate verdict; not a frontier member
					}
					rank, err := space.Rank(d.Scaling)
					if err != nil {
						continue
					}
					ghostsAt[pt.DeadlineSec] = append(ghostsAt[pt.DeadlineSec],
						WarmPoint{Combination: rank, Makespan: d.Eval.TMSeconds, Gamma: d.Eval.Gamma})
				}
			}
		} else {
			if !o.NoWarmStart && bnb {
				// The ranked pass finds the global minimum probe-feasible
				// nominal — at least as tight as any prior point's winner —
				// and its probes are all shared-cache work, so warm points
				// pay only the ranked walk plus an already-pruned stream.
				cfg.Ranked = true
			}
			best, _, err := mapping.ExploreContext(ctx, s.Graph, s.Platform, mapping.SEAMapper(cfg), cfg)
			if err != nil {
				return nil, err
			}
			results[i].Design = &Design{Scaling: best.Scaling, Mapping: best.Mapping, Eval: best.Eval}
		}
	}
	if stats != nil {
		*stats = *tel.Stats()
	}
	return results, nil
}

// BaselineObjective selects a soft error-unaware optimization objective.
type BaselineObjective = anneal.Objective

// Baseline objectives (the paper's Exp:1-3 plus the Γ oracle).
const (
	MinimizeRegisterUsage = anneal.ObjectiveRegisterUsage
	MinimizeMakespan      = anneal.ObjectiveMakespan
	MinimizeRegTime       = anneal.ObjectiveRegTimeProduct
	MinimizeGammaOracle   = anneal.ObjectiveGamma
)

// ExposureMode selects the liveness fidelity used by fault injection and
// pressure profiles.
type ExposureMode = sim.ExposureMode

// Exposure fidelities: the paper's conservative model (allocated state is
// live for the whole run) and the measured first-use..last-use refinement.
const (
	ExposureConservative = sim.ExposureConservative
	ExposureLifetime     = sim.ExposureLifetime
)

// OptimizeBaseline runs the same design loop with a soft error-unaware
// simulated-annealing mapper (the paper's Exp:1-3 baselines).
func (s *System) OptimizeBaseline(obj BaselineObjective, opts OptimizeOptions) (*Design, error) {
	return s.OptimizeBaselineContext(context.Background(), obj, opts)
}

// OptimizeBaselineContext is OptimizeBaseline with cancellation.
func (s *System) OptimizeBaselineContext(ctx context.Context, obj BaselineObjective, opts OptimizeOptions) (*Design, error) {
	cfg := opts.mappingConfig()
	snap := opts.telemetry(&cfg)
	acfg := anneal.Config{
		Objective:   obj,
		SER:         cfg.SER,
		DeadlineSec: cfg.DeadlineSec,
		Iterations:  cfg.Iterations,
		Moves:       cfg.SearchMoves,
		Seed:        cfg.Seed,
	}
	best, _, err := mapping.ExploreContext(ctx, s.Graph, s.Platform, anneal.Mapper(acfg), cfg)
	if err != nil {
		return nil, err
	}
	snap()
	return &Design{Scaling: best.Scaling, Mapping: best.Mapping, Eval: best.Eval}, nil
}

// MapAtScaling runs only the proposed task mapper (stages 1+2 of step 2) at
// a fixed per-core scaling vector.
func (s *System) MapAtScaling(scaling []int, opts OptimizeOptions) (*Design, error) {
	cfg := opts.mappingConfig()
	m, ev, err := mapping.MapOnce(context.Background(), s.Graph, s.Platform, scaling, mapping.SEAMapper(cfg), cfg)
	if err != nil {
		return nil, err
	}
	return &Design{Scaling: append([]int(nil), scaling...), Mapping: m, Eval: ev}, nil
}

// Evaluate analytically assesses an explicit (mapping, scaling) design point
// (eqs. 3, 5, 7, 8).
func (s *System) Evaluate(m Mapping, scaling []int, opts OptimizeOptions) (*Evaluation, error) {
	cfg := opts.mappingConfig()
	return metrics.Evaluate(s.Graph, s.Platform, m, scaling, cfg.SER,
		metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec})
}

// Simulate executes the design on the cycle-level MPSoC model (the SystemC
// stand-in), returning the measured makespan, task events and utilization.
func (s *System) Simulate(m Mapping, scaling []int, streamIterations int) (*SimResult, error) {
	return sim.Run(s.Graph, s.Platform, m, scaling, sim.Config{Iterations: streamIterations})
}

// InjectFaults simulates the design and runs a Poisson SEU fault-injection
// campaign over its register liveness trace, returning the measured number
// of SEUs experienced and its analytic expectation. ser follows the
// OptimizeOptions.SER convention: 0 selects DefaultSER, negative selects a
// true zero rate.
func (s *System) InjectFaults(m Mapping, scaling []int, streamIterations int,
	ser float64, seed int64) (measured int64, expected float64, err error) {
	switch {
	case ser == 0:
		ser = DefaultSER
	case ser < 0:
		ser = 0
	}
	r, err := s.Simulate(m, scaling, streamIterations)
	if err != nil {
		return 0, 0, err
	}
	return r.MeasureGamma(faults.NewSERModel(ser), sim.ExposureConservative, seed)
}

// ScalingCombinations returns the paper's Fig. 5 voltage-scaling enumeration
// for this platform (non-increasing per-core coefficient vectors).
func (s *System) ScalingCombinations() ([][]int, error) {
	return vscaleAll(s.Platform)
}
