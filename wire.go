package seadopt

import (
	"encoding/json"
	"fmt"
	"io"

	"seadopt/internal/ingest"
)

// GraphFormat names a task-graph interchange format accepted by ParseGraph:
// "json" (the canonical encoding Graph.MarshalJSON produces), "tgff"
// (Task Graphs For Free generator output) and "dot" (Graphviz digraphs,
// including the ones Graph.DOT renders). The empty string or "auto" sniffs
// the format from the document's leading bytes.
type GraphFormat = string

// ParseGraph reads one externally-authored task graph from r and returns it
// validated: structural defects (cycles, duplicate task or register IDs,
// dangling edges) and disconnected graphs are rejected with errors naming
// the offending element. Formats that carry no WCET or register data are
// completed with the deterministic defaulting rules documented in
// internal/ingest, so identical input bytes always produce identical
// graphs. This is the ingestion surface the seadoptd service exposes over
// HTTP; embedding callers get the same importers here.
func ParseGraph(format GraphFormat, r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("seadopt: reading task graph: %w", err)
	}
	var f ingest.Format
	if format == "" || format == "auto" {
		if f, err = ingest.Detect(data); err != nil {
			return nil, err
		}
	} else if f, err = ingest.ParseFormat(format); err != nil {
		return nil, err
	}
	return ingest.ParseBytes(f, data)
}

// ParsePlatformSpec reads a JSON platform spec — processor types with their
// own DVS tables plus a core list instantiating them — and returns the
// validated platform. This is how heterogeneous MPSoCs enter the system:
// the seadopt CLI's -platform flag and the seadoptd "platform" job field
// both accept the same document. See internal/ingest.PlatformSpec for the
// schema and the README's "Heterogeneous platforms" section for a worked
// example.
func ParsePlatformSpec(r io.Reader) (*Platform, error) {
	return ingest.ReadPlatformSpec(r)
}

// wireDesign is the stable JSON encoding of a Design. Field order and
// content are part of the service contract: two runs of the same problem
// must marshal byte-identically, which holds because the engine's result is
// deterministic and every field below is value-typed.
type wireDesign struct {
	Graph   string     `json:"graph"`
	Scaling []int      `json:"scaling"`
	Mapping []int      `json:"mapping"`
	Eval    wireEval   `json:"eval"`
	Cores   []wireCore `json:"cores"`
}

type wireEval struct {
	PowerW        float64 `json:"power_w"`
	TotalRegBits  int64   `json:"total_reg_bits"`
	MakespanSec   float64 `json:"makespan_sec"`
	TMSeconds     float64 `json:"tm_sec"`
	Gamma         float64 `json:"gamma"`
	MeetsDeadline bool    `json:"meets_deadline"`
	DeadlineSec   float64 `json:"deadline_sec"`
}

type wireCore struct {
	Core        int      `json:"core"`
	Scaling     int      `json:"s"`
	RegBits     int64    `json:"reg_bits"`
	BusySec     float64  `json:"busy_sec"`
	Utilization float64  `json:"utilization"`
	Gamma       float64  `json:"gamma"`
	Tasks       []string `json:"tasks"`
}

// MarshalJSON encodes the design point for the wire: the scaling vector, the
// task→core mapping (indexed by TaskID), the eq. 3/5/7/8 evaluation, and a
// per-core breakdown with task names. The encoding is deterministic — equal
// designs marshal to equal bytes — so service results can be cached and
// compared content-addressed. This is the same encoding `seadopt -json`
// prints and `POST /v1/jobs` returns.
func (d *Design) MarshalJSON() ([]byte, error) {
	if d == nil || d.Eval == nil || d.Eval.Schedule == nil {
		return nil, fmt.Errorf("seadopt: cannot marshal an unevaluated design")
	}
	g := d.Eval.Schedule.Graph
	w := wireDesign{
		Graph:   g.Name(),
		Scaling: append([]int{}, d.Scaling...),
		Mapping: append([]int{}, d.Mapping...),
		Eval: wireEval{
			PowerW:        d.Eval.PowerW,
			TotalRegBits:  d.Eval.TotalRegBits,
			MakespanSec:   d.Eval.MakespanSec,
			TMSeconds:     d.Eval.TMSeconds,
			Gamma:         d.Eval.Gamma,
			MeetsDeadline: d.Eval.MeetsDeadline,
			DeadlineSec:   d.Eval.DeadlineSec,
		},
		Cores: make([]wireCore, 0, len(d.Scaling)),
	}
	coreTasks := d.Mapping.CoreTasks(len(d.Scaling))
	for c, cm := range d.Eval.PerCore {
		names := make([]string, 0, len(coreTasks[c]))
		for _, t := range coreTasks[c] {
			names = append(names, g.Task(t).Name)
		}
		w.Cores = append(w.Cores, wireCore{
			Core:        cm.Core,
			Scaling:     d.Scaling[c],
			RegBits:     cm.RegBits,
			BusySec:     cm.BusySec,
			Utilization: cm.Utilization,
			Gamma:       cm.Gamma,
			Tasks:       names,
		})
	}
	return json.Marshal(w)
}
