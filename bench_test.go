package seadopt

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, each running the corresponding experiment end to end
// at a reduced (but shape-preserving) search budget, plus micro-benchmarks
// of the hot inner loops (list scheduling, design-point evaluation, the
// cycle-level simulator and the Poisson fault injector).
//
// Regenerate the paper's numbers at full budgets with:
//
//	go run ./cmd/experiments -all
//
// and see EXPERIMENTS.md for the recorded paper-vs-measured comparison.

import (
	"context"
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/expt"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/sim"
	"seadopt/internal/taskgraph"
)

// benchCfg is the reduced-budget configuration used by the per-experiment
// benchmarks.
func benchCfg() expt.Config {
	return expt.Config{SearchMoves: 300, AnnealMoves: 300, Seed: 2010, FaultRuns: 1}
}

// BenchmarkFig3 regenerates the 120-mapping motivation sweep of Fig. 3
// (T_M vs R trade-off and the Γ curves at s=1 and s=2).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 120 {
			b.Fatal("wrong sweep size")
		}
	}
}

// BenchmarkTableII regenerates Table II: the four design-optimization
// experiments on the MPEG-2 decoder with four cores, including the
// fault-injection measurement of Γ.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.TableII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig9 regenerates the equal-scaling comparison of Fig. 9.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTableIII regenerates the architecture-allocation study of
// Table III (six applications across two to six cores).
func BenchmarkTableIII(b *testing.B) {
	cfg := benchCfg()
	cfg.SearchMoves = 100
	for i := 0; i < b.N; i++ {
		res, err := expt.TableIII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Apps) != 6 {
			b.Fatal("wrong app count")
		}
	}
}

// BenchmarkFig10 regenerates the Exp:3-vs-Exp:4 allocation sweep of Fig. 10.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 5 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkFig11 regenerates the voltage-scaling-level sweep of Fig. 11.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) != 3 {
			b.Fatal("wrong point count")
		}
	}
}

// --- Micro-benchmarks of the inner loops ---

// BenchmarkListScheduleMPEG2 measures the event-driven list scheduler on
// the 11-task decoder (the optimizer's innermost operation).
func BenchmarkListScheduleMPEG2(b *testing.B) {
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	m := sched.RoundRobin(g.N(), 4)
	scaling := []int{2, 2, 3, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ListSchedule(g, p, m, scaling); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListScheduleRandom100 measures the scheduler on the largest
// Table III workload.
func BenchmarkListScheduleRandom100(b *testing.B) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(100), 1)
	p := arch.MustNewPlatform(6, arch.ARM7Levels3())
	m := sched.RoundRobin(g.N(), 6)
	scaling := []int{3, 3, 3, 2, 2, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ListSchedule(g, p, m, scaling); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures a full analytic design-point evaluation
// (schedule + R_i unions + Γ + power), the optimizer's cost function.
func BenchmarkEvaluate(b *testing.B) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 1)
	p := arch.MustNewPlatform(6, arch.ARM7Levels3())
	m := sched.RoundRobin(g.N(), 6)
	scaling := []int{3, 3, 3, 3, 2, 2}
	ser := faults.NewSERModel(faults.DefaultSER)
	opt := metrics.Options{Iterations: 1, DeadlineSec: taskgraph.RandomDeadline(60)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Evaluate(g, p, m, scaling, ser, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorReuse measures the same design-point evaluation as
// BenchmarkEvaluate on a pinned, buffer-reusing metrics.Evaluator — the
// inner loop as the mapper searches actually drive it.
func BenchmarkEvaluatorReuse(b *testing.B) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 1)
	p := arch.MustNewPlatform(6, arch.ARM7Levels3())
	m := sched.RoundRobin(g.N(), 6)
	scaling := []int{3, 3, 3, 3, 2, 2}
	e, err := metrics.NewEvaluator(g, p, faults.NewSERModel(faults.DefaultSER),
		metrics.Options{Iterations: 1, DeadlineSec: taskgraph.RandomDeadline(60)})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Bind(scaling); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// bench64Workload mirrors bench64System at the internal layer for the
// evaluator micro-benchmarks: the same 120-task §V random graph on the
// 56+8-core heterogeneous platform of BENCH_scale.json.
func bench64Workload(b *testing.B) (*taskgraph.Graph, *arch.Platform) {
	b.Helper()
	cfg := taskgraph.DefaultRandomConfig(120)
	cfg.MaxWidth = 32
	g := taskgraph.MustRandom(cfg, 11)
	types := []arch.ProcType{
		{Name: "eff", Levels: arch.ARM7Levels2()},
		{Name: "perf", Levels: arch.ARM7Levels4()},
	}
	coreTypes := make([]int, 64)
	for i := 56; i < 64; i++ {
		coreTypes[i] = 1
	}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		b.Fatal(err)
	}
	return g, p
}

// bench64Delta pins an evaluator on the 64-core workload and returns the
// two scaling vectors the delta benchmarks alternate between. With
// idleCore set, the toggled core (63) hosts no task, exercising the
// O(changed) patch path; otherwise core 0 is loaded and the delta
// re-schedules (but reuses the register-pressure profile).
func bench64Delta(b *testing.B, idleCore bool) (*metrics.Evaluator, []int, []int) {
	b.Helper()
	g, p := bench64Workload(b)
	e, err := metrics.NewEvaluator(g, p, faults.NewSERModel(faults.DefaultSER),
		metrics.Options{Iterations: 1, DeadlineSec: taskgraph.RandomDeadline(120) / 15})
	if err != nil {
		b.Fatal(err)
	}
	usable := 64
	core := 0
	if idleCore {
		usable, core = 63, 63
	}
	m := sched.RoundRobin(g.N(), usable)
	prev := p.MinPowerScaling()
	next := append([]int(nil), prev...)
	next[core] = prev[core] - 1 // one level faster on the toggled core
	if err := e.Bind(prev); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Evaluate(m); err != nil {
		b.Fatal(err)
	}
	return e, prev, next
}

// BenchmarkEvaluateDelta measures EvaluateDelta moving one *loaded* core by
// one level on the 64-core workload: the schedule recomputes but the
// mapping-derived register profile is reused.
func BenchmarkEvaluateDelta(b *testing.B) {
	e, prev, next := bench64Delta(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvaluateDelta(prev, next); err != nil {
			b.Fatal(err)
		}
		prev, next = next, prev
	}
}

// BenchmarkEvaluateDeltaIdle measures the idle-core fast path: the toggled
// core hosts no task, so the evaluation is patched in O(changed) without
// re-scheduling.
func BenchmarkEvaluateDeltaIdle(b *testing.B) {
	e, prev, next := bench64Delta(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvaluateDelta(prev, next); err != nil {
			b.Fatal(err)
		}
		prev, next = next, prev
	}
}

// BenchmarkEvaluateDeltaFullRebind is the non-delta baseline for the two
// benchmarks above: a full Bind + Evaluate at each move.
func BenchmarkEvaluateDeltaFullRebind(b *testing.B) {
	e, prev, next := bench64Delta(b, false)
	m := sched.RoundRobin(120, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Bind(next); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Evaluate(m); err != nil {
			b.Fatal(err)
		}
		prev, next = next, prev
	}
}

// BenchmarkSimulatorPipelined measures the cycle-level DES simulator
// running the full 437-frame MPEG-2 pipeline (4807 task instances).
func BenchmarkSimulatorPipelined(b *testing.B) {
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	m := sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	scaling := []int{2, 2, 3, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, p, m, scaling, sim.Config{Iterations: taskgraph.MPEG2Frames}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultInjection measures one Poisson SEU campaign over the
// decoder's liveness trace.
func BenchmarkFaultInjection(b *testing.B) {
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	m := sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	r, err := sim.Run(g, p, m, []int{2, 2, 3, 2}, sim.Config{Iterations: 1})
	if err != nil {
		b.Fatal(err)
	}
	campaign, err := r.Campaign(faults.NewSERModel(faults.DefaultSER), sim.ExposureConservative)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInitialSEAMapping measures the Fig. 6 constructive mapper.
func BenchmarkInitialSEAMapping(b *testing.B) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 1)
	p := arch.MustNewPlatform(6, arch.ARM7Levels3())
	cfg := mapping.Config{
		SER:         faults.NewSERModel(faults.DefaultSER),
		DeadlineSec: taskgraph.RandomDeadline(60),
		Iterations:  1,
		Seed:        1,
	}
	scaling := []int{3, 3, 3, 3, 2, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.InitialSEAMapping(g, p, scaling, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeMPEG2 measures the full Fig. 4 design loop on the
// decoder at a small search budget.
func BenchmarkOptimizeMPEG2(b *testing.B) {
	sys, err := NewARM7System(MPEG2(), 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	opts := OptimizeOptions{
		DeadlineSec:      MPEG2Deadline,
		StreamIterations: MPEG2Frames,
		SearchMoves:      200,
		Seed:             1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Optimize(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStrategy runs the full design loop under one exploration strategy —
// the exhaustive-vs-branch-and-bound pairs below are the BENCH_prune.json
// measurement (see that file for the recorded numbers).
func benchStrategy(b *testing.B, g *Graph, cores int, deadline float64, iters int, strategy ExploreStrategy) {
	b.Helper()
	sys, err := NewARM7System(g, cores, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchSystem(b, sys, OptimizeOptions{
		DeadlineSec:      deadline,
		StreamIterations: iters,
		SearchMoves:      200,
		Seed:             1,
		Strategy:         strategy,
	})
}

// benchSystem measures the full design loop on an assembled system.
func benchSystem(b *testing.B, sys *System, opts OptimizeOptions) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Optimize(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDist16Core is the BENCH_dist.json measurement: the 16-core §V
// workload explored single-node versus fanned out over two contiguous
// shards (both embedded in this process, run concurrently, merged through
// the byte-identical replay). Per-shard parallelism is pinned to 1 so the
// SingleNode/TwoShard ratio isolates the sharding machinery itself: on a
// multi-core host the two shards overlap and the ratio approaches 2, and
// on any host it must not fall materially below 1 — the records, the fact
// board and the authoritative replay are required to stay overhead-neutral
// relative to a single-node walk of the same exhaustive enumeration.
func BenchmarkDist16Core(b *testing.B) {
	g, dl := bench16Graph(b)
	sys, err := NewARM7System(g, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	opts := OptimizeOptions{
		DeadlineSec: dl,
		SearchMoves: 200,
		Seed:        1,
		Strategy:    StrategyExhaustive,
		Parallelism: 1,
	}
	b.Run("SingleNode", func(b *testing.B) {
		benchSystem(b, sys, opts)
	})
	b.Run("TwoShard", func(b *testing.B) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.OptimizeShardedContext(ctx, opts, make([]ShardRunner, 2)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExploreMPEG2Exhaustive / ...BnB compare the strategies on the
// paper platform (4 cores × 3 levels, 15 combinations).
func BenchmarkExploreMPEG2Exhaustive(b *testing.B) {
	benchStrategy(b, MPEG2(), 4, MPEG2Deadline, MPEG2Frames, StrategyExhaustive)
}

func BenchmarkExploreMPEG2BnB(b *testing.B) {
	benchStrategy(b, MPEG2(), 4, MPEG2Deadline, MPEG2Frames, StrategyBranchAndBound)
}

// bench16Graph is the large-platform workload: a §V random graph on
// 16 cores × 3 levels — C(18,16) = 153 combinations, >10× the MPEG-2
// space. The deadline sits at 50% of the paper's default so the slowest
// scalings are bound-pruned, the first feasible design lands a fifth of
// the way in, and everything pricier is dominance-skipped.
func bench16Graph(b *testing.B) (*Graph, float64) {
	g, err := RandomGraph(DefaultRandomGraphConfig(40), 7)
	if err != nil {
		b.Fatal(err)
	}
	return g, RandomGraphDeadline(40) * 0.5
}

func BenchmarkExplore16CoreExhaustive(b *testing.B) {
	g, dl := bench16Graph(b)
	benchStrategy(b, g, 16, dl, 1, StrategyExhaustive)
}

func BenchmarkExplore16CoreBnB(b *testing.B) {
	g, dl := bench16Graph(b)
	benchStrategy(b, g, 16, dl, 1, StrategyBranchAndBound)
}

// bench64System is the 64-core flagship workload of BENCH_scale.json: a
// heterogeneous platform of 56 two-level efficiency cores plus 8 four-level
// performance cores (C(57,1)·C(11,3) = 57·165 = 9405 combinations, 61× the
// 16-core space) running a 120-task §V random graph widened to 32-task
// layers so the workload can actually occupy the platform. The deadline
// (1/15 of the paper's default) sits between the all-fast and all-slow
// makespan lower bounds, so the slow tail of the enumeration is
// bound-pruned and the surviving prefix is dominance-skipped once the first
// feasible design lands.
func bench64System(b *testing.B) (*System, OptimizeOptions) {
	b.Helper()
	cfg := DefaultRandomGraphConfig(120)
	cfg.MaxWidth = 32
	g, err := RandomGraph(cfg, 11)
	if err != nil {
		b.Fatal(err)
	}
	types := []ProcType{
		{Name: "eff", Levels: arch.ARM7Levels2()},
		{Name: "perf", Levels: arch.ARM7Levels4()},
	}
	coreTypes := make([]int, 64)
	for i := 56; i < 64; i++ {
		coreTypes[i] = 1
	}
	p, err := NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		b.Fatal(err)
	}
	return sys, OptimizeOptions{
		DeadlineSec: RandomGraphDeadline(120) / 15,
		SearchMoves: 200,
		Seed:        1,
	}
}

func BenchmarkExplore64CoreExhaustive(b *testing.B) {
	sys, opts := bench64System(b)
	opts.Strategy = StrategyExhaustive
	benchSystem(b, sys, opts)
}

func BenchmarkExplore64CoreBnB(b *testing.B) {
	sys, opts := bench64System(b)
	opts.Strategy = StrategyBranchAndBound
	benchSystem(b, sys, opts)
}

// BenchmarkExplore64CoreBnBRanked adds the ranked incumbent-seeding pass:
// a sequential ascending-nominal walk locates the eventual winner's power
// before the lexicographic stream starts, so every pricier combination is
// dominance-skipped at dispatch instead of mapped. Same design,
// byte-identical to exhaustive.
func BenchmarkExplore64CoreBnBRanked(b *testing.B) {
	sys, opts := bench64System(b)
	opts.Strategy = StrategyBranchAndBound
	opts.Ranked = true
	benchSystem(b, sys, opts)
}

// BenchmarkExplore64CoreNoC is the flagship workload behind a contended
// 8×8-mesh NoC: every cross-core token is charged real serialization, hop
// latency and link queuing through the scheduler, so this measures the
// interconnect model's cost at scale (first recorded in BENCH_scale.json
// as a reference section; the next perf PR gates against it).
func BenchmarkExplore64CoreNoC(b *testing.B) {
	cfg := DefaultRandomGraphConfig(120)
	cfg.MaxWidth = 32
	g, err := RandomGraph(cfg, 11)
	if err != nil {
		b.Fatal(err)
	}
	types := []ProcType{
		{Name: "eff", Levels: arch.ARM7Levels2()},
		{Name: "perf", Levels: arch.ARM7Levels4()},
	}
	coreTypes := make([]int, 64)
	for i := 56; i < 64; i++ {
		coreTypes[i] = 1
	}
	p, err := NewHeterogeneousPlatform(types, coreTypes, WithInterconnect(Interconnect{
		Topology:      TopologyMesh,
		BandwidthBps:  4e9,
		HopLatencySec: 1e-4,
	}))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(g, p)
	if err != nil {
		b.Fatal(err)
	}
	opts := OptimizeOptions{
		DeadlineSec: RandomGraphDeadline(120) / 15,
		SearchMoves: 200,
		Seed:        1,
		Strategy:    StrategyBranchAndBound,
		Ranked:      true,
	}
	benchSystem(b, sys, opts)
}

// benchTelemetry measures one exploration workload with the telemetry
// collector attached or absent. With telemetry on it also reports the
// per-phase wall-clock breakdown the collector recorded, so the benchmark
// output doubles as the flagship phase profile in BENCH_scale.json.
func benchTelemetry(b *testing.B, sys *System, opts OptimizeOptions, withTel bool) {
	b.Helper()
	var agg ExplorePhaseStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opts
		var st *ExploreStats
		if withTel {
			st = new(ExploreStats)
			o.Stats = st
		}
		if _, err := sys.Optimize(o); err != nil {
			b.Fatal(err)
		}
		if withTel {
			agg.BoundsNanos += st.Phases.BoundsNanos
			agg.RankedSeedNanos += st.Phases.RankedSeedNanos
			agg.EnumerationNanos += st.Phases.EnumerationNanos
			agg.ProbeNanos += st.Phases.ProbeNanos
			agg.MapperNanos += st.Phases.MapperNanos
			agg.FoldNanos += st.Phases.FoldNanos
		}
	}
	b.StopTimer()
	if withTel {
		ms := func(ns int64) float64 { return float64(ns) / float64(b.N) / 1e6 }
		b.ReportMetric(ms(agg.BoundsNanos), "bounds-ms/op")
		b.ReportMetric(ms(agg.RankedSeedNanos), "ranked-ms/op")
		b.ReportMetric(ms(agg.EnumerationNanos), "enum-ms/op")
		b.ReportMetric(ms(agg.ProbeNanos), "probe-ms/op")
		b.ReportMetric(ms(agg.MapperNanos), "mapper-ms/op")
		b.ReportMetric(ms(agg.FoldNanos), "fold-ms/op")
	}
}

// BenchmarkTelemetryOverhead16Core pins the observability cost on the
// 16-core workload: /off is the plain exploration, /on attaches the
// collector and must stay within the telemetry budget (<2% wall clock).
func BenchmarkTelemetryOverhead16Core(b *testing.B) {
	for _, tel := range []bool{false, true} {
		name := "off"
		if tel {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			g, dl := bench16Graph(b)
			sys, err := NewARM7System(g, 16, 3)
			if err != nil {
				b.Fatal(err)
			}
			benchTelemetry(b, sys, OptimizeOptions{
				DeadlineSec: dl,
				SearchMoves: 200,
				Seed:        1,
				Strategy:    StrategyBranchAndBound,
			}, tel)
		})
	}
}

// BenchmarkTelemetryFlagship64Core is the flagship phase profile: the
// ranked 64-core BnB walk of BENCH_scale.json with the collector attached,
// reporting where its wall clock actually goes (probe vs mapper vs fold).
// Compare /on against /off at -benchtime 1x for the recorded overhead.
func BenchmarkTelemetryFlagship64Core(b *testing.B) {
	for _, tel := range []bool{false, true} {
		name := "off"
		if tel {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			sys, opts := bench64System(b)
			opts.Strategy = StrategyBranchAndBound
			opts.Ranked = true
			benchTelemetry(b, sys, opts, tel)
		})
	}
}

// BenchmarkAblations runs the three design-choice ablation studies
// (exposure model, greedy seeding, scaling enumeration).
func BenchmarkAblations(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := expt.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Exposure) != 2 {
			b.Fatal("wrong ablation shape")
		}
	}
}

// BenchmarkOptimalityGap runs the exhaustive-vs-heuristics study (the
// symmetry-reduced 4^11 enumeration dominates the cost).
func BenchmarkOptimalityGap(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := expt.OptimalityGap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Optimum <= 0 {
			b.Fatal("no optimum")
		}
	}
}

// benchSweepDeadlines is the 8-point deadline sweep of BENCH_sweep.json:
// deadlines clustered just above the 16-core workload's pruning deadline,
// so every point is feasible but the scalar winner moves with the
// constraint.
func benchSweepDeadlines() []float64 {
	base := RandomGraphDeadline(40) * 0.5
	dls := make([]float64, 8)
	for i := range dls {
		dls[i] = base * (1 + 0.01*float64(i))
	}
	return dls
}

// BenchmarkSweepWarmVsCold is the warm-start measurement of
// BENCH_sweep.json: /Cold runs the 8-point deadline sweep as 8 independent
// Optimize calls (fresh probe work, cold incumbent, per-run bounds);
// /Warm runs the same 8 points as ONE OptimizeSweep batch — one bounds
// precompute, one probe-trajectory climb shared across all points, and
// ranked warm incumbents — and must return byte-identical designs roughly
// an order of magnitude faster (cmd/benchgate gates the Cold/Warm ratio).
func BenchmarkSweepWarmVsCold(b *testing.B) {
	g, _ := bench16Graph(b)
	deadlines := benchSweepDeadlines()
	sys, err := NewARM7System(g, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	base := OptimizeOptions{
		StreamIterations: 1,
		SearchMoves:      200,
		Seed:             1,
	}
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, dl := range deadlines {
				o := base
				o.DeadlineSec = dl
				if _, err := sys.Optimize(o); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		points := make([]SweepPoint, len(deadlines))
		for i, dl := range deadlines {
			points[i] = SweepPoint{DeadlineSec: dl}
		}
		for i := 0; i < b.N; i++ {
			if _, err := sys.OptimizeSweep(points, SweepOptions{Options: base}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
