module seadopt

go 1.24
