package seadopt

import (
	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// vscaleAll exposes the scaling enumeration to the facade: the Fig. 5
// sequence for homogeneous platforms, the mixed-radix per-core
// generalization for heterogeneous ones.
func vscaleAll(p *arch.Platform) ([][]int, error) {
	sp, err := vscale.PlatformSpace(p)
	if err != nil {
		return nil, err
	}
	return sp.All(), nil
}

// NextScaling computes the successor of a scaling vector in the Fig. 5(a)
// enumeration order (all-slowest first, all-nominal last); ok is false at
// the end of the sequence, and for malformed input (empty, non-monotone,
// or entries below 1) rather than walking garbage.
//
// This is the paper's homogeneous rule: it assumes every core shares one
// level table, so on a heterogeneous platform it can emit vectors that
// exceed a core's own table. Use System.NextScaling, which knows the
// platform's per-core caps, when the platform may be heterogeneous.
func NextScaling(prev []int) (next []int, ok bool) {
	return vscale.NextScaling(prev)
}

// NextScaling computes the successor of prev in this platform's scaling
// enumeration — the same sequence ScalingCombinations lists: Fig. 5(a) for
// homogeneous platforms, the mixed-radix per-core generalization for
// heterogeneous ones. ok is false at the end of the sequence and for
// vectors that are not valid enumeration members of this platform (wrong
// length, out of a core's level range, or violating the same-table
// non-increasing canonical form).
func (s *System) NextScaling(prev []int) (next []int, ok bool) {
	sp, err := vscale.PlatformSpace(s.Platform)
	if err != nil {
		return nil, false
	}
	return sp.Next(prev)
}

// GraphStats summarizes a graph's structural properties (depth, width,
// parallelism bound, communication ratio).
type GraphStats = taskgraph.Stats

// Stats analyses the system's application graph.
func (s *System) Stats() GraphStats { return s.Graph.ComputeStats() }

// NewCustomPlatform builds a platform from operating frequencies in MHz
// (fastest first), deriving supply voltages with the ARM7 voltage law of
// eq. (2).
func NewCustomPlatform(cores int, freqsMHz ...float64) (*Platform, error) {
	levels, err := arch.LevelsFromFrequencies(freqsMHz...)
	if err != nil {
		return nil, err
	}
	return arch.NewPlatform(cores, levels)
}
