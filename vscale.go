package seadopt

import (
	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// vscaleAll exposes the Fig. 5 enumeration to the facade.
func vscaleAll(p *arch.Platform) ([][]int, error) {
	return vscale.All(p.Cores(), p.NumLevels())
}

// NextScaling computes the successor of a scaling vector in the Fig. 5(a)
// enumeration order (all-slowest first, all-nominal last); ok is false at
// the end of the sequence, and for malformed input (empty, non-monotone,
// or entries below 1) rather than walking garbage.
func NextScaling(prev []int) (next []int, ok bool) {
	return vscale.NextScaling(prev)
}

// GraphStats summarizes a graph's structural properties (depth, width,
// parallelism bound, communication ratio).
type GraphStats = taskgraph.Stats

// Stats analyses the system's application graph.
func (s *System) Stats() GraphStats { return s.Graph.ComputeStats() }

// NewCustomPlatform builds a platform from operating frequencies in MHz
// (fastest first), deriving supply voltages with the ARM7 voltage law of
// eq. (2).
func NewCustomPlatform(cores int, freqsMHz ...float64) (*Platform, error) {
	levels, err := arch.LevelsFromFrequencies(freqsMHz...)
	if err != nil {
		return nil, err
	}
	return arch.NewPlatform(cores, levels)
}
