package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"seadopt"
)

// TestDaemonEndToEnd boots seadoptd on an ephemeral port, fires concurrent
// identical MPEG-2 submissions at it, and asserts the cache/single-flight
// counters prove exactly one engine execution before a SIGTERM-equivalent
// drain shuts it down cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s"},
			func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Liveness first.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	gj, err := seadopt.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, _ := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 4, "levels": 3},
		"options": map[string]any{
			"deadline_sec":      seadopt.MPEG2Deadline,
			"stream_iterations": seadopt.MPEG2Frames,
			"seed":              2010,
		},
	})

	const clients = 6
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(env))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var st struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var result []byte
	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State  string          `json:"state"`
				Error  string          `json:"error"`
				Result json.RawMessage `json:"result"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == "done" {
				if result == nil {
					result = st.Result
				} else if !bytes.Equal(result, st.Result) {
					t.Fatalf("job %s result differs from siblings", id)
				}
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	m := regexp.MustCompile(`(?m)^seadoptd_engine_executions_total ([0-9]+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("no engine execution counter in metrics:\n%s", body)
	}
	if n, _ := strconv.Atoi(string(m[1])); n != 1 {
		t.Fatalf("engine executed %d times for %d identical submissions, want 1", n, clients)
	}

	// Drain: cancel the run context (what SIGTERM does) and wait for exit.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon failed to drain and exit")
	}
}

// TestPprofGatedBehindFlag: the profiling endpoints must exist when -pprof
// is set and 404 when it is not — profiling is opt-in, never ambient.
func TestPprofGatedBehindFlag(t *testing.T) {
	boot := func(t *testing.T, args []string) (base string, shutdown func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		addrCh := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s"}, args...),
				func(addr string) { addrCh <- addr })
		}()
		select {
		case addr := <-addrCh:
			base = "http://" + addr
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return base, func() {
			cancel()
			select {
			case <-done:
			case <-time.After(time.Minute):
				t.Fatal("daemon failed to drain and exit")
			}
		}
	}

	status := func(t *testing.T, base, path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	base, shutdown := boot(t, []string{"-pprof"})
	if got := status(t, base, "/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("-pprof on: /debug/pprof/cmdline = %d, want 200", got)
	}
	if got := status(t, base, "/healthz"); got != http.StatusOK {
		t.Errorf("-pprof on: /healthz = %d, want 200 (service routes must keep working)", got)
	}
	shutdown()

	base, shutdown = boot(t, nil)
	if got := status(t, base, "/debug/pprof/cmdline"); got != http.StatusNotFound {
		t.Errorf("-pprof off: /debug/pprof/cmdline = %d, want 404", got)
	}
	shutdown()
}
