// Command seadoptd serves the seadopt design optimizer as a long-running
// daemon: clients POST task-graph optimization jobs (canonical JSON, TGFF
// or DOT), follow their design-space exploration over Server-Sent Events,
// and fetch deterministic Design results that are content-addressed cached
// and single-flight deduplicated across concurrent submitters.
//
//	seadoptd -addr :8080 -workers 2 -cache-size 256
//
// API (see internal/service for the full contract):
//
//	POST   /v1/jobs               submit (JSON envelope, or raw body + ?format=)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          status + result
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/progress SSE progress stream
//	GET    /v1/jobs/{id}/stats    engine telemetry (phase timings, counters)
//	GET    /v1/jobs/{id}/trace    worker-timeline Chrome trace (perfetto)
//	GET    /healthz               liveness (503 while draining) + build info
//	GET    /metrics               Prometheus text metrics (incl. latency histograms)
//	POST   /internal/v1/shard     execute one exploration shard for a peer coordinator
//	POST   /internal/v1/exchange  exchange bound-tightening facts while shards run
//
// With -store DIR the daemon journals every accepted job and result to an
// append-only store, so a crash-and-restart against the same directory
// loses no accepted work. With -peer URL (repeatable) it becomes a
// coordinator that fans eligible jobs' exploration shards out to peer
// daemons, with results byte-identical to a single-node run.
//
// Logs are structured (log/slog) on stderr; -log-format selects text or
// json and -log-level the minimum severity.
//
// On SIGTERM/SIGINT the daemon stops accepting jobs, drains in-flight work
// for up to -drain-timeout, then aborts whatever remains and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seadopt"
	"seadopt/internal/buildinfo"
	"seadopt/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "seadoptd:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until ctx is cancelled and the drain
// completes. ready, when non-nil, receives the bound listen address once
// the server is accepting connections (tests bind :0 and need the port).
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("seadoptd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address")
		workers      = fs.Int("workers", 2, "concurrently executing optimization jobs")
		cacheSize    = fs.Int("cache-size", 256, "result-cache capacity in entries (negative disables)")
		queueDepth   = fs.Int("queue-depth", 1024, "maximum queued jobs before submissions get 503")
		parallel     = fs.Int("engine-parallel", 0, "per-job exploration parallelism (0 = all cores)")
		retention    = fs.Int("job-retention", 4096, "finished job records kept queryable (negative = unlimited)")
		strategy     = fs.String("strategy", "", "default exploration strategy for jobs that don't set one: bnb (default), exhaustive, or sampled")
		platformFile = fs.String("platform", "", "JSON platform-spec file applied to jobs that don't name a platform (heterogeneous MPSoCs supported; default 4 ARM7 cores × Table I)")
		paretoMode   = fs.Bool("pareto", false, "default jobs that don't set a mode to pareto (serve frontiers instead of single designs)")
		objectives   = fs.String("objectives", "", "default pareto objectives for jobs that don't set them: comma-separated subset of power,makespan,gamma")
		warmStart    = fs.Bool("warm-start", true, "seed new jobs from fingerprint-matching prior results and warm-start sweep points (same result bytes; only the pruned/skipped progress split differs)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		pprofOn      = fs.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/ (off by default; enable only on trusted networks)")
		storeDir     = fs.String("store", "", "directory for the durable job store; submitted jobs, results and warm-start seeds survive a crash-and-restart against the same directory (empty = in-memory only)")
		shards       = fs.Int("shards", 0, "shard count for distributed jobs (0 = one embedded shard plus one per -peer)")
		advertise    = fs.String("advertise", "", "this daemon's own base URL as reachable by peers, for the shard fact exchange (empty disables bound sharing; results stay byte-identical)")
		rateLimit    = fs.Float64("rate-limit", 0, "per-client submissions per second before 429 (0 = unlimited)")
		rateBurst    = fs.Int("rate-burst", 0, "rate-limit token-bucket burst (0 = max(1, ceil(rate-limit)))")
		maxBody      = fs.Int64("max-body-bytes", 0, "maximum submission payload before 413 (0 = 16 MiB)")
		logFormat    = fs.String("log-format", "text", "structured log format: text or json")
		logLevel     = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version      = fs.Bool("version", false, "print build version information and exit")
	)
	var peers []string
	fs.Func("peer", "peer seadoptd base URL to fan exploration shards out to (repeatable)", func(v string) error {
		peers = append(peers, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("seadoptd", buildinfo.Read())
		return nil
	}
	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if _, err := seadopt.ParseExploreStrategy(*strategy); err != nil {
		return err
	}
	if _, err := seadopt.ParseParetoObjectives(*objectives); err != nil {
		return err
	}
	if *objectives != "" && !*paretoMode {
		return fmt.Errorf("-objectives needs -pareto")
	}
	defaultMode := ""
	if *paretoMode {
		defaultMode = "pareto"
	}
	var defaultPlatform *seadopt.Platform
	if *platformFile != "" {
		f, err := os.Open(*platformFile)
		if err != nil {
			return fmt.Errorf("-platform: %w", err)
		}
		defaultPlatform, err = seadopt.ParsePlatformSpec(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-platform %s: %w", *platformFile, err)
		}
		logger.Info("default platform loaded", "cores", defaultPlatform.Cores(), "file", *platformFile)
	}

	svc, err := service.NewServer(service.Config{
		Workers:           *workers,
		CacheEntries:      *cacheSize,
		QueueDepth:        *queueDepth,
		EngineParallelism: *parallel,
		JobRetention:      *retention,
		DefaultStrategy:   *strategy,
		DefaultMode:       defaultMode,
		DefaultObjectives: *objectives,
		DefaultPlatform:   defaultPlatform,
		DisableWarmStart:  !*warmStart,
		StoreDir:          *storeDir,
		Peers:             peers,
		Shards:            *shards,
		AdvertiseURL:      *advertise,
		RateLimit:         *rateLimit,
		RateBurst:         *rateBurst,
		MaxBodyBytes:      *maxBody,
		Logger:            logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := svc.Handler()
	if *pprofOn {
		// The service handler owns "/"; mount the profiler beside it on a
		// wrapper mux rather than the default mux so nothing is exposed
		// unless the operator asked for it.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("profiling endpoints enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{Handler: handler}
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", *workers, "cache_entries", *cacheSize, "build", buildinfo.Read().String())
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died; don't leak the worker pool behind it.
		abort, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = svc.Close(abort)
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first, then drain the job queue. Both share the
	// drain budget; Close aborts whatever is still running when it expires.
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err.Error())
	}
	if err := svc.Close(drainCtx); err != nil {
		logger.Warn("drain deadline exceeded; in-flight jobs were aborted")
		return nil
	}
	logger.Info("drained cleanly")
	return nil
}

// newLogger builds the daemon's structured logger from the -log-format and
// -log-level flags.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q (want text or json)", format)
	}
}
