package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"seadopt"
)

// The multi-process gauntlet: these tests re-exec the test binary as real
// seadoptd OS processes (so SIGKILL means SIGKILL and the race detector
// rides along into every daemon), wire them into a coordinator/worker
// topology or crash-and-restart cycle, and assert the distributed and
// durable-store contracts over actual HTTP.

// TestDaemonProcess is not a test: it is the re-exec entry point that turns
// this test binary into a seadoptd daemon when SEADOPTD_ARGS is set.
func TestDaemonProcess(t *testing.T) {
	raw := os.Getenv("SEADOPTD_ARGS")
	if raw == "" {
		t.Skip("helper entry point for re-exec'd daemon processes")
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	err := run(ctx, strings.Split(raw, "\x1f"), func(addr string) {
		fmt.Printf("DAEMON_ADDR %s\n", addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemonProc is one re-exec'd seadoptd process under test control. exited
// closes once the process is gone (waitErr then holds its exit error), so
// any number of waiters — terminate, sigkill, the test cleanup — can block
// on it.
type daemonProc struct {
	t       *testing.T
	cmd     *exec.Cmd
	base    string
	exited  chan struct{}
	waitErr error
}

// spawnDaemon boots seadoptd as a separate OS process and waits for it to
// report its bound address.
func spawnDaemon(t *testing.T, args ...string) *daemonProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^TestDaemonProcess$")
	cmd.Env = append(os.Environ(), "SEADOPTD_ARGS="+strings.Join(args, "\x1f"))
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "DAEMON_ADDR "); ok {
				addrCh <- addr
			}
		}
	}()
	d := &daemonProc{t: t, cmd: cmd, exited: make(chan struct{})}
	go func() {
		d.waitErr = cmd.Wait()
		close(d.exited)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		<-d.exited
	})
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-d.exited:
		t.Fatalf("daemon %v exited before ready: %v", args, d.waitErr)
	case <-time.After(time.Minute):
		t.Fatalf("daemon %v never became ready", args)
	}
	return d
}

// terminate sends SIGTERM and waits for a clean drain-and-exit.
func (d *daemonProc) terminate() {
	d.t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.exited:
		if d.waitErr != nil {
			d.t.Fatalf("daemon exit after SIGTERM: %v", d.waitErr)
		}
	case <-time.After(time.Minute):
		d.t.Fatal("daemon did not exit after SIGTERM")
	}
}

// sigkill hard-kills the process — the crash under test.
func (d *daemonProc) sigkill() {
	d.t.Helper()
	_ = d.cmd.Process.Kill()
	select {
	case <-d.exited:
	case <-time.After(time.Minute):
		d.t.Fatal("daemon did not die after SIGKILL")
	}
}

type jobView struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Error    string          `json:"error"`
	CacheHit bool            `json:"cache_hit"`
	Result   json.RawMessage `json:"result"`
}

func submitEnvelope(t *testing.T, base string, env []byte) jobView {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs: %d: %s", resp.StatusCode, raw)
	}
	var jv jobView
	if err := json.Unmarshal(raw, &jv); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return jv
}

func getJobView(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %d: %s", id, resp.StatusCode, raw)
	}
	var jv jobView
	if err := json.Unmarshal(raw, &jv); err != nil {
		t.Fatal(err)
	}
	return jv
}

func waitJobState(t *testing.T, base, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		jv := getJobView(t, base, id)
		if jv.State == want {
			return jv
		}
		if jv.State == "failed" || jv.State == "canceled" ||
			(jv.State == "done" && want != "done") {
			t.Fatalf("job %s reached %s (%s), want %s", id, jv.State, jv.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, jv.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mpeg2Env(t *testing.T, extra map[string]any) []byte {
	t.Helper()
	gj, err := seadopt.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	options := map[string]any{
		"deadline_sec":      seadopt.MPEG2Deadline,
		"stream_iterations": seadopt.MPEG2Frames,
		"seed":              2010,
	}
	for k, v := range extra {
		options[k] = v
	}
	env, err := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 4, "levels": 3},
		"options":  options,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// freeAddr reserves an ephemeral port and releases it for the daemon that
// needs to know its own address (-advertise) before binding.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDistributedDaemons boots a coordinator and two worker seadoptd
// processes on ephemeral ports, runs MPEG-2 scalar and Pareto jobs through
// the coordinator, and asserts the result bytes equal a single-node
// daemon's golden bytes, with the shard counters proving the work went
// remote.
func TestDistributedDaemons(t *testing.T) {
	single := spawnDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s")
	w1 := spawnDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s")
	w2 := spawnDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "10s")
	coordAddr := freeAddr(t)
	coord := spawnDaemon(t, "-addr", coordAddr, "-advertise", "http://"+coordAddr,
		"-peer", w1.base, "-peer", w2.base, "-workers", "1", "-drain-timeout", "10s")

	for _, tc := range []struct {
		name  string
		extra map[string]any
	}{
		{"scalar", nil},
		{"pareto", map[string]any{"mode": "pareto"}},
	} {
		env := mpeg2Env(t, tc.extra)
		ref := submitEnvelope(t, single.base, env)
		golden := waitJobState(t, single.base, ref.ID, "done")

		got := submitEnvelope(t, coord.base, env)
		final := waitJobState(t, coord.base, got.ID, "done")
		if !bytes.Equal(final.Result, golden.Result) {
			t.Fatalf("%s: distributed result differs from single-node golden:\n%s\nvs\n%s",
				tc.name, final.Result, golden.Result)
		}
	}

	mresp, err := http.Get(coord.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(body, []byte("seadoptd_sharded_executions_total 2")) {
		t.Fatalf("coordinator did not shard both jobs:\n%s",
			firstMatching(body, "seadoptd_sharded_executions_total"))
	}
	var served int
	for _, w := range []*daemonProc{w1, w2} {
		resp, err := http.Get(w.base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		wb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v int
		if _, err := fmt.Sscanf(firstMatching(wb, "seadoptd_shards_served_total"),
			"seadoptd_shards_served_total %d", &v); err != nil {
			t.Fatalf("worker metrics: %v", err)
		}
		served += v
	}
	if served != 4 {
		t.Fatalf("workers served %d shards for 2 sharded jobs × 2 peers, want 4", served)
	}

	coord.terminate()
	w1.terminate()
	w2.terminate()
	single.terminate()
}

func firstMatching(body []byte, prefix string) string {
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			return line
		}
	}
	return ""
}

// TestCrashRecoveryDaemon is the durability acceptance test as real
// processes: a daemon with a -store directory finishes one job and is
// running another when it is SIGKILLed; the restarted daemon (same store)
// still serves the finished job's exact bytes, answers an identical
// resubmission from the recovered cache, and has re-enqueued the
// interrupted job under its original ID.
func TestCrashRecoveryDaemon(t *testing.T) {
	dir := t.TempDir()
	d1 := spawnDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-store", dir, "-drain-timeout", "5s")

	fast := mpeg2Env(t, nil)
	fj := submitEnvelope(t, d1.base, fast)
	finished := waitJobState(t, d1.base, fj.ID, "done")

	// A long job to be mid-flight at the kill: a 60-task graph with a large
	// local-search budget.
	g, err := seadopt.RandomGraph(seadopt.DefaultRandomGraphConfig(60), 3)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	slowEnv, _ := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 6, "levels": 3},
		"options": map[string]any{
			"deadline_sec": seadopt.RandomGraphDeadline(60),
			"search_moves": 500_000,
			"seed":         3,
		},
	})
	sj := submitEnvelope(t, d1.base, slowEnv)
	waitJobState(t, d1.base, sj.ID, "running")

	d1.sigkill()

	d2 := spawnDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1",
		"-store", dir, "-drain-timeout", "5s")

	// The finished job survived with its exact bytes.
	rec := getJobView(t, d2.base, fj.ID)
	if rec.State != "done" {
		t.Fatalf("recovered job %s in state %s, want done", fj.ID, rec.State)
	}
	if !bytes.Equal(rec.Result, finished.Result) {
		t.Fatalf("recovered result bytes changed:\n%s\nvs\n%s", rec.Result, finished.Result)
	}
	// An identical resubmission is served from the recovered cache.
	again := submitEnvelope(t, d2.base, fast)
	if !again.CacheHit || !bytes.Equal(again.Result, finished.Result) {
		t.Fatalf("resubmission after crash: cacheHit=%v, bytes equal=%v",
			again.CacheHit, bytes.Equal(again.Result, finished.Result))
	}
	// The interrupted job was re-enqueued under its original ID.
	mid := getJobView(t, d2.base, sj.ID)
	if mid.State != "queued" && mid.State != "running" {
		t.Fatalf("interrupted job %s recovered in state %s, want queued/running", sj.ID, mid.State)
	}
	// Cancel it so the drain below is prompt; cancellation must work on a
	// recovered flight like on any other.
	req, _ := http.NewRequest(http.MethodDelete, d2.base+"/v1/jobs/"+sj.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel recovered job: %d", resp.StatusCode)
	}

	d2.terminate()
}
