package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"seadopt"
	"seadopt/internal/service"
)

// TestDaemonMetricsExposition is the observability integration check: boot
// a real daemon with JSON logging, run one job through it, then validate
// the full /metrics scrape with the strict exposition parser and fetch the
// job's stats and worker-timeline trace. CI runs this step race-enabled.
func TestDaemonMetricsExposition(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-workers", "1", "-log-format", "json", "-drain-timeout", "30s"},
			func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	defer func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(time.Minute):
			t.Error("daemon failed to drain and exit")
		}
	}()

	// Health includes the build identity.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string         `json:"status"`
		Build  map[string]any `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Build["go"] == "" {
		t.Fatalf("healthz: %+v", health)
	}

	// Run one job to completion so the engine histograms have samples.
	gj, err := seadopt.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, _ := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 4, "levels": 3},
		"options": map[string]any{
			"deadline_sec":      seadopt.MPEG2Deadline,
			"stream_iterations": seadopt.MPEG2Frames,
			"seed":              2026,
		},
	})
	presp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		jresp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var js struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(jresp.Body).Decode(&js)
		jresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if js.State == "done" {
			break
		}
		if js.State == "failed" || js.State == "canceled" {
			t.Fatalf("job ended %s: %s", js.State, js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", js.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The full scrape must be valid Prometheus text format, with the three
	// latency histograms and the build-info series present.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := service.LintMetrics(scrape); err != nil {
		t.Fatalf("/metrics fails exposition lint: %v", err)
	}
	for _, want := range []string{
		"# TYPE seadoptd_job_queue_wait_seconds histogram",
		"# TYPE seadoptd_engine_exec_seconds histogram",
		"# TYPE seadoptd_http_request_duration_seconds histogram",
		"seadoptd_build_info{",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Per-job engine stats and the perfetto trace are served.
	sresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		EngineStats struct {
			WallNs int64 `json:"wall_ns"`
			Combos struct {
				Total int64 `json:"total"`
			} `json:"combinations"`
			Workers []json.RawMessage `json:"workers"`
		} `json:"engine_stats"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.EngineStats.WallNs <= 0 || stats.EngineStats.Combos.Total == 0 || len(stats.EngineStats.Workers) == 0 {
		t.Fatalf("stats endpoint returned an empty snapshot: %+v", stats.EngineStats)
	}

	tresp, err := http.Get(base + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceRaw, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRaw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	rows := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			rows[ev.TID] = true
		}
	}
	if want := len(stats.EngineStats.Workers) + 1; len(rows) != want {
		t.Errorf("trace has %d named rows, want %d (one per engine worker + events)", len(rows), want)
	}
}
