package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/seadopt -update
//
// The CLI's output is a pure function of its flags — the engine is
// deterministic at any parallelism, the fault-injection campaign is seeded,
// and every invocation below pins its seed — so the files are stable. They
// encode floating-point results produced on the CI architecture; regenerate
// rather than hand-edit.
var update = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// runCLI drives the command in-process and returns its stdout, stderr and
// exit code.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// checkGolden diffs got against testdata/<name>.golden, rewriting the file
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test ./cmd/seadopt -update` to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// TestGoldenMPEG2Scalar is the end-to-end text invocation of the README's
// first example: MPEG-2, scalar optimization, fault injection on the chosen
// design.
func TestGoldenMPEG2Scalar(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-graph", "mpeg2", "-seed", "2010", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "mpeg2_scalar", stdout)
}

// TestGoldenMPEG2Pareto covers the frontier path end to end.
func TestGoldenMPEG2Pareto(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-graph", "mpeg2", "-pareto", "-seed", "2010")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "mpeg2_pareto", stdout)
}

// TestGoldenMPEG2JSON covers the machine-readable path: stdout must carry
// exactly the wire JSON (the encoding seadoptd serves), with all narration
// on stderr.
func TestGoldenMPEG2JSON(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-graph", "mpeg2", "-seed", "2010", "-json", "-inject=false")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	var wire map[string]any
	if err := json.Unmarshal([]byte(stdout), &wire); err != nil {
		t.Fatalf("stdout is not a single JSON document: %v\n%s", err, stdout)
	}
	for _, key := range []string{"graph", "scaling", "mapping", "eval", "cores"} {
		if _, ok := wire[key]; !ok {
			t.Errorf("wire JSON missing %q", key)
		}
	}
	checkGolden(t, "mpeg2_json", stdout)
}

// TestGoldenHeterogeneousPlatform exercises the -platform spec path with a
// progress stream over the mixed-radix enumeration.
func TestGoldenHeterogeneousPlatform(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-graph", "mpeg2", "-seed", "2010",
		"-platform", filepath.Join("testdata", "mixed.json"),
		"-progress", "-inject=false")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "mpeg2_hetero", stdout)
}

// TestGoldenNoCPlatform: the -platform spec path with a contended 2D-mesh
// interconnect — the fabric must flow through the CLI end to end and leave
// the output byte-stable.
func TestGoldenNoCPlatform(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-graph", "mpeg2", "-seed", "2010",
		"-platform", filepath.Join("testdata", "noc.json"),
		"-inject=false")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "mpeg2_noc", stdout)
}

// TestGoldenDumpGraph: the canonical graph dump is the documented way to
// pipe a workload into seadoptd; it must stay byte-stable.
func TestGoldenDumpGraph(t *testing.T) {
	stdout, stderr, code := runCLI(t, "-graph", "fig8", "-dump-graph")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "fig8_dump", stdout)
}

// TestGoldenMPEG2DeadlineSweep: the -deadline-sweep range form evaluates
// every point over one shared reuse layer and lists one design per
// deadline; the text output must stay byte-stable.
func TestGoldenMPEG2DeadlineSweep(t *testing.T) {
	stdout, stderr, code := runCLI(t,
		"-graph", "mpeg2", "-seed", "2010",
		"-deadline-sweep", "13:15:1", "-inject=false")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	checkGolden(t, "mpeg2_sweep", stdout)

	// -cold-sweep disables warm-starting but must not change any design.
	coldOut, stderr, code := runCLI(t,
		"-graph", "mpeg2", "-seed", "2010",
		"-deadline-sweep", "13:15:1", "-cold-sweep", "-inject=false")
	if code != 0 {
		t.Fatalf("cold sweep exit code %d, stderr:\n%s", code, stderr)
	}
	if coldOut != stdout {
		t.Errorf("-cold-sweep changed the sweep output:\n--- warm ---\n%s--- cold ---\n%s", stdout, coldOut)
	}
}

// TestCLISweepSpecJSON drives a Pareto sweep from a -sweep-spec file and
// checks the machine-readable output: one frontier per (deadline ×
// objective set) point.
func TestCLISweepSpecJSON(t *testing.T) {
	spec := filepath.Join(t.TempDir(), "sweep.json")
	doc := `{"deadlines": [14, 14.581], "point_mode": "pareto", "objective_sets": ["", "power,makespan"]}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runCLI(t,
		"-graph", "mpeg2", "-seed", "2010",
		"-sweep-spec", spec, "-json", "-inject=false")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	var points []struct {
		Point       int             `json:"point"`
		DeadlineSec float64         `json:"deadline_sec"`
		Objectives  string          `json:"objectives"`
		Frontier    json.RawMessage `json:"frontier"`
	}
	if err := json.Unmarshal([]byte(stdout), &points); err != nil {
		t.Fatalf("stdout is not a JSON point array: %v\n%s", err, stdout)
	}
	if len(points) != 4 {
		t.Fatalf("%d points for 2 deadlines x 2 objective sets, want 4", len(points))
	}
	for i, pt := range points {
		if pt.Point != i+1 {
			t.Errorf("point %d numbered %d, want 1-based order", i, pt.Point)
		}
		if len(pt.Frontier) == 0 {
			t.Errorf("point %d has no frontier", pt.Point)
		}
	}
}

// TestCLIErrors: flag and input mistakes exit 1 with a message, without
// touching the golden files.
func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"-graph", "nonsense"},
		{"-graph", "mpeg2", "-levels", "9"},
		{"-graph", "mpeg2", "-objectives", "power"}, // -objectives without -pareto
		{"-graph", "mpeg2", "-baseline", "nonsense"},
		{"-graph", "mpeg2", "-platform", "testdata/absent.json"},
		{"-graph", "mpeg2", "-pareto", "-baseline", "reg"},
		{"-graph", "mpeg2", "-strategy", "nonsense"},
		{"-graph", "mpeg2", "-deadline-sweep", "15:13:1"}, // hi < lo
		{"-graph", "mpeg2", "-deadline-sweep", "13:15:0"}, // zero step
		{"-graph", "mpeg2", "-deadline-sweep", "13:15"},   // not lo:hi:step
		{"-graph", "mpeg2", "-deadline-sweep", "13:15:1", "-baseline", "reg"},
		{"-graph", "mpeg2", "-sweep-spec", "testdata/absent.json"},
	}
	for _, args := range cases {
		stdout, stderr, code := runCLI(t, args...)
		if code != 1 {
			t.Errorf("args %v: exit code %d, want 1 (stdout %q)", args, code, stdout)
		}
		if !strings.Contains(stderr, "seadopt:") {
			t.Errorf("args %v: stderr carries no error: %q", args, stderr)
		}
	}
}

// TestCLIInfeasibleExitCode: an impossible deadline exits 2 and warns.
func TestCLIInfeasibleExitCode(t *testing.T) {
	_, stderr, code := runCLI(t, "-graph", "fig8", "-deadline", "0.000001", "-inject=false")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "no deadline-meeting design") {
		t.Errorf("missing infeasibility warning, stderr: %q", stderr)
	}
}
