// Command seadopt runs a single soft error-aware design optimization: it
// loads a workload (the paper's MPEG-2 decoder, the Fig. 8 example, or a
// random task graph), explores the voltage-scaling × task-mapping design
// space, and prints the chosen design with its power, register usage,
// execution time and expected/measured SEU counts.
//
// Examples:
//
//	seadopt -graph mpeg2 -cores 4
//	seadopt -graph random -tasks 60 -cores 6 -levels 3 -seed 7
//	seadopt -graph mpeg2 -cores 4 -baseline regtime   # the Exp:3 baseline
//	seadopt -graph mpeg2 -platform mixed.json         # heterogeneous MPSoC
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"seadopt"
	"seadopt/internal/buildinfo"
	"seadopt/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI with its streams injected, so the golden-file tests
// drive it in-process. It returns the process exit code: 0 on success, 1 on
// errors, 2 when no deadline-meeting design exists.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("seadopt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphName = fs.String("graph", "mpeg2", "workload: mpeg2, fig8 or random")
		tasks     = fs.Int("tasks", 60, "task count for -graph random")
		cores     = fs.Int("cores", 4, "number of MPSoC processing cores")
		levels    = fs.Int("levels", 3, "DVS levels (2, 3 or 4)")
		platFile  = fs.String("platform", "", "JSON platform-spec file (heterogeneous MPSoCs; overrides -cores/-levels)")
		deadline  = fs.Float64("deadline", -1, "real-time constraint in seconds (-1 = workload default)")
		ser       = fs.Float64("ser", seadopt.DefaultSER, "soft error rate, SEU/bit/cycle (0 or negative = no soft errors)")
		moves     = fs.Int("moves", 0, "per-scaling search budget (0 = default)")
		parallel  = fs.Int("parallel", 0, "scaling-combination workers (0 = all cores, 1 = sequential; same result either way)")
		strategy  = fs.String("strategy", "", "exploration strategy: bnb (default; same answer as exhaustive, prunes provably irrelevant scalings), exhaustive, or sampled (approximate)")
		budget    = fs.Int("sample-budget", 0, "combinations the sampled strategy maps (0 = default)")
		ranked    = fs.Bool("ranked", false, "seed the bnb incumbent via a ranked (cheapest-nominal-first) pass before the stream; same answer, often much faster")
		dlSweep   = fs.String("deadline-sweep", "", "evaluate a lo:hi:step deadline sweep (seconds) over one shared reuse layer instead of a single run; honors -pareto/-objectives per point")
		sweepSpec = fs.String("sweep-spec", "", "JSON sweep-spec file {\"deadlines\":[..],\"point_mode\":\"scalar|pareto\",\"objective_sets\":[..],\"no_warm_start\":false}; overrides -deadline-sweep/-pareto/-objectives")
		coldSweep = fs.Bool("cold-sweep", false, "run sweep points without warm-starting (same designs, byte-identical per-point progress to independent runs)")
		paretoRun = fs.Bool("pareto", false, "return the Pareto frontier of feasible designs instead of the single minimum-power one")
		objs      = fs.String("objectives", "", "pareto objectives, comma-separated subset of power,makespan,gamma (default all three)")
		progress  = fs.Bool("progress", false, "print one line per resolved scaling combination")
		seed      = fs.Int64("seed", 2010, "random seed")
		baseline  = fs.String("baseline", "", "run a soft error-unaware baseline instead: reg, makespan or regtime")
		gantt     = fs.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		stats     = fs.Bool("stats", false, "print structural statistics of the workload graph and, after the run, the exploration telemetry (phase timings, prune/cache counters)")
		version   = fs.Bool("version", false, "print build version information and exit")
		traceOut  = fs.String("trace", "", "write a Chrome-tracing JSON of the design's simulation to this file")
		inject    = fs.Bool("inject", true, "run fault injection on the chosen design")
		jsonOut   = fs.Bool("json", false, "print the chosen design as wire JSON (the encoding seadoptd serves) instead of text")
		dumpGraph = fs.Bool("dump-graph", false, "print the workload graph as canonical JSON and exit (pipe into a seadoptd job)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "seadopt:", err)
		return 1
	}
	if *version {
		fmt.Fprintln(stdout, "seadopt", buildinfo.Read())
		return 0
	}
	// Human-facing narration (progress lines, trace and fault-injection
	// notices) moves to stderr when stdout is reserved for the
	// machine-readable -json payload.
	narration := stdout
	if *jsonOut {
		narration = stderr
	}

	g, dl, iters, err := loadWorkload(*graphName, *tasks, *seed)
	if err != nil {
		return fail(err)
	}
	if *dumpGraph {
		data, err := g.MarshalJSON()
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(data, '\n'))
		return 0
	}
	if *deadline >= 0 {
		dl = *deadline
	}
	var sys *seadopt.System
	platformDesc := ""
	if *platFile != "" {
		f, err := os.Open(*platFile)
		if err != nil {
			return fail(err)
		}
		p, err := seadopt.ParsePlatformSpec(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if sys, err = seadopt.NewSystem(g, p); err != nil {
			return fail(err)
		}
		platformDesc = fmt.Sprintf("%d cores (platform spec %s)", p.Cores(), *platFile)
	} else {
		if sys, err = seadopt.NewARM7System(g, *cores, *levels); err != nil {
			return fail(err)
		}
		platformDesc = fmt.Sprintf("%d cores / %d DVS levels", *cores, *levels)
	}
	if *stats {
		// Narration, like progress: must not corrupt the -json payload.
		fmt.Fprintln(narration, sys.Stats())
		fmt.Fprintln(narration)
	}
	// The library's SER sentinel is 0-means-default; the flag's default is
	// already DefaultSER, so 0 at the CLI is an explicit request for a
	// fault-free model — map it to the library's negative-means-zero form.
	serOpt := *ser
	if serOpt <= 0 {
		serOpt = -1
	}
	strat, err := seadopt.ParseExploreStrategy(*strategy)
	if err != nil {
		return fail(err)
	}
	objectives, err := seadopt.ParseParetoObjectives(*objs)
	if err != nil {
		return fail(err)
	}
	if *objs != "" && !*paretoRun {
		return fail(fmt.Errorf("-objectives needs -pareto"))
	}
	// Under -stats the run also collects exploration telemetry; it is
	// observe-only, so the chosen design is identical either way.
	var exploreStats *seadopt.ExploreStats
	if *stats {
		exploreStats = new(seadopt.ExploreStats)
	}
	opts := seadopt.OptimizeOptions{
		SER:              serOpt,
		DeadlineSec:      dl,
		StreamIterations: iters,
		SearchMoves:      *moves,
		Seed:             *seed,
		Parallelism:      *parallel,
		Strategy:         strat,
		SampleBudget:     *budget,
		Ranked:           *ranked,
		Objectives:       objectives,
		Stats:            exploreStats,
	}
	if *progress {
		opts.Progress = func(p seadopt.ExploreProgress) {
			switch {
			case p.Pruned:
				fmt.Fprintf(narration, "  [%2d/%2d] scaling %v  pruned (best-case makespan misses deadline)\n",
					p.Index+1, p.Total, p.Scaling)
			case p.Skipped:
				fmt.Fprintf(narration, "  [%2d/%2d] scaling %v  skipped (dominated by incumbent)\n",
					p.Index+1, p.Total, p.Scaling)
			default:
				met := "infeasible"
				if p.Design.Eval.MeetsDeadline {
					met = "feasible"
				}
				fmt.Fprintf(narration, "  [%2d/%2d] scaling %v  P=%.3f mW  Γ=%.4g  %s\n",
					p.Index+1, p.Total, p.Scaling,
					p.Design.Eval.PowerW*1e3, p.Design.Eval.Gamma, met)
			}
		}
	}

	if *dlSweep != "" || *sweepSpec != "" {
		if *baseline != "" {
			return fail(fmt.Errorf("sweeps support only the proposed mapper, not -baseline %s", *baseline))
		}
		code, err := runSweep(sys, g.Name(), platformDesc, opts, sweepParams{
			rangeSpec: *dlSweep, specFile: *sweepSpec, pareto: *paretoRun,
			objectives: objectives, cold: *coldSweep, progress: *progress,
			jsonOut: *jsonOut,
		}, stdout, narration)
		if err != nil {
			return fail(err)
		}
		printExploreStats(narration, exploreStats)
		return code
	}

	if *paretoRun {
		if *baseline != "" {
			return fail(fmt.Errorf("-pareto supports only the proposed mapper, not -baseline %s", *baseline))
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "exploring the (%s) Pareto frontier of %s on %s (deadline %.3fs)...\n",
				objectives, g.Name(), platformDesc, dl)
		}
		frontier, err := sys.OptimizePareto(opts)
		if err != nil {
			return fail(err)
		}
		if *jsonOut {
			data, err := json.Marshal(frontier)
			if err != nil {
				return fail(err)
			}
			stdout.Write(append(data, '\n'))
		} else {
			fmt.Fprintf(stdout, "frontier: %d design(s)\n", len(frontier))
			for i, d := range frontier {
				fmt.Fprintf(stdout, "[%d] %s", i, d.Summary())
			}
		}
		printExploreStats(narration, exploreStats)
		if !frontier[0].Eval.MeetsDeadline {
			fmt.Fprintln(stderr, "warning: no deadline-meeting design exists for this configuration")
			return 2
		}
		return 0
	}

	var design *seadopt.Design
	switch *baseline {
	case "":
		if !*jsonOut {
			fmt.Fprintf(stdout, "optimizing %s on %s (proposed, deadline %.3fs)...\n",
				g.Name(), platformDesc, dl)
		}
		design, err = sys.Optimize(opts)
	case "reg":
		design, err = sys.OptimizeBaseline(seadopt.MinimizeRegisterUsage, opts)
	case "makespan":
		design, err = sys.OptimizeBaseline(seadopt.MinimizeMakespan, opts)
	case "regtime":
		design, err = sys.OptimizeBaseline(seadopt.MinimizeRegTime, opts)
	default:
		return fail(fmt.Errorf("unknown baseline %q (want reg, makespan or regtime)", *baseline))
	}
	if err != nil {
		return fail(err)
	}

	if *jsonOut {
		data, err := json.Marshal(design)
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(data, '\n'))
	} else {
		fmt.Fprint(stdout, design.Summary())
		if *gantt {
			fmt.Fprint(stdout, design.Gantt(100))
		}
	}
	printExploreStats(narration, exploreStats)
	if *traceOut != "" {
		if err := writeTrace(*traceOut, sys, design, iters); err != nil {
			return fail(err)
		}
		fmt.Fprintf(narration, "wrote simulation trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *inject {
		measured, expected, err := sys.InjectFaults(design.Mapping, design.Scaling, iters, serOpt, *seed)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(narration, "fault injection: %d SEUs experienced (analytic expectation %.4g)\n", measured, expected)
	}
	if !design.Eval.MeetsDeadline {
		fmt.Fprintln(stderr, "warning: no deadline-meeting design exists for this configuration")
		return 2
	}
	return 0
}

// sweepParams collects the sweep-defining CLI inputs.
type sweepParams struct {
	rangeSpec  string // lo:hi:step, from -deadline-sweep
	specFile   string // JSON sweep-spec path, from -sweep-spec
	pareto     bool
	objectives seadopt.ParetoObjectives
	cold       bool
	progress   bool
	jsonOut    bool
}

// sweepSpecDoc is the -sweep-spec file format: the deadline points, the
// per-point reduction, optional Pareto objective sets to cross the deadlines
// with, and whether to disable warm-starting.
type sweepSpecDoc struct {
	Deadlines     []float64 `json:"deadlines"`
	PointMode     string    `json:"point_mode"`
	ObjectiveSets []string  `json:"objective_sets"`
	NoWarmStart   bool      `json:"no_warm_start"`
}

// parseDeadlineRange expands a lo:hi:step spec into an inclusive deadline
// list (hi is included when it lands on the grid, up to rounding).
func parseDeadlineRange(spec string) ([]float64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-deadline-sweep %q: want lo:hi:step", spec)
	}
	vals := make([]float64, 3)
	for i, s := range parts {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("-deadline-sweep %q: %q is not a number", spec, s)
		}
		vals[i] = v
	}
	lo, hi, step := vals[0], vals[1], vals[2]
	if lo < 0 || hi < lo || step <= 0 {
		return nil, fmt.Errorf("-deadline-sweep %q: need 0 <= lo <= hi and step > 0", spec)
	}
	var out []float64
	for i := 0; ; i++ {
		d := lo + step*float64(i)
		if d > hi+step*1e-9 {
			break
		}
		if len(out) >= 10000 {
			return nil, fmt.Errorf("-deadline-sweep %q: more than 10000 points", spec)
		}
		out = append(out, d)
	}
	return out, nil
}

// runSweep evaluates a deadline sweep over one shared reuse layer: one
// bounds precompute, one probe-trajectory cache and one evaluator pool for
// every point, with each point's result byte-identical to an independent
// run at that deadline. Exit code 2 means no point admitted a
// deadline-meeting design.
func runSweep(sys *seadopt.System, graphName, platformDesc string, opts seadopt.OptimizeOptions,
	p sweepParams, stdout, narration io.Writer) (int, error) {
	var deadlines []float64
	pareto := p.pareto
	var objSets []seadopt.ParetoObjectives
	cold := p.cold
	if p.specFile != "" {
		data, err := os.ReadFile(p.specFile)
		if err != nil {
			return 1, err
		}
		var doc sweepSpecDoc
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&doc); err != nil {
			return 1, fmt.Errorf("parsing sweep spec %s: %w", p.specFile, err)
		}
		deadlines = doc.Deadlines
		switch doc.PointMode {
		case "", "scalar":
			pareto = false
			if len(doc.ObjectiveSets) > 0 {
				return 1, fmt.Errorf("sweep spec objective_sets need point_mode \"pareto\"")
			}
		case "pareto":
			pareto = true
			sets := doc.ObjectiveSets
			if len(sets) == 0 {
				sets = []string{""}
			}
			for _, s := range sets {
				o, err := seadopt.ParseParetoObjectives(s)
				if err != nil {
					return 1, err
				}
				objSets = append(objSets, o)
			}
		default:
			return 1, fmt.Errorf("sweep spec point_mode %q (want scalar or pareto)", doc.PointMode)
		}
		cold = cold || doc.NoWarmStart
	} else {
		var err error
		deadlines, err = parseDeadlineRange(p.rangeSpec)
		if err != nil {
			return 1, err
		}
		if pareto {
			objSets = []seadopt.ParetoObjectives{p.objectives}
		}
	}
	if len(deadlines) == 0 {
		return 1, fmt.Errorf("sweep has no deadline points")
	}
	var points []seadopt.SweepPoint
	for _, d := range deadlines {
		if pareto {
			for _, o := range objSets {
				points = append(points, seadopt.SweepPoint{DeadlineSec: d, Pareto: true, Objectives: o})
			}
		} else {
			points = append(points, seadopt.SweepPoint{DeadlineSec: d})
		}
	}
	sopts := seadopt.SweepOptions{Options: opts, NoWarmStart: cold}
	if p.progress {
		sopts.PointProgress = func(point int, ev seadopt.ExploreProgress) {
			switch {
			case ev.Pruned:
				fmt.Fprintf(narration, "  [pt %d %2d/%2d] scaling %v  pruned\n",
					point+1, ev.Index+1, ev.Total, ev.Scaling)
			case ev.Skipped:
				fmt.Fprintf(narration, "  [pt %d %2d/%2d] scaling %v  skipped\n",
					point+1, ev.Index+1, ev.Total, ev.Scaling)
			default:
				fmt.Fprintf(narration, "  [pt %d %2d/%2d] scaling %v  P=%.3f mW  Γ=%.4g\n",
					point+1, ev.Index+1, ev.Total, ev.Scaling,
					ev.Design.Eval.PowerW*1e3, ev.Design.Eval.Gamma)
			}
		}
	}
	if !p.jsonOut {
		fmt.Fprintf(stdout, "sweeping %d point(s) (%d deadline(s)) of %s on %s...\n",
			len(points), len(deadlines), graphName, platformDesc)
	}
	results, err := sys.OptimizeSweep(points, sopts)
	if err != nil {
		return 1, err
	}
	if p.jsonOut {
		type pointJSON struct {
			Point       int               `json:"point"`
			DeadlineSec float64           `json:"deadline_sec"`
			Objectives  string            `json:"objectives,omitempty"`
			Design      *seadopt.Design   `json:"design,omitempty"`
			Frontier    []*seadopt.Design `json:"frontier,omitempty"`
		}
		out := make([]pointJSON, len(results))
		for i, r := range results {
			out[i] = pointJSON{Point: i + 1, DeadlineSec: r.Spec.DeadlineSec}
			if r.Spec.Pareto {
				out[i].Objectives = r.Spec.Objectives.String()
				out[i].Frontier = r.Frontier
			} else {
				out[i].Design = r.Design
			}
		}
		data, err := json.Marshal(out)
		if err != nil {
			return 1, err
		}
		stdout.Write(append(data, '\n'))
	} else {
		for i, r := range results {
			if r.Spec.Pareto {
				fmt.Fprintf(stdout, "[%d] deadline %.4fs (%s): frontier of %d design(s)\n",
					i+1, r.Spec.DeadlineSec, r.Spec.Objectives, len(r.Frontier))
				for j, d := range r.Frontier {
					fmt.Fprintf(stdout, "  [%d.%d] %s", i+1, j, d.Summary())
				}
			} else {
				fmt.Fprintf(stdout, "[%d] deadline %.4fs: %s", i+1, r.Spec.DeadlineSec, r.Design.Summary())
			}
		}
	}
	// Exit 2 only when NO point admits a deadline-meeting design — a sweep
	// deliberately probing past the feasibility knee is not an error.
	for _, r := range results {
		if r.Design != nil && r.Design.Eval.MeetsDeadline {
			return 0, nil
		}
		if len(r.Frontier) > 0 && r.Frontier[0].Eval.MeetsDeadline {
			return 0, nil
		}
	}
	fmt.Fprintln(narration, "warning: no deadline-meeting design exists at any sweep point")
	return 2, nil
}

func loadWorkload(name string, tasks int, seed int64) (g *seadopt.Graph, deadlineSec float64, streamIters int, err error) {
	switch name {
	case "mpeg2":
		return seadopt.MPEG2(), seadopt.MPEG2Deadline, seadopt.MPEG2Frames, nil
	case "fig8":
		return seadopt.Fig8(), 0.075, 1, nil
	case "random":
		g, err := seadopt.RandomGraph(seadopt.DefaultRandomGraphConfig(tasks), seed)
		if err != nil {
			return nil, 0, 0, err
		}
		return g, seadopt.RandomGraphDeadline(tasks), 1, nil
	default:
		return nil, 0, 0, fmt.Errorf("unknown graph %q (want mpeg2, fig8 or random)", name)
	}
}

// printExploreStats narrates the telemetry snapshot after a run (values are
// timing-dependent, so this is narration, never golden-compared output).
func printExploreStats(w io.Writer, st *seadopt.ExploreStats) {
	if st == nil || st.Passes == 0 {
		return
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(w, "exploration telemetry (%s, parallelism %d, %d pass(es)):\n",
		st.Strategy, st.Parallelism, st.Passes)
	fmt.Fprintf(w, "  wall %.1f ms  |  bounds %.1f  ranked %.1f  enum %.1f  probe %.1f  mapper %.1f  fold %.1f ms busy\n",
		ms(st.WallNanos), ms(st.Phases.BoundsNanos), ms(st.Phases.RankedSeedNanos),
		ms(st.Phases.EnumerationNanos), ms(st.Phases.ProbeNanos),
		ms(st.Phases.MapperNanos), ms(st.Phases.FoldNanos))
	fmt.Fprintf(w, "  combinations: %d total = %d evaluated + %d pruned + %d skipped (mapper ran %d, spared %d)\n",
		st.Combos.Total, st.Combos.Evaluated, st.Combos.Pruned, st.Combos.Skipped,
		st.Combos.MapperRuns, st.Combos.MapperSpared)
	fmt.Fprintf(w, "  probe cache: %d hits / %d misses (%.0f%% hit rate)  delta evals: %d patched / %d rescheduled\n",
		st.ProbeCache.Hits, st.ProbeCache.Misses, 100*st.ProbeCache.HitRate(),
		st.Eval.DeltaPatched, st.Eval.DeltaRescheduled)
	for _, ws := range st.Workers {
		fmt.Fprintf(w, "  worker %d: %d combinations, %.1f ms busy\n",
			ws.Worker, ws.Combinations, ms(ws.BusyNanos))
	}
}

// writeTrace simulates the design cycle-accurately and exports the run in
// the Chrome Trace Event format.
func writeTrace(path string, sys *seadopt.System, d *seadopt.Design, iters int) error {
	r, err := sys.Simulate(d.Mapping, d.Scaling, iters)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteSimulation(f, r)
}
