// Command seadopt runs a single soft error-aware design optimization: it
// loads a workload (the paper's MPEG-2 decoder, the Fig. 8 example, or a
// random task graph), explores the voltage-scaling × task-mapping design
// space, and prints the chosen design with its power, register usage,
// execution time and expected/measured SEU counts.
//
// Examples:
//
//	seadopt -graph mpeg2 -cores 4
//	seadopt -graph random -tasks 60 -cores 6 -levels 3 -seed 7
//	seadopt -graph mpeg2 -cores 4 -baseline regtime   # the Exp:3 baseline
//	seadopt -graph mpeg2 -platform mixed.json         # heterogeneous MPSoC
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"seadopt"
	"seadopt/internal/buildinfo"
	"seadopt/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI with its streams injected, so the golden-file tests
// drive it in-process. It returns the process exit code: 0 on success, 1 on
// errors, 2 when no deadline-meeting design exists.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("seadopt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphName = fs.String("graph", "mpeg2", "workload: mpeg2, fig8 or random")
		tasks     = fs.Int("tasks", 60, "task count for -graph random")
		cores     = fs.Int("cores", 4, "number of MPSoC processing cores")
		levels    = fs.Int("levels", 3, "DVS levels (2, 3 or 4)")
		platFile  = fs.String("platform", "", "JSON platform-spec file (heterogeneous MPSoCs; overrides -cores/-levels)")
		deadline  = fs.Float64("deadline", -1, "real-time constraint in seconds (-1 = workload default)")
		ser       = fs.Float64("ser", seadopt.DefaultSER, "soft error rate, SEU/bit/cycle (0 or negative = no soft errors)")
		moves     = fs.Int("moves", 0, "per-scaling search budget (0 = default)")
		parallel  = fs.Int("parallel", 0, "scaling-combination workers (0 = all cores, 1 = sequential; same result either way)")
		strategy  = fs.String("strategy", "", "exploration strategy: bnb (default; same answer as exhaustive, prunes provably irrelevant scalings), exhaustive, or sampled (approximate)")
		budget    = fs.Int("sample-budget", 0, "combinations the sampled strategy maps (0 = default)")
		ranked    = fs.Bool("ranked", false, "seed the bnb incumbent via a ranked (cheapest-nominal-first) pass before the stream; same answer, often much faster")
		paretoRun = fs.Bool("pareto", false, "return the Pareto frontier of feasible designs instead of the single minimum-power one")
		objs      = fs.String("objectives", "", "pareto objectives, comma-separated subset of power,makespan,gamma (default all three)")
		progress  = fs.Bool("progress", false, "print one line per resolved scaling combination")
		seed      = fs.Int64("seed", 2010, "random seed")
		baseline  = fs.String("baseline", "", "run a soft error-unaware baseline instead: reg, makespan or regtime")
		gantt     = fs.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		stats     = fs.Bool("stats", false, "print structural statistics of the workload graph and, after the run, the exploration telemetry (phase timings, prune/cache counters)")
		version   = fs.Bool("version", false, "print build version information and exit")
		traceOut  = fs.String("trace", "", "write a Chrome-tracing JSON of the design's simulation to this file")
		inject    = fs.Bool("inject", true, "run fault injection on the chosen design")
		jsonOut   = fs.Bool("json", false, "print the chosen design as wire JSON (the encoding seadoptd serves) instead of text")
		dumpGraph = fs.Bool("dump-graph", false, "print the workload graph as canonical JSON and exit (pipe into a seadoptd job)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "seadopt:", err)
		return 1
	}
	if *version {
		fmt.Fprintln(stdout, "seadopt", buildinfo.Read())
		return 0
	}
	// Human-facing narration (progress lines, trace and fault-injection
	// notices) moves to stderr when stdout is reserved for the
	// machine-readable -json payload.
	narration := stdout
	if *jsonOut {
		narration = stderr
	}

	g, dl, iters, err := loadWorkload(*graphName, *tasks, *seed)
	if err != nil {
		return fail(err)
	}
	if *dumpGraph {
		data, err := g.MarshalJSON()
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(data, '\n'))
		return 0
	}
	if *deadline >= 0 {
		dl = *deadline
	}
	var sys *seadopt.System
	platformDesc := ""
	if *platFile != "" {
		f, err := os.Open(*platFile)
		if err != nil {
			return fail(err)
		}
		p, err := seadopt.ParsePlatformSpec(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if sys, err = seadopt.NewSystem(g, p); err != nil {
			return fail(err)
		}
		platformDesc = fmt.Sprintf("%d cores (platform spec %s)", p.Cores(), *platFile)
	} else {
		if sys, err = seadopt.NewARM7System(g, *cores, *levels); err != nil {
			return fail(err)
		}
		platformDesc = fmt.Sprintf("%d cores / %d DVS levels", *cores, *levels)
	}
	if *stats {
		// Narration, like progress: must not corrupt the -json payload.
		fmt.Fprintln(narration, sys.Stats())
		fmt.Fprintln(narration)
	}
	// The library's SER sentinel is 0-means-default; the flag's default is
	// already DefaultSER, so 0 at the CLI is an explicit request for a
	// fault-free model — map it to the library's negative-means-zero form.
	serOpt := *ser
	if serOpt <= 0 {
		serOpt = -1
	}
	strat, err := seadopt.ParseExploreStrategy(*strategy)
	if err != nil {
		return fail(err)
	}
	objectives, err := seadopt.ParseParetoObjectives(*objs)
	if err != nil {
		return fail(err)
	}
	if *objs != "" && !*paretoRun {
		return fail(fmt.Errorf("-objectives needs -pareto"))
	}
	// Under -stats the run also collects exploration telemetry; it is
	// observe-only, so the chosen design is identical either way.
	var exploreStats *seadopt.ExploreStats
	if *stats {
		exploreStats = new(seadopt.ExploreStats)
	}
	opts := seadopt.OptimizeOptions{
		SER:              serOpt,
		DeadlineSec:      dl,
		StreamIterations: iters,
		SearchMoves:      *moves,
		Seed:             *seed,
		Parallelism:      *parallel,
		Strategy:         strat,
		SampleBudget:     *budget,
		Ranked:           *ranked,
		Objectives:       objectives,
		Stats:            exploreStats,
	}
	if *progress {
		opts.Progress = func(p seadopt.ExploreProgress) {
			switch {
			case p.Pruned:
				fmt.Fprintf(narration, "  [%2d/%2d] scaling %v  pruned (best-case makespan misses deadline)\n",
					p.Index+1, p.Total, p.Scaling)
			case p.Skipped:
				fmt.Fprintf(narration, "  [%2d/%2d] scaling %v  skipped (dominated by incumbent)\n",
					p.Index+1, p.Total, p.Scaling)
			default:
				met := "infeasible"
				if p.Design.Eval.MeetsDeadline {
					met = "feasible"
				}
				fmt.Fprintf(narration, "  [%2d/%2d] scaling %v  P=%.3f mW  Γ=%.4g  %s\n",
					p.Index+1, p.Total, p.Scaling,
					p.Design.Eval.PowerW*1e3, p.Design.Eval.Gamma, met)
			}
		}
	}

	if *paretoRun {
		if *baseline != "" {
			return fail(fmt.Errorf("-pareto supports only the proposed mapper, not -baseline %s", *baseline))
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "exploring the (%s) Pareto frontier of %s on %s (deadline %.3fs)...\n",
				objectives, g.Name(), platformDesc, dl)
		}
		frontier, err := sys.OptimizePareto(opts)
		if err != nil {
			return fail(err)
		}
		if *jsonOut {
			data, err := json.Marshal(frontier)
			if err != nil {
				return fail(err)
			}
			stdout.Write(append(data, '\n'))
		} else {
			fmt.Fprintf(stdout, "frontier: %d design(s)\n", len(frontier))
			for i, d := range frontier {
				fmt.Fprintf(stdout, "[%d] %s", i, d.Summary())
			}
		}
		printExploreStats(narration, exploreStats)
		if !frontier[0].Eval.MeetsDeadline {
			fmt.Fprintln(stderr, "warning: no deadline-meeting design exists for this configuration")
			return 2
		}
		return 0
	}

	var design *seadopt.Design
	switch *baseline {
	case "":
		if !*jsonOut {
			fmt.Fprintf(stdout, "optimizing %s on %s (proposed, deadline %.3fs)...\n",
				g.Name(), platformDesc, dl)
		}
		design, err = sys.Optimize(opts)
	case "reg":
		design, err = sys.OptimizeBaseline(seadopt.MinimizeRegisterUsage, opts)
	case "makespan":
		design, err = sys.OptimizeBaseline(seadopt.MinimizeMakespan, opts)
	case "regtime":
		design, err = sys.OptimizeBaseline(seadopt.MinimizeRegTime, opts)
	default:
		return fail(fmt.Errorf("unknown baseline %q (want reg, makespan or regtime)", *baseline))
	}
	if err != nil {
		return fail(err)
	}

	if *jsonOut {
		data, err := json.Marshal(design)
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(data, '\n'))
	} else {
		fmt.Fprint(stdout, design.Summary())
		if *gantt {
			fmt.Fprint(stdout, design.Gantt(100))
		}
	}
	printExploreStats(narration, exploreStats)
	if *traceOut != "" {
		if err := writeTrace(*traceOut, sys, design, iters); err != nil {
			return fail(err)
		}
		fmt.Fprintf(narration, "wrote simulation trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *inject {
		measured, expected, err := sys.InjectFaults(design.Mapping, design.Scaling, iters, serOpt, *seed)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(narration, "fault injection: %d SEUs experienced (analytic expectation %.4g)\n", measured, expected)
	}
	if !design.Eval.MeetsDeadline {
		fmt.Fprintln(stderr, "warning: no deadline-meeting design exists for this configuration")
		return 2
	}
	return 0
}

func loadWorkload(name string, tasks int, seed int64) (g *seadopt.Graph, deadlineSec float64, streamIters int, err error) {
	switch name {
	case "mpeg2":
		return seadopt.MPEG2(), seadopt.MPEG2Deadline, seadopt.MPEG2Frames, nil
	case "fig8":
		return seadopt.Fig8(), 0.075, 1, nil
	case "random":
		g, err := seadopt.RandomGraph(seadopt.DefaultRandomGraphConfig(tasks), seed)
		if err != nil {
			return nil, 0, 0, err
		}
		return g, seadopt.RandomGraphDeadline(tasks), 1, nil
	default:
		return nil, 0, 0, fmt.Errorf("unknown graph %q (want mpeg2, fig8 or random)", name)
	}
}

// printExploreStats narrates the telemetry snapshot after a run (values are
// timing-dependent, so this is narration, never golden-compared output).
func printExploreStats(w io.Writer, st *seadopt.ExploreStats) {
	if st == nil || st.Passes == 0 {
		return
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(w, "exploration telemetry (%s, parallelism %d, %d pass(es)):\n",
		st.Strategy, st.Parallelism, st.Passes)
	fmt.Fprintf(w, "  wall %.1f ms  |  bounds %.1f  ranked %.1f  enum %.1f  probe %.1f  mapper %.1f  fold %.1f ms busy\n",
		ms(st.WallNanos), ms(st.Phases.BoundsNanos), ms(st.Phases.RankedSeedNanos),
		ms(st.Phases.EnumerationNanos), ms(st.Phases.ProbeNanos),
		ms(st.Phases.MapperNanos), ms(st.Phases.FoldNanos))
	fmt.Fprintf(w, "  combinations: %d total = %d evaluated + %d pruned + %d skipped (mapper ran %d, spared %d)\n",
		st.Combos.Total, st.Combos.Evaluated, st.Combos.Pruned, st.Combos.Skipped,
		st.Combos.MapperRuns, st.Combos.MapperSpared)
	fmt.Fprintf(w, "  probe cache: %d hits / %d misses (%.0f%% hit rate)  delta evals: %d patched / %d rescheduled\n",
		st.ProbeCache.Hits, st.ProbeCache.Misses, 100*st.ProbeCache.HitRate(),
		st.Eval.DeltaPatched, st.Eval.DeltaRescheduled)
	for _, ws := range st.Workers {
		fmt.Fprintf(w, "  worker %d: %d combinations, %.1f ms busy\n",
			ws.Worker, ws.Combinations, ms(ws.BusyNanos))
	}
}

// writeTrace simulates the design cycle-accurately and exports the run in
// the Chrome Trace Event format.
func writeTrace(path string, sys *seadopt.System, d *seadopt.Design, iters int) error {
	r, err := sys.Simulate(d.Mapping, d.Scaling, iters)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteSimulation(f, r)
}
