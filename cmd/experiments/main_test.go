package main

import "testing"

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"2", []string{"2"}},
		{"2,3", []string{"2", "3"}},
		{" 2 , 3 ,", []string{"2", "3"}},
		{",,", nil},
	}
	for _, c := range cases {
		got := splitList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
