// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§V): Fig. 3, Table II, Fig. 9, Table III, Fig. 10 and
// Fig. 11. Output goes to stdout; -csvdir additionally writes CSV files for
// the tabular experiments.
//
// Run everything at paper-fidelity budgets:
//
//	experiments -all
//
// or a subset, faster:
//
//	experiments -fig 3 -table 2 -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"seadopt/internal/expt"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		tables   = flag.String("table", "", "comma-separated table numbers to run (2, 3)")
		figs     = flag.String("fig", "", "comma-separated figure numbers to run (3, 9, 10, 11)")
		abl      = flag.Bool("ablations", false, "run the design-choice ablation studies")
		gap      = flag.Bool("optgap", false, "run the optimality-gap study (exhaustive enumeration)")
		quick    = flag.Bool("quick", false, "reduced budgets (~20x faster, noisier)")
		moves    = flag.Int("moves", 0, "override per-scaling search budget")
		parallel = flag.Int("parallel", 0, "scaling-combination workers per design loop (0 = all cores; results identical at any setting)")
		seed     = flag.Int64("seed", 2010, "random seed")
		csvdir   = flag.String("csvdir", "", "directory for CSV output (optional)")
	)
	flag.Parse()

	cfg := expt.Config{Seed: *seed, Parallelism: *parallel}
	if *quick {
		cfg.SearchMoves = 800
		cfg.AnnealMoves = 800
		cfg.FaultRuns = 3
	}
	if *moves > 0 {
		cfg.SearchMoves = *moves
		cfg.AnnealMoves = *moves
	}

	want := map[string]bool{}
	for _, t := range splitList(*tables) {
		want["table"+t] = true
	}
	for _, f := range splitList(*figs) {
		want["fig"+f] = true
	}
	if *abl {
		want["ablations"] = true
	}
	if *gap {
		want["optgap"] = true
	}
	if *all || len(want) == 0 && !*abl && !*gap {
		for _, k := range []string{"fig3", "table2", "fig9", "table3", "fig10", "fig11", "ablations", "optgap"} {
			want[k] = true
		}
	}

	run := func(key, title string, fn func() (renderer, error)) {
		if !want[key] {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", title)
		r, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", key, err)
			os.Exit(1)
		}
		r.Render(os.Stdout)
		fmt.Printf("(%s in %.1fs)\n\n", key, time.Since(start).Seconds())
		if *csvdir != "" {
			if c, ok := r.(csver); ok {
				path := filepath.Join(*csvdir, key+".csv")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
				c.CSVTo(f)
				f.Close()
				fmt.Printf("wrote %s\n", path)
			}
		}
	}

	run("fig3", "Fig. 3: task mapping vs T_M, R and Γ (120 mappings)", func() (renderer, error) {
		return expt.Fig3(cfg)
	})
	run("table2", "Table II: Exp:1-4 on the MPEG-2 decoder (4 cores)", func() (renderer, error) {
		return expt.TableII(cfg)
	})
	run("fig9", "Fig. 9: comparative SEUs and power at equal scaling", func() (renderer, error) {
		return expt.Fig9(cfg)
	})
	run("table3", "Table III: architecture allocation (2-6 cores)", func() (renderer, error) {
		return expt.TableIII(cfg)
	})
	run("fig10", "Fig. 10: Exp:3 vs Exp:4 across core counts (random 60)", func() (renderer, error) {
		return expt.Fig10(cfg)
	})
	run("fig11", "Fig. 11: voltage scaling levels (random 60, 6 cores)", func() (renderer, error) {
		return expt.Fig11(cfg)
	})
	run("ablations", "Ablations: exposure model, greedy seeding, scaling enumeration", func() (renderer, error) {
		return expt.Ablations(cfg)
	})
	run("optgap", "Optimality gap vs exhaustive enumeration (MPEG-2)", func() (renderer, error) {
		return expt.OptimalityGap(cfg)
	})
}

type renderer interface{ Render(w io.Writer) }

type csver interface{ CSVTo(w io.Writer) }

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
