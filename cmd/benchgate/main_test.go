package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoBaselines resolves the committed baseline files at the repository
// root relative to this package.
func repoBaselines(t *testing.T) []string {
	t.Helper()
	paths := []string{
		filepath.Join("..", "..", "BENCH_explore.json"),
		filepath.Join("..", "..", "BENCH_prune.json"),
		filepath.Join("..", "..", "BENCH_sweep.json"),
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("committed baseline missing: %v", err)
		}
	}
	return paths
}

// healthyBench renders bench output matching the committed baselines (with
// -count=3 repetition noise that the min-of-count logic must absorb).
func healthyBench() string {
	var sb strings.Builder
	lines := []struct {
		name   string
		ns     float64
		allocs int
	}{
		// OptimizeMPEG2 uses 450 allocs (not the baseline's 448) so its
		// alloc count is unique in the fixture: the regression tests below
		// rewrite it by string replacement without touching ExploreMPEG2BnB,
		// which shares the 448 figure in the committed baselines.
		{"BenchmarkOptimizeMPEG2", 807341, 450},
		{"BenchmarkEvaluate", 37924, 43},
		{"BenchmarkEvaluatorReuse", 7172, 0},
		{"BenchmarkExploreMPEG2Exhaustive", 4153701, 1796},
		{"BenchmarkExploreMPEG2BnB", 896104, 448},
		{"BenchmarkExplore16CoreExhaustive", 397196066, 69837},
		{"BenchmarkExplore16CoreBnB", 61809175, 7959},
		{"BenchmarkSweepWarmVsCold/Cold", 487193877, 71288},
		{"BenchmarkSweepWarmVsCold/Warm", 40892894, 10516},
	}
	for _, l := range lines {
		for rep := 0; rep < 3; rep++ {
			// Later repetitions are slightly slower; min-of-count keeps the best.
			ns := l.ns * (1 + 0.08*float64(rep))
			fmt.Fprintf(&sb, "%s-8  \t     100\t  %.0f ns/op\t  123 B/op\t  %d allocs/op\n", l.name, ns, l.allocs)
		}
	}
	sb.WriteString("PASS\nok  \tseadopt\t42.0s\n")
	return sb.String()
}

// runGate writes the bench output to a temp file and runs the gate against
// the committed baselines, returning exit code and combined output.
func runGate(t *testing.T, bench string, extraArgs ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := append([]string{"-bench", path}, extraArgs...)
	args = append(args, repoBaselines(t)...)
	code := run(args, &out, &out)
	return code, out.String()
}

func TestGatePassesOnHealthyRun(t *testing.T) {
	code, out := runGate(t, healthyBench())
	if code != 0 {
		t.Fatalf("healthy run failed (exit %d):\n%s", code, out)
	}
	for _, want := range []string{
		"PASS  OptimizeMPEG2",
		"PASS  ExploreMPEG2 speedup",
		"PASS  Explore16Core speedup",
		"PASS  SweepWarmVsCold warm speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("healthy run reported failures:\n%s", out)
	}
}

// TestGateFailsOnInjectedSlowdown is the acceptance criterion: a 2×
// wall-clock slowdown of the branch-and-bound benchmarks halves the
// measured speedup ratios, which a ±20% tolerance must reject.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	slowed := healthyBench()
	// Double every BnB ns/op figure: the pruning win collapses 2×.
	var sb strings.Builder
	for _, line := range strings.Split(slowed, "\n") {
		if strings.Contains(line, "BnB") {
			fields := strings.Fields(line)
			var ns float64
			fmt.Sscanf(fields[2], "%f", &ns)
			fmt.Fprintf(&sb, "%s  \t%s\t  %.0f ns/op\t  %s B/op\t  %s allocs/op\n",
				fields[0], fields[1], ns*2, fields[4], fields[6])
			continue
		}
		sb.WriteString(line + "\n")
	}
	code, out := runGate(t, sb.String())
	if code == 0 {
		t.Fatalf("2x BnB slowdown passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  ExploreMPEG2 speedup") || !strings.Contains(out, "FAIL  Explore16Core speedup") {
		t.Errorf("slowdown not attributed to the speedup checks:\n%s", out)
	}
}

// TestGateFailsOnWarmRatioCollapse: tripling the warm-start sweep's wall
// clock collapses the Cold/Warm speedup, which the warm-speedup ratio
// check must reject even while both allocation gates still pass.
func TestGateFailsOnWarmRatioCollapse(t *testing.T) {
	slowed := healthyBench()
	var sb strings.Builder
	for _, line := range strings.Split(slowed, "\n") {
		if strings.Contains(line, "SweepWarmVsCold/Warm") {
			fields := strings.Fields(line)
			var ns float64
			fmt.Sscanf(fields[2], "%f", &ns)
			fmt.Fprintf(&sb, "%s  \t%s\t  %.0f ns/op\t  %s B/op\t  %s allocs/op\n",
				fields[0], fields[1], ns*3, fields[4], fields[6])
			continue
		}
		sb.WriteString(line + "\n")
	}
	code, out := runGate(t, sb.String())
	if code == 0 {
		t.Fatalf("3x warm-sweep slowdown passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  SweepWarmVsCold warm speedup") {
		t.Errorf("slowdown not attributed to the warm speedup check:\n%s", out)
	}
	if strings.Contains(out, "FAIL  SweepWarmVsCold/Warm ") {
		t.Errorf("wall-clock slowdown tripped the allocation gate:\n%s", out)
	}
}

// TestGateFailsOnAllocRegression: a doubled allocs/op count on a baselined
// benchmark fails the allocation gate.
func TestGateFailsOnAllocRegression(t *testing.T) {
	regressed := strings.ReplaceAll(healthyBench(), "450 allocs/op", "900 allocs/op")
	code, out := runGate(t, regressed)
	if code == 0 {
		t.Fatalf("2x alloc regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  OptimizeMPEG2") {
		t.Errorf("regression not attributed to OptimizeMPEG2:\n%s", out)
	}
}

// TestGateWithinTolerancePasses: a 15% alloc increase and a 15% ratio dip
// stay inside the ±20% band.
func TestGateWithinTolerancePasses(t *testing.T) {
	bench := healthyBench()
	bench = strings.ReplaceAll(bench, "450 allocs/op", "515 allocs/op") // +15% vs the 448 baseline
	var sb strings.Builder
	for _, line := range strings.Split(bench, "\n") {
		if strings.Contains(line, "BnB") {
			fields := strings.Fields(line)
			var ns float64
			fmt.Sscanf(fields[2], "%f", &ns)
			fmt.Fprintf(&sb, "%s  \t%s\t  %.0f ns/op\t  %s B/op\t  %s allocs/op\n",
				fields[0], fields[1], ns*1.15, fields[4], fields[6])
			continue
		}
		sb.WriteString(line + "\n")
	}
	if code, out := runGate(t, sb.String()); code != 0 {
		t.Fatalf("within-tolerance drift failed the gate:\n%s", out)
	}
}

// TestGateRefusesToCheckNothing: output with no baselined benchmark fails
// rather than vacuously passing.
func TestGateRefusesToCheckNothing(t *testing.T) {
	code, out := runGate(t, "BenchmarkUnrelated-8  100  5 ns/op  0 B/op  0 allocs/op\n")
	if code == 0 {
		t.Fatalf("empty-check run passed:\n%s", out)
	}
}

func TestFlagErrors(t *testing.T) {
	var out strings.Builder
	if code := run(nil, &out, &out); code != 1 && code != 2 {
		t.Errorf("no-args run exited %d, want error", code)
	}
	if code := run([]string{"-tol", "5", "x.json"}, &out, &out); code != 2 {
		t.Errorf("bad tolerance exited %d, want 2", code)
	}
	if code := run([]string{"-unknown"}, &out, &out); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
}

// TestGateFailsOnMissingBenchmark: a baselined benchmark absent from the
// measured output must fail with the baseline file that names it — a
// renamed benchmark must not silently stop being checked.
func TestGateFailsOnMissingBenchmark(t *testing.T) {
	bench := healthyBench()
	// Drop one baselined benchmark from the output entirely.
	var kept []string
	for _, line := range strings.Split(bench, "\n") {
		if strings.HasPrefix(line, "BenchmarkEvaluatorReuse") {
			continue
		}
		kept = append(kept, line)
	}
	code, out := runGate(t, strings.Join(kept, "\n"))
	if code == 0 {
		t.Fatalf("missing baselined benchmark passed:\n%s", out)
	}
	if !strings.Contains(out, "EvaluatorReuse") || !strings.Contains(out, "BENCH_explore.json") {
		t.Fatalf("failure message does not name the benchmark and its baseline file:\n%s", out)
	}
	if !strings.Contains(out, "renamed or deleted") {
		t.Fatalf("failure message is not actionable:\n%s", out)
	}
}

// TestRepeatedBaselineFlags: -baseline can be given repeatedly and mixes
// with positional files.
func TestRepeatedBaselineFlags(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(healthyBench()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	args := []string{"-bench", path}
	for _, b := range repoBaselines(t) {
		args = append(args, "-baseline", b)
	}
	if code := run(args, &out, &out); code != 0 {
		t.Fatalf("repeated -baseline flags failed (%d):\n%s", code, out.String())
	}
	var out2 strings.Builder
	if code := run([]string{"-bench", path, "-baseline"}, &out2, &out2); code != 2 {
		t.Fatalf("trailing -baseline without a path exited %d, want 2", code)
	}
}
