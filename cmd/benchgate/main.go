// Command benchgate is the CI benchmark-regression gate: it parses raw
// `go test -bench` output (typically run with -count=5 -benchmem) and
// compares it against the repository's committed benchmark baselines
// (BENCH_explore.json, BENCH_prune.json, BENCH_scale.json,
// BENCH_sweep.json), failing the
// build when a machine-independent quantity regresses beyond the
// tolerance. Baseline files are given positionally or via repeated
// -baseline flags, interchangeably.
//
//	go test -run '^$' -bench 'Explore|OptimizeMPEG2|Evaluate' \
//	    -benchmem -count=5 . | tee bench.txt
//	benchgate -bench bench.txt -baseline BENCH_explore.json \
//	    -baseline BENCH_prune.json BENCH_scale.json
//
// Raw ns/op is meaningless across runner generations, so the gate checks
// only quantities that travel:
//
//   - allocs/op for every baselined benchmark: allocation counts are a
//     deterministic property of the code, so the per-op minimum across
//     -count repetitions must stay within -tol of the committed value
//     (improvements always pass);
//   - wall-clock *ratios* of paired benchmarks: for every
//     "<X>Exhaustive"/"<X>BnB" strategy pair and every "<X>/Cold"/"<X>/Warm"
//     warm-start pair in the baselines, the measured speedup (slow ns/op ÷
//     fast ns/op, best-of-count) must stay within -tol of the committed
//     speedup — pruning and warm-start wins are relative, so the ratio is
//     comparable on any host.
//
// A benchmark named in the baselines but absent from the measured output
// FAILS the gate with the file that names it: a renamed or deleted
// benchmark would otherwise silently check nothing forever. Either widen
// the -bench filter to measure it or regenerate the baseline that names
// it. Records that must not be gated (e.g. wall-clock references too slow
// for CI) belong outside the "before"/"after" sections. Ratio pairs whose
// counterpart is absent are still reported as SKIP — the pair check is
// already covered by the two per-benchmark presence checks.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchRecord mirrors the per-benchmark objects of the committed baseline
// files' "after" sections.
type benchRecord struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baselineFile is the schema shared by BENCH_explore.json and
// BENCH_prune.json: free-form provenance fields plus "before"/"after" maps
// of recorded results. Both sections are read — the strategy-pair records
// straddle them (exhaustive under "before", branch-and-bound under
// "after") — with "after" winning when a benchmark appears in both.
type baselineFile struct {
	// Raw sections: entries are benchmark records except for provenance
	// strings ("commit"), so each value is decoded tolerantly.
	Before map[string]json.RawMessage `json:"before"`
	After  map[string]json.RawMessage `json:"after"`
}

// measured is the best (minimum) observation of one benchmark across the
// -count repetitions in the bench output.
type measured struct {
	nsPerOp     float64
	allocsPerOp float64
	samples     int
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := newFlags()
	if err := fs.parse(args); err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	baseline, source, err := loadBaselines(fs.baselines)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	var in io.Reader = os.Stdin
	if fs.benchPath != "-" {
		f, err := os.Open(fs.benchPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	got, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	lines, failures := evaluate(baseline, source, got, fs.tol)
	performed := 0
	for _, line := range lines {
		fmt.Fprintln(stdout, line)
		if !strings.HasPrefix(line, "SKIP") {
			performed++
		}
	}
	if performed == 0 {
		fmt.Fprintln(stderr, "benchgate: no baselined benchmark appears in the measured output; the gate checked nothing")
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "benchgate: %d regression(s) beyond ±%.0f%% tolerance\n", failures, fs.tol*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: %d check(s) passed within ±%.0f%% tolerance\n", performed, fs.tol*100)
	return 0
}

type flags struct {
	benchPath string
	tol       float64
	baselines []string
}

func newFlags() *flags { return &flags{benchPath: "-", tol: 0.20} }

func (f *flags) parse(args []string) error {
	i := 0
	for ; i < len(args); i++ {
		switch arg := args[i]; {
		case arg == "-bench" || arg == "--bench":
			i++
			if i >= len(args) {
				return fmt.Errorf("-bench needs a file path (or - for stdin)")
			}
			f.benchPath = args[i]
		case arg == "-baseline" || arg == "--baseline":
			i++
			if i >= len(args) {
				return fmt.Errorf("-baseline needs a baseline JSON path (repeat the flag for several)")
			}
			f.baselines = append(f.baselines, args[i])
		case arg == "-tol" || arg == "--tol":
			i++
			if i >= len(args) {
				return fmt.Errorf("-tol needs a fraction (e.g. 0.20)")
			}
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v <= 0 || v >= 1 {
				return fmt.Errorf("-tol %q must be a fraction in (0,1)", args[i])
			}
			f.tol = v
		case strings.HasPrefix(arg, "-"):
			return fmt.Errorf("unknown flag %q (usage: benchgate [-bench file] [-tol 0.20] [-baseline file]... [baseline.json...])", arg)
		default:
			f.baselines = append(f.baselines, arg)
		}
	}
	if len(f.baselines) == 0 {
		return fmt.Errorf("no baseline files given (usage: benchgate [-bench file] [-tol 0.20] [-baseline file]... [baseline.json...])")
	}
	return nil
}

// loadBaselines merges the benchmark records of every baseline file —
// "before" first, then "after" overriding (a benchmark recorded in both is
// baselined at its improved figures) — keying by name without the
// "Benchmark" prefix. The "before" commit field is provenance, not a
// measurable. The second map records which file names each benchmark, so a
// baselined benchmark missing from the measured output can fail with the
// file to fix.
func loadBaselines(paths []string) (map[string]benchRecord, map[string]string, error) {
	merged := make(map[string]benchRecord)
	source := make(map[string]string)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(bf.After) == 0 {
			return nil, nil, fmt.Errorf("%s: no \"after\" benchmark records", path)
		}
		for _, section := range []map[string]json.RawMessage{bf.Before, bf.After} {
			for name, raw := range section {
				var rec benchRecord
				if err := json.Unmarshal(raw, &rec); err != nil || rec.NsPerOp <= 0 {
					continue // provenance entries like "commit"
				}
				key := strings.TrimPrefix(name, "Benchmark")
				merged[key] = rec
				source[key] = path
			}
		}
	}
	return merged, source, nil
}

// parseBenchOutput extracts per-benchmark best-of-count results from raw
// `go test -bench` output lines such as
//
//	BenchmarkExploreMPEG2BnB-8   1690   699711 ns/op   120518 B/op   1237 allocs/op
func parseBenchOutput(r io.Reader) (map[string]measured, error) {
	out := make(map[string]measured)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if m.samples == 0 || v < m.nsPerOp {
					m.nsPerOp = v
				}
			case "allocs/op":
				if m.samples == 0 || v < m.allocsPerOp {
					m.allocsPerOp = v
				}
			}
		}
		m.samples++
		out[name] = m
	}
	return out, sc.Err()
}

// evaluate runs every applicable check and renders one line per check;
// failures counts the lines that FAILed.
func evaluate(baseline map[string]benchRecord, source map[string]string, got map[string]measured, tol float64) (lines []string, failures int) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	// Allocation gate: deterministic per-op counts must not regress. A
	// baselined benchmark the measured output never mentions is a failure,
	// not a skip — renames and deletions must not hollow the gate out.
	for _, name := range names {
		rec := baseline[name]
		m, ok := got[name]
		if !ok {
			lines = append(lines, fmt.Sprintf(
				"FAIL  %-36s baselined in %s but absent from the measured output — renamed or deleted? widen the -bench filter to cover it, or regenerate that baseline",
				name, source[name]))
			failures++
			continue
		}
		limit := rec.AllocsPerOp * (1 + tol)
		status := "PASS"
		if m.allocsPerOp > limit {
			status = "FAIL"
			failures++
		}
		lines = append(lines, fmt.Sprintf("%s  %-36s allocs/op %8.0f (baseline %8.0f, limit %8.0f, %d sample(s))",
			status, name, m.allocsPerOp, rec.AllocsPerOp, limit, m.samples))
	}

	// Ratio gate: for every baselined slow/fast suffix pair — strategy
	// pairs ("...Exhaustive" vs "...BnB"), warm-start pairs (".../Cold"
	// vs ".../Warm") and distribution pairs (".../SingleNode" vs
	// ".../TwoShard") — the measured speedup (slow ns/op ÷ fast ns/op,
	// best-of-count) must hold within tolerance.
	ratioPairs := []struct{ slow, fast, label string }{
		{"Exhaustive", "BnB", " speedup"},
		{"Cold", "Warm", " warm speedup"},
		{"SingleNode", "TwoShard", " shard speedup"},
	}
	for _, rp := range ratioPairs {
		for _, name := range names {
			if !strings.HasSuffix(name, rp.slow) {
				continue
			}
			stem := strings.TrimSuffix(name, rp.slow)
			pair := stem + rp.fast
			recSlow := baseline[name]
			recFast, ok := baseline[pair]
			if !ok || recFast.NsPerOp <= 0 || recSlow.NsPerOp <= 0 {
				continue
			}
			mSlow, ok1 := got[name]
			mFast, ok2 := got[pair]
			checkName := strings.TrimSuffix(stem, "/") + rp.label
			if !ok1 || !ok2 {
				lines = append(lines, fmt.Sprintf("SKIP  %-36s pair not fully measured", checkName))
				continue
			}
			if mFast.nsPerOp <= 0 {
				lines = append(lines, fmt.Sprintf("FAIL  %-36s %s measured 0 ns/op", checkName, rp.fast))
				failures++
				continue
			}
			want := recSlow.NsPerOp / recFast.NsPerOp
			gotRatio := mSlow.nsPerOp / mFast.nsPerOp
			floor := want * (1 - tol)
			status := "PASS"
			if gotRatio < floor {
				status = "FAIL"
				failures++
			}
			lines = append(lines, fmt.Sprintf("%s  %-36s %.2fx (baseline %.2fx, floor %.2fx)",
				status, checkName, gotRatio, want, floor))
		}
	}
	return lines, failures
}
