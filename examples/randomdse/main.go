// Random-workload design-space exploration: generates a paper-parameterized
// random task graph and studies how architecture allocation (2-6 cores)
// moves the power/reliability design point — the Table III experiment in
// miniature.
//
//	go run ./examples/randomdse [-tasks 60] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"seadopt"
)

func main() {
	tasks := flag.Int("tasks", 60, "task count")
	seed := flag.Int64("seed", 7, "graph seed")
	flag.Parse()

	g, err := seadopt.RandomGraph(seadopt.DefaultRandomGraphConfig(*tasks), *seed)
	if err != nil {
		log.Fatal(err)
	}
	deadline := seadopt.RandomGraphDeadline(*tasks)
	fmt.Printf("random graph: %d tasks, %d edges, deadline %.1f s (1000·N/2 ms)\n",
		g.N(), len(g.Edges()), deadline)
	fmt.Printf("total compute: %.2fe9 cycles, critical path: %.2fe9 cycles\n\n",
		float64(g.TotalComputeCycles())/1e9, float64(g.CriticalPathCycles())/1e9)

	fmt.Println("cores |  P (mW) |     Γ     | scaling")
	fmt.Println("------+---------+-----------+--------")
	var prevGamma float64
	for cores := 2; cores <= 6; cores++ {
		sys, err := seadopt.NewARM7System(g, cores, 3)
		if err != nil {
			log.Fatal(err)
		}
		design, err := sys.Optimize(seadopt.OptimizeOptions{
			DeadlineSec: deadline,
			SearchMoves: 1500,
			Seed:        *seed + int64(cores),
		})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if !design.Eval.MeetsDeadline {
			marker = "  (deadline missed!)"
		} else if prevGamma > 0 && design.Eval.Gamma > prevGamma {
			marker = "  (Γ rising with parallelism — Table III's observation)"
		}
		fmt.Printf("  %d   | %7.3f | %9.4g | %v%s\n",
			cores, design.Eval.PowerW*1e3, design.Eval.Gamma, design.Scaling, marker)
		prevGamma = design.Eval.Gamma
	}

	fmt.Println("\nReading the table: extra cores buy deadline slack that deeper")
	fmt.Println("voltage scaling converts into power savings — but every added core")
	fmt.Println("duplicates shared registers and exposes more storage to upsets, so")
	fmt.Println("the SEU count climbs. That tension is the paper's central trade-off.")
}
