// Quickstart: optimize the paper's Fig. 8 worked example — six tasks, three
// ARM7 cores, a 75 ms deadline — and print the chosen design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seadopt"
)

func main() {
	// The Fig. 8 application: 6 tasks, registers r1..r9 with the paper's
	// exact sharing table.
	g := seadopt.Fig8()

	// A 3-core ARM7 MPSoC with the Table I DVS levels
	// (200 MHz/1 V, 100 MHz/0.58 V, 66.7 MHz/0.44 V).
	sys, err := seadopt.NewARM7System(g, 3, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Run the full design loop: enumerate voltage scalings (Fig. 5),
	// map tasks to minimize SEUs (Fig. 6 + Fig. 7), keep the cheapest
	// deadline-meeting design.
	design, err := sys.Optimize(seadopt.OptimizeOptions{
		SER:         seadopt.DefaultSER, // 1e-9 SEU/bit/cycle
		DeadlineSec: 0.075,              // the example's 75 ms constraint
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Optimized design for the Fig. 8 example:")
	fmt.Print(design.Summary())
	fmt.Println("\nSchedule:")
	fmt.Print(design.Gantt(90))

	// Validate with the cycle-level simulator and Poisson fault injection.
	measured, expected, err := sys.InjectFaults(design.Mapping, design.Scaling, 1, 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault injection: %d SEUs experienced (expectation %.3g)\n", measured, expected)
}
