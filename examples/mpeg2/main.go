// MPEG-2 decoder study: the paper's headline experiment. Optimizes the
// 11-task decoder on a 4-core ARM7 MPSoC against the tennis-bitstream
// deadline (437 frames at 29.97 fps), with the proposed soft error-aware
// mapper and the three soft error-unaware baselines, then compares them at
// a common voltage scaling the way Fig. 9 does.
//
//	go run ./examples/mpeg2
package main

import (
	"fmt"
	"log"

	"seadopt"
)

func main() {
	sys, err := seadopt.NewARM7System(seadopt.MPEG2(), 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	opts := seadopt.OptimizeOptions{
		SER:              seadopt.DefaultSER,
		DeadlineSec:      seadopt.MPEG2Deadline,
		StreamIterations: seadopt.MPEG2Frames, // decoder is a software pipeline
		SearchMoves:      2000,
		Seed:             2010,
	}

	fmt.Printf("MPEG-2 decoder, 4 ARM7 cores, deadline %.3f s (437 frames @ 29.97 fps)\n\n",
		seadopt.MPEG2Deadline)

	type entry struct {
		name string
		run  func() (*seadopt.Design, error)
	}
	experiments := []entry{
		{"Exp:1 minimize register usage", func() (*seadopt.Design, error) {
			return sys.OptimizeBaseline(seadopt.MinimizeRegisterUsage, opts)
		}},
		{"Exp:2 minimize execution time", func() (*seadopt.Design, error) {
			return sys.OptimizeBaseline(seadopt.MinimizeMakespan, opts)
		}},
		{"Exp:3 minimize R x T_M      ", func() (*seadopt.Design, error) {
			return sys.OptimizeBaseline(seadopt.MinimizeRegTime, opts)
		}},
		{"Exp:4 proposed (SEU-aware)  ", func() (*seadopt.Design, error) {
			return sys.Optimize(opts)
		}},
	}

	var designs []*seadopt.Design
	for _, e := range experiments {
		d, err := e.run()
		if err != nil {
			log.Fatal(err)
		}
		designs = append(designs, d)
		fmt.Printf("%s  s=%v  P=%.2f mW  R=%.0f kbit  T_M=%.2f s  Γ=%.4g\n",
			e.name, d.Scaling, d.Eval.PowerW*1e3,
			float64(d.Eval.TotalRegBits)/1024.0, d.Eval.TMSeconds, d.Eval.Gamma)
	}

	// Fig. 9-style comparison: everyone at the same scaling vector.
	fmt.Println("\nAt the common scaling s = (2,2,3,2):")
	scaling := []int{2, 2, 3, 2}
	ref, err := sys.MapAtScaling(scaling, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  proposed: Γ=%.4g  P=%.2f mW\n", ref.Eval.Gamma, ref.Eval.PowerW*1e3)
	for i, obj := range []seadopt.BaselineObjective{
		seadopt.MinimizeRegisterUsage, seadopt.MinimizeMakespan, seadopt.MinimizeRegTime,
	} {
		d, err := baselineAtScaling(sys, obj, scaling, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Exp:%d    : Γ=%.4g (%+.1f%%)  P=%.2f mW (%+.1f%%)\n",
			i+1, d.Eval.Gamma, rel(d.Eval.Gamma, ref.Eval.Gamma),
			d.Eval.PowerW*1e3, rel(d.Eval.PowerW, ref.Eval.PowerW))
	}

	// Ground-truth the winner with cycle-level simulation + fault injection.
	best := designs[3]
	measured, expected, err := sys.InjectFaults(best.Mapping, best.Scaling,
		seadopt.MPEG2Frames, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault injection on Exp:4's design: %d SEUs (expectation %.4g)\n",
		measured, expected)
	fmt.Println("\nExp:4 design detail:")
	fmt.Print(best.Summary())
}

// baselineAtScaling runs one soft error-unaware baseline at a fixed scaling
// by giving it a single-combination platform view.
func baselineAtScaling(sys *seadopt.System, obj seadopt.BaselineObjective,
	scaling []int, opts seadopt.OptimizeOptions) (*seadopt.Design, error) {
	// Evaluate the baseline's mapping choice at this exact scaling: run the
	// baseline optimizer but keep only its design at the given vector.
	d, err := sys.OptimizeBaseline(obj, opts)
	if err != nil {
		return nil, err
	}
	ev, err := sys.Evaluate(d.Mapping, scaling, opts)
	if err != nil {
		return nil, err
	}
	return &seadopt.Design{Scaling: scaling, Mapping: d.Mapping, Eval: ev}, nil
}

func rel(a, b float64) float64 { return (a - b) / b * 100 }
