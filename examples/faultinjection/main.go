// Fault-injection walkthrough on a hand-built application: constructs a
// small sensor-fusion pipeline with the public GraphBuilder API, maps it,
// simulates it cycle-accurately, and bombards it with SEUs at several soft
// error rates and supply voltages — showing how voltage scaling trades
// power for upsets.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"seadopt"
)

func main() {
	g := buildSensorFusion()
	fmt.Printf("application: %s — %d tasks, %d edges\n\n", g.Name(), g.N(), len(g.Edges()))

	sys, err := seadopt.NewARM7System(g, 2, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Map it once with the proposed mapper at a mid scaling.
	design, err := sys.MapAtScaling([]int{1, 2}, seadopt.OptimizeOptions{
		DeadlineSec: 0.5,
		SearchMoves: 500,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(design.Summary())

	// Cycle-level simulation: measured makespan and utilization.
	r, err := sys.Simulate(design.Mapping, design.Scaling, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated makespan: %.4f s (kernel fired %d events)\n",
		r.MakespanSec, r.EventsFired())
	for c, u := range r.Utilization() {
		fmt.Printf("  core %d utilization: %4.1f%%\n", c, u*100)
	}

	// Sweep the soft error rate: Γ scales linearly with λ.
	fmt.Println("\nSEU counts vs soft error rate (fault injection, single runs):")
	for _, ser := range []float64{1e-10, 1e-9, 1e-8} {
		measured, expected, err := sys.InjectFaults(design.Mapping, design.Scaling, 1, ser, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SER %.0e: %6d SEUs experienced (expectation %8.1f)\n", ser, measured, expected)
	}

	// Sweep the voltage scaling of both cores: lower Vdd, more upsets —
	// the reliability cost of power savings (Observation 3).
	fmt.Println("\nSEU counts vs voltage scaling (both cores, SER 1e-9):")
	for s := 1; s <= 3; s++ {
		scaling := []int{s, s}
		ev, err := sys.Evaluate(design.Mapping, scaling, seadopt.OptimizeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		measured, _, err := sys.InjectFaults(design.Mapping, scaling, 1, 0, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  s=%d: P=%6.3f mW  T_M=%.4f s  Γ measured %5d / expected %7.1f\n",
			s, ev.PowerW*1e3, ev.TMSeconds, measured, ev.Gamma)
	}
}

// buildSensorFusion assembles a 7-task fusion pipeline: two sensor frontends
// feed filters that share calibration state; a fusion stage joins them.
func buildSensorFusion() *seadopt.Graph {
	inv := seadopt.NewRegisterInventory()
	inv.MustAdd("cam_frame", 8192)   // camera line buffer
	inv.MustAdd("lidar_scan", 6144)  // lidar scan window
	inv.MustAdd("calib", 4096)       // shared calibration tables
	inv.MustAdd("feat_cam", 3072)    // camera feature store
	inv.MustAdd("feat_lidar", 3072)  // lidar feature store
	inv.MustAdd("fused", 5120)       // fused object list
	inv.MustAdd("track_state", 4096) // tracker state

	b := seadopt.NewGraphBuilder("sensor-fusion", inv)
	camIn := b.AddTask("CamCapture", 4_000_000, "cam_frame")
	lidIn := b.AddTask("LidarCapture", 3_000_000, "lidar_scan")
	camF := b.AddTask("CamFilter", 9_000_000, "cam_frame", "calib", "feat_cam")
	lidF := b.AddTask("LidarFilter", 7_000_000, "lidar_scan", "calib", "feat_lidar")
	fuse := b.AddTask("Fuse", 11_000_000, "feat_cam", "feat_lidar", "fused")
	track := b.AddTask("Track", 6_000_000, "fused", "track_state")
	out := b.AddTask("Publish", 2_000_000, "track_state")

	b.AddEdge(camIn, camF, 500_000)
	b.AddEdge(lidIn, lidF, 400_000)
	b.AddEdge(camF, fuse, 600_000)
	b.AddEdge(lidF, fuse, 600_000)
	b.AddEdge(fuse, track, 300_000)
	b.AddEdge(track, out, 200_000)
	return b.MustBuild()
}
