// Optimization-as-a-service walkthrough: starts the seadoptd service core
// in-process on an ephemeral port, submits a random workload in Graphviz
// DOT format (the ingestion layer fills in deterministic register/WCET
// defaults), streams the design-space exploration over Server-Sent Events,
// fetches the final design, and resubmits the same problem to demonstrate
// the content-addressed cache answering without a second engine execution.
//
//	go run ./examples/serve [-tasks 30] [-seed 11]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"seadopt"
	"seadopt/internal/service"
)

func main() {
	tasks := flag.Int("tasks", 30, "task count of the random workload")
	seed := flag.Int64("seed", 11, "workload seed (disconnected draws are skipped)")
	flag.Parse()

	// The ingestion layer rejects disconnected graphs, and the §V random
	// generator occasionally draws one — skip to the next seed when it does.
	var dot string
	var deadline float64
	for s := *seed; ; s++ {
		g, err := seadopt.RandomGraph(seadopt.DefaultRandomGraphConfig(*tasks), s)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := seadopt.ParseGraph("dot", strings.NewReader(g.DOT())); err != nil {
			fmt.Printf("seed %d: %v (trying %d)\n", s, err, s+1)
			continue
		}
		fmt.Printf("workload: %s — %d tasks, %d edges, deadline %.1f s\n",
			g.Name(), g.N(), len(g.Edges()), seadopt.RandomGraphDeadline(*tasks))
		dot = g.DOT()
		deadline = seadopt.RandomGraphDeadline(*tasks)
		break
	}

	// Boot the service core in-process, exactly as cmd/seadoptd does.
	svc := service.New(service.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("seadoptd core listening on %s\n\n", base)

	// Submit the DOT document raw, with the job parameters in the query
	// string — what `curl --data-binary @graph.dot` does.
	url := fmt.Sprintf("%s/v1/jobs?format=dot&cores=4&levels=3&deadline_sec=%g&seed=%d", base, deadline, *seed)
	resp, err := http.Post(url, "text/vnd.graphviz", strings.NewReader(dot))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		Key   string `json:"key"`
		State string `json:"state"`
	}
	decode(resp, &job)
	fmt.Printf("submitted job %s (%s)\n  problem key %s\n\n", job.ID, job.State, job.Key)

	// Follow the SSE progress stream: one event per scaling combination,
	// in enumeration order, then a terminal done event.
	fmt.Println("streaming design-space exploration progress:")
	sresp, err := http.Get(base + "/v1/jobs/" + job.ID + "/progress")
	if err != nil {
		log.Fatal(err)
	}
	var final struct {
		State   string          `json:"state"`
		Summary string          `json:"summary"`
		Result  json.RawMessage `json:"result"`
	}
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				var ev struct {
					Index    int     `json:"index"`
					Total    int     `json:"total"`
					Scaling  []int   `json:"scaling"`
					PowerW   float64 `json:"power_w"`
					Gamma    float64 `json:"gamma"`
					Feasible bool    `json:"feasible"`
				}
				if err := json.Unmarshal([]byte(data), &ev); err == nil {
					met := "infeasible"
					if ev.Feasible {
						met = "feasible"
					}
					fmt.Printf("  [%2d/%2d] scaling %v  P=%.3f mW  Γ=%.4g  %s\n",
						ev.Index+1, ev.Total, ev.Scaling, ev.PowerW*1e3, ev.Gamma, met)
				}
			} else if event == "done" {
				_ = json.Unmarshal([]byte(data), &final)
			}
		}
	}
	sresp.Body.Close()
	fmt.Printf("\njob finished (%s):\n%s\n", final.State, final.Summary)

	// Resubmit the identical problem: the content-addressed cache answers
	// immediately, without another engine execution.
	resp2, err := http.Post(url, "text/vnd.graphviz", strings.NewReader(dot))
	if err != nil {
		log.Fatal(err)
	}
	var again struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		CacheHit bool   `json:"cache_hit"`
	}
	decode(resp2, &again)
	fmt.Printf("resubmission %s: state %s, cache_hit %v\n\n", again.ID, again.State, again.CacheHit)

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("operational counters:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "seadoptd_engine_executions_total") ||
			strings.HasPrefix(line, "seadoptd_cache_hits_total") ||
			strings.HasPrefix(line, "seadoptd_coalesced_total") {
			fmt.Println("  " + line)
		}
	}

	// Graceful drain, as SIGTERM would do it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if err := svc.Close(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nservice drained cleanly")
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
