// Software-pipeline anatomy of the MPEG-2 decoder: simulates the 437-frame
// stream cycle-accurately on the optimized 4-core design, then dissects the
// run — per-core utilization, register-pressure profiles under both
// exposure fidelities, temporal distribution of injected SEUs, and the
// tasks most impacted by upsets. Optionally exports a Chrome trace.
//
//	go run ./examples/pipeline [-frames 64] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"seadopt"
	"seadopt/internal/faults"
	"seadopt/internal/trace"
)

func main() {
	frames := flag.Int("frames", 64, "stream iterations to simulate")
	traceOut := flag.String("trace", "", "write a Chrome-tracing JSON here")
	flag.Parse()

	sys, err := seadopt.NewARM7System(seadopt.MPEG2(), 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Table II Exp:4-style design: front of the pipeline clustered, IDCT
	// split, motion compensation on its own slow core.
	m := seadopt.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	scaling := []int{2, 2, 3, 2}

	r, err := sys.Simulate(m, scaling, *frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d frames in %.3f s of MPSoC time (%d task instances, %d kernel events)\n\n",
		*frames, r.MakespanSec, len(r.Events), r.EventsFired())

	fmt.Println("core utilization (pipeline steady state):")
	for c, u := range r.Utilization() {
		fmt.Printf("  core %d (s=%d): %5.1f%%  %s\n", c, scaling[c], u*100, bar(u, 40))
	}

	// Register pressure over time, both exposure fidelities.
	const buckets = 12
	for _, mode := range []seadopt.ExposureMode{seadopt.ExposureConservative, seadopt.ExposureLifetime} {
		prof, err := r.PressureProfile(mode, buckets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nregister pressure (%v exposure), kbit live per window:\n", mode)
		for c := range prof {
			fmt.Printf("  core %d: ", c)
			for _, v := range prof[c] {
				fmt.Printf("%6.1f", v/1024)
			}
			fmt.Println()
		}
	}

	// Sample located upsets and attribute them to tasks.
	campaign, err := r.Campaign(faults.NewSERModel(seadopt.DefaultSER), seadopt.ExposureConservative)
	if err != nil {
		log.Fatal(err)
	}
	upsets, err := campaign.SampleUpsets(rand.New(rand.NewSource(7)), 0)
	if err != nil {
		log.Fatal(err)
	}
	usedBy := map[string][]string{}
	g := sys.Graph
	for _, task := range g.Tasks() {
		for reg := range task.Registers {
			usedBy[reg] = append(usedBy[reg], task.Name)
		}
	}
	fmt.Printf("\n%d SEUs struck live state; most impacted tasks:\n", len(upsets))
	for i, im := range faults.AttributeToTasks(upsets, usedBy) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-22s %6d upsets (%4.1f%%)\n", im.Task, im.Upsets, im.Percent)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteSimulation(f, r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s — open in chrome://tracing or ui.perfetto.dev\n", *traceOut)
	}
}

// bar renders a utilization bar of the given width.
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
