package seadopt

import (
	"fmt"
	"runtime"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// nocSystem builds the Fig. 8 workload on a 4-core platform behind the
// given fabric (nil = ideal), through the exported surface only.
func nocSystem(t *testing.T, ic *Interconnect) *System {
	t.Helper()
	types := []ProcType{{Name: "arm7", Levels: arch.ARM7Levels3()}}
	var opts []PlatformOption
	if ic != nil {
		opts = append(opts, WithInterconnect(*ic))
	}
	p, err := NewHeterogeneousPlatform(types, []int{0, 0, 0, 0}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Fig8(), p)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestOptimizeWithInterconnect: the exported fabric surface end to end —
// a contended mesh changes the optimum, and the byte-identical-across-
// parallelism contract holds on contended platforms too.
func TestOptimizeWithInterconnect(t *testing.T) {
	mesh := &Interconnect{Topology: TopologyMesh, BandwidthBps: 1e8, HopLatencySec: 1e-4}
	opts := OptimizeOptions{DeadlineSec: taskgraph.Fig8Deadline, SearchMoves: 120, Seed: 7}

	fingerprint := func(sys *System, par int) string {
		o := opts
		o.Parallelism = par
		d, err := sys.Optimize(o)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%v|%x|%x", d.Scaling, d.Mapping, d.Eval.PowerW, d.Eval.TMSeconds)
	}
	contended := nocSystem(t, mesh)
	ref := fingerprint(contended, 1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := fingerprint(contended, par); got != ref {
			t.Errorf("parallelism %d design %q != sequential %q", par, got, ref)
		}
	}
	if ideal := fingerprint(nocSystem(t, nil), 1); ideal == ref {
		t.Error("contended and ideal fabrics chose identical designs — fabric not load-bearing")
	}

	// An invalid fabric is rejected at construction, not at optimize time.
	bad := &Interconnect{Topology: "torus", BandwidthBps: 1e9}
	if _, err := NewHeterogeneousPlatform(
		[]ProcType{{Name: "arm7", Levels: arch.ARM7Levels3()}}, []int{0, 0},
		WithInterconnect(*bad)); err == nil {
		t.Error("unknown topology accepted")
	}
}
