package faults

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleUpsetsStatistics(t *testing.T) {
	c := &Campaign{
		Items: []ExposureItem{
			{Core: 0, Label: "r1", Bits: 1000, Cycles: 1_000_000},
			{Core: 1, Label: "r2", Bits: 500, Cycles: 4_000_000},
		},
		Lambda: []float64{2e-6, 1e-6},
	}
	rng := rand.New(rand.NewSource(8))
	ups, err := c.SampleUpsets(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Expectations: r1 = 2e-6*1e9 = 2000; r2 = 1e-6*2e9 = 2000.
	perLabel := map[string]int{}
	for _, u := range ups {
		perLabel[u.Label]++
		switch u.Label {
		case "r1":
			if u.Core != 0 || u.Bit < 0 || u.Bit >= 1000 || u.Cycle < 0 || u.Cycle >= 1_000_000 {
				t.Fatalf("out-of-range upset %+v", u)
			}
		case "r2":
			if u.Core != 1 || u.Bit >= 500 || u.Cycle >= 4_000_000 {
				t.Fatalf("out-of-range upset %+v", u)
			}
		}
	}
	for _, label := range []string{"r1", "r2"} {
		n := float64(perLabel[label])
		if math.Abs(n-2000) > 6*math.Sqrt(2000) {
			t.Errorf("%s: %v upsets, want ≈2000", label, n)
		}
	}
	// Bit positions roughly uniform: mean near bits/2.
	var sumBit float64
	for _, u := range ups {
		if u.Label == "r1" {
			sumBit += float64(u.Bit)
		}
	}
	meanBit := sumBit / float64(perLabel["r1"])
	if math.Abs(meanBit-500) > 50 {
		t.Errorf("r1 mean bit = %v, want ≈500 (uniform)", meanBit)
	}
}

func TestSampleUpsetsCap(t *testing.T) {
	c := &Campaign{
		Items:  []ExposureItem{{Core: 0, Label: "r", Bits: 1 << 20, Cycles: 1 << 20}},
		Lambda: []float64{1e-6},
	}
	ups, err := c.SampleUpsets(rand.New(rand.NewSource(1)), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 100 {
		t.Errorf("cap ignored: got %d upsets", len(ups))
	}
}

func TestSampleUpsetsInvalidCampaign(t *testing.T) {
	if _, err := (&Campaign{}).SampleUpsets(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("invalid campaign accepted")
	}
}

func TestAttributeToTasks(t *testing.T) {
	ups := []Upset{
		{Label: "shared"}, {Label: "shared"}, {Label: "local_a"},
		{Label: "baseline"}, // not in usedBy -> "(baseline)"
	}
	usedBy := map[string][]string{
		"shared":  {"TaskA", "TaskB"},
		"local_a": {"TaskA"},
	}
	impacts := AttributeToTasks(ups, usedBy)
	byTask := map[string]TaskImpact{}
	for _, im := range impacts {
		byTask[im.Task] = im
	}
	if byTask["TaskA"].Upsets != 3 {
		t.Errorf("TaskA upsets = %d, want 3", byTask["TaskA"].Upsets)
	}
	if byTask["TaskB"].Upsets != 2 {
		t.Errorf("TaskB upsets = %d, want 2", byTask["TaskB"].Upsets)
	}
	if byTask["(baseline)"].Upsets != 1 {
		t.Errorf("baseline upsets = %d, want 1", byTask["(baseline)"].Upsets)
	}
	// Sorted descending.
	if impacts[0].Task != "TaskA" {
		t.Errorf("impacts not sorted: %+v", impacts)
	}
	if math.Abs(byTask["TaskA"].Percent-75) > 1e-9 {
		t.Errorf("TaskA percent = %v, want 75 (3 of 4 upsets)", byTask["TaskA"].Percent)
	}
}

func TestHistogram(t *testing.T) {
	ups := []Upset{
		{Core: 0, Cycle: 0}, {Core: 0, Cycle: 49}, {Core: 0, Cycle: 50},
		{Core: 0, Cycle: 99}, {Core: 1, Cycle: 10},
		{Core: 5, Cycle: 0}, // out of range core: dropped
	}
	h, err := Histogram(ups, []int64{100, 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h[0][0] != 2 || h[0][1] != 2 {
		t.Errorf("core0 buckets = %v", h[0])
	}
	if h[1][0] != 1 || h[1][1] != 0 {
		t.Errorf("core1 buckets = %v", h[1])
	}
	if _, err := Histogram(ups, []int64{100}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}
