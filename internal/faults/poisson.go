package faults

import (
	"math"
	"math/rand"
)

// Poisson draws a Poisson-distributed variate with the given mean from rng.
//
// For small means it uses Knuth's product-of-uniforms method; for large
// means it switches to the PTRS transformed-rejection sampler of Hörmann
// (1993), which stays O(1) as the mean grows — injection campaigns routinely
// have means in the 1e5 range (Γ ≈ 10⁵ SEUs in Table II).
func Poisson(rng *rand.Rand, mean float64) int64 {
	switch {
	case mean <= 0 || math.IsNaN(mean):
		return 0
	case mean < 30:
		return poissonKnuth(rng, mean)
	default:
		return poissonPTRS(rng, mean)
	}
}

func poissonKnuth(rng *rand.Rand, mean float64) int64 {
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm.
func poissonPTRS(rng *rand.Rand, mean float64) int64 {
	smu := math.Sqrt(mean)
	b := 0.931 + 2.53*smu
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMu := math.Log(mean)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMu-mean-lg {
			return int64(k)
		}
	}
}
