package faults

import (
	"fmt"
	"math/rand"
	"sort"
)

// Upset is one sampled SEU strike on live state: which core, which exposure
// item (register copy or baseline block), which bit, and when. This extends
// the counting campaign with the location information the paper's SystemC
// injector [11] uses to actually flip state.
type Upset struct {
	Core  int
	Label string
	Bit   int64 // bit index within the item, [0, Bits)
	Cycle int64 // local clock cycle of the strike
}

// SampleUpsets runs the campaign and materializes every experienced SEU as
// a located Upset: per item the count is Poisson(λ·bits·cycles) and the
// (bit, cycle) coordinates are uniform over the item's exposure rectangle —
// exactly the sampling the paper describes ("the number of SEUs to be
// injected is identified and their locations are determined using Poisson
// distribution"). Cycle coordinates index the item's live cycles in order
// (0 = first live cycle), since items may aggregate disjoint intervals.
//
// maxUpsets bounds the returned slice (0 = unbounded); campaigns at high
// SER can produce millions of strikes, and callers that only need counts
// should use Run instead.
func (c *Campaign) SampleUpsets(rng *rand.Rand, maxUpsets int) ([]Upset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []Upset
	for _, it := range c.Items {
		if it.Bits == 0 || it.Cycles == 0 {
			continue
		}
		mean := c.Lambda[it.Core] * it.BitCycles()
		n := Poisson(rng, mean)
		for k := int64(0); k < n; k++ {
			if maxUpsets > 0 && len(out) >= maxUpsets {
				return out, nil
			}
			out = append(out, Upset{
				Core:  it.Core,
				Label: it.Label,
				Bit:   rng.Int63n(it.Bits),
				Cycle: rng.Int63n(it.Cycles),
			})
		}
	}
	return out, nil
}

// TaskImpact summarizes which application tasks an upset set can corrupt:
// an upset in a register is attributed to every task whose footprint
// includes that register (the task would read or write the struck state).
type TaskImpact struct {
	Task    string
	Upsets  int
	Percent float64
}

// AttributeToTasks maps upsets to the tasks using each struck register.
// usedBy maps register label -> task names (the caller derives it from the
// graph's footprints); upsets in baseline storage map to the pseudo-task
// "(baseline)". Results are sorted by descending upset count.
func AttributeToTasks(upsets []Upset, usedBy map[string][]string) []TaskImpact {
	counts := make(map[string]int)
	total := 0
	for _, u := range upsets {
		total++
		tasks, ok := usedBy[u.Label]
		if !ok || len(tasks) == 0 {
			counts["(baseline)"]++
			continue
		}
		for _, t := range tasks {
			counts[t]++
		}
	}
	out := make([]TaskImpact, 0, len(counts))
	for task, n := range counts {
		pct := 0.0
		if total > 0 {
			pct = float64(n) / float64(total) * 100
		}
		out = append(out, TaskImpact{Task: task, Upsets: n, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Upsets != out[j].Upsets {
			return out[i].Upsets > out[j].Upsets
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// Histogram buckets upsets by time into nBuckets equal windows of the
// per-core horizon, returning per-core bucket counts — the temporal
// distribution view of a campaign.
func Histogram(upsets []Upset, horizon []int64, nBuckets int) ([][]int64, error) {
	if nBuckets < 1 {
		return nil, fmt.Errorf("faults: non-positive bucket count %d", nBuckets)
	}
	cores := len(horizon)
	out := make([][]int64, cores)
	for c := range out {
		out[c] = make([]int64, nBuckets)
	}
	for _, u := range upsets {
		if u.Core < 0 || u.Core >= cores || horizon[u.Core] <= 0 {
			continue
		}
		b := int(u.Cycle * int64(nBuckets) / horizon[u.Core])
		if b >= nBuckets {
			b = nBuckets - 1
		}
		out[u.Core][b]++
	}
	return out, nil
}
