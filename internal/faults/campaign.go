package faults

import (
	"fmt"
	"math/rand"
	"sort"
)

// ExposureItem describes one block of SEU-exposed storage: Bits of state on
// core Core that hold live data for Cycles clock cycles. The cycle-level
// simulator flattens its register liveness trace (plus the per-core baseline
// storage footprint) into a list of these items.
type ExposureItem struct {
	Core   int
	Label  string // register ID, or "baseline" for the core's resident storage
	Bits   int64
	Cycles int64 // total live cycles
}

// BitCycles returns the item's exposure in bit·cycles.
func (e ExposureItem) BitCycles() float64 { return float64(e.Bits) * float64(e.Cycles) }

// Campaign is a fault-injection campaign: a set of exposure items, a
// per-core SEU rate, and the per-core register-space size and time horizon
// that define the raw injection domain.
type Campaign struct {
	// Items lists the live storage windows hit-testing is performed on.
	Items []ExposureItem
	// Lambda is the per-core SEU rate in SEU/bit/cycle (λ_i of eq. 3),
	// indexed by core. Cores absent from Items may have zero entries.
	Lambda []float64
	// SpaceBits is the total register-space size per core (live or not);
	// used to report the raw injection count the way the paper's SystemC
	// tool does. Optional: zero entries fall back to the live space.
	SpaceBits []int64
	// HorizonCycles is the campaign duration per core in cycles. Optional
	// with the same fallback.
	HorizonCycles []int64
}

// CoreResult aggregates one core's campaign outcome.
type CoreResult struct {
	Core        int
	Injected    int64   // SEUs injected into the core's register space
	Experienced int64   // SEUs that struck live state
	Expected    float64 // analytic expectation λ_i · Σ exposure
}

// Result is the outcome of a fault-injection campaign.
type Result struct {
	PerCore []CoreResult
	// PerLabel counts experienced SEUs by exposure label, for attribution.
	PerLabel map[string]int64
}

// TotalInjected returns the number of SEUs injected across all cores.
func (r *Result) TotalInjected() int64 {
	var n int64
	for _, c := range r.PerCore {
		n += c.Injected
	}
	return n
}

// TotalExperienced returns Γ as measured by the campaign: the number of
// SEUs that struck live register state.
func (r *Result) TotalExperienced() int64 {
	var n int64
	for _, c := range r.PerCore {
		n += c.Experienced
	}
	return n
}

// TotalExpected returns the analytic expectation of TotalExperienced.
func (r *Result) TotalExpected() float64 {
	var v float64
	for _, c := range r.PerCore {
		v += c.Expected
	}
	return v
}

// Validate reports structural problems with the campaign definition.
func (c *Campaign) Validate() error {
	if len(c.Items) == 0 {
		return fmt.Errorf("faults: campaign has no exposure items")
	}
	maxCore := 0
	for _, it := range c.Items {
		if it.Core < 0 {
			return fmt.Errorf("faults: item %q has negative core %d", it.Label, it.Core)
		}
		if it.Bits < 0 || it.Cycles < 0 {
			return fmt.Errorf("faults: item %q has negative exposure (%d bits, %d cycles)", it.Label, it.Bits, it.Cycles)
		}
		if it.Core > maxCore {
			maxCore = it.Core
		}
	}
	if len(c.Lambda) <= maxCore {
		return fmt.Errorf("faults: lambda covers %d cores, items reference core %d", len(c.Lambda), maxCore)
	}
	for i, l := range c.Lambda {
		if l < 0 {
			return fmt.Errorf("faults: negative λ for core %d", i)
		}
	}
	return nil
}

// Run executes the campaign with the given random source.
//
// Per (core, item), the number of experienced SEUs is Poisson with mean
// λ_core · bits · cycles — the superposition property makes per-item
// sampling exact. The per-core raw injection count is Poisson with mean
// λ_core · SpaceBits · HorizonCycles, but never less than the live hits
// already drawn (an experienced SEU is by definition also injected).
func (c *Campaign) Run(rng *rand.Rand) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cores := len(c.Lambda)
	perCore := make([]CoreResult, cores)
	for i := range perCore {
		perCore[i].Core = i
	}
	res := &Result{PerLabel: make(map[string]int64)}

	liveExposure := make([]float64, cores)
	for _, it := range c.Items {
		lam := c.Lambda[it.Core]
		mean := lam * it.BitCycles()
		hits := Poisson(rng, mean)
		perCore[it.Core].Experienced += hits
		perCore[it.Core].Expected += mean
		liveExposure[it.Core] += it.BitCycles()
		if hits > 0 {
			res.PerLabel[it.Label] += hits
		}
	}
	for i := range perCore {
		space := liveExposure[i]
		if i < len(c.SpaceBits) && i < len(c.HorizonCycles) && c.SpaceBits[i] > 0 && c.HorizonCycles[i] > 0 {
			space = float64(c.SpaceBits[i]) * float64(c.HorizonCycles[i])
		}
		extraMean := c.Lambda[i]*space - perCore[i].Expected
		if extraMean < 0 {
			extraMean = 0
		}
		perCore[i].Injected = perCore[i].Experienced + Poisson(rng, extraMean)
	}
	res.PerCore = perCore
	return res, nil
}

// RunRepeated executes the campaign n times with distinct deterministic
// streams derived from seed and returns the per-run experienced totals plus
// their mean. The paper's tables report single fault-injection measurements;
// repeated runs expose the Monte-Carlo spread.
func (c *Campaign) RunRepeated(seed int64, n int) (totals []int64, mean float64, err error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("faults: non-positive repetition count %d", n)
	}
	totals = make([]int64, n)
	var sum float64
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9))
		r, runErr := c.Run(rng)
		if runErr != nil {
			return nil, 0, runErr
		}
		totals[i] = r.TotalExperienced()
		sum += float64(totals[i])
	}
	return totals, sum / float64(n), nil
}

// TopLabels returns the n exposure labels with the most experienced SEUs,
// most-hit first (ties broken lexicographically), for attribution reports.
func (r *Result) TopLabels(n int) []string {
	type lc struct {
		label string
		count int64
	}
	all := make([]lc, 0, len(r.PerLabel))
	for l, c := range r.PerLabel {
		all = append(all, lc{l, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].label < all[j].label
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].label
	}
	return out
}
