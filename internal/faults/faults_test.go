package faults

import (
	"math"
	"math/rand"
	"testing"
)

func TestSERModelCalibration(t *testing.T) {
	m := NewSERModel(DefaultSER)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// At the reference clock and nominal voltage the per-cycle rate is the
	// quoted 1e-9.
	if got := m.RatePerCycle(1.0, DefaultSERRefHz); math.Abs(got-DefaultSER) > 1e-18 {
		t.Errorf("λ(1.0V)@ref = %v per cycle, want %v", got, DefaultSER)
	}
	// The paper's anchor: 1 SEU per 10 ms for a 1 kbit register bank.
	perBank := m.RatePerSec(1.0) * 1024 * 0.010
	if math.Abs(perBank-1.024) > 0.05 {
		t.Errorf("1kbit bank gets %v SEUs per 10ms, want ≈1", perBank)
	}
	// Observation 3 anchor: λ(0.58)/λ(1.0) = 1.25.
	ratio := m.RatePerSec(0.58) / m.RatePerSec(1.0)
	if math.Abs(ratio-1.25) > 1e-9 {
		t.Errorf("λ(0.58)/λ(1.0) = %v, want 1.25", ratio)
	}
	// Monotone: lower voltage, higher rate.
	if m.RatePerSec(0.44) <= m.RatePerSec(0.58) || m.RatePerSec(0.58) <= m.RatePerSec(1.0) {
		t.Error("SER not monotone decreasing in voltage")
	}
	// Above-nominal voltage gives below-base rate (Fig. 11's 1.2 V level).
	if m.RatePerSec(1.2) >= m.RatePerSec(1.0) {
		t.Error("SER at 1.2V should be below base rate")
	}
	// Halving the clock doubles the per-cycle rate (same per-second flux).
	a := m.RatePerCycle(1.0, 200e6)
	b := m.RatePerCycle(1.0, 100e6)
	if math.Abs(b/a-2.0) > 1e-9 {
		t.Errorf("per-cycle rate ratio at half clock = %v, want 2", b/a)
	}
	if m.RatePerCycle(1.0, 0) != 0 {
		t.Error("zero frequency should yield zero per-cycle rate")
	}
}

func TestSERModelValidate(t *testing.T) {
	bad := []SERModel{
		{BaseRatePerCycle: -1e-9, RefFreqHz: 1e8, NominalV: 1, K: 1},
		{BaseRatePerCycle: 1e-9, RefFreqHz: 0, NominalV: 1, K: 1},
		{BaseRatePerCycle: 1e-9, RefFreqHz: 1e8, NominalV: 0, K: 1},
		{BaseRatePerCycle: 1e-9, RefFreqHz: 1e8, NominalV: 1, K: -1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %d validated, want error", i)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for _, mean := range []float64{0.5, 3, 25, 80, 1000, 2.5e5} {
		const n = 4000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(Poisson(rng, mean))
			sum += v
			sumSq += v * v
		}
		gotMean := sum / n
		gotVar := sumSq/n - gotMean*gotMean
		// Mean and variance both equal mean; allow 5 standard errors.
		tol := 5 * math.Sqrt(mean/n)
		if math.Abs(gotMean-mean) > tol {
			t.Errorf("mean %v: sample mean %v outside ±%v", mean, gotMean, tol)
		}
		if math.Abs(gotVar-mean) > mean*0.15+1 {
			t.Errorf("mean %v: sample variance %v, want ≈%v", mean, gotVar, mean)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Poisson(rng, 0) != 0 || Poisson(rng, -5) != 0 || Poisson(rng, math.NaN()) != 0 {
		t.Error("degenerate means should yield 0")
	}
	for i := 0; i < 1000; i++ {
		if Poisson(rng, 100) < 0 {
			t.Fatal("negative Poisson variate")
		}
	}
}

func simpleCampaign() *Campaign {
	return &Campaign{
		Items: []ExposureItem{
			{Core: 0, Label: "r1", Bits: 1000, Cycles: 1_000_000},
			{Core: 0, Label: "r2", Bits: 500, Cycles: 2_000_000},
			{Core: 1, Label: "r3", Bits: 2000, Cycles: 1_000_000},
		},
		Lambda:        []float64{1e-6, 2e-6},
		SpaceBits:     []int64{4000, 4000},
		HorizonCycles: []int64{2_000_000, 2_000_000},
	}
}

func TestCampaignValidate(t *testing.T) {
	c := simpleCampaign()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&Campaign{}).Validate() == nil {
		t.Error("empty campaign accepted")
	}
	bad := simpleCampaign()
	bad.Items[0].Core = -1
	if bad.Validate() == nil {
		t.Error("negative core accepted")
	}
	bad = simpleCampaign()
	bad.Items[0].Bits = -1
	if bad.Validate() == nil {
		t.Error("negative bits accepted")
	}
	bad = simpleCampaign()
	bad.Lambda = []float64{1e-6} // core 1 uncovered
	if bad.Validate() == nil {
		t.Error("short lambda accepted")
	}
	bad = simpleCampaign()
	bad.Lambda[0] = -1
	if bad.Validate() == nil {
		t.Error("negative lambda accepted")
	}
}

func TestCampaignExpectation(t *testing.T) {
	c := simpleCampaign()
	rng := rand.New(rand.NewSource(7))
	res, err := c.Run(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per core: core0 = 1e-6*(1e9 + 1e9) = 2000; core1 = 2e-6*2e9 = 4000.
	if math.Abs(res.PerCore[0].Expected-2000) > 1e-9 {
		t.Errorf("core0 expected = %v, want 2000", res.PerCore[0].Expected)
	}
	if math.Abs(res.PerCore[1].Expected-4000) > 1e-9 {
		t.Errorf("core1 expected = %v, want 4000", res.PerCore[1].Expected)
	}
	if math.Abs(res.TotalExpected()-6000) > 1e-9 {
		t.Errorf("total expected = %v", res.TotalExpected())
	}
	// Measured should be within 6 sigma of expectation.
	got := float64(res.TotalExperienced())
	if math.Abs(got-6000) > 6*math.Sqrt(6000) {
		t.Errorf("experienced = %v, improbably far from 6000", got)
	}
	// Injected covers the whole space, so it must be >= experienced per core.
	for _, pc := range res.PerCore {
		if pc.Injected < pc.Experienced {
			t.Errorf("core %d: injected %d < experienced %d", pc.Core, pc.Injected, pc.Experienced)
		}
	}
	// Injection domain larger than live exposure ⇒ statistically more
	// injected than experienced. core0 space = 8e9 bit·cycles vs 2e9 live.
	if res.TotalInjected() <= res.TotalExperienced() {
		t.Errorf("injected %d should exceed experienced %d for this campaign",
			res.TotalInjected(), res.TotalExperienced())
	}
}

func TestCampaignDeterministicPerSeed(t *testing.T) {
	c := simpleCampaign()
	a, _ := c.Run(rand.New(rand.NewSource(42)))
	b, _ := c.Run(rand.New(rand.NewSource(42)))
	if a.TotalExperienced() != b.TotalExperienced() || a.TotalInjected() != b.TotalInjected() {
		t.Error("same seed produced different results")
	}
	d, _ := c.Run(rand.New(rand.NewSource(43)))
	if a.TotalExperienced() == d.TotalExperienced() && a.TotalInjected() == d.TotalInjected() {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestRunRepeated(t *testing.T) {
	c := simpleCampaign()
	totals, mean, err := c.RunRepeated(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(totals) != 50 {
		t.Fatalf("got %d totals", len(totals))
	}
	if math.Abs(mean-6000) > 6*math.Sqrt(6000.0/50) {
		t.Errorf("repeated mean %v improbably far from 6000", mean)
	}
	if _, _, err := c.RunRepeated(1, 0); err == nil {
		t.Error("zero repetitions accepted")
	}
}

func TestTopLabels(t *testing.T) {
	r := &Result{PerLabel: map[string]int64{"a": 5, "b": 50, "c": 50, "d": 1}}
	top := r.TopLabels(3)
	if len(top) != 3 || top[0] != "b" || top[1] != "c" || top[2] != "a" {
		t.Errorf("TopLabels = %v", top)
	}
	if got := r.TopLabels(99); len(got) != 4 {
		t.Errorf("TopLabels(99) returned %d labels", len(got))
	}
}

func TestZeroLambdaCore(t *testing.T) {
	c := &Campaign{
		Items:  []ExposureItem{{Core: 0, Label: "r", Bits: 1 << 20, Cycles: 1 << 20}},
		Lambda: []float64{0},
	}
	res, err := c.Run(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalExperienced() != 0 || res.TotalInjected() != 0 {
		t.Error("zero λ should inject nothing")
	}
}
