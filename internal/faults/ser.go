// Package faults implements the paper's SEU fault model (§II-B): for a soft
// error rate λ (quoted as SEUs per bit per clock cycle), upset events arrive
// as a Poisson process over the register space of each processing core; an
// SEU is *experienced* when it strikes a register bit holding live state.
//
// Physically SEUs are a radiation-driven *per-second* process: the paper's
// own anchor "SER of 10⁻⁹, i.e. 1 SEU per 10 ms for a 1 kbit register bank"
// fixes the per-cycle quote at a 100 MHz reference clock
// (1024 bit · 10⁻⁹/bit/cycle · 10⁶ cycles ≈ 1 upset per 10 ms). SERModel
// therefore stores the rate per second and converts to per-cycle rates at
// each core's own operating frequency — this is what makes voltage scaling
// hurt reliability twice: exposure time stretches with 1/f while the
// per-second rate grows exponentially as V_dd drops (Chandra & Aitken,
// DFT-VLSI'08). Observation 3 of the paper (Γ ≈ ×2.5 from all-s=1 to
// all-s=2 while T_M doubles) pins the voltage factor at λ(0.58 V)/λ(1.0 V)
// ≈ 1.25, which calibrates the exponential.
package faults

import (
	"fmt"
	"math"
)

// DefaultSER is the soft error rate used throughout the paper's evaluation,
// quoted per bit per cycle: 1e-9 SEU/bit/cycle.
const DefaultSER = 1e-9

// DefaultSERRefHz is the reference clock at which the per-cycle quote is
// anchored (the "1 SEU per 10 ms per kbit" equivalence).
const DefaultSERRefHz = 100e6

// SERModel maps a core's supply voltage to its soft error rate:
//
//	λ_sec(V) = BaseRatePerCycle · RefFreqHz · exp(K · (NominalV − V))
//
// in SEU/bit/second, converted to per-cycle rates at a core's own clock by
// RatePerCycle.
type SERModel struct {
	BaseRatePerCycle float64 // per-cycle quote at RefFreqHz and NominalV
	RefFreqHz        float64 // clock anchoring the per-cycle quote
	NominalV         float64 // volts
	K                float64 // 1/volt, exponential V_dd sensitivity
}

// DefaultK is calibrated so λ(0.58 V)/λ(1.0 V) = 1.25 (Observation 3):
// K = ln(1.25)/0.42.
var DefaultK = math.Log(1.25) / 0.42

// NewSERModel returns the calibrated model with the given per-cycle base
// rate quoted at the 100 MHz reference clock and 1.0 V nominal.
func NewSERModel(baseRatePerCycle float64) SERModel {
	return SERModel{
		BaseRatePerCycle: baseRatePerCycle,
		RefFreqHz:        DefaultSERRefHz,
		NominalV:         1.0,
		K:                DefaultK,
	}
}

// Validate reports configuration errors.
func (m SERModel) Validate() error {
	// A zero base rate is a valid model (no soft errors at all, Γ ≡ 0);
	// only negative rates are rejected.
	if m.BaseRatePerCycle < 0 {
		return fmt.Errorf("faults: negative base SER %v", m.BaseRatePerCycle)
	}
	if m.RefFreqHz <= 0 {
		return fmt.Errorf("faults: non-positive reference frequency %v", m.RefFreqHz)
	}
	if m.NominalV <= 0 {
		return fmt.Errorf("faults: non-positive nominal voltage %v", m.NominalV)
	}
	if m.K < 0 {
		return fmt.Errorf("faults: negative voltage sensitivity %v", m.K)
	}
	return nil
}

// RatePerSec returns λ(vdd) in SEU/bit/second.
func (m SERModel) RatePerSec(vdd float64) float64 {
	return m.BaseRatePerCycle * m.RefFreqHz * math.Exp(m.K*(m.NominalV-vdd))
}

// RatePerCycle returns λ(vdd) in SEU/bit/cycle for a core clocked at
// freqHz: the per-second rate spread over that clock's cycles.
func (m SERModel) RatePerCycle(vdd, freqHz float64) float64 {
	if freqHz <= 0 {
		return 0
	}
	return m.RatePerSec(vdd) / freqHz
}
