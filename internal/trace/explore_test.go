package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/taskgraph"

	"seadopt/internal/arch"
)

// exploreStats runs a real parallel exploration with telemetry attached and
// returns the snapshot, so the exporter test covers genuine span/event data.
func exploreStats(t *testing.T) *mapping.ExploreStats {
	t.Helper()
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	tel := mapping.NewTelemetry()
	cfg := mapping.Config{
		SER:         faults.NewSERModel(faults.DefaultSER),
		DeadlineSec: taskgraph.MPEG2Deadline,
		Iterations:  taskgraph.MPEG2Frames,
		SearchMoves: 200,
		Seed:        1,
		Parallelism: 4,
		Telemetry:   tel,
	}
	if _, _, err := mapping.Explore(g, p, mapping.SEAMapper(cfg), cfg); err != nil {
		t.Fatal(err)
	}
	return tel.Stats()
}

func TestWriteExploration(t *testing.T) {
	st := exploreStats(t)
	var buf bytes.Buffer
	if err := WriteExploration(&buf, "test exploration", st); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}

	// One named thread row per worker plus the events row, whatever the
	// span recording looked like.
	rows := map[int]string{}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				rows[ev.TID] = ev.Args["name"].(string)
			}
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Errorf("negative duration: %+v", ev)
			}
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant event without thread scope: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	for _, ws := range st.Workers {
		if _, ok := rows[ws.Worker]; !ok {
			t.Errorf("worker %d has no thread row", ws.Worker)
		}
	}
	if _, ok := rows[len(st.Workers)]; !ok {
		t.Error("missing exploration-events row")
	}
	var wantSpans int
	for _, ws := range st.Workers {
		wantSpans += len(ws.Spans)
	}
	if spans != wantSpans {
		t.Errorf("rendered %d duration events, want %d", spans, wantSpans)
	}
	if instants != len(st.Events) {
		t.Errorf("rendered %d instant events, want %d", instants, len(st.Events))
	}
}

func TestWriteExplorationNilStats(t *testing.T) {
	if err := WriteExploration(&bytes.Buffer{}, "x", nil); err == nil {
		t.Fatal("want error for nil stats")
	}
}
