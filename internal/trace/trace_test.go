package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/sched"
	"seadopt/internal/sim"
	"seadopt/internal/taskgraph"
)

func setup(t *testing.T) (*taskgraph.Graph, *arch.Platform, sched.Mapping, []int) {
	t.Helper()
	g := taskgraph.Fig8()
	p := arch.MustNewPlatform(3, arch.ARM7Levels3())
	return g, p, sched.Mapping{0, 1, 0, 1, 0, 2}, []int{1, 2, 2}
}

// decode parses the exported JSON back into a generic structure.
func decode(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	return doc
}

func TestWriteSchedule(t *testing.T) {
	g, p, m, scaling := setup(t)
	s, err := sched.ListSchedule(g, p, m, scaling)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, buf.Bytes())
	events := doc["traceEvents"].([]any)
	// 1 process_name + 3 thread_name + 6 task slots.
	if len(events) != 1+3+g.N() {
		t.Fatalf("got %d events, want %d", len(events), 1+3+g.N())
	}
	var durations int
	for _, e := range events {
		ev := e.(map[string]any)
		switch ev["ph"] {
		case "X":
			durations++
			if ev["dur"].(float64) <= 0 {
				t.Errorf("event %v has non-positive duration", ev["name"])
			}
			tid := int(ev["tid"].(float64))
			if tid < 0 || tid >= 3 {
				t.Errorf("event on unknown core %d", tid)
			}
		case "M":
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if durations != g.N() {
		t.Errorf("%d duration events, want %d", durations, g.N())
	}
}

func TestWriteSimulation(t *testing.T) {
	g, p, m, scaling := setup(t)
	const iters = 4
	r, err := sim.Run(g, p, m, scaling, sim.Config{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSimulation(&buf, r); err != nil {
		t.Fatal(err)
	}
	doc := decode(t, buf.Bytes())
	events := doc["traceEvents"].([]any)
	durations := 0
	iterTagged := 0
	for _, e := range events {
		ev := e.(map[string]any)
		if ev["ph"] == "X" {
			durations++
			if args, ok := ev["args"].(map[string]any); ok {
				if it, ok := args["iteration"].(float64); ok && it > 0 {
					iterTagged++
				}
			}
		}
	}
	if durations != g.N()*iters {
		t.Errorf("%d duration events, want %d", durations, g.N()*iters)
	}
	if iterTagged != g.N()*(iters-1) {
		t.Errorf("%d iteration-tagged events, want %d", iterTagged, g.N()*(iters-1))
	}
}
