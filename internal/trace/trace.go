// Package trace exports schedules and cycle-level simulation runs in the
// Chrome Trace Event format (the JSON consumed by chrome://tracing and
// https://ui.perfetto.dev), so MPSoC executions can be inspected visually:
// one row per processing core, one duration event per task instance, with
// metadata rows naming the cores by their DVS operating point.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"seadopt/internal/sched"
	"seadopt/internal/sim"
)

// event is one Chrome trace event. Only the fields this exporter uses.
type event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope ("t")
	Args  map[string]any `json:"args,omitempty"`
}

// document is the top-level trace file.
type document struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

const pid = 1 // one MPSoC = one process row

// metadataEvents names the process and one thread per core.
func metadataEvents(title string, scaling []int) []event {
	evs := []event{{
		Name: "process_name", Phase: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": title},
	}}
	for c, s := range scaling {
		evs = append(evs, event{
			Name: "thread_name", Phase: "M", PID: pid, TID: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d (s=%d)", c, s)},
		})
	}
	return evs
}

// WriteSchedule exports an analytic schedule.
func WriteSchedule(w io.Writer, s *sched.Schedule) error {
	doc := document{DisplayTimeUnit: "ms"}
	doc.TraceEvents = metadataEvents("seadopt schedule: "+s.Graph.Name(), s.Scaling)
	for _, slot := range s.Slots {
		task := s.Graph.Task(slot.Task)
		doc.TraceEvents = append(doc.TraceEvents, event{
			Name:  task.Name,
			Phase: "X",
			TS:    slot.StartSec * 1e6,
			Dur:   (slot.EndSec - slot.StartSec) * 1e6,
			PID:   pid,
			TID:   slot.Core,
			Args: map[string]any{
				"task":   int(slot.Task),
				"cycles": task.Cycles,
			},
		})
	}
	return json.NewEncoder(w).Encode(doc)
}

// WriteSimulation exports a cycle-level simulation run, one duration event
// per executed task instance (iteration-tagged for pipelined runs).
func WriteSimulation(w io.Writer, r *sim.Result) error {
	doc := document{DisplayTimeUnit: "ms"}
	doc.TraceEvents = metadataEvents("seadopt simulation: "+r.Graph.Name(), r.Scaling)
	for _, ev := range r.Events {
		task := r.Graph.Task(ev.Task)
		name := task.Name
		if ev.Iteration > 0 {
			name = fmt.Sprintf("%s #%d", task.Name, ev.Iteration)
		}
		doc.TraceEvents = append(doc.TraceEvents, event{
			Name:  name,
			Phase: "X",
			TS:    ev.Start.Seconds() * 1e6,
			Dur:   (ev.End - ev.Start).Seconds() * 1e6,
			PID:   pid,
			TID:   ev.Core,
			Args: map[string]any{
				"task":      int(ev.Task),
				"iteration": ev.Iteration,
			},
		})
	}
	return json.NewEncoder(w).Encode(doc)
}
