package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"seadopt/internal/mapping"
)

// WriteExploration exports an exploration-telemetry snapshot as a Chrome
// trace: one thread row per worker carrying a duration event for every
// recorded combination span, plus a dedicated "exploration" row carrying
// instant events for incumbent updates, bound tightenings, frontier
// admissions and prune/skip marks. Timestamps are nanoseconds since the run
// start, rendered in microseconds as the format requires. Every worker gets
// a named row even when its span recording was capped (WorkerStats.Dropped
// reports the loss in the row's metadata).
func WriteExploration(w io.Writer, title string, st *mapping.ExploreStats) error {
	if st == nil {
		return fmt.Errorf("trace: nil exploration stats")
	}
	doc := document{DisplayTimeUnit: "ms"}
	doc.TraceEvents = []event{{
		Name: "process_name", Phase: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": title},
	}}
	// One row per worker, named and ordered, present even with zero spans.
	for _, ws := range st.Workers {
		doc.TraceEvents = append(doc.TraceEvents, event{
			Name: "thread_name", Phase: "M", PID: pid, TID: ws.Worker,
			Args: map[string]any{
				"name": fmt.Sprintf("worker %d (%d combinations, %.1f ms busy)",
					ws.Worker, ws.Combinations, float64(ws.BusyNanos)/1e6),
			},
		})
	}
	eventRow := len(st.Workers)
	doc.TraceEvents = append(doc.TraceEvents, event{
		Name: "thread_name", Phase: "M", PID: pid, TID: eventRow,
		Args: map[string]any{"name": "exploration events"},
	})
	for _, ws := range st.Workers {
		for _, sp := range ws.Spans {
			doc.TraceEvents = append(doc.TraceEvents, event{
				Name:  fmt.Sprintf("%s c%d", sp.Kind, sp.Combination),
				Phase: "X",
				TS:    float64(sp.StartNanos) / 1e3,
				Dur:   float64(sp.EndNanos-sp.StartNanos) / 1e3,
				PID:   pid,
				TID:   ws.Worker,
				Args: map[string]any{
					"combination": sp.Combination,
					"kind":        sp.Kind,
				},
			})
		}
	}
	for _, ev := range st.Events {
		args := map[string]any{
			"index":       ev.Index,
			"combination": ev.Combination,
		}
		if ev.NominalW != 0 {
			args["nominal_power_w"] = ev.NominalW
		}
		if ev.FrontierSize != 0 {
			args["frontier_size"] = ev.FrontierSize
		}
		doc.TraceEvents = append(doc.TraceEvents, event{
			Name:  ev.Kind,
			Phase: "i",
			TS:    float64(ev.AtNanos) / 1e3,
			PID:   pid,
			TID:   eventRow,
			Scope: "t",
			Args:  args,
		})
	}
	return json.NewEncoder(w).Encode(doc)
}
