// Package buildinfo exposes the binary's build identity — module version,
// VCS revision and Go toolchain — read once from the build metadata the Go
// linker embeds (runtime/debug.ReadBuildInfo). It backs the CLIs' -version
// flags, the daemon's /healthz payload and the seadoptd_build_info metric.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the binary's build identity.
type Info struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, suffixed
	// "+dirty" when the working tree was modified; "unknown" when the
	// build carried no VCS stamp.
	Revision string `json:"revision"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
}

// String renders the identity as a one-line -version banner body.
func (i Info) String() string {
	return fmt.Sprintf("version %s revision %s (%s)", i.Version, i.Revision, i.Go)
}

var read = sync.OnceValue(func() Info {
	info := Info{Version: "(devel)", Revision: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.Go = bi.GoVersion
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		info.Revision = rev
	}
	return info
})

// Read returns the binary's build identity, computed once.
func Read() Info { return read() }
