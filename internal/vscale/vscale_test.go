package vscale

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"seadopt/internal/arch"
)

// TestNextScalingFig5b pins the exact 15-row table of Fig. 5(b) for four
// cores and three scaling levels.
func TestNextScalingFig5b(t *testing.T) {
	want := [][]int{
		{3, 3, 3, 3},
		{3, 3, 3, 2},
		{3, 3, 3, 1},
		{3, 3, 2, 2},
		{3, 3, 2, 1},
		{3, 3, 1, 1},
		{3, 2, 2, 2},
		{3, 2, 2, 1},
		{3, 2, 1, 1},
		{3, 1, 1, 1},
		{2, 2, 2, 2},
		{2, 2, 2, 1},
		{2, 2, 1, 1},
		{2, 1, 1, 1},
		{1, 1, 1, 1},
	}
	got, err := All(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("enumeration produced %d vectors, want %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Errorf("row %d: got %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestNextScalingTermination(t *testing.T) {
	if _, ok := NextScaling([]int{1, 1, 1}); ok {
		t.Error("all-nominal vector should have no successor")
	}
	next, ok := NextScaling([]int{2, 1, 1})
	if !ok || fmt.Sprint(next) != "[1 1 1]" {
		t.Errorf("NextScaling([2 1 1]) = %v,%v", next, ok)
	}
}

func TestNextScalingDoesNotMutateInput(t *testing.T) {
	prev := []int{3, 2, 1}
	_, _ = NextScaling(prev)
	if fmt.Sprint(prev) != "[3 2 1]" {
		t.Errorf("input mutated: %v", prev)
	}
}

func TestEnumeratorReset(t *testing.T) {
	e, err := NewEnumerator(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := e.Next()
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if _, ok := e.Next(); ok {
		t.Error("exhausted enumerator yielded a vector")
	}
	e.Reset()
	again, ok := e.Next()
	if !ok || fmt.Sprint(again) != fmt.Sprint(first) {
		t.Errorf("after Reset got %v, want %v", again, first)
	}
}

func TestNewEnumeratorValidation(t *testing.T) {
	if _, err := NewEnumerator(0, 3); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewEnumerator(3, 0); err == nil {
		t.Error("0 levels accepted")
	}
}

func TestCountFormula(t *testing.T) {
	cases := []struct{ cores, levels, want int }{
		{4, 3, 15}, // Fig. 5(b): "15 unique combinations ... compared to 3^4=81"
		{1, 3, 3},
		{2, 2, 3},
		{6, 3, 28},
		{4, 4, 35},
		{3, 1, 1},
	}
	for _, c := range cases {
		if got := Count(c.cores, c.levels); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.cores, c.levels, got, c.want)
		}
	}
}

// Property: for any (cores, levels) the enumeration is (a) the right length,
// (b) strictly non-increasing within each vector, (c) duplicate-free, and
// (d) complete — every exhaustive combination's canonical form appears.
func TestEnumerationCompleteProperty(t *testing.T) {
	f := func(coresRaw, levelsRaw uint8) bool {
		cores := 1 + int(coresRaw)%5
		levels := 1 + int(levelsRaw)%4
		combos, err := All(cores, levels)
		if err != nil {
			return false
		}
		if len(combos) != Count(cores, levels) {
			return false
		}
		seen := make(map[string]bool)
		for _, s := range combos {
			for i := 1; i < len(s); i++ {
				if s[i] > s[i-1] {
					return false // not non-increasing
				}
			}
			key := fmt.Sprint(s)
			if seen[key] {
				return false // duplicate
			}
			seen[key] = true
		}
		for _, raw := range Exhaustive(cores, levels) {
			if !seen[fmt.Sprint(Canonical(raw))] {
				return false // missing combination
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCanonical(t *testing.T) {
	got := Canonical([]int{1, 3, 2, 3})
	if fmt.Sprint(got) != "[3 3 2 1]" {
		t.Errorf("Canonical = %v", got)
	}
}

func TestAllByPowerSorted(t *testing.T) {
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	combos, err := AllByPower(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 15 {
		t.Fatalf("got %d combos", len(combos))
	}
	var prev float64 = -1
	for _, s := range combos {
		pw, err := p.DynamicPower(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if pw < prev {
			t.Fatalf("power order violated at %v: %v < %v", s, pw, prev)
		}
		prev = pw
	}
	// Cheapest must be all-slowest, most expensive all-nominal.
	if fmt.Sprint(combos[0]) != "[3 3 3 3]" {
		t.Errorf("cheapest combo = %v", combos[0])
	}
	if fmt.Sprint(combos[len(combos)-1]) != "[1 1 1 1]" {
		t.Errorf("most expensive combo = %v", combos[len(combos)-1])
	}
}

func TestExhaustiveSize(t *testing.T) {
	if got := len(Exhaustive(4, 3)); got != 81 {
		t.Errorf("Exhaustive(4,3) = %d combos, want 81", got)
	}
	// Exhaustive vectors must all be in range and unique.
	seen := make(map[string]bool)
	for _, s := range Exhaustive(3, 2) {
		sort.Ints(s)
		if s[0] < 1 || s[len(s)-1] > 2 {
			t.Errorf("out of range vector %v", s)
		}
	}
	for _, s := range Exhaustive(2, 3) {
		k := fmt.Sprint(s)
		if seen[k] {
			t.Errorf("duplicate %v", s)
		}
		seen[k] = true
	}
}
