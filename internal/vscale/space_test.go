package vscale

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"seadopt/internal/arch"
)

// mixedTestSpace is the canonical 4-core mixed fixture: two 3-level cores in
// one class, a 2-level core and a 4-level core. Count = C(4,2)·2·4 = 48.
func mixedTestSpace(t *testing.T) *Space {
	t.Helper()
	sp, err := NewSpace([]int{3, 3, 2, 4}, []int{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func mixedTestPlatform(t *testing.T) *arch.Platform {
	t.Helper()
	p, err := arch.NewHeterogeneousPlatform(
		[]arch.ProcType{
			{Name: "arm7x3", Levels: arch.ARM7Levels3()},
			{Name: "arm7x2", Levels: arch.ARM7Levels2()},
			{Name: "arm7x4", Levels: arch.ARM7Levels4()},
		},
		[]int{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewSpaceValidation(t *testing.T) {
	cases := []struct {
		name  string
		caps  []int
		class []int
	}{
		{"no cores", nil, nil},
		{"zero cap", []int{3, 0}, []int{0, 1}},
		{"length mismatch", []int{3, 3}, []int{0}},
		{"non-dense classes", []int{3, 3}, []int{0, 2}},
		{"class not first-occurrence ordered", []int{3, 3}, []int{1, 0}},
		{"class mixes caps", []int{3, 2}, []int{0, 0}},
	}
	for _, c := range cases {
		if _, err := NewSpace(c.caps, c.class); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// nil class means every core is its own class.
	sp, err := NewSpace([]int{3, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Count(); got != 6 {
		t.Errorf("independent 3×2 space Count = %d, want 6", got)
	}
}

// TestUniformSpaceMatchesLegacy: for homogeneous platforms the Space must be
// bit-identical to the legacy Fig. 5 enumeration — same sequence, same
// Count, same Rank/Unrank indices — so the generalization preserves every
// stable combination index and mapper seed.
func TestUniformSpaceMatchesLegacy(t *testing.T) {
	for _, tc := range []struct{ cores, levels int }{
		{1, 1}, {1, 4}, {4, 1}, {4, 3}, {3, 4}, {6, 2}, {2, 6}, {5, 3},
	} {
		sp, err := UniformSpace(tc.cores, tc.levels)
		if err != nil {
			t.Fatal(err)
		}
		want, err := All(tc.cores, tc.levels)
		if err != nil {
			t.Fatal(err)
		}
		got := sp.All()
		if len(got) != len(want) || sp.Count() != Count(tc.cores, tc.levels) {
			t.Fatalf("%d×%d: space has %d vectors (Count %d), legacy %d (Count %d)",
				tc.cores, tc.levels, len(got), sp.Count(), len(want), Count(tc.cores, tc.levels))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("%d×%d: space[%d] = %v, legacy %v", tc.cores, tc.levels, i, got[i], want[i])
			}
			su, err := sp.Unrank(i)
			if err != nil {
				t.Fatal(err)
			}
			lu, err := Unrank(tc.cores, tc.levels, i)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(su) != fmt.Sprint(lu) {
				t.Fatalf("%d×%d: space.Unrank(%d) = %v, legacy %v", tc.cores, tc.levels, i, su, lu)
			}
			sr, err := sp.Rank(want[i])
			if err != nil {
				t.Fatal(err)
			}
			lr, err := Rank(want[i], tc.levels)
			if err != nil {
				t.Fatal(err)
			}
			if sr != i || lr != i {
				t.Fatalf("%d×%d: Rank(%v) = space %d / legacy %d, want %d", tc.cores, tc.levels, want[i], sr, lr, i)
			}
		}
	}
}

// TestUniformSampledFrontierMatchesLegacy: the sampled draw sequence must be
// stable across the generalization so seed-keyed sampled results survive.
func TestUniformSampledFrontierMatchesLegacy(t *testing.T) {
	sp, err := UniformSpace(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{0, 7, 2010} {
		legacy, err := NewSampledFrontier(6, 3, 9, seed)
		if err != nil {
			t.Fatal(err)
		}
		general, err := sp.SampledFrontier(9, seed)
		if err != nil {
			t.Fatal(err)
		}
		for {
			lc, lok := legacy.Next()
			gc, gok := general.Next()
			if lok != gok {
				t.Fatalf("seed %d: sampled streams end apart", seed)
			}
			if !lok {
				break
			}
			if lc.Index != gc.Index || fmt.Sprint(lc.Scaling) != fmt.Sprint(gc.Scaling) {
				t.Fatalf("seed %d: sampled combos differ: %v vs %v", seed, lc, gc)
			}
		}
	}
}

// TestMixedSpaceEnumeration: structural properties of the mixed fixture —
// size, validity, descending-lex order, full coverage up to within-class
// permutation.
func TestMixedSpaceEnumeration(t *testing.T) {
	sp := mixedTestSpace(t)
	all := sp.All()
	if len(all) != 48 || sp.Count() != 48 {
		t.Fatalf("mixed space has %d vectors, Count %d, want 48", len(all), sp.Count())
	}
	seen := make(map[string]bool, len(all))
	for i, s := range all {
		if !sp.Valid(s) {
			t.Fatalf("enumerated invalid vector %v", s)
		}
		if seen[fmt.Sprint(s)] {
			t.Fatalf("duplicate vector %v", s)
		}
		seen[fmt.Sprint(s)] = true
		if i > 0 && fmt.Sprint(all[i-1]) <= fmt.Sprint(s) {
			// Same-length small-int vectors: string order == lex order.
			t.Fatalf("not descending lexicographic: %v after %v", s, all[i-1])
		}
	}
	// Every raw combination's canonical form is enumerated.
	var raw func(i int, cur []int)
	raw = func(i int, cur []int) {
		if i == sp.Cores() {
			if !seen[fmt.Sprint(sp.Canonical(cur))] {
				t.Fatalf("raw combination %v has no canonical representative (canonical %v)", cur, sp.Canonical(cur))
			}
			return
		}
		for v := 1; v <= sp.caps[i]; v++ {
			cur[i] = v
			raw(i+1, cur)
		}
	}
	raw(0, make([]int, sp.Cores()))
}

// TestMixedSpaceUnrankRankIdentity: Unrank∘Rank is the identity over the
// full space of the 4-core mixed platform, and Rank∘Unrank too.
func TestMixedSpaceUnrankRankIdentity(t *testing.T) {
	sp := mixedTestSpace(t)
	for i, s := range sp.All() {
		r, err := sp.Rank(s)
		if err != nil {
			t.Fatal(err)
		}
		if r != i {
			t.Fatalf("Rank(%v) = %d, want enumeration position %d", s, r, i)
		}
		u, err := sp.Unrank(r)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(u) != fmt.Sprint(s) {
			t.Fatalf("Unrank(Rank(%v)) = %v", s, u)
		}
	}
	if _, err := sp.Unrank(-1); err == nil {
		t.Error("Unrank(-1) accepted")
	}
	if _, err := sp.Unrank(48); err == nil {
		t.Error("Unrank(Count) accepted")
	}
	if _, err := sp.Rank([]int{1, 2, 1, 1}); err == nil {
		t.Error("Rank accepted a non-canonical vector (class order violated)")
	}
	if _, err := sp.Rank([]int{1, 1, 3, 1}); err == nil {
		t.Error("Rank accepted an out-of-cap vector")
	}
}

func TestMixedSpaceNextEdgeCases(t *testing.T) {
	sp := mixedTestSpace(t)
	if _, ok := sp.Next([]int{1, 1, 1, 1}); ok {
		t.Error("all-fastest vector has a successor")
	}
	for _, bad := range [][]int{nil, {1, 1, 1}, {1, 2, 1, 1}, {0, 1, 1, 1}, {1, 1, 3, 1}} {
		if _, ok := sp.Next(bad); ok {
			t.Errorf("malformed vector %v accepted", bad)
		}
	}
}

// TestPlatformSpaceMatchesArch: the space derived from a heterogeneous
// platform uses its level counts and symmetry classes, and the homogeneous
// platform derivation reproduces the uniform space.
func TestPlatformSpaceMatchesArch(t *testing.T) {
	p := mixedTestPlatform(t)
	sp, err := PlatformSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sp.Caps()) != fmt.Sprint([]int{3, 3, 2, 4}) {
		t.Errorf("Caps = %v", sp.Caps())
	}
	if sp.Count() != 48 {
		t.Errorf("Count = %d, want 48", sp.Count())
	}
	hp, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		t.Fatal(err)
	}
	hsp, err := PlatformSpace(hp)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := All(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := hsp.All()
	if len(got) != len(legacy) {
		t.Fatalf("homogeneous platform space has %d vectors, legacy %d", len(got), len(legacy))
	}
	for i := range legacy {
		if fmt.Sprint(got[i]) != fmt.Sprint(legacy[i]) {
			t.Fatalf("homogeneous platform space[%d] = %v, legacy %v", i, got[i], legacy[i])
		}
	}
}

// TestMixedSampledFrontier: distinct, in-index-order, seed-deterministic
// draws from the mixed space.
func TestMixedSampledFrontier(t *testing.T) {
	sp := mixedTestSpace(t)
	draw := func(seed int64, budget int) []Combo {
		f, err := sp.SampledFrontier(budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []Combo
		for {
			c, ok := f.Next()
			if !ok {
				return out
			}
			out = append(out, c)
		}
	}
	a := draw(7, 10)
	b := draw(7, 10)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same seed drew different samples")
	}
	if len(a) != 10 {
		t.Fatalf("drew %d combos, want 10", len(a))
	}
	for i, c := range a {
		if i > 0 && a[i-1].Index >= c.Index {
			t.Fatalf("sample not in ascending index order: %v", a)
		}
		u, err := sp.Unrank(c.Index)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(u) != fmt.Sprint(c.Scaling) {
			t.Fatalf("sampled combo %v disagrees with Unrank %v", c, u)
		}
	}
	if got := draw(7, 0); len(got) != 48 {
		t.Errorf("zero budget yielded %d combos, want the whole space", len(got))
	}
}

// TestMixedRankedFrontierMatchesAllByPower: lazy best-first generation over
// the mixed platform must reproduce the materialize-and-sort power order.
func TestMixedRankedFrontierMatchesAllByPower(t *testing.T) {
	p := mixedTestPlatform(t)
	sp, err := PlatformSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AllByPower(p)
	if err != nil {
		t.Fatal(err)
	}
	weight := make([][]float64, p.Cores())
	for c := range weight {
		levels := p.Levels(c)
		weight[c] = make([]float64, len(levels))
		for i, l := range levels {
			weight[c][i] = l.FreqHz() * l.Vdd * l.Vdd
		}
	}
	f, err := sp.RankedFrontier(weight)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		c, ok := f.Next()
		if !ok {
			t.Fatalf("ranked frontier ended at %d of %d", i, len(want))
		}
		if fmt.Sprint(c.Scaling) != fmt.Sprint(want[i]) {
			t.Fatalf("ranked[%d] = %v, want %v", i, c.Scaling, want[i])
		}
		if r, _ := sp.Rank(c.Scaling); r != c.Index {
			t.Fatalf("ranked[%d] carries index %d, Rank says %d", i, c.Index, r)
		}
	}
	if _, ok := f.Next(); ok {
		t.Error("ranked frontier over-produced")
	}
}

func TestRankedFrontierWeightValidation(t *testing.T) {
	sp := mixedTestSpace(t)
	if _, err := sp.RankedFrontier(nil); err == nil {
		t.Error("missing weights accepted")
	}
	if _, err := sp.RankedFrontier([][]float64{{3, 2, 1}, {3, 2, 1}, {2, 1}, {4, 3}}); err == nil {
		t.Error("short weight column accepted")
	}
	if _, err := sp.RankedFrontier([][]float64{{1, 2, 3}, {1, 2, 3}, {2, 1}, {4, 3, 2, 1}}); err == nil {
		t.Error("increasing weights accepted")
	}
	if _, err := sp.RankedFrontier([][]float64{{3, 2, 1}, {4, 2, 1}, {2, 1}, {4, 3, 2, 1}}); err == nil {
		t.Error("same-class cores with different weights accepted")
	}
}

// TestMixedSpaceRandomRoundTrip fuzzes larger mixed spaces: random caps and
// classes, Unrank∘Rank identity at random ranks, Next consistency with
// Unrank.
func TestMixedSpaceRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		cores := 1 + rng.Intn(6)
		caps := make([]int, cores)
		class := make([]int, cores)
		classCap := []int{}
		for i := range caps {
			// Reuse an existing class (same cap) or open a new one.
			if len(classCap) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(classCap))
				class[i], caps[i] = k, classCap[k]
				// Classes must appear in first-occurrence order; remap below.
			} else {
				class[i] = len(classCap)
				caps[i] = 1 + rng.Intn(4)
				classCap = append(classCap, caps[i])
			}
		}
		// Remap class ids to first-occurrence order.
		remap := map[int]int{}
		for i, k := range class {
			if _, ok := remap[k]; !ok {
				remap[k] = len(remap)
			}
			class[i] = remap[k]
		}
		sp, err := NewSpace(caps, class)
		if err != nil {
			t.Fatalf("trial %d: NewSpace(%v, %v): %v", trial, caps, class, err)
		}
		total := sp.Count()
		// Walk the enumeration and check Rank at every position (spaces stay
		// small: caps ≤ 4, cores ≤ 6).
		if total > 5000 {
			continue
		}
		cur := sp.Start()
		for i := 0; ; i++ {
			r, err := sp.Rank(cur)
			if err != nil || r != i {
				t.Fatalf("trial %d (%v/%v): Rank(%v) = %d, %v; want %d", trial, caps, class, cur, r, err, i)
			}
			u, err := sp.Unrank(i)
			if err != nil || fmt.Sprint(u) != fmt.Sprint(cur) {
				t.Fatalf("trial %d: Unrank(%d) = %v, %v; want %v", trial, i, u, err, cur)
			}
			next, ok := sp.Next(cur)
			if !ok {
				if i != total-1 {
					t.Fatalf("trial %d: enumeration ended at %d of %d", trial, i+1, total)
				}
				break
			}
			cur = next
		}
	}
}

// TestSpaceCountOverflowRejected: a space whose combination count exceeds
// int must be rejected at construction — Unrank and the sampled frontier
// would otherwise silently draw from a wrapped range.
func TestSpaceCountOverflowRejected(t *testing.T) {
	// 13 independent classes of 4 cores × 4 levels: 35^13 ≈ 1.18e20 > MaxInt64.
	var caps, class []int
	for k := 0; k < 13; k++ {
		for c := 0; c < 4; c++ {
			caps = append(caps, 4)
			class = append(class, k)
		}
	}
	// Interleaved class order violates first-occurrence density? No: classes
	// appear grouped, ids ascending — valid. The count must overflow.
	if _, err := NewSpace(caps, class); err == nil {
		t.Fatal("astronomically large space accepted; Count would overflow int")
	} else if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow rejection has unhelpful text: %v", err)
	}
	// A platform with the same shape errors through PlatformSpace rather
	// than panicking or wrapping.
	types := make([]arch.ProcType, 13)
	var coreTypes []int
	for k := range types {
		// Distinct tables: scale frequencies so no two types collapse into
		// one symmetry class.
		base := 200.0 + float64(k)
		levels, err := arch.LevelsFromFrequencies(base, base/2, base/4, base/8)
		if err != nil {
			t.Fatal(err)
		}
		types[k] = arch.ProcType{Name: fmt.Sprintf("t%d", k), Levels: levels}
		for c := 0; c < 4; c++ {
			coreTypes = append(coreTypes, k)
		}
	}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformSpace(p); err == nil {
		t.Fatal("PlatformSpace accepted an overflowing space")
	}
}

// TestIterFromMatchesFullWalk: an iterator started at any rank must replay
// exactly the suffix of the full in-order walk, indices included — the
// contract contiguous sharding builds on.
func TestIterFromMatchesFullWalk(t *testing.T) {
	sp := mixedTestSpace(t)
	total := sp.Count()
	type entry struct {
		scaling []int
		idx     int
	}
	var full []entry
	it := sp.Iter()
	for {
		s, idx, ok := it.Next()
		if !ok {
			break
		}
		full = append(full, entry{append([]int(nil), s...), idx})
	}
	if len(full) != total {
		t.Fatalf("full walk yielded %d vectors, want %d", len(full), total)
	}
	for _, start := range []int{0, 1, total / 3, total / 2, total - 1} {
		from, err := sp.IterFrom(start)
		if err != nil {
			t.Fatalf("IterFrom(%d): %v", start, err)
		}
		for pos := start; ; pos++ {
			s, idx, ok := from.Next()
			if !ok {
				if pos != total {
					t.Fatalf("IterFrom(%d) ended at position %d, want %d", start, pos, total)
				}
				break
			}
			if idx != full[pos].idx {
				t.Fatalf("IterFrom(%d) position %d: idx = %d, want %d", start, pos, idx, full[pos].idx)
			}
			if fmt.Sprint(s) != fmt.Sprint(full[pos].scaling) {
				t.Fatalf("IterFrom(%d) position %d: scaling = %v, want %v", start, pos, s, full[pos].scaling)
			}
		}
	}
	if _, err := sp.IterFrom(total); err == nil {
		t.Fatal("IterFrom(Count()) accepted; want range error")
	}
	if _, err := sp.IterFrom(-1); err == nil {
		t.Fatal("IterFrom(-1) accepted; want range error")
	}
}
