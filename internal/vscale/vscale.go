// Package vscale enumerates per-core voltage-scaling combinations for the
// power-minimization step of the design loop (step 1 of Fig. 4).
//
// Because the MPSoC cores are identical, two scaling vectors that are
// permutations of each other describe the same design space point (the task
// mapper is free to permute cores). The paper's nextScaling algorithm
// (Fig. 5a) therefore enumerates only the non-increasing vectors
// s1 ≥ s2 ≥ ... ≥ sC, starting from the all-slowest vector: for 4 cores and
// 3 levels that is the 15-row table of Fig. 5(b) instead of 3⁴ = 81 raw
// combinations.
//
// The transition rule (as reconstructed from Fig. 5(b); the paper's
// pseudocode as typeset produces a different, repetitive sequence — see the
// package tests): find the right-most core whose coefficient exceeds 1,
// decrement it, and reset every core to its right to the decremented value.
package vscale

import (
	"fmt"
	"sort"

	"seadopt/internal/arch"
)

// Valid reports whether s is a well-formed Fig. 5 scaling vector: non-empty,
// non-increasing, with every entry ≥ 1.
func Valid(s []int) bool {
	if len(s) == 0 {
		return false
	}
	for i, v := range s {
		if v < 1 {
			return false
		}
		if i > 0 && v > s[i-1] {
			return false
		}
	}
	return true
}

// NextScaling computes the successor of prev in the Fig. 5 enumeration
// order. It returns ok=false when prev is the final all-nominal vector
// (s=1 everywhere) — or when prev is malformed (empty, non-monotone, or
// with entries < 1), which the transition rule would otherwise walk into
// garbage. prev must be non-increasing with entries ≥ 1; the result is a
// fresh slice.
func NextScaling(prev []int) (next []int, ok bool) {
	if !Valid(prev) {
		return nil, false
	}
	next = append([]int(nil), prev...)
	j := -1
	for i := len(next) - 1; i >= 0; i-- {
		if next[i] > 1 {
			j = i
			break
		}
	}
	if j < 0 {
		return nil, false
	}
	next[j]--
	for k := j + 1; k < len(next); k++ {
		next[k] = next[j]
	}
	return next, true
}

// Enumerator walks the Fig. 5 sequence from the all-slowest vector to the
// all-nominal vector.
type Enumerator struct {
	cores, levels int
	cur           []int
	started       bool
	done          bool
}

// NewEnumerator returns an enumerator over scaling vectors for the given
// core count and number of DVS levels.
func NewEnumerator(cores, levels int) (*Enumerator, error) {
	if cores < 1 {
		return nil, fmt.Errorf("vscale: need at least 1 core, got %d", cores)
	}
	if levels < 1 {
		return nil, fmt.Errorf("vscale: need at least 1 level, got %d", levels)
	}
	start := make([]int, cores)
	for i := range start {
		start[i] = levels
	}
	return &Enumerator{cores: cores, levels: levels, cur: start}, nil
}

// Next returns the next scaling vector in sequence, or ok=false when the
// enumeration is exhausted. The returned slice is owned by the caller.
func (e *Enumerator) Next() (scaling []int, ok bool) {
	if e.done {
		return nil, false
	}
	if !e.started {
		e.started = true
		return append([]int(nil), e.cur...), true
	}
	next, ok := NextScaling(e.cur)
	if !ok {
		e.done = true
		return nil, false
	}
	e.cur = next
	return append([]int(nil), next...), true
}

// Reset restarts the enumeration from the all-slowest vector.
func (e *Enumerator) Reset() {
	for i := range e.cur {
		e.cur[i] = e.levels
	}
	e.started = false
	e.done = false
}

// All returns every vector of the Fig. 5 enumeration in sequence order.
func All(cores, levels int) ([][]int, error) {
	e, err := NewEnumerator(cores, levels)
	if err != nil {
		return nil, err
	}
	var out [][]int
	for {
		s, ok := e.Next()
		if !ok {
			return out, nil
		}
		out = append(out, s)
	}
}

// Count returns the number of distinct non-increasing scaling vectors:
// the multiset coefficient C(cores+levels-1, cores). For 4 cores and
// 3 levels this is 15 (Fig. 5b).
func Count(cores, levels int) int {
	// Compute C(cores+levels-1, min(cores, levels-1)) iteratively.
	n := cores + levels - 1
	k := cores
	if levels-1 < k {
		k = levels - 1
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}

// Exhaustive returns all levels^cores raw combinations (each entry in
// [1, levels]), used by tests to verify that the Fig. 5 enumeration covers
// every combination up to permutation.
func Exhaustive(cores, levels int) [][]int {
	total := 1
	for i := 0; i < cores; i++ {
		total *= levels
	}
	out := make([][]int, 0, total)
	cur := make([]int, cores)
	for i := range cur {
		cur[i] = 1
	}
	for {
		out = append(out, append([]int(nil), cur...))
		i := cores - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= levels {
				break
			}
			cur[i] = 1
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// Canonical returns the sorted-non-increasing representative of a scaling
// vector (the Fig. 5 form of an arbitrary per-core assignment).
func Canonical(scaling []int) []int {
	out := append([]int(nil), scaling...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// AllByPower returns the scaling enumeration for the platform — Fig. 5 for
// homogeneous platforms, the mixed-radix Space for heterogeneous ones —
// sorted by ascending full-utilization dynamic power (the order in which
// step 1 of Fig. 4 offers combinations to the mapper: cheapest first).
func AllByPower(p *arch.Platform) ([][]int, error) {
	sp, err := PlatformSpace(p)
	if err != nil {
		return nil, err
	}
	combos := sp.All()
	power := make([]float64, len(combos))
	for i, s := range combos {
		pw, err := p.DynamicPower(s, nil)
		if err != nil {
			return nil, err
		}
		power[i] = pw
	}
	idx := make([]int, len(combos))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return power[idx[a]] < power[idx[b]] })
	out := make([][]int, len(combos))
	for i, j := range idx {
		out[i] = combos[j]
	}
	return out, nil
}

// Unrank returns the rank-th vector of the Fig. 5 enumeration (0-based)
// without walking the sequence: the enumeration is exactly descending
// lexicographic order over non-increasing vectors, so each position is
// resolved by peeling off suffix-count blocks of the candidate values from
// the current maximum downward. This is the random access that gives every
// combination a stable index — the Sampled exploration strategy draws
// indices and unranks them, and a combination's mapper seed is derived from
// this index whatever order it is visited in. It is the uniform special
// case of Space.Unrank.
func Unrank(cores, levels, rank int) ([]int, error) {
	sp, err := UniformSpace(cores, levels)
	if err != nil {
		return nil, err
	}
	return sp.Unrank(rank)
}

// Combo is one design-space point of a Frontier stream: the per-core
// scaling vector and its stable Fig. 5 enumeration index. The index is the
// combination's identity across iteration orders — deterministic per-index
// mapper seeds and the enumeration-order reduction both key on it.
type Combo struct {
	// Index is the 0-based position in the Fig. 5 enumeration, independent
	// of the order this frontier visits combinations in.
	Index int
	// Scaling is the non-increasing per-core vector. Owned by the receiver.
	Scaling []int
}

// Frontier streams scaling combinations one at a time — the lazily-streamed
// replacement for materializing the full [][]int enumeration. Memory is
// O(cores) for the enumeration order and O(budget) for the sampled order;
// the ranked order holds a generation heap (worst case O(visited)).
type Frontier struct {
	next func() (Combo, bool)
	size int
}

// Next returns the next combination, or ok=false when the stream is done.
func (f *Frontier) Next() (Combo, bool) { return f.next() }

// Size returns the number of combinations the frontier will yield.
func (f *Frontier) Size() int { return f.size }

// NewFrontier streams the full Fig. 5 enumeration in enumeration order
// (all-slowest first), with Combo.Index equal to the stream position — the
// uniform special case of Space.Frontier.
func NewFrontier(cores, levels int) (*Frontier, error) {
	sp, err := UniformSpace(cores, levels)
	if err != nil {
		return nil, err
	}
	return sp.Frontier(), nil
}

// NewSampledFrontier streams a seed-deterministic uniform sample of `budget`
// distinct combinations in ascending enumeration-index order, unranking each
// on demand — random access into spaces too large to enumerate. A budget of
// zero or beyond the space size yields the whole enumeration. It is the
// uniform special case of Space.SampledFrontier (identical draw sequence for
// the same seed).
func NewSampledFrontier(cores, levels, budget int, seed int64) (*Frontier, error) {
	sp, err := UniformSpace(cores, levels)
	if err != nil {
		return nil, err
	}
	return sp.SampledFrontier(budget, seed)
}

// rankedNode is one frontier entry of the ranked generation heap. rank is
// the vector's stable enumeration index, computed once at generation; it
// deduplicates lattice paths and orders weight ties without re-ranking or
// string keys.
type rankedNode struct {
	scaling []int
	weight  float64
	rank    int
}

type rankedHeap []rankedNode

func (h rankedHeap) Len() int { return len(h) }
func (h rankedHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].rank < h[j].rank
}
func (h rankedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankedHeap) Push(x any)   { *h = append(*h, x.(rankedNode)) }
func (h *rankedHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// NewRankedFrontier streams the enumeration in ascending total weight,
// where a vector's weight is Σ_c levelWeight[s_c-1] (pass per-level dynamic
// power for cheapest-first order). Generation is lazy best-first search over
// the speed-up lattice from the all-slowest vector: no up-front
// materialization or sort, at the cost of a heap plus a visited set that
// grow with the number of combinations actually consumed. Ties are emitted
// in ascending enumeration-index order. levelWeight must be non-increasing
// in the level coefficient, i.e. levelWeight[0] (s=1, fastest) is the
// largest. It is the uniform special case of Space.RankedFrontier.
func NewRankedFrontier(cores int, levelWeight []float64) (*Frontier, error) {
	sp, err := UniformSpace(cores, len(levelWeight))
	if err != nil {
		return nil, err
	}
	weight := make([][]float64, cores)
	for c := range weight {
		weight[c] = levelWeight
	}
	return sp.RankedFrontier(weight)
}

// Rank is the inverse of Unrank: the 0-based index of a canonical
// (non-increasing, entries ≥ 1) scaling vector within the Fig. 5
// enumeration for a platform with the given number of DVS levels. It is
// the uniform special case of Space.Rank.
func Rank(s []int, levels int) (int, error) {
	sp, err := UniformSpace(len(s), levels)
	if err != nil {
		return 0, fmt.Errorf("vscale: %v is not a canonical scaling vector for a %d-level table: %w", s, levels, err)
	}
	return sp.Rank(s)
}
