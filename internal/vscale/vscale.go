// Package vscale enumerates per-core voltage-scaling combinations for the
// power-minimization step of the design loop (step 1 of Fig. 4).
//
// Because the MPSoC cores are identical, two scaling vectors that are
// permutations of each other describe the same design space point (the task
// mapper is free to permute cores). The paper's nextScaling algorithm
// (Fig. 5a) therefore enumerates only the non-increasing vectors
// s1 ≥ s2 ≥ ... ≥ sC, starting from the all-slowest vector: for 4 cores and
// 3 levels that is the 15-row table of Fig. 5(b) instead of 3⁴ = 81 raw
// combinations.
//
// The transition rule (as reconstructed from Fig. 5(b); the paper's
// pseudocode as typeset produces a different, repetitive sequence — see the
// package tests): find the right-most core whose coefficient exceeds 1,
// decrement it, and reset every core to its right to the decremented value.
package vscale

import (
	"fmt"
	"sort"

	"seadopt/internal/arch"
)

// NextScaling computes the successor of prev in the Fig. 5 enumeration
// order. It returns ok=false when prev is the final all-nominal vector
// (s=1 everywhere). prev must be non-increasing with entries ≥ 1; the
// result is a fresh slice.
func NextScaling(prev []int) (next []int, ok bool) {
	next = append([]int(nil), prev...)
	j := -1
	for i := len(next) - 1; i >= 0; i-- {
		if next[i] > 1 {
			j = i
			break
		}
	}
	if j < 0 {
		return nil, false
	}
	next[j]--
	for k := j + 1; k < len(next); k++ {
		next[k] = next[j]
	}
	return next, true
}

// Enumerator walks the Fig. 5 sequence from the all-slowest vector to the
// all-nominal vector.
type Enumerator struct {
	cores, levels int
	cur           []int
	started       bool
	done          bool
}

// NewEnumerator returns an enumerator over scaling vectors for the given
// core count and number of DVS levels.
func NewEnumerator(cores, levels int) (*Enumerator, error) {
	if cores < 1 {
		return nil, fmt.Errorf("vscale: need at least 1 core, got %d", cores)
	}
	if levels < 1 {
		return nil, fmt.Errorf("vscale: need at least 1 level, got %d", levels)
	}
	start := make([]int, cores)
	for i := range start {
		start[i] = levels
	}
	return &Enumerator{cores: cores, levels: levels, cur: start}, nil
}

// Next returns the next scaling vector in sequence, or ok=false when the
// enumeration is exhausted. The returned slice is owned by the caller.
func (e *Enumerator) Next() (scaling []int, ok bool) {
	if e.done {
		return nil, false
	}
	if !e.started {
		e.started = true
		return append([]int(nil), e.cur...), true
	}
	next, ok := NextScaling(e.cur)
	if !ok {
		e.done = true
		return nil, false
	}
	e.cur = next
	return append([]int(nil), next...), true
}

// Reset restarts the enumeration from the all-slowest vector.
func (e *Enumerator) Reset() {
	for i := range e.cur {
		e.cur[i] = e.levels
	}
	e.started = false
	e.done = false
}

// All returns every vector of the Fig. 5 enumeration in sequence order.
func All(cores, levels int) ([][]int, error) {
	e, err := NewEnumerator(cores, levels)
	if err != nil {
		return nil, err
	}
	var out [][]int
	for {
		s, ok := e.Next()
		if !ok {
			return out, nil
		}
		out = append(out, s)
	}
}

// Count returns the number of distinct non-increasing scaling vectors:
// the multiset coefficient C(cores+levels-1, cores). For 4 cores and
// 3 levels this is 15 (Fig. 5b).
func Count(cores, levels int) int {
	// Compute C(cores+levels-1, min(cores, levels-1)) iteratively.
	n := cores + levels - 1
	k := cores
	if levels-1 < k {
		k = levels - 1
	}
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}

// Exhaustive returns all levels^cores raw combinations (each entry in
// [1, levels]), used by tests to verify that the Fig. 5 enumeration covers
// every combination up to permutation.
func Exhaustive(cores, levels int) [][]int {
	total := 1
	for i := 0; i < cores; i++ {
		total *= levels
	}
	out := make([][]int, 0, total)
	cur := make([]int, cores)
	for i := range cur {
		cur[i] = 1
	}
	for {
		out = append(out, append([]int(nil), cur...))
		i := cores - 1
		for i >= 0 {
			cur[i]++
			if cur[i] <= levels {
				break
			}
			cur[i] = 1
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// Canonical returns the sorted-non-increasing representative of a scaling
// vector (the Fig. 5 form of an arbitrary per-core assignment).
func Canonical(scaling []int) []int {
	out := append([]int(nil), scaling...)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// AllByPower returns the Fig. 5 enumeration for the platform, sorted by
// ascending full-utilization dynamic power (the order in which step 1 of
// Fig. 4 offers combinations to the mapper: cheapest first).
func AllByPower(p *arch.Platform) ([][]int, error) {
	combos, err := All(p.Cores(), p.NumLevels())
	if err != nil {
		return nil, err
	}
	power := make([]float64, len(combos))
	for i, s := range combos {
		pw, err := p.DynamicPower(s, nil)
		if err != nil {
			return nil, err
		}
		power[i] = pw
	}
	idx := make([]int, len(combos))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return power[idx[a]] < power[idx[b]] })
	out := make([][]int, len(combos))
	for i, j := range idx {
		out[i] = combos[j]
	}
	return out, nil
}
