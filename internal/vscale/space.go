package vscale

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"seadopt/internal/arch"
)

// Space is the mixed-radix generalization of the Fig. 5 combination space to
// heterogeneous platforms: core i draws its scaling coefficient from its own
// table of caps[i] levels, and cores that share a physical DVS table (the
// same symmetry class) are interchangeable for the task mapper, so — exactly
// like the paper's identical-core argument — only one representative of each
// within-class permutation is enumerated: the coefficients of same-class
// cores are constrained non-increasing in core order.
//
// The enumeration order is descending lexicographic over the valid vectors,
// starting from the all-slowest vector (every core at its own last level).
// For a homogeneous platform (one class, uniform caps) this is bit-identical
// to the legacy Fig. 5 enumeration of All/NextScaling/Unrank/Rank — the
// package tests prove it — so every stable combination index, mapper seed
// and cache key is preserved.
type Space struct {
	caps  []int // per-core level count
	class []int // per-core symmetry class id (dense, first-occurrence order)

	classPos [][]int // positions of each class's cores, ascending
	rem      [][]int // rem[i][k]: positions of class k at index ≥ i
	count    int     // total vectors; overflow rejected at construction
}

// NewSpace builds a combination space from per-core level counts and
// symmetry classes. Cores of the same class must have equal caps (they share
// a table). class may be nil, meaning no two cores are interchangeable
// (every core its own class) — correct, if pessimal, for any platform.
func NewSpace(caps, class []int) (*Space, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("vscale: need at least 1 core")
	}
	if class == nil {
		class = make([]int, len(caps))
		for i := range class {
			class[i] = i
		}
	}
	if len(class) != len(caps) {
		return nil, fmt.Errorf("vscale: %d caps but %d classes", len(caps), len(class))
	}
	sp := &Space{
		caps:  append([]int(nil), caps...),
		class: append([]int(nil), class...),
	}
	next := 0
	for i, c := range sp.caps {
		if c < 1 {
			return nil, fmt.Errorf("vscale: core %d needs at least 1 level, got %d", i, c)
		}
		k := sp.class[i]
		if k < 0 || k > next {
			return nil, fmt.Errorf("vscale: class ids must be dense in first-occurrence order (core %d has class %d, next unseen is %d)", i, k, next)
		}
		if k == next {
			sp.classPos = append(sp.classPos, nil)
			next++
		}
		if peers := sp.classPos[k]; len(peers) > 0 && sp.caps[peers[0]] != c {
			return nil, fmt.Errorf("vscale: class %d mixes level counts %d and %d", k, sp.caps[peers[0]], c)
		}
		sp.classPos[k] = append(sp.classPos[k], i)
	}
	// Per-position per-class remaining counts, so rank/unrank suffix counts
	// never rescan the core list.
	sp.rem = make([][]int, len(sp.caps)+1)
	cur := make([]int, len(sp.classPos))
	for i := len(sp.caps); i >= 0; i-- {
		sp.rem[i] = append([]int(nil), cur...)
		if i > 0 {
			cur[sp.class[i-1]]++
		}
	}
	// Total size with overflow detection: a space whose count exceeds int is
	// unusable — Unrank/SampledFrontier would silently draw from a wrapped
	// range — so reject it here with an actionable error.
	total := 1
	for _, pos := range sp.classPos {
		m, ok := multisetChecked(len(pos), sp.caps[pos[0]])
		if ok {
			total, ok = mulChecked(total, m)
		}
		if !ok {
			return nil, fmt.Errorf("vscale: combination space of caps %v / classes %v overflows int; this platform is too large to enumerate or sample", caps, class)
		}
	}
	sp.count = total
	return sp, nil
}

// mulChecked returns a*b and ok=false on int overflow (a, b ≥ 1).
func mulChecked(a, b int) (int, bool) {
	p := a * b
	if a != 0 && p/a != b {
		return 0, false
	}
	return p, true
}

// multisetChecked is multiset with overflow detection.
func multisetChecked(n, k int) (int, bool) {
	if n < 0 || k < 1 {
		return boolToInt(n == 0), true
	}
	// C(n+k-1, min(n, k-1)) iteratively; the running product is divided
	// back down every step, so checking each multiplication suffices.
	nn := n + k - 1
	kk := n
	if k-1 < kk {
		kk = k - 1
	}
	res := 1
	for i := 1; i <= kk; i++ {
		m, ok := mulChecked(res, nn-kk+i)
		if !ok {
			return 0, false
		}
		res = m / i
	}
	return res, true
}

// UniformSpace is the homogeneous space: `cores` identical cores sharing
// one levels-deep table — the paper's Fig. 5 space.
func UniformSpace(cores, levels int) (*Space, error) {
	if cores < 1 || levels < 1 {
		return nil, fmt.Errorf("vscale: need cores ≥ 1 and levels ≥ 1, got %d, %d", cores, levels)
	}
	caps := make([]int, cores)
	class := make([]int, cores)
	for i := range caps {
		caps[i] = levels
	}
	return NewSpace(caps, class)
}

// PlatformSpace derives the combination space of a platform from its
// per-core level counts and symmetry classes. It errors only when the
// platform's combination count overflows int — a space nothing could
// enumerate or sample anyway.
func PlatformSpace(p *arch.Platform) (*Space, error) {
	return NewSpace(p.LevelCounts(), p.SymmetryClasses())
}

// Cores returns the number of cores of the space.
func (sp *Space) Cores() int { return len(sp.caps) }

// Caps returns a copy of the per-core level counts.
func (sp *Space) Caps() []int { return append([]int(nil), sp.caps...) }

// Start returns the first vector of the enumeration: every core at its own
// slowest level.
func (sp *Space) Start() []int { return sp.Caps() }

// Valid reports whether s is a canonical vector of this space: per-core
// coefficients within [1, caps[i]], non-increasing along each symmetry
// class's core order.
func (sp *Space) Valid(s []int) bool {
	if len(s) != len(sp.caps) {
		return false
	}
	last := make([]int, len(sp.classPos))
	for i := range last {
		last[i] = -1
	}
	for i, v := range s {
		if v < 1 || v > sp.caps[i] {
			return false
		}
		k := sp.class[i]
		if p := last[k]; p >= 0 && v > s[p] {
			return false
		}
		last[k] = i
	}
	return true
}

// Next computes the successor of prev in the descending-lexicographic
// enumeration. ok is false at the end of the sequence (all-fastest vector)
// and for vectors that are not Valid. The result is a fresh slice.
//
// The transition rule generalizes Fig. 5(a): find the right-most core whose
// coefficient exceeds 1, decrement it, and reset every core to its right to
// the largest coefficient its table and its class's non-increasing
// constraint admit. On a uniform space this is exactly the legacy
// NextScaling rule.
func (sp *Space) Next(prev []int) (next []int, ok bool) {
	if !sp.Valid(prev) {
		return nil, false
	}
	next = append([]int(nil), prev...)
	if !sp.advance(next, make([]int, len(sp.classPos))) {
		return nil, false
	}
	return next, true
}

// advance mutates cur to its successor in place, using last (one slot per
// class) as scratch; it reports false at the end of the enumeration, leaving
// cur untouched. cur must be a canonical vector. This is the allocation-free
// core of Next, Iter and Frontier.
//
// The transition rule generalizes Fig. 5(a): find the right-most core whose
// coefficient exceeds 1, decrement it, and reset every core to its right to
// the largest coefficient its table and its class's non-increasing
// constraint admit.
func (sp *Space) advance(cur []int, last []int) bool {
	j := -1
	for i := len(cur) - 1; i >= 0; i-- {
		if cur[i] > 1 {
			j = i
			break
		}
	}
	if j < 0 {
		return false
	}
	cur[j]--
	// Maximal valid completion of the suffix: each core takes its table cap,
	// clamped by the nearest preceding same-class core.
	for i := range last {
		last[i] = -1
	}
	for i := 0; i <= j; i++ {
		last[sp.class[i]] = i
	}
	for i := j + 1; i < len(cur); i++ {
		v := sp.caps[i]
		k := sp.class[i]
		if p := last[k]; p >= 0 && cur[p] < v {
			v = cur[p]
		}
		cur[i] = v
		last[k] = i
	}
	return true
}

// Iter streams the enumeration with a single reusable vector — the
// allocation-free form of Frontier for hot loops. The slice returned by
// Next is BORROWED: it is valid only until the following Next call; copy it
// to retain. Index is the stable enumeration index (equal to the stream
// position for this full in-order walk).
type Iter struct {
	sp        *Space
	cur, last []int
	idx       int
	started   bool
	done      bool
}

// Iter returns an iterator positioned before the first vector.
func (sp *Space) Iter() *Iter {
	return &Iter{sp: sp, cur: sp.Start(), last: make([]int, len(sp.classPos))}
}

// IterFrom returns an iterator positioned before the rank-th vector of the
// enumeration (0-based): the first Next call yields Unrank(rank) with index
// rank, and the stream then continues through the tail of the enumeration.
// This is the contiguous-shard entry point — a worker covering ranks
// [lo, hi) walks IterFrom(lo) and stops after hi-lo vectors, and the
// indices it sees are exactly the stable enumeration indices a full Iter
// walk would assign.
func (sp *Space) IterFrom(rank int) (*Iter, error) {
	cur, err := sp.Unrank(rank)
	if err != nil {
		return nil, err
	}
	return &Iter{sp: sp, cur: cur, last: make([]int, len(sp.classPos)), idx: rank}, nil
}

// Next advances and returns the borrowed current vector and its enumeration
// index; ok is false when the stream is exhausted.
func (it *Iter) Next() (scaling []int, idx int, ok bool) {
	if it.done {
		return nil, 0, false
	}
	if !it.started {
		it.started = true
		return it.cur, it.idx, true
	}
	if !it.sp.advance(it.cur, it.last) {
		it.done = true
		return nil, 0, false
	}
	it.idx++
	return it.cur, it.idx, true
}

// multiset returns the number of non-increasing sequences of length n over
// values [1, k]: the multiset coefficient C(n+k-1, n). multiset(0, k) = 1.
// Overflow is impossible for arguments drawn from a constructed Space (the
// constructor rejects spaces whose total count overflows, and every suffix
// factor divides the total).
func multiset(n, k int) int {
	m, _ := multisetChecked(n, k)
	return m
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Count returns the number of vectors in the enumeration: the product over
// symmetry classes of the multiset coefficient of (class size, class
// levels). Computed once at construction, where overflow is rejected.
func (sp *Space) Count() int { return sp.count }

// suffixCount returns the number of valid completions of positions i.. given
// the per-class caps h (h[k] = the value of class k's nearest core before i,
// or the class's table cap if none). The per-position remaining counts are
// precomputed, so a call is O(classes) with no allocation.
func (sp *Space) suffixCount(i int, h []int) int {
	total := 1
	for k, r := range sp.rem[i] {
		total *= multiset(r, h[k])
	}
	return total
}

// Unrank returns the rank-th vector of the enumeration (0-based) without
// walking the sequence. Like the legacy homogeneous Unrank, the enumeration
// is descending lexicographic, so each position is resolved by peeling off
// suffix-count blocks of the candidate values from the current class cap
// downward. This random access is what gives every combination a stable
// index whatever order a strategy visits it in.
func (sp *Space) Unrank(rank int) ([]int, error) {
	if total := sp.Count(); rank < 0 || rank >= total {
		return nil, fmt.Errorf("vscale: rank %d outside [0,%d)", rank, total)
	}
	out := make([]int, len(sp.caps))
	h := make([]int, len(sp.classPos))
	for k, pos := range sp.classPos {
		h[k] = sp.caps[pos[0]]
	}
	for i := range out {
		k := sp.class[i]
		hi := h[k]
		for v := hi; v >= 1; v-- {
			h[k] = v
			block := sp.suffixCount(i+1, h)
			if rank < block {
				out[i] = v
				break
			}
			rank -= block
		}
	}
	return out, nil
}

// Rank is the inverse of Unrank: the 0-based enumeration index of a
// canonical vector.
func (sp *Space) Rank(s []int) (int, error) {
	if !sp.Valid(s) {
		return 0, fmt.Errorf("vscale: %v is not a canonical vector of this space", s)
	}
	h := make([]int, len(sp.classPos))
	for k, pos := range sp.classPos {
		h[k] = sp.caps[pos[0]]
	}
	rank := 0
	for i, v := range s {
		k := sp.class[i]
		for u := h[k]; u > v; u-- {
			h[k] = u
			rank += sp.suffixCount(i+1, h)
		}
		h[k] = v
	}
	return rank, nil
}

// All returns the whole enumeration in order; for tests and small spaces.
func (sp *Space) All() [][]int {
	out := make([][]int, 0, sp.Count())
	cur := sp.Start()
	for {
		out = append(out, cur)
		next, ok := sp.Next(cur)
		if !ok {
			return out
		}
		cur = next
	}
}

// Canonical returns the in-space representative of an arbitrary per-core
// assignment: within each symmetry class the coefficients are sorted
// non-increasing (cores of a class are interchangeable); other cores keep
// their values.
func (sp *Space) Canonical(s []int) []int {
	out := append([]int(nil), s...)
	for _, pos := range sp.classPos {
		vals := make([]int, len(pos))
		for i, p := range pos {
			vals[i] = out[p]
		}
		sort.Sort(sort.Reverse(sort.IntSlice(vals)))
		for i, p := range pos {
			out[p] = vals[i]
		}
	}
	return out
}

// Frontier streams the whole enumeration in order, with Combo.Index equal to
// the stream position. Each Combo owns its Scaling; use Iter to stream
// without the per-combination copy.
func (sp *Space) Frontier() *Frontier {
	it := sp.Iter()
	return &Frontier{
		size: sp.Count(),
		next: func() (Combo, bool) {
			s, i, ok := it.Next()
			if !ok {
				return Combo{}, false
			}
			return Combo{Index: i, Scaling: append([]int(nil), s...)}, true
		},
	}
}

// SampledFrontier streams a seed-deterministic uniform sample of budget
// distinct combinations in ascending enumeration-index order, unranking each
// on demand. A budget of zero or beyond the space size yields the whole
// enumeration. The draw sequence matches the legacy NewSampledFrontier for
// uniform spaces, so sampled results are stable across the generalization.
func (sp *Space) SampledFrontier(budget int, seed int64) (*Frontier, error) {
	total := sp.Count()
	if budget <= 0 || budget >= total {
		return sp.Frontier(), nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5A3D1EF0))
	picked := make(map[int]struct{}, budget)
	idxs := make([]int, 0, budget)
	for len(idxs) < budget {
		r := rng.Intn(total)
		if _, dup := picked[r]; dup {
			continue
		}
		picked[r] = struct{}{}
		idxs = append(idxs, r)
	}
	sort.Ints(idxs)
	pos := 0
	return &Frontier{
		size: budget,
		next: func() (Combo, bool) {
			if pos >= len(idxs) {
				return Combo{}, false
			}
			s, err := sp.Unrank(idxs[pos])
			if err != nil {
				return Combo{}, false // unreachable: idxs ∈ [0,total)
			}
			c := Combo{Index: idxs[pos], Scaling: s}
			pos++
			return c, true
		},
	}, nil
}

// RankedFrontier streams the enumeration in ascending total weight, where a
// vector's weight is Σ_c weight[c][s_c-1] (pass per-core per-level dynamic
// power for cheapest-first order). Each core's weight column must be
// non-increasing in s (fastest level heaviest), and same-class cores must
// share a column so the within-class canonical form stays weight-neutral.
// Generation is lazy best-first search over the per-core speed-up lattice
// from the all-slowest vector; ties are emitted in ascending
// enumeration-index order.
//
// The total is reduced class-major — for each symmetry class in
// first-occurrence order, count·weight per level in ascending level order —
// the exact accumulation order of arch.Platform.DynamicPower and the
// metrics bound histogram. Scaling such a sum by a positive constant is
// monotone even after float rounding, so "ascending weight" here is
// bit-consistent with "ascending nominal power" everywhere else in the
// system, 64 cores or 4.
func (sp *Space) RankedFrontier(weight [][]float64) (*Frontier, error) {
	if len(weight) != len(sp.caps) {
		return nil, fmt.Errorf("vscale: %d weight columns for %d cores", len(weight), len(sp.caps))
	}
	for c, col := range weight {
		if len(col) != sp.caps[c] {
			return nil, fmt.Errorf("vscale: core %d has %d weights for %d levels", c, len(col), sp.caps[c])
		}
		for i := 1; i < len(col); i++ {
			if col[i-1] < col[i] {
				return nil, fmt.Errorf("vscale: core %d weights must be non-increasing in s (fastest level heaviest)", c)
			}
		}
	}
	for _, pos := range sp.classPos {
		ref := weight[pos[0]]
		for _, p := range pos[1:] {
			for i := range ref {
				if weight[p][i] != ref[i] {
					return nil, fmt.Errorf("vscale: cores %d and %d share a symmetry class but have different weights", pos[0], p)
				}
			}
		}
	}
	weightOf := func(s []int) float64 {
		var w float64
		for _, pos := range sp.classPos {
			col := weight[pos[0]]
			for lvl := 1; lvl <= sp.caps[pos[0]]; lvl++ {
				n := 0
				for _, c := range pos {
					if s[c] == lvl {
						n++
					}
				}
				if n > 0 {
					w += float64(n) * col[lvl-1]
				}
			}
		}
		return w
	}
	// nextInClass[i] is the nearest same-class core after i, or -1.
	nextInClass := make([]int, len(sp.caps))
	for i := range nextInClass {
		nextInClass[i] = -1
	}
	for _, pos := range sp.classPos {
		for j := 0; j+1 < len(pos); j++ {
			nextInClass[pos[j]] = pos[j+1]
		}
	}
	start := sp.Start()
	startRank, err := sp.Rank(start)
	if err != nil {
		return nil, err // unreachable: Start is canonical
	}
	h := &rankedHeap{{scaling: start, weight: weightOf(start), rank: startRank}}
	// Visited vectors are keyed by enumeration index — computed once per
	// generated node — so deduplication and tie ordering never re-rank or
	// build string keys.
	seen := map[int]struct{}{startRank: {}}
	return &Frontier{
		size: sp.Count(),
		next: func() (Combo, bool) {
			if h.Len() == 0 {
				return Combo{}, false
			}
			// Pop every node of the minimal weight and order the tie class
			// by enumeration index so the stream is fully deterministic.
			batch := []rankedNode{heap.Pop(h).(rankedNode)}
			for h.Len() > 0 && (*h)[0].weight <= batch[0].weight {
				batch = append(batch, heap.Pop(h).(rankedNode))
			}
			sort.Slice(batch, func(a, b int) bool { return batch[a].rank < batch[b].rank })
			cur := batch[0]
			for _, n := range batch[1:] {
				heap.Push(h, n)
			}
			// Successors: speed one core up a level, keeping the vector
			// canonical (the next same-class core must stay ≤), deduplicated
			// via the visited set.
			for i := 0; i < len(sp.caps); i++ {
				if cur.scaling[i] <= 1 {
					continue
				}
				if nx := nextInClass[i]; nx >= 0 && cur.scaling[i]-1 < cur.scaling[nx] {
					continue // would break the class's non-increasing form
				}
				succ := append([]int(nil), cur.scaling...)
				succ[i]--
				rank, err := sp.Rank(succ)
				if err != nil {
					return Combo{}, false // unreachable: successors stay canonical
				}
				if _, dup := seen[rank]; dup {
					continue
				}
				seen[rank] = struct{}{}
				// Recompute the weight from scratch so equal vectors reached
				// along different speed-up paths carry bit-identical weights
				// and the tie ordering by enumeration index stays exact.
				heap.Push(h, rankedNode{scaling: succ, weight: weightOf(succ), rank: rank})
			}
			return Combo{Index: cur.rank, Scaling: cur.scaling}, true
		},
	}, nil
}
