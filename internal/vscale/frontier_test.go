package vscale

import (
	"fmt"
	"testing"

	"seadopt/internal/arch"
)

// TestNextScalingRejectsMalformedInput: non-monotone vectors, entries < 1
// and empty input must return ok=false instead of walking garbage.
func TestNextScalingRejectsMalformedInput(t *testing.T) {
	for _, bad := range [][]int{
		nil,
		{},
		{0},
		{-1, -1},
		{1, 2},       // increasing
		{3, 1, 2},    // non-monotone tail
		{2, 0, 1},    // entry below 1 hidden mid-vector
		{3, 3, 3, 4}, // increasing at the end
	} {
		if next, ok := NextScaling(bad); ok {
			t.Errorf("NextScaling(%v) accepted malformed input, returned %v", bad, next)
		}
	}
	// Well-formed inputs still advance.
	if _, ok := NextScaling([]int{3, 2, 2}); !ok {
		t.Error("NextScaling rejected a canonical vector")
	}
}

func TestValid(t *testing.T) {
	for _, s := range [][]int{{1}, {3, 3, 1}, {5, 4, 3, 2, 1}} {
		if !Valid(s) {
			t.Errorf("Valid(%v) = false", s)
		}
	}
	for _, s := range [][]int{nil, {}, {0}, {1, 2}, {2, 3, 1}} {
		if Valid(s) {
			t.Errorf("Valid(%v) = true", s)
		}
	}
}

// TestUnrankMatchesEnumeration: random access must agree with the walked
// sequence at every index, across a spread of space shapes.
func TestUnrankMatchesEnumeration(t *testing.T) {
	for _, tc := range []struct{ cores, levels int }{
		{1, 1}, {1, 4}, {4, 1}, {4, 3}, {3, 4}, {5, 3}, {2, 6}, {6, 2},
	} {
		all, err := All(tc.cores, tc.levels)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != Count(tc.cores, tc.levels) {
			t.Fatalf("%d×%d: All yields %d, Count says %d", tc.cores, tc.levels, len(all), Count(tc.cores, tc.levels))
		}
		for i, want := range all {
			got, err := Unrank(tc.cores, tc.levels, i)
			if err != nil {
				t.Fatalf("%d×%d Unrank(%d): %v", tc.cores, tc.levels, i, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%d×%d Unrank(%d) = %v, enumeration has %v", tc.cores, tc.levels, i, got, want)
			}
			r, err := Rank(want, tc.levels)
			if err != nil {
				t.Fatalf("%d×%d Rank(%v): %v", tc.cores, tc.levels, want, err)
			}
			if r != i {
				t.Fatalf("%d×%d Rank(%v) = %d, want %d", tc.cores, tc.levels, want, r, i)
			}
		}
	}
	if _, err := Unrank(4, 3, 15); err == nil {
		t.Error("Unrank accepted an out-of-range rank")
	}
	if _, err := Unrank(4, 3, -1); err == nil {
		t.Error("Unrank accepted a negative rank")
	}
	if _, err := Rank([]int{4, 1}, 3); err == nil {
		t.Error("Rank accepted a vector above the level table")
	}
}

// TestFrontierStreamsEnumeration: the streaming frontier yields exactly the
// Fig. 5 sequence with identity indices, without materializing it.
func TestFrontierStreamsEnumeration(t *testing.T) {
	f, err := NewFrontier(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := All(4, 3)
	if f.Size() != len(all) {
		t.Fatalf("Size() = %d, want %d", f.Size(), len(all))
	}
	for i := 0; ; i++ {
		c, ok := f.Next()
		if !ok {
			if i != len(all) {
				t.Fatalf("frontier ended after %d combos, want %d", i, len(all))
			}
			break
		}
		if c.Index != i {
			t.Fatalf("combo %d carries index %d", i, c.Index)
		}
		if fmt.Sprint(c.Scaling) != fmt.Sprint(all[i]) {
			t.Fatalf("combo %d = %v, want %v", i, c.Scaling, all[i])
		}
	}
	if _, ok := f.Next(); ok {
		t.Error("exhausted frontier yielded another combo")
	}
}

// TestSampledFrontier: distinct in-range indices in ascending order, exact
// budget, deterministic per seed, degrading to the full enumeration when
// the budget covers the space.
func TestSampledFrontier(t *testing.T) {
	draw := func(seed int64, budget int) []Combo {
		f, err := NewSampledFrontier(6, 4, budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []Combo
		for {
			c, ok := f.Next()
			if !ok {
				return out
			}
			out = append(out, c)
		}
	}
	total := Count(6, 4) // 84
	a := draw(7, 20)
	if len(a) != 20 {
		t.Fatalf("sampled %d combos, want 20", len(a))
	}
	seen := map[int]bool{}
	prev := -1
	for _, c := range a {
		if c.Index <= prev {
			t.Fatalf("sample indices not strictly ascending: %d after %d", c.Index, prev)
		}
		prev = c.Index
		if c.Index < 0 || c.Index >= total {
			t.Fatalf("sample index %d outside [0,%d)", c.Index, total)
		}
		if seen[c.Index] {
			t.Fatalf("duplicate sample index %d", c.Index)
		}
		seen[c.Index] = true
		want, _ := Unrank(6, 4, c.Index)
		if fmt.Sprint(c.Scaling) != fmt.Sprint(want) {
			t.Fatalf("sample combo %d scaling %v, want %v", c.Index, c.Scaling, want)
		}
	}
	b := draw(7, 20)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same seed drew different samples")
	}
	c := draw(8, 20)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds drew identical samples (astronomically unlikely)")
	}
	full := draw(7, 1000) // budget beyond the space: whole enumeration
	if len(full) != total {
		t.Fatalf("oversized budget yielded %d combos, want %d", len(full), total)
	}
}

// TestRankedFrontierMatchesAllByPower: lazy best-first generation must
// reproduce the materialize-and-sort reference order.
func TestRankedFrontierMatchesAllByPower(t *testing.T) {
	for _, tc := range []struct{ cores, levels int }{{4, 3}, {3, 4}, {5, 2}, {2, 2}} {
		table, err := arch.ARM7LevelsFor(min(tc.levels, 4))
		if err != nil {
			t.Fatal(err)
		}
		table = table[:tc.levels]
		p, err := arch.NewPlatform(tc.cores, table)
		if err != nil {
			t.Fatal(err)
		}
		want, err := AllByPower(p)
		if err != nil {
			t.Fatal(err)
		}
		weights := make([]float64, tc.levels)
		for i, l := range p.Levels(0) {
			weights[i] = l.FreqHz() * l.Vdd * l.Vdd
		}
		f, err := NewRankedFrontier(tc.cores, weights)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			c, ok := f.Next()
			if !ok {
				t.Fatalf("%d×%d: ranked frontier ended at %d of %d", tc.cores, tc.levels, i, len(want))
			}
			if fmt.Sprint(c.Scaling) != fmt.Sprint(want[i]) {
				t.Fatalf("%d×%d ranked[%d] = %v, want %v", tc.cores, tc.levels, i, c.Scaling, want[i])
			}
			if r, _ := Rank(c.Scaling, tc.levels); r != c.Index {
				t.Fatalf("%d×%d ranked[%d] carries index %d, Rank says %d", tc.cores, tc.levels, i, c.Index, r)
			}
		}
		if _, ok := f.Next(); ok {
			t.Errorf("%d×%d: ranked frontier over-produced", tc.cores, tc.levels)
		}
	}
}
