package vscale

// 64-core-scale guards for the enumeration machinery the flagship benchmark
// rests on: rank/unrank round-trips over the full 9405-combination space,
// the Count overflow guard at genuinely astronomical 64-core shapes, and
// the ranked frontier's ascending-nominal-power order property on a
// heterogeneous space.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"seadopt/internal/arch"
)

// space64 is the flagship shape: 56 two-level cores in one symmetry class
// plus 8 four-level cores in another — C(57,1)·C(11,3) = 57·165 = 9405.
func space64(t *testing.T) *Space {
	t.Helper()
	caps := make([]int, 64)
	class := make([]int, 64)
	for c := 0; c < 64; c++ {
		caps[c], class[c] = 2, 0
		if c >= 56 {
			caps[c], class[c] = 4, 1
		}
	}
	sp, err := NewSpace(caps, class)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func plat64(t *testing.T) *arch.Platform {
	t.Helper()
	types := []arch.ProcType{
		{Name: "eff", Levels: arch.ARM7Levels2()},
		{Name: "perf", Levels: arch.ARM7Levels4()},
	}
	coreTypes := make([]int, 64)
	for i := 56; i < 64; i++ {
		coreTypes[i] = 1
	}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSpace64RankUnrankRoundTrip: over the whole flagship space, Unrank is
// the inverse of Rank, both agree with the enumeration order, and the
// borrowed iterator visits exactly the same sequence.
func TestSpace64RankUnrankRoundTrip(t *testing.T) {
	sp := space64(t)
	if got := sp.Count(); got != 9405 {
		t.Fatalf("Count = %d, want 9405", got)
	}
	it := sp.Iter()
	for i := 0; i < sp.Count(); i++ {
		s, idx, ok := it.Next()
		if !ok || idx != i {
			t.Fatalf("iterator ended early or misindexed at %d (idx %d, ok %v)", i, idx, ok)
		}
		r, err := sp.Rank(s)
		if err != nil || r != i {
			t.Fatalf("Rank(%v) = %d, %v; want %d", s, r, err, i)
		}
		u, err := sp.Unrank(i)
		if err != nil || fmt.Sprint(u) != fmt.Sprint(s) {
			t.Fatalf("Unrank(%d) = %v, %v; want %v", i, u, err, s)
		}
	}
	if _, _, ok := it.Next(); ok {
		t.Error("iterator over-produced")
	}
}

// TestSpace64CountOverflowGuard: 64-core shapes whose combination count
// exceeds int must be rejected at construction, while the flagship shape
// (9405) sails through.
func TestSpace64CountOverflowGuard(t *testing.T) {
	space64(t) // the real shape constructs fine

	// 64 singleton classes × 4 levels: 4^64 ≈ 3.4e38 — far beyond MaxInt64.
	caps := make([]int, 64)
	class := make([]int, 64)
	for c := range caps {
		caps[c], class[c] = 4, c
	}
	if _, err := NewSpace(caps, class); err == nil {
		t.Fatal("4^64 space accepted; Count would overflow int")
	} else if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow rejection has unhelpful text: %v", err)
	}

	// 16 classes of 4 cores × 4 levels: C(7,3)^16 = 35^16 ≈ 5e24 > MaxInt64.
	caps = caps[:0]
	class = class[:0]
	for k := 0; k < 16; k++ {
		for c := 0; c < 4; c++ {
			caps = append(caps, 4)
			class = append(class, k)
		}
	}
	if _, err := NewSpace(caps, class); err == nil {
		t.Fatal("35^16 space accepted; Count would overflow int")
	}
}

// TestSpace64RankedFrontierAscendingNominal: on the heterogeneous flagship
// space, the ranked frontier must emit every combination exactly once, in
// ascending class-major-reduced weight with ascending enumeration index as
// the tiebreak — and, because the platform's nominal power is that weight
// scaled by a positive constant (a rounding-monotone map), the stream's
// DynamicPower must never decrease, bit-exactly.
func TestSpace64RankedFrontierAscendingNominal(t *testing.T) {
	p := plat64(t)
	sp, err := PlatformSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	weight := make([][]float64, p.Cores())
	for c := range weight {
		levels := p.Levels(c)
		weight[c] = make([]float64, len(levels))
		for i, l := range levels {
			weight[c][i] = l.FreqHz() * l.Vdd * l.Vdd
		}
	}
	// groupedWeight replicates the documented reduction order: per symmetry
	// class in first-occurrence order, count·weight per level ascending.
	groupedWeight := func(s []int) float64 {
		var w float64
		for _, pos := range sp.classPos {
			col := weight[pos[0]]
			for lvl := 1; lvl <= sp.caps[pos[0]]; lvl++ {
				n := 0
				for _, c := range pos {
					if s[c] == lvl {
						n++
					}
				}
				if n > 0 {
					w += float64(n) * col[lvl-1]
				}
			}
		}
		return w
	}

	// Independent reference: materialize the space and sort by
	// (grouped weight, index).
	type ref struct {
		idx int
		w   float64
	}
	refs := make([]ref, 0, sp.Count())
	it := sp.Iter()
	for {
		s, idx, ok := it.Next()
		if !ok {
			break
		}
		refs = append(refs, ref{idx: idx, w: groupedWeight(s)})
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].w != refs[j].w {
			return refs[i].w < refs[j].w
		}
		return refs[i].idx < refs[j].idx
	})

	f, err := sp.RankedFrontier(weight)
	if err != nil {
		t.Fatal(err)
	}
	prevPow := -1.0
	for i, want := range refs {
		c, ok := f.Next()
		if !ok {
			t.Fatalf("ranked frontier ended at %d of %d", i, len(refs))
		}
		if c.Index != want.idx {
			t.Fatalf("ranked[%d] = index %d, want %d", i, c.Index, want.idx)
		}
		pow, err := p.DynamicPower(c.Scaling, nil)
		if err != nil {
			t.Fatal(err)
		}
		if pow < prevPow {
			t.Fatalf("ranked[%d]: nominal power decreased (%x after %x)", i, pow, prevPow)
		}
		prevPow = pow
	}
	if _, ok := f.Next(); ok {
		t.Error("ranked frontier over-produced")
	}
}
