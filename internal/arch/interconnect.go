package arch

import (
	"fmt"
	"math"
)

// Topology names the shape of the on-chip interconnect.
type Topology string

const (
	// TopologyBus is a single shared link every cross-core transfer
	// serializes on — the worst-case contention shape.
	TopologyBus Topology = "bus"
	// TopologyMesh is a 2D mesh NoC with XY dimension-order routing:
	// cores sit on a MeshWidth-wide grid and a transfer crosses
	// |Δx| + |Δy| directed links.
	TopologyMesh Topology = "mesh"
)

// DefaultBitsPerCycle converts a task-graph edge's communication cycle
// count into message bits when the interconnect spec does not say
// otherwise: one 32-bit word moves per communication cycle, the natural
// width of the ARM7 cores of §II-A.
const DefaultBitsPerCycle = 32.0

// Interconnect is the communication fabric of a platform: a topology of
// shared links, each with a finite bandwidth and a per-hop latency.
//
// The ideal fabric — today's dedicated contention-free point-to-point
// links, where a cross-core edge costs its cycle count at the slower
// endpoint's clock — is represented by the *absence* of an Interconnect
// (Platform.Interconnect() == nil), so existing platforms and problem
// keys are untouched.
//
// With an Interconnect present, a transfer of an edge with C communication
// cycles carries C·BitsPerCycle bits and, uncontended, takes
//
//	hops·HopLatencySec + bits/BandwidthBps
//
// seconds (cut-through: the head word pays one HopLatencySec per link,
// the body streams behind it at the link bandwidth). Contending transfers
// on a shared link serialize: each link remembers when it drains and a
// later transfer waits for it, so concurrency is charged, deterministically
// in the order transfers are issued.
type Interconnect struct {
	// Topology selects the link graph: TopologyBus or TopologyMesh.
	Topology Topology
	// BandwidthBps is each link's bandwidth in bits per second. Required,
	// positive.
	BandwidthBps float64
	// HopLatencySec is the per-hop (per-link) forwarding latency in
	// seconds. Non-negative.
	HopLatencySec float64
	// BitsPerCycle converts an edge's communication cycles into message
	// bits; 0 selects DefaultBitsPerCycle.
	BitsPerCycle float64
	// MeshWidth is the mesh's column count; 0 selects ceil(sqrt(cores)).
	// Only meaningful for TopologyMesh (must be 0 for a bus).
	MeshWidth int

	// meshHeight is derived at platform construction: the row count
	// covering all cores. Routers exist at every grid slot, so XY routing
	// is well-defined even when the last row is partially populated.
	meshHeight int
}

// Validate checks the raw (pre-normalization) interconnect parameters.
func (ic *Interconnect) Validate() error {
	switch ic.Topology {
	case TopologyBus:
		if ic.MeshWidth != 0 {
			return fmt.Errorf("arch: interconnect: mesh_width is only valid for the mesh topology")
		}
	case TopologyMesh:
		if ic.MeshWidth < 0 {
			return fmt.Errorf("arch: interconnect: negative mesh width %d", ic.MeshWidth)
		}
	default:
		return fmt.Errorf("arch: interconnect: unknown topology %q (want %q or %q)", ic.Topology, TopologyBus, TopologyMesh)
	}
	if ic.BandwidthBps <= 0 || math.IsNaN(ic.BandwidthBps) || math.IsInf(ic.BandwidthBps, 0) {
		return fmt.Errorf("arch: interconnect: bandwidth must be positive and finite, got %v bits/sec", ic.BandwidthBps)
	}
	if ic.HopLatencySec < 0 || math.IsNaN(ic.HopLatencySec) || math.IsInf(ic.HopLatencySec, 0) {
		return fmt.Errorf("arch: interconnect: hop latency must be non-negative and finite, got %v sec", ic.HopLatencySec)
	}
	if ic.BitsPerCycle < 0 || math.IsNaN(ic.BitsPerCycle) || math.IsInf(ic.BitsPerCycle, 0) {
		return fmt.Errorf("arch: interconnect: bits per cycle must be non-negative and finite, got %v", ic.BitsPerCycle)
	}
	return nil
}

// normalized validates ic and returns an independent copy with every
// default resolved against the platform's core count, so equal fabrics
// compare (and canonically encode) identically however they were spelled.
func (ic *Interconnect) normalized(cores int) (*Interconnect, error) {
	if err := ic.Validate(); err != nil {
		return nil, err
	}
	out := *ic
	if out.BitsPerCycle == 0 {
		out.BitsPerCycle = DefaultBitsPerCycle
	}
	if out.Topology == TopologyMesh {
		if out.MeshWidth == 0 {
			out.MeshWidth = int(math.Ceil(math.Sqrt(float64(cores))))
		}
		out.meshHeight = (cores + out.MeshWidth - 1) / out.MeshWidth
	}
	return &out, nil
}

// NumLinks returns the number of directed links of the fabric: 1 for a
// bus, 4 per router for a mesh (east/west/south/north, some of which dead-
// end at the grid edge and are simply never used).
func (ic *Interconnect) NumLinks() int {
	if ic.Topology == TopologyBus {
		return 1
	}
	return 4 * ic.MeshWidth * ic.meshHeight
}

// Hops returns the number of links a transfer from core a to core b
// crosses: 1 on a bus, the XY Manhattan distance on a mesh (minimum 1,
// since even co-located routers cross one local link — but the scheduler
// never routes same-core edges, so a ≠ b in practice).
func (ic *Interconnect) Hops(a, b int) int {
	if ic.Topology == TopologyBus {
		return 1
	}
	ax, ay := a%ic.MeshWidth, a/ic.MeshWidth
	bx, by := b%ic.MeshWidth, b/ic.MeshWidth
	h := abs(ax-bx) + abs(ay-by)
	if h < 1 {
		h = 1
	}
	return h
}

// PathLinks appends the directed link ids a transfer from core a to core b
// reserves, in crossing order, to buf (typically a reused scratch slice)
// and returns the extended slice. XY dimension-order routing: horizontal
// first, then vertical. Mesh link ids are 4·router + direction with
// directions 0 east (+x), 1 west (−x), 2 south (+y), 3 north (−y).
func (ic *Interconnect) PathLinks(a, b int, buf []int) []int {
	if ic.Topology == TopologyBus {
		return append(buf, 0)
	}
	w := ic.MeshWidth
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	for ax < bx {
		buf = append(buf, 4*(ay*w+ax)+0)
		ax++
	}
	for ax > bx {
		buf = append(buf, 4*(ay*w+ax)+1)
		ax--
	}
	for ay < by {
		buf = append(buf, 4*(ay*w+ax)+2)
		ay++
	}
	for ay > by {
		buf = append(buf, 4*(ay*w+ax)+3)
		ay--
	}
	if len(buf) == 0 {
		// Same router: charge the local link east of it so a degenerate
		// transfer still pays one hop, mirroring Hops.
		buf = append(buf, 4*(ay*w+ax)+0)
	}
	return buf
}

// MessageBits converts an edge's communication cycle count into message
// bits on this fabric.
func (ic *Interconnect) MessageBits(cycles int64) float64 {
	return float64(cycles) * ic.BitsPerCycle
}

// TransferSeconds returns the uncontended latency of moving an edge with
// the given communication cycles from core a to core b:
// hops·HopLatencySec + bits/BandwidthBps. Contention can only add to it.
func (ic *Interconnect) TransferSeconds(a, b int, cycles int64) float64 {
	return float64(ic.Hops(a, b))*ic.HopLatencySec + ic.MessageBits(cycles)/ic.BandwidthBps
}

// MinTransferSeconds returns the smallest latency any cross-core transfer
// of the given cycle count can incur on this fabric (one hop, no
// contention) — the admissible floor the metrics bounds use.
func (ic *Interconnect) MinTransferSeconds(cycles int64) float64 {
	return ic.HopLatencySec + ic.MessageBits(cycles)/ic.BandwidthBps
}

// MeshHeight returns the mesh's derived row count (0 for a bus).
func (ic *Interconnect) MeshHeight() int { return ic.meshHeight }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
