package arch

import (
	"strings"
	"testing"
)

func meshPlatform(t *testing.T, cores, width int) *Platform {
	t.Helper()
	p, err := NewPlatform(cores, ARM7Levels3(), WithInterconnect(Interconnect{
		Topology:      TopologyMesh,
		BandwidthBps:  1e9,
		HopLatencySec: 1e-7,
		MeshWidth:     width,
	}))
	if err != nil {
		t.Fatalf("mesh platform: %v", err)
	}
	return p
}

func TestInterconnectNormalization(t *testing.T) {
	// Defaults: BitsPerCycle 32, MeshWidth ceil(sqrt(cores)).
	p := meshPlatform(t, 6, 0)
	ic := p.Interconnect()
	if ic == nil {
		t.Fatal("platform lost its interconnect")
	}
	if ic.BitsPerCycle != DefaultBitsPerCycle {
		t.Fatalf("BitsPerCycle = %v, want default %v", ic.BitsPerCycle, DefaultBitsPerCycle)
	}
	if ic.MeshWidth != 3 {
		t.Fatalf("MeshWidth = %d, want ceil(sqrt(6)) = 3", ic.MeshWidth)
	}
	if ic.MeshHeight() != 2 {
		t.Fatalf("MeshHeight = %d, want 2", ic.MeshHeight())
	}
	if got := ic.NumLinks(); got != 4*3*2 {
		t.Fatalf("NumLinks = %d, want 24", got)
	}

	// A platform without the option stays ideal.
	plain := MustNewPlatform(4, ARM7Levels3())
	if plain.Interconnect() != nil {
		t.Fatal("plain platform grew an interconnect")
	}

	// Bus fabric: exactly one link, every pair one hop.
	bus, err := NewPlatform(4, ARM7Levels3(), WithInterconnect(Interconnect{
		Topology:     TopologyBus,
		BandwidthBps: 1e8,
	}))
	if err != nil {
		t.Fatalf("bus platform: %v", err)
	}
	bic := bus.Interconnect()
	if bic.NumLinks() != 1 {
		t.Fatalf("bus NumLinks = %d, want 1", bic.NumLinks())
	}
	if bic.Hops(0, 3) != 1 || bic.Hops(3, 0) != 1 {
		t.Fatal("bus hops must be 1 for every pair")
	}
	if path := bic.PathLinks(2, 1, nil); len(path) != 1 || path[0] != 0 {
		t.Fatalf("bus path = %v, want [0]", path)
	}
}

func TestInterconnectValidation(t *testing.T) {
	cases := []struct {
		name string
		ic   Interconnect
		want string
	}{
		{"unknown topology", Interconnect{Topology: "ring", BandwidthBps: 1}, "unknown topology"},
		{"zero bandwidth", Interconnect{Topology: TopologyBus}, "bandwidth"},
		{"negative latency", Interconnect{Topology: TopologyBus, BandwidthBps: 1, HopLatencySec: -1}, "hop latency"},
		{"negative bits per cycle", Interconnect{Topology: TopologyBus, BandwidthBps: 1, BitsPerCycle: -4}, "bits per cycle"},
		{"mesh width on bus", Interconnect{Topology: TopologyBus, BandwidthBps: 1, MeshWidth: 2}, "mesh_width"},
		{"negative mesh width", Interconnect{Topology: TopologyMesh, BandwidthBps: 1, MeshWidth: -1}, "mesh width"},
	}
	for _, tc := range cases {
		_, err := NewPlatform(4, ARM7Levels3(), WithInterconnect(tc.ic))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestMeshHopsAndPaths(t *testing.T) {
	// 3-wide mesh over 6 cores:
	//   0 1 2
	//   3 4 5
	ic := meshPlatform(t, 6, 3).Interconnect()

	cases := []struct {
		a, b, hops int
	}{
		{0, 1, 1}, {1, 0, 1}, {0, 2, 2}, {0, 3, 1}, {0, 5, 3}, {5, 0, 3}, {2, 3, 3}, {4, 1, 1},
	}
	for _, tc := range cases {
		if got := ic.Hops(tc.a, tc.b); got != tc.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.hops)
		}
		path := ic.PathLinks(tc.a, tc.b, nil)
		if len(path) != tc.hops {
			t.Errorf("PathLinks(%d,%d) = %v (%d links), want %d", tc.a, tc.b, path, len(path), tc.hops)
		}
		for _, l := range path {
			if l < 0 || l >= ic.NumLinks() {
				t.Errorf("PathLinks(%d,%d) link %d outside [0,%d)", tc.a, tc.b, l, ic.NumLinks())
			}
		}
	}

	// XY routing is deterministic: 0 -> 5 goes east, east, then south.
	path := ic.PathLinks(0, 5, nil)
	want := []int{4*0 + 0, 4*1 + 0, 4*2 + 2}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathLinks(0,5) = %v, want %v", path, want)
		}
	}

	// Opposite directions never share a directed link.
	fwd := ic.PathLinks(0, 5, nil)
	rev := ic.PathLinks(5, 0, nil)
	for _, f := range fwd {
		for _, r := range rev {
			if f == r {
				t.Fatalf("forward and reverse paths share directed link %d", f)
			}
		}
	}
}

func TestInterconnectTiming(t *testing.T) {
	ic := meshPlatform(t, 4, 2).Interconnect()
	// 100 cycles at 32 bits/cycle over 1e9 bps with 1e-7 s/hop.
	bits := ic.MessageBits(100)
	if bits != 3200 {
		t.Fatalf("MessageBits(100) = %v, want 3200", bits)
	}
	got := ic.TransferSeconds(0, 3, 100) // 2 hops
	want := 2*1e-7 + 3200/1e9
	if diff := got - want; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("TransferSeconds = %v, want %v", got, want)
	}
	minWant := 1e-7 + float64(3200)/1e9
	if min := ic.MinTransferSeconds(100); min != minWant {
		t.Fatalf("MinTransferSeconds = %v, want %v", min, minWant)
	}
}
