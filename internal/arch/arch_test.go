package arch

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Table I of the paper: the corrected eq. (2) law must reproduce it.
func TestARM7VoltageTableI(t *testing.T) {
	cases := []struct {
		freqMHz float64
		wantV   float64
	}{
		{200, 1.00},
		{100, 0.58},
		{200.0 / 3.0, 0.44},
	}
	for _, c := range cases {
		got := ARM7Voltage(c.freqMHz)
		if !almostEqual(got, c.wantV, 0.005) {
			t.Errorf("ARM7Voltage(%.1f MHz) = %.4f V, want %.2f V", c.freqMHz, got, c.wantV)
		}
	}
}

func TestARM7LevelTables(t *testing.T) {
	l3 := ARM7Levels3()
	if len(l3) != 3 {
		t.Fatalf("3-level table has %d entries", len(l3))
	}
	for i, l := range l3 {
		if l.S != i+1 {
			t.Errorf("level %d has S=%d", i, l.S)
		}
	}
	if !almostEqual(l3[0].FreqHz(), 200e6, 1) {
		t.Errorf("s=1 FreqHz = %v", l3[0].FreqHz())
	}

	l2 := ARM7Levels2()
	if len(l2) != 2 || !almostEqual(l2[1].Vdd, 0.58, 0.005) {
		t.Errorf("2-level table wrong: %+v", l2)
	}

	l4 := ARM7Levels4()
	if len(l4) != 4 {
		t.Fatalf("4-level table has %d entries", len(l4))
	}
	// Fig. 11's added point: 1.2 V − 236 MHz, above nominal.
	if l4[0].FreqMHz != 236 || l4[0].Vdd != 1.2 {
		t.Errorf("4-level fastest point = %+v, want 236 MHz / 1.2 V", l4[0])
	}
	if !almostEqual(l4[1].Vdd, 1.0, 0.005) {
		t.Errorf("4-level s=2 should be the 200 MHz/1 V point, got %+v", l4[1])
	}

	for _, n := range []int{2, 3, 4} {
		if ls, err := ARM7LevelsFor(n); err != nil || len(ls) != n {
			t.Errorf("ARM7LevelsFor(%d) = %d levels, err %v", n, len(ls), err)
		}
	}
	if _, err := ARM7LevelsFor(5); err == nil {
		t.Error("ARM7LevelsFor(5) should fail")
	}
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(0, ARM7Levels3()); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewPlatform(4, nil); err == nil {
		t.Error("empty level table accepted")
	}
	if _, err := NewPlatform(4, []Level{{S: 2, FreqMHz: 100, Vdd: 1}}); err == nil {
		t.Error("non-consecutive S accepted")
	}
	bad := []Level{{S: 1, FreqMHz: 100, Vdd: 1}, {S: 2, FreqMHz: 200, Vdd: 1}}
	if _, err := NewPlatform(4, bad); err == nil {
		t.Error("unsorted levels accepted")
	}
	if _, err := NewPlatform(4, ARM7Levels3(), WithCL(-1)); err == nil {
		t.Error("negative CL accepted")
	}
	if _, err := NewPlatform(4, ARM7Levels3(), WithBaselineBits(-1)); err == nil {
		t.Error("negative baseline accepted")
	}
	p, err := NewPlatform(4, ARM7Levels3(), WithCL(10e-12), WithBaselineBits(1000))
	if err != nil {
		t.Fatal(err)
	}
	if p.CL() != 10e-12 || p.BaselineBits() != 1000 {
		t.Error("options not applied")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := MustNewPlatform(4, ARM7Levels3())
	if p.Cores() != 4 || p.NumLevels() != 3 {
		t.Fatalf("Cores=%d NumLevels=%d", p.Cores(), p.NumLevels())
	}
	if l := p.MustLevel(2); !almostEqual(l.Vdd, 0.58, 0.005) {
		t.Errorf("Level(2).Vdd = %v", l.Vdd)
	}
	if _, err := p.Level(0); err == nil {
		t.Error("Level(0) accepted")
	}
	if _, err := p.Level(4); err == nil {
		t.Error("Level(4) accepted")
	}
	if got := p.MaxPowerScaling(); len(got) != 4 || got[0] != 1 {
		t.Errorf("MaxPowerScaling = %v", got)
	}
	if got := p.MinPowerScaling(); len(got) != 4 || got[0] != 3 {
		t.Errorf("MinPowerScaling = %v", got)
	}
	levels := p.Levels(0)
	levels[0].FreqMHz = 0 // must not corrupt the platform
	if p.MustLevel(1).FreqMHz != 200 {
		t.Error("Levels() leaked internal state")
	}
}

func TestValidScaling(t *testing.T) {
	p := MustNewPlatform(3, ARM7Levels3())
	if err := p.ValidScaling([]int{1, 2, 3}); err != nil {
		t.Errorf("valid scaling rejected: %v", err)
	}
	for _, bad := range [][]int{{1, 2}, {1, 2, 3, 1}, {0, 1, 1}, {1, 4, 1}} {
		if err := p.ValidScaling(bad); err == nil {
			t.Errorf("scaling %v accepted", bad)
		}
	}
}

func TestDynamicPowerEq5(t *testing.T) {
	// Hand-computed eq. (5) with CL = 47 pF, full utilization.
	p := MustNewPlatform(4, ARM7Levels3(), WithCL(47e-12))
	scaling := []int{2, 2, 3, 2}
	var want float64
	for _, s := range scaling {
		l := p.MustLevel(s)
		want += l.FreqHz() * l.Vdd * l.Vdd
	}
	want *= 47e-12
	got, err := p.DynamicPower(scaling, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("DynamicPower = %v, want %v", got, want)
	}
	// Magnitude check: the Table II designs sit in the single-digit mW range.
	if got < 1e-3 || got > 20e-3 {
		t.Errorf("power %v W outside plausible Table II band", got)
	}

	// Utilization scales power linearly per core.
	half := []float64{0.5, 0.5, 0.5, 0.5}
	gotHalf, err := p.DynamicPower(scaling, half)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gotHalf, got/2, 1e-12) {
		t.Errorf("half utilization power = %v, want %v", gotHalf, got/2)
	}
}

func TestDynamicPowerMonotoneInScaling(t *testing.T) {
	// Scaling down any core must strictly reduce power (f and V both drop).
	p := MustNewPlatform(4, ARM7Levels3())
	base := []int{1, 1, 1, 1}
	pw := func(s []int) float64 {
		v, err := p.DynamicPower(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	prev := pw(base)
	for s := 2; s <= 3; s++ {
		cur := pw([]int{s, 1, 1, 1})
		if cur >= prev {
			t.Errorf("power not monotone: s=%d gives %v >= %v", s, cur, prev)
		}
		prev = cur
	}
}

func TestDynamicPowerErrors(t *testing.T) {
	p := MustNewPlatform(2, ARM7Levels3())
	if _, err := p.DynamicPower([]int{1}, nil); err == nil {
		t.Error("short scaling accepted")
	}
	if _, err := p.DynamicPower([]int{1, 2}, []float64{0.5}); err == nil {
		t.Error("short util accepted")
	}
	if _, err := p.DynamicPower([]int{1, 2}, []float64{0.5, 1.5}); err == nil {
		t.Error("util > 1 accepted")
	}
	if _, err := p.DynamicPower([]int{1, 2}, []float64{-0.1, 0.5}); err == nil {
		t.Error("negative util accepted")
	}
}

func TestMustLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLevel(99) should panic")
		}
	}()
	MustNewPlatform(2, ARM7Levels3()).MustLevel(99)
}

func TestLevelsFromFrequencies(t *testing.T) {
	levels, err := LevelsFromFrequencies(236, 200, 100, 200.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 {
		t.Fatalf("got %d levels", len(levels))
	}
	// Consecutive S from 1 and strictly decreasing frequency.
	for i, l := range levels {
		if l.S != i+1 {
			t.Errorf("level %d has S=%d", i, l.S)
		}
	}
	// The law reproduces Table I at its rows.
	if !almostEqual(levels[1].Vdd, 1.0, 0.005) || !almostEqual(levels[2].Vdd, 0.58, 0.005) {
		t.Errorf("voltages off: %+v", levels)
	}
	// A platform accepts the custom table.
	if _, err := NewPlatform(4, levels); err != nil {
		t.Errorf("custom table rejected: %v", err)
	}

	if _, err := LevelsFromFrequencies(); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := LevelsFromFrequencies(100, 200); err == nil {
		t.Error("increasing frequencies accepted")
	}
	if _, err := LevelsFromFrequencies(100, 100); err == nil {
		t.Error("equal frequencies accepted")
	}
	if _, err := LevelsFromFrequencies(100, -5); err == nil {
		t.Error("negative frequency accepted")
	}
}

// heteroTestPlatform builds a 4-core mixed platform: two ARM7 Table-I cores,
// one 2-level core and one 4-level core.
func heteroTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewHeterogeneousPlatform(
		[]ProcType{
			{Name: "arm7x3", Levels: ARM7Levels3()},
			{Name: "arm7x2", Levels: ARM7Levels2()},
			{Name: "arm7x4", Levels: ARM7Levels4()},
		},
		[]int{0, 0, 1, 2})
	if err != nil {
		t.Fatalf("NewHeterogeneousPlatform: %v", err)
	}
	return p
}

func TestHeterogeneousPlatform(t *testing.T) {
	p := heteroTestPlatform(t)
	if p.Cores() != 4 || p.Homogeneous() {
		t.Fatalf("Cores=%d Homogeneous=%v", p.Cores(), p.Homogeneous())
	}
	if got := p.LevelCounts(); got[0] != 3 || got[1] != 3 || got[2] != 2 || got[3] != 4 {
		t.Errorf("LevelCounts = %v", got)
	}
	if got := p.SymmetryClasses(); got[0] != 0 || got[1] != 0 || got[2] != 1 || got[3] != 2 {
		t.Errorf("SymmetryClasses = %v", got)
	}
	if got := p.MinPowerScaling(); got[0] != 3 || got[2] != 2 || got[3] != 4 {
		t.Errorf("MinPowerScaling = %v", got)
	}
	// Per-core levels are independent tables.
	if f := p.MustCoreLevel(3, 1).FreqMHz; f != 236 {
		t.Errorf("core 3 s=1 freq = %v, want 236", f)
	}
	if f := p.MustCoreLevel(0, 1).FreqMHz; f != 200 {
		t.Errorf("core 0 s=1 freq = %v, want 200", f)
	}
	if p.NominalHz() != 236e6 {
		t.Errorf("NominalHz = %v, want 236e6", p.NominalHz())
	}
	// Scaling validity is checked against each core's own table.
	if err := p.ValidScaling([]int{3, 1, 2, 4}); err != nil {
		t.Errorf("valid scaling rejected: %v", err)
	}
	if err := p.ValidScaling([]int{1, 1, 3, 1}); err == nil {
		t.Error("core 2 scaling 3 accepted on a 2-level table")
	}
	// The shared-table accessors refuse heterogeneous platforms.
	if _, err := p.Level(1); err == nil {
		t.Error("Level(s) accepted on a heterogeneous platform")
	}
	defer func() {
		if recover() == nil {
			t.Error("NumLevels should panic on a heterogeneous platform")
		}
	}()
	_ = p.NumLevels()
}

func TestHeterogeneousDynamicPower(t *testing.T) {
	p := heteroTestPlatform(t)
	s := []int{1, 2, 1, 2}
	got, err := p.DynamicPower(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for c, sc := range s {
		l := p.MustCoreLevel(c, sc)
		want += l.FreqHz() * l.Vdd * l.Vdd
	}
	want *= p.CL()
	if !almostEqual(got, want, 1e-18) {
		t.Errorf("DynamicPower = %v, want %v", got, want)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	arm7 := ProcType{Name: "arm7", Levels: ARM7Levels3()}
	if _, err := NewHeterogeneousPlatform(nil, []int{0}); err == nil {
		t.Error("no types accepted")
	}
	if _, err := NewHeterogeneousPlatform([]ProcType{arm7}, nil); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewHeterogeneousPlatform([]ProcType{arm7}, []int{0, 1}); err == nil {
		t.Error("out-of-range type index accepted")
	}
	if _, err := NewHeterogeneousPlatform([]ProcType{{Name: "bad"}}, []int{0}); err == nil {
		t.Error("empty level table accepted")
	}
	// Distinct type names with identical tables share one symmetry class.
	p, err := NewHeterogeneousPlatform(
		[]ProcType{arm7, {Name: "arm7-copy", Levels: ARM7Levels3()}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Homogeneous() {
		t.Errorf("identical tables should collapse to one class: %v", p.SymmetryClasses())
	}
	if p.NumLevels() != 3 {
		t.Errorf("NumLevels = %d", p.NumLevels())
	}
}
