// Package arch models the paper's MPSoC architecture (§II-A): C identical
// ARM7TDMI processing cores with private caches and memory, fed by a clock
// tree generator that gives every core its own (frequency, Vdd) operating
// point, selected from a small table of voltage-scaling levels (Table I).
//
// The dynamic power of the platform is eq. (5):
//
//	P = C_L · Σ_i α_i · f_i(s_i) · V_dd²(s_i)
//
// with α_i the activity (utilization) of core i under the chosen mapping.
package arch

import (
	"fmt"
	"math"
)

// ARM7Voltage is the corrected eq. (2) voltage law for the ARM7TDMI
// (from Pouwelse et al., MobiCom'01): V_dd in volts as a function of the
// operating frequency in MHz.
//
// As typeset in the paper, eq. (2) contains a stray division by the scaling
// coefficient s that contradicts the paper's own Table I; with f = f_nom/s
// substituted the law V(f) = 0.1667 + 4.1667·f/10³ reproduces every row of
// Table I (see DESIGN.md §5.1).
func ARM7Voltage(freqMHz float64) float64 {
	return 0.1667 + 4.1667*freqMHz/1000.0
}

// Level is one DVS operating point of a core.
type Level struct {
	S       int     // scaling coefficient; 1-based index into the level table
	FreqMHz float64 // operating frequency
	Vdd     float64 // supply voltage in volts
}

// FreqHz returns the level's frequency in Hz.
func (l Level) FreqHz() float64 { return l.FreqMHz * 1e6 }

// levelFromFreq builds a level at the given frequency using the ARM7
// voltage law.
func levelFromFreq(s int, freqMHz float64) Level {
	return Level{S: s, FreqMHz: freqMHz, Vdd: ARM7Voltage(freqMHz)}
}

// ARM7NominalMHz is the nominal (s=1) ARM7TDMI frequency of Table I.
const ARM7NominalMHz = 200.0

// ARM7Levels3 returns the paper's Table I: the 3-level ARM7TDMI DVS table
// used in all main experiments.
//
//	s=1: 200 MHz, 1.00 V
//	s=2: 100 MHz, 0.58 V
//	s=3: 66.7 MHz, 0.44 V
func ARM7Levels3() []Level {
	return []Level{
		levelFromFreq(1, 200),
		levelFromFreq(2, 100),
		levelFromFreq(3, 200.0/3.0),
	}
}

// ARM7Levels2 returns the 2-level variant used in Fig. 11
// (1 V−200 MHz and 0.58 V−100 MHz).
func ARM7Levels2() []Level {
	return []Level{
		levelFromFreq(1, 200),
		levelFromFreq(2, 100),
	}
}

// ARM7Levels4 returns the 4-level variant used in Fig. 11, which introduces
// the higher-performance 1.2 V−236 MHz point above the Table I levels.
func ARM7Levels4() []Level {
	return []Level{
		{S: 1, FreqMHz: 236, Vdd: 1.2},
		levelFromFreq(2, 200),
		levelFromFreq(3, 100),
		levelFromFreq(4, 200.0/3.0),
	}
}

// LevelsFromFrequencies builds a custom DVS table from operating
// frequencies (MHz, fastest first) using the ARM7 voltage law of eq. (2) —
// the way the paper's Fig. 11 constructs its 4-level variant. Frequencies
// must be positive and strictly decreasing.
func LevelsFromFrequencies(freqsMHz ...float64) ([]Level, error) {
	if len(freqsMHz) == 0 {
		return nil, fmt.Errorf("arch: no frequencies given")
	}
	out := make([]Level, len(freqsMHz))
	for i, f := range freqsMHz {
		if f <= 0 {
			return nil, fmt.Errorf("arch: non-positive frequency %v MHz", f)
		}
		if i > 0 && f >= freqsMHz[i-1] {
			return nil, fmt.Errorf("arch: frequencies must be strictly decreasing (%v after %v)", f, freqsMHz[i-1])
		}
		out[i] = levelFromFreq(i+1, f)
	}
	return out, nil
}

// ARM7LevelsFor returns the 2-, 3- or 4-level ARM7 table (Fig. 11 sweep).
func ARM7LevelsFor(n int) ([]Level, error) {
	switch n {
	case 2:
		return ARM7Levels2(), nil
	case 3:
		return ARM7Levels3(), nil
	case 4:
		return ARM7Levels4(), nil
	default:
		return nil, fmt.Errorf("arch: no ARM7 level table with %d levels", n)
	}
}

// Storage profile of one ARM7 processing core (§II-A): 8 kbit data cache,
// 16 kbit instruction cache, 512 kbit private memory.
const (
	ARM7DataCacheBits  = 8 * 1024
	ARM7InstrCacheBits = 16 * 1024
	ARM7MemoryBits     = 512 * 1024
)

// DefaultCL is the effective switched capacitance C_L of eq. (5), calibrated
// once so that the Exp:4 MPEG-2 design point of Table II lands at ≈4.25 mW
// (see EXPERIMENTS.md, "Calibration"). Held fixed across all experiments.
const DefaultCL = 47e-12 // farads

// DefaultBaselineBits is the per-core baseline storage footprint exposed to
// SEUs while the core participates in the application: both caches plus the
// resident working set of the 512 kbit private memory (≈8%). Calibrated once
// against Table II Γ magnitudes and held fixed (see EXPERIMENTS.md).
const DefaultBaselineBits = ARM7DataCacheBits + ARM7InstrCacheBits + 40*1024 // 64 kbit

// Platform is a concrete MPSoC configuration: core count, DVS level table,
// and the calibration constants of the power and exposure models.
type Platform struct {
	cores        int
	levels       []Level
	cl           float64 // effective switched capacitance (F)
	baselineBits int64   // per-core baseline SEU-exposed storage
}

// Option customizes a Platform.
type Option func(*Platform)

// WithCL overrides the effective switched capacitance.
func WithCL(cl float64) Option { return func(p *Platform) { p.cl = cl } }

// WithBaselineBits overrides the per-core baseline exposed storage.
func WithBaselineBits(bits int64) Option { return func(p *Platform) { p.baselineBits = bits } }

// NewPlatform builds a platform with the given core count and DVS table.
// Levels must be sorted fastest-first and use consecutive S starting at 1.
func NewPlatform(cores int, levels []Level, opts ...Option) (*Platform, error) {
	if cores < 1 {
		return nil, fmt.Errorf("arch: need at least 1 core, got %d", cores)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("arch: empty DVS level table")
	}
	for i, l := range levels {
		if l.S != i+1 {
			return nil, fmt.Errorf("arch: level %d has S=%d, want consecutive S starting at 1", i, l.S)
		}
		if l.FreqMHz <= 0 || l.Vdd <= 0 {
			return nil, fmt.Errorf("arch: level s=%d has non-positive f or Vdd", l.S)
		}
		if i > 0 && levels[i-1].FreqMHz <= l.FreqMHz {
			return nil, fmt.Errorf("arch: levels must be sorted fastest-first (s=%d)", l.S)
		}
	}
	p := &Platform{
		cores:        cores,
		levels:       append([]Level(nil), levels...),
		cl:           DefaultCL,
		baselineBits: DefaultBaselineBits,
	}
	for _, o := range opts {
		o(p)
	}
	if p.cl <= 0 {
		return nil, fmt.Errorf("arch: non-positive C_L %v", p.cl)
	}
	if p.baselineBits < 0 {
		return nil, fmt.Errorf("arch: negative baseline bits %d", p.baselineBits)
	}
	return p, nil
}

// MustNewPlatform is NewPlatform but panics on error; for fixtures.
func MustNewPlatform(cores int, levels []Level, opts ...Option) *Platform {
	p, err := NewPlatform(cores, levels, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Cores returns the number of processing cores.
func (p *Platform) Cores() int { return p.cores }

// NumLevels returns the number of DVS levels.
func (p *Platform) NumLevels() int { return len(p.levels) }

// Levels returns a copy of the DVS level table.
func (p *Platform) Levels() []Level {
	out := make([]Level, len(p.levels))
	copy(out, p.levels)
	return out
}

// Level returns the operating point for scaling coefficient s (1-based).
func (p *Platform) Level(s int) (Level, error) {
	if s < 1 || s > len(p.levels) {
		return Level{}, fmt.Errorf("arch: scaling coefficient %d outside [1,%d]", s, len(p.levels))
	}
	return p.levels[s-1], nil
}

// MustLevel is Level but panics on out-of-range s.
func (p *Platform) MustLevel(s int) Level {
	l, err := p.Level(s)
	if err != nil {
		panic(err)
	}
	return l
}

// CL returns the effective switched capacitance.
func (p *Platform) CL() float64 { return p.cl }

// BaselineBits returns the per-core baseline SEU-exposed storage in bits.
func (p *Platform) BaselineBits() int64 { return p.baselineBits }

// ValidScaling reports whether the per-core scaling vector has one in-range
// coefficient per core.
func (p *Platform) ValidScaling(scaling []int) error {
	if len(scaling) != p.cores {
		return fmt.Errorf("arch: scaling vector has %d entries, platform has %d cores", len(scaling), p.cores)
	}
	for i, s := range scaling {
		if s < 1 || s > len(p.levels) {
			return fmt.Errorf("arch: core %d scaling %d outside [1,%d]", i, s, len(p.levels))
		}
	}
	return nil
}

// DynamicPower evaluates eq. (5) in watts for the per-core scaling vector and
// per-core activity factors α_i ∈ [0,1] (utilization under the mapping).
// If util is nil, α_i = 1 for every core.
func (p *Platform) DynamicPower(scaling []int, util []float64) (float64, error) {
	if err := p.ValidScaling(scaling); err != nil {
		return 0, err
	}
	if util != nil && len(util) != p.cores {
		return 0, fmt.Errorf("arch: utilization vector has %d entries, want %d", len(util), p.cores)
	}
	var sum float64
	for i, s := range scaling {
		l := p.levels[s-1]
		alpha := 1.0
		if util != nil {
			alpha = util[i]
			if alpha < 0 || alpha > 1+1e-9 || math.IsNaN(alpha) {
				return 0, fmt.Errorf("arch: core %d utilization %v outside [0,1]", i, alpha)
			}
		}
		sum += alpha * l.FreqHz() * l.Vdd * l.Vdd
	}
	return p.cl * sum, nil
}

// MaxPowerScaling returns the all-nominal (s=1 everywhere) scaling vector.
func (p *Platform) MaxPowerScaling() []int {
	out := make([]int, p.cores)
	for i := range out {
		out[i] = 1
	}
	return out
}

// MinPowerScaling returns the all-slowest scaling vector (the starting point
// of the Fig. 5(a) enumeration).
func (p *Platform) MinPowerScaling() []int {
	out := make([]int, p.cores)
	for i := range out {
		out[i] = len(p.levels)
	}
	return out
}
