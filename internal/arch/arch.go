// Package arch models the paper's MPSoC architecture (§II-A): processing
// cores with private caches and memory, fed by a clock tree generator that
// gives every core its own (frequency, Vdd) operating point, selected from a
// small table of voltage-scaling levels (Table I).
//
// The paper's platform is C identical ARM7TDMI cores sharing one Table-I
// level table; NewPlatform builds exactly that. The model generalizes to
// heterogeneous MPSoCs — per-core processor types, each with its own DVS
// table — via ProcType and NewHeterogeneousPlatform. Cores that share a
// level table are interchangeable for the task mapper, which is the symmetry
// the vscale enumeration exploits; SymmetryClasses exposes it.
//
// The dynamic power of the platform is eq. (5):
//
//	P = C_L · Σ_i α_i · f_i(s_i) · V_dd²(s_i)
//
// with α_i the activity (utilization) of core i under the chosen mapping.
package arch

import (
	"fmt"
	"math"
)

// ARM7Voltage is the corrected eq. (2) voltage law for the ARM7TDMI
// (from Pouwelse et al., MobiCom'01): V_dd in volts as a function of the
// operating frequency in MHz.
//
// As typeset in the paper, eq. (2) contains a stray division by the scaling
// coefficient s that contradicts the paper's own Table I; with f = f_nom/s
// substituted the law V(f) = 0.1667 + 4.1667·f/10³ reproduces every row of
// Table I (see DESIGN.md §5.1).
func ARM7Voltage(freqMHz float64) float64 {
	return 0.1667 + 4.1667*freqMHz/1000.0
}

// Level is one DVS operating point of a core.
type Level struct {
	S       int     // scaling coefficient; 1-based index into the level table
	FreqMHz float64 // operating frequency
	Vdd     float64 // supply voltage in volts
}

// FreqHz returns the level's frequency in Hz.
func (l Level) FreqHz() float64 { return l.FreqMHz * 1e6 }

// levelFromFreq builds a level at the given frequency using the ARM7
// voltage law.
func levelFromFreq(s int, freqMHz float64) Level {
	return Level{S: s, FreqMHz: freqMHz, Vdd: ARM7Voltage(freqMHz)}
}

// ARM7NominalMHz is the nominal (s=1) ARM7TDMI frequency of Table I.
const ARM7NominalMHz = 200.0

// ARM7Levels3 returns the paper's Table I: the 3-level ARM7TDMI DVS table
// used in all main experiments.
//
//	s=1: 200 MHz, 1.00 V
//	s=2: 100 MHz, 0.58 V
//	s=3: 66.7 MHz, 0.44 V
func ARM7Levels3() []Level {
	return []Level{
		levelFromFreq(1, 200),
		levelFromFreq(2, 100),
		levelFromFreq(3, 200.0/3.0),
	}
}

// ARM7Levels2 returns the 2-level variant used in Fig. 11
// (1 V−200 MHz and 0.58 V−100 MHz).
func ARM7Levels2() []Level {
	return []Level{
		levelFromFreq(1, 200),
		levelFromFreq(2, 100),
	}
}

// ARM7Levels4 returns the 4-level variant used in Fig. 11, which introduces
// the higher-performance 1.2 V−236 MHz point above the Table I levels.
func ARM7Levels4() []Level {
	return []Level{
		{S: 1, FreqMHz: 236, Vdd: 1.2},
		levelFromFreq(2, 200),
		levelFromFreq(3, 100),
		levelFromFreq(4, 200.0/3.0),
	}
}

// LevelsFromFrequencies builds a custom DVS table from operating
// frequencies (MHz, fastest first) using the ARM7 voltage law of eq. (2) —
// the way the paper's Fig. 11 constructs its 4-level variant. Frequencies
// must be positive and strictly decreasing.
func LevelsFromFrequencies(freqsMHz ...float64) ([]Level, error) {
	if len(freqsMHz) == 0 {
		return nil, fmt.Errorf("arch: no frequencies given")
	}
	out := make([]Level, len(freqsMHz))
	for i, f := range freqsMHz {
		if f <= 0 {
			return nil, fmt.Errorf("arch: non-positive frequency %v MHz", f)
		}
		if i > 0 && f >= freqsMHz[i-1] {
			return nil, fmt.Errorf("arch: frequencies must be strictly decreasing (%v after %v)", f, freqsMHz[i-1])
		}
		out[i] = levelFromFreq(i+1, f)
	}
	return out, nil
}

// ARM7LevelsFor returns the 2-, 3- or 4-level ARM7 table (Fig. 11 sweep).
func ARM7LevelsFor(n int) ([]Level, error) {
	switch n {
	case 2:
		return ARM7Levels2(), nil
	case 3:
		return ARM7Levels3(), nil
	case 4:
		return ARM7Levels4(), nil
	default:
		return nil, fmt.Errorf("arch: no ARM7 level table with %d levels", n)
	}
}

// Storage profile of one ARM7 processing core (§II-A): 8 kbit data cache,
// 16 kbit instruction cache, 512 kbit private memory.
const (
	ARM7DataCacheBits  = 8 * 1024
	ARM7InstrCacheBits = 16 * 1024
	ARM7MemoryBits     = 512 * 1024
)

// DefaultCL is the effective switched capacitance C_L of eq. (5), calibrated
// once so that the Exp:4 MPEG-2 design point of Table II lands at ≈4.25 mW
// (see EXPERIMENTS.md, "Calibration"). Held fixed across all experiments.
const DefaultCL = 47e-12 // farads

// DefaultBaselineBits is the per-core baseline storage footprint exposed to
// SEUs while the core participates in the application: both caches plus the
// resident working set of the 512 kbit private memory (≈8%). Calibrated once
// against Table II Γ magnitudes and held fixed (see EXPERIMENTS.md).
const DefaultBaselineBits = ARM7DataCacheBits + ARM7InstrCacheBits + 40*1024 // 64 kbit

// ProcType is one processor type of a (possibly heterogeneous) MPSoC: a
// named DVS level table. Two cores of the same type — or of distinct types
// with byte-identical tables — are interchangeable for the task mapper.
type ProcType struct {
	// Name identifies the type in specs and summaries; it does not
	// participate in physical identity (two types with equal tables are the
	// same hardware).
	Name string
	// Levels is the type's DVS table, fastest first, consecutive S from 1.
	Levels []Level
}

// Validate checks the type's level table (non-empty, consecutive S starting
// at 1, positive f and Vdd, strictly decreasing frequency).
func (t ProcType) Validate() error {
	return validateLevels(t.Levels)
}

func validateLevels(levels []Level) error {
	if len(levels) == 0 {
		return fmt.Errorf("empty DVS level table")
	}
	for i, l := range levels {
		if l.S != i+1 {
			return fmt.Errorf("level %d has S=%d, want consecutive S starting at 1", i, l.S)
		}
		if l.FreqMHz <= 0 || l.Vdd <= 0 {
			return fmt.Errorf("level s=%d has non-positive f or Vdd", l.S)
		}
		if i > 0 && levels[i-1].FreqMHz <= l.FreqMHz {
			return fmt.Errorf("levels must be sorted fastest-first: %v MHz after %v MHz (s=%d)",
				l.FreqMHz, levels[i-1].FreqMHz, l.S)
		}
	}
	return nil
}

// sameLevels reports physical equality of two DVS tables.
func sameLevels(a, b []Level) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Platform is a concrete MPSoC configuration: a set of processor types, a
// per-core type assignment, and the calibration constants of the power and
// exposure models. The paper's homogeneous C×Table-I platform is the
// single-type special case.
type Platform struct {
	cores        int
	types        []ProcType
	coreType     []int // per-core index into types
	classes      []int // per-core symmetry class (equal tables ⇒ equal class)
	numClasses   int
	nominalHz    float64       // fastest s=1 frequency across all cores
	cl           float64       // effective switched capacitance (F)
	baselineBits int64         // per-core baseline SEU-exposed storage
	icn          *Interconnect // nil = ideal dedicated point-to-point links
}

// Option customizes a Platform.
type Option func(*Platform)

// WithCL overrides the effective switched capacitance.
func WithCL(cl float64) Option { return func(p *Platform) { p.cl = cl } }

// WithBaselineBits overrides the per-core baseline exposed storage.
func WithBaselineBits(bits int64) Option { return func(p *Platform) { p.baselineBits = bits } }

// WithInterconnect models the platform's communication fabric explicitly
// instead of the default ideal point-to-point links; see Interconnect.
// The value is normalized (defaults resolved against the core count) and
// validated during platform construction.
func WithInterconnect(ic Interconnect) Option { return func(p *Platform) { p.icn = &ic } }

// NewPlatform builds a homogeneous platform: `cores` identical cores
// sharing one DVS table. Levels must be sorted fastest-first and use
// consecutive S starting at 1.
func NewPlatform(cores int, levels []Level, opts ...Option) (*Platform, error) {
	if cores < 1 {
		return nil, fmt.Errorf("arch: need at least 1 core, got %d", cores)
	}
	return NewHeterogeneousPlatform(
		[]ProcType{{Name: "core", Levels: levels}}, make([]int, cores), opts...)
}

// NewHeterogeneousPlatform builds a platform from a set of processor types
// and a per-core type assignment: core i is an instance of
// types[coreTypes[i]]. Every type's level table is validated like
// NewPlatform's; distinct types with identical tables are legal and treated
// as the same symmetry class.
func NewHeterogeneousPlatform(types []ProcType, coreTypes []int, opts ...Option) (*Platform, error) {
	if len(types) == 0 {
		return nil, fmt.Errorf("arch: no processor types given")
	}
	if len(coreTypes) < 1 {
		return nil, fmt.Errorf("arch: need at least 1 core, got %d", len(coreTypes))
	}
	cp := make([]ProcType, len(types))
	for i, t := range types {
		if err := t.Validate(); err != nil {
			name := t.Name
			if name == "" {
				name = fmt.Sprintf("#%d", i)
			}
			return nil, fmt.Errorf("arch: processor type %s: %w", name, err)
		}
		cp[i] = ProcType{Name: t.Name, Levels: append([]Level(nil), t.Levels...)}
	}
	p := &Platform{
		cores:        len(coreTypes),
		types:        cp,
		coreType:     append([]int(nil), coreTypes...),
		cl:           DefaultCL,
		baselineBits: DefaultBaselineBits,
	}
	for c, ti := range p.coreType {
		if ti < 0 || ti >= len(cp) {
			return nil, fmt.Errorf("arch: core %d references processor type %d, have %d types", c, ti, len(cp))
		}
		if f := cp[ti].Levels[0].FreqHz(); f > p.nominalHz {
			p.nominalHz = f
		}
	}
	// Symmetry classes: cores with physically equal tables share a class;
	// class ids are assigned in first-occurrence order over the core list.
	p.classes = make([]int, p.cores)
	var reps []ProcType // one representative type per class
	for c, ti := range p.coreType {
		cls := -1
		for k, r := range reps {
			if sameLevels(r.Levels, cp[ti].Levels) {
				cls = k
				break
			}
		}
		if cls < 0 {
			cls = len(reps)
			reps = append(reps, cp[ti])
		}
		p.classes[c] = cls
	}
	p.numClasses = len(reps)
	for _, o := range opts {
		o(p)
	}
	if p.cl <= 0 {
		return nil, fmt.Errorf("arch: non-positive C_L %v", p.cl)
	}
	if p.baselineBits < 0 {
		return nil, fmt.Errorf("arch: negative baseline bits %d", p.baselineBits)
	}
	if p.icn != nil {
		ic, err := p.icn.normalized(p.cores)
		if err != nil {
			return nil, err
		}
		p.icn = ic
	}
	return p, nil
}

// MustNewPlatform is NewPlatform but panics on error; for fixtures.
func MustNewPlatform(cores int, levels []Level, opts ...Option) *Platform {
	p, err := NewPlatform(cores, levels, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Cores returns the number of processing cores.
func (p *Platform) Cores() int { return p.cores }

// Homogeneous reports whether every core shares one DVS table (the paper's
// platform model).
func (p *Platform) Homogeneous() bool { return p.numClasses == 1 }

// NumLevels returns the number of DVS levels of the single shared table of a
// homogeneous platform. It panics on a heterogeneous platform, where no such
// single count exists; use CoreNumLevels or LevelCounts there.
func (p *Platform) NumLevels() int {
	if !p.Homogeneous() {
		panic("arch: NumLevels on a heterogeneous platform; use CoreNumLevels(core)")
	}
	return len(p.types[p.coreType[0]].Levels)
}

// CoreNumLevels returns the number of DVS levels of core i's table.
func (p *Platform) CoreNumLevels(i int) int {
	return len(p.types[p.coreType[i]].Levels)
}

// LevelCounts returns the per-core DVS level counts — the mixed radix of the
// platform's scaling-combination space.
func (p *Platform) LevelCounts() []int {
	out := make([]int, p.cores)
	for i := range out {
		out[i] = p.CoreNumLevels(i)
	}
	return out
}

// SymmetryClasses returns the per-core symmetry class ids: two cores share a
// class exactly when their DVS tables are physically equal, making them
// interchangeable for the task mapper. Class ids are dense and assigned in
// first-occurrence order over the core list, so the encoding is canonical
// for a given core ordering.
func (p *Platform) SymmetryClasses() []int {
	return append([]int(nil), p.classes...)
}

// Types returns a copy of the platform's processor types.
func (p *Platform) Types() []ProcType {
	out := make([]ProcType, len(p.types))
	for i, t := range p.types {
		out[i] = ProcType{Name: t.Name, Levels: append([]Level(nil), t.Levels...)}
	}
	return out
}

// CoreTypes returns the per-core indices into Types.
func (p *Platform) CoreTypes() []int { return append([]int(nil), p.coreType...) }

// TypeName returns the processor-type name of core i.
func (p *Platform) TypeName(i int) string { return p.types[p.coreType[i]].Name }

// Levels returns a copy of core i's DVS level table.
func (p *Platform) Levels(i int) []Level {
	t := p.types[p.coreType[i]]
	return append([]Level(nil), t.Levels...)
}

// NominalHz is the platform's reference clock: the fastest (s=1) frequency
// across all cores. T_M cycle counts are expressed against it.
func (p *Platform) NominalHz() float64 { return p.nominalHz }

// CoreLevel returns core i's operating point for scaling coefficient s
// (1-based).
func (p *Platform) CoreLevel(i, s int) (Level, error) {
	if i < 0 || i >= p.cores {
		return Level{}, fmt.Errorf("arch: core %d outside [0,%d)", i, p.cores)
	}
	t := p.types[p.coreType[i]]
	if s < 1 || s > len(t.Levels) {
		return Level{}, fmt.Errorf("arch: core %d scaling coefficient %d outside [1,%d]", i, s, len(t.Levels))
	}
	return t.Levels[s-1], nil
}

// MustCoreLevel is CoreLevel but panics on out-of-range arguments.
func (p *Platform) MustCoreLevel(i, s int) Level {
	l, err := p.CoreLevel(i, s)
	if err != nil {
		panic(err)
	}
	return l
}

// Level returns the operating point for scaling coefficient s (1-based) of
// the single shared table of a homogeneous platform. Heterogeneous platforms
// have no core-independent operating points; use CoreLevel there.
func (p *Platform) Level(s int) (Level, error) {
	if !p.Homogeneous() {
		return Level{}, fmt.Errorf("arch: Level(s) on a heterogeneous platform; use CoreLevel(core, s)")
	}
	return p.CoreLevel(0, s)
}

// MustLevel is Level but panics on out-of-range s or a heterogeneous
// platform.
func (p *Platform) MustLevel(s int) Level {
	l, err := p.Level(s)
	if err != nil {
		panic(err)
	}
	return l
}

// CL returns the effective switched capacitance.
func (p *Platform) CL() float64 { return p.cl }

// BaselineBits returns the per-core baseline SEU-exposed storage in bits.
func (p *Platform) BaselineBits() int64 { return p.baselineBits }

// Interconnect returns the platform's normalized communication fabric, or
// nil for the default ideal (dedicated contention-free point-to-point
// links, where a cross-core edge costs its cycle count at the slower
// endpoint's clock). The returned value is shared and must not be mutated.
func (p *Platform) Interconnect() *Interconnect { return p.icn }

// ValidScaling reports whether the per-core scaling vector has one in-range
// coefficient per core (each checked against that core's own table).
func (p *Platform) ValidScaling(scaling []int) error {
	if len(scaling) != p.cores {
		return fmt.Errorf("arch: scaling vector has %d entries, platform has %d cores", len(scaling), p.cores)
	}
	for i, s := range scaling {
		if n := p.CoreNumLevels(i); s < 1 || s > n {
			return fmt.Errorf("arch: core %d scaling %d outside [1,%d]", i, s, n)
		}
	}
	return nil
}

// DynamicPower evaluates eq. (5) in watts for the per-core scaling vector and
// per-core activity factors α_i ∈ [0,1] (utilization under the mapping).
// If util is nil, α_i = 1 for every core.
func (p *Platform) DynamicPower(scaling []int, util []float64) (float64, error) {
	if err := p.ValidScaling(scaling); err != nil {
		return 0, err
	}
	if util != nil && len(util) != p.cores {
		return 0, fmt.Errorf("arch: utilization vector has %d entries, want %d", len(util), p.cores)
	}
	if util == nil {
		// Nominal power (α ≡ 1) is reduced per (symmetry class, level) in
		// class-major catalogue order — the same fixed order the
		// metrics.Bounds histogram uses — so permutation-equal vectors
		// produce bit-identical power whatever core order they arrive in,
		// and the exploration engine's delta-maintained nominal matches
		// this full computation bit for bit.
		nclass := 0
		for _, k := range p.classes {
			if k+1 > nclass {
				nclass = k + 1
			}
		}
		rep := make([]int, nclass)
		cnt := make([][]int, nclass)
		for i := range rep {
			rep[i] = -1
		}
		for c, k := range p.classes {
			if rep[k] < 0 {
				rep[k] = c
				cnt[k] = make([]int, p.CoreNumLevels(c))
			}
			cnt[k][scaling[c]-1]++
		}
		var sum float64
		for k := 0; k < nclass; k++ {
			levels := p.types[p.coreType[rep[k]]].Levels
			for s, n := range cnt[k] {
				if n == 0 {
					continue
				}
				l := levels[s]
				sum += float64(n) * (l.FreqHz() * l.Vdd * l.Vdd)
			}
		}
		return p.cl * sum, nil
	}
	var sum float64
	for i, s := range scaling {
		l := p.types[p.coreType[i]].Levels[s-1]
		alpha := 1.0
		if util != nil {
			alpha = util[i]
			if alpha < 0 || alpha > 1+1e-9 || math.IsNaN(alpha) {
				return 0, fmt.Errorf("arch: core %d utilization %v outside [0,1]", i, alpha)
			}
		}
		sum += alpha * l.FreqHz() * l.Vdd * l.Vdd
	}
	return p.cl * sum, nil
}

// MaxPowerScaling returns the all-nominal (s=1 everywhere) scaling vector.
func (p *Platform) MaxPowerScaling() []int {
	out := make([]int, p.cores)
	for i := range out {
		out[i] = 1
	}
	return out
}

// MinPowerScaling returns the all-slowest scaling vector (the starting point
// of the Fig. 5(a) enumeration): each core at the last level of its own
// table.
func (p *Platform) MinPowerScaling() []int {
	out := make([]int, p.cores)
	for i := range out {
		out[i] = p.CoreNumLevels(i)
	}
	return out
}
