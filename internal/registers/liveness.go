package registers

import (
	"fmt"
	"sort"
)

// Interval is a half-open window [Start, End) in clock cycles during which a
// register holds live state on some core.
type Interval struct {
	Start int64
	End   int64
}

// Cycles returns the interval length.
func (iv Interval) Cycles() int64 { return iv.End - iv.Start }

// Contains reports whether cycle t lies inside the interval.
func (iv Interval) Contains(t int64) bool { return t >= iv.Start && t < iv.End }

// overlapsOrTouches reports whether two intervals can be merged.
func (iv Interval) overlapsOrTouches(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// coreReg identifies a register instance on one core. Because shared
// registers are duplicated across cores (DESIGN.md §5.2), the same register
// ID may be live on several cores simultaneously; each copy is exposed to
// SEUs independently.
type coreReg struct {
	core int
	reg  string
}

// Liveness records, per (core, register) pair, the merged set of cycle
// intervals during which that register copy holds live state.  It is built
// by the cycle-level simulator and consumed by the fault injector and by the
// eq. (4) average-usage metric.
type Liveness struct {
	spans   map[coreReg][]Interval
	horizon int64 // latest End observed
	cores   map[int]struct{}
}

// NewLiveness returns an empty liveness trace.
func NewLiveness() *Liveness {
	return &Liveness{
		spans: make(map[coreReg][]Interval),
		cores: make(map[int]struct{}),
	}
}

// MarkLive records that register reg is live on core during [start, end).
// Overlapping or adjacent intervals for the same (core, register) pair are
// merged. Empty or inverted intervals are rejected.
func (l *Liveness) MarkLive(core int, reg string, start, end int64) error {
	if core < 0 {
		return fmt.Errorf("registers: negative core index %d", core)
	}
	if start < 0 || end <= start {
		return fmt.Errorf("registers: invalid live interval [%d,%d) for %q", start, end, reg)
	}
	key := coreReg{core, reg}
	l.spans[key] = mergeInto(l.spans[key], Interval{start, end})
	if end > l.horizon {
		l.horizon = end
	}
	l.cores[core] = struct{}{}
	return nil
}

// mergeInto inserts iv into the sorted, disjoint interval list and merges.
func mergeInto(list []Interval, iv Interval) []Interval {
	pos := sort.Search(len(list), func(i int) bool { return list[i].Start >= iv.Start })
	list = append(list, Interval{})
	copy(list[pos+1:], list[pos:])
	list[pos] = iv

	out := list[:0]
	for _, cur := range list {
		if n := len(out); n > 0 && out[n-1].overlapsOrTouches(cur) {
			if cur.End > out[n-1].End {
				out[n-1].End = cur.End
			}
			continue
		}
		out = append(out, cur)
	}
	return out
}

// Horizon returns the last cycle covered by any live interval.
func (l *Liveness) Horizon() int64 { return l.horizon }

// Cores returns the sorted list of cores with at least one live register.
func (l *Liveness) Cores() []int {
	out := make([]int, 0, len(l.cores))
	for c := range l.cores {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Registers returns the sorted register IDs with live state on core.
func (l *Liveness) Registers(core int) []string {
	var out []string
	for key := range l.spans {
		if key.core == core {
			out = append(out, key.reg)
		}
	}
	sort.Strings(out)
	return out
}

// Intervals returns a copy of the merged live intervals for (core, reg).
func (l *Liveness) Intervals(core int, reg string) []Interval {
	src := l.spans[coreReg{core, reg}]
	out := make([]Interval, len(src))
	copy(out, src)
	return out
}

// LiveAt reports whether register reg is live on core at cycle t.
func (l *Liveness) LiveAt(core int, reg string, t int64) bool {
	list := l.spans[coreReg{core, reg}]
	pos := sort.Search(len(list), func(i int) bool { return list[i].End > t })
	return pos < len(list) && list[pos].Contains(t)
}

// LiveCycles returns the total number of cycles register reg is live on core.
func (l *Liveness) LiveCycles(core int, reg string) int64 {
	var total int64
	for _, iv := range l.spans[coreReg{core, reg}] {
		total += iv.Cycles()
	}
	return total
}

// Exposure returns the SEU exposure of core in bit·cycles: the sum over live
// registers of width × live cycles.  The expected number of SEUs striking
// live state on that core is λ_i × Exposure(i) — the simulation-side
// counterpart of the analytic R_i·T_i term in eq. (3).
func (l *Liveness) Exposure(inv *Inventory, core int) int64 {
	var total int64
	for key, list := range l.spans {
		if key.core != core {
			continue
		}
		bits := inv.Bits(key.reg)
		for _, iv := range list {
			total += bits * iv.Cycles()
		}
	}
	return total
}

// AvgBitsPerCycle implements eq. (4): the register usage R_i of core i as the
// average number of live bits per cycle over the window [0, horizon).
func (l *Liveness) AvgBitsPerCycle(inv *Inventory, core int, horizon int64) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(l.Exposure(inv, core)) / float64(horizon)
}

// Profile buckets a core's live bits over time: the horizon is split into
// nBuckets equal windows and each bucket reports the exposure (bit·cycles)
// divided by the bucket width — the average live bits in that window. This
// is the register-pressure view of a run (how exposure concentrates in
// time), used by reports and by the lifetime-vs-conservative ablation.
func (l *Liveness) Profile(inv *Inventory, core int, horizon int64, nBuckets int) []float64 {
	out := make([]float64, nBuckets)
	if nBuckets < 1 || horizon <= 0 {
		return nil
	}
	width := float64(horizon) / float64(nBuckets)
	for key, list := range l.spans {
		if key.core != core {
			continue
		}
		bits := float64(inv.Bits(key.reg))
		for _, iv := range list {
			// Distribute the interval's bit·cycles over the buckets it
			// overlaps.
			for b := 0; b < nBuckets; b++ {
				lo := float64(b) * width
				hi := lo + width
				s, e := float64(iv.Start), float64(iv.End)
				if s < lo {
					s = lo
				}
				if e > hi {
					e = hi
				}
				if e > s {
					out[b] += bits * (e - s) / width
				}
			}
		}
	}
	return out
}

// LiveBitsAt returns the number of live bits on core at cycle t.
func (l *Liveness) LiveBitsAt(inv *Inventory, core int, t int64) int64 {
	var total int64
	for key := range l.spans {
		if key.core != core {
			continue
		}
		if l.LiveAt(core, key.reg, t) {
			total += inv.Bits(key.reg)
		}
	}
	return total
}
