package registers

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInventoryAdd(t *testing.T) {
	inv := NewInventory()
	if err := inv.Add("r1", 4096); err != nil {
		t.Fatalf("Add(r1) failed: %v", err)
	}
	if err := inv.Add("r1", 2048); err == nil {
		t.Fatal("duplicate Add(r1) should fail")
	}
	if err := inv.Add("", 1); err == nil {
		t.Fatal("empty ID should fail")
	}
	if err := inv.Add("r2", 0); err == nil {
		t.Fatal("zero width should fail")
	}
	if err := inv.Add("r3", -5); err == nil {
		t.Fatal("negative width should fail")
	}
	if got := inv.Bits("r1"); got != 4096 {
		t.Errorf("Bits(r1) = %d, want 4096", got)
	}
	if got := inv.Bits("missing"); got != 0 {
		t.Errorf("Bits(missing) = %d, want 0", got)
	}
	if !inv.Has("r1") || inv.Has("nope") {
		t.Error("Has misbehaves")
	}
	if inv.Len() != 1 {
		t.Errorf("Len = %d, want 1", inv.Len())
	}
}

func TestInventoryMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd on duplicate should panic")
		}
	}()
	inv := NewInventory()
	inv.MustAdd("a", 1)
	inv.MustAdd("a", 1)
}

func TestInventoryOrderAndTotals(t *testing.T) {
	inv := NewInventory()
	inv.MustAdd("b", 10)
	inv.MustAdd("a", 20)
	inv.MustAdd("c", 30)
	ids := inv.IDs()
	want := []string{"b", "a", "c"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs order = %v, want %v (insertion order)", ids, want)
		}
	}
	if inv.TotalBits() != 60 {
		t.Errorf("TotalBits = %d, want 60", inv.TotalBits())
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet("r1", "r2", "r3")
	b := NewSet("r2", "r3", "r4")

	u := Union(a, b)
	if u.Len() != 4 {
		t.Errorf("union size = %d, want 4", u.Len())
	}
	i := Intersect(a, b)
	if i.Len() != 2 || !i.Has("r2") || !i.Has("r3") {
		t.Errorf("intersection = %v, want {r2,r3}", i.IDs())
	}

	c := a.Clone()
	c.Add("r9")
	if a.Has("r9") {
		t.Error("Clone is not independent")
	}
	if !a.Equal(NewSet("r3", "r2", "r1")) {
		t.Error("Equal should ignore order")
	}
	if a.Equal(b) {
		t.Error("distinct sets reported Equal")
	}
	if a.Equal(NewSet("r1", "r2")) {
		t.Error("subset reported Equal")
	}
}

func TestSetBitsAndSharedBits(t *testing.T) {
	inv := NewInventory()
	inv.MustAdd("r1", 4096)
	inv.MustAdd("r2", 2048)
	inv.MustAdd("r3", 1024)

	s := NewSet("r1", "r3")
	if got := inv.SetBits(s); got != 5120 {
		t.Errorf("SetBits = %d, want 5120", got)
	}
	a := NewSet("r1", "r2")
	b := NewSet("r2", "r3")
	if got := inv.SharedBits(a, b); got != 2048 {
		t.Errorf("SharedBits = %d, want 2048", got)
	}
	if got := inv.SharedBits(b, a); got != 2048 {
		t.Errorf("SharedBits not symmetric: %d", got)
	}
}

// Property: |A ∪ B| + |A ∩ B| == |A| + |B| measured in bits
// (inclusion-exclusion on register sets).
func TestUnionIntersectInclusionExclusion(t *testing.T) {
	inv := NewInventory()
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, id := range ids {
		inv.MustAdd(id, int64(1+i)*128)
	}
	f := func(maskA, maskB uint8) bool {
		a, b := make(Set), make(Set)
		for i, id := range ids {
			if maskA&(1<<i) != 0 {
				a.Add(id)
			}
			if maskB&(1<<i) != 0 {
				b.Add(id)
			}
		}
		lhs := inv.SetBits(Union(a, b)) + inv.SetBits(Intersect(a, b))
		rhs := inv.SetBits(a) + inv.SetBits(b)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLivenessMergeAdjacent(t *testing.T) {
	l := NewLiveness()
	for _, span := range [][2]int64{{0, 10}, {10, 20}, {30, 40}, {15, 32}} {
		if err := l.MarkLive(0, "r", span[0], span[1]); err != nil {
			t.Fatalf("MarkLive(%v): %v", span, err)
		}
	}
	ivs := l.Intervals(0, "r")
	if len(ivs) != 1 || ivs[0] != (Interval{0, 40}) {
		t.Fatalf("merged intervals = %v, want [{0 40}]", ivs)
	}
	if l.LiveCycles(0, "r") != 40 {
		t.Errorf("LiveCycles = %d, want 40", l.LiveCycles(0, "r"))
	}
	if l.Horizon() != 40 {
		t.Errorf("Horizon = %d, want 40", l.Horizon())
	}
}

func TestLivenessDisjoint(t *testing.T) {
	l := NewLiveness()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.MarkLive(1, "r", 100, 200))
	must(l.MarkLive(1, "r", 0, 50))
	must(l.MarkLive(1, "r", 300, 310))
	ivs := l.Intervals(1, "r")
	if len(ivs) != 3 {
		t.Fatalf("want 3 disjoint intervals, got %v", ivs)
	}
	if !l.LiveAt(1, "r", 150) || l.LiveAt(1, "r", 75) || l.LiveAt(1, "r", 200) {
		t.Error("LiveAt boundary semantics wrong (half-open [start,end))")
	}
	if l.LiveCycles(1, "r") != 160 {
		t.Errorf("LiveCycles = %d, want 160", l.LiveCycles(1, "r"))
	}
}

func TestLivenessErrors(t *testing.T) {
	l := NewLiveness()
	if err := l.MarkLive(-1, "r", 0, 1); err == nil {
		t.Error("negative core accepted")
	}
	if err := l.MarkLive(0, "r", 5, 5); err == nil {
		t.Error("empty interval accepted")
	}
	if err := l.MarkLive(0, "r", 5, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := l.MarkLive(0, "r", -3, 2); err == nil {
		t.Error("negative start accepted")
	}
}

func TestLivenessExposure(t *testing.T) {
	inv := NewInventory()
	inv.MustAdd("a", 100)
	inv.MustAdd("b", 50)
	l := NewLiveness()
	_ = l.MarkLive(0, "a", 0, 10)  // 1000 bit·cycles
	_ = l.MarkLive(0, "b", 0, 20)  // 1000 bit·cycles
	_ = l.MarkLive(1, "a", 0, 100) // other core
	if got := l.Exposure(inv, 0); got != 2000 {
		t.Errorf("Exposure(core 0) = %d, want 2000", got)
	}
	if got := l.Exposure(inv, 1); got != 10000 {
		t.Errorf("Exposure(core 1) = %d, want 10000", got)
	}
	// eq. (4): average live bits per cycle over horizon 100.
	if got := l.AvgBitsPerCycle(inv, 0, 100); got != 20 {
		t.Errorf("AvgBitsPerCycle = %v, want 20", got)
	}
	if got := l.AvgBitsPerCycle(inv, 0, 0); got != 0 {
		t.Errorf("AvgBitsPerCycle with zero horizon = %v, want 0", got)
	}
	if got := l.LiveBitsAt(inv, 0, 5); got != 150 {
		t.Errorf("LiveBitsAt(5) = %d, want 150", got)
	}
	if got := l.LiveBitsAt(inv, 0, 15); got != 50 {
		t.Errorf("LiveBitsAt(15) = %d, want 50", got)
	}
	cores := l.Cores()
	if len(cores) != 2 || cores[0] != 0 || cores[1] != 1 {
		t.Errorf("Cores = %v, want [0 1]", cores)
	}
	regs := l.Registers(0)
	if len(regs) != 2 || regs[0] != "a" || regs[1] != "b" {
		t.Errorf("Registers(0) = %v, want [a b]", regs)
	}
}

// Property: random interval insertions always leave the per-register list
// sorted, disjoint, and covering exactly the union of the inputs.
func TestLivenessMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		l := NewLiveness()
		covered := make(map[int64]bool)
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			start := int64(rng.Intn(200))
			end := start + 1 + int64(rng.Intn(40))
			if err := l.MarkLive(0, "r", start, end); err != nil {
				t.Fatal(err)
			}
			for c := start; c < end; c++ {
				covered[c] = true
			}
		}
		ivs := l.Intervals(0, "r")
		var total int64
		for i, iv := range ivs {
			if iv.End <= iv.Start {
				t.Fatalf("trial %d: empty interval %v", trial, iv)
			}
			if i > 0 && ivs[i-1].End >= iv.Start {
				t.Fatalf("trial %d: intervals not disjoint/sorted: %v", trial, ivs)
			}
			total += iv.Cycles()
		}
		if total != int64(len(covered)) {
			t.Fatalf("trial %d: covered %d cycles, intervals report %d", trial, len(covered), total)
		}
		for c := int64(0); c < 250; c++ {
			if l.LiveAt(0, "r", c) != covered[c] {
				t.Fatalf("trial %d: LiveAt(%d) = %v, want %v", trial, c, l.LiveAt(0, "r", c), covered[c])
			}
		}
	}
}

func TestLivenessProfile(t *testing.T) {
	inv := NewInventory()
	inv.MustAdd("a", 100)
	inv.MustAdd("b", 60)
	l := NewLiveness()
	_ = l.MarkLive(0, "a", 0, 50)  // first half only
	_ = l.MarkLive(0, "b", 0, 100) // whole horizon
	prof := l.Profile(inv, 0, 100, 2)
	if len(prof) != 2 {
		t.Fatalf("profile = %v", prof)
	}
	// Bucket 0: a (100 bits) + b (60) = 160; bucket 1: b only = 60.
	if prof[0] != 160 || prof[1] != 60 {
		t.Errorf("profile = %v, want [160 60]", prof)
	}
	// Partial overlap distributes proportionally.
	l2 := NewLiveness()
	_ = l2.MarkLive(0, "a", 25, 75) // half of each bucket
	p2 := l2.Profile(inv, 0, 100, 2)
	if p2[0] != 50 || p2[1] != 50 {
		t.Errorf("partial profile = %v, want [50 50]", p2)
	}
	if l.Profile(inv, 0, 0, 2) != nil || l.Profile(inv, 0, 100, 0) != nil {
		t.Error("degenerate profiles should be nil")
	}
}
