// Package registers models the register resources of an MPSoC application.
//
// In the paper's system model (Shafik et al., DATE 2010, §II-B and eq. 8)
// every application task uses a set of named register resources — local
// working registers plus buffers shared with other tasks (bitstream windows,
// block buffers, coefficient stores, ...).  The per-core register usage R_i
// that drives the SEU count Γ = Σ R_i·T_i·λ_i is the cardinality, in bits, of
// the union of the register sets of all tasks mapped to core i.  A register
// shared by tasks mapped to different cores is *duplicated* on every such
// core, which is the mechanism behind the paper's R-versus-T_M trade-off.
//
// The package provides three building blocks:
//
//   - Inventory: the catalogue of register resources and their widths.
//   - Set: a set of register IDs, with the union/intersection operations the
//     mapping algorithms need.
//   - Liveness: cycle-resolved live intervals per (core, register), produced
//     by the cycle-level simulator and consumed by the fault injector.
package registers

import (
	"fmt"
	"sort"
)

// Register is a named storage resource of a fixed width.
type Register struct {
	ID   string // unique identifier, e.g. "sh_coef" or "loc_t7"
	Bits int64  // width in bits
}

// Inventory is the catalogue of all register resources of an application.
// The zero value is not usable; create one with NewInventory.
type Inventory struct {
	regs  map[string]Register
	order []string // insertion order, for deterministic iteration
}

// NewInventory returns an empty inventory.
func NewInventory() *Inventory {
	return &Inventory{regs: make(map[string]Register)}
}

// Add registers a resource. It reports an error for duplicate IDs, empty IDs
// and non-positive widths.
func (inv *Inventory) Add(id string, bits int64) error {
	if id == "" {
		return fmt.Errorf("registers: empty register ID")
	}
	if bits <= 0 {
		return fmt.Errorf("registers: register %q has non-positive width %d", id, bits)
	}
	if _, dup := inv.regs[id]; dup {
		return fmt.Errorf("registers: duplicate register ID %q", id)
	}
	inv.regs[id] = Register{ID: id, Bits: bits}
	inv.order = append(inv.order, id)
	return nil
}

// MustAdd is Add but panics on error; intended for static fixture tables.
func (inv *Inventory) MustAdd(id string, bits int64) {
	if err := inv.Add(id, bits); err != nil {
		panic(err)
	}
}

// Get returns the register with the given ID.
func (inv *Inventory) Get(id string) (Register, bool) {
	r, ok := inv.regs[id]
	return r, ok
}

// Bits returns the width of register id, or 0 if it does not exist.
func (inv *Inventory) Bits(id string) int64 {
	return inv.regs[id].Bits
}

// Has reports whether the inventory contains register id.
func (inv *Inventory) Has(id string) bool {
	_, ok := inv.regs[id]
	return ok
}

// Len returns the number of registers in the inventory.
func (inv *Inventory) Len() int { return len(inv.regs) }

// IDs returns all register IDs in insertion order.
func (inv *Inventory) IDs() []string {
	out := make([]string, len(inv.order))
	copy(out, inv.order)
	return out
}

// TotalBits returns the summed width of every register in the inventory.
func (inv *Inventory) TotalBits() int64 {
	var total int64
	for _, id := range inv.order {
		total += inv.regs[id].Bits
	}
	return total
}

// SetBits returns the summed width of the registers in s (eq. 8's |·|,
// the cardinality of a register set measured in bits).
func (inv *Inventory) SetBits(s Set) int64 {
	var total int64
	for id := range s {
		total += inv.regs[id].Bits
	}
	return total
}

// SharedBits returns the width of the intersection of a and b — the amount
// of register state two tasks (or task groups) share.
func (inv *Inventory) SharedBits(a, b Set) int64 {
	var total int64
	for id := range a {
		if b.Has(id) {
			total += inv.regs[id].Bits
		}
	}
	return total
}

// Set is a set of register IDs.
type Set map[string]struct{}

// NewSet builds a set from the listed IDs.
func NewSet(ids ...string) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id into the set.
func (s Set) Add(id string) { s[id] = struct{}{} }

// Has reports membership of id.
func (s Set) Has(id string) bool {
	_, ok := s[id]
	return ok
}

// Len returns the number of IDs in the set.
func (s Set) Len() int { return len(s) }

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

// UnionWith adds every member of other to s, in place.
func (s Set) UnionWith(other Set) {
	for id := range other {
		s[id] = struct{}{}
	}
}

// Union returns a new set holding the union of the operands.
func Union(sets ...Set) Set {
	out := make(Set)
	for _, s := range sets {
		out.UnionWith(s)
	}
	return out
}

// Intersect returns a new set holding the intersection of a and b.
func Intersect(a, b Set) Set {
	out := make(Set)
	for id := range a {
		if b.Has(id) {
			out[id] = struct{}{}
		}
	}
	return out
}

// IDs returns the member IDs in sorted order, for deterministic output.
func (s Set) IDs() []string {
	out := make([]string, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether the two sets hold exactly the same IDs.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for id := range s {
		if !other.Has(id) {
			return false
		}
	}
	return true
}
