package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seadopt/internal/sched"
)

// quadratic is a deterministic toy objective: cost = Σ (m[i] - target[i])².
func quadratic(target sched.Mapping) func(sched.Mapping) (Cost, error) {
	return func(m sched.Mapping) (Cost, error) {
		var c float64
		for i := range m {
			d := float64(m[i] - target[i])
			c += d * d
		}
		return Cost{Value: c, Feasible: true}, nil
	}
}

func TestAnnealValidation(t *testing.T) {
	ok := Problem{
		Cores:    2,
		Initial:  sched.Mapping{0, 1},
		Moves:    10,
		Evaluate: quadratic(sched.Mapping{0, 1}),
	}
	if _, err := Anneal(ok); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.Moves = 0
	if _, err := Anneal(bad); err == nil {
		t.Error("zero moves accepted")
	}
	bad = ok
	bad.Cores = 0
	if _, err := Anneal(bad); err == nil {
		t.Error("zero cores accepted")
	}
	bad = ok
	bad.Evaluate = nil
	if _, err := Anneal(bad); err == nil {
		t.Error("nil objective accepted")
	}
	bad = ok
	bad.Initial = nil
	if _, err := Anneal(bad); err == nil {
		t.Error("empty initial accepted")
	}
}

func TestAnnealFindsTarget(t *testing.T) {
	// 8 tasks on 3 cores; target uses all cores so it is reachable under
	// the every-core-used invariant.
	target := sched.Mapping{0, 1, 2, 0, 1, 2, 0, 1}
	res, err := Anneal(Problem{
		Cores:    3,
		Initial:  sched.Mapping{2, 2, 2, 1, 1, 1, 0, 0},
		Moves:    4000,
		Seed:     9,
		Evaluate: quadratic(target),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost.Value != 0 {
		t.Errorf("did not reach the optimum: cost %v, mapping %v", res.BestCost.Value, res.Best)
	}
	if !res.BestCost.Feasible {
		t.Error("feasible objective reported infeasible")
	}
	if res.Improved == 0 {
		t.Error("no incumbent improvements recorded")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	p := Problem{
		Cores:    3,
		Initial:  sched.Mapping{0, 1, 2, 0, 1, 2},
		Moves:    500,
		Seed:     77,
		Evaluate: quadratic(sched.Mapping{2, 1, 0, 2, 1, 0}),
	}
	a, err := Anneal(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost {
		t.Error("same problem produced different best costs")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same problem produced different mappings")
		}
	}
}

func TestAnnealFeasibilityDominates(t *testing.T) {
	// Feasible iff task 0 on core 1. Infeasible states have tiny cost, the
	// feasible region larger cost: the incumbent must still be feasible.
	evaluate := func(m sched.Mapping) (Cost, error) {
		if m[0] == 1 {
			return Cost{Value: 100, Feasible: true}, nil
		}
		return Cost{Value: 1, Feasible: false}, nil
	}
	res, err := Anneal(Problem{
		Cores:    2,
		Initial:  sched.Mapping{0, 1, 0, 1},
		Moves:    800,
		Seed:     3,
		Evaluate: evaluate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BestCost.Feasible {
		t.Error("incumbent is infeasible although feasible states exist")
	}
}

func TestAnnealAltInitials(t *testing.T) {
	// The alternate start sits at the optimum; with two restarts the second
	// run starts there and the incumbent must be optimal.
	target := sched.Mapping{0, 1, 0, 1}
	res, err := Anneal(Problem{
		Cores:       2,
		Initial:     sched.Mapping{1, 0, 1, 0},
		AltInitials: []sched.Mapping{target},
		Moves:       8, // far too few to search; only seeding can win
		Restarts:    2,
		Seed:        5,
		Evaluate:    quadratic(target),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost.Value != 0 {
		t.Errorf("alt initial not used: best cost %v", res.BestCost.Value)
	}
}

func TestAnnealErrorPropagates(t *testing.T) {
	calls := 0
	_, err := Anneal(Problem{
		Cores:   2,
		Initial: sched.Mapping{0, 1},
		Moves:   100,
		Evaluate: func(m sched.Mapping) (Cost, error) {
			calls++
			if calls > 3 {
				return Cost{}, errBoom
			}
			return Cost{Value: 1, Feasible: true}, nil
		},
	})
	if err == nil {
		t.Error("objective error swallowed")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestNeighborInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(20)
		cores := 2 + rng.Intn(5)
		m := make(sched.Mapping, n)
		for i := range m {
			m[i] = i % cores
		}
		// Shuffle while preserving the all-cores-used property when n>=cores.
		rng.Shuffle(n, func(i, j int) { m[i], m[j] = m[j], m[i] })
		nb := Neighbor(rng, m, cores)
		if len(nb) != n {
			t.Fatal("neighbor changed length")
		}
		diff := 0
		for i := range m {
			if nb[i] != m[i] {
				diff++
			}
			if nb[i] < 0 || nb[i] >= cores {
				t.Fatalf("neighbor out of range: %v", nb)
			}
		}
		if diff > 2 {
			t.Fatalf("neighbor changed %d tasks, max 2 allowed", diff)
		}
		if n >= cores && m.UsesAllCores(cores) && !nb.UsesAllCores(cores) {
			t.Fatalf("neighbor emptied a core: %v -> %v", m, nb)
		}
	}
}

func TestNeighborDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := sched.Mapping{0}
	nb := Neighbor(rng, m, 1)
	if len(nb) != 1 || nb[0] != 0 {
		t.Errorf("degenerate neighbor = %v", nb)
	}
}

// Property: the incumbent cost never exceeds the initial cost.
func TestAnnealMonotoneIncumbent(t *testing.T) {
	f := func(seed int64, nRaw, cRaw uint8) bool {
		n := 2 + int(nRaw)%12
		cores := 2 + int(cRaw)%3
		target := make(sched.Mapping, n)
		initial := make(sched.Mapping, n)
		for i := range target {
			target[i] = i % cores
			initial[i] = (i + 1) % cores
		}
		eval := quadratic(target)
		res, err := Anneal(Problem{
			Cores: cores, Initial: initial, Moves: 200, Seed: seed, Evaluate: eval,
		})
		if err != nil {
			return false
		}
		init, _ := eval(initial)
		return res.BestCost.Value <= init.Value+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCostDominates(t *testing.T) {
	cases := []struct {
		a, b Cost
		want bool
	}{
		{Cost{1, true}, Cost{2, true}, true},
		{Cost{2, true}, Cost{1, true}, false},
		{Cost{math.Inf(1), true}, Cost{0, false}, true},
		{Cost{0, false}, Cost{math.Inf(1), true}, false},
		{Cost{1, false}, Cost{2, false}, true},
	}
	for i, c := range cases {
		if got := c.a.dominates(c.b); got != c.want {
			t.Errorf("case %d: dominates = %v, want %v", i, got, c.want)
		}
	}
}
