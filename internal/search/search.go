// Package search provides the shared local-search engine used by both the
// proposed soft error-aware mapper (stage 2 of Fig. 7, searching on Γ) and
// the simulated-annealing baselines of Exp:1-3 (Orsila-style, searching on
// R, T_M or their product).
//
// Using one engine for all four experiments mirrors the paper's setup —
// every experiment gets the same search budget and neighborhood ("maximum
// two task movements" per step); they differ only in objective function and
// starting point. Feasibility (the real-time constraint) is tracked
// lexicographically: a feasible solution always beats an infeasible one,
// and the returned incumbent is the best feasible mapping seen, or the best
// overall if nothing feasible was encountered.
package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"seadopt/internal/metrics"
	"seadopt/internal/sched"
)

// Cost is an objective evaluation: the scalar to minimize plus the
// feasibility verdict of the underlying schedule.
type Cost struct {
	Value    float64
	Feasible bool
}

// dominates reports whether a beats b (feasibility first, then value).
func (a Cost) dominates(b Cost) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Value < b.Value
}

// Problem specifies one annealing run.
type Problem struct {
	// Ctx optionally cancels the search; it is checked once per move and the
	// walk returns Ctx.Err() promptly after cancellation. Nil means
	// context.Background().
	Ctx     context.Context
	Cores   int
	Initial sched.Mapping
	// AltInitials optionally supplies extra starting points; restart r
	// starts from the r-th entry of {Initial, AltInitials...} (wrapping).
	AltInitials []sched.Mapping
	// Evaluator and Objective form the engine path shared by the proposed
	// mapper and the Exp:1-3 baselines: candidates are scheduled and
	// assessed on the reusable Evaluator (no per-move allocation) and the
	// Objective maps the borrowed evaluation to a search cost. The
	// evaluation passed to Objective is only valid for the duration of the
	// call.
	Evaluator *metrics.Evaluator
	Objective func(ev *metrics.Evaluation) Cost
	// Evaluate scores a candidate mapping directly; it is used when
	// Evaluator is nil (custom or toy objectives). It is called once per
	// move plus once for the initial mapping.
	Evaluate func(m sched.Mapping) (Cost, error)
	// Moves is the total step budget (required, > 0), split evenly across
	// restarts.
	Moves int
	Seed  int64
	// Restarts is the number of independent annealing runs (from Initial,
	// with derived seeds) sharing the move budget; the overall best wins.
	// Zero selects DefaultRestarts.
	Restarts int
	// InitialTempFrac and FinalTempFrac set the geometric cooling schedule
	// as multiples of the sampled mean neighbor delta |ΔCost| (so the
	// schedule adapts to the objective's scale — objectives with large
	// constant offsets anneal identically to their offset-free
	// equivalents). Zero values select 3 and 0.01.
	InitialTempFrac float64
	FinalTempFrac   float64
}

// DefaultRestarts is the restart count when Problem.Restarts is zero.
const DefaultRestarts = 2

// Result carries the incumbent of an annealing run.
type Result struct {
	Best     sched.Mapping
	BestCost Cost
	Accepted int // moves accepted into the walking state
	Improved int // times the incumbent improved
}

// Anneal runs simulated annealing over task mappings with the shared
// move/swap neighborhood (every-core-used invariant preserved). The total
// move budget is split across Problem.Restarts independent runs and the
// best incumbent across runs is returned.
func Anneal(p Problem) (*Result, error) {
	if p.Moves <= 0 {
		return nil, fmt.Errorf("search: non-positive move budget %d", p.Moves)
	}
	if p.Cores < 1 {
		return nil, fmt.Errorf("search: non-positive core count %d", p.Cores)
	}
	if p.Evaluate == nil {
		if p.Evaluator == nil || p.Objective == nil {
			return nil, fmt.Errorf("search: nil objective")
		}
		ev, obj := p.Evaluator, p.Objective
		p.Evaluate = func(m sched.Mapping) (Cost, error) {
			e, err := ev.Evaluate(m)
			if err != nil {
				return Cost{}, err
			}
			return obj(e), nil
		}
	}
	if len(p.Initial) == 0 {
		return nil, fmt.Errorf("search: empty initial mapping")
	}
	if p.Ctx == nil {
		p.Ctx = context.Background()
	}
	restarts := p.Restarts
	if restarts <= 0 {
		restarts = DefaultRestarts
	}
	if restarts > p.Moves {
		restarts = 1
	}
	starts := append([]sched.Mapping{p.Initial}, p.AltInitials...)
	sub := p
	sub.Restarts = 1
	sub.Moves = p.Moves / restarts
	var best *Result
	for r := 0; r < restarts; r++ {
		if err := p.Ctx.Err(); err != nil {
			return nil, err
		}
		sub.Seed = p.Seed + int64(r)*0x9E3779B9
		sub.Initial = starts[r%len(starts)]
		res, err := annealOnce(sub)
		if err != nil {
			return nil, err
		}
		if best == nil || res.BestCost.dominates(best.BestCost) {
			res.Accepted += bestAccepted(best)
			res.Improved += bestImproved(best)
			best = res
		} else {
			best.Accepted += res.Accepted
			best.Improved += res.Improved
		}
	}
	return best, nil
}

func bestAccepted(r *Result) int {
	if r == nil {
		return 0
	}
	return r.Accepted
}

func bestImproved(r *Result) int {
	if r == nil {
		return 0
	}
	return r.Improved
}

// annealOnce is a single cooling run.
func annealOnce(p Problem) (*Result, error) {
	t0f, tef := p.InitialTempFrac, p.FinalTempFrac
	if t0f <= 0 {
		t0f = 3
	}
	if tef <= 0 {
		tef = 0.01
	}

	rng := rand.New(rand.NewSource(p.Seed ^ 0x5EA2C4))
	cur := p.Initial.Clone()
	curCost, err := p.Evaluate(cur)
	if err != nil {
		return nil, err
	}
	res := &Result{Best: cur.Clone(), BestCost: curCost}

	if p.Cores < 2 || len(p.Initial) < 2 {
		return res, nil
	}

	// Walk scratch: the candidate buffer and load counts are reused across
	// every move; accepting a move swaps the buffers instead of cloning.
	scratch := make(sched.Mapping, len(cur))
	loads := make([]int, p.Cores)

	// Calibrate the temperature scale from sampled neighbor deltas so the
	// schedule is invariant to affine shifts of the objective; the samples
	// consume search budget so every objective gets the same total
	// evaluation count.
	moves := p.Moves
	nSample := 16
	if nSample > moves/4 {
		nSample = moves / 4
	}
	var meanDelta float64
	if nSample > 0 {
		var sum float64
		for i := 0; i < nSample; i++ {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
			nb := NeighborInto(rng, scratch, cur, p.Cores, loads)
			c, err := p.Evaluate(nb)
			if err != nil {
				return nil, err
			}
			sum += math.Abs(c.Value - curCost.Value)
			if c.dominates(res.BestCost) {
				res.Best = nb.Clone()
				res.BestCost = c
				res.Improved++
			}
		}
		moves -= nSample
		meanDelta = sum / float64(nSample)
	}
	if meanDelta <= 0 {
		meanDelta = math.Abs(curCost.Value)/10 + 1e-12
	}

	t0 := t0f * meanDelta
	tEnd := tef * meanDelta
	if tEnd <= 0 || tEnd >= t0 {
		tEnd = t0 * 1e-4
	}
	alpha := math.Pow(tEnd/t0, 1/float64(moves))

	temp := t0
	for move := 0; move < moves; move++ {
		if err := p.Ctx.Err(); err != nil {
			return nil, err
		}
		neighbor := NeighborInto(rng, scratch, cur, p.Cores, loads)
		c, err := p.Evaluate(neighbor)
		if err != nil {
			return nil, err
		}
		accept := false
		switch {
		case c.Feasible && !curCost.Feasible:
			accept = true
		case c.Feasible == curCost.Feasible:
			delta := c.Value - curCost.Value
			accept = delta <= 0 || rng.Float64() < math.Exp(-delta/temp)
		}
		if accept {
			cur, scratch = neighbor, cur
			curCost = c
			res.Accepted++
		}
		if c.dominates(res.BestCost) {
			res.Best = neighbor.Clone()
			res.BestCost = c
			res.Improved++
		}
		temp *= alpha
	}
	return res, nil
}

// Neighbor draws a random neighboring mapping: either one task moved to a
// different core or two tasks' cores swapped ("maximum two task movements",
// Fig. 7 step C). Moves that would empty a core are rejected, preserving the
// architecture-allocation premise that every allocated core hosts at least
// one task (Fig. 6 line 4); swaps preserve it trivially.
func Neighbor(rng *rand.Rand, m sched.Mapping, cores int) sched.Mapping {
	return NeighborInto(rng, make(sched.Mapping, len(m)), m, cores, make([]int, cores))
}

// NeighborInto is the allocation-free core of Neighbor: it writes the
// neighbor of m into dst (which must have len(m)) using loads (at least
// cores entries) as per-core load scratch, and returns dst. The random draw
// sequence is identical to Neighbor's, so swapping one for the other never
// changes a search trajectory.
func NeighborInto(rng *rand.Rand, dst, m sched.Mapping, cores int, loads []int) sched.Mapping {
	n := len(m)
	copy(dst, m)
	if n < 2 || cores < 2 {
		return dst
	}
	loads = loads[:cores]
	for i := range loads {
		loads[i] = 0
	}
	for _, c := range dst {
		loads[c]++
	}
	mustKeepAll := n >= cores
	for attempt := 0; attempt < 8; attempt++ {
		if rng.Intn(2) == 0 {
			t := rng.Intn(n)
			if mustKeepAll && loads[dst[t]] < 2 {
				continue // moving t would empty its core
			}
			c := rng.Intn(cores - 1)
			if c >= dst[t] {
				c++
			}
			dst[t] = c
			return dst
		}
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && dst[a] != dst[b] {
			dst[a], dst[b] = dst[b], dst[a]
			return dst
		}
	}
	return dst
}
