package metrics

import (
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// TestTMLowerBoundAdmissible is the property the branch-and-bound pruning
// rests on: for every graph × scaling × mapping tried, the bound must not
// exceed the real scheduled T_M — at single-iteration and pipelined
// semantics alike. A single violation would let the engine prune a
// combination that is actually feasible.
func TestTMLowerBoundAdmissible(t *testing.T) {
	graphs := []struct {
		g     *taskgraph.Graph
		iters int
	}{
		{taskgraph.MPEG2(), taskgraph.MPEG2Frames},
		{taskgraph.MPEG2(), 1},
		{taskgraph.Fig8(), 1},
		{taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 11), 1},
		{taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 5), 4},
	}
	// Fabrics the property must hold under. The contended variants are
	// sized so §V-scale edges (~1e8 bits) take comparable time to tasks —
	// transfer latency and queuing genuinely shape the schedules the bound
	// is tested against.
	fabrics := map[string]*arch.Interconnect{
		"ideal": nil,
		"bus":   {Topology: arch.TopologyBus, BandwidthBps: 4e9, HopLatencySec: 1e-4},
		"mesh":  {Topology: arch.TopologyMesh, BandwidthBps: 2e9, HopLatencySec: 5e-4},
	}
	ser := faults.NewSERModel(faults.DefaultSER)
	rng := rand.New(rand.NewSource(99))
	for fname, fabric := range fabrics {
		for _, tc := range graphs {
			for _, cores := range []int{2, 4, 6} {
				var opts []arch.Option
				if fabric != nil {
					opts = append(opts, arch.WithInterconnect(*fabric))
				}
				p, err := arch.NewPlatform(cores, arch.ARM7Levels3(), opts...)
				if err != nil {
					t.Fatal(err)
				}
				b := NewBounds(tc.g, p, tc.iters)
				combos, err := vscale.All(cores, 3)
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEvaluator(tc.g, p, ser, Options{Iterations: tc.iters})
				if err != nil {
					t.Fatal(err)
				}
				for _, scaling := range combos {
					lb, err := b.TMLowerBound(scaling)
					if err != nil {
						t.Fatal(err)
					}
					if lb <= 0 {
						t.Fatalf("%s %s cores=%d scaling %v: non-positive bound %v", fname, tc.g.Name(), cores, scaling, lb)
					}
					if err := e.Bind(scaling); err != nil {
						t.Fatal(err)
					}
					for trial := 0; trial < 8; trial++ {
						var m sched.Mapping
						switch trial {
						case 0:
							m = sched.RoundRobin(tc.g.N(), cores)
						case 1:
							m = sched.NewMapping(tc.g.N()) // everything on core 0
						default:
							m = sched.RandomMapping(rng, tc.g.N(), cores)
						}
						ev, err := e.Evaluate(m)
						if err != nil {
							t.Fatal(err)
						}
						if ev.TMSeconds < lb*(1-1e-12) {
							t.Fatalf("%s %s cores=%d scaling %v mapping %v: T_M %.9g beats the 'lower bound' %.9g",
								fname, tc.g.Name(), cores, scaling, m, ev.TMSeconds, lb)
						}
					}
				}
			}
		}
	}
}

// TestCommBoundOnlyTightens: the interconnect-aware term may only raise the
// makespan lower bound, never lower it — that is what keeps every existing
// byte-identity property intact — and on a connected graph with a slow
// enough fabric it must actually raise it (the term is not vacuous).
func TestCommBoundOnlyTightens(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 11)
	combos, err := vscale.All(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ideal := NewBounds(g, arch.MustNewPlatform(4, arch.ARM7Levels3()), 1)
	// 10 Mbit/s: a §V unit edge (3.5e6 cycles ≈ 1.12e8 bits) takes ~11 s —
	// above the serial-execution bound, so the dichotomy must bite.
	slowBus, err := arch.NewPlatform(4, arch.ARM7Levels3(), arch.WithInterconnect(arch.Interconnect{
		Topology: arch.TopologyBus, BandwidthBps: 1e7, HopLatencySec: 1e-3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	comm := NewBounds(g, slowBus, 1)
	tightened := false
	for _, s := range combos {
		lb0, err := ideal.TMLowerBound(s)
		if err != nil {
			t.Fatal(err)
		}
		lb1, err := comm.TMLowerBound(s)
		if err != nil {
			t.Fatal(err)
		}
		if lb1 < lb0 {
			t.Fatalf("scaling %v: comm-aware bound %v below ideal bound %v", s, lb1, lb0)
		}
		if lb1 > lb0 {
			tightened = true
		}
	}
	if !tightened {
		t.Fatal("comm-aware term never tightened any bound on a slow bus")
	}
}

// TestTMLowerBoundTightens: faster scalings must never raise the bound, and
// the all-nominal bound should be within reach of a good schedule (sanity
// that the bound is not vacuously loose).
func TestTMLowerBoundTightens(t *testing.T) {
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	b := NewBounds(g, p, taskgraph.MPEG2Frames)
	slow, _ := b.TMLowerBound([]int{3, 3, 3, 3})
	mid, _ := b.TMLowerBound([]int{2, 2, 2, 2})
	fast, _ := b.TMLowerBound([]int{1, 1, 1, 1})
	if !(fast < mid && mid < slow) {
		t.Fatalf("bounds not monotone in speed: fast %v, mid %v, slow %v", fast, mid, slow)
	}
	// The all-slowest bound must prove the paper's deadline infeasible at
	// uniform s=3 (Fig. 5 walk rejects the first rows for exactly this
	// reason), i.e. the bound is strong enough to prune something real.
	if slow <= taskgraph.MPEG2Deadline {
		t.Logf("note: all-slowest bound %v does not exceed the MPEG-2 deadline %v", slow, taskgraph.MPEG2Deadline)
	}
}

func TestNominalPowerMatchesPlatform(t *testing.T) {
	g := taskgraph.Fig8()
	p := arch.MustNewPlatform(3, arch.ARM7Levels3())
	b := NewBounds(g, p, 1)
	for _, s := range [][]int{{3, 3, 3}, {2, 2, 1}, {1, 1, 1}} {
		got, err := b.NominalPower(s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.DynamicPower(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("NominalPower(%v) = %v, platform says %v", s, got, want)
		}
	}
	if _, err := b.TMLowerBound([]int{1, 2}); err == nil {
		t.Error("bound accepted a wrong-length scaling vector")
	}
}
