package metrics

import (
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// TestEvaluatorMatchesEvaluate: the reusable evaluator must reproduce the
// one-shot path bit-for-bit across many random mappings and rebinds — the
// whole optimization stack sits on this equivalence.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	graphs := []*taskgraph.Graph{
		taskgraph.MPEG2(),
		taskgraph.Fig8(),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(40), 7),
	}
	rng := rand.New(rand.NewSource(99))
	for _, g := range graphs {
		p := arch.MustNewPlatform(4, arch.ARM7Levels3())
		opt := Options{Iterations: 3, DeadlineSec: 5}
		e, err := NewEvaluator(g, p, ser(), opt)
		if err != nil {
			t.Fatal(err)
		}
		scalings := [][]int{{1, 1, 1, 1}, {2, 2, 3, 2}, {3, 3, 3, 3}}
		for _, scaling := range scalings {
			if err := e.Bind(scaling); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				m := sched.RandomMapping(rng, g.N(), 4)
				got, err := e.Evaluate(m)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Evaluate(g, p, m, scaling, ser(), opt)
				if err != nil {
					t.Fatal(err)
				}
				if got.Gamma != want.Gamma || got.PowerW != want.PowerW ||
					got.TMSeconds != want.TMSeconds || got.TotalRegBits != want.TotalRegBits ||
					got.MeetsDeadline != want.MeetsDeadline || got.TMCycles != want.TMCycles {
					t.Fatalf("%s scaling %v mapping %v:\n  evaluator: %v\n  one-shot:  %v",
						g.Name(), scaling, m, got, want)
				}
				for c := range got.PerCore {
					if got.PerCore[c] != want.PerCore[c] {
						t.Fatalf("%s scaling %v core %d: %+v != %+v",
							g.Name(), scaling, c, got.PerCore[c], want.PerCore[c])
					}
				}
			}
		}
	}
}

// TestEvaluationCloneIndependence: a cloned evaluation must survive the
// evaluator moving on to other mappings.
func TestEvaluationCloneIndependence(t *testing.T) {
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	e, err := NewEvaluator(g, p, ser(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bind([]int{2, 2, 3, 2}); err != nil {
		t.Fatal(err)
	}
	m1 := sched.RoundRobin(g.N(), 4)
	ev1, err := e.Evaluate(m1)
	if err != nil {
		t.Fatal(err)
	}
	kept := ev1.Clone()
	gamma1, tm1 := kept.Gamma, kept.TMSeconds
	mapping1 := kept.Schedule.Mapping.Clone()

	// Trample the evaluator's scratch with a different design.
	m2 := sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	if _, err := e.Evaluate(m2); err != nil {
		t.Fatal(err)
	}
	if err := e.Bind([]int{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(m2); err != nil {
		t.Fatal(err)
	}

	if kept.Gamma != gamma1 || kept.TMSeconds != tm1 {
		t.Error("clone's metrics changed under evaluator reuse")
	}
	for i := range mapping1 {
		if kept.Schedule.Mapping[i] != mapping1[i] {
			t.Fatal("clone's schedule mapping changed under evaluator reuse")
		}
	}
}

// TestEvaluatorRequiresBind: Evaluate before Bind is a clean error.
func TestEvaluatorRequiresBind(t *testing.T) {
	g := taskgraph.Fig8()
	p := arch.MustNewPlatform(3, arch.ARM7Levels3())
	e, err := NewEvaluator(g, p, ser(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(sched.RoundRobin(g.N(), 3)); err == nil {
		t.Error("Evaluate before Bind accepted")
	}
}

// TestZeroSERModel: a true zero soft error rate is a valid model yielding
// Γ = 0 without degenerating the rest of the evaluation.
func TestZeroSERModel(t *testing.T) {
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	zero := faults.NewSERModel(0)
	ev, err := Evaluate(g, p, sched.RoundRobin(g.N(), 4), []int{1, 1, 1, 1}, zero,
		Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Gamma != 0 {
		t.Errorf("zero SER gave Γ = %v, want 0", ev.Gamma)
	}
	if ev.PowerW <= 0 || ev.TMSeconds <= 0 {
		t.Error("zero SER degenerated power/timing")
	}
}

// TestMakespanMatchesEvaluate: the makespan-only fast path must reproduce
// Evaluate's TMSeconds and deadline verdict bit-for-bit — the feasibility
// probe's hill climb runs on it and its accept/reject sequence must not
// change — and, having clobbered the scheduler's buffers without refreshing
// the metrics pipeline, it must invalidate EvaluateDelta.
func TestMakespanMatchesEvaluate(t *testing.T) {
	graphs := []*taskgraph.Graph{
		taskgraph.MPEG2(),
		taskgraph.Fig8(),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(40), 7),
	}
	rng := rand.New(rand.NewSource(4242))
	for _, g := range graphs {
		p := arch.MustNewPlatform(4, arch.ARM7Levels3())
		opt := Options{Iterations: 3, DeadlineSec: 0.002}
		ref, err := NewEvaluator(g, p, ser(), opt)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewEvaluator(g, p, ser(), opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, scaling := range [][]int{{1, 1, 1, 1}, {2, 2, 3, 2}, {3, 3, 3, 3}} {
			if err := ref.Bind(scaling); err != nil {
				t.Fatal(err)
			}
			if err := fast.Bind(scaling); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 25; trial++ {
				m := sched.RandomMapping(rng, g.N(), 4)
				want, err := ref.Evaluate(m)
				if err != nil {
					t.Fatal(err)
				}
				tm, meets, err := fast.Makespan(m)
				if err != nil {
					t.Fatal(err)
				}
				if tm != want.TMSeconds || meets != want.MeetsDeadline {
					t.Fatalf("%s scaling %v: Makespan (%v, %v) != Evaluate (%v, %v)",
						g.Name(), scaling, tm, meets, want.TMSeconds, want.MeetsDeadline)
				}
			}
		}
	}

	// Makespan invalidates the delta path until the next full Evaluate.
	g := taskgraph.MPEG2()
	p := arch.MustNewPlatform(4, arch.ARM7Levels3())
	e, err := NewEvaluator(g, p, ser(), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := []int{2, 2, 2, 2}
	if err := e.Bind(s); err != nil {
		t.Fatal(err)
	}
	m := sched.RoundRobin(g.N(), 4)
	if _, err := e.Evaluate(m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Makespan(m); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvaluateDelta(s, []int{2, 2, 2, 3}); err == nil {
		t.Fatal("EvaluateDelta after Makespan did not error")
	}
}
