// Package metrics evaluates a design point — a (mapping, scaling) pair for a
// task graph on an MPSoC platform — against the paper's analytic models:
//
//	R_i  per-core register usage, eq. (8): bits of the union of the register
//	     sets of the tasks mapped to core i (shared registers duplicated
//	     across cores);
//	T_i  per-core busy time, eq. (7): task cycles plus cross-core dependency
//	     cycles (from the list schedule);
//	Γ    expected SEUs experienced, eq. (3): Σ_i (R_i + baseline_i)·λ_i over
//	     the exposure window. Allocated register state persists for the whole
//	     multiprocessor execution (registers are not freed while the
//	     application runs), so every used core's exposure window is T_M; this
//	     is the mechanism behind the paper's concave Γ-vs-T_M trade-off
//	     (Fig. 3) and the Γ growth with core count (Table III) — more cores
//	     shorten T_M slower than they add exposed state;
//	P    dynamic power, eq. (5): C_L·Σ_i α_i·f_i·V_i²;
//	T_M  multiprocessor execution time (DAG makespan, or the pipelined
//	     streaming view for multi-iteration workloads), plus the paper's
//	     aggregate-frequency form of eq. (6) for comparison.
//
// This evaluator is the inner-loop cost function of both the proposed
// soft-error-aware mapper and the simulated-annealing baselines; the
// measured counterpart (cycle-level simulation + fault injection) lives in
// internal/sim and internal/faults.
package metrics

import (
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// Options tunes a design-point evaluation.
type Options struct {
	// Iterations is the number of stream iterations the task costs cover;
	// 1 means plain DAG semantics, taskgraph.MPEG2Frames for the decoder.
	Iterations int
	// DeadlineSec is the real-time constraint T_Mref; 0 disables the check.
	DeadlineSec float64
}

// CoreMetrics carries the per-core quantities of eqs. (3), (7), (8).
type CoreMetrics struct {
	Core         int
	RegBits      int64   // R_i, eq. (8)
	BaselineBits int64   // exposed baseline storage (caches + resident memory)
	BusyCycles   int64   // T_i, eq. (7)
	BusySec      float64 // T_i / f_i
	ExposureSec  float64 // SEU exposure window (T_M for used cores)
	LambdaPerSec float64 // λ_i(V_dd) in SEU/bit/second
	Lambda       float64 // λ_i in SEU/bit/cycle at this core's clock
	Gamma        float64 // (R_i+baseline)·ExposureSec·λ_sec
	Utilization  float64 // α_i
}

// Evaluation is the analytic assessment of one design point.
type Evaluation struct {
	Schedule *sched.Schedule
	PerCore  []CoreMetrics

	TotalRegBits  int64   // R = Σ_i R_i (the Table II "R" column)
	MakespanSec   float64 // single-iteration DAG makespan
	TMSeconds     float64 // deadline-relevant T_M (pipelined if Iterations>1)
	TMCycles      float64 // TMSeconds expressed in nominal-frequency cycles
	PowerW        float64 // eq. (5)
	Gamma         float64 // eq. (3), expected SEUs experienced
	MeetsDeadline bool
	DeadlineSec   float64
}

// Evaluate schedules g under (mapping, scaling) and evaluates the design
// point. ser must be a validated SER model.
//
// This is the one-shot convenience form: it builds a throwaway Evaluator, so
// the result is uniquely owned by the caller. Hot loops that evaluate
// thousands of mappings should hold an Evaluator and reuse it.
func Evaluate(g *taskgraph.Graph, p *arch.Platform, m sched.Mapping, scaling []int,
	ser faults.SERModel, opt Options) (*Evaluation, error) {
	e, err := NewEvaluator(g, p, ser, opt)
	if err != nil {
		return nil, err
	}
	if err := e.Bind(scaling); err != nil {
		return nil, err
	}
	return e.Evaluate(m)
}

// EvaluateSchedule evaluates an already-built schedule.
func EvaluateSchedule(s *sched.Schedule, p *arch.Platform, ser faults.SERModel, opt Options) (*Evaluation, error) {
	if err := ser.Validate(); err != nil {
		return nil, err
	}
	if opt.Iterations < 1 {
		opt.Iterations = 1
	}
	g := s.Graph
	cores := p.Cores()
	coreTasks := s.Mapping.CoreTasks(cores)

	ev := &Evaluation{
		Schedule:    s,
		PerCore:     make([]CoreMetrics, cores),
		MakespanSec: s.MakespanSeconds(),
		DeadlineSec: opt.DeadlineSec,
	}
	ev.TMSeconds = s.PipelinedMakespanSeconds(opt.Iterations)
	nominalHz := p.NominalHz()
	ev.TMCycles = ev.TMSeconds * nominalHz

	util := s.Utilization(opt.Iterations)
	inv := g.Inventory()
	for c := 0; c < cores; c++ {
		cm := &ev.PerCore[c]
		cm.Core = c
		cm.BusyCycles = s.BusyCycles(c)
		cm.BusySec = s.BusySeconds(c)
		cm.Utilization = util[c]
		level := p.MustCoreLevel(c, s.Scaling[c])
		cm.LambdaPerSec = ser.RatePerSec(level.Vdd)
		cm.Lambda = ser.RatePerCycle(level.Vdd, level.FreqHz())
		if len(coreTasks[c]) > 0 {
			cm.RegBits = inv.SetBits(g.UnionRegisters(coreTasks[c]))
			cm.BaselineBits = p.BaselineBits()
			cm.ExposureSec = ev.TMSeconds
		}
		cm.Gamma = float64(cm.RegBits+cm.BaselineBits) * cm.ExposureSec * cm.LambdaPerSec
		ev.TotalRegBits += cm.RegBits
		ev.Gamma += cm.Gamma
	}

	pw, err := p.DynamicPower(s.Scaling, util)
	if err != nil {
		return nil, err
	}
	ev.PowerW = pw
	ev.MeetsDeadline = opt.DeadlineSec <= 0 || ev.TMSeconds <= opt.DeadlineSec
	return ev, nil
}

// AggregateTM implements the paper's eq. (6) estimate of the multiprocessor
// execution time in seconds: total busy cycles divided by the aggregate
// effective frequency Σ_i α_i·f_i. It is reported for comparison with the
// schedule-based T_M; the two agree exactly for perfectly balanced,
// fully-utilized designs.
func AggregateTM(s *sched.Schedule, iterations int) float64 {
	util := s.Utilization(iterations)
	var aggHz float64
	for c := range util {
		aggHz += util[c] * s.FreqHz(c)
	}
	if aggHz <= 0 {
		return 0
	}
	return float64(s.TotalBusyCycles()) / aggHz
}

// Better reports whether candidate a dominates b under the paper's step-3
// acceptance rule: both must be evaluated; a wins if it meets the deadline
// and b does not, or both meet it and a has lower power, or equal power
// (within tol) and lower Γ.
func Better(a, b *Evaluation) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	if a.MeetsDeadline != b.MeetsDeadline {
		return a.MeetsDeadline
	}
	const relTol = 1e-9
	if diff := a.PowerW - b.PowerW; diff < -relTol*(a.PowerW+b.PowerW) {
		return true
	} else if diff > relTol*(a.PowerW+b.PowerW) {
		return false
	}
	return a.Gamma < b.Gamma
}

// String renders a one-line summary of the evaluation.
func (ev *Evaluation) String() string {
	return fmt.Sprintf("P=%.3fmW R=%.1fkb T_M=%.3fs Γ=%.4g deadline=%v",
		ev.PowerW*1e3, float64(ev.TotalRegBits)/1024.0, ev.TMSeconds, ev.Gamma, ev.MeetsDeadline)
}
