package metrics

import (
	"math"
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/registers"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

func plat(cores int) *arch.Platform {
	return arch.MustNewPlatform(cores, arch.ARM7Levels3())
}

func ser() faults.SERModel { return faults.NewSERModel(faults.DefaultSER) }

// twoTask builds a two-task graph with a known register layout:
// tA uses {shared, locA}, tB uses {shared, locB}.
func twoTask(t *testing.T) *taskgraph.Graph {
	t.Helper()
	inv := registers.NewInventory()
	inv.MustAdd("shared", 1000)
	inv.MustAdd("locA", 200)
	inv.MustAdd("locB", 300)
	b := taskgraph.NewBuilder("two", inv)
	a := b.AddTask("A", 1_000_000, "shared", "locA")
	bb := b.AddTask("B", 2_000_000, "shared", "locB")
	b.AddEdge(a, bb, 100_000)
	return b.MustBuild()
}

func TestRegisterDuplicationAcrossCores(t *testing.T) {
	g := twoTask(t)
	p := arch.MustNewPlatform(2, arch.ARM7Levels3(), arch.WithBaselineBits(0))

	// Same core: shared counted once. R = 1000+200+300 = 1500.
	evSame, err := Evaluate(g, p, sched.Mapping{0, 0}, []int{1, 1}, ser(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if evSame.TotalRegBits != 1500 {
		t.Errorf("same-core R = %d, want 1500", evSame.TotalRegBits)
	}
	// Split cores: shared duplicated. R = (1000+200) + (1000+300) = 2500.
	evSplit, err := Evaluate(g, p, sched.Mapping{0, 1}, []int{1, 1}, ser(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if evSplit.TotalRegBits != 2500 {
		t.Errorf("split R = %d, want 2500", evSplit.TotalRegBits)
	}
	if evSplit.PerCore[0].RegBits != 1200 || evSplit.PerCore[1].RegBits != 1300 {
		t.Errorf("per-core R = %d,%d", evSplit.PerCore[0].RegBits, evSplit.PerCore[1].RegBits)
	}
	// The split reduces makespan but raises R — the paper's trade-off.
	if evSplit.MakespanSec >= evSame.MakespanSec {
		t.Log("note: split did not reduce makespan for this tiny graph")
	}
}

func TestGammaHandComputed(t *testing.T) {
	g := twoTask(t)
	p := arch.MustNewPlatform(2, arch.ARM7Levels3(), arch.WithBaselineBits(0))
	m := sched.Mapping{0, 1}
	scaling := []int{1, 2}
	ev, err := Evaluate(g, p, m, scaling, ser(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Eq. (7): T_0 = 1e6 + 1e5 (cross edge), T_1 = 2e6 + 1e5.
	if ev.PerCore[0].BusyCycles != 1_100_000 || ev.PerCore[1].BusyCycles != 2_100_000 {
		t.Fatalf("busy cycles = %d,%d", ev.PerCore[0].BusyCycles, ev.PerCore[1].BusyCycles)
	}
	lam0 := ser().RatePerSec(p.MustLevel(1).Vdd)
	lam1 := ser().RatePerSec(p.MustLevel(2).Vdd)
	// Exposure window is the full T_M for both used cores.
	want := 1200*ev.TMSeconds*lam0 + 1300*ev.TMSeconds*lam1
	if math.Abs(ev.Gamma-want) > 1e-9*want {
		t.Errorf("Γ = %v, want %v", ev.Gamma, want)
	}
	if ev.PerCore[0].ExposureSec != ev.TMSeconds || ev.PerCore[1].ExposureSec != ev.TMSeconds {
		t.Error("used cores should be exposed for the full T_M")
	}
	// Core at lower voltage must have the higher λ (per second and per
	// cycle — the slower clock amplifies the per-cycle rate further).
	if ev.PerCore[1].LambdaPerSec <= ev.PerCore[0].LambdaPerSec {
		t.Error("per-second λ ordering wrong across scaling levels")
	}
	if ev.PerCore[1].Lambda <= ev.PerCore[0].Lambda {
		t.Error("per-cycle λ ordering wrong across scaling levels")
	}
}

func TestBaselineBitsOnlyOnUsedCores(t *testing.T) {
	g := twoTask(t)
	p := arch.MustNewPlatform(3, arch.ARM7Levels3(), arch.WithBaselineBits(5000))
	ev, err := Evaluate(g, p, sched.Mapping{0, 0}, []int{1, 1, 1}, ser(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.PerCore[0].BaselineBits != 5000 {
		t.Errorf("used core baseline = %d", ev.PerCore[0].BaselineBits)
	}
	if ev.PerCore[1].BaselineBits != 0 || ev.PerCore[2].BaselineBits != 0 {
		t.Error("idle cores should expose no baseline storage")
	}
	if ev.PerCore[2].Gamma != 0 {
		t.Error("idle core contributed Γ")
	}
}

func TestDeadlineCheck(t *testing.T) {
	g := twoTask(t)
	p := plat(2)
	m := sched.Mapping{0, 1}
	evTight, err := Evaluate(g, p, m, []int{3, 3}, ser(), Options{DeadlineSec: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if evTight.MeetsDeadline {
		t.Error("nanosecond deadline reported met")
	}
	evLoose, err := Evaluate(g, p, m, []int{3, 3}, ser(), Options{DeadlineSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !evLoose.MeetsDeadline {
		t.Error("100s deadline reported missed")
	}
	evNone, err := Evaluate(g, p, m, []int{3, 3}, ser(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !evNone.MeetsDeadline {
		t.Error("no deadline should always be met")
	}
}

func TestMPEG2PipelineFeasibleAtScale2(t *testing.T) {
	// The paper's Table II designs run mostly at s=2 and meet the 14.58 s
	// tennis-stream deadline; the pipelined T_M must reproduce that
	// feasibility for a balanced 4-core mapping.
	g := taskgraph.MPEG2()
	p := plat(4)
	// Exp:4's mapping from Table II: {t1..t6}, {t7,t8}, {t9}, {t10,t11}.
	m := sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3}
	m = append(m, 3)
	ev, err := Evaluate(g, p, m, []int{2, 2, 3, 2}, ser(),
		Options{Iterations: taskgraph.MPEG2Frames, DeadlineSec: taskgraph.MPEG2Deadline})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.MeetsDeadline {
		t.Errorf("Exp:4 design misses deadline: T_M = %v s > %v s", ev.TMSeconds, taskgraph.MPEG2Deadline)
	}
	// Power should be in the paper's single-digit-mW band.
	if mw := ev.PowerW * 1e3; mw < 1 || mw > 12 {
		t.Errorf("power %v mW outside plausible band", mw)
	}
	// Γ within an order of magnitude of Table II's ~4e5.
	if ev.Gamma < 2e4 || ev.Gamma > 4e6 {
		t.Errorf("Γ = %v wildly off Table II magnitudes", ev.Gamma)
	}
}

func TestAggregateTM(t *testing.T) {
	g := twoTask(t)
	p := plat(2)
	s, err := sched.ListSchedule(g, p, sched.Mapping{0, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateTM(s, 1)
	if agg <= 0 {
		t.Fatalf("AggregateTM = %v", agg)
	}
	// Eq. (6) is total busy cycles over aggregate effective frequency; with
	// both cores partially utilized it can differ from the makespan but
	// must stay within the same order of magnitude.
	ratio := agg / s.MakespanSeconds()
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("AggregateTM/makespan = %v, implausible", ratio)
	}
}

func TestBetterOrdering(t *testing.T) {
	mk := func(meets bool, p, g float64) *Evaluation {
		return &Evaluation{MeetsDeadline: meets, PowerW: p, Gamma: g}
	}
	if !Better(mk(true, 5, 5), nil) {
		t.Error("any evaluation beats nil")
	}
	if Better(nil, mk(true, 5, 5)) {
		t.Error("nil beats nothing")
	}
	if !Better(mk(true, 9, 9), mk(false, 1, 1)) {
		t.Error("deadline-meeting design must win")
	}
	if !Better(mk(true, 1, 9), mk(true, 2, 1)) {
		t.Error("lower power must win")
	}
	if !Better(mk(true, 1, 1), mk(true, 1, 2)) {
		t.Error("equal power: lower Γ must win")
	}
	if Better(mk(true, 1, 2), mk(true, 1, 1)) {
		t.Error("higher Γ won at equal power")
	}
}

func TestEvaluateRejectsBadInputs(t *testing.T) {
	g := twoTask(t)
	p := plat(2)
	if _, err := Evaluate(g, p, sched.Mapping{0}, []int{1, 1}, ser(), Options{}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := Evaluate(g, p, sched.Mapping{0, 1}, []int{1, 1}, faults.SERModel{}, Options{}); err == nil {
		t.Error("invalid SER model accepted")
	}
}

// Property: scaling all cores from s=1 to s=2 roughly doubles busy seconds
// and multiplies Γ by ≈2.5 (Observation 3).
func TestObservation3Scaling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := taskgraph.MPEG2()
	p := plat(4)
	for trial := 0; trial < 10; trial++ {
		m := sched.RandomMapping(rng, g.N(), 4)
		ev1, err := Evaluate(g, p, m, []int{1, 1, 1, 1}, ser(), Options{Iterations: taskgraph.MPEG2Frames})
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := Evaluate(g, p, m, []int{2, 2, 2, 2}, ser(), Options{Iterations: taskgraph.MPEG2Frames})
		if err != nil {
			t.Fatal(err)
		}
		tmRatio := ev2.TMSeconds / ev1.TMSeconds
		if math.Abs(tmRatio-2.0) > 0.01 {
			t.Errorf("trial %d: T_M ratio = %v, want 2.0", trial, tmRatio)
		}
		gRatio := ev2.Gamma / ev1.Gamma
		if math.Abs(gRatio-2.5) > 0.01 {
			t.Errorf("trial %d: Γ ratio = %v, want 2.5 (Observation 3)", trial, gRatio)
		}
	}
}
