package metrics

import (
	"fmt"
	"math/bits"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// Evaluator is the reusable form of Evaluate: it pins a (graph, platform)
// pair — and, after Bind, a scaling vector — and amortizes every
// per-evaluation allocation across calls. The mapper searches evaluate
// thousands of candidate mappings per scaling combination; with an
// Evaluator each of those calls reuses
//
//   - the list scheduler's agenda, ready pools and output arrays
//     (sched.Scheduler),
//   - a bitset register-pressure profile: task footprints are compiled once
//     into word-packed bitmasks over the inventory, so the per-core R_i of
//     eq. (8) is a handful of ORs and popcounts instead of map unions,
//   - the per-core metric rows and utilization scratch of the Evaluation
//     itself.
//
// The *Evaluation returned by Evaluate is BORROWED: it is valid only until
// the next Evaluate or Bind call on this Evaluator. Callers that keep an
// evaluation (an incumbent in a search, a per-scaling design) must Clone it.
// The package-level Evaluate wrapper preserves the old owned-result
// contract.
//
// An Evaluator is not safe for concurrent use; give each worker its own.
type Evaluator struct {
	g   *taskgraph.Graph
	p   *arch.Platform
	ser faults.SERModel
	opt Options
	sch *sched.Scheduler

	// Graph-constant register pressure profile.
	words    int        // words per bitmask
	taskMask [][]uint64 // per-task footprint over inventory indices
	regBits  []int64    // width of inventory register i, by index

	// Per-core scratch.
	coreMask    [][]uint64
	coreLoads   []int
	coreRegBits []int64
	util        []float64

	// Bound per-scaling context.
	bound        bool
	lambdaSec    []float64
	lambdaCyc    []float64
	changed      []int // BindDelta scratch
	nominalHz    float64
	baselineBits int64

	// Last-evaluation context for EvaluateDelta.
	haveEval bool
	lastM    sched.Mapping

	stats EvalStats

	ev Evaluation
}

// EvalStats counts the work an Evaluator has done since construction. The
// counters are observe-only — they never influence an evaluation — and are
// plain fields because an Evaluator is single-goroutine by contract;
// aggregate across workers with Merge.
type EvalStats struct {
	// Evaluations counts full metric evaluations (Evaluate and
	// EvaluateDelta's re-schedule path).
	Evaluations int64 `json:"evaluations"`
	// Makespans counts makespan-only evaluations (the probe fast path).
	Makespans int64 `json:"makespans"`
	// BindsFull counts first-time scaling binds (O(cores) λ derivation).
	BindsFull int64 `json:"binds_full"`
	// BindsDelta counts incremental rebinds (O(changed) λ derivation).
	BindsDelta int64 `json:"binds_delta"`
	// DeltaPatched counts EvaluateDelta calls resolved by the O(changed)
	// idle-core patch; DeltaRescheduled counts the re-schedule fallback.
	DeltaPatched     int64 `json:"delta_patched"`
	DeltaRescheduled int64 `json:"delta_rescheduled"`
}

// Merge accumulates other into s.
func (s *EvalStats) Merge(other EvalStats) {
	s.Evaluations += other.Evaluations
	s.Makespans += other.Makespans
	s.BindsFull += other.BindsFull
	s.BindsDelta += other.BindsDelta
	s.DeltaPatched += other.DeltaPatched
	s.DeltaRescheduled += other.DeltaRescheduled
}

// Sub returns the counter difference s - base: the work done since base was
// snapshotted. Pooled evaluators accumulate counters across borrowers, so a
// borrower attributes only its own delta to telemetry.
func (s EvalStats) Sub(base EvalStats) EvalStats {
	return EvalStats{
		Evaluations:      s.Evaluations - base.Evaluations,
		Makespans:        s.Makespans - base.Makespans,
		BindsFull:        s.BindsFull - base.BindsFull,
		BindsDelta:       s.BindsDelta - base.BindsDelta,
		DeltaPatched:     s.DeltaPatched - base.DeltaPatched,
		DeltaRescheduled: s.DeltaRescheduled - base.DeltaRescheduled,
	}
}

// DeltaBindRate is the fraction of Bind calls served by the O(changed)
// delta path (0 when no binds happened).
func (s EvalStats) DeltaBindRate() float64 {
	total := s.BindsFull + s.BindsDelta
	if total == 0 {
		return 0
	}
	return float64(s.BindsDelta) / float64(total)
}

// Stats snapshots the evaluator's work counters.
func (e *Evaluator) Stats() EvalStats { return e.stats }

// NewEvaluator builds an evaluator for g on p under the given SER model and
// options. Bind must be called before Evaluate.
func NewEvaluator(g *taskgraph.Graph, p *arch.Platform, ser faults.SERModel, opt Options) (*Evaluator, error) {
	if err := ser.Validate(); err != nil {
		return nil, err
	}
	if opt.Iterations < 1 {
		opt.Iterations = 1
	}
	n := g.N()
	cores := p.Cores()
	inv := g.Inventory()
	ids := inv.IDs()
	index := make(map[string]int, len(ids))
	regBits := make([]int64, len(ids))
	for i, id := range ids {
		index[id] = i
		regBits[i] = inv.Bits(id)
	}
	words := (len(ids) + 63) / 64
	if words == 0 {
		words = 1
	}
	taskMask := make([][]uint64, n)
	maskBacking := make([]uint64, n*words)
	for t := 0; t < n; t++ {
		taskMask[t] = maskBacking[t*words : (t+1)*words : (t+1)*words]
		for id := range g.Task(taskgraph.TaskID(t)).Registers {
			i := index[id]
			taskMask[t][i/64] |= 1 << (i % 64)
		}
	}
	coreMask := make([][]uint64, cores)
	coreBacking := make([]uint64, cores*words)
	for c := 0; c < cores; c++ {
		coreMask[c] = coreBacking[c*words : (c+1)*words : (c+1)*words]
	}
	e := &Evaluator{
		g:            g,
		p:            p,
		ser:          ser,
		opt:          opt,
		sch:          sched.NewScheduler(g, p),
		words:        words,
		taskMask:     taskMask,
		regBits:      regBits,
		coreMask:     coreMask,
		coreLoads:    make([]int, cores),
		coreRegBits:  make([]int64, cores),
		util:         make([]float64, cores),
		lambdaSec:    make([]float64, cores),
		lambdaCyc:    make([]float64, cores),
		changed:      make([]int, 0, cores),
		nominalHz:    p.NominalHz(),
		baselineBits: p.BaselineBits(),
		lastM:        make(sched.Mapping, 0, n),
	}
	e.ev.PerCore = make([]CoreMetrics, cores)
	return e, nil
}

// Graph returns the pinned task graph.
func (e *Evaluator) Graph() *taskgraph.Graph { return e.g }

// Platform returns the pinned platform.
func (e *Evaluator) Platform() *arch.Platform { return e.p }

// Options returns the evaluation options.
func (e *Evaluator) Options() Options { return e.opt }

// SER returns the soft error rate model.
func (e *Evaluator) SER() faults.SERModel { return e.ser }

// Bind pins the scaling vector for subsequent Evaluate calls, precomputing
// the per-core λ rates. It invalidates any borrowed Evaluation.
//
// A rebind diffs against the current vector and re-derives the frequency
// and λ rates of the changed cores only — each rate is a pure per-core
// function of the operating point, so the delta path is bit-identical to a
// full bind. Successive vectors of a combination stream differ in a few
// coefficients, making the rebind O(changed) transcendental math instead of
// O(cores).
func (e *Evaluator) Bind(scaling []int) error {
	if !e.bound {
		if err := e.sch.Bind(scaling); err != nil {
			return err
		}
		e.bound = true
		e.haveEval = false
		e.stats.BindsFull++
		return e.rebindLambdas(nil)
	}
	changed, err := e.sch.BindDelta(scaling, e.changed[:0])
	e.changed = changed[:0]
	if err != nil {
		return err
	}
	e.haveEval = false
	e.stats.BindsDelta++
	return e.rebindLambdas(changed)
}

// rebindLambdas re-derives the per-core λ rates for the given cores (nil
// means all).
func (e *Evaluator) rebindLambdas(cores []int) error {
	s := e.sch.Scaling()
	if cores == nil {
		for c := range s {
			e.bindLambda(c, s[c])
		}
		return nil
	}
	for _, c := range cores {
		e.bindLambda(c, s[c])
	}
	return nil
}

func (e *Evaluator) bindLambda(c, s int) {
	level := e.p.MustCoreLevel(c, s)
	e.lambdaSec[c] = e.ser.RatePerSec(level.Vdd)
	e.lambdaCyc[c] = e.ser.RatePerCycle(level.Vdd, level.FreqHz())
}

// Scaling returns the bound scaling vector. The slice is shared; do not
// mutate.
func (e *Evaluator) Scaling() []int { return e.sch.Scaling() }

// SetDeadline rebinds the deadline the evaluator verdicts against, keeping
// every precomputed structure: the deadline feeds only the MeetsDeadline
// comparisons, so a re-deadlined evaluator is bit-identical to one freshly
// constructed with the new value. This is what lets a batch sweep reuse one
// evaluator across its deadline points instead of rebuilding per point.
// The borrowed Evaluation of any previous Evaluate is invalidated (its
// DeadlineSec/MeetsDeadline fields reflect the old deadline), so a
// subsequent EvaluateDelta is an error until the next full Evaluate.
func (e *Evaluator) SetDeadline(d float64) {
	if e.opt.DeadlineSec == d {
		return
	}
	e.opt.DeadlineSec = d
	e.haveEval = false
}

// Evaluate schedules m at the bound scaling and evaluates the design point
// against eqs. (3), (5), (7), (8). The result is borrowed; see the type
// comment.
func (e *Evaluator) Evaluate(m sched.Mapping) (*Evaluation, error) {
	return e.evaluate(m, false)
}

// EvaluateDelta re-evaluates the mapping of the most recent Evaluate call
// after moving the bound scaling from prev to next. prev must equal the
// currently bound vector (the caller names both ends of the move
// explicitly, so a stale evaluator is an error rather than a silent
// mis-evaluation). Only the changed cores' frequency and λ terms are
// re-derived; the mapping-dependent register-pressure profile — which
// scaling cannot change — is reused outright. When no changed core hosts a
// task the schedule provably cannot move either (idle cores never appear
// as an endpoint of a task or a cross-core token, and their power and Γ
// terms are exactly zero at every level), so the borrowed Evaluation is
// patched in O(changed); otherwise the schedule is recomputed. Either way
// the result is bit-identical to a full Bind(next) + Evaluate(mapping).
//
// The returned Evaluation is borrowed under the usual contract, and the
// evaluator is left bound to next.
func (e *Evaluator) EvaluateDelta(prev, next []int) (*Evaluation, error) {
	if !e.bound || !e.haveEval {
		return nil, fmt.Errorf("metrics: EvaluateDelta called before Evaluate")
	}
	cur := e.sch.Scaling()
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("metrics: EvaluateDelta prev has %d entries, platform has %d cores", len(prev), len(cur))
	}
	for c := range prev {
		if prev[c] != cur[c] {
			return nil, fmt.Errorf("metrics: EvaluateDelta prev %v does not match the bound scaling %v", prev, cur)
		}
	}
	changed, err := e.sch.BindDelta(next, e.changed[:0])
	e.changed = changed[:0]
	if err != nil {
		return nil, err
	}
	scheduleSafe := true
	for _, c := range changed {
		e.bindLambda(c, next[c])
		if e.coreLoads[c] > 0 {
			scheduleSafe = false
		}
	}
	if !scheduleSafe {
		// A loaded core moved: timing can change, so re-schedule — but the
		// register-pressure profile of the unchanged mapping is reused.
		e.stats.DeltaRescheduled++
		return e.evaluate(e.lastM, true)
	}
	e.stats.DeltaPatched++
	// Every changed core is idle under the last mapping: the schedule, the
	// power sum (α = 0 terms are exactly zero at any level) and every Γ
	// term are untouched; only the idle cores' λ rows need patching.
	for _, c := range changed {
		cm := &e.ev.PerCore[c]
		cm.LambdaPerSec = e.lambdaSec[c]
		cm.Lambda = e.lambdaCyc[c]
	}
	return &e.ev, nil
}

// Makespan schedules m at the bound scaling and returns only the pipelined
// makespan T_M and its deadline verdict, skipping the register-pressure,
// Γ and power pipeline entirely. The value is bit-identical to the
// TMSeconds/MeetsDeadline an Evaluate of the same mapping would produce —
// same scheduler, same arithmetic — at roughly the cost of the schedule
// alone, which is what feasibility probes that discard everything but the
// verdict want. Like Evaluate, it reuses (and therefore invalidates) the
// scheduler's borrowed buffers: a subsequent EvaluateDelta is an error
// until the next full Evaluate.
func (e *Evaluator) Makespan(m sched.Mapping) (tmSeconds float64, meetsDeadline bool, err error) {
	if !e.bound {
		return 0, false, fmt.Errorf("metrics: Makespan called before Bind")
	}
	e.stats.Makespans++
	e.haveEval = false
	s, err := e.sch.Schedule(m)
	if err != nil {
		return 0, false, err
	}
	tm := s.PipelinedMakespanSeconds(e.opt.Iterations)
	return tm, e.opt.DeadlineSec <= 0 || tm <= e.opt.DeadlineSec, nil
}

// evaluate is the shared implementation of Evaluate and EvaluateDelta's
// re-schedule path. With reuseProfile set, m is the mapping of the previous
// call and the per-core load counts and register-pressure popcounts are
// reused instead of recomputed.
func (e *Evaluator) evaluate(m sched.Mapping, reuseProfile bool) (*Evaluation, error) {
	if !e.bound {
		return nil, fmt.Errorf("metrics: Evaluate called before Bind")
	}
	e.stats.Evaluations++
	e.haveEval = false
	s, err := e.sch.Schedule(m)
	if err != nil {
		return nil, err
	}
	cores := e.p.Cores()

	ev := &e.ev
	ev.Schedule = s
	ev.MakespanSec = s.MakespanSeconds()
	ev.DeadlineSec = e.opt.DeadlineSec
	ev.TMSeconds = s.PipelinedMakespanSeconds(e.opt.Iterations)
	ev.TMCycles = ev.TMSeconds * e.nominalHz
	ev.TotalRegBits = 0
	ev.Gamma = 0
	ev.PowerW = 0

	if !reuseProfile {
		// Per-core register pressure: OR the footprint bitmasks of the
		// tasks on each core, then sum the widths of the set bits (eq. 8).
		// The profile depends only on the mapping, so EvaluateDelta's
		// re-schedule path keeps it.
		for c := 0; c < cores; c++ {
			e.coreLoads[c] = 0
			row := e.coreMask[c]
			for w := range row {
				row[w] = 0
			}
		}
		for t, c := range m {
			e.coreLoads[c]++
			row := e.coreMask[c]
			for w, word := range e.taskMask[t] {
				row[w] |= word
			}
		}
		for c := 0; c < cores; c++ {
			var rb int64
			if e.coreLoads[c] > 0 {
				for w, word := range e.coreMask[c] {
					base := w * 64
					for word != 0 {
						i := bits.TrailingZeros64(word)
						rb += e.regBits[base+i]
						word &= word - 1
					}
				}
			}
			e.coreRegBits[c] = rb
		}
		e.lastM = append(e.lastM[:0], m...)
	}

	horizon := ev.TMSeconds
	for c := 0; c < cores; c++ {
		cm := &ev.PerCore[c]
		*cm = CoreMetrics{
			Core:         c,
			BusyCycles:   s.BusyCycles(c),
			BusySec:      s.BusySeconds(c),
			LambdaPerSec: e.lambdaSec[c],
			Lambda:       e.lambdaCyc[c],
		}
		if horizon > 0 {
			if u := cm.BusySec / horizon; u > 1 {
				cm.Utilization = 1
			} else {
				cm.Utilization = u
			}
		}
		e.util[c] = cm.Utilization
		if e.coreLoads[c] > 0 {
			cm.RegBits = e.coreRegBits[c]
			cm.BaselineBits = e.baselineBits
			cm.ExposureSec = ev.TMSeconds
		}
		cm.Gamma = float64(cm.RegBits+cm.BaselineBits) * cm.ExposureSec * cm.LambdaPerSec
		ev.TotalRegBits += cm.RegBits
		ev.Gamma += cm.Gamma
	}

	pw, err := e.p.DynamicPower(s.Scaling, e.util)
	if err != nil {
		return nil, err
	}
	ev.PowerW = pw
	ev.MeetsDeadline = e.opt.DeadlineSec <= 0 || ev.TMSeconds <= e.opt.DeadlineSec
	e.haveEval = true
	return ev, nil
}

// Clone returns an independent deep copy of the evaluation, safe to retain
// after the Evaluator that produced it moves on.
func (ev *Evaluation) Clone() *Evaluation {
	out := *ev
	if ev.Schedule != nil {
		out.Schedule = ev.Schedule.Clone()
	}
	out.PerCore = append([]CoreMetrics(nil), ev.PerCore...)
	return &out
}
