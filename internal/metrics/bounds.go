package metrics

import (
	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// Bounds computes admissible per-scaling lower bounds for the exploration
// engine's branch-and-bound pruning — what the best conceivable mapping
// could achieve at a scaling vector, without running the mapper.
//
// The graph-dependent quantities (critical-path cycles, total work, largest
// task) are precomputed once in O(V+E); each per-scaling query is then O(C).
// Two relaxations make the makespan bound admissible:
//
//   - infinite-core relaxation: every task runs at the fastest frequency of
//     the scaling vector with zero communication (colocating an entire
//     path on one fastest core eliminates its cross-core edges), so the
//     critical path in cycles over that frequency lower-bounds any
//     schedule's makespan;
//   - work conservation: total task cycles cannot drain faster than the
//     aggregate frequency Σ_c f_c, and some core hosts the largest task.
//
// For pipelined workloads (Iterations > 1) the same two relaxations bound
// the bottleneck-core busy time, and the pipelined makespan identity
// T_M = (1-1/F)·bottleneck + makespan/F combines them.
type Bounds struct {
	p          *arch.Platform
	iterations int

	cpCycles    int64 // longest path of task cycles (no communication)
	totalCycles int64 // Σ task cycles
	maxCycles   int64 // largest single task
}

// NewBounds precomputes the bound context for g on p. iterations follows
// Options.Iterations semantics (< 1 means 1).
func NewBounds(g *taskgraph.Graph, p *arch.Platform, iterations int) *Bounds {
	if iterations < 1 {
		iterations = 1
	}
	b := &Bounds{p: p, iterations: iterations}
	n := g.N()
	// Longest task-cycle path in (reverse) topological order, O(V+E).
	down := make([]int64, n)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		c := g.Task(t).Cycles
		if c > b.maxCycles {
			b.maxCycles = c
		}
		b.totalCycles += c
		var tail int64
		for _, e := range g.Succs(t) {
			if down[e.To] > tail {
				tail = down[e.To]
			}
		}
		down[t] = c + tail
		if down[t] > b.cpCycles {
			b.cpCycles = down[t]
		}
	}
	return b
}

// TMLowerBound returns an admissible lower bound on the T_M of every
// mapping at the given scaling vector: no schedule — and therefore no
// feasibility probe or mapper search — can beat it. A scaling whose bound
// exceeds the deadline is provably infeasible.
func (b *Bounds) TMLowerBound(scaling []int) (float64, error) {
	if err := b.p.ValidScaling(scaling); err != nil {
		return 0, err
	}
	fastest := 0.0
	var sumHz float64
	for c, s := range scaling {
		f := b.p.MustCoreLevel(c, s).FreqHz()
		sumHz += f
		if f > fastest {
			fastest = f
		}
	}
	work := float64(b.totalCycles) / sumHz
	makespanLB := float64(b.cpCycles) / fastest
	if work > makespanLB {
		makespanLB = work
	}
	if b.iterations <= 1 {
		return makespanLB, nil
	}
	bottleneckLB := float64(b.maxCycles) / fastest
	if work > bottleneckLB {
		bottleneckLB = work
	}
	f := float64(b.iterations)
	return (1-1/f)*bottleneckLB + makespanLB/f, nil
}

// NominalPower returns the scaling vector's full-utilization dynamic power
// (eq. 5 with α ≡ 1) — the exact quantity the step-3 acceptance rule ranks
// feasible scalings by, available without scheduling anything.
func (b *Bounds) NominalPower(scaling []int) (float64, error) {
	return b.p.DynamicPower(scaling, nil)
}
