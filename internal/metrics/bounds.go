package metrics

import (
	"fmt"
	"sort"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// Bounds computes admissible per-scaling lower bounds for the exploration
// engine's branch-and-bound pruning — what the best conceivable mapping
// could achieve at a scaling vector, without running the mapper.
//
// The graph-dependent quantities (critical-path cycles, total work, the
// descending task-size prefix sums of the partition bound) are precomputed
// once in O(V + E + n log n). Per-scaling queries reduce a level histogram —
// one integer count per (symmetry class, level) — in a fixed catalogue
// order, so every bound value is a pure function of the multiset of level
// assignments: bit-identical whatever visit order produced the vector, and
// delta-maintainable in O(changed coefficients) through a Cursor.
//
// Three relaxations make the makespan bound admissible:
//
//   - infinite-core relaxation: every task runs at the fastest frequency of
//     the scaling vector with zero communication (colocating an entire
//     path on one fastest core eliminates its cross-core edges), so the
//     critical path in cycles over that frequency lower-bounds any
//     schedule's makespan;
//   - work conservation: total task cycles cannot drain faster than the
//     aggregate frequency Σ_c f_c;
//   - work partitioning (the load-balance bound): for every j, the j
//     largest tasks occupy at most min(j, cores) cores, which supply at
//     most T · F_j cycles by time T, where F_j is the sum of the j highest
//     core frequencies — so T ≥ max_j S_j / F_j with S_j the descending
//     task-cycle prefix sums. j = 1 recovers the classic largest-task
//     bound; the bound strictly dominates it.
//
// On a platform with an explicit interconnect (arch.Interconnect) a fourth,
// comm-aware term tightens the makespan bound further: a mapping either
// keeps every task on one core — taking at least totalCycles/fastest — or
// spans two and, the graph being weakly connected, forces at least one
// cross-core transfer costing at least one hop latency plus the smallest
// edge's serialization time (contention and extra hops only add). The
// makespan is therefore at least min(total/fastest, max(base, minTransfer)).
// The term is zero — bit-identical bounds to today — when the platform has
// no interconnect, the graph is disconnected, or some edge carries zero
// cycles (a free crossing point). Like every other term it is a pure
// function of the level histogram, so Cursor identity is preserved.
//
// For pipelined workloads (Iterations > 1) the same relaxations bound the
// bottleneck-core busy time (busy_c · f_c is at least the task cycles
// hosted by c, so B · F_j ≥ S_j for the hosts of the j largest tasks), and
// the pipelined makespan identity T_M = (1-1/F)·bottleneck + makespan/F
// combines them.
type Bounds struct {
	p          *arch.Platform
	iterations int

	cpCycles    int64 // longest path of task cycles (no communication)
	totalCycles int64 // Σ task cycles
	maxCycles   int64 // largest single task

	// prefixCycles[j] = sum of the j largest task cycle counts, for
	// j ≤ min(tasks, cores) — the partition bound never needs more terms:
	// beyond n tasks S_j is constant while F_j grows, and beyond C cores
	// no schedule can add capacity.
	prefixCycles []float64

	// Level catalogue: one entry per (symmetry class, level) in fixed
	// class-major order — the single reduction order every per-scaling
	// aggregate (nominal power, Σ f, fastest frequency, partition walk)
	// is summed in.
	class   []int   // per-core symmetry class id
	entryAt [][]int // entryAt[k][s-1] = catalogue index of (class k, level s)
	entries []boundEntry
	byFreq  []int // catalogue indices, frequency descending, index ascending
	cl      float64

	// commXferSec is the comm-aware term's transfer floor: the smallest
	// latency any cross-core transfer can incur on the platform's
	// interconnect (one hop, minimum-size edge, no contention). Zero when
	// the term does not apply; see the type comment.
	commXferSec float64
}

// boundEntry is one (symmetry class, level) operating point of the
// catalogue.
type boundEntry struct {
	hz   float64
	term float64 // f·V² — nominal power is cl · Σ count·term
}

// NewBounds precomputes the bound context for g on p. iterations follows
// Options.Iterations semantics (< 1 means 1).
func NewBounds(g *taskgraph.Graph, p *arch.Platform, iterations int) *Bounds {
	if iterations < 1 {
		iterations = 1
	}
	b := &Bounds{p: p, iterations: iterations, class: p.SymmetryClasses(), cl: p.CL()}
	n := g.N()
	// Longest task-cycle path in (reverse) topological order, O(V+E).
	down := make([]int64, n)
	cycles := make([]int64, n)
	topo := g.TopoOrder()
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		c := g.Task(t).Cycles
		cycles[t] = c
		if c > b.maxCycles {
			b.maxCycles = c
		}
		b.totalCycles += c
		var tail int64
		for _, e := range g.Succs(t) {
			if down[e.To] > tail {
				tail = down[e.To]
			}
		}
		down[t] = c + tail
		if down[t] > b.cpCycles {
			b.cpCycles = down[t]
		}
	}
	// Descending task-size prefix sums for the partition bound.
	sort.Slice(cycles, func(a, c int) bool { return cycles[a] > cycles[c] })
	terms := n
	if cores := p.Cores(); cores < terms {
		terms = cores
	}
	b.prefixCycles = make([]float64, terms+1)
	var sum int64
	for j := 1; j <= terms; j++ {
		sum += cycles[j-1]
		b.prefixCycles[j] = float64(sum)
	}
	// Level catalogue: one row per (class, level), class-major.
	b.entryAt = make([][]int, 0)
	seen := make(map[int]bool)
	for c, k := range b.class {
		if seen[k] {
			continue
		}
		seen[k] = true
		for len(b.entryAt) <= k {
			b.entryAt = append(b.entryAt, nil)
		}
		levels := p.CoreNumLevels(c)
		row := make([]int, levels)
		for s := 1; s <= levels; s++ {
			l := p.MustCoreLevel(c, s)
			row[s-1] = len(b.entries)
			b.entries = append(b.entries, boundEntry{hz: l.FreqHz(), term: l.FreqHz() * l.Vdd * l.Vdd})
		}
		b.entryAt[k] = row
	}
	b.byFreq = make([]int, len(b.entries))
	for i := range b.byFreq {
		b.byFreq[i] = i
	}
	sort.SliceStable(b.byFreq, func(a, c int) bool {
		return b.entries[b.byFreq[a]].hz > b.entries[b.byFreq[c]].hz
	})
	// Comm-aware term precomputation: weak connectivity (union-find over
	// the undirected edge set) and the smallest edge cycle count. Both are
	// needed for the term to be admissible — a disconnected graph can span
	// cores without crossing an edge, and a zero-cycle edge crosses for
	// free.
	if ic := p.Interconnect(); ic != nil && p.Cores() > 1 && n > 1 {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		minEdge := int64(-1)
		for _, e := range g.Edges() {
			if minEdge < 0 || e.Cycles < minEdge {
				minEdge = e.Cycles
			}
			if ra, rb := find(int(e.From)), find(int(e.To)); ra != rb {
				parent[ra] = rb
			}
		}
		connected := true
		for v := 1; v < n; v++ {
			if find(v) != find(0) {
				connected = false
				break
			}
		}
		if connected && minEdge > 0 {
			b.commXferSec = ic.MinTransferSeconds(minEdge)
		}
	}
	return b
}

// histogram counts the (class, level) assignments of a validated scaling
// vector into a fresh catalogue-indexed array.
func (b *Bounds) histogram(scaling []int) ([]int, error) {
	if err := b.p.ValidScaling(scaling); err != nil {
		return nil, err
	}
	cnt := make([]int, len(b.entries))
	for c, s := range scaling {
		cnt[b.entryAt[b.class[c]][s-1]]++
	}
	return cnt, nil
}

// nominalFromHist reduces a level histogram to the vector's nominal power in
// fixed catalogue order.
func (b *Bounds) nominalFromHist(cnt []int) float64 {
	var sum float64
	for i, e := range b.entries {
		if cnt[i] != 0 {
			sum += float64(cnt[i]) * e.term
		}
	}
	return b.cl * sum
}

// tmLowerBoundFromHist reduces a level histogram to the admissible T_M lower
// bound, again in fixed catalogue order.
func (b *Bounds) tmLowerBoundFromHist(cnt []int) float64 {
	var sumHz float64
	for i, e := range b.entries {
		if cnt[i] != 0 {
			sumHz += float64(cnt[i]) * e.hz
		}
	}
	// Partition walk over the present levels, fastest first: F accumulates
	// core frequencies one core at a time, so F after j steps is the j
	// highest frequencies of the vector.
	fastest := 0.0
	partition := 0.0
	terms := len(b.prefixCycles) - 1
	j := 0
	var f float64
	for _, ei := range b.byFreq {
		c := cnt[ei]
		if c == 0 {
			continue
		}
		hz := b.entries[ei].hz
		if fastest == 0 {
			fastest = hz
		}
		for ; c > 0 && j < terms; c-- {
			j++
			f += hz
			if r := b.prefixCycles[j] / f; r > partition {
				partition = r
			}
		}
		if j >= terms {
			break
		}
	}
	work := float64(b.totalCycles) / sumHz
	makespanLB := float64(b.cpCycles) / fastest
	if work > makespanLB {
		makespanLB = work
	}
	if partition > makespanLB {
		makespanLB = partition
	}
	if b.commXferSec > 0 {
		// Comm-aware dichotomy: a single-core mapping serializes all work
		// on the fastest core present; a multi-core mapping still obeys the
		// base bound AND pays at least one minimal transfer. Every base
		// term is ≤ total/fastest, so taking the min against the
		// single-core side can only tighten, never loosen.
		single := float64(b.totalCycles) / fastest
		multi := makespanLB
		if b.commXferSec > multi {
			multi = b.commXferSec
		}
		if single < multi {
			multi = single
		}
		if multi > makespanLB {
			makespanLB = multi
		}
	}
	if b.iterations <= 1 {
		return makespanLB
	}
	bottleneckLB := float64(b.maxCycles) / fastest
	if work > bottleneckLB {
		bottleneckLB = work
	}
	if partition > bottleneckLB {
		bottleneckLB = partition
	}
	f64 := float64(b.iterations)
	return (1-1/f64)*bottleneckLB + makespanLB/f64
}

// TMLowerBound returns an admissible lower bound on the T_M of every
// mapping at the given scaling vector: no schedule — and therefore no
// feasibility probe or mapper search — can beat it. A scaling whose bound
// exceeds the deadline is provably infeasible.
func (b *Bounds) TMLowerBound(scaling []int) (float64, error) {
	cnt, err := b.histogram(scaling)
	if err != nil {
		return 0, err
	}
	return b.tmLowerBoundFromHist(cnt), nil
}

// NominalPower returns the scaling vector's full-utilization dynamic power
// (eq. 5 with α ≡ 1) — the exact quantity the step-3 acceptance rule ranks
// feasible scalings by, available without scheduling anything. The value is
// reduced from the level histogram, so physically equal vectors (any
// permutation within a symmetry class) produce bit-identical power.
func (b *Bounds) NominalPower(scaling []int) (float64, error) {
	cnt, err := b.histogram(scaling)
	if err != nil {
		return 0, err
	}
	return b.nominalFromHist(cnt), nil
}

// Cursor maintains the level histogram of a current scaling vector so the
// bound queries of a combination stream cost O(changed coefficients) float
// work per step instead of O(cores): Advance diffs the next vector against
// the current one and moves only the changed counts; NominalPower and
// TMLowerBound then reduce the histogram in the catalogue's fixed order.
// Because every value is a pure function of the histogram — not of the
// update path — a Cursor's answers are bit-identical to the fresh
// Bounds.TMLowerBound / Bounds.NominalPower calls at the same vector,
// whatever enumeration order (lexicographic, ranked, sampled) drives it.
//
// A Cursor is not safe for concurrent use; the exploration dispatcher owns
// one.
type Cursor struct {
	b       *Bounds
	scaling []int
	cnt     []int
	primed  bool
}

// Cursor returns an unprimed cursor over b; the first Advance (or Reset)
// establishes the initial vector.
func (b *Bounds) Cursor() *Cursor {
	return &Cursor{
		b:       b,
		scaling: make([]int, len(b.class)),
		cnt:     make([]int, len(b.entries)),
	}
}

// Reset establishes scaling as the cursor's current vector, recounting the
// histogram from scratch in O(cores).
func (cu *Cursor) Reset(scaling []int) error {
	if err := cu.b.p.ValidScaling(scaling); err != nil {
		return err
	}
	for i := range cu.cnt {
		cu.cnt[i] = 0
	}
	copy(cu.scaling, scaling)
	for c, s := range cu.scaling {
		cu.cnt[cu.b.entryAt[cu.b.class[c]][s-1]]++
	}
	cu.primed = true
	return nil
}

// Advance moves the cursor to next, updating the histogram only for the
// cores whose coefficient differs from the current vector, and reports how
// many changed. An unprimed cursor treats Advance as Reset. On error the
// cursor is unchanged.
func (cu *Cursor) Advance(next []int) (changed int, err error) {
	if !cu.primed {
		return len(next), cu.Reset(next)
	}
	if len(next) != len(cu.scaling) {
		return 0, fmt.Errorf("metrics: cursor advance with %d entries, platform has %d cores", len(next), len(cu.scaling))
	}
	// Validate the changed coordinates before touching any count, so a bad
	// vector cannot leave a half-applied histogram behind.
	for c, s := range next {
		if s == cu.scaling[c] {
			continue
		}
		if s < 1 || s > len(cu.b.entryAt[cu.b.class[c]]) {
			return 0, fmt.Errorf("metrics: cursor advance: core %d coefficient %d outside [1,%d]", c, s, len(cu.b.entryAt[cu.b.class[c]]))
		}
	}
	for c, s := range next {
		old := cu.scaling[c]
		if s == old {
			continue
		}
		row := cu.b.entryAt[cu.b.class[c]]
		cu.cnt[row[old-1]]--
		cu.cnt[row[s-1]]++
		cu.scaling[c] = s
		changed++
	}
	return changed, nil
}

// NominalPower returns the current vector's nominal power; see
// Bounds.NominalPower.
func (cu *Cursor) NominalPower() float64 { return cu.b.nominalFromHist(cu.cnt) }

// TMLowerBound returns the current vector's admissible T_M lower bound; see
// Bounds.TMLowerBound.
func (cu *Cursor) TMLowerBound() float64 { return cu.b.tmLowerBoundFromHist(cu.cnt) }
