package metrics

import (
	"math"
	"math/rand"
	"testing"

	"seadopt/internal/faults"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// Property: because the cores are identical, permuting the cores of a
// design (mapping and scaling together) changes nothing observable:
// Γ, P, T_M and total R are all invariant.
func TestCorePermutationSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 4)
	p := plat(4)
	opt := Options{Iterations: 1, DeadlineSec: taskgraph.RandomDeadline(30)}
	for trial := 0; trial < 20; trial++ {
		m := sched.RandomMapping(rng, g.N(), 4)
		scaling := []int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		base, err := Evaluate(g, p, m, scaling, ser(), opt)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(4)
		m2 := make(sched.Mapping, g.N())
		for i, c := range m {
			m2[i] = perm[c]
		}
		s2 := make([]int, 4)
		for c, sc := range scaling {
			s2[perm[c]] = sc
		}
		got, err := Evaluate(g, p, m2, s2, ser(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !close2(got.Gamma, base.Gamma) || !close2(got.PowerW, base.PowerW) ||
			!close2(got.TMSeconds, base.TMSeconds) || got.TotalRegBits != base.TotalRegBits {
			t.Fatalf("trial %d: permutation changed metrics:\n base %v\n perm %v", trial, base, got)
		}
	}
}

// Property: Γ is exactly linear in the base soft error rate.
func TestGammaLinearInSER(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.RoundRobin(g.N(), 4)
	scaling := []int{2, 2, 3, 2}
	opt := Options{Iterations: taskgraph.MPEG2Frames}
	base, err := Evaluate(g, p, m, scaling, faults.NewSERModel(1e-9), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.1, 2, 10, 100} {
		ev, err := Evaluate(g, p, m, scaling, faults.NewSERModel(1e-9*k), opt)
		if err != nil {
			t.Fatal(err)
		}
		if !close2(ev.Gamma, base.Gamma*k) {
			t.Errorf("SER x%v: Γ = %v, want %v", k, ev.Gamma, base.Gamma*k)
		}
		// Everything else is SER-independent.
		if !close2(ev.PowerW, base.PowerW) || !close2(ev.TMSeconds, base.TMSeconds) {
			t.Errorf("SER x%v changed power or timing", k)
		}
	}
}

// Property: scaling any single core down (higher s) never decreases T_M and
// never increases power at full utilization semantics; Γ never decreases.
func TestMonotoneInPerCoreScaling(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.RoundRobin(g.N(), 4)
	opt := Options{Iterations: taskgraph.MPEG2Frames}
	for core := 0; core < 4; core++ {
		var last *Evaluation
		for s := 1; s <= 3; s++ {
			scaling := []int{1, 1, 1, 1}
			scaling[core] = s
			ev, err := Evaluate(g, p, m, scaling, ser(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if last != nil {
				if ev.TMSeconds < last.TMSeconds-1e-12 {
					t.Errorf("core %d s=%d: T_M decreased (%v -> %v)", core, s, last.TMSeconds, ev.TMSeconds)
				}
				if ev.Gamma < last.Gamma*(1-1e-9) {
					t.Errorf("core %d s=%d: Γ decreased (%v -> %v)", core, s, last.Gamma, ev.Gamma)
				}
			}
			last = ev
		}
	}
}

// Property: adding an idle core to the platform leaves every metric of the
// same mapping unchanged (idle cores consume no power and expose no state).
func TestIdleCoreNeutrality(t *testing.T) {
	g := taskgraph.Fig8()
	m := sched.Mapping{0, 1, 0, 1, 0, 1}
	opt := Options{Iterations: 1}
	ev2, err := Evaluate(g, plat(2), m, []int{1, 2}, ser(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ev4, err := Evaluate(g, plat(4), m, []int{1, 2, 3, 3}, ser(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !close2(ev2.Gamma, ev4.Gamma) || !close2(ev2.PowerW, ev4.PowerW) ||
		!close2(ev2.TMSeconds, ev4.TMSeconds) {
		t.Errorf("idle cores changed metrics:\n 2-core %v\n 4-core %v", ev2, ev4)
	}
}

func close2(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
