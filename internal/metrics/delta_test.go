package metrics

// Property tests for the incremental machinery behind branch-and-bound
// dispatch: the histogram Cursor and Evaluator.EvaluateDelta must be
// bit-identical to their from-scratch counterparts on every path — that is
// what lets the explore engine use them without weakening its
// byte-identical-to-exhaustive guarantee.

import (
	"fmt"
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// deltaPlat is a 10-core three-table platform: enough symmetry classes that
// histogram bookkeeping is non-trivial, small enough for long random walks.
func deltaPlat(t testing.TB) *arch.Platform {
	t.Helper()
	types := []arch.ProcType{
		{Name: "fast4", Levels: arch.ARM7Levels4()},
		{Name: "arm7", Levels: arch.ARM7Levels3()},
		{Name: "low2", Levels: arch.ARM7Levels2()},
	}
	coreTypes := []int{0, 0, 0, 1, 1, 1, 1, 2, 2, 2}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// deltaNoCPlat is deltaPlat behind a contended 2D-mesh NoC: link bandwidth
// low enough that transfer times rival task durations (§V costs are
// multiples of 3.5e6 cycles, so edges carry ~1e8–1e9 bits), making the
// interconnect path of scheduler, evaluator and bounds load-bearing in the
// walks below.
func deltaNoCPlat(t testing.TB) *arch.Platform {
	t.Helper()
	types := []arch.ProcType{
		{Name: "fast4", Levels: arch.ARM7Levels4()},
		{Name: "arm7", Levels: arch.ARM7Levels3()},
		{Name: "low2", Levels: arch.ARM7Levels2()},
	}
	coreTypes := []int{0, 0, 0, 1, 1, 1, 1, 2, 2, 2}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes, arch.WithInterconnect(arch.Interconnect{
		Topology:      arch.TopologyMesh,
		BandwidthBps:  4e9,
		HopLatencySec: 1e-4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// deltaPlatforms pairs the ideal and contended-NoC variants every
// incremental-machinery property below must hold on.
func deltaPlatforms(t testing.TB) map[string]*arch.Platform {
	return map[string]*arch.Platform{"ideal": deltaPlat(t), "noc": deltaNoCPlat(t)}
}

// randScaling draws a uniformly random valid (not necessarily canonical)
// scaling vector for p.
func randScaling(rng *rand.Rand, p *arch.Platform) []int {
	s := make([]int, p.Cores())
	for c := range s {
		s[c] = 1 + rng.Intn(p.CoreNumLevels(c))
	}
	return s
}

// TestCursorMatchesFreshBounds drives a Cursor down a random walk of
// scaling vectors — single-core nudges, multi-core jumps, occasional
// Resets — and demands bit-equality with fresh Bounds queries at every
// step. This is the property that lets the dispatcher's O(changed) bound
// probe replace the O(cores) recomputation without perturbing one pruning
// decision.
func TestCursorMatchesFreshBounds(t *testing.T) {
	for name, p := range deltaPlatforms(t) {
		t.Run(name, func(t *testing.T) { testCursorMatchesFreshBounds(t, p) })
	}
}

func testCursorMatchesFreshBounds(t *testing.T, p *arch.Platform) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 9)
	b := NewBounds(g, p, 3)
	cu := b.Cursor()
	rng := rand.New(rand.NewSource(42))

	cur := randScaling(rng, p)
	if _, err := cu.Advance(cur); err != nil { // unprimed Advance = Reset
		t.Fatal(err)
	}
	for step := 0; step < 500; step++ {
		switch rng.Intn(4) {
		case 0: // single-core nudge
			c := rng.Intn(p.Cores())
			cur[c] = 1 + rng.Intn(p.CoreNumLevels(c))
		case 1: // multi-core jump
			for i := 0; i < 3; i++ {
				c := rng.Intn(p.Cores())
				cur[c] = 1 + rng.Intn(p.CoreNumLevels(c))
			}
		case 2: // full redraw
			cur = randScaling(rng, p)
		case 3: // no-op advance (changed = 0)
		}
		if rng.Intn(20) == 0 {
			if err := cu.Reset(cur); err != nil {
				t.Fatal(err)
			}
		} else if _, err := cu.Advance(cur); err != nil {
			t.Fatal(err)
		}
		wantTM, err := b.TMLowerBound(cur)
		if err != nil {
			t.Fatal(err)
		}
		wantNom, err := b.NominalPower(cur)
		if err != nil {
			t.Fatal(err)
		}
		if got := cu.TMLowerBound(); got != wantTM {
			t.Fatalf("step %d %v: cursor TM bound %x, fresh %x", step, cur, got, wantTM)
		}
		if got := cu.NominalPower(); got != wantNom {
			t.Fatalf("step %d %v: cursor nominal %x, fresh %x", step, cur, got, wantNom)
		}
		// The histogram nominal must also be bit-identical to the
		// platform's full-utilization dynamic power — the quantity the
		// acceptance rule and the Pareto tests recompute independently.
		if got := cu.NominalPower(); got != mustDynamic(t, p, cur) {
			t.Fatalf("step %d %v: cursor nominal %x, DynamicPower %x", step, cur, got, mustDynamic(t, p, cur))
		}
	}

	// A rejected Advance must leave the cursor unchanged.
	before := cu.NominalPower()
	bad := append([]int(nil), cur...)
	bad[0] = 99
	if _, err := cu.Advance(bad); err == nil {
		t.Fatal("cursor accepted an out-of-range coefficient")
	}
	if got := cu.NominalPower(); got != before {
		t.Fatalf("failed Advance moved the cursor: %x != %x", got, before)
	}
}

func mustDynamic(t *testing.T, p *arch.Platform, scaling []int) float64 {
	t.Helper()
	w, err := p.DynamicPower(scaling, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// evalFingerprint renders every analytic field of an Evaluation with %x so
// last-bit float differences fail the comparison.
func evalFingerprint(ev *Evaluation) string {
	s := fmt.Sprintf("R=%d mk=%x tm=%x tmc=%x P=%x G=%x meets=%v",
		ev.TotalRegBits, ev.MakespanSec, ev.TMSeconds, ev.TMCycles,
		ev.PowerW, ev.Gamma, ev.MeetsDeadline)
	for _, cm := range ev.PerCore {
		s += fmt.Sprintf("|c%d r%d b%d cy%d bs%x ex%x lps%x l%x g%x u%x",
			cm.Core, cm.RegBits, cm.BaselineBits, cm.BusyCycles, cm.BusySec,
			cm.ExposureSec, cm.LambdaPerSec, cm.Lambda, cm.Gamma, cm.Utilization)
	}
	return s
}

// TestEvaluateDeltaMatchesFull walks two evaluators down the same random
// scaling sequence — one moving by EvaluateDelta, one by full Bind +
// Evaluate — and demands bit-identical Evaluations at every step, across
// both delta paths (idle-core patching and the re-schedule with profile
// reuse). The mapping leaves two cores idle so the fast path actually
// triggers.
func TestEvaluateDeltaMatchesFull(t *testing.T) {
	for name, p := range deltaPlatforms(t) {
		t.Run(name, func(t *testing.T) { testEvaluateDeltaMatchesFull(t, p) })
	}
}

func testEvaluateDeltaMatchesFull(t *testing.T, p *arch.Platform) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 9)
	opt := Options{Iterations: 3, DeadlineSec: taskgraph.RandomDeadline(30)}
	ser := faults.NewSERModel(faults.DefaultSER)

	newEval := func() *Evaluator {
		e, err := NewEvaluator(g, p, ser, opt)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	delta, full := newEval(), newEval()
	m := sched.RoundRobin(g.N(), p.Cores()-2) // cores 8 and 9 stay idle
	rng := rand.New(rand.NewSource(7))

	cur := randScaling(rng, p)
	if err := delta.Bind(cur); err != nil {
		t.Fatal(err)
	}
	if _, err := delta.Evaluate(m); err != nil {
		t.Fatal(err)
	}
	idlePathSeen := false
	for step := 0; step < 200; step++ {
		next := append([]int(nil), cur...)
		switch rng.Intn(3) {
		case 0: // loaded core: the re-schedule path
			c := rng.Intn(p.Cores() - 2)
			next[c] = 1 + rng.Intn(p.CoreNumLevels(c))
		case 1: // idle cores only: the O(changed) patch path
			for _, c := range []int{8, 9} {
				next[c] = 1 + rng.Intn(p.CoreNumLevels(c))
			}
			if next[8] != cur[8] || next[9] != cur[9] {
				idlePathSeen = true
			}
		case 2: // mixed jump
			for i := 0; i < 3; i++ {
				c := rng.Intn(p.Cores())
				next[c] = 1 + rng.Intn(p.CoreNumLevels(c))
			}
		}
		dev, err := delta.EvaluateDelta(cur, next)
		if err != nil {
			t.Fatalf("step %d: delta %v -> %v: %v", step, cur, next, err)
		}
		if err := full.Bind(next); err != nil {
			t.Fatal(err)
		}
		fev, err := full.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		if d, f := evalFingerprint(dev), evalFingerprint(fev); d != f {
			t.Fatalf("step %d %v -> %v: evaluations diverged\n  delta: %s\n  full:  %s",
				step, cur, next, d, f)
		}
		cur = next
	}
	if !idlePathSeen {
		t.Fatal("walk never exercised the idle-core fast path")
	}

	// A stale prev is an error, and the failed call must not move the
	// evaluator: the next correctly-named move still matches.
	stale := append([]int(nil), cur...)
	stale[0] = cur[0]%p.CoreNumLevels(0) + 1
	if stale[0] == cur[0] {
		t.Fatal("bad test setup: stale == cur")
	}
	if _, err := delta.EvaluateDelta(stale, cur); err == nil {
		t.Fatal("EvaluateDelta accepted a stale prev vector")
	}
	next := append([]int(nil), cur...)
	next[0] = stale[0]
	dev, err := delta.EvaluateDelta(cur, next)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Bind(next); err != nil {
		t.Fatal(err)
	}
	fev, err := full.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if d, f := evalFingerprint(dev), evalFingerprint(fev); d != f {
		t.Fatalf("post-error move diverged\n  delta: %s\n  full:  %s", d, f)
	}
}

// TestEvaluateDeltaRequiresEvaluate: the delta form re-evaluates "the
// mapping of the most recent Evaluate call", so calling it before any
// Evaluate is a contract error, not a crash.
func TestEvaluateDeltaRequiresEvaluate(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(10), 1)
	p := deltaPlat(t)
	e, err := NewEvaluator(g, p, faults.NewSERModel(faults.DefaultSER), Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := p.MinPowerScaling()
	if _, err := e.EvaluateDelta(s, s); err == nil {
		t.Fatal("EvaluateDelta before Bind/Evaluate did not error")
	}
	if err := e.Bind(s); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvaluateDelta(s, s); err == nil {
		t.Fatal("EvaluateDelta before the first Evaluate did not error")
	}
}
