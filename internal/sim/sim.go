// Package sim executes a mapped application on a cycle-level MPSoC model
// built on the desim discrete-event kernel — the stand-in for the paper's
// SystemC cycle-accurate simulation (§II-B).
//
// Each processing core is an engine clocked at its own DVS operating point.
// Inter-core tokens ride the platform's interconnect when one is declared:
// the same cut-through channel-reservation model as sched — a transfer
// holds every link of its XY (or bus) path, staggered by the hop latency,
// and contending transfers queue deterministically — carried out here in
// integer femtoseconds on the event kernel. Without an interconnect the
// ideal fabric applies: dedicated point-to-point links deliver each token
// with the edge's communication cycles at the slower endpoint's clock. The
// dispatch policy is identical to sched.ListSchedule — event-driven list
// scheduling by b-level — so for a single iteration the measured makespan
// equals the analytic one to clock-quantization error; this cross-validates
// kernel and scheduler against each other on both fabrics.
//
// Streaming workloads (the MPEG-2 decoder over its 437-frame bitstream) are
// simulated as a software pipeline: Config.Iterations splits every task and
// edge cost evenly across iterations, instance (t, k) depends on its graph
// predecessors of iteration k and on instance (t, k−1).
//
// The simulator's second product is the register liveness trace consumed by
// the fault injector, in two fidelities:
//
//   - ExposureConservative (paper model): every register allocated on a core
//     and the core's baseline storage hold live state for the whole run.
//   - ExposureLifetime (refinement/ablation): a register copy is live from
//     the start of its first using task to the end of its last; baseline
//     storage is live only while the core executes.
package sim

import (
	"fmt"
	"sort"

	"seadopt/internal/arch"
	"seadopt/internal/desim"
	"seadopt/internal/faults"
	"seadopt/internal/registers"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// ExposureMode selects the liveness fidelity of the trace.
type ExposureMode int

const (
	// ExposureConservative matches the paper's eq. (3): allocated register
	// state persists for the whole multiprocessor execution.
	ExposureConservative ExposureMode = iota
	// ExposureLifetime tightens each register copy to its first-use..last-use
	// window (an ablation of the conservative model).
	ExposureLifetime
)

// String implements fmt.Stringer.
func (m ExposureMode) String() string {
	switch m {
	case ExposureConservative:
		return "conservative"
	case ExposureLifetime:
		return "lifetime"
	default:
		return fmt.Sprintf("ExposureMode(%d)", int(m))
	}
}

// Config tunes a simulation run.
type Config struct {
	// Iterations splits the task costs into a software pipeline of this many
	// stream iterations; 1 (or 0) simulates the plain DAG.
	Iterations int
}

// TaskEvent records one executed task instance.
type TaskEvent struct {
	Task      taskgraph.TaskID
	Iteration int
	Core      int
	Start     desim.Time
	End       desim.Time
}

// Result carries everything a simulation produced.
type Result struct {
	Graph   *taskgraph.Graph
	Mapping sched.Mapping
	Scaling []int

	MakespanSec float64
	Events      []TaskEvent
	coreBusyFs  []desim.Time // summed execution time per core
	periods     []desim.Time // clock period per core
	freqHz      []float64
	vdd         []float64
	platform    *arch.Platform
	kernel      *desim.Kernel
}

// instance identifies one (task, iteration) execution.
type instance struct {
	task taskgraph.TaskID
	iter int
}

// Run simulates g mapped by m at the given scaling on platform p.
func Run(g *taskgraph.Graph, p *arch.Platform, m sched.Mapping, scaling []int, cfg Config) (*Result, error) {
	if err := m.Validate(g, p.Cores()); err != nil {
		return nil, err
	}
	if err := p.ValidScaling(scaling); err != nil {
		return nil, err
	}
	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}

	n := g.N()
	k := desim.NewKernel()
	res := &Result{
		Graph:      g,
		Mapping:    m.Clone(),
		Scaling:    append([]int(nil), scaling...),
		coreBusyFs: make([]desim.Time, p.Cores()),
		periods:    make([]desim.Time, p.Cores()),
		freqHz:     make([]float64, p.Cores()),
		vdd:        make([]float64, p.Cores()),
		platform:   p,
		kernel:     k,
	}
	for c, s := range scaling {
		level := p.MustCoreLevel(c, s)
		res.periods[c] = desim.PeriodOf(level.FreqHz())
		res.freqHz[c] = level.FreqHz()
		res.vdd[c] = level.Vdd
	}

	bl := g.BLevels()

	// Interconnect state: per-link clear times for the cut-through
	// reservation model, mirroring sched.Scheduler.transferArrival in
	// integer femtoseconds.
	icn := p.Interconnect()
	var (
		linkBusy []desim.Time
		pathBuf  []int
		hopFs    desim.Time
	)
	if icn != nil {
		linkBusy = make([]desim.Time, icn.NumLinks())
		hopFs = desim.FromSeconds(icn.HopLatencySec)
	}

	// Per-instance bookkeeping. Instance (t, k) waits on its graph
	// predecessors of iteration k plus, for k > 0, instance (t, k−1).
	idx := func(in instance) int { return in.iter*n + int(in.task) }
	remaining := make([]int, n*iters)
	for it := 0; it < iters; it++ {
		for t := 0; t < n; t++ {
			deps := len(g.Preds(taskgraph.TaskID(t)))
			if it > 0 {
				deps++
			}
			remaining[it*n+t] = deps
		}
	}

	// Cost splitting: iteration k of a cost C gets C/iters cycles, with the
	// first C%iters iterations taking one extra cycle, so Σ = C exactly.
	share := func(total int64, it int) int64 {
		base := total / int64(iters)
		if int64(it) < total%int64(iters) {
			base++
		}
		return base
	}

	type coreEngine struct {
		busy bool
		pool []instance
	}
	engines := make([]coreEngine, p.Cores())

	// Dispatch is deferred with a zero-delay event so that every state
	// change at the current timestamp (completions, token arrivals) is
	// visible before a core picks its next task — the same-time batching
	// semantics of sched.ListSchedule.
	var dispatch func(core int)
	deferDispatch := func(core int) { _ = k.After(0, func() { dispatch(core) }) }

	onFinish := func(in instance, core int) {
		// Successor tokens: same-core (or zero-cost) dependencies release
		// immediately; cross-core tokens ride the dedicated link for the
		// edge's share of communication cycles at the slower clock.
		release := func(target instance) {
			i := idx(target)
			remaining[i]--
			if remaining[i] == 0 {
				tc := res.Mapping[target.task]
				engines[tc].pool = append(engines[tc].pool, target)
				deferDispatch(tc)
			}
		}
		for _, e := range g.Succs(in.task) {
			target := instance{e.To, in.iter}
			commCycles := share(e.Cycles, in.iter)
			if res.Mapping[e.To] == core || commCycles == 0 {
				release(target)
				continue
			}
			tgt := target
			if icn != nil {
				// Reserve the XY/bus path: the transfer starts when every
				// link is clear of earlier traffic at its stagger offset,
				// then holds each link for the serialization time.
				serFs := desim.FromSeconds(icn.MessageBits(commCycles) / icn.BandwidthBps)
				pathBuf = icn.PathLinks(core, res.Mapping[e.To], pathBuf[:0])
				start := k.Now()
				for i, l := range pathBuf {
					if t := linkBusy[l] - desim.Time(i)*hopFs; t > start {
						start = t
					}
				}
				for i, l := range pathBuf {
					linkBusy[l] = start + desim.Time(i)*hopFs + serFs
				}
				arrive := start + desim.Time(len(pathBuf))*hopFs + serFs
				// After from inside an event cannot fail: delay >= 0, fn != nil.
				_ = k.After(arrive-k.Now(), func() { release(tgt) })
				continue
			}
			slow := res.periods[core]
			if pd := res.periods[res.Mapping[e.To]]; pd > slow {
				slow = pd
			}
			delay := desim.Time(commCycles) * slow
			// After from inside an event cannot fail: delay >= 0, fn != nil.
			_ = k.After(delay, func() { release(tgt) })
		}
		if in.iter+1 < iters {
			release(instance{in.task, in.iter + 1})
		}
	}

	dispatch = func(core int) {
		eng := &engines[core]
		if eng.busy || len(eng.pool) == 0 {
			return
		}
		best := 0
		for i := 1; i < len(eng.pool); i++ {
			a, b := eng.pool[i], eng.pool[best]
			// Oldest iteration first (software pipelines drain the oldest
			// frame before advancing), then highest b-level, then lowest
			// TaskID. For a single iteration this is exactly the
			// sched.ListSchedule policy.
			switch {
			case a.iter != b.iter:
				if a.iter < b.iter {
					best = i
				}
			case bl[a.task] != bl[b.task]:
				if bl[a.task] > bl[b.task] {
					best = i
				}
			case a.task < b.task:
				best = i
			}
		}
		in := eng.pool[best]
		eng.pool = append(eng.pool[:best], eng.pool[best+1:]...)
		eng.busy = true
		cycles := share(g.Task(in.task).Cycles, in.iter)
		dur := desim.Time(cycles) * res.periods[core]
		start := k.Now()
		res.coreBusyFs[core] += dur
		_ = k.After(dur, func() {
			res.Events = append(res.Events, TaskEvent{
				Task: in.task, Iteration: in.iter, Core: core,
				Start: start, End: k.Now(),
			})
			eng.busy = false
			onFinish(in, core)
			deferDispatch(core)
		})
	}

	// Seed iteration 0 roots.
	for t := 0; t < n; t++ {
		if remaining[t] == 0 {
			engines[m[t]].pool = append(engines[m[t]].pool, instance{taskgraph.TaskID(t), 0})
		}
	}
	for c := range engines {
		dispatch(c)
	}

	end := k.Run()
	if len(res.Events) != n*iters {
		return nil, fmt.Errorf("sim: deadlock — %d of %d task instances executed", len(res.Events), n*iters)
	}
	res.MakespanSec = end.Seconds()
	return res, nil
}

// EventsFired exposes the kernel's event count (simulation effort metric).
func (r *Result) EventsFired() uint64 { return r.kernel.EventsFired() }

// CoreBusySeconds returns the summed execution time of core c.
func (r *Result) CoreBusySeconds(c int) float64 { return r.coreBusyFs[c].Seconds() }

// Utilization returns per-core busy fraction of the measured makespan.
func (r *Result) Utilization() []float64 {
	out := make([]float64, len(r.coreBusyFs))
	if r.MakespanSec <= 0 {
		return out
	}
	for c, b := range r.coreBusyFs {
		out[c] = b.Seconds() / r.MakespanSec
	}
	return out
}

// localCycles converts a femtosecond duration to core-local clock cycles.
func (r *Result) localCycles(c int, d desim.Time) int64 {
	if r.periods[c] <= 0 {
		return 0
	}
	return int64(d) / int64(r.periods[c])
}

// BaselineLabel is the exposure label of a core's baseline storage.
const BaselineLabel = "baseline"

// Liveness builds the register liveness trace of the run at the requested
// fidelity. Timestamps are in each owning core's local clock cycles.
func (r *Result) Liveness(mode ExposureMode) (*registers.Liveness, error) {
	lv := registers.NewLiveness()
	horizon := desim.FromSeconds(r.MakespanSec)
	usedCores := make(map[int]bool)
	for _, c := range r.Mapping {
		usedCores[c] = true
	}
	switch mode {
	case ExposureConservative:
		coreTasks := r.Mapping.CoreTasks(len(r.coreBusyFs))
		for c, tasks := range coreTasks {
			if len(tasks) == 0 {
				continue
			}
			end := r.localCycles(c, horizon)
			if end <= 0 {
				continue
			}
			set := r.Graph.UnionRegisters(tasks)
			for _, reg := range set.IDs() {
				if err := lv.MarkLive(c, reg, 0, end); err != nil {
					return nil, err
				}
			}
		}
	case ExposureLifetime:
		// First-use .. last-use per (core, register); baseline per busy slot.
		type key struct {
			core int
			reg  string
		}
		first := make(map[key]desim.Time)
		last := make(map[key]desim.Time)
		for _, ev := range r.Events {
			for reg := range r.Graph.Task(ev.Task).Registers {
				kk := key{ev.Core, reg}
				if cur, ok := first[kk]; !ok || ev.Start < cur {
					first[kk] = ev.Start
				}
				if cur, ok := last[kk]; !ok || ev.End > cur {
					last[kk] = ev.End
				}
			}
		}
		for kk, s := range first {
			e := last[kk]
			startCyc := r.localCycles(kk.core, s)
			endCyc := r.localCycles(kk.core, e)
			if endCyc <= startCyc {
				endCyc = startCyc + 1
			}
			if err := lv.MarkLive(kk.core, kk.reg, startCyc, endCyc); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("sim: unknown exposure mode %v", mode)
	}
	return lv, nil
}

// baselineItems returns the baseline-storage exposure per used core.
func (r *Result) baselineItems(mode ExposureMode) []faults.ExposureItem {
	var items []faults.ExposureItem
	bits := r.platform.BaselineBits()
	if bits == 0 {
		return nil
	}
	horizon := desim.FromSeconds(r.MakespanSec)
	used := make(map[int]bool)
	for _, c := range r.Mapping {
		used[c] = true
	}
	cores := make([]int, 0, len(used))
	for c := range used {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		var cyc int64
		if mode == ExposureConservative {
			cyc = r.localCycles(c, horizon)
		} else {
			cyc = r.localCycles(c, r.coreBusyFs[c])
		}
		if cyc > 0 {
			items = append(items, faults.ExposureItem{Core: c, Label: BaselineLabel, Bits: bits, Cycles: cyc})
		}
	}
	return items
}

// Campaign assembles the fault-injection campaign for the run: exposure
// items from the liveness trace plus baseline storage, per-core λ at each
// core's own (V_dd, f), and the raw injection domain (full register space
// over the whole run).
func (r *Result) Campaign(ser faults.SERModel, mode ExposureMode) (*faults.Campaign, error) {
	if err := ser.Validate(); err != nil {
		return nil, err
	}
	lv, err := r.Liveness(mode)
	if err != nil {
		return nil, err
	}
	inv := r.Graph.Inventory()
	c := &faults.Campaign{
		Lambda:        make([]float64, len(r.periods)),
		SpaceBits:     make([]int64, len(r.periods)),
		HorizonCycles: make([]int64, len(r.periods)),
	}
	horizon := desim.FromSeconds(r.MakespanSec)
	for core := range r.periods {
		c.Lambda[core] = ser.RatePerCycle(r.vdd[core], r.freqHz[core])
		c.HorizonCycles[core] = r.localCycles(core, horizon)
	}
	coreTasks := r.Mapping.CoreTasks(len(r.periods))
	for core, tasks := range coreTasks {
		if len(tasks) == 0 {
			continue
		}
		set := r.Graph.UnionRegisters(tasks)
		c.SpaceBits[core] = inv.SetBits(set) + r.platform.BaselineBits()
		for _, reg := range set.IDs() {
			cycles := lv.LiveCycles(core, reg)
			if cycles > 0 {
				c.Items = append(c.Items, faults.ExposureItem{
					Core: core, Label: reg, Bits: inv.Bits(reg), Cycles: cycles,
				})
			}
		}
	}
	c.Items = append(c.Items, r.baselineItems(mode)...)
	return c, nil
}

// MeasureGamma runs a fault-injection campaign over the simulated trace and
// returns the measured number of SEUs experienced plus its analytic
// expectation.
func (r *Result) MeasureGamma(ser faults.SERModel, mode ExposureMode, seed int64) (measured int64, expected float64, err error) {
	c, err := r.Campaign(ser, mode)
	if err != nil {
		return 0, 0, err
	}
	res, err := c.Run(newRand(seed))
	if err != nil {
		return 0, 0, err
	}
	return res.TotalExperienced(), res.TotalExpected(), nil
}

// PressureProfile returns each core's register pressure over time: the
// average live bits in each of nBuckets equal windows of the run, under the
// given exposure fidelity. Rows are indexed by core.
func (r *Result) PressureProfile(mode ExposureMode, nBuckets int) ([][]float64, error) {
	lv, err := r.Liveness(mode)
	if err != nil {
		return nil, err
	}
	inv := r.Graph.Inventory()
	horizon := desim.FromSeconds(r.MakespanSec)
	out := make([][]float64, len(r.periods))
	for c := range r.periods {
		out[c] = lv.Profile(inv, c, r.localCycles(c, horizon), nBuckets)
		if out[c] == nil {
			out[c] = make([]float64, nBuckets)
		}
	}
	return out, nil
}
