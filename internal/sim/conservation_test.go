package sim

import (
	"math"
	"math/rand"
	"testing"

	"seadopt/internal/desim"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// Property: the pipelined simulator conserves work exactly — for any
// iteration split, the summed busy time per core equals the single-shot
// busy time (cost sharding adds no cycles), and every instance runs once.
func TestWorkConservationAcrossIterations(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.Mapping{0, 0, 0, 1, 1, 1, 2, 2, 3, 3, 3}
	scaling := []int{2, 1, 3, 2}

	ref, err := Run(g, p, m, scaling, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, iters := range []int{2, 7, 19, 437} {
		r, err := Run(g, p, m, scaling, Config{Iterations: iters})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Events) != g.N()*iters {
			t.Fatalf("iters=%d: %d events, want %d", iters, len(r.Events), g.N()*iters)
		}
		for c := 0; c < 4; c++ {
			if d := math.Abs(r.CoreBusySeconds(c) - ref.CoreBusySeconds(c)); d > 1e-9 {
				t.Errorf("iters=%d core %d: busy %v != single-shot %v",
					iters, c, r.CoreBusySeconds(c), ref.CoreBusySeconds(c))
			}
		}
		// Each (task, iteration) instance appears exactly once, on the
		// mapped core.
		seen := make(map[[2]int]bool)
		for _, ev := range r.Events {
			key := [2]int{int(ev.Task), ev.Iteration}
			if seen[key] {
				t.Fatalf("iters=%d: duplicate instance %v", iters, key)
			}
			seen[key] = true
			if ev.Core != m[ev.Task] {
				t.Fatalf("iters=%d: instance %v ran on core %d, mapped to %d",
					iters, key, ev.Core, m[ev.Task])
			}
			if ev.End <= ev.Start {
				t.Fatalf("iters=%d: empty execution window %v", iters, key)
			}
		}
	}
}

// Property: simulation is fully deterministic — two runs produce identical
// event streams.
func TestSimDeterminism(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 9)
	p := plat(3)
	rng := rand.New(rand.NewSource(2))
	m := sched.RandomMapping(rng, g.N(), 3)
	scaling := []int{1, 2, 3}
	a, err := Run(g, p, m, scaling, Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, p, m, scaling, Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanSec != b.MakespanSec || len(a.Events) != len(b.Events) {
		t.Fatal("nondeterministic simulation")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// Property: per-iteration ordering — instance (t, k+1) never starts before
// instance (t, k) finishes (the pipeline's same-task serialization).
func TestIterationOrdering(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	m := sched.Mapping{0, 1, 0, 1, 2, 2}
	r, err := Run(g, p, m, []int{1, 2, 2}, Config{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	end := make(map[[2]int]desim.Time)
	start := make(map[[2]int]desim.Time)
	for _, ev := range r.Events {
		key := [2]int{int(ev.Task), ev.Iteration}
		end[key] = ev.End
		start[key] = ev.Start
	}
	for t2 := 0; t2 < g.N(); t2++ {
		for k := 1; k < 5; k++ {
			if start[[2]int{t2, k}] < end[[2]int{t2, k - 1}] {
				t.Errorf("task %d: iteration %d starts before %d finishes", t2, k, k-1)
			}
		}
	}
}

// Cost sharding: iteration shares sum exactly to the task cost even when
// the split is uneven.
func TestCostShardingExact(t *testing.T) {
	g := taskgraph.Fig8() // costs are multiples of 600k cycles
	p := plat(1)
	m := sched.NewMapping(g.N())
	const iters = 7 // does not divide 600k·{4,5,6} evenly in general
	r, err := Run(g, p, m, []int{1}, Config{Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	period := desim.PeriodOf(p.MustLevel(1).FreqHz())
	perTask := make(map[int]desim.Time)
	for _, ev := range r.Events {
		perTask[int(ev.Task)] += ev.End - ev.Start
	}
	for t2 := 0; t2 < g.N(); t2++ {
		want := desim.Time(g.Task(taskgraph.TaskID(t2)).Cycles) * period
		if perTask[t2] != want {
			t.Errorf("task %d: summed execution %v, want %v", t2, perTask[t2], want)
		}
	}
}
