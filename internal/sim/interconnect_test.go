package sim

import (
	"math"
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// fabricPlat builds an ARM7 platform behind the given interconnect.
func fabricPlat(t *testing.T, cores int, ic arch.Interconnect) *arch.Platform {
	t.Helper()
	p, err := arch.NewPlatform(cores, arch.ARM7Levels3(), arch.WithInterconnect(ic))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSimMatchesListScheduleOnFabrics is TestSimMatchesListSchedule under
// contended interconnects: the kernel carries the same cut-through channel
// reservation in integer femtoseconds, so makespans must still agree to
// clock-quantization error — including every queuing delay.
func TestSimMatchesListScheduleOnFabrics(t *testing.T) {
	fabrics := map[string]arch.Interconnect{
		"bus":  {Topology: arch.TopologyBus, BandwidthBps: 4e9, HopLatencySec: 1e-4},
		"mesh": {Topology: arch.TopologyMesh, BandwidthBps: 4e9, HopLatencySec: 1e-4},
	}
	graphs := []*taskgraph.Graph{
		taskgraph.MPEG2(),
		taskgraph.Fig8(),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 5),
	}
	for name, ic := range fabrics {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			contended := false
			for _, g := range graphs {
				for trial := 0; trial < 8; trial++ {
					cores := 2 + rng.Intn(4)
					p := fabricPlat(t, cores, ic)
					m := sched.RandomMapping(rng, g.N(), cores)
					scaling := make([]int, cores)
					for i := range scaling {
						scaling[i] = 1 + rng.Intn(3)
					}
					s, err := sched.ListSchedule(g, p, m, scaling)
					if err != nil {
						t.Fatal(err)
					}
					r, err := Run(g, p, m, scaling, Config{Iterations: 1})
					if err != nil {
						t.Fatal(err)
					}
					rel := math.Abs(r.MakespanSec-s.MakespanSeconds()) / s.MakespanSeconds()
					if rel > 1e-9 {
						t.Errorf("%s trial %d: sim makespan %.12f != sched %.12f (rel %v)",
							g.Name(), trial, r.MakespanSec, s.MakespanSeconds(), rel)
					}
					// The fabric must actually bite somewhere: at least one
					// trial's makespan exceeds the ideal-fabric run of the
					// same mapping.
					ideal, err := sched.ListSchedule(g, plat(cores), m, scaling)
					if err != nil {
						t.Fatal(err)
					}
					if s.MakespanSeconds() != ideal.MakespanSeconds() {
						contended = true
					}
				}
			}
			if !contended {
				t.Error("interconnect never changed a makespan — fabric path untested")
			}
		})
	}
}
