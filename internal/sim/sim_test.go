package sim

import (
	"math"
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/desim"
	"seadopt/internal/faults"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

func plat(cores int) *arch.Platform {
	return arch.MustNewPlatform(cores, arch.ARM7Levels3())
}

func ser() faults.SERModel { return faults.NewSERModel(faults.DefaultSER) }

// The simulator and the analytic list scheduler implement the same dispatch
// policy, so single-iteration makespans must agree to clock-quantization
// error. This cross-validates the DES kernel against the scheduler.
func TestSimMatchesListSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	graphs := []*taskgraph.Graph{
		taskgraph.MPEG2(),
		taskgraph.Fig8(),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 5),
	}
	for _, g := range graphs {
		for trial := 0; trial < 8; trial++ {
			cores := 2 + rng.Intn(4)
			p := plat(cores)
			m := sched.RandomMapping(rng, g.N(), cores)
			scaling := make([]int, cores)
			for i := range scaling {
				scaling[i] = 1 + rng.Intn(3)
			}
			s, err := sched.ListSchedule(g, p, m, scaling)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Run(g, p, m, scaling, Config{Iterations: 1})
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(r.MakespanSec-s.MakespanSeconds()) / s.MakespanSeconds()
			if rel > 1e-9 {
				t.Errorf("%s trial %d: sim makespan %.9f != sched %.9f (rel %v)",
					g.Name(), trial, r.MakespanSec, s.MakespanSeconds(), rel)
			}
		}
	}
}

func TestSimValidation(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	if _, err := Run(g, p, sched.Mapping{0}, []int{1, 1}, Config{}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := Run(g, p, sched.NewMapping(g.N()), []int{1}, Config{}); err == nil {
		t.Error("short scaling accepted")
	}
}

func TestPipelinedSimThroughput(t *testing.T) {
	// Pipelining a streaming workload must not be slower than the DAG run,
	// and must be at least the bottleneck core's busy time.
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3} // Table II Exp:4 mapping
	scaling := []int{2, 2, 3, 2}

	dag, err := Run(g, p, m, scaling, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Run(g, p, m, scaling, Config{Iterations: taskgraph.MPEG2Frames})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.MakespanSec > dag.MakespanSec*1.0001 {
		t.Errorf("pipelined run slower than DAG: %v > %v", pipe.MakespanSec, dag.MakespanSec)
	}
	var maxBusy float64
	for c := 0; c < 4; c++ {
		if b := pipe.CoreBusySeconds(c); b > maxBusy {
			maxBusy = b
		}
	}
	if pipe.MakespanSec < maxBusy-1e-9 {
		t.Errorf("pipelined makespan %v below bottleneck busy %v", pipe.MakespanSec, maxBusy)
	}
	// The analytic pipeline estimate should be close to the measured one.
	s, err := sched.ListSchedule(g, p, m, scaling)
	if err != nil {
		t.Fatal(err)
	}
	est := s.PipelinedMakespanSeconds(taskgraph.MPEG2Frames)
	rel := math.Abs(est-pipe.MakespanSec) / pipe.MakespanSec
	if rel > 0.15 {
		t.Errorf("analytic pipeline estimate %v vs measured %v (rel err %v > 15%%)",
			est, pipe.MakespanSec, rel)
	}
	// Work conservation: total executed cycles must match the graph.
	var totalEvents int
	for range pipe.Events {
		totalEvents++
	}
	if totalEvents != g.N()*taskgraph.MPEG2Frames {
		t.Errorf("executed %d instances, want %d", totalEvents, g.N()*taskgraph.MPEG2Frames)
	}
}

func TestLivenessConservative(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	m := sched.Mapping{0, 1, 0, 1, 0, 2}
	r, err := Run(g, p, m, []int{1, 2, 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lv, err := r.Liveness(ExposureConservative)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 hosts t1,t3,t5 -> registers r1,r2,r3 ∪ r4,r5,r6 ∪ r6,r7,r8.
	regs := lv.Registers(0)
	want := []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8"}
	if len(regs) != len(want) {
		t.Fatalf("core 0 live registers = %v, want %v", regs, want)
	}
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("core 0 live registers = %v, want %v", regs, want)
		}
	}
	// Every live register spans the whole run in local cycles.
	horizon := r.localCycles(0, desim.FromSeconds(r.MakespanSec))
	for _, reg := range regs {
		if got := lv.LiveCycles(0, reg); got != horizon {
			t.Errorf("register %s live %d cycles, want %d (whole run)", reg, got, horizon)
		}
	}
}

func TestLivenessLifetimeTighter(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.RoundRobin(g.N(), 4)
	r, err := Run(g, p, m, []int{1, 1, 1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := r.Liveness(ExposureConservative)
	if err != nil {
		t.Fatal(err)
	}
	life, err := r.Liveness(ExposureLifetime)
	if err != nil {
		t.Fatal(err)
	}
	inv := g.Inventory()
	var consExp, lifeExp int64
	for c := 0; c < 4; c++ {
		consExp += cons.Exposure(inv, c)
		lifeExp += life.Exposure(inv, c)
	}
	if lifeExp >= consExp {
		t.Errorf("lifetime exposure %d not tighter than conservative %d", lifeExp, consExp)
	}
	if lifeExp <= 0 {
		t.Error("lifetime exposure is zero")
	}
}

func TestMeasuredGammaMatchesAnalytic(t *testing.T) {
	// Conservative-mode injection expectation must equal the metrics Γ
	// (same model evaluated two ways), and the Poisson measurement must
	// land within statistical range.
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}
	scaling := []int{2, 2, 3, 2}

	ev, err := metrics.Evaluate(g, p, m, scaling, ser(), metrics.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(g, p, m, scaling, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	measured, expected, err := r.MeasureGamma(ser(), ExposureConservative, 77)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(expected-ev.Gamma) / ev.Gamma
	if rel > 0.01 {
		t.Errorf("injection expectation %v vs analytic Γ %v (rel %v)", expected, ev.Gamma, rel)
	}
	sigma := math.Sqrt(expected)
	if math.Abs(float64(measured)-expected) > 6*sigma {
		t.Errorf("measured Γ %d improbably far from expectation %v", measured, expected)
	}
}

func TestCampaignStructure(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	m := sched.Mapping{0, 1, 0, 1, 0, 2}
	r, err := Run(g, p, m, []int{1, 2, 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Campaign(ser(), ExposureConservative)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// λ must be higher (per cycle) on the scaled-down cores: lower V and
	// slower clock both push it up.
	if c.Lambda[1] <= c.Lambda[0] {
		t.Errorf("λ per cycle: core1 %v should exceed core0 %v", c.Lambda[1], c.Lambda[0])
	}
	// Baseline items present for all three used cores.
	nBase := 0
	for _, it := range c.Items {
		if it.Label == BaselineLabel {
			nBase++
		}
	}
	if nBase != 3 {
		t.Errorf("%d baseline items, want 3", nBase)
	}
	if _, err := r.Campaign(faults.SERModel{}, ExposureConservative); err == nil {
		t.Error("invalid SER model accepted")
	}
	if _, err := r.Liveness(ExposureMode(99)); err == nil {
		t.Error("unknown exposure mode accepted")
	}
}

func TestUtilizationAndEvents(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	m := sched.Mapping{0, 0, 0, 0, 0, 0}
	r, err := Run(g, p, m, []int{1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	u := r.Utilization()
	if math.Abs(u[0]-1.0) > 1e-9 {
		t.Errorf("single-core utilization = %v, want 1", u[0])
	}
	if u[1] != 0 {
		t.Errorf("idle core utilization = %v", u[1])
	}
	if r.EventsFired() == 0 {
		t.Error("kernel fired no events")
	}
	if len(r.Events) != g.N() {
		t.Errorf("%d task events, want %d", len(r.Events), g.N())
	}
}

func TestPressureProfile(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	m := sched.RoundRobin(g.N(), 4)
	r, err := Run(g, p, m, []int{1, 1, 1, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := r.PressureProfile(ExposureConservative, 8)
	if err != nil {
		t.Fatal(err)
	}
	life, err := r.PressureProfile(ExposureLifetime, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 4 || len(cons[0]) != 8 {
		t.Fatalf("profile shape wrong: %dx%d", len(cons), len(cons[0]))
	}
	for c := 0; c < 4; c++ {
		for b := 0; b < 8; b++ {
			if life[c][b] > cons[c][b]+1e-6 {
				t.Errorf("core %d bucket %d: lifetime pressure %v above conservative %v",
					c, b, life[c][b], cons[c][b])
			}
		}
		// Conservative pressure is flat at the core's full register footprint.
		for b := 1; b < 8; b++ {
			if diff := cons[c][b] - cons[c][0]; diff > 1 || diff < -1 {
				t.Errorf("core %d: conservative pressure not flat: %v", c, cons[c])
			}
		}
	}
	if _, err := r.PressureProfile(ExposureMode(9), 4); err == nil {
		t.Error("bad mode accepted")
	}
}
