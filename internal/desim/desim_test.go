package desim

import (
	"testing"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
	if FromSeconds(2.5) != 2*Second+500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v", FromSeconds(2.5))
	}
	// ARM7 DVS periods are exact in femtoseconds.
	if got := PeriodOf(200e6); got != 5*Nanosecond {
		t.Errorf("PeriodOf(200MHz) = %v, want 5ns", got)
	}
	if got := PeriodOf(100e6); got != 10*Nanosecond {
		t.Errorf("PeriodOf(100MHz) = %v, want 10ns", got)
	}
	if got := PeriodOf(200e6 / 3); got != 15*Nanosecond {
		t.Errorf("PeriodOf(66.7MHz) = %v, want 15ns", got)
	}
	if PeriodOf(0) != 0 || PeriodOf(-5) != 0 {
		t.Error("non-positive frequency should give zero period")
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	add := func(at Time, id int) {
		if err := k.At(at, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(30, 3)
	add(10, 1)
	add(20, 2)
	add(10, 11) // same time as id 1, scheduled later -> fires later
	end := k.Run()
	if end != 30 {
		t.Errorf("final time = %v", end)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", order, want)
		}
	}
	if k.EventsFired() != 4 {
		t.Errorf("EventsFired = %d", k.EventsFired())
	}
}

func TestKernelErrors(t *testing.T) {
	k := NewKernel()
	_ = k.At(100, func() {})
	k.Run()
	if err := k.At(50, func() {}); err == nil {
		t.Error("scheduling into the past accepted")
	}
	if err := k.After(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := k.After(1, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 10 {
			if err := k.After(5, recurse); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = k.After(5, recurse)
	end := k.Run()
	if depth != 10 || end != 50 {
		t.Errorf("depth=%d end=%v, want 10 and 50", depth, end)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := Time(10); i <= 100; i += 10 {
		_ = k.At(i, func() { fired++ })
	}
	k.RunUntil(50)
	if fired != 5 {
		t.Errorf("fired %d events by t=50, want 5", fired)
	}
	if k.Pending() != 5 {
		t.Errorf("pending = %d, want 5", k.Pending())
	}
	k.Run()
	if fired != 10 {
		t.Errorf("fired %d events total", fired)
	}
}

func TestStepOnEmpty(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Error("Step on empty queue reported work")
	}
	if k.Now() != 0 {
		t.Error("time moved with no events")
	}
}

func TestNotifier(t *testing.T) {
	k := NewKernel()
	n := NewNotifier(k)
	count := 0
	n.Subscribe(func() { count++ })
	n.Subscribe(func() { count += 10 })
	n.Notify()
	if count != 11 {
		t.Errorf("count = %d after immediate notify", count)
	}
	if err := n.NotifyAfter(100); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if count != 22 {
		t.Errorf("count = %d after deferred notify", count)
	}
}

func TestSignal(t *testing.T) {
	k := NewKernel()
	s := NewSignal(k, 0)
	changes := 0
	s.Subscribe(func() { changes++ })
	s.Write(0) // no change, no notify
	if changes != 0 || s.Writes() != 0 {
		t.Error("same-value write notified")
	}
	s.Write(7)
	if s.Read() != 7 || changes != 1 || s.Writes() != 1 {
		t.Errorf("Read=%d changes=%d", s.Read(), changes)
	}
	s.Write(9)
	if s.Read() != 9 || changes != 2 {
		t.Errorf("Read=%d changes=%d", s.Read(), changes)
	}
}

func TestClock(t *testing.T) {
	k := NewKernel()
	c := NewClock(k, 10)
	edges := 0
	c.Subscribe(func() { edges++ })
	if err := c.Start(5); err != nil {
		t.Fatal(err)
	}
	end := k.Run()
	if edges != 5 || c.Ticks() != 5 {
		t.Errorf("edges=%d ticks=%d, want 5", edges, c.Ticks())
	}
	if end != 50 {
		t.Errorf("end = %v, want 50", end)
	}
	// Restarting after the limit resumes ticking.
	if err := c.Start(2); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if c.Ticks() != 7 {
		t.Errorf("ticks after restart = %d, want 7", c.Ticks())
	}
}

func TestClockStop(t *testing.T) {
	k := NewKernel()
	c := NewClock(k, 10)
	_ = c.Start(0)
	stopAt := Time(35)
	_ = k.At(stopAt, c.Stop)
	k.RunUntil(200)
	// Edges at 10, 20, 30; the stop at 35 kills the one queued for 40.
	if c.Ticks() != 3 {
		t.Errorf("ticks = %d, want 3", c.Ticks())
	}
	if k.Pending() > 1 {
		t.Errorf("clock left %d events pending", k.Pending())
	}
}

func TestClockUnboundedWithRunUntil(t *testing.T) {
	k := NewKernel()
	c := NewClock(k, 7)
	_ = c.Start(0)
	k.RunUntil(70)
	if c.Ticks() != 10 {
		t.Errorf("ticks = %d, want 10", c.Ticks())
	}
	if c.Start(0) != nil {
		t.Error("Start on live clock should be a no-op, not an error")
	}
}
