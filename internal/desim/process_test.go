package desim

import (
	"testing"
)

func TestProcessWait(t *testing.T) {
	k := NewKernel()
	var stamps []Time
	p := Spawn(k, "ticker", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			stamps = append(stamps, p.Now())
		}
	})
	end := k.Run()
	if !p.Done() {
		t.Fatal("process did not finish")
	}
	if end != 30 {
		t.Errorf("end time = %v, want 30", end)
	}
	want := []Time{10, 20, 30}
	if len(stamps) != 3 {
		t.Fatalf("stamps = %v", stamps)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Errorf("stamp %d = %v, want %v", i, stamps[i], want[i])
		}
	}
	if p.Name() != "ticker" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	k := NewKernel()
	var order []string
	Spawn(k, "a", func(p *Process) {
		p.Wait(10)
		order = append(order, "a@10")
		p.Wait(20)
		order = append(order, "a@30")
	})
	Spawn(k, "b", func(p *Process) {
		p.Wait(15)
		order = append(order, "b@15")
		p.Wait(15)
		order = append(order, "b@30") // same timestamp as a@30; a scheduled first
	})
	k.Run()
	want := []string{"a@10", "b@15", "a@30", "b@30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessWaitEvent(t *testing.T) {
	k := NewKernel()
	n := NewNotifier(k)
	var woke Time
	p := Spawn(k, "waiter", func(p *Process) {
		p.WaitEvent(n)
		woke = p.Now()
	})
	_ = k.At(25, n.Notify)
	k.Run()
	if !p.Done() {
		t.Fatal("waiter never woke")
	}
	if woke != 25 {
		t.Errorf("woke at %v, want 25", woke)
	}
}

func TestProcessProducerConsumer(t *testing.T) {
	// A producer signals a consumer through a Signal; the consumer reads
	// the value at the notification time — a miniature two-process model.
	k := NewKernel()
	s := NewSignal(k, 0)
	var got []int
	Spawn(k, "producer", func(p *Process) {
		for v := 1; v <= 3; v++ {
			p.Wait(100)
			s.Write(v)
		}
	})
	Spawn(k, "consumer", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.WaitEvent(&s.Notifier)
			got = append(got, s.Read())
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("consumer read %v, want [1 2 3]", got)
	}
}

func TestProcessNegativeWaitPanics(t *testing.T) {
	k := NewKernel()
	panicked := make(chan bool, 1)
	Spawn(k, "bad", func(p *Process) {
		defer func() {
			panicked <- recover() != nil
		}()
		p.Wait(-1)
	})
	// The panic unwinds the goroutine after its deferred recover; the
	// process never yields normally, so step manually once.
	k.Step()
	if !<-panicked {
		t.Error("negative Wait did not panic")
	}
}
