package desim

// Notifier is a subscribable event source: callbacks registered with
// Subscribe fire (in registration order) every time the source triggers.
type Notifier struct {
	k    *Kernel
	subs []func()
}

// NewNotifier returns a notifier bound to the kernel.
func NewNotifier(k *Kernel) *Notifier { return &Notifier{k: k} }

// Subscribe registers fn to run on every notification.
func (n *Notifier) Subscribe(fn func()) { n.subs = append(n.subs, fn) }

// Notify fires all subscribers immediately (at the current simulation time).
func (n *Notifier) Notify() {
	for _, fn := range n.subs {
		fn()
	}
}

// NotifyAfter schedules a notification delay from now.
func (n *Notifier) NotifyAfter(delay Time) error {
	return n.k.After(delay, n.Notify)
}

// Signal is a typed, last-write-wins value with change notification — the
// desim analogue of an sc_signal. Reads observe the value written most
// recently in simulation order.
type Signal[T comparable] struct {
	Notifier
	value   T
	history int
}

// NewSignal returns a signal bound to the kernel holding initial.
func NewSignal[T comparable](k *Kernel, initial T) *Signal[T] {
	return &Signal[T]{Notifier: Notifier{k: k}, value: initial}
}

// Read returns the current value.
func (s *Signal[T]) Read() T { return s.value }

// Writes returns the number of value changes the signal has seen.
func (s *Signal[T]) Writes() int { return s.history }

// Write stores v; if the value changed, subscribers are notified at the
// current time.
func (s *Signal[T]) Write(v T) {
	if v == s.value {
		return
	}
	s.value = v
	s.history++
	s.Notify()
}

// Clock generates a periodic notification, the desim analogue of the
// paper's clock-tree generator output feeding one core (Fig. 1).
type Clock struct {
	Notifier
	period Time
	ticks  uint64
	limit  uint64
	live   bool
}

// NewClock returns a clock with the given period. Start must be called to
// begin ticking; maxTicks bounds the run (0 = unbounded, until the kernel's
// own run limit stops it).
func NewClock(k *Kernel, period Time) *Clock {
	return &Clock{Notifier: Notifier{k: k}, period: period}
}

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Ticks returns the number of edges generated so far.
func (c *Clock) Ticks() uint64 { return c.ticks }

// Start begins ticking; the first edge fires one period from now. maxTicks
// of zero means no limit; otherwise the clock generates maxTicks further
// edges from this call before stopping.
func (c *Clock) Start(maxTicks uint64) error {
	if c.live {
		return nil
	}
	c.live = true
	if maxTicks == 0 {
		c.limit = 0
	} else {
		c.limit = c.ticks + maxTicks
	}
	return c.k.After(c.period, c.tick)
}

// Stop halts the clock after the current edge.
func (c *Clock) Stop() { c.live = false }

func (c *Clock) tick() {
	if !c.live {
		return
	}
	c.ticks++
	c.Notify()
	if c.limit != 0 && c.ticks >= c.limit {
		c.live = false
		return
	}
	// Re-arm; After from a fired event can't fail (delay >= 0, fn != nil).
	_ = c.k.After(c.period, c.tick)
}
