// Package desim is a small discrete-event simulation kernel in the style of
// SystemC: simulated time, an event wheel with deterministic ordering,
// eventized signals, and cooperatively-scheduled processes.
//
// It is the substrate substituting for the paper's "SystemC cycle-accurate
// simulation" (§II-B): the cycle-level MPSoC model in internal/sim runs its
// core and link engines as desim processes, and the fault-injection campaign
// consumes the traces those engines emit.
//
// Simulated time is kept in femtoseconds (int64), which represents every
// clock period of the ARM7 DVS tables exactly (5 ns, 10 ns, 15 ns) and spans
// ±9200 s — far beyond any workload here. Events scheduled for the same
// timestamp fire in scheduling order, so simulations are fully
// deterministic.
package desim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in femtoseconds.
type Time int64

// Femtoseconds per common units.
const (
	Femtosecond Time = 1
	Picosecond  Time = 1e3
	Nanosecond  Time = 1e6
	Microsecond Time = 1e9
	Millisecond Time = 1e12
	Second      Time = 1e15
)

// Seconds converts the timestamp to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// PeriodOf returns the clock period of a frequency in Hz.
func PeriodOf(freqHz float64) Time {
	if freqHz <= 0 {
		return 0
	}
	return Time(float64(Second)/freqHz + 0.5)
}

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie break for equal timestamps
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine. The zero value is not usable; create one
// with NewKernel.
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nFired uint64
}

// NewKernel returns a kernel at time zero with an empty event queue.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// EventsFired returns the number of callbacks executed so far.
func (k *Kernel) EventsFired() uint64 { return k.nFired }

// Pending returns the number of events still queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute time at. Scheduling into the past is an
// error.
func (k *Kernel) At(at Time, fn func()) error {
	if at < k.now {
		return fmt.Errorf("desim: scheduling at %v before now %v", at, k.now)
	}
	if fn == nil {
		return fmt.Errorf("desim: nil event callback")
	}
	k.seq++
	heap.Push(&k.queue, &event{at: at, seq: k.seq, fn: fn})
	return nil
}

// After schedules fn to run delay from now.
func (k *Kernel) After(delay Time, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("desim: negative delay %v", delay)
	}
	return k.At(k.now+delay, fn)
}

// Step fires the next event, advancing time to its timestamp. It reports
// whether an event was fired.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*event)
	k.now = e.at
	k.nFired++
	e.fn()
	return true
}

// Run fires events until the queue drains, returning the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil fires events with timestamps <= limit. Events beyond the limit
// stay queued; time advances to min(limit, last fired event).
func (k *Kernel) RunUntil(limit Time) Time {
	for len(k.queue) > 0 && k.queue[0].at <= limit {
		k.Step()
	}
	return k.now
}
