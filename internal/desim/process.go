package desim

import (
	"fmt"
	"sync"
)

// Process is a SystemC-style simulation thread: a function that runs inside
// the kernel's simulated time and can block on Wait / WaitEvent. Processes
// are implemented with goroutines, but the kernel resumes exactly one at a
// time and only at deterministic points, so simulations stay reproducible.
//
// A process function receives its Process handle and returns when done:
//
//	k := desim.NewKernel()
//	desim.Spawn(k, "producer", func(p *desim.Process) {
//		for i := 0; i < 3; i++ {
//			p.Wait(10 * desim.Nanosecond)
//			// ... act at the new simulation time ...
//		}
//	})
//	k.Run()
type Process struct {
	name   string
	kernel *Kernel
	resume chan struct{}
	yield  chan struct{}
	done   bool
	mu     sync.Mutex
}

// Spawn creates a process and schedules its first activation at the current
// simulation time.
func Spawn(k *Kernel, name string, fn func(p *Process)) *Process {
	p := &Process{
		name:   name,
		kernel: k,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	go func() {
		<-p.resume // wait for first activation
		fn(p)
		p.mu.Lock()
		p.done = true
		p.mu.Unlock()
		p.yield <- struct{}{}
	}()
	// After from time zero with delay zero cannot fail.
	_ = k.After(0, p.activate)
	return p
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Done reports whether the process function has returned.
func (p *Process) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// activate runs the process until it blocks or finishes; called by the
// kernel inside an event callback.
func (p *Process) activate() {
	p.resume <- struct{}{}
	<-p.yield
}

// Wait suspends the process for the given simulated duration. It must only
// be called from inside the process function. Negative durations panic —
// they indicate a modeling bug, matching SystemC's wait() semantics.
func (p *Process) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("desim: process %q waits negative duration %d", p.name, d))
	}
	// Schedule the re-activation, then yield control back to the kernel.
	if err := p.kernel.After(d, p.activate); err != nil {
		panic(err) // unreachable: delay >= 0 and fn != nil
	}
	p.yield <- struct{}{}
	<-p.resume
}

// WaitEvent suspends the process until the notifier fires. One-shot: the
// subscription is consumed by the first notification after the call.
func (p *Process) WaitEvent(n *Notifier) {
	fired := false
	n.Subscribe(func() {
		if fired {
			return
		}
		fired = true
		// Re-activate at the notification's timestamp, after the current
		// event cascade completes.
		_ = p.kernel.After(0, p.activate)
	})
	p.yield <- struct{}{}
	<-p.resume
}

// Now returns the current simulation time (valid while the process runs).
func (p *Process) Now() Time { return p.kernel.Now() }
