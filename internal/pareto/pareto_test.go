package pareto

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestParseObjectives(t *testing.T) {
	cases := map[string]Objectives{
		"":                     DefaultObjectives,
		"  ":                   DefaultObjectives,
		"power":                ObjPower,
		"gamma":                ObjGamma,
		"makespan":             ObjMakespan,
		"power,gamma":          ObjPower | ObjGamma,
		"gamma, power":         ObjPower | ObjGamma,
		"POWER,Makespan,gamma": DefaultObjectives,
		"power,power":          ObjPower,
	}
	for in, want := range cases {
		got, err := ParseObjectives(in)
		if err != nil || got != want {
			t.Errorf("ParseObjectives(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseObjectives("power,latency"); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := Objectives(0).Valid(); err == nil {
		t.Error("empty objective set validated")
	}
	if err := Objectives(0x80).Valid(); err == nil {
		t.Error("unknown objective bit validated")
	}
	// String is canonical: parse(String(o)) == o for every non-empty subset.
	for o := Objectives(1); o <= DefaultObjectives; o++ {
		if err := o.Valid(); err != nil {
			continue
		}
		back, err := ParseObjectives(o.String())
		if err != nil || back != o {
			t.Errorf("ParseObjectives(%q) = %v, %v; want %v", o.String(), back, err, o)
		}
	}
}

func TestDominance(t *testing.T) {
	a := Vector{Power: 1, Makespan: 2, Gamma: 3}
	b := Vector{Power: 1, Makespan: 2, Gamma: 4}
	if !a.Dominates(b, DefaultObjectives) {
		t.Error("a should dominate b (better Γ, equal elsewhere)")
	}
	if b.Dominates(a, DefaultObjectives) {
		t.Error("b cannot dominate a")
	}
	if a.Dominates(a, DefaultObjectives) {
		t.Error("dominance must be irreflexive")
	}
	if !a.Equal(a, DefaultObjectives) || a.Equal(b, DefaultObjectives) {
		t.Error("Equal misjudged")
	}
	// With Γ inactive, a and b tie.
	if a.Dominates(b, ObjPower|ObjMakespan) || !a.Equal(b, ObjPower|ObjMakespan) {
		t.Error("inactive objective leaked into dominance")
	}
	// Incomparable pair.
	c := Vector{Power: 0.5, Makespan: 9, Gamma: 9}
	if a.Dominates(c, DefaultObjectives) || c.Dominates(a, DefaultObjectives) {
		t.Error("incomparable vectors reported comparable")
	}
}

// randomPoints draws n objective vectors from a small value grid so exact
// ties and dominance chains actually occur.
func randomPoints(rng *rand.Rand, n int) []Vector {
	pts := make([]Vector, n)
	for i := range pts {
		pts[i] = Vector{
			Power:    float64(rng.Intn(6)) * 0.25,
			Makespan: float64(rng.Intn(6)) * 0.125,
			Gamma:    float64(rng.Intn(6)) * 0.5,
		}
	}
	return pts
}

// foldAll offers pts in the given visit order (order[i] is the position of
// the point with enumeration index order[i]).
func foldAll(t *testing.T, o Objectives, pts []Vector, order []int) *Fold[int] {
	t.Helper()
	f, err := NewFold[int](o)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range order {
		f.Offer(pts[idx], idx, idx)
	}
	return f
}

func fingerprint(f *Fold[int]) string {
	s := ""
	for _, e := range f.Entries() {
		s += fmt.Sprintf("(%v,%v,%v)#%d=%d;", e.Vector.Power, e.Vector.Makespan, e.Vector.Gamma, e.Index, e.Value)
	}
	return s
}

// TestFoldProperties is the package's core property suite over random point
// clouds and every objective subset:
//
//  1. no frontier member dominates (or exactly ties) another;
//  2. every offered point is weakly dominated by some member;
//  3. the frontier — vectors, indices and payloads — is invariant under
//     permutation of the offer order;
//  4. exact tie classes resolve to the lowest enumeration index.
func TestFoldProperties(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 3+rng.Intn(40))
		for _, obj := range []Objectives{
			DefaultObjectives, ObjPower, ObjGamma,
			ObjPower | ObjGamma, ObjPower | ObjMakespan, ObjMakespan | ObjGamma,
		} {
			inOrder := make([]int, len(pts))
			for i := range inOrder {
				inOrder[i] = i
			}
			f := foldAll(t, obj, pts, inOrder)
			ref := fingerprint(f)
			entries := f.Entries()

			for i, a := range entries {
				for j, b := range entries {
					if i == j {
						continue
					}
					if a.Vector.Dominates(b.Vector, obj) {
						t.Fatalf("seed %d obj %v: member %d dominates member %d", seed, obj, a.Index, b.Index)
					}
					if a.Vector.Equal(b.Vector, obj) {
						t.Fatalf("seed %d obj %v: members %d and %d tie exactly", seed, obj, a.Index, b.Index)
					}
				}
			}
			for idx, p := range pts {
				covered := false
				for _, e := range entries {
					if e.Vector.Dominates(p, obj) || e.Vector.Equal(p, obj) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("seed %d obj %v: offered point %d not weakly dominated by the frontier", seed, obj, idx)
				}
				// Lowest-index tie representative.
				for _, e := range entries {
					if e.Vector.Equal(p, obj) && idx < e.Index {
						t.Fatalf("seed %d obj %v: tie class kept index %d over lower %d", seed, obj, e.Index, idx)
					}
				}
			}

			for shuffle := 0; shuffle < 5; shuffle++ {
				perm := rng.Perm(len(pts))
				if got := fingerprint(foldAll(t, obj, pts, perm)); got != ref {
					t.Fatalf("seed %d obj %v shuffle %d: frontier depends on offer order:\n  ref: %s\n  got: %s",
						seed, obj, shuffle, ref, got)
				}
			}
		}
	}
}

// TestDominatedBoundMonotone: once a lower-bound vector is reported
// dominated, it stays dominated however the frontier evolves — the property
// the exploration engine's dispatch-time skip rests on.
func TestDominatedBoundMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0xB0BB))
		pts := randomPoints(rng, 30)
		bounds := randomPoints(rng, 10)
		f, err := NewFold[int](DefaultObjectives)
		if err != nil {
			t.Fatal(err)
		}
		dominated := make([]bool, len(bounds))
		for i, p := range pts {
			f.Offer(p, i, i)
			for bi, lb := range bounds {
				now := f.DominatedBound(lb)
				if dominated[bi] && !now {
					t.Fatalf("seed %d: bound %d flipped back to not-dominated after offer %d", seed, bi, i)
				}
				dominated[bi] = now
			}
		}
		// And the verdict is sound: a dominated bound's every realization
		// (component-wise ≥ the bound) is dominated by some member.
		for bi, lb := range bounds {
			if !dominated[bi] {
				continue
			}
			realized := Vector{Power: lb.Power, Makespan: lb.Makespan + 0.01, Gamma: lb.Gamma + 1}
			covered := false
			for _, e := range f.Entries() {
				if e.Vector.Dominates(realized, DefaultObjectives) || e.Vector.Equal(realized, DefaultObjectives) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("seed %d: bound %d dominated but realization escapes the frontier", seed, bi)
			}
		}
	}
}

// TestEntriesOrdering: Entries is sorted by the active objectives in
// canonical order with the enumeration index as the final tie-break.
func TestEntriesOrdering(t *testing.T) {
	f, err := NewFold[string](ObjPower | ObjGamma)
	if err != nil {
		t.Fatal(err)
	}
	f.Offer(Vector{Power: 2, Makespan: 1, Gamma: 1}, 5, "b")
	f.Offer(Vector{Power: 1, Makespan: 9, Gamma: 3}, 9, "a")
	f.Offer(Vector{Power: 3, Makespan: 0, Gamma: 0.5}, 1, "c")
	got := f.Entries()
	want := []string{"a", "b", "c"} // ascending power
	if len(got) != len(want) {
		t.Fatalf("frontier size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Value != want[i] {
			t.Errorf("Entries[%d] = %q, want %q", i, got[i].Value, want[i])
		}
	}
}
