// Package pareto implements the deterministic streaming non-dominated fold
// behind the engine's multi-objective exploration mode.
//
// The source paper's premise is a three-way trade-off — dynamic power,
// soft-error reliability (Γ, expected SEUs experienced) and the real-time
// deadline — yet the scalar design loop collapses every run to one Design.
// This package keeps the whole trade-off surface instead: each scaling
// combination's objective vector (nominal power, T_M, Γ, all minimized) is
// folded into a canonical minimal set of mutually non-dominated points, the
// Pareto frontier the paper's figures actually plot.
//
// The fold is a pure function of the sequence of (vector, index) pairs it
// consumes in visit order: equal frontiers fall out of equal inputs whatever
// worker parallelism produced them, exact-tie duplicates resolve to the
// lowest enumeration index, and the final ordering is a total order over the
// objective values. Dominance over *admissible lower bounds* is monotone —
// once a bound vector is strictly dominated by any point ever admitted, it
// stays dominated by every later frontier — which is what lets the
// branch-and-bound explorer skip combinations against a stale snapshot and
// still reproduce the verdict authoritatively at fold time.
package pareto

import (
	"fmt"
	"sort"
	"strings"
)

// Objectives is a bitmask selecting which objective components participate
// in dominance. The zero value is invalid; use DefaultObjectives (all three)
// or ParseObjectives.
type Objectives uint8

// The objective components, all minimized.
const (
	// ObjPower is the scaling vector's full-utilization dynamic power
	// (eq. 5 with α ≡ 1) — the quantity the scalar loop ranks feasible
	// scalings by.
	ObjPower Objectives = 1 << iota
	// ObjMakespan is T_M, the multiprocessor execution time; minimizing it
	// maximizes slack against the deadline.
	ObjMakespan
	// ObjGamma is Γ, the expected number of SEUs experienced (eq. 3).
	ObjGamma
)

// DefaultObjectives selects the paper's full three-way trade-off.
const DefaultObjectives = ObjPower | ObjMakespan | ObjGamma

// objectiveNames fixes the canonical rendering order.
var objectiveNames = []struct {
	bit  Objectives
	name string
}{
	{ObjPower, "power"},
	{ObjMakespan, "makespan"},
	{ObjGamma, "gamma"},
}

// ParseObjectives resolves a comma-separated objective list from a flag or
// job option ("power,gamma", "makespan", ...). The empty string selects
// DefaultObjectives. Names are deduplicated; order is irrelevant.
func ParseObjectives(s string) (Objectives, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultObjectives, nil
	}
	var o Objectives
	for _, part := range strings.Split(s, ",") {
		name := strings.ToLower(strings.TrimSpace(part))
		found := false
		for _, on := range objectiveNames {
			if name == on.name {
				o |= on.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("pareto: unknown objective %q (want power, makespan or gamma)", name)
		}
	}
	return o, nil
}

// Valid reports whether o selects at least one known objective and nothing
// else.
func (o Objectives) Valid() error {
	if o == 0 {
		return fmt.Errorf("pareto: no objectives selected")
	}
	if o&^DefaultObjectives != 0 {
		return fmt.Errorf("pareto: unknown objective bits %#x", uint8(o&^DefaultObjectives))
	}
	return nil
}

// String renders the canonical comma-separated form ("power,makespan,gamma"
// for the default); the same selection always renders the same string, so
// the ingest problem key can hash it.
func (o Objectives) String() string {
	parts := make([]string, 0, len(objectiveNames))
	for _, on := range objectiveNames {
		if o&on.bit != 0 {
			parts = append(parts, on.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Vector is one design point's objective vector. Every component is
// minimized; components whose objective is not selected are ignored by the
// dominance tests.
type Vector struct {
	Power    float64 // nominal dynamic power, W
	Makespan float64 // T_M, seconds
	Gamma    float64 // expected SEUs experienced
}

// components lists v's active values in the canonical objective order.
func (v Vector) components(o Objectives) [3]struct {
	val    float64
	active bool
} {
	return [3]struct {
		val    float64
		active bool
	}{
		{v.Power, o&ObjPower != 0},
		{v.Makespan, o&ObjMakespan != 0},
		{v.Gamma, o&ObjGamma != 0},
	}
}

// Dominates reports whether v dominates w under the selected objectives:
// v ≤ w in every active component and v < w in at least one.
func (v Vector) Dominates(w Vector, o Objectives) bool {
	strict := false
	vc, wc := v.components(o), w.components(o)
	for i := range vc {
		if !vc[i].active {
			continue
		}
		if vc[i].val > wc[i].val {
			return false
		}
		if vc[i].val < wc[i].val {
			strict = true
		}
	}
	return strict
}

// Equal reports whether v and w coincide in every active component.
func (v Vector) Equal(w Vector, o Objectives) bool {
	vc, wc := v.components(o), w.components(o)
	for i := range vc {
		if vc[i].active && vc[i].val != wc[i].val {
			return false
		}
	}
	return true
}

// Less is the frontier's total display order: ascending power, then
// makespan, then Γ over the active components, tie-broken by ascending
// enumeration index. It orders any two entries deterministically.
func less(a, b entryKey, o Objectives) bool {
	ac, bc := a.vec.components(o), b.vec.components(o)
	for i := range ac {
		if !ac[i].active {
			continue
		}
		if ac[i].val != bc[i].val {
			return ac[i].val < bc[i].val
		}
	}
	return a.index < b.index
}

type entryKey struct {
	vec   Vector
	index int
}

// Entry is one frontier member: the objective vector, the combination's
// stable enumeration index, and the caller's payload.
type Entry[T any] struct {
	Vector Vector
	Index  int
	Value  T
}

// Fold is a deterministic streaming non-dominated fold: Offer points in
// visit order, read the frontier back with Entries. The zero value is not
// usable; construct with NewFold. Fold is not safe for concurrent use — the
// exploration engine confines it to the fold goroutine and publishes
// snapshots through its own synchronization.
type Fold[T any] struct {
	objectives Objectives
	entries    []Entry[T]
}

// NewFold returns an empty fold over the selected objectives.
func NewFold[T any](o Objectives) (*Fold[T], error) {
	if err := o.Valid(); err != nil {
		return nil, err
	}
	return &Fold[T]{objectives: o}, nil
}

// Objectives returns the fold's objective selection.
func (f *Fold[T]) Objectives() Objectives { return f.objectives }

// Offer folds one resolved point into the frontier and reports whether it
// was admitted. A dominated point is rejected; an exact tie (equal in every
// active component) resolves to the lowest enumeration index whichever
// arrives first; an admitted point evicts every member it dominates or
// out-ties. Rejection is final-safe — by transitivity, whatever made a point
// irrelevant stays represented — so the frontier is the lowest-index
// representative set of the globally non-dominated points, invariant under
// any permutation of the Offer sequence.
func (f *Fold[T]) Offer(v Vector, index int, value T) bool {
	for _, e := range f.entries {
		if e.Vector.Dominates(v, f.objectives) {
			return false
		}
		if e.Vector.Equal(v, f.objectives) && e.Index <= index {
			return false
		}
	}
	keep := f.entries[:0]
	for _, e := range f.entries {
		if v.Dominates(e.Vector, f.objectives) {
			continue
		}
		if v.Equal(e.Vector, f.objectives) && index < e.Index {
			continue
		}
		keep = append(keep, e)
	}
	// Zero the evicted tail so payloads don't leak through the backing array.
	for i := len(keep); i < len(f.entries); i++ {
		f.entries[i] = Entry[T]{}
	}
	f.entries = append(keep, Entry[T]{Vector: v, Index: index, Value: value})
	return true
}

// DominatedBound reports whether a point whose objective vector is
// component-wise at least lb — an admissible lower bound — is provably
// dominated by the current frontier, i.e. some member strictly dominates lb
// itself. Because any realized vector r satisfies r ≥ lb component-wise, a
// member below-or-equal lb everywhere and strictly below somewhere is
// below-or-equal r everywhere and strictly below it somewhere too. The
// verdict is monotone under Offer: members are only ever evicted by points
// that dominate them, and dominance is transitive.
func (f *Fold[T]) DominatedBound(lb Vector) bool {
	for _, e := range f.entries {
		if e.Vector.Dominates(lb, f.objectives) {
			return true
		}
	}
	return false
}

// Size returns the number of frontier members.
func (f *Fold[T]) Size() int { return len(f.entries) }

// Min returns the frontier member that sorts first in the canonical order
// (the head of Entries) without copying or sorting the frontier — a linear
// scan for per-event consumers. ok is false while the frontier is empty.
func (f *Fold[T]) Min() (Entry[T], bool) {
	if len(f.entries) == 0 {
		return Entry[T]{}, false
	}
	min := f.entries[0]
	for _, e := range f.entries[1:] {
		if less(entryKey{e.Vector, e.Index}, entryKey{min.Vector, min.Index}, f.objectives) {
			min = e
		}
	}
	return min, true
}

// Entries returns the frontier in its canonical order: ascending power, then
// makespan, then Γ (over the active components), tie-broken by ascending
// enumeration index. The slice is freshly allocated.
func (f *Fold[T]) Entries() []Entry[T] {
	out := append([]Entry[T](nil), f.entries...)
	sort.Slice(out, func(i, j int) bool {
		return less(entryKey{out[i].Vector, out[i].Index}, entryKey{out[j].Vector, out[j].Index}, f.objectives)
	})
	return out
}
