package expt

import (
	"context"
	"fmt"
	"io"

	"seadopt/internal/arch"
	"seadopt/internal/mapping"
	"seadopt/internal/sched"
	"seadopt/internal/sim"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// AblationResult collects the three design-choice ablations DESIGN.md calls
// out: the conservative-vs-lifetime exposure model, the value of the Fig. 6
// greedy seeding, and the Fig. 5 reduced scaling enumeration vs the
// exhaustive one.
type AblationResult struct {
	Exposure    []ExposureAblationRow
	Seeding     []SeedingAblationRow
	Enumeration EnumerationAblation
}

// ExposureAblationRow compares Γ under the two liveness fidelities for one
// design point.
type ExposureAblationRow struct {
	Workload       string
	Conservative   float64 // expected Γ, allocated-for-the-whole-run model
	Lifetime       float64 // expected Γ, first-use..last-use model
	ReductionRatio float64 // Lifetime / Conservative
}

// SeedingAblationRow compares the proposed mapper's Γ with and without the
// Fig. 6 greedy initial mapping at one scaling vector.
type SeedingAblationRow struct {
	Scaling      []int
	GreedySeed   float64 // Γ with InitialSEAMapping seeding
	BalancedSeed float64 // Γ seeded from round-robin only
}

// EnumerationAblation compares the Fig. 5 reduced scaling enumeration with
// the exhaustive level^cores sweep.
type EnumerationAblation struct {
	Cores, Levels    int
	ReducedCombos    int
	ExhaustiveCombos int
	// BestGammaReduced and BestGammaExhaustive are the Γ of the best
	// feasible design found exploring each set with the same mapper.
	BestGammaReduced    float64
	BestGammaExhaustive float64
}

// Ablations runs all three studies on the MPEG-2 decoder (4 cores).
func Ablations(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationResult{}

	g := taskgraph.MPEG2()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		return nil, err
	}
	ser := cfg.serModel()

	// --- Exposure-model ablation: Table II Exp:4-style design plus a
	// round-robin scatter, measured under both liveness fidelities.
	designs := []struct {
		name    string
		m       sched.Mapping
		scaling []int
	}{
		{"MPEG-2 clustered (Exp:4-style)", sched.Mapping{0, 0, 0, 0, 0, 0, 1, 1, 2, 3, 3}, []int{2, 2, 3, 2}},
		{"MPEG-2 round-robin", sched.RoundRobin(g.N(), 4), []int{2, 2, 3, 2}},
	}
	for _, d := range designs {
		r, err := sim.Run(g, p, d.m, d.scaling, sim.Config{Iterations: 1})
		if err != nil {
			return nil, err
		}
		row := ExposureAblationRow{Workload: d.name}
		for _, mode := range []sim.ExposureMode{sim.ExposureConservative, sim.ExposureLifetime} {
			c, err := r.Campaign(ser, mode)
			if err != nil {
				return nil, err
			}
			var expected float64
			for _, it := range c.Items {
				expected += c.Lambda[it.Core] * it.BitCycles()
			}
			if mode == sim.ExposureConservative {
				row.Conservative = expected
			} else {
				row.Lifetime = expected
			}
		}
		if row.Conservative > 0 {
			row.ReductionRatio = row.Lifetime / row.Conservative
		}
		res.Exposure = append(res.Exposure, row)
	}

	// --- Seeding ablation: proposed mapper with vs without the greedy
	// stage, same total budget, at the Table II scalings.
	mcfg := mpeg2MappingConfig(cfg)
	for _, scaling := range [][]int{{2, 2, 3, 2}, {3, 3, 3, 3}, {2, 2, 2, 2}} {
		init, err := mapping.InitialSEAMapping(g, p, scaling, mcfg)
		if err != nil {
			return nil, err
		}
		withGreedy, err := mapping.OptimizedMapping(g, p, scaling, init, mcfg)
		if err != nil {
			return nil, err
		}
		withBalanced, err := mapping.OptimizedMapping(g, p, scaling, sched.RoundRobin(g.N(), 4), mcfg)
		if err != nil {
			return nil, err
		}
		res.Seeding = append(res.Seeding, SeedingAblationRow{
			Scaling:      append([]int(nil), scaling...),
			GreedySeed:   withGreedy.Gamma,
			BalancedSeed: withBalanced.Gamma,
		})
	}

	// --- Enumeration ablation: reduced vs exhaustive scaling sets with the
	// same (cheap) mapper budget.
	enumCfg := mcfg
	enumCfg.SearchMoves = cfg.SearchMoves / 4
	if enumCfg.SearchMoves < 100 {
		enumCfg.SearchMoves = 100
	}
	mapper := mapping.SEAMapper(enumCfg)
	reduced, err := vscale.All(4, 3)
	if err != nil {
		return nil, err
	}
	exhaustive := vscale.Exhaustive(4, 3)
	bestOver := func(combos [][]int) (float64, error) {
		best := -1.0
		var bestNom float64
		for _, s := range combos {
			_, ev, err := mapping.MapOnce(context.Background(), g, p, s, mapper, enumCfg)
			if err != nil {
				return 0, err
			}
			if !ev.MeetsDeadline {
				continue
			}
			nom, err := p.DynamicPower(s, nil)
			if err != nil {
				return 0, err
			}
			if best < 0 || nom < bestNom || (nom == bestNom && ev.Gamma < best) {
				best = ev.Gamma
				bestNom = nom
			}
		}
		return best, nil
	}
	bg, err := bestOver(reduced)
	if err != nil {
		return nil, err
	}
	bge, err := bestOver(exhaustive)
	if err != nil {
		return nil, err
	}
	res.Enumeration = EnumerationAblation{
		Cores: 4, Levels: 3,
		ReducedCombos:       len(reduced),
		ExhaustiveCombos:    len(exhaustive),
		BestGammaReduced:    bg,
		BestGammaExhaustive: bge,
	}
	return res, nil
}

// Render writes the three ablation tables.
func (r *AblationResult) Render(w io.Writer) {
	t1 := &Table{
		Title:   "Ablation 1: exposure model — conservative (paper, eq. 3) vs first-use..last-use liveness",
		Headers: []string{"Design", "Γ conservative", "Γ lifetime", "lifetime/conservative"},
	}
	for _, row := range r.Exposure {
		t1.AddRow(row.Workload,
			fmt.Sprintf("%.4g", row.Conservative),
			fmt.Sprintf("%.4g", row.Lifetime),
			fmt.Sprintf("%.2f", row.ReductionRatio))
	}
	t1.Render(w)
	fmt.Fprintln(w)

	t2 := &Table{
		Title:   "Ablation 2: value of the Fig. 6 greedy seed (same total search budget)",
		Headers: []string{"Scaling", "Γ greedy+search", "Γ balanced+search", "Δ"},
	}
	for _, row := range r.Seeding {
		t2.AddRow(fmt.Sprint(row.Scaling),
			fmt.Sprintf("%.4g", row.GreedySeed),
			fmt.Sprintf("%.4g", row.BalancedSeed),
			pct(row.GreedySeed, row.BalancedSeed))
	}
	t2.Render(w)
	fmt.Fprintln(w)

	e := r.Enumeration
	t3 := &Table{
		Title:   "Ablation 3: Fig. 5 reduced scaling enumeration vs exhaustive",
		Headers: []string{"Set", "Combos explored", "Best feasible Γ"},
	}
	t3.AddRow("Fig. 5 (non-increasing)", fmt.Sprint(e.ReducedCombos), fmt.Sprintf("%.4g", e.BestGammaReduced))
	t3.AddRow(fmt.Sprintf("exhaustive %d^%d", e.Levels, e.Cores), fmt.Sprint(e.ExhaustiveCombos), fmt.Sprintf("%.4g", e.BestGammaExhaustive))
	t3.Render(w)
	fmt.Fprintf(w, "The reduced enumeration explores %.0f%% of the raw combinations.\n",
		float64(e.ReducedCombos)/float64(e.ExhaustiveCombos)*100)
}
