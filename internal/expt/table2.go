package expt

import (
	"context"
	"fmt"
	"io"

	"seadopt/internal/anneal"
	"seadopt/internal/arch"
	"seadopt/internal/mapping"
	"seadopt/internal/metrics"
	"seadopt/internal/sim"
	"seadopt/internal/taskgraph"
)

// ExperimentName labels the four design-optimization experiments of §V.
type ExperimentName string

const (
	Exp1 ExperimentName = "Exp:1 (Reg. Usage)"
	Exp2 ExperimentName = "Exp:2 (Parallelism)"
	Exp3 ExperimentName = "Exp:3 (Reg.Usage&Paral.)"
	Exp4 ExperimentName = "Exp:4 (Proposed)"
)

// TableIIRow is one experiment's optimized MPEG-2 design.
type TableIIRow struct {
	Name          ExperimentName
	Design        *mapping.Design
	MeasuredGamma float64 // fault-injection mean over Config.FaultRuns
}

// TableIIResult reproduces Table II: the four experiments on the MPEG-2
// decoder with four processing cores.
type TableIIResult struct {
	Rows []TableIIRow
}

// expMappers returns the four experiments' mappers in Table II order.
func expMappers(cfg Config, mcfg mapping.Config) []struct {
	name ExperimentName
	fn   mapping.MapperFunc
} {
	base := anneal.Config{
		SER:         mcfg.SER,
		DeadlineSec: mcfg.DeadlineSec,
		Iterations:  mcfg.Iterations,
		Moves:       cfg.AnnealMoves,
		Seed:        cfg.Seed,
	}
	withObj := func(o anneal.Objective) anneal.Config {
		c := base
		c.Objective = o
		return c
	}
	return []struct {
		name ExperimentName
		fn   mapping.MapperFunc
	}{
		{Exp1, anneal.Mapper(withObj(anneal.ObjectiveRegisterUsage))},
		{Exp2, anneal.Mapper(withObj(anneal.ObjectiveMakespan))},
		{Exp3, anneal.Mapper(withObj(anneal.ObjectiveRegTimeProduct))},
		{Exp4, mapping.SEAMapper(mcfg)},
	}
}

// mpeg2MappingConfig returns the Table II optimization configuration. All
// paper tables run under the exhaustive strategy: branch-and-bound would
// return the same designs, but the tables report (and regress against)
// every per-scaling data point.
func mpeg2MappingConfig(cfg Config) mapping.Config {
	return mapping.Config{
		SER:         cfg.serModel(),
		DeadlineSec: taskgraph.MPEG2Deadline,
		Iterations:  taskgraph.MPEG2Frames,
		SearchMoves: cfg.SearchMoves,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		Strategy:    mapping.StrategyExhaustive,
	}
}

// TableII runs the four experiments: each is a full Fig. 4 design loop
// (power-minimizing voltage scaling iteration) around its own mapper, then a
// cycle-level simulation with fault injection measures Γ for the chosen
// design. The four explorations share one feasibility-probe cache: the
// mapper-independent deadline verdict per scaling is computed once, not
// once per experiment.
func TableII(cfg Config) (*TableIIResult, error) {
	cfg = cfg.withDefaults()
	g := taskgraph.MPEG2()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		return nil, err
	}
	mcfg := mpeg2MappingConfig(cfg)
	mcfg.Probe = mapping.NewProbeCache()
	res := &TableIIResult{}
	for _, exp := range expMappers(cfg, mcfg) {
		best, _, err := mapping.Explore(g, p, exp.fn, mcfg)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", exp.name, err)
		}
		measured, err := measureGamma(g, p, best, cfg)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", exp.name, err)
		}
		res.Rows = append(res.Rows, TableIIRow{Name: exp.name, Design: best, MeasuredGamma: measured})
	}
	return res, nil
}

// measureGamma runs the cycle-level simulator and a repeated fault-injection
// campaign on a design, returning the mean measured Γ.
func measureGamma(g *taskgraph.Graph, p *arch.Platform, d *mapping.Design, cfg Config) (float64, error) {
	iters := 1
	if g.Name() == "mpeg2-decoder" {
		iters = taskgraph.MPEG2Frames
	}
	r, err := sim.Run(g, p, d.Mapping, d.Scaling, sim.Config{Iterations: iters})
	if err != nil {
		return 0, err
	}
	campaign, err := r.Campaign(cfg.serModel(), sim.ExposureConservative)
	if err != nil {
		return 0, err
	}
	_, mean, err := campaign.RunRepeated(cfg.Seed, cfg.FaultRuns)
	if err != nil {
		return 0, err
	}
	return mean, nil
}

// Row returns the row for the named experiment, or nil.
func (r *TableIIResult) Row(name ExperimentName) *TableIIRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// table builds the paper-style Table II.
func (r *TableIIResult) table() *Table {
	t := &Table{
		Title: "Table II: soft error-unaware vs proposed soft error-aware optimization (MPEG-2, 4 cores)",
		Headers: []string{"Exp.", "Mapped tasks (per core)", "scal. s_i", "P, mW",
			"R, kb/c", "T_M (s)", "Γ est.", "Γ meas."},
	}
	for _, row := range r.Rows {
		ev := row.Design.Eval
		coreTasks := row.Design.Mapping.CoreTasks(len(row.Design.Scaling))
		var tasks, scal string
		for c, ids := range coreTasks {
			ints := make([]int, len(ids))
			for i, id := range ids {
				ints[i] = int(id)
			}
			if c > 0 {
				tasks += " | "
				scal += ","
			}
			tasks += fmtTasks(ints)
			scal += fmt.Sprintf("%d", row.Design.Scaling[c])
		}
		t.AddRow(string(row.Name), tasks, scal,
			fmt.Sprintf("%.2f", ev.PowerW*1e3),
			fmt.Sprintf("%.0f", float64(ev.TotalRegBits)/1024.0),
			fmt.Sprintf("%.2f", ev.TMSeconds),
			fmt.Sprintf("%.3g", ev.Gamma),
			fmt.Sprintf("%.3g", row.MeasuredGamma))
	}
	return t
}

// Render writes the paper-style table.
func (r *TableIIResult) Render(w io.Writer) { r.table().Render(w) }

// CSVTo writes the table as CSV.
func (r *TableIIResult) CSVTo(w io.Writer) { r.table().CSV(w) }

// Fig9Row compares one baseline against Exp:4 at the same voltage scaling.
type Fig9Row struct {
	Name       ExperimentName
	Gamma      float64
	PowerW     float64
	GammaDelta float64 // (Γ_exp − Γ_exp4)/Γ_exp4
	PowerDelta float64
}

// Fig9Result reproduces Fig. 9: comparative SEUs and power of Exp:1-3
// against Exp:4 with all experiments forced to the same scaling vector.
type Fig9Result struct {
	Scaling []int
	Exp4    Fig9Row
	Rows    []Fig9Row
}

// Fig9 runs all four mappers at one fixed scaling vector (the paper uses
// Exp:4's Table II choice, s = 2,2,3,2) and reports relative Γ and power.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	g := taskgraph.MPEG2()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		return nil, err
	}
	scaling := []int{2, 2, 3, 2}
	mcfg := mpeg2MappingConfig(cfg)

	var evals []*metrics.Evaluation
	var names []ExperimentName
	for _, exp := range expMappers(cfg, mcfg) {
		_, ev, err := mapping.MapOnce(context.Background(), g, p, scaling, exp.fn, mcfg)
		if err != nil {
			return nil, fmt.Errorf("expt: fig9 %s: %w", exp.name, err)
		}
		evals = append(evals, ev)
		names = append(names, exp.name)
	}
	ref := evals[3] // Exp:4
	res := &Fig9Result{
		Scaling: scaling,
		Exp4:    Fig9Row{Name: Exp4, Gamma: ref.Gamma, PowerW: ref.PowerW},
	}
	for i := 0; i < 3; i++ {
		res.Rows = append(res.Rows, Fig9Row{
			Name:       names[i],
			Gamma:      evals[i].Gamma,
			PowerW:     evals[i].PowerW,
			GammaDelta: (evals[i].Gamma - ref.Gamma) / ref.Gamma,
			PowerDelta: (evals[i].PowerW - ref.PowerW) / ref.PowerW,
		})
	}
	return res, nil
}

// table builds the Fig. 9 comparison table.
func (r *Fig9Result) table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 9: SEUs and power of Exp:1-3 relative to Exp:4 (same scaling %v, SER 1e-9)", r.Scaling),
		Headers: []string{"Exp.", "Γ", "P, mW", "ΔΓ vs Exp:4", "ΔP vs Exp:4"},
	}
	for _, row := range r.Rows {
		t.AddRow(string(row.Name),
			fmt.Sprintf("%.3g", row.Gamma),
			fmt.Sprintf("%.2f", row.PowerW*1e3),
			fmt.Sprintf("%+.1f%%", row.GammaDelta*100),
			fmt.Sprintf("%+.1f%%", row.PowerDelta*100))
	}
	t.AddRow(string(Exp4),
		fmt.Sprintf("%.3g", r.Exp4.Gamma),
		fmt.Sprintf("%.2f", r.Exp4.PowerW*1e3), "reference", "reference")
	return t
}

// Render writes the paper-style table.
func (r *Fig9Result) Render(w io.Writer) { r.table().Render(w) }

// CSVTo writes the table as CSV.
func (r *Fig9Result) CSVTo(w io.Writer) { r.table().CSV(w) }
