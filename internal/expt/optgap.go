package expt

import (
	"context"
	"fmt"
	"io"

	"seadopt/internal/anneal"
	"seadopt/internal/arch"
	"seadopt/internal/mapping"
	"seadopt/internal/taskgraph"
)

// OptGapRow reports one mapper's distance from the exhaustive Γ-optimum at
// a fixed scaling vector.
type OptGapRow struct {
	Mapper string
	Gamma  float64
	GapPct float64 // (Γ − Γ*) / Γ* × 100
}

// OptGapResult measures the optimality gap of every mapper on the MPEG-2
// decoder, where the symmetry-reduced exhaustive search is still tractable.
// This study has no counterpart in the paper (the authors could not afford
// exhaustive enumeration in SystemC); it quantifies how much of the
// possible Γ reduction the heuristics capture.
type OptGapResult struct {
	Scaling  []int
	Optimum  float64
	Rows     []OptGapRow
	Explored string // human description of the exhaustive space
}

// OptimalityGap runs the exhaustive mapper and all four heuristics on the
// MPEG-2 decoder at a uniform scaling (uniform levels maximize the
// core-symmetry reduction).
func OptimalityGap(cfg Config) (*OptGapResult, error) {
	cfg = cfg.withDefaults()
	g := taskgraph.MPEG2()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		return nil, err
	}
	scaling := []int{2, 2, 2, 2}
	mcfg := mpeg2MappingConfig(cfg)

	best, err := mapping.ExhaustiveMapping(g, p, scaling, mcfg)
	if err != nil {
		return nil, err
	}
	res := &OptGapResult{
		Scaling:  scaling,
		Optimum:  best.Gamma,
		Explored: "4^11 assignments, /4! core symmetry",
	}
	for _, exp := range expMappers(cfg, mcfg) {
		_, ev, err := mapping.MapOnce(context.Background(), g, p, scaling, exp.fn, mcfg)
		if err != nil {
			return nil, fmt.Errorf("expt: optgap %s: %w", exp.name, err)
		}
		res.Rows = append(res.Rows, OptGapRow{
			Mapper: string(exp.name),
			Gamma:  ev.Gamma,
			GapPct: (ev.Gamma/best.Gamma - 1) * 100,
		})
	}
	// The Γ-oracle annealer, for the search-vs-objective split.
	acfg := anneal.Config{
		Objective:   anneal.ObjectiveGamma,
		SER:         mcfg.SER,
		DeadlineSec: mcfg.DeadlineSec,
		Iterations:  mcfg.Iterations,
		Moves:       cfg.AnnealMoves,
		Seed:        cfg.Seed,
	}
	ev, err := anneal.Anneal(g, p, scaling, acfg)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, OptGapRow{
		Mapper: "SA on Γ (oracle)",
		Gamma:  ev.Gamma,
		GapPct: (ev.Gamma/best.Gamma - 1) * 100,
	})
	return res, nil
}

// table builds the optimality-gap table.
func (r *OptGapResult) table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Optimality gap vs exhaustive Γ-optimum (MPEG-2, scaling %v, %s): Γ* = %.4g",
			r.Scaling, r.Explored, r.Optimum),
		Headers: []string{"Mapper", "Γ", "gap vs optimum"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mapper, fmt.Sprintf("%.4g", row.Gamma), fmt.Sprintf("%+.2f%%", row.GapPct))
	}
	return t
}

// Render writes the table.
func (r *OptGapResult) Render(w io.Writer) { r.table().Render(w) }

// CSVTo writes the table as CSV.
func (r *OptGapResult) CSVTo(w io.Writer) { r.table().CSV(w) }
