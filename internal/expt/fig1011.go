package expt

import (
	"fmt"
	"io"

	"seadopt/internal/anneal"
	"seadopt/internal/arch"
	"seadopt/internal/mapping"
	"seadopt/internal/taskgraph"
)

// Fig10Point compares Exp:3 and Exp:4 at one architecture allocation.
type Fig10Point struct {
	Cores      int
	Exp4PowerW float64
	Exp4Gamma  float64
	Exp3PowerW float64
	Exp3Gamma  float64
}

// Fig10Result reproduces Fig. 10: power and SEUs of the proposed
// optimization vs the joint R×T_M baseline on the 60-task random graph
// across 2-6 cores.
type Fig10Result struct {
	Points []Fig10Point
}

// fig10Workload returns the 60-task random graph and its deadline.
func fig10Workload(cfg Config) (*taskgraph.Graph, float64) {
	return taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), cfg.Seed+60),
		taskgraph.RandomDeadline(60)
}

// Fig10 runs both optimizations at every allocation of TableIIICores. Each
// Explore fans its scaling combinations out on the engine's worker pool
// (cfg.Parallelism), and Exp:4 and Exp:3 share one feasibility-probe cache
// per allocation, so the mapper-independent deadline probe runs once per
// scaling instead of once per experiment.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	g, deadline := fig10Workload(cfg)
	res := &Fig10Result{Points: make([]Fig10Point, len(TableIIICores))}

	for ci, cores := range TableIIICores {
		p, err := arch.NewPlatform(cores, arch.ARM7Levels3())
		if err != nil {
			return nil, err
		}
		mcfg := mapping.Config{
			SER:         cfg.serModel(),
			DeadlineSec: deadline,
			Iterations:  1,
			SearchMoves: cfg.SearchMoves,
			Seed:        cfg.Seed + int64(cores),
			Parallelism: cfg.Parallelism,
			Probe:       mapping.NewProbeCache(),
			Strategy:    mapping.StrategyExhaustive, // paper tables stay exhaustive
		}
		best4, _, err := mapping.Explore(g, p, mapping.SEAMapper(mcfg), mcfg)
		if err != nil {
			return nil, fmt.Errorf("expt: fig10 exp4 %d cores: %w", cores, err)
		}
		acfg := anneal.Config{
			Objective:   anneal.ObjectiveRegTimeProduct,
			SER:         mcfg.SER,
			DeadlineSec: deadline,
			Iterations:  1,
			Moves:       cfg.AnnealMoves,
		}
		best3, _, err := mapping.Explore(g, p, anneal.Mapper(acfg), mcfg)
		if err != nil {
			return nil, fmt.Errorf("expt: fig10 exp3 %d cores: %w", cores, err)
		}
		res.Points[ci] = Fig10Point{
			Cores:      cores,
			Exp4PowerW: best4.Eval.PowerW,
			Exp4Gamma:  best4.Eval.Gamma,
			Exp3PowerW: best3.Eval.PowerW,
			Exp3Gamma:  best3.Eval.Gamma,
		}
	}
	return res, nil
}

// table builds the Fig. 10 comparison series.
func (r *Fig10Result) table() *Table {
	t := &Table{
		Title: "Fig. 10: P and Γ, Exp:3 vs Exp:4, random 60-task graph, 2-6 cores",
		Headers: []string{"Cores", "Exp:4 P,mW", "Exp:3 P,mW", "ΔP",
			"Exp:4 Γ", "Exp:3 Γ", "ΔΓ (Exp:4 vs Exp:3)"},
	}
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprintf("%d", pt.Cores),
			fmt.Sprintf("%.2f", pt.Exp4PowerW*1e3),
			fmt.Sprintf("%.2f", pt.Exp3PowerW*1e3),
			pct(pt.Exp4PowerW, pt.Exp3PowerW),
			fmt.Sprintf("%.3g", pt.Exp4Gamma),
			fmt.Sprintf("%.3g", pt.Exp3Gamma),
			pct(pt.Exp4Gamma, pt.Exp3Gamma))
	}
	return t
}

// Render writes the paper-style table.
func (r *Fig10Result) Render(w io.Writer) { r.table().Render(w) }

// CSVTo writes the table as CSV.
func (r *Fig10Result) CSVTo(w io.Writer) { r.table().CSV(w) }

// Fig11Point is one voltage-scaling-level configuration of Fig. 11.
type Fig11Point struct {
	Levels int
	PowerW float64
	Gamma  float64
	Design *mapping.Design
}

// Fig11Result reproduces Fig. 11: power and SEUs of the proposed
// optimization with 2-, 3- and 4-level DVS tables on the 60-task random
// graph with six cores.
type Fig11Result struct {
	Points []Fig11Point
}

// Fig11 sweeps the DVS level tables of arch.ARM7LevelsFor.
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	g, deadline := fig10Workload(cfg)
	res := &Fig11Result{}
	for _, nLevels := range []int{2, 3, 4} {
		levels, err := arch.ARM7LevelsFor(nLevels)
		if err != nil {
			return nil, err
		}
		p, err := arch.NewPlatform(6, levels)
		if err != nil {
			return nil, err
		}
		mcfg := mapping.Config{
			SER:         cfg.serModel(),
			DeadlineSec: deadline,
			Iterations:  1,
			SearchMoves: cfg.SearchMoves,
			Seed:        cfg.Seed + int64(nLevels)*1000,
			Parallelism: cfg.Parallelism,
			Strategy:    mapping.StrategyExhaustive, // paper tables stay exhaustive
		}
		best, _, err := mapping.Explore(g, p, mapping.SEAMapper(mcfg), mcfg)
		if err != nil {
			return nil, fmt.Errorf("expt: fig11 %d levels: %w", nLevels, err)
		}
		res.Points = append(res.Points, Fig11Point{
			Levels: nLevels,
			PowerW: best.Eval.PowerW,
			Gamma:  best.Eval.Gamma,
			Design: best,
		})
	}
	return res, nil
}

// table builds the level sweep with the 3-level configuration as the
// reference, matching the paper's narrative.
func (r *Fig11Result) table() *Table {
	t := &Table{
		Title:   "Fig. 11: P and Γ vs number of voltage scaling levels (random 60-task graph, 6 cores)",
		Headers: []string{"Levels", "P, mW", "Γ", "ΔP vs 3 levels", "ΔΓ vs 3 levels"},
	}
	var ref *Fig11Point
	for i := range r.Points {
		if r.Points[i].Levels == 3 {
			ref = &r.Points[i]
		}
	}
	for _, pt := range r.Points {
		dp, dg := "reference", "reference"
		if ref != nil && pt.Levels != 3 {
			dp = pct(pt.PowerW, ref.PowerW)
			dg = pct(pt.Gamma, ref.Gamma)
		}
		t.AddRow(fmt.Sprintf("%d", pt.Levels),
			fmt.Sprintf("%.2f", pt.PowerW*1e3),
			fmt.Sprintf("%.3g", pt.Gamma), dp, dg)
	}
	return t
}

// Render writes the paper-style table.
func (r *Fig11Result) Render(w io.Writer) { r.table().Render(w) }

// CSVTo writes the table as CSV.
func (r *Fig11Result) CSVTo(w io.Writer) { r.table().CSV(w) }
