package expt

import (
	"bytes"
	"strings"
	"testing"
)

// Table III and Fig. 10 are the heavyweight experiments (every application ×
// every core count × full scaling enumeration); the tests run them with a
// reduced workload set / budget and check the paper's two observations.
func TestTableIIIShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("table III sweep in -short mode")
	}
	cfg := quickCfg()
	cfg.SearchMoves = 150
	cfg.AnnealMoves = 300
	res, err := TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 6 {
		t.Fatalf("Table III has %d apps, want 6", len(res.Apps))
	}
	for _, app := range res.Apps {
		if len(app.Cells) != 5 {
			t.Fatalf("%s: %d cells, want 5", app.Name, len(app.Cells))
		}
		// Paper's second observation: Γ grows with the number of cores.
		// Check the endpoints (monotonicity can wobble with search noise).
		if app.Cells[4].Gamma <= app.Cells[0].Gamma {
			t.Errorf("%s: Γ(6 cores)=%.3g not above Γ(2 cores)=%.3g",
				app.Name, app.Cells[4].Gamma, app.Cells[0].Gamma)
		}
		for _, cell := range app.Cells {
			if cell.PowerW <= 0 || cell.Gamma <= 0 {
				t.Errorf("%s/%d cores: degenerate cell", app.Name, cell.Cores)
			}
		}
	}
	// Paper's first observation: the power-minimal allocation is
	// application dependent — at least two different argmins across apps,
	// and for the MPEG-2 decoder more cores eventually cost power again.
	argmins := map[int]bool{}
	for _, app := range res.Apps {
		best := 0
		for i, cell := range app.Cells {
			if cell.PowerW < app.Cells[best].PowerW {
				best = i
			}
		}
		argmins[app.Cells[best].Cores] = true
	}
	if len(argmins) < 2 {
		t.Errorf("power-minimal core count identical for all apps: %v", argmins)
	}
	if got := res.App("MPEG-2"); got == nil {
		t.Fatal("missing MPEG-2 row")
	}
	if res.App("nonexistent") != nil {
		t.Error("App() invented a row")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "MPEG-2") || !strings.Contains(buf.String(), "100 tasks") {
		t.Error("Table III render incomplete")
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 10 sweep in -short mode")
	}
	cfg := quickCfg()
	cfg.SearchMoves = 900
	cfg.AnnealMoves = 900
	res, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("Fig10 has %d points, want 5", len(res.Points))
	}
	// Paper: Exp:4 consistently reduces SEUs vs Exp:3; allow small noise at
	// reduced budgets but demand Exp:4 wins overall.
	wins := 0
	for _, pt := range res.Points {
		if pt.Exp4Gamma <= pt.Exp3Gamma*1.01 {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("Exp:4 beat Exp:3 on Γ at only %d/5 core counts", wins)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Exp:4 Γ") {
		t.Error("Fig10 render incomplete")
	}
}
