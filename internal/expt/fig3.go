package expt

import (
	"fmt"
	"io"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// Fig3Point is one task mapping of the Fig. 3 sweep evaluated at the two
// uniform scalings the figure uses.
type Fig3Point struct {
	Mapping sched.Mapping
	// All cores at s=1 (200 MHz, 1.0 V):
	TM1ms  float64 // multiprocessor execution time
	RKb    float64 // overall register usage R, kbit (scaling-independent)
	Gamma1 float64 // SEUs experienced
	// All cores at s=2 (100 MHz, 0.58 V):
	TM2ms  float64
	Gamma2 float64
}

// Fig3Result is the full 120-mapping sweep of Fig. 3.
type Fig3Result struct {
	Points []Fig3Point
}

// Fig3 reproduces the §III motivation study: the MPEG-2 decoder on the
// 4-core MPSoC under "a total of 120 task mappings".
//
// The 120 mappings are the contiguous partitions of the 11-task decoder
// pipeline into 4 non-empty blocks (C(10,3) = 120 — exactly the paper's
// count), which sweep the design space from maximal locality to maximal
// distribution. Each is evaluated at all-s=1 and all-s=2, yielding the
// R-vs-T_M trade-off (Fig. 3a) and the concave Γ-vs-T_M curves
// (Fig. 3b, 3c).
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	g := taskgraph.MPEG2()
	p, err := arch.NewPlatform(4, arch.ARM7Levels3())
	if err != nil {
		return nil, err
	}
	ser := cfg.serModel()
	res := &Fig3Result{}

	n := g.N()
	// All cut-point triples 1 <= a < b < c <= n-1 partition tasks
	// [0,a) [a,b) [b,c) [c,n) onto cores 0..3.
	for a := 1; a <= n-3; a++ {
		for b := a + 1; b <= n-2; b++ {
			for c := b + 1; c <= n-1; c++ {
				m := make(sched.Mapping, n)
				for t := 0; t < n; t++ {
					switch {
					case t < a:
						m[t] = 0
					case t < b:
						m[t] = 1
					case t < c:
						m[t] = 2
					default:
						m[t] = 3
					}
				}
				opt := metrics.Options{Iterations: taskgraph.MPEG2Frames}
				ev1, err := metrics.Evaluate(g, p, m, []int{1, 1, 1, 1}, ser, opt)
				if err != nil {
					return nil, err
				}
				ev2, err := metrics.Evaluate(g, p, m, []int{2, 2, 2, 2}, ser, opt)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, Fig3Point{
					Mapping: m,
					TM1ms:   ev1.TMSeconds * 1e3,
					RKb:     float64(ev1.TotalRegBits) / 1024.0,
					Gamma1:  ev1.Gamma,
					TM2ms:   ev2.TMSeconds * 1e3,
					Gamma2:  ev2.Gamma,
				})
			}
		}
	}
	return res, nil
}

// MinGammaPoint returns the index of the sweep point with minimum Γ at s=1.
func (r *Fig3Result) MinGammaPoint() int {
	best := 0
	for i, pt := range r.Points {
		if pt.Gamma1 < r.Points[best].Gamma1 {
			best = i
		}
	}
	return best
}

// Ranges returns the observed (min, max) of T_M (ms, s=1) and Γ (s=1).
func (r *Fig3Result) Ranges() (tmMin, tmMax, gMin, gMax float64) {
	tmMin, gMin = r.Points[0].TM1ms, r.Points[0].Gamma1
	for _, pt := range r.Points {
		if pt.TM1ms < tmMin {
			tmMin = pt.TM1ms
		}
		if pt.TM1ms > tmMax {
			tmMax = pt.TM1ms
		}
		if pt.Gamma1 < gMin {
			gMin = pt.Gamma1
		}
		if pt.Gamma1 > gMax {
			gMax = pt.Gamma1
		}
	}
	return tmMin, tmMax, gMin, gMax
}

// Render writes the three sub-figures as ASCII scatter plots plus the
// summary statistics the paper quotes in Observations 1-3.
func (r *Fig3Result) Render(w io.Writer) {
	a := &Scatter{Title: "Fig. 3(a): register usage vs multiprocessor execution time (s=1)",
		XLabel: "T_M (ms)", YLabel: "R (kbit)"}
	b := &Scatter{Title: "Fig. 3(b): SEUs experienced vs T_M, all cores s=1",
		XLabel: "T_M (ms)", YLabel: "Γ"}
	c := &Scatter{Title: "Fig. 3(c): SEUs experienced vs T_M, all cores s=2",
		XLabel: "T_M (ms)", YLabel: "Γ"}
	for _, pt := range r.Points {
		a.Add(pt.TM1ms, pt.RKb, '*')
		b.Add(pt.TM1ms, pt.Gamma1, '*')
		c.Add(pt.TM2ms, pt.Gamma2, '*')
	}
	a.Render(w)
	fmt.Fprintln(w)
	b.Render(w)
	fmt.Fprintln(w)
	c.Render(w)

	var sumTMRatio, sumGRatio float64
	for _, pt := range r.Points {
		sumTMRatio += pt.TM2ms / pt.TM1ms
		sumGRatio += pt.Gamma2 / pt.Gamma1
	}
	n := float64(len(r.Points))
	tmMin, tmMax, gMin, gMax := r.Ranges()
	mid := r.Points[r.MinGammaPoint()]
	fmt.Fprintf(w, "\n%d mappings. T_M range %.0f..%.0f ms, Γ range %.3g..%.3g (s=1).\n",
		len(r.Points), tmMin, tmMax, gMin, gMax)
	fmt.Fprintf(w, "Observation 1: R %.0f..%.0f kbit, anti-correlated with T_M (locality vs duplication).\n",
		r.minR(), r.maxR())
	fmt.Fprintf(w, "Observation 2: Γ minimum at T_M = %.0f ms; at equal T_M, forced-duplication mappings pay up to %.0f%% more Γ (see EXPERIMENTS.md on the paper's interior-minimum claim).\n",
		mid.TM1ms, r.DuplicationPenaltyPct())
	fmt.Fprintf(w, "Observation 3: scaling 1→2 multiplies T_M by %.2f and Γ by %.2f (paper: 2 and ≈2.5).\n",
		sumTMRatio/n, sumGRatio/n)
}

func (r *Fig3Result) minR() float64 {
	m := r.Points[0].RKb
	for _, pt := range r.Points {
		if pt.RKb < m {
			m = pt.RKb
		}
	}
	return m
}

func (r *Fig3Result) maxR() float64 {
	m := r.Points[0].RKb
	for _, pt := range r.Points {
		if pt.RKb > m {
			m = pt.RKb
		}
	}
	return m
}

// DuplicationPenaltyPct quantifies the register-duplication mechanism behind
// the paper's trade-off: among mappings in the lowest T_M decile, the spread
// between the worst and best Γ, in percent. A large value means mapping
// choice matters even at equal performance — the room the soft error-aware
// mapper exploits.
func (r *Fig3Result) DuplicationPenaltyPct() float64 {
	tmMin, tmMax, _, _ := r.Ranges()
	cut := tmMin + (tmMax-tmMin)/10
	lo, hi := 0.0, 0.0
	for _, pt := range r.Points {
		if pt.TM1ms > cut {
			continue
		}
		if lo == 0 || pt.Gamma1 < lo {
			lo = pt.Gamma1
		}
		if pt.Gamma1 > hi {
			hi = pt.Gamma1
		}
	}
	if lo == 0 {
		return 0
	}
	return (hi - lo) / lo * 100
}

// CSVTo writes the sweep points as CSV (one row per mapping).
func (r *Fig3Result) CSVTo(w io.Writer) {
	t := &Table{Headers: []string{"tm_s1_ms", "r_kbit", "gamma_s1", "tm_s2_ms", "gamma_s2"}}
	for _, pt := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.3f", pt.TM1ms),
			fmt.Sprintf("%.3f", pt.RKb),
			fmt.Sprintf("%.6g", pt.Gamma1),
			fmt.Sprintf("%.3f", pt.TM2ms),
			fmt.Sprintf("%.6g", pt.Gamma2))
	}
	t.CSV(w)
}
