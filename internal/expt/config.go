package expt

import (
	"seadopt/internal/anneal"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
)

// Config carries the shared experiment knobs. Zero values select the
// paper-fidelity defaults; tests dial the budgets down.
type Config struct {
	// SER is the soft error rate per bit per cycle (paper: 1e-9).
	SER float64
	// SearchMoves is the per-scaling budget of the proposed mapper.
	SearchMoves int
	// AnnealMoves is the per-scaling budget of the Exp:1-3 baselines.
	AnnealMoves int
	// Seed drives all deterministic randomness.
	Seed int64
	// FaultRuns is the number of Monte-Carlo fault-injection repetitions
	// used for measured-Γ columns.
	FaultRuns int
	// Parallelism bounds the exploration engine's worker pool inside each
	// design loop (0 selects GOMAXPROCS, 1 is sequential). Results are
	// identical at any setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.SER == 0 {
		c.SER = faults.DefaultSER
	}
	if c.SearchMoves == 0 {
		c.SearchMoves = mapping.DefaultSearchMoves
	}
	if c.AnnealMoves == 0 {
		c.AnnealMoves = anneal.DefaultMoves
	}
	if c.Seed == 0 {
		c.Seed = 2010 // DATE 2010
	}
	if c.FaultRuns == 0 {
		c.FaultRuns = 5
	}
	return c
}

// serModel returns the calibrated SER model for the config.
func (c Config) serModel() faults.SERModel { return faults.NewSERModel(c.SER) }
