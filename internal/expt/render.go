// Package expt regenerates every table and figure of the paper's evaluation
// section (§V) from the seadopt models: the Fig. 3 mapping sweeps, Table II
// and Fig. 9 (baselines vs the proposed optimization on the MPEG-2 decoder),
// Table III (architecture allocation), Fig. 10 (Exp:3 vs Exp:4 across core
// counts) and Fig. 11 (voltage-scaling-level sweep).
//
// Every experiment returns a typed result for programmatic use and renders a
// paper-style text table (plus ASCII scatter plots for figures). Budgets are
// configurable so the same runners serve fast CI tests and full
// paper-fidelity reproductions (cmd/experiments).
package expt

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table renderer.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := strings.Repeat("-", total)
	fmt.Fprintln(w, line)
	for i, h := range t.Headers {
		fmt.Fprintf(w, "| %-*s ", widths[i], h)
	}
	fmt.Fprintln(w, "|")
	fmt.Fprintln(w, line)
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "| %-*s ", widths[i], c)
			}
		}
		fmt.Fprintln(w, "|")
	}
	fmt.Fprintln(w, line)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Scatter renders an ASCII scatter plot of (x, y) points, the stand-in for
// the paper's figures.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	marks  []mark
}

type mark struct {
	x, y  float64
	glyph byte
}

// Add places a point with the given glyph.
func (s *Scatter) Add(x, y float64, glyph byte) {
	s.marks = append(s.marks, mark{x, y, glyph})
}

// Render writes the plot to w.
func (s *Scatter) Render(w io.Writer) {
	width, height := s.Width, s.Height
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	if len(s.marks) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", s.Title)
		return
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, m := range s.marks {
		minX, maxX = math.Min(minX, m.x), math.Max(maxX, m.x)
		minY, maxY = math.Min(minY, m.y), math.Max(maxY, m.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, m := range s.marks {
		col := int((m.x - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((m.y-minY)/(maxY-minY)*float64(height-1))
		if grid[row][col] != ' ' && grid[row][col] != m.glyph {
			grid[row][col] = '#'
		} else {
			grid[row][col] = m.glyph
		}
	}
	if s.Title != "" {
		fmt.Fprintln(w, s.Title)
	}
	fmt.Fprintf(w, "%s: %.4g .. %.4g\n", s.YLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintf(w, "%s: %.4g .. %.4g\n", s.XLabel, minX, maxX)
}

// pct formats a relative difference (a vs reference b) as a signed percent.
func pct(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (a-b)/b*100)
}

// fmtTasks renders a task-ID list as the paper's "t1, t2, ..." notation
// (task IDs are zero-based internally, one-based in the paper).
func fmtTasks(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("t%d", id+1)
	}
	return strings.Join(parts, ",")
}
