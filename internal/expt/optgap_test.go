package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestOptimalityGap(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration in -short mode")
	}
	cfg := quickCfg()
	res, err := OptimalityGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimum <= 0 {
		t.Fatal("no exhaustive optimum")
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5 (Exp:1-4 + oracle)", len(res.Rows))
	}
	var exp4 *OptGapRow
	for i := range res.Rows {
		row := &res.Rows[i]
		// Nothing beats the exhaustive optimum.
		if row.GapPct < -1e-6 {
			t.Errorf("%s claims Γ below the optimum (gap %v%%)", row.Mapper, row.GapPct)
		}
		if strings.Contains(row.Mapper, "Proposed") {
			exp4 = row
		}
	}
	if exp4 == nil {
		t.Fatal("Exp:4 missing from gap table")
	}
	// The proposed mapper should land within 15% of optimal on this
	// 11-task instance even at CI budgets.
	if exp4.GapPct > 15 {
		t.Errorf("Exp:4 optimality gap %.1f%% > 15%%", exp4.GapPct)
	}
	// Exp:4 is the best or tied-best of the heuristics on Γ at this
	// scaling (allow 2% noise).
	for _, row := range res.Rows {
		if row.Mapper == exp4.Mapper || strings.Contains(row.Mapper, "oracle") {
			continue
		}
		if row.Gamma < exp4.Gamma*0.98 {
			t.Errorf("%s (Γ %v) clearly beats Exp:4 (Γ %v) at equal scaling",
				row.Mapper, row.Gamma, exp4.Gamma)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Optimality gap") {
		t.Error("render incomplete")
	}
	buf.Reset()
	res.CSVTo(&buf)
	if !strings.Contains(buf.String(), "Mapper,") {
		t.Error("CSV incomplete")
	}
}
