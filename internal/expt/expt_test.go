package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// quickCfg keeps experiment budgets small enough for CI while preserving the
// qualitative shapes the assertions check.
func quickCfg() Config {
	return Config{
		SearchMoves: 1200,
		AnnealMoves: 1200,
		Seed:        11,
		FaultRuns:   2,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T", "| a ", "| bb |", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "a,bb\n1,2\n") {
		t.Errorf("CSV output wrong:\n%s", buf.String())
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tab := &Table{Headers: []string{"x"}}
	tab.AddRow(`quote " and, comma`)
	var buf bytes.Buffer
	tab.CSV(&buf)
	if !strings.Contains(buf.String(), `"quote "" and, comma"`) {
		t.Errorf("CSV escaping wrong: %s", buf.String())
	}
}

func TestScatterRender(t *testing.T) {
	s := &Scatter{Title: "plot", XLabel: "x", YLabel: "y", Width: 30, Height: 8}
	s.Add(0, 0, 'a')
	s.Add(1, 1, 'b')
	s.Add(1, 1, 'c') // collision -> '#'
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	for _, want := range []string{"plot", "a", "#", "x: 0 .. 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	empty := &Scatter{Title: "none"}
	buf.Reset()
	empty.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty scatter should say no data")
	}
}

func TestFig3Shapes(t *testing.T) {
	res, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// "a total of 120 task mappings were carried out" — C(10,3).
	if len(res.Points) != 120 {
		t.Fatalf("sweep has %d mappings, want 120", len(res.Points))
	}
	tmMin, tmMax, gMin, gMax := res.Ranges()
	if tmMax/tmMin < 1.5 {
		t.Errorf("T_M range %.0f..%.0f too narrow to show the trade-off", tmMin, tmMax)
	}
	if gMax/gMin < 1.3 {
		t.Errorf("Γ range %.3g..%.3g too narrow", gMin, gMax)
	}
	// Observation 1: R and T_M anti-correlate (locality reduces R, costs T_M).
	var sumTM, sumR float64
	for _, pt := range res.Points {
		sumTM += pt.TM1ms
		sumR += pt.RKb
	}
	meanTM, meanR := sumTM/120, sumR/120
	var cov, varTM, varR float64
	for _, pt := range res.Points {
		cov += (pt.TM1ms - meanTM) * (pt.RKb - meanR)
		varTM += (pt.TM1ms - meanTM) * (pt.TM1ms - meanTM)
		varR += (pt.RKb - meanR) * (pt.RKb - meanR)
	}
	corr := cov / math.Sqrt(varTM*varR)
	if corr > -0.3 {
		t.Errorf("R vs T_M correlation = %.2f, want clearly negative (Observation 1)", corr)
	}
	// Observation 3: scaling all cores 1→2 doubles T_M and gives Γ ≈ ×2.5.
	for i, pt := range res.Points {
		if math.Abs(pt.TM2ms/pt.TM1ms-2.0) > 0.02 {
			t.Fatalf("point %d: T_M ratio %.3f, want 2.0", i, pt.TM2ms/pt.TM1ms)
		}
		if math.Abs(pt.Gamma2/pt.Gamma1-2.5) > 0.05 {
			t.Fatalf("point %d: Γ ratio %.3f, want ≈2.5", i, pt.Gamma2/pt.Gamma1)
		}
	}
	// The duplication mechanism leaves real Γ spread among equal-T_M points.
	if res.DuplicationPenaltyPct() < 5 {
		t.Errorf("duplication penalty %.1f%%, expected a visible spread", res.DuplicationPenaltyPct())
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 3(a)") || !strings.Contains(buf.String(), "Observation 3") {
		t.Error("Fig3 render incomplete")
	}
}

func TestTableIIShapes(t *testing.T) {
	res, err := TableII(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Design.Eval.MeetsDeadline {
			t.Errorf("%s: design misses the deadline", row.Name)
		}
		if row.Design.Eval.PowerW <= 0 || row.Design.Eval.Gamma <= 0 {
			t.Errorf("%s: degenerate design", row.Name)
		}
		// Measured Γ (fault injection) within 25%% of the estimate.
		rel := math.Abs(row.MeasuredGamma-row.Design.Eval.Gamma) / row.Design.Eval.Gamma
		if rel > 0.25 {
			t.Errorf("%s: measured Γ %.3g vs estimated %.3g (rel %.2f)",
				row.Name, row.MeasuredGamma, row.Design.Eval.Gamma, rel)
		}
	}
	// Exp:1 minimizes R: its register usage must be the smallest.
	r1 := res.Row(Exp1).Design.Eval.TotalRegBits
	for _, row := range res.Rows[1:] {
		if row.Design.Eval.TotalRegBits < r1 {
			t.Errorf("%s has R=%d below Exp:1's %d", row.Name, row.Design.Eval.TotalRegBits, r1)
		}
	}
	// Exp:2 maximizes parallelism: its T_M must be the smallest.
	t2 := res.Row(Exp2).Design.Eval.TMSeconds
	for _, row := range res.Rows {
		if row.Name != Exp2 && row.Design.Eval.TMSeconds < t2*0.999 {
			t.Errorf("%s has T_M=%.3f below Exp:2's %.3f", row.Name, row.Design.Eval.TMSeconds, t2)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Exp:4") {
		t.Error("Table II render missing Exp:4")
	}
}

func TestFig9Shapes(t *testing.T) {
	res, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("Fig9 has %d baseline rows, want 3", len(res.Rows))
	}
	// The proposed optimization minimizes Γ at the fixed scaling, so every
	// baseline must be no better (within small search noise).
	for _, row := range res.Rows {
		if row.GammaDelta < -0.02 {
			t.Errorf("%s beats Exp:4 on Γ by %.1f%% at equal scaling", row.Name, -row.GammaDelta*100)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "reference") {
		t.Error("Fig9 render missing reference row")
	}
}

func TestFig11Shapes(t *testing.T) {
	cfg := quickCfg()
	cfg.SearchMoves = 120
	res, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("Fig11 has %d points, want 3 (2/3/4 levels)", len(res.Points))
	}
	byLevels := map[int]Fig11Point{}
	for _, pt := range res.Points {
		byLevels[pt.Levels] = pt
		if !pt.Design.Eval.MeetsDeadline {
			t.Errorf("%d levels: design misses deadline", pt.Levels)
		}
	}
	// More scaling levels -> more flexibility -> power no worse
	// (paper: 4 levels buys ~4% power at ~3% more SEUs vs 3 levels).
	if byLevels[4].PowerW > byLevels[2].PowerW*1.02 {
		t.Errorf("4-level power %.3g exceeds 2-level %.3g", byLevels[4].PowerW, byLevels[2].PowerW)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "reference") {
		t.Error("Fig11 render missing the 3-level reference")
	}
}
