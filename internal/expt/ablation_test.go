package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	cfg := quickCfg()
	cfg.SearchMoves = 400
	res, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Ablation 1: lifetime liveness is strictly tighter than conservative.
	if len(res.Exposure) != 2 {
		t.Fatalf("exposure rows = %d, want 2", len(res.Exposure))
	}
	for _, row := range res.Exposure {
		if row.Lifetime >= row.Conservative {
			t.Errorf("%s: lifetime Γ %v not below conservative %v",
				row.Workload, row.Lifetime, row.Conservative)
		}
		if row.ReductionRatio <= 0 || row.ReductionRatio >= 1 {
			t.Errorf("%s: reduction ratio %v outside (0,1)", row.Workload, row.ReductionRatio)
		}
	}

	// Ablation 2: with the shared budget, greedy seeding must never be much
	// worse than balanced seeding (it is one of the restart seeds anyway).
	if len(res.Seeding) != 3 {
		t.Fatalf("seeding rows = %d, want 3", len(res.Seeding))
	}
	for _, row := range res.Seeding {
		if row.GreedySeed > row.BalancedSeed*1.10 {
			t.Errorf("scaling %v: greedy-seeded Γ %v more than 10%% above balanced %v",
				row.Scaling, row.GreedySeed, row.BalancedSeed)
		}
	}

	// Ablation 3: the reduced enumeration is ~5x smaller and loses nothing
	// meaningful (identical cores make the extra combinations permutations).
	e := res.Enumeration
	if e.ReducedCombos != 15 || e.ExhaustiveCombos != 81 {
		t.Errorf("combo counts = %d/%d, want 15/81", e.ReducedCombos, e.ExhaustiveCombos)
	}
	if e.BestGammaReduced <= 0 || e.BestGammaExhaustive <= 0 {
		t.Fatal("no feasible designs found")
	}
	rel := e.BestGammaReduced / e.BestGammaExhaustive
	if rel > 1.15 || rel < 0.85 {
		t.Errorf("reduced-vs-exhaustive best Γ ratio %v outside ±15%%", rel)
	}

	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "19%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("ablation render missing %q", want)
		}
	}
}
