package expt

import (
	"fmt"
	"io"

	"seadopt/internal/arch"
	"seadopt/internal/mapping"
	"seadopt/internal/taskgraph"
)

// TableIIICell is one (application, core count) design of the architecture
// allocation study.
type TableIIICell struct {
	Cores  int
	PowerW float64
	Gamma  float64
	Design *mapping.Design
}

// TableIIIApp is one application row of Table III.
type TableIIIApp struct {
	Name  string
	Cells []TableIIICell // cores 2..6
}

// TableIIIResult reproduces Table III: power and SEUs of the proposed
// optimization across architecture allocations (2-6 cores) for the MPEG-2
// decoder and the random task graphs of 20-100 tasks.
type TableIIIResult struct {
	Apps []TableIIIApp
}

// tableIIIWorkload describes one Table III application row.
type tableIIIWorkload struct {
	name       string
	graph      *taskgraph.Graph
	deadline   float64
	iterations int
}

// tableIIIWorkloads builds the paper's application set: MPEG-2 plus random
// graphs of 20..100 tasks with the §V parameterization and deadlines.
func tableIIIWorkloads(cfg Config) []tableIIIWorkload {
	w := []tableIIIWorkload{{
		name:       "MPEG-2",
		graph:      taskgraph.MPEG2(),
		deadline:   taskgraph.MPEG2Deadline,
		iterations: taskgraph.MPEG2Frames,
	}}
	for _, n := range []int{20, 40, 60, 80, 100} {
		w = append(w, tableIIIWorkload{
			name:       fmt.Sprintf("%d tasks", n),
			graph:      taskgraph.MustRandom(taskgraph.DefaultRandomConfig(n), cfg.Seed+int64(n)),
			deadline:   taskgraph.RandomDeadline(n),
			iterations: 1,
		})
	}
	return w
}

// TableIIICores is the architecture allocation sweep of Table III.
var TableIIICores = []int{2, 3, 4, 5, 6}

// TableIII runs the proposed optimization (Exp:4) for every application on
// MPSoCs of two to six cores. Each cell is one Explore driven by the
// concurrent exploration engine (cfg.Parallelism workers over the scaling
// combinations); results are deterministic because every cell derives its
// own seeds from cfg.Seed and the engine's reduction is order-independent.
func TableIII(cfg Config) (*TableIIIResult, error) {
	cfg = cfg.withDefaults()
	workloads := tableIIIWorkloads(cfg)
	res := &TableIIIResult{Apps: make([]TableIIIApp, len(workloads))}

	for a := range workloads {
		res.Apps[a].Name = workloads[a].name
		res.Apps[a].Cells = make([]TableIIICell, len(TableIIICores))
	}
	for a, wl := range workloads {
		for ci, cores := range TableIIICores {
			p, err := arch.NewPlatform(cores, arch.ARM7Levels3())
			if err != nil {
				return nil, err
			}
			mcfg := mapping.Config{
				SER:         cfg.serModel(),
				DeadlineSec: wl.deadline,
				Iterations:  wl.iterations,
				SearchMoves: cfg.SearchMoves,
				Seed:        cfg.Seed + int64(a)*101 + int64(cores),
				Parallelism: cfg.Parallelism,
				Strategy:    mapping.StrategyExhaustive, // paper tables stay exhaustive
			}
			best, _, err := mapping.Explore(wl.graph, p, mapping.SEAMapper(mcfg), mcfg)
			if err != nil {
				return nil, fmt.Errorf("expt: table3 %s/%d cores: %w", wl.name, cores, err)
			}
			res.Apps[a].Cells[ci] = TableIIICell{
				Cores:  cores,
				PowerW: best.Eval.PowerW,
				Gamma:  best.Eval.Gamma,
				Design: best,
			}
		}
	}
	return res, nil
}

// App returns the row with the given name, or nil.
func (r *TableIIIResult) App(name string) *TableIIIApp {
	for i := range r.Apps {
		if r.Apps[i].Name == name {
			return &r.Apps[i]
		}
	}
	return nil
}

// table builds the paper-style Table III.
func (r *TableIIIResult) table() *Table {
	headers := []string{"App."}
	for _, c := range TableIIICores {
		headers = append(headers, fmt.Sprintf("%dC P,mW", c), fmt.Sprintf("%dC Γ", c))
	}
	t := &Table{
		Title:   "Table III: power and SEUs experienced vs architecture allocation (proposed optimization)",
		Headers: headers,
	}
	for _, app := range r.Apps {
		row := []string{app.Name}
		for _, cell := range app.Cells {
			row = append(row,
				fmt.Sprintf("%.2f", cell.PowerW*1e3),
				fmt.Sprintf("%.3g", cell.Gamma))
		}
		t.AddRow(row...)
	}
	return t
}

// Render writes the paper-style table.
func (r *TableIIIResult) Render(w io.Writer) { r.table().Render(w) }

// CSVTo writes the table as CSV.
func (r *TableIIIResult) CSVTo(w io.Writer) { r.table().CSV(w) }
