// Package mapping implements the paper's contribution: soft error-aware
// design optimization of an application task graph on a DVS-capable MPSoC
// (Section IV).
//
// The optimization has three cooperating pieces:
//
//   - InitialSEAMapping (Fig. 6): a greedy constructive mapping that walks
//     the task graph dependency-first, packing each core with the dependent
//     task that adds the fewest SEUs (register-set union growth × time ×
//     λ) until the core's busy time approaches the real-time constraint.
//   - OptimizedMapping (Fig. 7): local search around the initial mapping
//     using task movements and swaps, list-scheduling every candidate and
//     keeping the feasible mapping with the fewest SEUs experienced.
//   - Explore (Fig. 4): the outer design loop — enumerate voltage-scaling
//     combinations (internal/vscale), run the mapper at each, and keep the
//     deadline-meeting design with minimum power, tie-broken by minimum Γ.
package mapping

import (
	"fmt"
	"sort"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/pareto"
	"seadopt/internal/registers"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// Config parameterizes the soft error-aware optimization.
type Config struct {
	// SER is the soft error rate model (λ as a function of V_dd).
	SER faults.SERModel
	// DeadlineSec is the real-time constraint T_Mref.
	DeadlineSec float64
	// Iterations is the stream-iteration count for T_M semantics
	// (taskgraph.MPEG2Frames for the decoder, 1 for plain DAGs).
	Iterations int
	// SearchMoves bounds the OptimizedMapping neighborhood search per
	// scaling combination (the paper uses a wall-clock budget; an iteration
	// budget keeps runs deterministic). Zero selects DefaultSearchMoves.
	SearchMoves int
	// Seed drives the (deterministic) random neighborhood generation.
	Seed int64
	// Parallelism bounds the Explore worker pool: each worker maps one
	// scaling combination at a time on its own reusable evaluator. 0
	// selects GOMAXPROCS; 1 runs sequentially. Results are identical at
	// any setting.
	Parallelism int
	// Progress, when non-nil, receives one callback per resolved scaling
	// combination, in visit order. Callbacks run on the exploring
	// goroutine; keep them fast.
	Progress func(Progress)
	// Probe optionally shares a feasibility-probe cache across Explore
	// calls over the same workload (see ProbeCache). Nil gives each call
	// a private cache.
	Probe *ProbeCache
	// Strategy selects how Explore walks the scaling enumeration: "" or
	// StrategyBranchAndBound (default, provably the same answer as
	// exhaustive), StrategyExhaustive (map every combination), or
	// StrategySampled (budgeted random portfolio, approximate).
	Strategy Strategy
	// SampleBudget bounds StrategySampled's portfolio size; 0 selects
	// DefaultSampleBudget. Ignored by the other strategies.
	SampleBudget int
	// Ranked makes StrategyBranchAndBound seed its dominance incumbent
	// before the deterministic stream starts: a sequential pass walks
	// combinations in ascending nominal power (vscale.RankedFrontier),
	// prunes bound-infeasible ones, and probes the rest until the first
	// probe-feasible combination; its nominal power — the minimum of any
	// probe-feasible combination — becomes the dominance threshold from
	// position zero. The fold order stays the descending-lexicographic
	// enumeration, so the chosen Design, perScaling and the Progress stream
	// remain deterministic (and the Design byte-identical to
	// StrategyExhaustive); only the Pruned/Skipped split can differ from an
	// unseeded run. Requires StrategyBranchAndBound; ignored by the Pareto
	// fold.
	Ranked bool
	// Objectives selects the objective components of the Pareto fold
	// (ExploreParetoContext); 0 selects pareto.DefaultObjectives (power,
	// makespan and Γ). Ignored by the scalar fold.
	Objectives pareto.Objectives
	// DiscardPerScaling suppresses the perScaling return of Explore so
	// huge enumerations don't retain one Design per combination; callers
	// that only need the best design (the facade, the service) set it.
	DiscardPerScaling bool
	// Reuse shares bounds precompute, probe cache and pooled evaluators
	// across explorations of the same workload (a sweep's points, or
	// fingerprint-matching service jobs). Nil disables sharing. See Reuse
	// for the sharing contract. Results are byte-identical with or without
	// it.
	Reuse *Reuse
	// WarmHints offers prior winners' combination indices as warm-start
	// incumbent candidates to StrategyBranchAndBound's scalar fold. Each
	// hint is re-validated by this run's own probe under this run's
	// deadline before it may seed the dominance threshold, so stale or
	// bogus hints cost a probe but never change the chosen Design — like
	// Ranked, only the Pruned/Skipped split of Progress can differ from a
	// cold run. Ignored when Ranked is set, under other strategies, and by
	// the Pareto fold.
	WarmHints []int
	// WarmFrontier offers a prior fingerprint-matching Pareto run's
	// frontier as warm-start dominance ghosts to ExploreParetoContext under
	// StrategyBranchAndBound. Sound only when that run used identical
	// mapper inputs (graph, platform, deadline, SER, seed, budgets) and
	// differed at most in Objectives: each point's vector must be exactly
	// what this run realizes at that combination. The frontier returned is
	// then byte-identical to a cold run. Points missing this run's deadline
	// are dropped defensively. Ignored by the scalar fold.
	WarmFrontier []WarmPoint
	// Telemetry, when non-nil, collects observe-only instrumentation —
	// per-phase busy clocks, verdict counters, probe-cache and evaluator
	// stats, incumbent/bound events and per-worker spans — snapshotted via
	// Telemetry.Stats after the exploration returns. It never influences
	// any engine decision: results are byte-identical with or without it.
	Telemetry *Telemetry
}

// DefaultSearchMoves is the per-scaling neighborhood budget when
// Config.SearchMoves is zero.
const DefaultSearchMoves = 4000

func (c Config) withDefaults() Config {
	if c.SearchMoves == 0 {
		c.SearchMoves = DefaultSearchMoves
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.SER.Validate(); err != nil {
		return err
	}
	if c.DeadlineSec < 0 {
		return fmt.Errorf("mapping: negative deadline %v", c.DeadlineSec)
	}
	if c.SearchMoves < 0 {
		return fmt.Errorf("mapping: negative search budget %d", c.SearchMoves)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("mapping: negative parallelism %d", c.Parallelism)
	}
	if err := c.Strategy.Valid(); err != nil {
		return err
	}
	if c.SampleBudget < 0 {
		return fmt.Errorf("mapping: negative sample budget %d", c.SampleBudget)
	}
	if c.Ranked && c.Strategy.withDefault() != StrategyBranchAndBound {
		return fmt.Errorf("mapping: Ranked incumbent seeding requires StrategyBranchAndBound, got %q", c.Strategy)
	}
	if c.Objectives != 0 {
		if err := c.Objectives.Valid(); err != nil {
			return err
		}
	}
	return nil
}

// InitialSEAMapping implements the constructive stage of Fig. 6. Cores
// 0..C-2 are filled one at a time: starting from the front of the candidate
// queue (seeded with the graph's root tasks), the mapper repeatedly adds the
// unmapped dependent of the current task that yields the fewest additional
// SEUs on this core — the candidate minimizing
//
//	(union register bits after adding) × (core busy seconds after adding) × λ_core
//
// — stopping when the core's busy time would reach the deadline or when the
// remaining tasks are just enough to populate the remaining cores. Dependents
// not chosen spill into the queue for later cores; any tasks left when the
// loop ends are assigned to the last core.
func InitialSEAMapping(g *taskgraph.Graph, p *arch.Platform, scaling []int, cfg Config) (sched.Mapping, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.ValidScaling(scaling); err != nil {
		return nil, err
	}
	n := g.N()
	cores := p.Cores()
	m := make(sched.Mapping, n)
	for i := range m {
		m[i] = -1
	}

	freq := make([]float64, cores)
	lambda := make([]float64, cores)
	for c, s := range scaling {
		level := p.MustCoreLevel(c, s)
		freq[c] = level.FreqHz()
		lambda[c] = cfg.SER.RatePerSec(level.Vdd)
	}

	// Candidate queue seeded with the root tasks (line 1 generalized to
	// multi-root graphs so every task stays reachable).
	var queue []taskgraph.TaskID
	inQueue := make([]bool, n)
	pushQueue := func(t taskgraph.TaskID) {
		if m[t] < 0 && !inQueue[t] {
			inQueue[t] = true
			queue = append(queue, t)
		}
	}
	popQueue := func() (taskgraph.TaskID, bool) {
		for len(queue) > 0 {
			t := queue[0]
			queue = queue[1:]
			inQueue[t] = false
			if m[t] < 0 {
				return t, true
			}
		}
		return 0, false
	}
	for _, r := range g.Roots() {
		pushQueue(r)
	}

	unmapped := n
	assign := func(t taskgraph.TaskID, core int) {
		m[t] = core
		unmapped--
	}

	deadline := cfg.DeadlineSec

	for core := 0; core < cores-1; core++ {
		t, ok := popQueue()
		if !ok {
			break
		}
		assign(t, core)
		coreSet := g.Task(t).Registers.Clone()
		coreSec := float64(g.Task(t).Cycles) / freq[core]
		inv := g.Inventory()

		for {
			// Stop when the core is full (busy time at the deadline) or
			// when the remaining tasks are needed for the remaining cores
			// (lines 4, 11-13).
			if deadline > 0 && coreSec >= deadline {
				break
			}
			if unmapped <= cores-1-core {
				break
			}
			// L: unmapped dependents of the current task, scored by the
			// SEUs they would add if mapped here (line 5).
			type cand struct {
				id    taskgraph.TaskID
				score float64
				sec   float64
			}
			var l []cand
			for _, e := range g.Succs(t) {
				if m[e.To] >= 0 {
					continue
				}
				newBits := inv.SetBits(registers.Union(coreSet, g.Task(e.To).Registers))
				newSec := coreSec + float64(g.Task(e.To).Cycles)/freq[core]
				l = append(l, cand{
					id:    e.To,
					score: float64(newBits) * newSec * lambda[core],
					sec:   newSec,
				})
			}
			sort.Slice(l, func(i, j int) bool {
				if l[i].score != l[j].score {
					return l[i].score < l[j].score
				}
				if l[i].sec != l[j].sec {
					return l[i].sec < l[j].sec
				}
				return l[i].id < l[j].id
			})

			if len(l) == 0 {
				// Line 6-7: no dependents to extend with — rotate the queue
				// (the paper swaps the last two entries) and continue from
				// its front; bail out if that cannot make progress.
				if len(queue) >= 2 {
					queue[len(queue)-1], queue[len(queue)-2] = queue[len(queue)-2], queue[len(queue)-1]
				}
				next, ok := popQueue()
				if !ok {
					break
				}
				// Deadline guard before committing the queue task here.
				nextSec := coreSec + float64(g.Task(next).Cycles)/freq[core]
				if deadline > 0 && nextSec > deadline {
					pushQueue(next)
					break
				}
				assign(next, core)
				coreSet.UnionWith(g.Task(next).Registers)
				coreSec = nextSec
				t = next
				continue
			}

			best := l[0]
			if deadline > 0 && best.sec > deadline {
				// Even the cheapest dependent overruns the core; spill all
				// candidates and move to the next core.
				for _, c := range l {
					pushQueue(c.id)
				}
				break
			}
			// Lines 9-10: map the min-SEU dependent, spill the rest.
			assign(best.id, core)
			coreSet.UnionWith(g.Task(best.id).Registers)
			coreSec = best.sec
			for _, c := range l[1:] {
				pushQueue(c.id)
			}
			t = best.id
		}
	}

	// Whatever is left belongs to the last core (the Fig. 8 walk-through
	// maps the residual queue there).
	for t := 0; t < n; t++ {
		if m[t] < 0 {
			m[t] = cores - 1
		}
	}
	repairEmptyCores(g, m, cores)
	return m, nil
}

// repairEmptyCores enforces the Fig. 6 premise that every allocated core
// hosts at least one task (when N ≥ C): empty cores steal the last-mapped
// task from the most-loaded core, which keeps the greedy clusters intact.
func repairEmptyCores(g *taskgraph.Graph, m sched.Mapping, cores int) {
	if g.N() < cores {
		return
	}
	loads := m.CoreLoads(cores)
	for c := 0; c < cores; c++ {
		if loads[c] > 0 {
			continue
		}
		donor := 0
		for i := 1; i < cores; i++ {
			if loads[i] > loads[donor] {
				donor = i
			}
		}
		if loads[donor] < 2 {
			return // nothing to steal without emptying the donor
		}
		for t := g.N() - 1; t >= 0; t-- {
			if m[t] == donor {
				m[t] = c
				loads[donor]--
				loads[c]++
				break
			}
		}
	}
}
