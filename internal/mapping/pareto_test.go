package mapping

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/pareto"
	"seadopt/internal/taskgraph"
)

// frontierFingerprint renders an ordered frontier byte-for-byte.
func frontierFingerprint(frontier []*Design) string {
	parts := make([]string, len(frontier))
	for i, d := range frontier {
		parts[i] = designFingerprint(d)
	}
	return strings.Join(parts, " | ")
}

// TestParetoMatchesExhaustive is the Pareto mode's equivalence property:
// for the paper workloads (MPEG-2, Fig. 8) and seeded §V random graphs the
// branch-and-bound frontier must be byte-identical to the exhaustive one at
// Parallelism 1, 4 and GOMAXPROCS, and the frontier itself must be sound:
// feasible, mutually non-dominated, ordered by ascending power.
func TestParetoMatchesExhaustive(t *testing.T) {
	workloads := []struct {
		name     string
		g        *taskgraph.Graph
		cores    int
		deadline float64
		iters    int
	}{
		{"mpeg2", taskgraph.MPEG2(), 4, taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames},
		{"fig8", taskgraph.Fig8(), 3, taskgraph.Fig8Deadline, 1},
		{"random20", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3), 4, taskgraph.RandomDeadline(20), 1},
		{"random30", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 8), 3, taskgraph.RandomDeadline(30) * 0.2, 1},
	}
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, wl := range workloads {
		p := plat(wl.cores)
		base := cfg(wl.deadline, wl.iters)
		base.SearchMoves = 150

		exh := base
		exh.Strategy = StrategyExhaustive
		wantFrontier, err := ExplorePareto(wl.g, p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", wl.name, err)
		}
		want := frontierFingerprint(wantFrontier)
		assertSoundFrontier(t, wl.name, p, wantFrontier, wl.deadline)

		for _, par := range parallelisms {
			bnb := base
			bnb.Strategy = StrategyBranchAndBound
			bnb.Parallelism = par
			gotFrontier, err := ExplorePareto(wl.g, p, SEAMapper(bnb), bnb)
			if err != nil {
				t.Fatalf("%s bnb par=%d: %v", wl.name, par, err)
			}
			if got := frontierFingerprint(gotFrontier); got != want {
				t.Errorf("%s par=%d: frontiers diverged:\n  exhaustive: %s\n  bnb:        %s",
					wl.name, par, want, got)
			}
		}
	}
}

// assertSoundFrontier checks the structural frontier invariants: every
// member meets the deadline, no member dominates or exactly ties another,
// and the ordering is ascending nominal power. A single infeasible member is
// the documented all-infeasible fallback (the scalar degenerate verdict) and
// is exempt.
func assertSoundFrontier(t *testing.T, name string, p *arch.Platform, frontier []*Design, deadline float64) {
	t.Helper()
	if len(frontier) == 0 {
		t.Fatalf("%s: empty frontier", name)
	}
	if len(frontier) == 1 && !frontier[0].Eval.MeetsDeadline {
		return // all-infeasible fallback: the scalar least-infeasible design
	}
	vecs := make([]pareto.Vector, len(frontier))
	for i, d := range frontier {
		if deadline > 0 && !d.Eval.MeetsDeadline {
			t.Errorf("%s: frontier member %d misses the deadline", name, i)
		}
		nominal, err := p.DynamicPower(d.Scaling, nil)
		if err != nil {
			t.Fatal(err)
		}
		vecs[i] = pareto.Vector{Power: nominal, Makespan: d.Eval.TMSeconds, Gamma: d.Eval.Gamma}
		if i > 0 && vecs[i].Power < vecs[i-1].Power {
			t.Errorf("%s: frontier not ordered by ascending power at %d", name, i)
		}
	}
	for i := range vecs {
		for j := range vecs {
			if i == j {
				continue
			}
			if vecs[i].Dominates(vecs[j], pareto.DefaultObjectives) {
				t.Errorf("%s: frontier member %d dominates member %d", name, i, j)
			}
			if vecs[i].Equal(vecs[j], pareto.DefaultObjectives) {
				t.Errorf("%s: frontier members %d and %d tie exactly", name, i, j)
			}
		}
	}
}

// TestParetoDeterministicEvents: the Pareto event stream — indices,
// verdicts, frontier sizes, admissions and the running best — is identical
// at any parallelism.
func TestParetoDeterministicEvents(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(25), 4)
	p := plat(4)
	base := cfg(taskgraph.RandomDeadline(25)*0.3, 1)
	base.SearchMoves = 120

	stream := func(par int) []string {
		c := base
		c.Parallelism = par
		var out []string
		c.Progress = func(pr Progress) {
			out = append(out, fmt.Sprintf("%d/%d c=%d %v pruned=%v skipped=%v front=%d admitted=%v best=%s",
				pr.Index, pr.Total, pr.Combination, pr.Scaling, pr.Pruned, pr.Skipped,
				pr.FrontierSize, pr.Admitted, designFingerprint(pr.Best)))
		}
		if _, err := ExplorePareto(g, p, SEAMapper(c), c); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := stream(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		got := stream(par)
		if len(got) != len(ref) {
			t.Fatalf("par=%d: %d events, want %d", par, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("par=%d event %d diverged:\n  seq: %s\n  par: %s", par, i, ref[i], got[i])
			}
		}
	}
}

// TestParetoContainsScalarOptimum: the minimum-power frontier member
// realizes the same nominal power as the scalar loop's chosen design — the
// scalar answer is one point of the surface the frontier keeps whole.
func TestParetoContainsScalarOptimum(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	c.SearchMoves = 150

	scalarBest, _, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := ExplorePareto(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	wantNominal, err := p.DynamicPower(scalarBest.Scaling, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotNominal, err := p.DynamicPower(frontier[0].Scaling, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotNominal != wantNominal {
		t.Errorf("min-power frontier member has nominal %v, scalar best %v", gotNominal, wantNominal)
	}
	if len(frontier) < 2 {
		t.Logf("note: frontier has %d member(s) on MPEG-2 — trade-off surface collapsed", len(frontier))
	}
}

// TestParetoBnBPrunesAndSkips: on a tight-deadline workload the deadline
// bound prunes, and with the power-only objective the frontier's
// bound-dominance skips every combination pricier than the first feasible
// member — while the frontier stays byte-identical to exhaustive. (Under
// the full three-objective trade-off, skips need a zero-Γ member to be
// admissible, so the walk relies on deadline pruning alone; the power-only
// subset is where frontier dominance provably engages.)
func TestParetoBnBPrunesAndSkips(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 8)
	p := plat(3)
	base := cfg(taskgraph.RandomDeadline(30)*0.5, 1)
	base.SearchMoves = 120
	base.Objectives = pareto.ObjPower

	exh := base
	exh.Strategy = StrategyExhaustive
	want, err := ExplorePareto(g, p, SEAMapper(exh), exh)
	if err != nil {
		t.Fatal(err)
	}

	bnb := base
	bnb.Strategy = StrategyBranchAndBound
	var pruned, skipped int
	bnb.Progress = func(pr Progress) {
		if pr.Pruned {
			pruned++
		}
		if pr.Skipped {
			skipped++
		}
	}
	got, err := ExplorePareto(g, p, SEAMapper(bnb), bnb)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Error("tight deadline pruned nothing; bound is vacuous")
	}
	if skipped == 0 {
		t.Error("power/makespan objectives skipped nothing; frontier bound-dominance never engaged")
	}
	if frontierFingerprint(got) != frontierFingerprint(want) {
		t.Errorf("pruned frontier diverged:\n  exhaustive: %s\n  bnb:        %s",
			frontierFingerprint(want), frontierFingerprint(got))
	}
}

// TestParetoImpossibleDeadline: with nothing feasible the Pareto mode falls
// back to the scalar exhaustive verdict as a single-entry frontier.
func TestParetoImpossibleDeadline(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	base := cfg(1e-9, 1) // nanosecond deadline: nothing is feasible
	base.SearchMoves = 100

	exh := base
	exh.Strategy = StrategyExhaustive
	wantBest, _, err := Explore(g, p, SEAMapper(exh), exh)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := ExplorePareto(g, p, SEAMapper(base), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 1 {
		t.Fatalf("all-infeasible frontier has %d members, want 1", len(frontier))
	}
	if got, want := designFingerprint(frontier[0]), designFingerprint(wantBest); got != want {
		t.Errorf("fallback diverged from scalar exhaustive:\n  want: %s\n  got:  %s", want, got)
	}
	if frontier[0].Eval.MeetsDeadline {
		t.Error("impossible deadline reported met")
	}

	// Under the exhaustive strategy nothing is pruned, so the degenerate
	// verdict comes from the embedded scalar fold without a second pass —
	// and must be byte-identical to the branch-and-bound fallback's.
	exhPareto := exh
	exhFrontier, err := ExplorePareto(g, p, SEAMapper(exhPareto), exhPareto)
	if err != nil {
		t.Fatal(err)
	}
	if len(exhFrontier) != 1 {
		t.Fatalf("exhaustive all-infeasible frontier has %d members, want 1", len(exhFrontier))
	}
	if got, want := designFingerprint(exhFrontier[0]), designFingerprint(wantBest); got != want {
		t.Errorf("embedded scalar verdict diverged from exhaustive:\n  want: %s\n  got:  %s", want, got)
	}
}

// TestParetoObjectiveSubsets: restricting the objectives yields sound
// frontiers whose dominance is judged on the active components only, and
// BnB still matches exhaustive under every subset.
func TestParetoObjectiveSubsets(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	for _, obj := range []pareto.Objectives{
		pareto.ObjPower, pareto.ObjGamma,
		pareto.ObjPower | pareto.ObjGamma,
		pareto.ObjMakespan | pareto.ObjGamma,
	} {
		base := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
		base.SearchMoves = 120
		base.Objectives = obj

		exh := base
		exh.Strategy = StrategyExhaustive
		want, err := ExplorePareto(g, p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("obj %v exhaustive: %v", obj, err)
		}
		got, err := ExplorePareto(g, p, SEAMapper(base), base)
		if err != nil {
			t.Fatalf("obj %v bnb: %v", obj, err)
		}
		if frontierFingerprint(got) != frontierFingerprint(want) {
			t.Errorf("obj %v: frontier diverged between strategies", obj)
		}
		for i, a := range want {
			for j, b := range want {
				if i == j {
					continue
				}
				na, _ := p.DynamicPower(a.Scaling, nil)
				nb, _ := p.DynamicPower(b.Scaling, nil)
				va := pareto.Vector{Power: na, Makespan: a.Eval.TMSeconds, Gamma: a.Eval.Gamma}
				vb := pareto.Vector{Power: nb, Makespan: b.Eval.TMSeconds, Gamma: b.Eval.Gamma}
				if va.Dominates(vb, obj) || va.Equal(vb, obj) {
					t.Errorf("obj %v: members %d/%d not mutually non-dominated", obj, i, j)
				}
			}
		}
	}
}
