package mapping

import (
	"fmt"
	"runtime"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// heteroPlat builds a mixed platform: `fast` cores on the Fig. 11 4-level
// table, `std` cores on Table I, and one 2-level core — at least two
// distinct DVS tables however it is sliced.
func heteroPlat(t *testing.T, fast, std int) *arch.Platform {
	t.Helper()
	types := []arch.ProcType{
		{Name: "fast4", Levels: arch.ARM7Levels4()},
		{Name: "arm7", Levels: arch.ARM7Levels3()},
		{Name: "low2", Levels: arch.ARM7Levels2()},
	}
	var coreTypes []int
	for i := 0; i < fast; i++ {
		coreTypes = append(coreTypes, 0)
	}
	for i := 0; i < std; i++ {
		coreTypes = append(coreTypes, 1)
	}
	coreTypes = append(coreTypes, 2)
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestHeterogeneousExploreCoversSpace: the engine visits exactly the
// platform's mixed-radix space, in enumeration order, with stable indices.
func TestHeterogeneousExploreCoversSpace(t *testing.T) {
	g := taskgraph.Fig8()
	p := heteroPlat(t, 1, 1) // caps [4,3,2] → 24 combinations
	c := cfg(taskgraph.Fig8Deadline, 1)
	c.SearchMoves = 80
	c.Strategy = StrategyExhaustive
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	want := space.All()
	var got [][]int
	c.Progress = func(pr Progress) {
		if pr.Combination != pr.Index {
			t.Errorf("exhaustive visit %d carries combination %d", pr.Index, pr.Combination)
		}
		got = append(got, append([]int(nil), pr.Scaling...))
	}
	if _, _, err := Explore(g, p, SEAMapper(c), c); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 24 {
		t.Fatalf("visited %d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Errorf("visit %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestHeterogeneousBnBMatchesExhaustive is the acceptance property of the
// generalization: on platforms with ≥ 2 distinct level tables the default
// branch-and-bound strategy returns a byte-identical best Design to the
// exhaustive reference at Parallelism 1, 4 and GOMAXPROCS.
func TestHeterogeneousBnBMatchesExhaustive(t *testing.T) {
	workloads := []struct {
		name     string
		g        *taskgraph.Graph
		p        *arch.Platform
		deadline float64
		iters    int
	}{
		{"fig8-mixed3", taskgraph.Fig8(), heteroPlat(t, 1, 1), taskgraph.Fig8Deadline, 1},
		{"mpeg2-mixed4", taskgraph.MPEG2(), heteroPlat(t, 1, 2), taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames},
		{"random20-mixed4", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3),
			heteroPlat(t, 2, 1), taskgraph.RandomDeadline(20) * 0.5, 1},
	}
	for _, wl := range workloads {
		base := cfg(wl.deadline, wl.iters)
		base.SearchMoves = 120

		exh := base
		exh.Strategy = StrategyExhaustive
		wantBest, wantPer, err := Explore(wl.g, wl.p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", wl.name, err)
		}
		want := designFingerprint(wantBest)

		for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			bnb := base
			bnb.Strategy = StrategyBranchAndBound
			bnb.Parallelism = par
			var avoided int
			bnb.Progress = func(pr Progress) {
				if pr.Pruned || pr.Skipped {
					avoided++
				}
			}
			gotBest, gotPer, err := Explore(wl.g, wl.p, SEAMapper(bnb), bnb)
			if err != nil {
				t.Fatalf("%s bnb par=%d: %v", wl.name, par, err)
			}
			if got := designFingerprint(gotBest); got != want {
				t.Errorf("%s par=%d: designs diverged:\n  exhaustive: %s\n  bnb:        %s",
					wl.name, par, want, got)
			}
			if len(gotPer) != len(wantPer) {
				t.Errorf("%s par=%d: perScaling has %d entries, exhaustive %d",
					wl.name, par, len(gotPer), len(wantPer))
			}
			for i := range gotPer {
				if gotPer[i] == nil {
					continue
				}
				if g, w := designFingerprint(gotPer[i]), designFingerprint(wantPer[i]); g != w {
					t.Errorf("%s par=%d: perScaling[%d] diverged:\n  exhaustive: %s\n  bnb:        %s",
						wl.name, par, i, w, g)
				}
			}
			if avoided == 0 {
				t.Errorf("%s par=%d: branch-and-bound avoided nothing on the mixed platform", wl.name, par)
			}
		}
	}
}

// TestHeterogeneousParetoMatchesExhaustive: the Pareto frontier over a mixed
// platform is byte-identical between branch-and-bound and exhaustive at
// Parallelism 1, 4 and GOMAXPROCS.
func TestHeterogeneousParetoMatchesExhaustive(t *testing.T) {
	g64, dl64 := graph64(t)
	workloads := []struct {
		name     string
		g        *taskgraph.Graph
		p        *arch.Platform
		deadline float64
		iters    int
		moves    int
	}{
		{"fig8-mixed3", taskgraph.Fig8(), heteroPlat(t, 1, 1), taskgraph.Fig8Deadline, 1, 120},
		{"mpeg2-mixed4", taskgraph.MPEG2(), heteroPlat(t, 1, 2), taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames, 120},
		// The flagship-shaped 64-core space (9405 combinations) at the
		// reduced test budget: the frontier fold's bound-dominance skipping
		// and deadline pruning must stay byte-identical to exhaustive at
		// heterogeneous scale, not just on the small mixed platforms.
		{"hetero64", g64, plat64(t), dl64, 1, 8},
	}
	for _, wl := range workloads {
		if testing.Short() && wl.name == "hetero64" {
			continue
		}
		base := cfg(wl.deadline, wl.iters)
		base.SearchMoves = wl.moves

		exh := base
		exh.Strategy = StrategyExhaustive
		wantFrontier, err := ExplorePareto(wl.g, wl.p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", wl.name, err)
		}
		want := frontierFingerprint(wantFrontier)
		assertSoundFrontier(t, wl.name, wl.p, wantFrontier, wl.deadline)

		for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			bnb := base
			bnb.Strategy = StrategyBranchAndBound
			bnb.Parallelism = par
			gotFrontier, err := ExplorePareto(wl.g, wl.p, SEAMapper(bnb), bnb)
			if err != nil {
				t.Fatalf("%s bnb par=%d: %v", wl.name, par, err)
			}
			if got := frontierFingerprint(gotFrontier); got != want {
				t.Errorf("%s par=%d: frontiers diverged:\n  exhaustive: %s\n  bnb:        %s",
					wl.name, par, want, got)
			}
		}
	}
}

// TestHomogeneousViaHeterogeneousPath: a single-type heterogeneous platform
// is the same hardware as the classic NewPlatform one, and the engine must
// return byte-identical designs for both — the behavior-preservation half of
// the generalization.
func TestHomogeneousViaHeterogeneousPath(t *testing.T) {
	g := taskgraph.MPEG2()
	classic := plat(4)
	viaHetero, err := arch.NewHeterogeneousPlatform(
		[]arch.ProcType{{Name: "renamed-arm7", Levels: arch.ARM7Levels3()}},
		[]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	c.SearchMoves = 150

	run := func(p *arch.Platform) (string, []string) {
		best, per, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatal(err)
		}
		var pf []string
		for _, d := range per {
			pf = append(pf, designFingerprint(d))
		}
		return designFingerprint(best), pf
	}
	wantBest, wantPer := run(classic)
	gotBest, gotPer := run(viaHetero)
	if gotBest != wantBest {
		t.Errorf("single-type heterogeneous platform diverged:\n  classic: %s\n  hetero:  %s", wantBest, gotBest)
	}
	if fmt.Sprint(gotPer) != fmt.Sprint(wantPer) {
		t.Error("per-combination designs diverged between classic and single-type heterogeneous platforms")
	}
}

// TestHeterogeneousSampledDeterministic: the sampled strategy draws the same
// portfolio from the mixed-radix space at any parallelism.
func TestHeterogeneousSampledDeterministic(t *testing.T) {
	g := taskgraph.Fig8()
	p := heteroPlat(t, 1, 1)
	base := cfg(taskgraph.Fig8Deadline, 1)
	base.SearchMoves = 80
	base.Strategy = StrategySampled
	base.SampleBudget = 5

	run := func(par int) (string, []int) {
		c := base
		c.Parallelism = par
		var combos []int
		c.Progress = func(pr Progress) { combos = append(combos, pr.Combination) }
		best, _, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatal(err)
		}
		return designFingerprint(best), combos
	}
	best1, combos1 := run(1)
	best4, combos4 := run(4)
	if best1 != best4 || fmt.Sprint(combos1) != fmt.Sprint(combos4) {
		t.Fatalf("sampled mixed-space run not deterministic:\n  %s %v\n  %s %v", best1, combos1, best4, combos4)
	}
	if len(combos1) != 5 {
		t.Fatalf("visited %d combinations, want 5", len(combos1))
	}
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range combos1 {
		if idx < 0 || idx >= space.Count() {
			t.Errorf("sampled combination index %d outside the %d-combination space", idx, space.Count())
		}
	}
}
