package mapping

// Distributed sharded exploration.
//
// The combination space is a totally ordered enumeration with O(1)
// Rank/Unrank (vscale.Space), so it partitions into contiguous [Lo,Hi)
// shards that peer workers explore independently. Each worker runs the
// ordinary streaming core restricted to its range and returns a compact
// per-combination record stream (skip verdicts plus realized mappings);
// the coordinator then REPLAYS the exact single-node fold in global rank
// order, treating the records as an accelerator, not an authority:
//
//   - prune verdicts are recomputed from the coordinator's own bound
//     cursor (a pure function of the combination);
//   - dominance/skip verdicts are re-decided by the coordinator's own
//     fold state, consulting the shared feasibility probe when a record
//     lacks the probe verdict the single-node rule needs;
//   - folded designs are re-evaluated from the recorded mapping, and any
//     position the shards skipped but the coordinator's authoritative
//     rule wants to fold is recomputed outright via exploreCombo (designs
//     are pure functions of (graph, platform, Config, index)).
//
// Byte-identity of the merged Design/frontier and Progress stream with a
// single-node run therefore holds BY CONSTRUCTION: shard-side skips and
// cross-shard bound facts can only save work, never change the answer.
//
// While shards run, bound tightenings travel between them as Facts on a
// FactBoard: a shard that accepts a probed-feasible incumbent (scalar) or
// admits a frontier member (Pareto) publishes the fact, and every shard
// prunes against facts derived at global positions BEFORE its own range —
// those positions precede every position of the shard, so the dominance
// argument is the same as against a locally folded incumbent.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"seadopt/internal/arch"
	"seadopt/internal/pareto"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// ShardRange is one contiguous slice [Lo,Hi) of the combination
// enumeration, in stable Fig. 5 rank order.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ShardRanges splits an enumeration of total combinations into n
// contiguous near-equal ranges covering [0,total) in order. Ranges beyond
// the total come out empty (Lo == Hi), which ExploreShard handles.
func ShardRanges(total, n int) []ShardRange {
	if n < 1 {
		n = 1
	}
	out := make([]ShardRange, n)
	base, rem := total/n, total%n
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = ShardRange{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// Fact is one cross-shard pruning fact: a dominance threshold (scalar) or
// a realized frontier vector (Pareto) derived at global position Pos.
// Receivers apply only facts with Pos below their own range (Pos -1 marks
// the coordinator's pre-stream incumbent seed, below every range), so the
// soundness argument is positional, independent of arrival order.
type Fact struct {
	// Pos is the global enumeration position the fact was derived at;
	// -1 for the coordinator's ranked/warm incumbent seed.
	Pos int `json:"pos"`
	// Pareto distinguishes frontier-admission facts from scalar
	// dominance-threshold facts.
	Pareto bool `json:"pareto,omitempty"`
	// Nominal is the scaling's nominal power: the scalar dominance
	// threshold, or the Pareto vector's power component.
	Nominal float64 `json:"nominal"`
	// Makespan and Gamma complete the realized objective vector of a
	// Pareto admission fact.
	Makespan float64 `json:"makespan,omitempty"`
	Gamma    float64 `json:"gamma,omitempty"`
}

// FactBoard is the coordinator-owned fact bus: shards publish bound
// tightenings and subscribe to everyone else's. Facts are deduplicated,
// delivery order is unordered (facts are monotone accumulators), and
// subscribers first replay every fact already published. Safe for
// concurrent use; subscriber callbacks run outside the board lock and
// must be safe to call from multiple goroutines.
type FactBoard struct {
	mu    sync.Mutex
	facts []Fact
	seen  map[Fact]struct{}
	subs  []func(Fact)
}

// NewFactBoard returns an empty fact bus.
func NewFactBoard() *FactBoard {
	return &FactBoard{seen: make(map[Fact]struct{})}
}

// Publish records a fact and notifies subscribers; duplicate facts are
// dropped (reporting false), which keeps coordinator↔peer relays from
// echoing forever.
func (b *FactBoard) Publish(f Fact) bool {
	b.mu.Lock()
	if _, dup := b.seen[f]; dup {
		b.mu.Unlock()
		return false
	}
	b.seen[f] = struct{}{}
	b.facts = append(b.facts, f)
	subs := make([]func(Fact), len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	for _, fn := range subs {
		fn(f)
	}
	return true
}

// Since returns the facts published at or after cursor position n, plus
// the next cursor — the poll interface the HTTP fact exchange uses.
func (b *FactBoard) Since(n int) ([]Fact, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > len(b.facts) {
		n = len(b.facts)
	}
	return append([]Fact(nil), b.facts[n:]...), len(b.facts)
}

// Subscribe registers fn for every future fact and replays the already
// published ones, so late subscribers miss nothing.
func (b *FactBoard) Subscribe(fn func(Fact)) {
	b.mu.Lock()
	b.subs = append(b.subs, fn)
	replay := append([]Fact(nil), b.facts...)
	b.mu.Unlock()
	for _, f := range replay {
		fn(f)
	}
}

// ShardRecord is one combination's resolution inside a shard: the skip
// verdict the shard's fold reached, the probe verdict where the shard ran
// it, and the realized mapping where a design was produced. The
// coordinator treats all of it as hints — anything missing is recomputed.
type ShardRecord struct {
	// Idx is the combination's stable global enumeration index.
	Idx int `json:"idx"`
	// Skipped marks a fold-time dominance skip (as opposed to a design).
	Skipped bool `json:"skipped,omitempty"`
	// Probed/ProbeKnown carry the shard's feasibility-probe verdict;
	// ProbeKnown is false for dispatch-time skips that never probed.
	Probed     bool `json:"probed,omitempty"`
	ProbeKnown bool `json:"probe_known,omitempty"`
	// Mapping is the realized task→core assignment where the shard's
	// mapper ran; the coordinator re-evaluates it rather than shipping
	// the full evaluation.
	Mapping []int `json:"mapping,omitempty"`
}

// ShardRequest asks a worker to explore one range of the current problem.
// The problem itself (graph, platform, Config) travels out of band: in
// process via the runner closure, over HTTP via the canonical problem
// encoding.
type ShardRequest struct {
	Range ShardRange `json:"range"`
	// NoPrune forces an exhaustive walk of the range — the coordinator's
	// degenerate all-infeasible fallback pass.
	NoPrune bool `json:"no_prune,omitempty"`
	// Pareto selects the frontier fold (with its embedded scalar walk)
	// instead of the scalar incumbent fold.
	Pareto bool `json:"pareto,omitempty"`
	// InitialFacts seeds the worker's fact state for transports without a
	// live board at request time; ExploreShard republishes them locally.
	InitialFacts []Fact `json:"initial_facts,omitempty"`
}

// ShardResult is a worker's record stream: one entry per range position
// (records[i] resolves rank Range.Lo+i), nil for bound-pruned positions.
type ShardResult struct {
	Range   ShardRange     `json:"range"`
	Records []*ShardRecord `json:"records"`
}

// ShardRunner executes one shard request — in this process, in a sibling
// process, or on an HTTP peer — against a live fact board.
type ShardRunner func(ctx context.Context, req ShardRequest, board *FactBoard) (*ShardResult, error)

// InProcRunner returns a ShardRunner executing shards embedded in the
// calling process over the given workload; cfg's probe cache (materialize
// it first) is shared with the coordinator.
func InProcRunner(g *taskgraph.Graph, p *arch.Platform, mapper MapperFunc, cfg Config) ShardRunner {
	return func(ctx context.Context, req ShardRequest, board *FactBoard) (*ShardResult, error) {
		return ExploreShard(ctx, g, p, mapper, cfg, req, board)
	}
}

// rangeComboSource restricts the full-order walk to [lo,hi) while keeping
// the stable global enumeration indices.
func rangeComboSource(space *vscale.Space, lo, hi int) (*comboSource, error) {
	if lo == hi {
		return &comboSource{size: 0, next: func() ([]int, int, bool) { return nil, 0, false }}, nil
	}
	it, err := space.IterFrom(lo)
	if err != nil {
		return nil, err
	}
	remaining := hi - lo
	return &comboSource{
		size: hi - lo,
		next: func() ([]int, int, bool) {
			if remaining == 0 {
				return nil, 0, false
			}
			remaining--
			return it.Next()
		},
	}, nil
}

// shardScalarFold wraps the scalar fold with the cross-shard dominance
// threshold: facts from positions before the shard act exactly like a
// pre-seeded incumbent. The external threshold is a monotone-decreasing
// atomic consulted identically at dispatch, register and fold time, so
// every opportunistic skip stays reproducible by confirmSkip.
type shardScalarFold struct {
	inner *scalarFold
	lo    int
	board *FactBoard
	prune bool

	extBits   atomic.Uint64 // Float64bits of the external threshold
	extSeeded atomic.Bool
}

func newShardScalarFold(inner *scalarFold, lo int, board *FactBoard, prune bool) *shardScalarFold {
	s := &shardScalarFold{inner: inner, lo: lo, board: board, prune: prune}
	s.extBits.Store(math.Float64bits(math.Inf(1)))
	if board != nil && prune {
		board.Subscribe(s.applyFact)
	}
	return s
}

func (s *shardScalarFold) applyFact(f Fact) {
	if f.Pareto || f.Pos >= s.lo {
		return
	}
	for {
		old := s.extBits.Load()
		if math.Float64frombits(old) <= f.Nominal {
			break
		}
		if s.extBits.CompareAndSwap(old, math.Float64bits(f.Nominal)) {
			break
		}
	}
	s.extSeeded.Store(true)
}

func (s *shardScalarFold) extDominated(nominal float64) bool {
	return s.prune && s.extSeeded.Load() &&
		dominatedNominal(nominal, math.Float64frombits(s.extBits.Load()))
}

func (s *shardScalarFold) dispatchSkip(o *outcome) bool {
	return s.extDominated(o.nominal) || s.inner.dispatchSkip(o)
}

func (s *shardScalarFold) register(o *outcome, cancel context.CancelCauseFunc) bool {
	if s.extDominated(o.nominal) {
		return false
	}
	return s.inner.register(o, cancel)
}

func (s *shardScalarFold) unregister(pos int) { s.inner.unregister(pos) }

func (s *shardScalarFold) mapperSkippable() bool {
	return (s.prune && s.extSeeded.Load()) || s.inner.mapperSkippable()
}

func (s *shardScalarFold) confirmSkip(o *outcome) bool {
	if s.extDominated(o.nominal) {
		return true
	}
	// Mirror scalarFold's probe-infeasible rule under an external probed
	// incumbent the inner fold may not know about.
	if s.prune && s.extSeeded.Load() && o.probeKnown && !o.probed {
		return true
	}
	return s.inner.confirmSkip(o)
}

func (s *shardScalarFold) fold(o *outcome) {
	before := s.inner.domNominal
	had := s.inner.bestProbed || s.inner.seeded
	s.inner.fold(o)
	if s.board == nil || !o.probed {
		return
	}
	if now := s.inner.bestProbed || s.inner.seeded; now && (!had || s.inner.domNominal < before) {
		s.board.Publish(Fact{Pos: s.lo + o.pos, Nominal: s.inner.domNominal})
	}
}

func (s *shardScalarFold) annotate(ev *Progress) { s.inner.annotate(ev) }

// shardParetoFold wraps the Pareto fold with an external ghost frontier
// built from admission facts of positions before the shard. Points are
// only ever added, so DominatedBound stays monotone and every
// opportunistic skip is reproducible at fold time.
type shardParetoFold struct {
	inner *paretoFold
	lo    int
	board *FactBoard
	prune bool

	mu   sync.RWMutex
	ext  *pareto.Fold[struct{}]
	seen map[Fact]struct{}
}

func newShardParetoFold(inner *paretoFold, lo int, objectives pareto.Objectives, board *FactBoard, prune bool) (*shardParetoFold, error) {
	ext, err := pareto.NewFold[struct{}](objectives)
	if err != nil {
		return nil, err
	}
	s := &shardParetoFold{inner: inner, lo: lo, board: board, prune: prune,
		ext: ext, seen: make(map[Fact]struct{})}
	if board != nil && prune {
		board.Subscribe(s.applyFact)
	}
	return s, nil
}

func (s *shardParetoFold) applyFact(f Fact) {
	if !f.Pareto || f.Pos >= s.lo {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seen[f]; dup {
		return
	}
	s.seen[f] = struct{}{}
	s.ext.Offer(pareto.Vector{Power: f.Nominal, Makespan: f.Makespan, Gamma: f.Gamma},
		f.Pos, struct{}{})
}

func (s *shardParetoFold) extDominated(lb pareto.Vector) bool {
	if !s.prune {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ext.DominatedBound(lb)
}

func (s *shardParetoFold) dispatchSkip(o *outcome) bool {
	return s.extDominated(s.inner.bound(o)) || s.inner.dispatchSkip(o)
}

func (s *shardParetoFold) register(o *outcome, _ context.CancelCauseFunc) bool {
	return !s.dispatchSkip(o)
}

func (s *shardParetoFold) unregister(int) {}

func (s *shardParetoFold) mapperSkippable() bool { return s.inner.mapperSkippable() }

func (s *shardParetoFold) confirmSkip(o *outcome) bool {
	return s.extDominated(s.inner.bound(o)) || s.inner.confirmSkip(o)
}

func (s *shardParetoFold) fold(o *outcome) {
	s.inner.fold(o)
	if s.board == nil || !s.inner.admitted {
		return
	}
	e := o.design.Eval
	s.board.Publish(Fact{Pos: s.lo + o.pos, Pareto: true,
		Nominal: o.nominal, Makespan: e.TMSeconds, Gamma: e.Gamma})
}

func (s *shardParetoFold) annotate(ev *Progress) { s.inner.annotate(ev) }

// recordingFold decorates a shard's fold to capture the per-combination
// record stream the coordinator replays. Bound-pruned positions never
// reach the fold, leaving their record nil.
type recordingFold struct {
	inner   streamFold
	records []*ShardRecord
}

func (r *recordingFold) dispatchSkip(o *outcome) bool { return r.inner.dispatchSkip(o) }
func (r *recordingFold) register(o *outcome, cancel context.CancelCauseFunc) bool {
	return r.inner.register(o, cancel)
}
func (r *recordingFold) unregister(pos int)    { r.inner.unregister(pos) }
func (r *recordingFold) mapperSkippable() bool { return r.inner.mapperSkippable() }

func (r *recordingFold) confirmSkip(o *outcome) bool {
	if !r.inner.confirmSkip(o) {
		return false
	}
	rec := &ShardRecord{Idx: o.idx, Skipped: true, Probed: o.probed, ProbeKnown: o.probeKnown}
	if o.design != nil {
		// A dominance-skipped combination that did run the mapper: keep
		// the mapping so a coordinator that disagrees (the tolerance band
		// can differ by one incumbent) re-evaluates instead of re-mapping.
		rec.Mapping = append([]int(nil), o.design.Mapping...)
	}
	r.records[o.pos] = rec
	return true
}

func (r *recordingFold) fold(o *outcome) {
	r.records[o.pos] = &ShardRecord{Idx: o.idx, Probed: o.probed, ProbeKnown: o.probeKnown,
		Mapping: append([]int(nil), o.design.Mapping...)}
	r.inner.fold(o)
}

func (r *recordingFold) annotate(ev *Progress) { r.inner.annotate(ev) }

// ExploreShard is the worker side of the distributed exploration: it runs
// the ordinary streaming core over req.Range with the shard fold wrapper,
// publishing bound tightenings to (and pruning against) board, and
// returns the record stream for the coordinator's replay. Progress,
// telemetry, warm hints and ranked seeding are coordinator concerns and
// are forced off here.
func ExploreShard(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, req ShardRequest, board *FactBoard) (*ShardResult, error) {
	cfg = cfg.withDefaults()
	if req.Pareto && cfg.Objectives == 0 {
		cfg.Objectives = pareto.DefaultObjectives
	}
	cfg.Progress = nil
	cfg.Telemetry = nil
	cfg.DiscardPerScaling = true
	cfg.Ranked = false
	cfg.WarmHints = nil
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	strategy := cfg.Strategy.withDefault()
	if strategy == StrategySampled {
		return nil, fmt.Errorf("mapping: sharded exploration requires a contiguous enumeration strategy")
	}
	if cfg.Probe == nil {
		if cfg.Reuse != nil {
			cfg.Probe = cfg.Reuse.Probe()
		} else {
			cfg.Probe = NewProbeCache()
		}
	}
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return nil, err
	}
	total := space.Count()
	lo, hi := req.Range.Lo, req.Range.Hi
	if lo < 0 || hi < lo || hi > total {
		return nil, fmt.Errorf("mapping: shard range [%d,%d) outside enumeration of %d combinations", lo, hi, total)
	}
	src, err := rangeComboSource(space, lo, hi)
	if err != nil {
		return nil, err
	}
	prune := !req.NoPrune && strategy != StrategyExhaustive

	rec := &recordingFold{records: make([]*ShardRecord, hi-lo)}
	var opts coreOptions
	if req.Pareto {
		pf, err := newParetoFold(cfg)
		if err != nil {
			return nil, err
		}
		if prune && len(cfg.WarmFrontier) > 0 && strategy == StrategyBranchAndBound {
			ghosts, err := warmGhostFold(g, p, cfg)
			if err != nil {
				return nil, err
			}
			pf.ghosts = ghosts
		}
		sw, err := newShardParetoFold(pf, lo, cfg.Objectives, board, prune)
		if err != nil {
			return nil, err
		}
		rec.inner = sw
		opts = coreOptions{computeBounds: true, prune: prune, source: src}
	} else {
		sw := newShardScalarFold(newScalarFold(prune), lo, board, prune)
		rec.inner = sw
		opts = coreOptions{computeBounds: prune && cfg.DeadlineSec > 0, prune: prune, source: src}
	}
	if board != nil {
		for _, f := range req.InitialFacts {
			board.Publish(f)
		}
	}
	if _, _, err := exploreCore(ctx, g, p, mapper, cfg, rec, opts); err != nil {
		return nil, err
	}
	return &ShardResult{Range: req.Range, Records: rec.records}, nil
}

// runShards fans base out over the ranges, one runner per range, and
// assembles the global record array (indexed by enumeration rank). The
// first real failure cancels the remaining shards.
func runShards(ctx context.Context, base ShardRequest, ranges []ShardRange,
	runners []ShardRunner, board *FactBoard, total int) ([]*ShardRecord, error) {
	if len(ranges) != len(runners) {
		return nil, fmt.Errorf("mapping: %d shard ranges for %d runners", len(ranges), len(runners))
	}
	records := make([]*ShardRecord, total)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i := range ranges {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := base
			req.Range = ranges[i]
			res, err := runners[i](wctx, req, board)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			want := ranges[i].Hi - ranges[i].Lo
			if res == nil || len(res.Records) != want {
				got := 0
				if res != nil {
					got = len(res.Records)
				}
				errs[i] = fmt.Errorf("mapping: shard [%d,%d) returned %d records, want %d",
					ranges[i].Lo, ranges[i].Hi, got, want)
				cancel()
				return
			}
			for j, r := range res.Records {
				if r != nil && r.Idx != ranges[i].Lo+j {
					errs[i] = fmt.Errorf("mapping: shard [%d,%d) record %d carries index %d",
						ranges[i].Lo, ranges[i].Hi, j, r.Idx)
					cancel()
					return
				}
			}
			copy(records[ranges[i].Lo:ranges[i].Hi], res.Records)
		}(i)
	}
	wg.Wait()
	var firstErr error
	for _, e := range errs {
		if e != nil && !errorsIsCanceled(e) {
			firstErr = e
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return records, nil
}

func errorsIsCanceled(err error) bool { return errors.Is(err, context.Canceled) }

// noSkipFold is the inert fold the coordinator's recompute path hands to
// exploreCombo: it never authorizes a mapper skip, so a recomputed design
// is exactly what a pruning-free single-node worker would produce.
type noSkipFold struct{}

func (noSkipFold) dispatchSkip(*outcome) bool                      { return false }
func (noSkipFold) register(*outcome, context.CancelCauseFunc) bool { return true }
func (noSkipFold) unregister(int)                                  {}
func (noSkipFold) mapperSkippable() bool                           { return false }
func (noSkipFold) confirmSkip(*outcome) bool                       { return false }
func (noSkipFold) fold(*outcome)                                   {}
func (noSkipFold) annotate(*Progress)                              {}

// realizeDesign materializes the design of a position the authoritative
// replay wants to fold: re-evaluate the recorded mapping when the shard
// shipped one (bit-identical to the worker's evaluation of the same
// mapping), otherwise recompute the combination outright.
func realizeDesign(ctx context.Context, mc *MapContext, mapper MapperFunc,
	scaling []int, idx int, cfg Config, rec *ShardRecord) (*Design, bool, error) {
	if rec != nil && rec.Mapping != nil {
		if err := mc.Eval.Bind(scaling); err != nil {
			return nil, false, err
		}
		ev, err := mc.Eval.Evaluate(sched.Mapping(rec.Mapping))
		if err != nil {
			return nil, false, err
		}
		d := &Design{
			Scaling: append([]int(nil), scaling...),
			Mapping: append(sched.Mapping(nil), rec.Mapping...),
			Eval:    ev.Clone(),
		}
		return d, rec.Probed, nil
	}
	d, probed, _, skipped, err := exploreCombo(ctx, mc, mapper, scaling, idx, cfg, cfg.Probe, noSkipFold{})
	if err != nil {
		return nil, false, err
	}
	if skipped || d == nil {
		return nil, false, fmt.Errorf("mapping: internal error: recompute of combination %d produced no design", idx)
	}
	return d, probed, nil
}

// replayScalar is the coordinator's authoritative merge: the single-node
// scalar fold replayed in global rank order over the shard records.
func replayScalar(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, fold *scalarFold, records []*ShardRecord,
	prune bool) (perScaling []*Design, prunedCount int, err error) {
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return nil, 0, err
	}
	total := space.Count()
	it := space.Iter()
	cursor := boundsFor(g, p, cfg).Cursor()
	eval, releaseEval, err := acquireEvaluator(g, p, cfg)
	if err != nil {
		return nil, 0, err
	}
	defer releaseEval()
	mc := &MapContext{Graph: g, Platform: p, Eval: eval, scratch: newComboScratch(g.N(), p.Cores())}
	computeBounds := prune && cfg.DeadlineSec > 0
	if !cfg.DiscardPerScaling {
		perScaling = make([]*Design, 0, total)
	}
	var ev Progress
	for pos := 0; ; pos++ {
		scaling, idx, more := it.Next()
		if !more {
			break
		}
		if pos&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		if _, err := cursor.Advance(scaling); err != nil {
			return nil, 0, err
		}
		o := outcome{pos: pos, idx: idx, scaling: scaling, nominal: cursor.NominalPower()}
		if computeBounds {
			o.tmLB = cursor.TMLowerBound()
			o.hasLB = true
			if o.tmLB > cfg.DeadlineSec*(1+1e-9) {
				prunedCount++
				if !cfg.DiscardPerScaling {
					perScaling = append(perScaling, nil)
				}
				if cfg.Progress != nil {
					ev = Progress{Index: pos, Total: total, Combination: idx,
						Scaling: scaling, Pruned: true}
					fold.annotate(&ev)
					cfg.Progress(ev)
				}
				continue
			}
		}
		rec := records[idx]
		if rec != nil {
			o.probed, o.probeKnown = rec.Probed, rec.ProbeKnown
		}
		skipped := false
		if prune {
			skipped = fold.confirmSkip(&o)
			if !skipped && !o.probeKnown && (fold.bestProbed || fold.seeded) {
				// The record is a dispatch-time skip that never probed, but
				// the coordinator's dominance band disagrees — decide with
				// the probe, exactly as the single-node worker would have.
				if err := eval.Bind(scaling); err != nil {
					return nil, 0, err
				}
				mc.Ctx = ctx
				mc.Scaling = eval.Scaling()
				mc.Seed = comboSeed(cfg.Seed, idx)
				_, feasible, _, perr := cfg.Probe.feasibleAtScaling(mc, idx, cfg)
				if perr != nil {
					return nil, 0, perr
				}
				o.probed, o.probeKnown = feasible, true
				skipped = fold.confirmSkip(&o)
			}
		}
		if skipped {
			if !cfg.DiscardPerScaling {
				perScaling = append(perScaling, nil)
			}
			if cfg.Progress != nil {
				ev = Progress{Index: pos, Total: total, Combination: idx,
					Scaling: scaling, Skipped: true}
				fold.annotate(&ev)
				cfg.Progress(ev)
			}
			continue
		}
		d, probed, err := realizeDesign(ctx, mc, mapper, scaling, idx, cfg, rec)
		if err != nil {
			return nil, 0, err
		}
		o.design, o.probed, o.probeKnown = d, probed, true
		if !cfg.DiscardPerScaling {
			perScaling = append(perScaling, d)
		}
		fold.fold(&o)
		if cfg.Progress != nil {
			ev = Progress{Index: pos, Total: total, Combination: idx,
				Scaling: d.Scaling, Design: d}
			fold.annotate(&ev)
			cfg.Progress(ev)
		}
	}
	return perScaling, prunedCount, nil
}

// replayPareto replays the single-node Pareto fold (deadline pruning,
// frontier bound-dominance skips, embedded scalar walk) over the shard
// records in global rank order.
func replayPareto(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, fold *paretoFold, records []*ShardRecord,
	prune bool) (prunedCount int, err error) {
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return 0, err
	}
	total := space.Count()
	it := space.Iter()
	cursor := boundsFor(g, p, cfg).Cursor()
	eval, releaseEval, err := acquireEvaluator(g, p, cfg)
	if err != nil {
		return 0, err
	}
	defer releaseEval()
	mc := &MapContext{Graph: g, Platform: p, Eval: eval, scratch: newComboScratch(g.N(), p.Cores())}
	var ev Progress
	for pos := 0; ; pos++ {
		scaling, idx, more := it.Next()
		if !more {
			break
		}
		if pos&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		if _, err := cursor.Advance(scaling); err != nil {
			return 0, err
		}
		o := outcome{pos: pos, idx: idx, scaling: scaling, nominal: cursor.NominalPower()}
		o.tmLB = cursor.TMLowerBound()
		o.hasLB = true
		if prune && cfg.DeadlineSec > 0 && o.tmLB > cfg.DeadlineSec*(1+1e-9) {
			prunedCount++
			if cfg.Progress != nil {
				ev = Progress{Index: pos, Total: total, Combination: idx,
					Scaling: scaling, Pruned: true}
				fold.annotate(&ev)
				cfg.Progress(ev)
			}
			continue
		}
		rec := records[idx]
		if rec != nil {
			o.probed, o.probeKnown = rec.Probed, rec.ProbeKnown
		}
		if prune && fold.confirmSkip(&o) {
			if cfg.Progress != nil {
				ev = Progress{Index: pos, Total: total, Combination: idx,
					Scaling: scaling, Skipped: true}
				fold.annotate(&ev)
				cfg.Progress(ev)
			}
			continue
		}
		d, probed, err := realizeDesign(ctx, mc, mapper, scaling, idx, cfg, rec)
		if err != nil {
			return 0, err
		}
		o.design, o.probed, o.probeKnown = d, probed, true
		fold.fold(&o)
		if cfg.Progress != nil {
			ev = Progress{Index: pos, Total: total, Combination: idx,
				Scaling: d.Scaling, Design: d}
			fold.annotate(&ev)
			cfg.Progress(ev)
		}
	}
	return prunedCount, nil
}

// prepareSharded normalizes a coordinator Config and resolves the shard
// plan: one contiguous range per runner, nil runner entries replaced by
// embedded in-process execution sharing the coordinator's probe cache.
func prepareSharded(g *taskgraph.Graph, p *arch.Platform, mapper MapperFunc,
	cfg Config, runners []ShardRunner) (Config, []ShardRange, []ShardRunner, error) {
	if len(runners) == 0 {
		return cfg, nil, nil, fmt.Errorf("mapping: sharded exploration needs at least one shard runner")
	}
	if err := cfg.Validate(); err != nil {
		return cfg, nil, nil, err
	}
	if cfg.Strategy.withDefault() == StrategySampled {
		return cfg, nil, nil, fmt.Errorf("mapping: sharded exploration requires a contiguous enumeration strategy")
	}
	if cfg.Probe == nil {
		if cfg.Reuse != nil {
			cfg.Probe = cfg.Reuse.Probe()
		} else {
			cfg.Probe = NewProbeCache()
		}
	}
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return cfg, nil, nil, err
	}
	ranges := ShardRanges(space.Count(), len(runners))
	resolved := make([]ShardRunner, len(runners))
	for i, r := range runners {
		if r == nil {
			r = InProcRunner(g, p, mapper, cfg)
		}
		resolved[i] = r
	}
	return cfg, ranges, resolved, nil
}

// exploreShardedStream mirrors exploreStream over shards: seed the
// coordinator fold (broadcasting the seed as a fact), fan the ranges out,
// then replay-merge authoritatively.
func exploreShardedStream(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, ranges []ShardRange, runners []ShardRunner,
	prune bool) (best *Design, perScaling []*Design, prunedCount int, err error) {
	fold := newScalarFold(prune)
	board := NewFactBoard()
	if prune && cfg.Strategy.withDefault() == StrategyBranchAndBound {
		seedFn := (func(context.Context, *taskgraph.Graph, *arch.Platform, Config) (float64, bool, error))(nil)
		switch {
		case cfg.Ranked:
			seedFn = seedRankedIncumbent
		case len(cfg.WarmHints) > 0:
			seedFn = seedWarmIncumbent
		}
		if seedFn != nil {
			nominal, seeded, err := seedFn(ctx, g, p, cfg)
			if err != nil {
				return nil, nil, 0, err
			}
			if seeded {
				fold.seed(nominal)
				board.Publish(Fact{Pos: -1, Nominal: nominal})
			}
		}
	}
	total := ranges[len(ranges)-1].Hi
	records, err := runShards(ctx, ShardRequest{NoPrune: !prune}, ranges, runners, board, total)
	if err != nil {
		return nil, nil, 0, err
	}
	perScaling, prunedCount, err = replayScalar(ctx, g, p, mapper, cfg, fold, records, prune)
	if err != nil {
		return nil, nil, 0, err
	}
	return fold.best, perScaling, prunedCount, nil
}

// ExploreSharded is the distributed counterpart of ExploreContext: the
// enumeration is partitioned into one contiguous shard per runner, shards
// run concurrently (exchanging bound facts), and the coordinator merges
// their records through the authoritative single-node replay. The chosen
// Design, perScaling list and Progress stream are byte-identical to
// ExploreContext at any shard count, runner mix and parallelism. Nil
// runner entries run their shard embedded in this process.
func ExploreSharded(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, runners []ShardRunner) (best *Design, perScaling []*Design, err error) {
	cfg = cfg.withDefaults()
	cfg.Telemetry = nil
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, ranges, resolved, err := prepareSharded(g, p, mapper, cfg, runners)
	if err != nil {
		return nil, nil, err
	}
	prune := cfg.Strategy.withDefault() != StrategyExhaustive
	best, perScaling, prunedCount, err := exploreShardedStream(ctx, g, p, mapper, cfg, ranges, resolved, prune)
	if err != nil {
		return nil, nil, err
	}
	if prunedCount > 0 && (best == nil || !best.Eval.MeetsDeadline) {
		// Degenerate all-infeasible verdict: mirror ExploreContext's silent
		// exhaustive fallback, sharded.
		silent := cfg
		silent.Progress = nil
		best, perScaling, _, err = exploreShardedStream(ctx, g, p, mapper, silent, ranges, resolved, false)
		if err != nil {
			return nil, nil, err
		}
	}
	return best, perScaling, nil
}

// ExploreShardedPareto is the distributed counterpart of
// ExploreParetoContext, with the same byte-identity guarantee for the
// returned frontier and Progress stream.
func ExploreShardedPareto(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, runners []ShardRunner) ([]*Design, error) {
	cfg = cfg.withDefaults()
	cfg.Telemetry = nil
	if cfg.Objectives == 0 {
		cfg.Objectives = pareto.DefaultObjectives
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.DiscardPerScaling = true
	cfg, ranges, resolved, err := prepareSharded(g, p, mapper, cfg, runners)
	if err != nil {
		return nil, err
	}
	fold, err := newParetoFold(cfg)
	if err != nil {
		return nil, err
	}
	prune := cfg.Strategy.withDefault() != StrategyExhaustive
	if prune && len(cfg.WarmFrontier) > 0 && cfg.Strategy.withDefault() == StrategyBranchAndBound {
		ghosts, err := warmGhostFold(g, p, cfg)
		if err != nil {
			return nil, err
		}
		fold.ghosts = ghosts
	}
	board := NewFactBoard()
	total := ranges[len(ranges)-1].Hi
	records, err := runShards(ctx, ShardRequest{NoPrune: !prune, Pareto: true}, ranges, resolved, board, total)
	if err != nil {
		return nil, err
	}
	prunedCount, err := replayPareto(ctx, g, p, mapper, cfg, fold, records, prune)
	if err != nil {
		return nil, err
	}
	frontier := fold.frontier()
	if len(frontier) == 0 {
		// Mirror ExploreParetoContext's degenerate path: the scalar "least
		// infeasible" verdict, from the embedded walk when it is complete,
		// otherwise from a silent exhaustive sharded pass.
		if prunedCount == 0 && fold.ghosts == nil {
			return []*Design{fold.scalar.best}, nil
		}
		silent := cfg
		silent.Progress = nil
		silent.DiscardPerScaling = true
		silent.Ranked = false
		best, _, _, err := exploreShardedStream(ctx, g, p, mapper, silent, ranges, resolved, false)
		if err != nil {
			return nil, err
		}
		return []*Design{best}, nil
	}
	return frontier, nil
}
