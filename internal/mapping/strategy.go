package mapping

import "fmt"

// Strategy selects how the Fig. 4 outer loop walks the voltage-scaling
// design space. All strategies stream combinations lazily (memory stays
// O(workers), never O(combinations)) and derive each combination's mapper
// seed from its stable Fig. 5 enumeration index, so any two strategies that
// evaluate the same combination evaluate it byte-identically.
type Strategy string

const (
	// StrategyBranchAndBound (the default) explores the full enumeration
	// but skips the mapper wherever a cheap admissible bound proves the
	// combination cannot win: scalings whose best-case makespan already
	// misses the deadline are pruned, and scalings whose nominal power is
	// dominated by a resolved feasible incumbent at a lower enumeration
	// index are skipped, with outstanding dominated work cancelled in
	// flight. The chosen Design is provably byte-identical to
	// StrategyExhaustive whenever any deadline-meeting design exists; if
	// none does, the engine deterministically falls back to an exhaustive
	// pass so the degenerate all-infeasible verdict matches too.
	StrategyBranchAndBound Strategy = "bnb"
	// StrategyExhaustive runs the mapper on every combination — the exact
	// historical behavior, and the reference the equivalence property
	// tests compare against. The paper tables are regenerated under it.
	StrategyExhaustive Strategy = "exhaustive"
	// StrategySampled explores a seed-deterministic uniform sample of
	// Config.SampleBudget combinations (with branch-and-bound pruning
	// inside the sample) — an explicitly approximate portfolio for spaces
	// too large to enumerate: the result is the best design within the
	// sample, not a global optimum.
	StrategySampled Strategy = "sampled"
)

// DefaultSampleBudget is the StrategySampled portfolio size when
// Config.SampleBudget is zero.
const DefaultSampleBudget = 256

// withDefault resolves the empty strategy to the default.
func (s Strategy) withDefault() Strategy {
	if s == "" {
		return StrategyBranchAndBound
	}
	return s
}

// Valid reports whether s names a known strategy ("" selects the default).
func (s Strategy) Valid() error {
	switch s {
	case "", StrategyBranchAndBound, StrategyExhaustive, StrategySampled:
		return nil
	}
	return fmt.Errorf("mapping: unknown strategy %q (want %s, %s or %s)",
		string(s), StrategyBranchAndBound, StrategyExhaustive, StrategySampled)
}

// ParseStrategy resolves a user-facing strategy name (CLI flag, job option).
// The empty string selects the default strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "default":
		return StrategyBranchAndBound, nil
	case "bnb", "b&b", "branch-and-bound", "bb":
		return StrategyBranchAndBound, nil
	case "exhaustive", "full":
		return StrategyExhaustive, nil
	case "sampled", "sample":
		return StrategySampled, nil
	}
	return "", fmt.Errorf("mapping: unknown strategy %q (want bnb, exhaustive or sampled)", name)
}
