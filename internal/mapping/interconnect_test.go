package mapping

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// icnPlat is heteroPlat behind a contended fabric: the exploration engine's
// byte-identity properties must survive real communication costs, where
// makespans depend on link queuing, not just endpoint clocks.
func icnPlat(t *testing.T, fast, std int, ic arch.Interconnect) *arch.Platform {
	t.Helper()
	types := []arch.ProcType{
		{Name: "fast4", Levels: arch.ARM7Levels4()},
		{Name: "arm7", Levels: arch.ARM7Levels3()},
		{Name: "low2", Levels: arch.ARM7Levels2()},
	}
	var coreTypes []int
	for i := 0; i < fast; i++ {
		coreTypes = append(coreTypes, 0)
	}
	for i := 0; i < std; i++ {
		coreTypes = append(coreTypes, 1)
	}
	coreTypes = append(coreTypes, 2)
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes, arch.WithInterconnect(ic))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var (
	testBusFabric  = arch.Interconnect{Topology: arch.TopologyBus, BandwidthBps: 4e9, HopLatencySec: 1e-4}
	testMeshFabric = arch.Interconnect{Topology: arch.TopologyMesh, BandwidthBps: 4e9, HopLatencySec: 1e-4}
)

// TestInterconnectBnBMatchesExhaustive is the acceptance property of the
// fabric model: on contended platforms the default branch-and-bound
// strategy returns byte-identical designs to the exhaustive reference at
// Parallelism 1, 4 and GOMAXPROCS — the comm-aware bound must prune, and
// must not prune one feasible combination too many.
func TestInterconnectBnBMatchesExhaustive(t *testing.T) {
	workloads := []struct {
		name     string
		g        *taskgraph.Graph
		p        *arch.Platform
		deadline float64
		iters    int
	}{
		{"fig8-bus", taskgraph.Fig8(), icnPlat(t, 1, 1, testBusFabric), taskgraph.Fig8Deadline, 1},
		{"random20-mesh", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3),
			icnPlat(t, 2, 1, testMeshFabric), taskgraph.RandomDeadline(20) * 0.5, 1},
	}
	for _, wl := range workloads {
		base := cfg(wl.deadline, wl.iters)
		base.SearchMoves = 120

		exh := base
		exh.Strategy = StrategyExhaustive
		wantBest, wantPer, err := Explore(wl.g, wl.p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", wl.name, err)
		}
		want := designFingerprint(wantBest)

		// The fabric must be load-bearing: the same exploration on the same
		// cores without an interconnect lands on a different evaluation.
		ideal := heteroPlat(t, 1, 1)
		if wl.name == "random20-mesh" {
			ideal = heteroPlat(t, 2, 1)
		}
		idealBest, _, err := Explore(wl.g, ideal, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s ideal: %v", wl.name, err)
		}
		if designFingerprint(idealBest) == want {
			t.Errorf("%s: contended and ideal fabrics produced identical designs — fabric not exercised", wl.name)
		}

		for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			bnb := base
			bnb.Strategy = StrategyBranchAndBound
			bnb.Parallelism = par
			var avoided int
			bnb.Progress = func(pr Progress) {
				if pr.Pruned || pr.Skipped {
					avoided++
				}
			}
			gotBest, gotPer, err := Explore(wl.g, wl.p, SEAMapper(bnb), bnb)
			if err != nil {
				t.Fatalf("%s bnb par=%d: %v", wl.name, par, err)
			}
			if got := designFingerprint(gotBest); got != want {
				t.Errorf("%s par=%d: designs diverged:\n  exhaustive: %s\n  bnb:        %s",
					wl.name, par, want, got)
			}
			if len(gotPer) != len(wantPer) {
				t.Errorf("%s par=%d: perScaling has %d entries, exhaustive %d",
					wl.name, par, len(gotPer), len(wantPer))
			}
			for i := range gotPer {
				if gotPer[i] == nil {
					continue
				}
				if g, w := designFingerprint(gotPer[i]), designFingerprint(wantPer[i]); g != w {
					t.Errorf("%s par=%d: perScaling[%d] diverged:\n  exhaustive: %s\n  bnb:        %s",
						wl.name, par, i, w, g)
				}
			}
			if avoided == 0 {
				t.Errorf("%s par=%d: branch-and-bound avoided nothing on the contended platform", wl.name, par)
			}
		}
	}
}

// TestInterconnectParetoMatchesExhaustive repeats the byte-identity
// property for the Pareto frontier fold on a contended mesh.
func TestInterconnectParetoMatchesExhaustive(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3)
	p := icnPlat(t, 1, 1, testMeshFabric)
	base := cfg(taskgraph.RandomDeadline(20), 1)
	base.SearchMoves = 120

	exh := base
	exh.Strategy = StrategyExhaustive
	wantFrontier, err := ExplorePareto(g, p, SEAMapper(exh), exh)
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	want := frontierFingerprint(wantFrontier)
	assertSoundFrontier(t, "random20-mesh", p, wantFrontier, base.DeadlineSec)

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		bnb := base
		bnb.Strategy = StrategyBranchAndBound
		bnb.Parallelism = par
		gotFrontier, err := ExplorePareto(g, p, SEAMapper(bnb), bnb)
		if err != nil {
			t.Fatalf("bnb par=%d: %v", par, err)
		}
		if got := frontierFingerprint(gotFrontier); got != want {
			t.Errorf("par=%d: frontiers diverged:\n  exhaustive: %s\n  bnb:        %s", par, want, got)
		}
	}
}

// TestInterconnectShardedMatchesSingleNode: distributing a contended-fabric
// exploration over shards changes nothing — best design, perScaling list
// and Progress stream stay byte-identical across shard counts and
// parallelism, scalar and Pareto alike.
func TestInterconnectShardedMatchesSingleNode(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3)
	p := icnPlat(t, 1, 1, testMeshFabric)
	base := cfg(taskgraph.RandomDeadline(20)*0.5, 1)
	base.SearchMoves = 120
	base.DiscardPerScaling = false

	single := func() capturedRun {
		c := base
		var r capturedRun
		captureProgress(&c, &r.events)
		best, per, err := ExploreContext(context.Background(), g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatalf("single-node: %v", err)
		}
		r.best = designFingerprint(best)
		for _, d := range per {
			r.per = append(r.per, designFingerprint(d))
		}
		return r
	}()

	for _, shards := range []int{1, 2, 4} {
		for _, par := range []int{1, 4, 0} {
			c := base
			c.Parallelism = par
			var r capturedRun
			captureProgress(&c, &r.events)
			best, per, err := ExploreSharded(context.Background(), g, p, SEAMapper(c), c,
				make([]ShardRunner, shards))
			if err != nil {
				t.Fatalf("shards=%d par=%d: %v", shards, par, err)
			}
			r.best = designFingerprint(best)
			for _, d := range per {
				r.per = append(r.per, designFingerprint(d))
			}
			assertRunsEqual(t, fmt.Sprintf("shards=%d par=%d", shards, par), single, r)
		}
	}

	// The Pareto fold over shards, same property.
	pSingle := func() []string {
		c := base
		frontier, err := ExploreParetoContext(context.Background(), g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatalf("single-node pareto: %v", err)
		}
		var out []string
		for _, d := range frontier {
			out = append(out, designFingerprint(d))
		}
		return out
	}()
	for _, shards := range []int{2, 4} {
		c := base
		frontier, err := ExploreShardedPareto(context.Background(), g, p, SEAMapper(c), c,
			make([]ShardRunner, shards))
		if err != nil {
			t.Fatalf("pareto shards=%d: %v", shards, err)
		}
		var got []string
		for _, d := range frontier {
			got = append(got, designFingerprint(d))
		}
		assertStringsEqual(t, fmt.Sprintf("pareto shards=%d", shards), pSingle, got)
	}
}
