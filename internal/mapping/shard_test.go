package mapping

import (
	"context"
	"fmt"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// shardEventFingerprint renders every field of a Progress event (Best
// included), so two streams compare byte-for-byte.
func shardEventFingerprint(pr Progress) string {
	return fmt.Sprintf("i=%d/%d c=%d s=%v pruned=%v skipped=%v d=%s best=%s fs=%d adm=%v",
		pr.Index, pr.Total, pr.Combination, pr.Scaling, pr.Pruned, pr.Skipped,
		designFingerprint(pr.Design), designFingerprint(pr.Best),
		pr.FrontierSize, pr.Admitted)
}

type shardWorkload struct {
	name     string
	g        *taskgraph.Graph
	p        *arch.Platform
	deadline float64
	iters    int
}

// shardWorkloads are the paper's three exemplars: the MPEG-2 decoder, the
// Fig. 8 worked example and a §V-style random graph.
func shardWorkloads(t *testing.T) []shardWorkload {
	t.Helper()
	return []shardWorkload{
		{"mpeg2", taskgraph.MPEG2(), plat(4), taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames},
		{"fig8", taskgraph.Fig8(), plat(3), taskgraph.Fig8Deadline, 1},
		{"randomV", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3), plat(3), taskgraph.RandomDeadline(20), 1},
	}
}

type capturedRun struct {
	best     string
	per      []string
	frontier []string
	events   []string
}

func captureProgress(c *Config, events *[]string) {
	c.Progress = func(pr Progress) { *events = append(*events, shardEventFingerprint(pr)) }
}

// TestShardedScalarMatchesSingleNode is the tentpole property: the merged
// Design, perScaling list and Progress stream of a sharded run are
// byte-identical to the single-node run, across shard counts 1/2/4 and
// parallelism 1/4/GOMAXPROCS, for every exemplar workload.
func TestShardedScalarMatchesSingleNode(t *testing.T) {
	for _, w := range shardWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			base := cfg(w.deadline, w.iters)
			base.SearchMoves = 200
			base.DiscardPerScaling = false

			single := func() capturedRun {
				c := base
				var r capturedRun
				captureProgress(&c, &r.events)
				best, per, err := ExploreContext(context.Background(), w.g, w.p, SEAMapper(c), c)
				if err != nil {
					t.Fatalf("single-node: %v", err)
				}
				r.best = designFingerprint(best)
				for _, d := range per {
					r.per = append(r.per, designFingerprint(d))
				}
				return r
			}()

			for _, shards := range []int{1, 2, 4} {
				for _, par := range []int{1, 4, 0} {
					c := base
					c.Parallelism = par
					var r capturedRun
					captureProgress(&c, &r.events)
					best, per, err := ExploreSharded(context.Background(), w.g, w.p, SEAMapper(c), c,
						make([]ShardRunner, shards))
					if err != nil {
						t.Fatalf("shards=%d par=%d: %v", shards, par, err)
					}
					r.best = designFingerprint(best)
					for _, d := range per {
						r.per = append(r.per, designFingerprint(d))
					}
					assertRunsEqual(t, fmt.Sprintf("shards=%d par=%d", shards, par), single, r)
				}
			}
		})
	}
}

// TestShardedParetoMatchesSingleNode repeats the byte-identity property
// for the Pareto frontier fold.
func TestShardedParetoMatchesSingleNode(t *testing.T) {
	for _, w := range shardWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			base := cfg(w.deadline, w.iters)
			base.SearchMoves = 200

			single := func() capturedRun {
				c := base
				var r capturedRun
				captureProgress(&c, &r.events)
				frontier, err := ExploreParetoContext(context.Background(), w.g, w.p, SEAMapper(c), c)
				if err != nil {
					t.Fatalf("single-node: %v", err)
				}
				for _, d := range frontier {
					r.frontier = append(r.frontier, designFingerprint(d))
				}
				return r
			}()

			for _, shards := range []int{1, 2, 4} {
				for _, par := range []int{1, 4, 0} {
					c := base
					c.Parallelism = par
					var r capturedRun
					captureProgress(&c, &r.events)
					frontier, err := ExploreShardedPareto(context.Background(), w.g, w.p, SEAMapper(c), c,
						make([]ShardRunner, shards))
					if err != nil {
						t.Fatalf("shards=%d par=%d: %v", shards, par, err)
					}
					for _, d := range frontier {
						r.frontier = append(r.frontier, designFingerprint(d))
					}
					assertRunsEqual(t, fmt.Sprintf("shards=%d par=%d", shards, par), single, r)
				}
			}
		})
	}
}

func assertRunsEqual(t *testing.T, label string, want, got capturedRun) {
	t.Helper()
	if got.best != want.best {
		t.Errorf("%s: best diverged:\n  single: %s\n  sharded: %s", label, want.best, got.best)
	}
	assertStringsEqual(t, label+": perScaling", want.per, got.per)
	assertStringsEqual(t, label+": frontier", want.frontier, got.frontier)
	assertStringsEqual(t, label+": progress", want.events, got.events)
}

func assertStringsEqual(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d entries, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s[%d] diverged:\n  single: %s\n  sharded: %s", label, i, want[i], got[i])
			return
		}
	}
}

// TestShardedStrategiesAndSeeding covers the remaining coordinator paths:
// the exhaustive strategy (no pruning anywhere) and the ranked-seeded
// branch-and-bound (the seed travels to shards as a Pos -1 fact).
func TestShardedStrategiesAndSeeding(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"exhaustive", func(c *Config) { c.Strategy = StrategyExhaustive }},
		{"ranked", func(c *Config) { c.Ranked = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			base := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
			base.SearchMoves = 150
			base.DiscardPerScaling = false
			mode.mutate(&base)

			var wantEvents []string
			cs := base
			captureProgress(&cs, &wantEvents)
			wantBest, _, err := ExploreContext(context.Background(), g, p, SEAMapper(cs), cs)
			if err != nil {
				t.Fatal(err)
			}

			var gotEvents []string
			cd := base
			captureProgress(&cd, &gotEvents)
			gotBest, _, err := ExploreSharded(context.Background(), g, p, SEAMapper(cd), cd,
				make([]ShardRunner, 3))
			if err != nil {
				t.Fatal(err)
			}
			if designFingerprint(gotBest) != designFingerprint(wantBest) {
				t.Errorf("best diverged:\n  single: %s\n  sharded: %s",
					designFingerprint(wantBest), designFingerprint(gotBest))
			}
			assertStringsEqual(t, "progress", wantEvents, gotEvents)
		})
	}
}

// TestShardedImpossibleDeadline pins the degenerate all-infeasible
// fallback: both reductions must return the single-node "least
// infeasible" verdict.
func TestShardedImpossibleDeadline(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	base := cfg(1e-9, taskgraph.MPEG2Frames)
	base.SearchMoves = 100

	wantBest, _, err := ExploreContext(context.Background(), g, p, SEAMapper(base), base)
	if err != nil {
		t.Fatal(err)
	}
	gotBest, _, err := ExploreSharded(context.Background(), g, p, SEAMapper(base), base,
		make([]ShardRunner, 2))
	if err != nil {
		t.Fatal(err)
	}
	if designFingerprint(gotBest) != designFingerprint(wantBest) {
		t.Errorf("scalar degenerate diverged:\n  single: %s\n  sharded: %s",
			designFingerprint(wantBest), designFingerprint(gotBest))
	}

	wantFrontier, err := ExploreParetoContext(context.Background(), g, p, SEAMapper(base), base)
	if err != nil {
		t.Fatal(err)
	}
	gotFrontier, err := ExploreShardedPareto(context.Background(), g, p, SEAMapper(base), base,
		make([]ShardRunner, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFrontier) != len(wantFrontier) {
		t.Fatalf("degenerate frontier size %d, want %d", len(gotFrontier), len(wantFrontier))
	}
	for i := range wantFrontier {
		if designFingerprint(gotFrontier[i]) != designFingerprint(wantFrontier[i]) {
			t.Errorf("frontier[%d] diverged", i)
		}
	}
}

// TestShardRanges pins the partition arithmetic.
func TestShardRanges(t *testing.T) {
	for _, tc := range []struct {
		total, n int
		want     []ShardRange
	}{
		{10, 3, []ShardRange{{0, 4}, {4, 7}, {7, 10}}},
		{4, 4, []ShardRange{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{2, 4, []ShardRange{{0, 1}, {1, 2}, {2, 2}, {2, 2}}},
		{5, 1, []ShardRange{{0, 5}}},
	} {
		got := ShardRanges(tc.total, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("ShardRanges(%d,%d) = %v", tc.total, tc.n, got)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("ShardRanges(%d,%d)[%d] = %v, want %v", tc.total, tc.n, i, got[i], tc.want[i])
			}
		}
	}
}

// TestFactBoard pins dedup, Since cursors and subscriber replay.
func TestFactBoard(t *testing.T) {
	b := NewFactBoard()
	f1 := Fact{Pos: -1, Nominal: 2.5}
	f2 := Fact{Pos: 3, Nominal: 1.5}
	if !b.Publish(f1) {
		t.Fatal("first publish rejected")
	}
	if b.Publish(f1) {
		t.Fatal("duplicate accepted")
	}
	var seen []Fact
	b.Subscribe(func(f Fact) { seen = append(seen, f) })
	if len(seen) != 1 || seen[0] != f1 {
		t.Fatalf("replay = %v", seen)
	}
	if !b.Publish(f2) {
		t.Fatal("second publish rejected")
	}
	if len(seen) != 2 || seen[1] != f2 {
		t.Fatalf("live delivery = %v", seen)
	}
	facts, next := b.Since(0)
	if len(facts) != 2 || next != 2 {
		t.Fatalf("Since(0) = %v, %d", facts, next)
	}
	facts, next = b.Since(2)
	if len(facts) != 0 || next != 2 {
		t.Fatalf("Since(2) = %v, %d", facts, next)
	}
}
