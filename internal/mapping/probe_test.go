package mapping

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// coldProbeOracle replays the uncached feasibility probe verbatim — LPT seed
// onto the least-loaded core weighted by clock period, then up to ProbeMoves
// hill-climb moves accepting any candidate whose makespan does not exceed
// the running minimum, stopping at the first candidate meeting the deadline.
// It is the oracle the trajectory cache must match bit for bit at any
// deadline, in any serve order.
func coldProbeOracle(t *testing.T, g *taskgraph.Graph, p *arch.Platform,
	eval *metrics.Evaluator, scaling []int, c Config) (sched.Mapping, bool) {
	t.Helper()
	n, cores := g.N(), p.Cores()

	order := make([]taskgraph.TaskID, n)
	for i := range order {
		order[i] = taskgraph.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := g.Task(order[a]).Cycles, g.Task(order[b]).Cycles
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	m := make(sched.Mapping, n)
	loadSec := make([]float64, cores)
	freq := make([]float64, cores)
	for core, s := range scaling {
		freq[core] = p.MustCoreLevel(core, s).FreqHz()
	}
	for _, task := range order {
		best := 0
		for core := 1; core < cores; core++ {
			if loadSec[core] < loadSec[best] {
				best = core
			}
		}
		m[task] = best
		loadSec[best] += float64(g.Task(task).Cycles) / freq[best]
	}

	tm, _, err := eval.Makespan(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.DeadlineSec <= 0 || tm <= c.DeadlineSec {
		return m, true
	}
	cur, curTM := m, tm
	spare := make(sched.Mapping, n)
	loads := make([]int, cores)
	rng := rand.New(rand.NewSource(c.Seed ^ 0xFEA51B1E))
	for moves := 0; moves < ProbeMoves; moves++ {
		neighbor := search.NeighborInto(rng, spare, cur, cores, loads)
		ntm, _, err := eval.Makespan(neighbor)
		if err != nil {
			t.Fatal(err)
		}
		if ntm <= curTM {
			cur, spare = neighbor, cur
			curTM = ntm
			if curTM <= c.DeadlineSec {
				return cur, true
			}
		}
	}
	return nil, false
}

// evalFingerprint renders an Evaluation's bits for exact comparison.
func evalFingerprint(ev *metrics.Evaluation) string {
	if ev == nil {
		return "nil"
	}
	return designFingerprint(&Design{Eval: ev})
}

// TestProbeTrajectoryMatchesColdProbe is the trajectory cache's core
// contract: served at any deadline, in any order — loose to tight, tight to
// loose, unconstrained in the middle, with or without a declared horizon —
// every cached verdict and Evaluation is bit-identical to a cold probe run
// at exactly that deadline.
func TestProbeTrajectoryMatchesColdProbe(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(16), 9)
	p := plat(3)
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		t.Fatal(err)
	}
	base := cfg(0, 1)

	d0 := taskgraph.RandomDeadline(16)
	looseToTight := []float64{d0 * 2, d0, 0, d0 * 0.6, d0 * 0.3, d0 * 0.1}
	tightToLoose := []float64{d0 * 0.1, d0 * 0.3, d0 * 0.6, 0, d0, d0 * 2}

	check := func(t *testing.T, deadlines []float64, horizon float64) {
		pc := NewProbeCache()
		if horizon > 0 {
			pc.EnsureHorizon(horizon)
		}
		for _, deadline := range deadlines {
			c := base
			c.DeadlineSec = deadline
			eval, err := metrics.NewEvaluator(g, p, c.SER,
				metrics.Options{Iterations: c.Iterations, DeadlineSec: deadline})
			if err != nil {
				t.Fatal(err)
			}
			oracleEval, err := metrics.NewEvaluator(g, p, c.SER,
				metrics.Options{Iterations: c.Iterations, DeadlineSec: deadline})
			if err != nil {
				t.Fatal(err)
			}
			for idx := 0; idx < space.Count(); idx++ {
				scaling, err := space.Unrank(idx)
				if err != nil {
					t.Fatal(err)
				}
				if err := eval.Bind(scaling); err != nil {
					t.Fatal(err)
				}
				mc := &MapContext{
					Ctx:      context.Background(),
					Graph:    g,
					Platform: p,
					Scaling:  eval.Scaling(),
					Eval:     eval,
				}
				got, feasible, _, err := pc.feasibleAtScaling(mc, idx, c)
				if err != nil {
					t.Fatal(err)
				}

				if err := oracleEval.Bind(scaling); err != nil {
					t.Fatal(err)
				}
				winner, wantFeasible := coldProbeOracle(t, g, p, oracleEval, scaling, c)
				if feasible != wantFeasible {
					t.Fatalf("deadline %g combo %d: cached verdict %v, cold probe %v",
						deadline, idx, feasible, wantFeasible)
				}
				if !feasible {
					continue
				}
				want, err := oracleEval.Evaluate(winner)
				if err != nil {
					t.Fatal(err)
				}
				if gotFP, wantFP := evalFingerprint(got), evalFingerprint(want); gotFP != wantFP {
					t.Errorf("deadline %g combo %d: cached evaluation diverged:\n  cache: %s\n  cold:  %s",
						deadline, idx, gotFP, wantFP)
				}
			}
		}
	}

	t.Run("LooseToTight", func(t *testing.T) { check(t, looseToTight, 0) })
	t.Run("TightToLoose", func(t *testing.T) { check(t, tightToLoose, 0) })
	t.Run("LooseToTightWithHorizon", func(t *testing.T) { check(t, looseToTight, d0*0.1) })
}

// TestProbeCacheConcurrentSharingNoDuplicateWork is the sweep/service
// sharing contract under the race detector: two explorations running
// concurrently over one shared ProbeCache must between them do exactly the
// probe climb work of a single cold run at the tighter deadline — a verdict
// computed for one run is never recomputed for the other. Eval.Makespan is
// called only by the probe, so the summed Makespans telemetry counts the
// climb work exactly.
func TestProbeCacheConcurrentSharingNoDuplicateWork(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	mk := func(deadline float64) Config {
		c := cfg(deadline, taskgraph.MPEG2Frames)
		c.SearchMoves = 80
		c.Strategy = StrategyExhaustive // probes every combination: deterministic probe set
		c.Parallelism = 4
		return c
	}
	loose := mk(taskgraph.MPEG2Deadline * 1.5)
	tight := mk(taskgraph.MPEG2Deadline * 0.8)

	runOne := func(c Config, probe *ProbeCache) (string, metrics.EvalStats) {
		c.Probe = probe
		c.Telemetry = NewTelemetry()
		best, _, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatal(err)
		}
		return designFingerprint(best), c.Telemetry.Stats().Eval
	}

	// Reference: each deadline cold and solo, plus the probe work of one
	// cold run at the tighter deadline (the deepest climb any entry needs).
	soloLoose, _ := runOne(loose, NewProbeCache())
	soloTight, coldStats := runOne(tight, NewProbeCache())

	shared := NewProbeCache()
	cfgs := [2]Config{loose, tight}
	tels := [2]*Telemetry{NewTelemetry(), NewTelemetry()}
	fps := [2]string{}
	var wg sync.WaitGroup
	for i := range cfgs {
		cfgs[i].Probe = shared
		cfgs[i].Telemetry = tels[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			best, _, err := Explore(g, p, SEAMapper(cfgs[i]), cfgs[i])
			if err != nil {
				t.Error(err)
				return
			}
			fps[i] = designFingerprint(best)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if fps[0] != soloLoose {
		t.Errorf("shared-cache loose design diverged from solo run:\n  shared: %s\n  solo:   %s", fps[0], soloLoose)
	}
	if fps[1] != soloTight {
		t.Errorf("shared-cache tight design diverged from solo run:\n  shared: %s\n  solo:   %s", fps[1], soloTight)
	}

	combined := tels[0].Stats().Eval.Makespans + tels[1].Stats().Eval.Makespans
	if want := coldStats.Makespans; combined != want {
		t.Errorf("shared probe climb work: %d makespan evaluations across both runs, want exactly one cold tight-deadline run's %d",
			combined, want)
	}

	// Every combination has exactly one cached trajectory between the runs.
	if want := 15; shared.Len() != want {
		t.Errorf("shared cache holds %d trajectories, want %d", shared.Len(), want)
	}
}
