package mapping

import (
	"runtime"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/taskgraph"
)

// plat64 builds the flagship-shaped heterogeneous platform: 56 two-level
// efficiency cores plus 8 four-level performance cores (9405 combinations).
func plat64(t *testing.T) *arch.Platform {
	t.Helper()
	types := []arch.ProcType{
		{Name: "eff", Levels: arch.ARM7Levels2()},
		{Name: "perf", Levels: arch.ARM7Levels4()},
	}
	coreTypes := make([]int, 64)
	for i := 56; i < 64; i++ {
		coreTypes[i] = 1
	}
	p, err := arch.NewHeterogeneousPlatform(types, coreTypes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// graph64 is a reduced-budget stand-in for the flagship benchmark workload:
// the same §V generator and 64-core-wide layers, fewer tasks so the
// exhaustive reference stays test-sized.
func graph64(t *testing.T) (*taskgraph.Graph, float64) {
	t.Helper()
	cfg := taskgraph.DefaultRandomConfig(40)
	cfg.MaxWidth = 16
	return taskgraph.MustRandom(cfg, 11), taskgraph.RandomDeadline(40) / 5
}

// TestRankedMatchesExhaustive is the acceptance property of the ranked
// incumbent-seeding pass: on the paper workloads, a §V random graph and the
// 64-core heterogeneous platform, StrategyBranchAndBound with Ranked set
// returns a byte-identical best Design to StrategyExhaustive (and hence to
// unseeded branch-and-bound) at Parallelism 1, 4 and GOMAXPROCS — while
// skipping at least as many combinations as it evaluates the moment the
// space is prunable.
func TestRankedMatchesExhaustive(t *testing.T) {
	g64, dl64 := graph64(t)
	workloads := []struct {
		name     string
		g        *taskgraph.Graph
		p        *arch.Platform
		deadline float64
		iters    int
		moves    int
	}{
		{"mpeg2", taskgraph.MPEG2(), plat(4), taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames, 150},
		{"fig8", taskgraph.Fig8(), heteroPlat(t, 1, 1), taskgraph.Fig8Deadline, 1, 80},
		{"random30", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 8), plat(3), taskgraph.RandomDeadline(30) * 0.2, 1, 150},
		{"hetero64", g64, plat64(t), dl64, 1, 12},
	}
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, wl := range workloads {
		base := cfg(wl.deadline, wl.iters)
		base.SearchMoves = wl.moves
		base.DiscardPerScaling = true

		exh := base
		exh.Strategy = StrategyExhaustive
		wantBest, _, err := Explore(wl.g, wl.p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", wl.name, err)
		}
		want := designFingerprint(wantBest)

		for _, par := range parallelisms {
			ranked := base
			ranked.Strategy = StrategyBranchAndBound
			ranked.Ranked = true
			ranked.Parallelism = par
			var evaluated, avoided int
			ranked.Progress = func(pr Progress) {
				if pr.Pruned || pr.Skipped {
					avoided++
				} else {
					evaluated++
				}
			}
			gotBest, _, err := Explore(wl.g, wl.p, SEAMapper(ranked), ranked)
			if err != nil {
				t.Fatalf("%s ranked par=%d: %v", wl.name, par, err)
			}
			if got := designFingerprint(gotBest); got != want {
				t.Errorf("%s par=%d: designs diverged:\n  exhaustive: %s\n  ranked bnb: %s",
					wl.name, par, want, got)
			}
			if avoided == 0 {
				t.Errorf("%s par=%d: ranked branch-and-bound avoided nothing (evaluated %d)",
					wl.name, par, evaluated)
			}
		}
	}
}

// TestRankedSkipsAtLeastAsMuch: seeding the incumbent from the ranked pass
// can only lower the dominance threshold earlier, so the seeded run must
// map no more combinations than the unseeded one.
func TestRankedSkipsAtLeastAsMuch(t *testing.T) {
	g, dl := graph64(t)
	p := plat64(t)
	base := cfg(dl, 1)
	base.SearchMoves = 12
	base.DiscardPerScaling = true
	base.Strategy = StrategyBranchAndBound

	count := func(ranked bool) (evaluated, avoided int) {
		c := base
		c.Ranked = ranked
		c.Progress = func(pr Progress) {
			if pr.Pruned || pr.Skipped {
				avoided++
			} else {
				evaluated++
			}
		}
		if _, _, err := Explore(g, p, SEAMapper(c), c); err != nil {
			t.Fatal(err)
		}
		return
	}
	plainEval, plainAvoid := count(false)
	rankedEval, rankedAvoid := count(true)
	t.Logf("unseeded: %d mapped / %d avoided; ranked: %d mapped / %d avoided",
		plainEval, plainAvoid, rankedEval, rankedAvoid)
	if rankedEval > plainEval {
		t.Errorf("ranked seeding mapped %d combinations, unseeded only %d", rankedEval, plainEval)
	}
	if rankedEval+rankedAvoid != plainEval+plainAvoid {
		t.Errorf("event counts diverged: ranked %d, unseeded %d",
			rankedEval+rankedAvoid, plainEval+plainAvoid)
	}
}

// TestRankedRequiresBranchAndBound: the option is a BnB refinement; other
// strategies must reject it loudly rather than silently ignore it.
func TestRankedRequiresBranchAndBound(t *testing.T) {
	for _, s := range []Strategy{StrategyExhaustive, StrategySampled} {
		c := cfg(1, 1)
		c.Strategy = s
		c.Ranked = true
		if c.Validate() == nil {
			t.Errorf("Ranked accepted with strategy %q", s)
		}
	}
	ok := cfg(1, 1)
	ok.Ranked = true // default strategy is branch-and-bound
	if err := ok.Validate(); err != nil {
		t.Errorf("Ranked rejected with the default strategy: %v", err)
	}
}
