package mapping

import (
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// MaxExhaustiveEvaluations bounds ExhaustiveMapping's search effort; the
// symmetry-reduced space must fit under it or the call is rejected up
// front. 4^11/4! symmetry-reduced ≈ 2×10⁵ for the MPEG-2 decoder on four
// uniform cores, well inside the bound.
const MaxExhaustiveEvaluations = 2_000_000

// ExhaustiveMapping finds the Γ-optimal feasible mapping at one scaling
// vector by enumerating every task-to-core assignment, with two exactness-
// preserving reductions:
//
//   - cores at the same scaling level are interchangeable, so assignments
//     are only generated in canonical form (a task may open a fresh core of
//     a scaling class only if it is the lowest-indexed unopened core of
//     that class);
//   - assignments that leave fewer unassigned tasks than empty cores are
//     pruned (the every-core-used invariant of Fig. 6).
//
// It exists to measure the optimality gap of the heuristic mappers on small
// problems; cost grows exponentially with N, so the symmetry-reduced space
// is counted first and the call fails fast if it exceeds
// MaxExhaustiveEvaluations.
func ExhaustiveMapping(g *taskgraph.Graph, p *arch.Platform, scaling []int, cfg Config) (*metrics.Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.ValidScaling(scaling); err != nil {
		return nil, err
	}
	n := g.N()
	cores := p.Cores()

	// Scaling classes for symmetry reduction.
	class := make([]int, cores) // scaling value per core
	copy(class, scaling)

	if est := estimateAssignments(n, cores, class); est > MaxExhaustiveEvaluations {
		return nil, fmt.Errorf("mapping: exhaustive space ≈%d exceeds limit %d (N=%d, C=%d)",
			est, MaxExhaustiveEvaluations, n, cores)
	}

	opt := metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec}
	m := make(sched.Mapping, n)
	loads := make([]int, cores)
	var best *metrics.Evaluation

	var dfs func(task int) error
	dfs = func(task int) error {
		if task == n {
			if n >= cores {
				for _, l := range loads {
					if l == 0 {
						return nil // every allocated core must host a task
					}
				}
			}
			ev, err := metrics.Evaluate(g, p, m, scaling, cfg.SER, opt)
			if err != nil {
				return err
			}
			if ev.MeetsDeadline || cfg.DeadlineSec <= 0 {
				if best == nil || ev.Gamma < best.Gamma {
					best = ev
				}
			}
			return nil
		}
		// Prune: remaining tasks must be able to populate the empty cores.
		empty := 0
		for _, l := range loads {
			if l == 0 {
				empty++
			}
		}
		if n-task < empty {
			return nil
		}
		seenFreshClass := make(map[int]bool)
		for c := 0; c < cores; c++ {
			if loads[c] == 0 {
				// Canonical form: open at most one fresh core per scaling
				// class, the lowest-indexed one.
				if seenFreshClass[class[c]] {
					continue
				}
				seenFreshClass[class[c]] = true
			}
			m[task] = c
			loads[c]++
			if err := dfs(task + 1); err != nil {
				return err
			}
			loads[c]--
		}
		return nil
	}
	if err := dfs(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("mapping: no feasible mapping exists at scaling %v", scaling)
	}
	return best, nil
}

// estimateAssignments upper-bounds the symmetry-reduced assignment count:
// C^N divided by the product of factorials of the scaling-class sizes.
func estimateAssignments(n, cores int, class []int) int64 {
	classSize := map[int]int{}
	for _, c := range class {
		classSize[c]++
	}
	denom := 1.0
	for _, k := range classSize {
		for i := 2; i <= k; i++ {
			denom *= float64(i)
		}
	}
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(cores)
		if total/denom > float64(MaxExhaustiveEvaluations)*10 {
			return MaxExhaustiveEvaluations * 10 // saturate early
		}
	}
	return int64(total / denom)
}
