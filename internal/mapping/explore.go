package mapping

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/pareto"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
	"seadopt/internal/vscale"
)

// Design is one optimized design point: the scaling vector chosen by the
// outer loop and the best mapping the inner search found for it.
type Design struct {
	Scaling []int
	Mapping sched.Mapping
	Eval    *metrics.Evaluation
}

// Progress reports one resolved scaling combination of an exploration.
// Callbacks arrive in visit order (combination at position i is reported
// only after 0..i-1), regardless of the worker parallelism, and every
// field of the event stream is deterministic for a given (Config, graph,
// platform) at any Parallelism.
//
// The event is BORROWED: its slice-valued fields (Scaling in particular)
// are recycled by the engine as soon as the callback returns, so callbacks
// must copy anything they retain.
type Progress struct {
	// Index is the 0-based visit position; Total the number of
	// combinations this exploration visits. Under StrategyExhaustive and
	// StrategyBranchAndBound every enumeration entry is visited, so Index
	// equals Combination; under StrategySampled, Index counts within the
	// sample.
	Index, Total int
	// Combination is the combination's stable Fig. 5 enumeration index,
	// whatever order or subset the strategy visits.
	Combination int
	// Scaling is the combination's per-core vector. Borrowed: valid only
	// for the duration of the callback; copy to retain, do not mutate.
	Scaling []int
	// Pruned reports that the combination's admissible makespan lower
	// bound already misses the deadline: it is provably infeasible and the
	// mapper never ran. Design is nil for pruned combinations.
	Pruned bool
	// Skipped reports that the combination is provably irrelevant to the
	// fold's result — dominated on nominal power by a feasible incumbent,
	// probe-infeasible while a probed incumbent stands (scalar fold), or
	// bound-dominated by the frontier (Pareto fold) — so the mapper was
	// skipped or cancelled, or its design discarded. Design is nil for
	// skipped combinations.
	Skipped bool
	// Design is the combination's optimized design; nil when Pruned or
	// Skipped.
	Design *Design
	// Best is the incumbent best design after folding this combination in
	// (under the Pareto fold: the frontier member minimal in the canonical
	// active-objective order, i.e. minimum power when power is an active
	// objective); nil until the first combination is actually evaluated.
	Best *Design
	// FrontierSize is the number of non-dominated designs after folding
	// this combination in. Zero under the scalar fold.
	FrontierSize int
	// Admitted reports that this combination's design joined the Pareto
	// frontier (possibly evicting dominated members). Always false under
	// the scalar fold.
	Admitted bool
}

// Explore runs the outer design loop of Fig. 4 with background context; see
// ExploreContext.
func Explore(g *taskgraph.Graph, p *arch.Platform, mapper MapperFunc, cfg Config) (best *Design, perScaling []*Design, err error) {
	return ExploreContext(context.Background(), g, p, mapper, cfg)
}

// ExploreContext runs the outer design loop of Fig. 4: voltage-scaling
// combinations from the Fig. 5 enumeration are streamed to the mapper
// (step 2); step 3's assessment keeps the deadline-meeting design whose
// *scaling* has minimum nominal power — power minimization happens at the
// voltage-scaling level (step 1 of the flow), before mapping — tie-broken
// by minimum Γ and then by minimum measured (utilization-weighted) power.
//
// Config.Strategy picks the walk: StrategyExhaustive maps every
// combination; StrategyBranchAndBound (the default) prunes combinations an
// admissible bound proves infeasible and skips combinations that provably
// cannot change the verdict — dominated on nominal power by a resolved
// feasible incumbent, or probe-infeasible while any probed incumbent stands
// — cancelling dominated in-flight work, and returns a byte-identical best
// Design; StrategySampled maps a budgeted
// random portfolio. With Config.Ranked, branch-and-bound first locates a
// feasible incumbent by walking combinations in ascending nominal power, so
// the dominance threshold is in force from the very first combination of
// the deterministic stream. The enumeration is never materialized:
// combinations stream through a bounded reorder window, so memory is
// O(workers), not O(combinations).
//
// perScaling lists one Design per visited combination in visit order, for
// the experiment harness; entries are nil for pruned/skipped combinations,
// and the whole list is omitted under Config.DiscardPerScaling. (The paper
// tables use StrategyExhaustive, where every entry is populated.)
//
// Combinations are independent, so they fan out over a bounded worker pool
// (Config.Parallelism workers; 0 selects GOMAXPROCS). Each worker owns one
// reusable metrics.Evaluator rebound per combination, and each combination
// derives its own seed from (Config.Seed, enumeration index), so the chosen
// best design, the perScaling order and every Progress callback are
// identical at any parallelism. Cancelling ctx stops the workers promptly
// and returns ctx.Err().
func ExploreContext(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config) (best *Design, perScaling []*Design, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Probe == nil {
		// Materialize the per-call probe cache here rather than inside the
		// stream, so the all-infeasible fallback pass below reuses every
		// probe verdict the first pass computed. A Reuse bundle supplies its
		// shared cache instead.
		if cfg.Reuse != nil {
			cfg.Probe = cfg.Reuse.Probe()
		} else {
			cfg.Probe = NewProbeCache()
		}
	}
	strategy := cfg.Strategy.withDefault()
	best, perScaling, pruned, err := exploreStream(ctx, g, p, mapper, cfg, strategy != StrategyExhaustive)
	if err != nil {
		return nil, nil, err
	}
	if pruned > 0 && (best == nil || !best.Eval.MeetsDeadline) {
		// Degenerate case: nothing feasible was found and bound-pruned
		// combinations were never mapped, so the exhaustive "least
		// infeasible" verdict (minimum nominal power among the designs the
		// mapper actually produced) may live inside the pruned set. Re-run
		// the same visit sequence without pruning — deterministically — so
		// the returned Design matches StrategyExhaustive byte for byte.
		// Progress was already emitted by the first pass and is not
		// replayed.
		silent := cfg
		silent.Progress = nil
		best, perScaling, _, err = exploreStream(ctx, g, p, mapper, silent, false)
		if err != nil {
			return nil, nil, err
		}
	}
	return best, perScaling, nil
}

// ExplorePareto runs the multi-objective design loop with background
// context; see ExploreParetoContext.
func ExplorePareto(g *taskgraph.Graph, p *arch.Platform, mapper MapperFunc, cfg Config) ([]*Design, error) {
	return ExploreParetoContext(context.Background(), g, p, mapper, cfg)
}

// ExploreParetoContext runs the same streamed design loop as ExploreContext
// but replaces the scalar step-3 reduction with a multi-objective
// non-dominated fold: every deadline-feasible resolved combination's
// objective vector — nominal power, T_M and Γ, restricted to
// Config.Objectives — is offered to a streaming Pareto frontier, and the
// ordered frontier (ascending by the active objectives in canonical order
// — power, then T_M, then Γ — then by enumeration index) is returned as a
// list of Designs.
//
// Under StrategyBranchAndBound the dominance pruning switches from the
// scalar incumbent to frontier-dominance: a combination is skipped only when
// its admissible objective lower bound — exact nominal power, the
// metrics.Bounds T_M lower bound, zero Γ — is strictly dominated by a
// frontier member, which proves its realized vector cannot join the
// frontier. Deadline-bound pruning applies unchanged. The frontier is
// byte-identical to StrategyExhaustive's at any Parallelism. Config.Ranked
// is ignored: the frontier admits only realized designs, so there is no
// scalar incumbent to pre-seed.
//
// When no deadline-feasible design exists the frontier would be empty;
// instead the scalar engine's degenerate verdict — the deterministic "least
// infeasible" design of an exhaustive pass — is returned as a single-entry
// frontier, so callers always receive at least one design.
func ExploreParetoContext(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config) ([]*Design, error) {
	cfg = cfg.withDefaults()
	if cfg.Objectives == 0 {
		cfg.Objectives = pareto.DefaultObjectives
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Probe == nil {
		if cfg.Reuse != nil {
			cfg.Probe = cfg.Reuse.Probe()
		} else {
			cfg.Probe = NewProbeCache()
		}
	}
	// The frontier owns per-combination Designs; never retain the full
	// per-combination list on top of it.
	cfg.DiscardPerScaling = true

	fold, err := newParetoFold(cfg)
	if err != nil {
		return nil, err
	}
	prune := cfg.Strategy.withDefault() != StrategyExhaustive
	if prune && len(cfg.WarmFrontier) > 0 && cfg.Strategy.withDefault() == StrategyBranchAndBound {
		ghosts, err := warmGhostFold(g, p, cfg)
		if err != nil {
			return nil, err
		}
		fold.ghosts = ghosts
	}
	// T_M lower bounds feed both deadline pruning and the frontier's
	// bound-dominance test, so the Pareto core computes them under every
	// strategy (the exhaustive reference ignores them).
	_, prunedCount, err := exploreCore(ctx, g, p, mapper, cfg, fold, coreOptions{
		computeBounds: true,
		prune:         prune,
	})
	if err != nil {
		return nil, err
	}
	frontier := fold.frontier()
	if len(frontier) == 0 {
		// No deadline-feasible design exists (bound-pruned combinations are
		// provably infeasible, so they cannot change that); degenerate to
		// the scalar "least infeasible" verdict. When every combination was
		// resolved — no skip can fire against an empty frontier — the
		// embedded scalar fold already walked the identical acceptance
		// sequence; only a pass with bound-pruned gaps must be re-run. Warm
		// ghosts CAN skip against an empty realized frontier, so a
		// ghost-seeded run always takes the exhaustive re-run (in practice
		// unreachable: ghosts exist only when the warm source found a
		// feasible frontier at this deadline, which this run then refinds).
		if prunedCount == 0 && fold.ghosts == nil {
			return []*Design{fold.scalar.best}, nil
		}
		silent := cfg
		silent.Progress = nil
		silent.DiscardPerScaling = true
		silent.Ranked = false
		best, _, _, err := exploreStream(ctx, g, p, mapper, silent, false)
		if err != nil {
			return nil, err
		}
		return []*Design{best}, nil
	}
	return frontier, nil
}

// errDominated is the cancellation cause of in-flight mapper work made
// irrelevant by a resolved feasible incumbent with lower nominal power.
var errDominated = errors.New("mapping: combination dominated by resolved incumbent")

// outcome is one resolved combination flowing from the dispatcher/workers
// into the ordered reduction.
type outcome struct {
	pos        int   // visit position (fold order)
	idx        int   // stable Fig. 5 enumeration index
	scaling    []int // slab-pooled; released by the reduction
	nominal    float64
	tmLB       float64 // admissible T_M lower bound (valid when hasLB)
	hasLB      bool
	pruned     bool // bound-proved infeasible; mapper never ran
	skipCand   bool // mapper skipped/cancelled as irrelevant (fold confirms)
	design     *Design
	probed     bool // probe verdict: a feasible mapping exists at this scaling
	probeKnown bool // the probe actually ran (false for dispatch-time skips)
	err        error
}

// streamFold is the step-3 reduction plugged into the shared streaming core.
// The scalar single-best fold and the Pareto non-dominated fold both
// implement it. dispatchSkip, register and unregister may be called from the
// dispatcher and worker goroutines concurrently; confirmSkip, fold and
// annotate run only on the fold goroutine, in visit order.
type streamFold interface {
	// dispatchSkip is the opportunistic pre-mapper dominance test. It must
	// be monotone with respect to the fold's published state: once true for
	// an outcome, confirmSkip must reproduce the verdict at fold time.
	dispatchSkip(o *outcome) bool
	// register atomically re-checks dispatchSkip and, where the fold
	// supports dominance cancellation, makes the combination's in-flight
	// mapper work cancellable. It reports false when the combination should
	// be skipped without running the mapper.
	register(o *outcome, cancel context.CancelCauseFunc) bool
	// unregister retires a combination's cancellation handle.
	unregister(pos int)
	// mapperSkippable reports whether a probe-infeasible combination's
	// mapper run is provably irrelevant to the fold's result, so the worker
	// may skip it after the probe. Like dispatchSkip it must be monotone:
	// once true, confirmSkip must reproduce the verdict for any
	// probe-infeasible outcome folded later.
	mapperSkippable() bool
	// confirmSkip is the authoritative fold-time dominance verdict.
	confirmSkip(o *outcome) bool
	// fold consumes one resolved (neither pruned nor skipped) design.
	fold(o *outcome)
	// annotate fills the fold-specific Progress fields (Best, FrontierSize,
	// Admitted) after the outcome's verdict has been applied.
	annotate(ev *Progress)
}

// incumbentBoard publishes the scalar reduction's monotone dominance
// threshold to the dispatcher and workers, and tracks in-flight work so
// newly dominated combinations are cancelled promptly. The board holds the
// *minimum* nominal power of any probed-feasible design the fold has
// accepted — strictly monotone non-increasing, even when the fold's current
// incumbent drifts within the nominal-power tolerance band to a numerically
// higher value on a Γ tie-break. That monotonicity is what makes every
// opportunistic dispatch-time skip reproducible by the authoritative
// fold-time rule: a combination dominated against an older (larger-or-
// equal) threshold is dominated against every later one.
type incumbentBoard struct {
	mu       sync.Mutex
	probed   bool
	nominal  float64
	inflight map[int]inflightEntry
}

type inflightEntry struct {
	nominal float64
	cancel  context.CancelCauseFunc
}

func newIncumbentBoard() *incumbentBoard {
	return &incumbentBoard{inflight: make(map[int]inflightEntry)}
}

// dominatedNominal mirrors betterDesign's nominal-power tolerance: true when
// nominal is strictly worse than bestNominal beyond the relative band, i.e.
// the combination can lose on power but never tie into the Γ tie-break.
func dominatedNominal(nominal, bestNominal float64) bool {
	const rel = 1e-9
	return nominal-bestNominal > rel*(nominal+bestNominal)
}

// shouldSkip reports whether a combination with this nominal power is
// already provably dominated.
func (b *incumbentBoard) shouldSkip(nominal float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probed && dominatedNominal(nominal, b.nominal)
}

// hasProbed reports whether any probed-feasible design has been published
// (folded or ranked-seeded). Monotone: once true, always true.
func (b *incumbentBoard) hasProbed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probed
}

// publish lowers the dominance threshold after the fold accepts a
// probed-feasible design and cancels newly dominated in-flight work (the
// early exit: outstanding higher-position combinations that can no longer
// win stop burning mapper budget). A nominal above the current threshold
// (a within-tolerance Γ tie-break winner) leaves the threshold untouched.
func (b *incumbentBoard) publish(nominal float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probed && nominal >= b.nominal {
		return
	}
	b.probed = true
	b.nominal = nominal
	for pos, e := range b.inflight {
		if dominatedNominal(e.nominal, nominal) {
			e.cancel(errDominated)
			delete(b.inflight, pos)
		}
	}
}

// registerUnlessSkipped atomically consults the incumbent and, when the
// combination is not already dominated, registers it as cancellable
// in-flight work. It reports false when the combination should be skipped
// without running the mapper.
func (b *incumbentBoard) registerUnlessSkipped(pos int, nominal float64, cancel context.CancelCauseFunc) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probed && dominatedNominal(nominal, b.nominal) {
		return false
	}
	b.inflight[pos] = inflightEntry{nominal: nominal, cancel: cancel}
	return true
}

func (b *incumbentBoard) unregister(pos int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.inflight, pos)
}

// scalarFold is the classic step-3 acceptance walk: keep the single
// deadline-meeting design with minimum nominal power, tie-broken by Γ and
// measured power, with the incumbent board driving branch-and-bound
// dominance skips and in-flight cancellation.
type scalarFold struct {
	prune bool
	board *incumbentBoard
	tel   *Telemetry // incumbent/bound event sink; nil when detached

	best        *Design
	bestNominal float64 // the incumbent's own nominal (acceptance rule)
	domNominal  float64 // min nominal of any accepted probed design (dominance rule)
	bestProbed  bool
	// seeded reports that domNominal was pre-published by the ranked
	// incumbent pass: a probed-feasible nominal the lexicographic stream is
	// guaranteed to fold eventually, so dominance skips against it are as
	// sound as against a folded incumbent.
	seeded bool
}

func newScalarFold(prune bool) *scalarFold {
	return &scalarFold{prune: prune, board: newIncumbentBoard()}
}

// seed pre-publishes a realizable probed-feasible nominal as the dominance
// threshold before any combination has folded. The nominal must be that of
// an actual probe-feasible combination of the stream (the ranked pass's
// first hit), so every beyond-band skip it causes discards a provably
// non-winning combination.
func (s *scalarFold) seed(nominal float64) {
	s.seeded = true
	s.domNominal = nominal
	if s.prune {
		s.board.publish(nominal)
	}
	if s.tel != nil {
		s.tel.event(EventBound, -1, -1, nominal, 0)
	}
}

func (s *scalarFold) dispatchSkip(o *outcome) bool {
	return s.prune && s.board.shouldSkip(o.nominal)
}

func (s *scalarFold) register(o *outcome, cancel context.CancelCauseFunc) bool {
	if !s.prune {
		return true
	}
	return s.board.registerUnlessSkipped(o.pos, o.nominal, cancel)
}

func (s *scalarFold) unregister(pos int) {
	if s.prune {
		s.board.unregister(pos)
	}
}

// mapperSkippable: once any probed-feasible incumbent stands (folded or
// ranked-seeded), a probe-infeasible combination can never displace it —
// the acceptance walk prefers probed designs outright — so its mapper run
// is irrelevant to the scalar verdict. The board's probed flag is monotone,
// so confirmSkip reproduces every worker-time verdict.
func (s *scalarFold) mapperSkippable() bool {
	return s.prune && s.board.hasProbed()
}

// confirmSkip applies the authoritative branch-and-bound verdict on the
// deterministic fold state alone. The dominance threshold is domNominal —
// monotone non-increasing, exactly mirroring the board — not the
// incumbent's own nominal, which can drift upward within the tolerance band
// on Γ tie-breaks. The second branch mirrors mapperSkippable: with a probed
// incumbent standing, a probe-infeasible combination is irrelevant whether
// or not its mapper happened to run.
func (s *scalarFold) confirmSkip(o *outcome) bool {
	if !s.prune || !(s.bestProbed || s.seeded) {
		return false
	}
	return dominatedNominal(o.nominal, s.domNominal) || (o.probeKnown && !o.probed)
}

func (s *scalarFold) fold(o *outcome) {
	better := false
	switch {
	case s.best == nil:
		better = true
	case o.probed != s.bestProbed:
		better = o.probed
	default:
		better = betterDesign(o.design.Eval, o.nominal, s.best.Eval, s.bestNominal)
	}
	if better {
		s.best = o.design
		s.bestNominal = o.nominal
		tightened := false
		if o.probed && (!(s.bestProbed || s.seeded) || o.nominal < s.domNominal) {
			s.domNominal = o.nominal
			tightened = true
		}
		s.bestProbed = o.probed
		if s.prune && s.bestProbed {
			s.board.publish(s.domNominal)
		}
		if s.tel != nil {
			s.tel.event(EventIncumbent, o.pos, o.idx, o.nominal, 0)
			if tightened {
				s.tel.event(EventBound, o.pos, o.idx, s.domNominal, 0)
			}
		}
	}
}

func (s *scalarFold) annotate(ev *Progress) { ev.Best = s.best }

// paretoFold folds feasible resolved combinations into a streaming
// non-dominated frontier over the configured objectives. Dominance skipping
// tests a combination's admissible objective lower bound — exact nominal
// power, the metrics.Bounds T_M lower bound, zero Γ — against the frontier:
// a strictly dominated bound proves the realized vector is dominated too,
// and pareto.Fold's eviction discipline keeps the verdict monotone, so
// dispatch-time skips are always reproducible at fold time. The mutex makes
// the dispatcher's opportunistic reads safe against fold-goroutine writes.
type paretoFold struct {
	objectives  pareto.Objectives
	deadlineSec float64

	// scalar mirrors the step-3 acceptance walk over every resolved
	// design, so the all-infeasible degenerate verdict is available
	// without a second pass whenever no combination was bound-pruned.
	scalar *scalarFold

	tel *Telemetry // admission event sink; nil when detached

	// ghosts is the warm-start frontier: realized objective vectors of a
	// prior fingerprint-matching run over identical mapper inputs (deadline,
	// seed, SER, budgets), differing at most in active objectives. Each
	// ghost's vector is exactly what this run will realize at that
	// combination, so a bound strictly dominated by a ghost is as provably
	// irrelevant as one dominated by a folded member. Immutable after
	// construction, hence monotone, hence reproducible at fold time. Nil
	// when not warm-started.
	ghosts *pareto.Fold[struct{}]

	mu       sync.RWMutex
	fold_    *pareto.Fold[*Design]
	admitted bool // whether annotate's outcome joined the frontier
}

func newParetoFold(cfg Config) (*paretoFold, error) {
	f, err := pareto.NewFold[*Design](cfg.Objectives)
	if err != nil {
		return nil, err
	}
	// The embedded scalar fold tracks only the degenerate all-infeasible
	// verdict; it stays detached from telemetry so its internal acceptance
	// walk does not masquerade as incumbent events in a Pareto run.
	return &paretoFold{
		objectives:  cfg.Objectives,
		deadlineSec: cfg.DeadlineSec,
		scalar:      newScalarFold(false),
		fold_:       f,
		tel:         cfg.Telemetry,
	}, nil
}

// bound is the combination's admissible objective lower bound: no mapping at
// this scaling can realize a vector below it in any component.
func (p *paretoFold) bound(o *outcome) pareto.Vector {
	lb := pareto.Vector{Power: o.nominal}
	if o.hasLB {
		lb.Makespan = o.tmLB
	}
	return lb // Γ lower bound is zero
}

func (p *paretoFold) dispatchSkip(o *outcome) bool {
	lb := p.bound(o)
	if p.ghosts != nil && p.ghosts.DominatedBound(lb) {
		return true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.fold_.DominatedBound(lb)
}

// register: the Pareto fold has no in-flight cancellation — a frontier
// admission rarely dominates outstanding work outright (its Γ lower bound
// is zero) — so registration is just a last-moment skip check.
func (p *paretoFold) register(o *outcome, _ context.CancelCauseFunc) bool {
	return !p.dispatchSkip(o)
}

func (p *paretoFold) unregister(int) {}

// mapperSkippable: never. The frontier admits any deadline-feasible realized
// design, and the mapper can find feasibility the probe's hill climb missed,
// so a probe-infeasible combination's mapper run still matters here.
func (p *paretoFold) mapperSkippable() bool { return false }

func (p *paretoFold) confirmSkip(o *outcome) bool {
	lb := p.bound(o)
	if p.ghosts != nil && p.ghosts.DominatedBound(lb) {
		return true
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.fold_.DominatedBound(lb)
}

func (p *paretoFold) fold(o *outcome) {
	p.scalar.fold(o)
	ev := o.design.Eval
	if p.deadlineSec > 0 && !ev.MeetsDeadline {
		p.admitted = false
		return // only deadline-feasible designs trade off on the frontier
	}
	v := pareto.Vector{Power: o.nominal, Makespan: ev.TMSeconds, Gamma: ev.Gamma}
	p.mu.Lock()
	p.admitted = p.fold_.Offer(v, o.idx, o.design)
	size := p.fold_.Size()
	p.mu.Unlock()
	if p.admitted && p.tel != nil {
		p.tel.event(EventAdmitted, o.pos, o.idx, o.nominal, size)
	}
}

func (p *paretoFold) annotate(ev *Progress) {
	ev.FrontierSize = p.fold_.Size()
	ev.Admitted = p.admitted
	p.admitted = false
	if min, ok := p.fold_.Min(); ok {
		ev.Best = min.Value // the frontier's canonical-order minimum
	}
}

// frontier returns the fold's ordered result.
func (p *paretoFold) frontier() []*Design {
	entries := p.fold_.Entries()
	out := make([]*Design, len(entries))
	for i, e := range entries {
		out[i] = e.Value
	}
	return out
}

// comboSource streams the strategy's combinations over the platform's
// scaling space — the Fig. 5 enumeration for homogeneous platforms, the
// mixed-radix per-core generalization for heterogeneous ones. The scaling
// view handed out by next is BORROWED: valid only until the following next
// call (the dispatcher copies it into a pooled slab). Both walks are
// bit-identical to the legacy homogeneous stream on homogeneous platforms,
// so combination indices (and with them mapper seeds and cache identities)
// are stable across the generalization.
type comboSource struct {
	size int
	next func() (scaling []int, idx int, ok bool)
}

func newComboSource(p *arch.Platform, cfg Config, strategy Strategy) (*comboSource, error) {
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return nil, err
	}
	if strategy == StrategySampled {
		budget := cfg.SampleBudget
		if budget == 0 {
			budget = DefaultSampleBudget
		}
		fr, err := space.SampledFrontier(budget, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return &comboSource{
			size: fr.Size(),
			next: func() ([]int, int, bool) {
				c, ok := fr.Next()
				if !ok {
					return nil, 0, false
				}
				return c.Scaling, c.Index, true
			},
		}, nil
	}
	it := space.Iter()
	return &comboSource{size: space.Count(), next: it.Next}, nil
}

// seedRankedIncumbent is the ranked pass of Config.Ranked: it walks the
// combination space in ascending nominal power (vscale.RankedFrontier over
// the per-level f·V² terms), cursor-prunes bound-infeasible combinations,
// and probes the rest until the first probe-feasible combination — whose
// nominal power is, by the walk order, the minimum nominal of any
// probe-feasible combination. That value pre-seeds the branch-and-bound
// dominance threshold, so the lexicographic stream skips beyond-band
// combinations from its very first position instead of waiting for the
// incumbent to stream by. Probe verdicts land in cfg.Probe (keyed by the
// stable combination index), so the main stream reuses every probe this
// pass ran. ok is false when nothing probe-feasible exists; the stream then
// runs unseeded and the usual degenerate fallback applies.
func seedRankedIncumbent(ctx context.Context, g *taskgraph.Graph, p *arch.Platform, cfg Config) (nominal float64, ok bool, err error) {
	tel := cfg.Telemetry
	if tel != nil {
		start := tel.now()
		defer func() { tel.addRanked(tel.now() - start) }()
	}
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return 0, false, err
	}
	cores := p.Cores()
	class := p.SymmetryClasses()
	weight := make([][]float64, cores)
	cols := make(map[int][]float64)
	for c := 0; c < cores; c++ {
		col, have := cols[class[c]]
		if !have {
			levels := p.CoreNumLevels(c)
			col = make([]float64, levels)
			for s := 1; s <= levels; s++ {
				l := p.MustCoreLevel(c, s)
				col[s-1] = l.FreqHz() * l.Vdd * l.Vdd
			}
			cols[class[c]] = col
		}
		weight[c] = col
	}
	fr, err := space.RankedFrontier(weight)
	if err != nil {
		return 0, false, fmt.Errorf("mapping: ranked incumbent seeding: %w", err)
	}
	bounds := boundsFor(g, p, cfg)
	cursor := bounds.Cursor()
	eval, releaseEval, err := acquireEvaluator(g, p, cfg)
	if err != nil {
		return 0, false, err
	}
	defer releaseEval()
	if tel != nil {
		// Pooled evaluators carry counters across borrowers; attribute only
		// this pass's delta.
		base := eval.Stats()
		defer func() { tel.addEvalStats(eval.Stats().Sub(base)) }()
	}
	mc := &MapContext{Graph: g, Platform: p, Eval: eval, scratch: newComboScratch(g.N(), cores)}
	for {
		combo, more := fr.Next()
		if !more {
			return 0, false, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		if _, err := cursor.Advance(combo.Scaling); err != nil {
			return 0, false, err
		}
		if cfg.DeadlineSec > 0 && cursor.TMLowerBound() > cfg.DeadlineSec*(1+1e-9) {
			continue // provably infeasible; the stream will bound-prune it too
		}
		if err := eval.Bind(combo.Scaling); err != nil {
			return 0, false, err
		}
		mc.Ctx = ctx
		mc.Scaling = eval.Scaling()
		mc.Seed = comboSeed(cfg.Seed, combo.Index)
		var t0 int64
		if tel != nil {
			t0 = tel.now()
		}
		_, feasible, hit, err := cfg.Probe.feasibleAtScaling(mc, combo.Index, cfg)
		if tel != nil {
			tel.observeProbe(tel.now()-t0, hit)
		}
		if err != nil {
			return 0, false, err
		}
		if feasible {
			return cursor.NominalPower(), true, nil
		}
	}
}

// seedWarmIncumbent validates Config.WarmHints against the CURRENT problem
// and returns the minimum probe-feasible nominal power among them. Hints are
// just candidate combination indices (typically a fingerprint-matching prior
// run's winner); each is re-probed under this run's deadline through the
// shared probe cache before it may seed anything, so a hint from a different
// deadline — or a garbage hint — can never unsoundly skip work: only the
// verdicts of this run's own probe are trusted, satisfying scalarFold.seed's
// realizability contract. Out-of-range hints are ignored.
func seedWarmIncumbent(ctx context.Context, g *taskgraph.Graph, p *arch.Platform, cfg Config) (nominal float64, ok bool, err error) {
	tel := cfg.Telemetry
	if tel != nil {
		start := tel.now()
		defer func() { tel.addRanked(tel.now() - start) }()
	}
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return 0, false, err
	}
	count := space.Count()
	bounds := boundsFor(g, p, cfg)
	cursor := bounds.Cursor()
	eval, releaseEval, err := acquireEvaluator(g, p, cfg)
	if err != nil {
		return 0, false, err
	}
	defer releaseEval()
	if tel != nil {
		base := eval.Stats()
		defer func() { tel.addEvalStats(eval.Stats().Sub(base)) }()
	}
	mc := &MapContext{Graph: g, Platform: p, Eval: eval, scratch: newComboScratch(g.N(), p.Cores())}
	best, seeded := 0.0, false
	for _, hint := range cfg.WarmHints {
		if hint < 0 || hint >= count {
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		scaling, err := space.Unrank(hint)
		if err != nil {
			continue
		}
		if _, err := cursor.Advance(scaling); err != nil {
			return 0, false, err
		}
		if cfg.DeadlineSec > 0 && cursor.TMLowerBound() > cfg.DeadlineSec*(1+1e-9) {
			continue // provably infeasible under the new deadline
		}
		if err := eval.Bind(scaling); err != nil {
			return 0, false, err
		}
		mc.Ctx = ctx
		mc.Scaling = eval.Scaling()
		mc.Seed = comboSeed(cfg.Seed, hint)
		var t0 int64
		if tel != nil {
			t0 = tel.now()
		}
		_, feasible, hit, err := cfg.Probe.feasibleAtScaling(mc, hint, cfg)
		if tel != nil {
			tel.observeProbe(tel.now()-t0, hit)
		}
		if err != nil {
			return 0, false, err
		}
		if feasible {
			if n := cursor.NominalPower(); !seeded || n < best {
				best, seeded = n, true
			}
		}
	}
	return best, seeded, nil
}

// warmGhostFold validates Config.WarmFrontier and folds the surviving points
// into an immutable ghost frontier for the Pareto fold's dominance tests.
// Each ghost's power is recomputed as the combination's nominal power by
// this engine's own cursor — never taken from the caller — and points whose
// makespan misses this run's deadline are dropped (they cannot be members
// of any frontier this run produces). Returns nil when nothing survives.
func warmGhostFold(g *taskgraph.Graph, p *arch.Platform, cfg Config) (*pareto.Fold[struct{}], error) {
	space, err := vscale.PlatformSpace(p)
	if err != nil {
		return nil, err
	}
	count := space.Count()
	bounds := boundsFor(g, p, cfg)
	cursor := bounds.Cursor()
	gf, err := pareto.NewFold[struct{}](cfg.Objectives)
	if err != nil {
		return nil, err
	}
	added := false
	for _, wp := range cfg.WarmFrontier {
		if wp.Combination < 0 || wp.Combination >= count {
			continue
		}
		if cfg.DeadlineSec > 0 && wp.Makespan > cfg.DeadlineSec {
			continue
		}
		scaling, err := space.Unrank(wp.Combination)
		if err != nil {
			continue
		}
		if _, err := cursor.Advance(scaling); err != nil {
			return nil, err
		}
		gf.Offer(pareto.Vector{Power: cursor.NominalPower(), Makespan: wp.Makespan, Gamma: wp.Gamma},
			wp.Combination, struct{}{})
		added = true
	}
	if !added {
		return nil, nil
	}
	return gf, nil
}

// exploreStream is the scalar entry to the streaming work loop: it plugs the
// single-best fold into the shared core and returns the chosen design plus
// the number of bound-pruned combinations so the caller can decide whether
// the all-infeasible fallback is needed.
func exploreStream(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, prune bool) (best *Design, perScaling []*Design, prunedCount int, err error) {
	fold := newScalarFold(prune)
	fold.tel = cfg.Telemetry
	if prune && cfg.Strategy.withDefault() == StrategyBranchAndBound {
		if cfg.Probe == nil {
			if cfg.Reuse != nil {
				cfg.Probe = cfg.Reuse.Probe()
			} else {
				cfg.Probe = NewProbeCache()
			}
		}
		switch {
		case cfg.Ranked:
			nominal, seeded, err := seedRankedIncumbent(ctx, g, p, cfg)
			if err != nil {
				return nil, nil, 0, err
			}
			if seeded {
				fold.seed(nominal)
			}
		case len(cfg.WarmHints) > 0:
			// Warm-start: re-validate prior winners under this problem's
			// constraints and seed the dominance threshold from the best
			// survivor, so BnB prunes from the first combination. Every
			// hint is probed through this run's own cache, so seeding is
			// exactly as sound as the ranked pass — the Design is
			// byte-identical to a cold run; only the Pruned/Skipped split
			// of Progress may differ (as with Config.Ranked).
			nominal, seeded, err := seedWarmIncumbent(ctx, g, p, cfg)
			if err != nil {
				return nil, nil, 0, err
			}
			if seeded {
				fold.seed(nominal)
			}
		}
	}
	perScaling, prunedCount, err = exploreCore(ctx, g, p, mapper, cfg, fold, coreOptions{
		computeBounds: prune && cfg.DeadlineSec > 0,
		prune:         prune,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return fold.best, perScaling, prunedCount, nil
}

// coreOptions tunes the shared streaming core.
type coreOptions struct {
	// computeBounds attaches an admissible T_M lower bound to every outcome
	// (the Pareto fold consumes it even when pruning is off). Nominal power
	// is histogram-derived under every option set.
	computeBounds bool
	// prune enables the branch-and-bound verdicts: deadline-bound pruning
	// (when a deadline is set) and fold-dominance skipping.
	prune bool
	// source, when non-nil, replaces the strategy-derived combination
	// source — the shard worker uses it to restrict the walk to a
	// contiguous rank range while keeping every stable enumeration index.
	source *comboSource
}

// exploreCore is the streaming work loop shared by every strategy and fold:
// a dispatcher walks the combination source under a bounded reorder window,
// workers map combinations concurrently, and the calling goroutine folds
// outcomes in visit order (the deterministic ordered reduction). With
// opts.prune set, the dispatcher applies the branch-and-bound rules ahead of
// the mapper and the reduction applies them authoritatively at fold time, so
// the pruned and skipped markers — like everything else in the event stream
// — are a pure function of the configuration.
//
// Per-combination state is recycled: scaling vectors live in a slab pool
// bounded by the reorder window, the reduction ring holds outcomes by value,
// and the Progress event struct is reused across callbacks (hence the
// borrowed-event contract on Progress). Nominal power and the T_M lower
// bound are maintained by a metrics.Cursor, so the dispatcher's per-step
// bound work is O(changed coefficients) — and because both are pure
// functions of the level histogram, every strategy (exhaustive,
// branch-and-bound, sampled, ranked-seeded) sees bit-identical values for
// the same combination.
func exploreCore(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config, fold streamFold, opts coreOptions) (perScaling []*Design, prunedCount int, err error) {
	strategy := cfg.Strategy.withDefault()
	src := opts.source
	if src == nil {
		src, err = newComboSource(p, cfg, strategy)
		if err != nil {
			return nil, 0, err
		}
	}
	total := src.size
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	window := 4 * workers
	if window < 16 {
		window = 16
	}
	if window > total {
		window = total
	}
	probe := cfg.Probe
	if probe == nil {
		probe = NewProbeCache()
	}
	cores := p.Cores()
	tel := cfg.Telemetry
	var t0 int64
	if tel != nil {
		tel.beginPass(strategy, workers, workers)
		t0 = tel.now()
	}
	bounds := boundsFor(g, p, cfg)
	cursor := bounds.Cursor()
	if tel != nil {
		tel.addBounds(tel.now() - t0)
	}

	// Slab pool for per-combination scaling vectors: the token window bounds
	// outcomes in flight, so at most `window` slabs circulate — taken by the
	// dispatcher, released by the reduction once the combination's Progress
	// callback has returned.
	slabs := make(chan []int, window)
	getSlab := func() []int {
		select {
		case s := <-slabs:
			return s
		default:
			return make([]int, cores)
		}
	}
	putSlab := func(s []int) {
		if s == nil {
			return
		}
		select {
		case slabs <- s:
		default:
		}
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan outcome) // combinations headed for a worker
	// The results buffer is deliberately smaller than the reorder window:
	// once a worker runs more than one mapper ahead of the fold it blocks
	// here, yielding to the reducer — otherwise on a single CPU the
	// dispatcher/worker ping-pong can starve the fold for the whole run
	// and the incumbent is never published in time to skip anything.
	results := make(chan outcome, workers)
	tokens := make(chan struct{}, window) // reorder-window backpressure
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	var producers sync.WaitGroup

	// Workers: map one combination at a time on a private evaluator and a
	// private reused MapContext, under a per-combination cancellable context
	// so dominated work can be abandoned mid-search.
	for w := 0; w < workers; w++ {
		producers.Add(1)
		go func(w int) {
			defer producers.Done()
			eval, releaseEval, evErr := acquireEvaluator(g, p, cfg)
			var mc *MapContext
			if evErr == nil {
				defer releaseEval()
				mc = &MapContext{Graph: g, Platform: p, Eval: eval,
					scratch: newComboScratch(g.N(), cores)}
				if tel != nil {
					// Pooled evaluators carry counters across borrowers;
					// attribute only this worker's delta.
					base := eval.Stats()
					defer func() { tel.addEvalStats(eval.Stats().Sub(base)) }()
				}
			}
			for o := range jobs {
				if evErr != nil {
					o.err = evErr
					results <- o
					continue
				}
				jctx, jcancel := context.WithCancelCause(wctx)
				if opts.prune && !fold.register(&o, jcancel) {
					// Atomic check-and-register: no window between
					// consulting the fold state and becoming cancellable.
					jcancel(nil)
					o.skipCand = true
					results <- o
					continue
				}
				var spanStart int64
				if tel != nil {
					spanStart = tel.now()
				}
				o.design, o.probed, o.probeKnown, o.skipCand, o.err = exploreCombo(jctx, mc, mapper, o.scaling, o.idx, cfg, probe, fold)
				if opts.prune {
					fold.unregister(o.pos)
				}
				if o.err != nil && context.Cause(jctx) == errDominated {
					// The incumbent made this combination irrelevant while
					// it was being mapped; the fold confirms the skip.
					o.err, o.design = nil, nil
					o.skipCand = true
				}
				jcancel(nil)
				if tel != nil {
					kind := "map"
					if o.design == nil {
						kind = "skip"
					}
					tel.workerSpan(w, spanStart, tel.now(), o.idx, kind)
				}
				results <- o
			}
		}(w)
	}

	// Dispatcher: streams the combination source in visit order, resolving
	// the cheap outcomes (bound-pruned, already-dominated) inline via the
	// bound cursor and handing the rest to the workers. The token channel
	// caps dispatched-but-unfolded combinations at the window size, so the
	// reduction's reorder buffer — and with it the whole exploration —
	// needs O(workers) memory however large the enumeration is.
	producers.Add(1)
	go func() {
		defer producers.Done()
		defer close(jobs)
		for pos := 0; ; pos++ {
			// Enumeration-phase clock: only the dispatcher's own work is
			// timed; waiting on the token window or a worker slot is idle
			// backpressure, not enumeration.
			var et0 int64
			if tel != nil {
				et0 = tel.now()
			}
			scaling, idx, more := src.next()
			if tel != nil {
				tel.addEnum(tel.now() - et0)
			}
			if !more {
				return
			}
			select {
			case <-tokens:
			case <-wctx.Done():
				return
			}
			if tel != nil {
				et0 = tel.now()
			}
			o := outcome{pos: pos, idx: idx}
			if _, err := cursor.Advance(scaling); err != nil {
				o.err = err
				results <- o
				continue
			}
			slab := getSlab()
			copy(slab, scaling)
			o.scaling = slab
			o.nominal = cursor.NominalPower()
			if opts.computeBounds {
				o.tmLB = cursor.TMLowerBound()
				o.hasLB = true
				// Prune only beyond a safety band: the bound is exact
				// mathematics but inexact floats.
				if opts.prune && cfg.DeadlineSec > 0 && o.tmLB > cfg.DeadlineSec*(1+1e-9) {
					o.pruned = true
					if tel != nil {
						tel.addEnum(tel.now() - et0)
					}
					results <- o
					continue
				}
			}
			if opts.prune && fold.dispatchSkip(&o) {
				o.skipCand = true
				if tel != nil {
					tel.addEnum(tel.now() - et0)
				}
				results <- o
				continue
			}
			if tel != nil {
				tel.addEnum(tel.now() - et0)
			}
			select {
			case jobs <- o:
			case <-wctx.Done():
				return
			}
		}
	}()
	go func() {
		producers.Wait()
		close(results)
	}()

	// Deterministic ordered reduction: outcomes are folded in visit order
	// as soon as their prefix is complete, so the acceptance walk, the
	// pruned/skipped verdicts and the Progress stream never depend on
	// worker timing. pending is a by-value reorder ring of at most window
	// entries; ev is the one Progress event reused across every callback.
	pending := make([]outcome, window)
	havePending := make([]bool, window)
	next := 0
	var firstErr error
	firstErrPos := total
	var ev Progress
	if !cfg.DiscardPerScaling {
		perScaling = make([]*Design, 0, total)
	}
	for o := range results {
		if o.err != nil {
			// Keep the lowest-positioned real failure as the verdict
			// (jobs aborted by the internal cancel report the context
			// error), then cancel either way: an errored position can
			// never fold, so without cancellation the dispatcher would
			// wait on its window token forever.
			putSlab(o.scaling)
			if !errors.Is(o.err, context.Canceled) && o.pos < firstErrPos {
				firstErr, firstErrPos = o.err, o.pos
			}
			cancel()
			continue
		}
		pending[o.pos%window] = o
		havePending[o.pos%window] = true
		for next < total && havePending[next%window] && pending[next%window].pos == next {
			d := &pending[next%window]
			havePending[next%window] = false
			var ft0 int64
			if tel != nil {
				ft0 = tel.now()
			}

			// Authoritative branch-and-bound verdict, decided on the
			// deterministic fold state alone.
			skipped := false
			if opts.prune && !d.pruned && fold.confirmSkip(d) {
				skipped = true
			}
			if d.skipCand && !skipped && !d.pruned {
				// A dispatch-time skip the fold cannot reproduce would
				// break determinism; by the fold's monotonicity this is
				// unreachable, so fail loudly rather than silently diverge.
				if firstErr == nil || next < firstErrPos {
					firstErr = fmt.Errorf("mapping: internal error: combination %d skipped against a weaker incumbent", d.idx)
					firstErrPos = next
					cancel()
				}
				break
			}

			switch {
			case d.pruned:
				prunedCount++
				if tel != nil {
					tel.comboVerdict(EventPruned, next, d.idx, d.nominal)
				}
				if !cfg.DiscardPerScaling {
					perScaling = append(perScaling, nil)
				}
				if cfg.Progress != nil {
					ev = Progress{Index: next, Total: total, Combination: d.idx,
						Scaling: d.scaling, Pruned: true}
					fold.annotate(&ev)
					cfg.Progress(ev)
				}
			case skipped:
				if tel != nil {
					tel.comboVerdict(EventSkipped, next, d.idx, d.nominal)
				}
				if !cfg.DiscardPerScaling {
					perScaling = append(perScaling, nil)
				}
				if cfg.Progress != nil {
					ev = Progress{Index: next, Total: total, Combination: d.idx,
						Scaling: d.scaling, Skipped: true}
					fold.annotate(&ev)
					cfg.Progress(ev)
				}
			default:
				if tel != nil {
					tel.comboVerdict("", next, d.idx, d.nominal)
				}
				if !cfg.DiscardPerScaling {
					perScaling = append(perScaling, d.design)
				}
				fold.fold(d)
				if cfg.Progress != nil {
					ev = Progress{Index: next, Total: total, Combination: d.idx,
						Scaling: d.design.Scaling, Design: d.design}
					fold.annotate(&ev)
					cfg.Progress(ev)
				}
			}
			putSlab(d.scaling)
			d.scaling = nil
			d.design = nil
			if tel != nil {
				tel.addFold(tel.now() - ft0)
			}
			next++
			tokens <- struct{}{}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	if next != total {
		// Only reachable if a worker swallowed a cancellation without a
		// parent-context error; treat it as cancellation.
		return nil, 0, context.Canceled
	}
	return perScaling, prunedCount, nil
}

// exploreCombo runs one scaling combination on a worker's reused MapContext:
// the shared feasibility probe, the mapper and the deadline assessment. The
// context's per-combination fields (Ctx, Scaling, Seed) are rebound here;
// mappers must not retain mc or its fields past their call.
//
// The probe runs first: besides fixing step 1's mapper-independent
// feasibility verdict, a probe-infeasible result can prove the whole mapper
// run irrelevant — when fold.mapperSkippable() holds, a probe-infeasible
// combination can never influence the fold, so the mapper is skipped and
// the combination resolves as a skip candidate (skipped true, design nil).
// The probe itself is cached by combination index, so reordering it ahead
// of the mapper changes no verdict, only how often the mapper runs.
func exploreCombo(ctx context.Context, mc *MapContext, mapper MapperFunc,
	scaling []int, idx int, cfg Config, probe *ProbeCache,
	fold streamFold) (d *Design, probed, probeKnown, skipped bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, false, false, err
	}
	if err := mc.Eval.Bind(scaling); err != nil {
		return nil, false, false, false, err
	}
	mc.Ctx = ctx
	mc.Scaling = mc.Eval.Scaling()
	mc.Seed = comboSeed(cfg.Seed, idx)
	// Step 1's feasibility decision is mapper-independent: a common
	// deadline probe decides which scalings are candidates, so every
	// experiment (Exp:1-4) selects its design from the same scaling
	// set and differences between them come from mapping alone. If the
	// probe proves feasibility that the experiment's own mapper missed,
	// the probe's mapping is the design at this scaling.
	tel := cfg.Telemetry
	var t0 int64
	if tel != nil {
		t0 = tel.now()
	}
	probeEv, probedFeasible, probeHit, err := probe.feasibleAtScaling(mc, idx, cfg)
	if tel != nil {
		tel.observeProbe(tel.now()-t0, probeHit)
	}
	if err != nil {
		return nil, false, false, false, err
	}
	if !probedFeasible && fold.mapperSkippable() {
		if tel != nil {
			tel.mapperSpared()
		}
		return nil, false, true, true, nil
	}
	if tel != nil {
		t0 = tel.now()
	}
	m, ev, err := mapper(mc)
	if tel != nil {
		tel.observeMapper(tel.now() - t0)
	}
	if err != nil {
		return nil, false, false, false, fmt.Errorf("mapping: scaling %v: %w", scaling, err)
	}
	if probedFeasible && !ev.MeetsDeadline {
		// Clone: the cache owns probeEv, and Explore calls sharing the
		// cache must not hand out aliased mutable Designs.
		ev = probeEv.Clone()
		m = ev.Schedule.Mapping
	}
	probed = probedFeasible && ev.MeetsDeadline
	d = &Design{Scaling: append([]int(nil), scaling...), Mapping: m, Eval: ev}
	return d, probed, true, false, nil
}

// comboSeed derives the stream seed of combination i from the master seed
// (splitmix64 finalizer), decorrelating the combinations while keeping each
// one's stream a pure function of (seed, i). i is the combination's stable
// Fig. 5 enumeration index, so every strategy maps a given combination with
// the same stream.
func comboSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// betterDesign implements the step-3 acceptance order: feasibility first,
// then nominal scaling power, then Γ, then measured power.
func betterDesign(a *metrics.Evaluation, aNominal float64, b *metrics.Evaluation, bNominal float64) bool {
	if a.MeetsDeadline != b.MeetsDeadline {
		return a.MeetsDeadline
	}
	const rel = 1e-9
	if d := aNominal - bNominal; d < -rel*(aNominal+bNominal) {
		return true
	} else if d > rel*(aNominal+bNominal) {
		return false
	}
	if a.Gamma != b.Gamma {
		return a.Gamma < b.Gamma
	}
	return a.PowerW < b.PowerW
}

// comboScratch is the per-worker buffer set of the feasibility probe: the
// LPT seed mapping, the task order, per-core load/frequency accumulators and
// the hill climb's neighbor/load buffers, all reused across every
// combination a worker probes.
type comboScratch struct {
	order    []taskgraph.TaskID
	m        sched.Mapping
	neighbor sched.Mapping
	loadSec  []float64
	freq     []float64
	loads    []int
}

func newComboScratch(n, cores int) *comboScratch {
	return &comboScratch{
		order:    make([]taskgraph.TaskID, n),
		m:        make(sched.Mapping, n),
		neighbor: make(sched.Mapping, n),
		loadSec:  make([]float64, cores),
		freq:     make([]float64, cores),
		loads:    make([]int, cores),
	}
}

// The feasibility probe and its trajectory cache live in probe.go.
