package mapping

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
)

// Design is one optimized design point: the scaling vector chosen by the
// outer loop and the best mapping the inner search found for it.
type Design struct {
	Scaling []int
	Mapping sched.Mapping
	Eval    *metrics.Evaluation
}

// Progress reports one completed scaling combination of an exploration.
// Callbacks arrive in enumeration order (combination i is reported only
// after 0..i-1), regardless of the worker parallelism.
type Progress struct {
	// Index is the 0-based combination index; Total the enumeration size.
	Index, Total int
	// Scaling is the combination's per-core vector. Shared; do not mutate.
	Scaling []int
	// Design is the combination's optimized design.
	Design *Design
	// Best is the incumbent best design after folding this combination in.
	Best *Design
}

// Explore runs the outer design loop of Fig. 4 with background context; see
// ExploreContext.
func Explore(g *taskgraph.Graph, p *arch.Platform, mapper MapperFunc, cfg Config) (best *Design, perScaling []*Design, err error) {
	return ExploreContext(context.Background(), g, p, mapper, cfg)
}

// ExploreContext runs the outer design loop of Fig. 4: every voltage-scaling
// combination from the Fig. 5 enumeration is offered to the mapper
// (step 2); step 3's assessment keeps the deadline-meeting design whose
// *scaling* has minimum nominal power — power minimization happens at the
// voltage-scaling level (step 1 of the flow), before mapping — tie-broken
// by minimum Γ and then by minimum measured (utilization-weighted) power.
// perScaling lists one Design per combination in enumeration order, for
// the experiment harness.
//
// Combinations are independent, so they fan out over a bounded worker pool
// (Config.Parallelism workers; 0 selects GOMAXPROCS). Each worker owns one
// reusable metrics.Evaluator rebound per combination, and each combination
// derives its own seed from (Config.Seed, index), so the chosen best design,
// the perScaling order and every Progress callback are identical at any
// parallelism. Cancelling ctx stops the workers promptly and returns
// ctx.Err().
func ExploreContext(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	mapper MapperFunc, cfg Config) (best *Design, perScaling []*Design, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	combos, err := allScalings(p)
	if err != nil {
		return nil, nil, err
	}
	if len(combos) == 0 {
		return nil, nil, fmt.Errorf("mapping: no scaling combinations to explore")
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(combos) {
		workers = len(combos)
	}
	probe := cfg.Probe
	if probe == nil {
		probe = NewProbeCache()
	}

	type outcome struct {
		idx     int
		design  *Design
		nominal float64
		probed  bool
		err     error
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan int)
	results := make(chan outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval, err := metrics.NewEvaluator(g, p, cfg.SER,
				metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec})
			for i := range jobs {
				if err != nil {
					results <- outcome{idx: i, err: err}
					continue
				}
				o := outcome{idx: i}
				o.design, o.nominal, o.probed, o.err = exploreCombo(wctx, eval, mapper, combos[i], i, cfg, probe)
				results <- o
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range combos {
			select {
			case jobs <- i:
			case <-wctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Deterministic ordered reduction: outcomes are folded in enumeration
	// order as soon as their prefix is complete, so the acceptance walk and
	// the Progress stream never depend on worker timing.
	done := make([]*outcome, len(combos))
	next := 0
	var firstErr error
	firstErrIdx := len(combos)
	var bestNominal float64
	bestProbed := false
	for o := range results {
		o := o
		if o.err != nil {
			// Jobs aborted by the internal cancel report the context error;
			// keep the lowest-indexed real failure as the verdict.
			if !errors.Is(o.err, context.Canceled) && o.idx < firstErrIdx {
				firstErr, firstErrIdx = o.err, o.idx
				cancel()
			}
			continue
		}
		done[o.idx] = &o
		for next < len(combos) && done[next] != nil {
			d := done[next]
			perScaling = append(perScaling, d.design)
			better := false
			switch {
			case best == nil:
				better = true
			case d.probed != bestProbed:
				better = d.probed
			default:
				better = betterDesign(d.design.Eval, d.nominal, best.Eval, bestNominal)
			}
			if better {
				best = d.design
				bestNominal = d.nominal
				bestProbed = d.probed
			}
			if cfg.Progress != nil {
				cfg.Progress(Progress{
					Index:   next,
					Total:   len(combos),
					Scaling: d.design.Scaling,
					Design:  d.design,
					Best:    best,
				})
			}
			next++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if next != len(combos) {
		// Only reachable if a worker swallowed a cancellation without a
		// parent-context error; treat it as cancellation.
		return nil, nil, context.Canceled
	}
	return best, perScaling, nil
}

// exploreCombo runs one scaling combination on a worker's evaluator: the
// mapper, the nominal-power assessment and the shared feasibility probe.
func exploreCombo(ctx context.Context, eval *metrics.Evaluator, mapper MapperFunc,
	scaling []int, idx int, cfg Config, probe *ProbeCache) (*Design, float64, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	if err := eval.Bind(scaling); err != nil {
		return nil, 0, false, err
	}
	mc := &MapContext{
		Ctx:      ctx,
		Graph:    eval.Graph(),
		Platform: eval.Platform(),
		Scaling:  eval.Scaling(),
		Eval:     eval,
		Seed:     comboSeed(cfg.Seed, idx),
	}
	m, ev, err := mapper(mc)
	if err != nil {
		return nil, 0, false, fmt.Errorf("mapping: scaling %v: %w", scaling, err)
	}
	nominal, err := mc.Platform.DynamicPower(scaling, nil)
	if err != nil {
		return nil, 0, false, err
	}
	// Step 1's feasibility decision is mapper-independent: a common
	// deadline probe decides which scalings are candidates, so every
	// experiment (Exp:1-4) selects its design from the same scaling
	// set and differences between them come from mapping alone. If the
	// probe proves feasibility that the experiment's own mapper missed,
	// the probe's mapping is the design at this scaling.
	probeEv, probed, err := probe.feasibleAtScaling(mc, cfg)
	if err != nil {
		return nil, 0, false, err
	}
	if probed && !ev.MeetsDeadline {
		// Clone: the cache owns probeEv, and Explore calls sharing the
		// cache must not hand out aliased mutable Designs.
		ev = probeEv.Clone()
		m = ev.Schedule.Mapping
	}
	probed = probed && ev.MeetsDeadline
	d := &Design{Scaling: append([]int(nil), scaling...), Mapping: m, Eval: ev}
	return d, nominal, probed, nil
}

// comboSeed derives the stream seed of combination i from the master seed
// (splitmix64 finalizer), decorrelating the combinations while keeping each
// one's stream a pure function of (seed, i).
func comboSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// betterDesign implements the step-3 acceptance order: feasibility first,
// then nominal scaling power, then Γ, then measured power.
func betterDesign(a *metrics.Evaluation, aNominal float64, b *metrics.Evaluation, bNominal float64) bool {
	if a.MeetsDeadline != b.MeetsDeadline {
		return a.MeetsDeadline
	}
	const rel = 1e-9
	if d := aNominal - bNominal; d < -rel*(aNominal+bNominal) {
		return true
	} else if d > rel*(aNominal+bNominal) {
		return false
	}
	if a.Gamma != b.Gamma {
		return a.Gamma < b.Gamma
	}
	return a.PowerW < b.PowerW
}

// ProbeMoves is the hill-climb budget of the common feasibility probe.
const ProbeMoves = 400

// ProbeCache memoizes the mapper-independent feasibility probe per scaling
// vector, so a probe verdict computed once is shared by every Explore call
// driven with the same cache — e.g. the four experiments of Table II probe
// each scaling once between them instead of once each. It is safe for
// concurrent use.
//
// A cache is only meaningful across Explore calls that share the same
// graph, platform, deadline, iteration count and seed; do not share one
// across different workloads.
type ProbeCache struct {
	mu sync.Mutex
	m  map[string]*metrics.Evaluation // nil value = probed infeasible
}

// NewProbeCache returns an empty probe cache.
func NewProbeCache() *ProbeCache {
	return &ProbeCache{m: make(map[string]*metrics.Evaluation)}
}

// feasibleAtScaling is the mapper-independent deadline probe of step 1: a
// longest-processing-time balanced mapping refined by a short makespan hill
// climb, with a fixed seed derived from Config.Seed so every experiment
// sees the same verdict for the same (graph, platform, scaling, deadline).
// On success it returns the feasible mapping's evaluation (owned by the
// cache; treat as read-only).
func (pc *ProbeCache) feasibleAtScaling(mc *MapContext, cfg Config) (*metrics.Evaluation, bool, error) {
	key := fmt.Sprint(mc.Scaling)
	pc.mu.Lock()
	ev, hit := pc.m[key]
	pc.mu.Unlock()
	if hit {
		return ev, ev != nil, nil
	}
	ev, ok, err := probeFeasible(mc, cfg)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		ev = nil
	}
	pc.mu.Lock()
	pc.m[key] = ev
	pc.mu.Unlock()
	return ev, ok, nil
}

// probeFeasible computes the probe on mc's evaluator; the returned
// evaluation is owned.
func probeFeasible(mc *MapContext, cfg Config) (*metrics.Evaluation, bool, error) {
	g, p, e := mc.Graph, mc.Platform, mc.Eval

	// LPT seed: heaviest tasks first onto the least-loaded core, weighting
	// load by the core's clock period (slow cores absorb less work).
	n := g.N()
	cores := p.Cores()
	order := make([]taskgraph.TaskID, n)
	for i := range order {
		order[i] = taskgraph.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := g.Task(order[a]).Cycles, g.Task(order[b]).Cycles
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	m := make(sched.Mapping, n)
	loadSec := make([]float64, cores)
	freq := make([]float64, cores)
	for c, s := range mc.Scaling {
		freq[c] = p.MustLevel(s).FreqHz()
	}
	for _, t := range order {
		bestCore := 0
		for c := 1; c < cores; c++ {
			if loadSec[c] < loadSec[bestCore] {
				bestCore = c
			}
		}
		m[t] = bestCore
		loadSec[bestCore] += float64(g.Task(t).Cycles) / freq[bestCore]
	}

	ev, err := e.Evaluate(m)
	if err != nil {
		return nil, false, err
	}
	if ev.MeetsDeadline {
		return ev.Clone(), true, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xFEA51B1E))
	cur, curTM := m, ev.TMSeconds
	for move := 0; move < ProbeMoves; move++ {
		if err := mc.Ctx.Err(); err != nil {
			return nil, false, err
		}
		neighbor := search.Neighbor(rng, cur, cores)
		nev, err := e.Evaluate(neighbor)
		if err != nil {
			return nil, false, err
		}
		if nev.MeetsDeadline {
			return nev.Clone(), true, nil
		}
		if nev.TMSeconds <= curTM {
			cur, curTM = neighbor, nev.TMSeconds
		}
	}
	return nil, false, nil
}

// allScalings returns the Fig. 5 enumeration for the platform.
func allScalings(p *arch.Platform) ([][]int, error) {
	return enumerate(p.Cores(), p.NumLevels())
}
