package mapping

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

// designFingerprint renders everything that identifies a design byte-for-
// byte: scaling, mapping and the Γ/power/T_M of its evaluation. Pruned and
// skipped perScaling entries are nil and fingerprint as such.
func designFingerprint(d *Design) string {
	if d == nil {
		return "nil"
	}
	return fmt.Sprintf("s=%v m=%v gamma=%x power=%x tm=%x",
		d.Scaling, d.Mapping, d.Eval.Gamma, d.Eval.PowerW, d.Eval.TMSeconds)
}

// TestExploreDeterministicAcrossParallelism is the engine's core contract:
// the same seed yields a byte-identical best design and perScaling list at
// parallelism 1, 4 and NumCPU.
func TestExploreDeterministicAcrossParallelism(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	base := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	base.SearchMoves = 300

	type run struct {
		best string
		per  []string
	}
	runAt := func(par int) run {
		c := base
		c.Parallelism = par
		best, per, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		r := run{best: designFingerprint(best)}
		for _, d := range per {
			r.per = append(r.per, designFingerprint(d))
		}
		return r
	}

	ref := runAt(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		got := runAt(par)
		if got.best != ref.best {
			t.Errorf("parallelism %d: best design diverged:\n  seq: %s\n  par: %s",
				par, ref.best, got.best)
		}
		if len(got.per) != len(ref.per) {
			t.Fatalf("parallelism %d: perScaling has %d entries, want %d",
				par, len(got.per), len(ref.per))
		}
		for i := range ref.per {
			if got.per[i] != ref.per[i] {
				t.Errorf("parallelism %d: perScaling[%d] diverged:\n  seq: %s\n  par: %s",
					par, i, ref.per[i], got.per[i])
			}
		}
	}
}

// TestExploreBaselineDeterministicAcrossParallelism repeats the contract for
// the annealing baselines, which share the engine.
func TestExploreBaselineDeterministicAcrossParallelism(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3)
	p := plat(3)
	base := cfg(taskgraph.RandomDeadline(20), 1)
	base.SearchMoves = 200

	runAt := func(par int) string {
		c := base
		c.Parallelism = par
		best, _, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return designFingerprint(best)
	}
	ref := runAt(1)
	if got := runAt(4); got != ref {
		t.Errorf("best design diverged:\n  seq: %s\n  par: %s", ref, got)
	}
}

// TestExploreProgressOrdered checks the Progress contract: exactly one
// callback per combination, in enumeration order, at any parallelism.
func TestExploreProgressOrdered(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	for _, par := range []int{1, 4} {
		c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
		c.SearchMoves = 60
		c.Parallelism = par
		var seen []int
		c.Progress = func(pr Progress) {
			seen = append(seen, pr.Index)
			if pr.Total != 15 {
				t.Errorf("Total = %d, want 15", pr.Total)
			}
			if pr.Combination != pr.Index {
				t.Errorf("Combination = %d at index %d; full enumerations visit in order", pr.Combination, pr.Index)
			}
			if pr.Pruned || pr.Skipped {
				if pr.Design != nil {
					t.Error("pruned/skipped event carries a design")
				}
			} else if pr.Design == nil || pr.Best == nil {
				t.Error("nil design in evaluated progress event")
			}
		}
		if _, _, err := Explore(g, p, SEAMapper(c), c); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 15 {
			t.Fatalf("parallelism %d: %d progress events, want 15", par, len(seen))
		}
		for i, idx := range seen {
			if idx != i {
				t.Fatalf("parallelism %d: progress out of order: %v", par, seen)
			}
		}
	}
}

// TestExploreCancellation asserts Explore returns ctx.Err() promptly when
// cancelled mid-run, for both sequential and parallel pools.
func TestExploreCancellation(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(60), 5)
	p := plat(4)
	for _, par := range []int{1, 4} {
		c := cfg(taskgraph.RandomDeadline(60), 1)
		c.SearchMoves = 200000 // far more work than the deadline allows
		c.Parallelism = par
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, _, err := ExploreContext(ctx, g, p, SEAMapper(c), c)
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		if elapsed > 5*time.Second {
			t.Errorf("parallelism %d: cancellation took %v, want prompt return", par, elapsed)
		}
	}
}

// TestExplorePreCancelled: a context cancelled before the call returns
// immediately without mapping anything.
func TestExplorePreCancelled(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	mapper := func(mc *MapContext) (sched.Mapping, *metrics.Evaluation, error) {
		if mc.Ctx.Err() == nil {
			called = true
		}
		return nil, nil, mc.Ctx.Err()
	}
	if _, _, err := ExploreContext(ctx, g, p, mapper, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("mapper ran with a live context after pre-cancellation")
	}
}

// TestExploreMapperErrorPropagates: a mapper failure surfaces as an error
// naming the scaling, at any parallelism.
func TestExploreMapperErrorPropagates(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	boom := errors.New("mapper exploded")
	for _, par := range []int{1, 4} {
		c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
		c.Parallelism = par
		mapper := func(mc *MapContext) (sched.Mapping, *metrics.Evaluation, error) {
			return nil, nil, boom
		}
		_, _, err := ExploreContext(context.Background(), g, p, mapper, c)
		if !errors.Is(err, boom) {
			t.Errorf("parallelism %d: err = %v, want wrapped mapper error", par, err)
		}
	}
}

// TestProbeCacheShared: with a shared cache, the probe runs once per scaling
// across two explorations over the same workload.
func TestProbeCacheShared(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	c.SearchMoves = 60
	c.Strategy = StrategyExhaustive // probe must run at every scaling
	c.Probe = NewProbeCache()
	best1, _, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	cached := c.Probe.Len()
	if cached != 15 {
		t.Fatalf("probe cache holds %d scalings after one explore, want 15", cached)
	}
	best2, _, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Probe.Len() != cached {
		t.Errorf("second explore grew the probe cache to %d entries", c.Probe.Len())
	}
	if designFingerprint(best1) != designFingerprint(best2) {
		t.Errorf("shared probe cache changed the result:\n  1st: %s\n  2nd: %s",
			designFingerprint(best1), designFingerprint(best2))
	}
}

// TestComboSeedDecorrelates: distinct combinations must get distinct seeds
// and the derivation must be a pure function of (seed, index).
func TestComboSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := comboSeed(2010, i)
		if seen[s] {
			t.Fatalf("duplicate combo seed at index %d", i)
		}
		seen[s] = true
		if s != comboSeed(2010, i) {
			t.Fatal("comboSeed not deterministic")
		}
	}
}
