package mapping

// Progress delivery sits on the explore hot path: one event per scaling
// combination. The engine therefore hoists a single event struct per
// explore and recycles the slab behind Scaling once the callback returns
// (the BORROWED contract on Progress). These guards pin that down: the
// test asserts that enabling Progress adds (amortized) zero allocations
// per event over a silent run, and the benchmark reports allocs/op for a
// live-callback explore so regressions show up in bench output too.

import (
	"testing"

	"seadopt/internal/taskgraph"
)

// progressWorkload is a small sequential exhaustive explore: 12 tasks on
// 6 homogeneous 3-level cores = 28 combinations per run, enough events to
// average over but cheap enough for AllocsPerRun rounds.
func progressWorkload() (cfgOut Config, run func(testing.TB, Config)) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(12), 5)
	p := plat(6)
	c := cfg(taskgraph.RandomDeadline(12), 1)
	c.SearchMoves = 40
	c.Parallelism = 1
	c.Strategy = StrategyExhaustive
	c.DiscardPerScaling = true
	return c, func(t testing.TB, c Config) {
		if _, _, err := Explore(g, p, SEAMapper(c), c); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProgressDeliveryAllocFree differences the allocation counts of
// Progress-enabled and silent runs of the identical explore. The engine
// reuses one event struct per explore, so the per-event overhead must be
// (amortized) zero — the threshold of 0.5 allocs/event fails if anyone
// reintroduces even a single per-event allocation.
func TestProgressDeliveryAllocFree(t *testing.T) {
	base, run := progressWorkload()

	events := 0
	loud := base
	loud.Progress = func(Progress) { events++ }

	// Warm both paths so lazily initialized runtime state doesn't count.
	run(t, base)
	run(t, loud)

	const rounds = 5
	silentAllocs := testing.AllocsPerRun(rounds, func() { run(t, base) })
	events = 0
	loudAllocs := testing.AllocsPerRun(rounds, func() { run(t, loud) })
	perRun := events / (rounds + 1)
	if perRun == 0 {
		t.Fatal("no progress events delivered")
	}
	perEvent := (loudAllocs - silentAllocs) / float64(perRun)
	t.Logf("%d events/run, %.1f allocs silent, %.1f allocs with callback, %.3f allocs/event",
		perRun, silentAllocs, loudAllocs, perEvent)
	if perEvent > 0.5 {
		t.Errorf("progress delivery allocates %.3f allocs/event, want (amortized) zero", perEvent)
	}
}

// BenchmarkProgressDelivery runs the same explore with a live callback and
// reports allocs/op — the companion visibility for the test above.
func BenchmarkProgressDelivery(b *testing.B) {
	c, run := progressWorkload()
	events := 0
	c.Progress = func(Progress) { events++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(b, c)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
