package mapping

import (
	"fmt"
	"runtime"
	"testing"

	"seadopt/internal/taskgraph"
)

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"":                 StrategyBranchAndBound,
		"bnb":              StrategyBranchAndBound,
		"branch-and-bound": StrategyBranchAndBound,
		"exhaustive":       StrategyExhaustive,
		"sampled":          StrategySampled,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("greedy"); err == nil {
		t.Error("unknown strategy accepted")
	}
	bad := cfg(1, 1)
	bad.Strategy = "greedy"
	if bad.Validate() == nil {
		t.Error("Config.Validate accepted an unknown strategy")
	}
	bad = cfg(1, 1)
	bad.SampleBudget = -1
	if bad.Validate() == nil {
		t.Error("Config.Validate accepted a negative sample budget")
	}
}

// TestBranchAndBoundMatchesExhaustive is the equivalence property the
// default strategy rests on: for the paper workloads (MPEG-2, Fig. 8) and
// seeded §V random graphs, StrategyBranchAndBound must return a
// byte-identical best Design to StrategyExhaustive at Parallelism 1, 4 and
// GOMAXPROCS — while actually pruning or skipping part of the space.
func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	workloads := []struct {
		name     string
		g        *taskgraph.Graph
		cores    int
		deadline float64
		iters    int
	}{
		{"mpeg2", taskgraph.MPEG2(), 4, taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames},
		{"fig8", taskgraph.Fig8(), 3, taskgraph.Fig8Deadline, 1},
		{"random20", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 3), 4, taskgraph.RandomDeadline(20), 1},
		{"random30", taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 8), 3, taskgraph.RandomDeadline(30) * 0.2, 1},
	}
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, wl := range workloads {
		p := plat(wl.cores)
		base := cfg(wl.deadline, wl.iters)
		base.SearchMoves = 150

		exh := base
		exh.Strategy = StrategyExhaustive
		wantBest, wantPer, err := Explore(wl.g, p, SEAMapper(exh), exh)
		if err != nil {
			t.Fatalf("%s exhaustive: %v", wl.name, err)
		}
		want := designFingerprint(wantBest)

		for _, par := range parallelisms {
			bnb := base
			bnb.Strategy = StrategyBranchAndBound
			bnb.Parallelism = par
			var evaluated, avoided int
			bnb.Progress = func(pr Progress) {
				if pr.Pruned || pr.Skipped {
					avoided++
				} else {
					evaluated++
				}
			}
			gotBest, gotPer, err := Explore(wl.g, p, SEAMapper(bnb), bnb)
			if err != nil {
				t.Fatalf("%s bnb par=%d: %v", wl.name, par, err)
			}
			if got := designFingerprint(gotBest); got != want {
				t.Errorf("%s par=%d: designs diverged:\n  exhaustive: %s\n  bnb:        %s",
					wl.name, par, want, got)
			}
			if len(gotPer) != len(wantPer) {
				t.Errorf("%s par=%d: perScaling has %d entries, exhaustive %d",
					wl.name, par, len(gotPer), len(wantPer))
			}
			// Every design bnb did evaluate matches its exhaustive twin
			// byte for byte (stable combination index ⇒ same seed).
			for i := range gotPer {
				if gotPer[i] == nil {
					continue
				}
				if g, w := designFingerprint(gotPer[i]), designFingerprint(wantPer[i]); g != w {
					t.Errorf("%s par=%d: perScaling[%d] diverged:\n  exhaustive: %s\n  bnb:        %s",
						wl.name, par, i, w, g)
				}
			}
			if avoided == 0 {
				t.Errorf("%s par=%d: branch-and-bound avoided nothing (evaluated %d) — pruning never engaged",
					wl.name, par, evaluated)
			}
		}
	}
}

// TestBranchAndBoundDeterministicEvents: the full event stream — indices,
// pruned/skipped verdicts, scalings — is identical at any parallelism, not
// just the final design.
func TestBranchAndBoundDeterministicEvents(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(25), 4)
	p := plat(4)
	base := cfg(taskgraph.RandomDeadline(25)*0.3, 1)
	base.SearchMoves = 120

	stream := func(par int) []string {
		c := base
		c.Parallelism = par
		var out []string
		c.Progress = func(pr Progress) {
			out = append(out, fmt.Sprintf("%d/%d c=%d %v pruned=%v skipped=%v best=%s",
				pr.Index, pr.Total, pr.Combination, pr.Scaling, pr.Pruned, pr.Skipped,
				designFingerprint(pr.Best)))
		}
		if _, _, err := Explore(g, p, SEAMapper(c), c); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := stream(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		got := stream(par)
		if len(got) != len(ref) {
			t.Fatalf("par=%d: %d events, want %d", par, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("par=%d event %d diverged:\n  seq: %s\n  par: %s", par, i, ref[i], got[i])
			}
		}
	}
}

// TestBranchAndBoundImpossibleDeadline: when nothing is feasible the engine
// falls back to the exhaustive verdict, so even the "least infeasible"
// design matches byte for byte instead of disappearing into the pruned set.
func TestBranchAndBoundImpossibleDeadline(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	base := cfg(1e-9, 1) // nanosecond deadline: nothing is feasible
	base.SearchMoves = 100

	exh := base
	exh.Strategy = StrategyExhaustive
	wantBest, _, err := Explore(g, p, SEAMapper(exh), exh)
	if err != nil {
		t.Fatal(err)
	}
	if wantBest.Eval.MeetsDeadline {
		t.Fatal("impossible deadline reported met")
	}
	bnb := base
	bnb.Strategy = StrategyBranchAndBound
	pruned := 0
	bnb.Progress = func(pr Progress) {
		if pr.Pruned {
			pruned++
		}
	}
	gotBest, per, err := Explore(g, p, SEAMapper(bnb), bnb)
	if err != nil {
		t.Fatal(err)
	}
	if pruned == 0 {
		t.Error("nanosecond deadline pruned nothing; bound is vacuous")
	}
	if got, want := designFingerprint(gotBest), designFingerprint(wantBest); got != want {
		t.Errorf("fallback diverged from exhaustive:\n  exhaustive: %s\n  bnb:        %s", want, got)
	}
	// The fallback re-explores exhaustively, so perScaling is fully
	// populated despite the first pass pruning combinations.
	for i, d := range per {
		if d == nil {
			t.Errorf("perScaling[%d] nil after all-infeasible fallback", i)
		}
	}
}

// TestSampledStrategy: deterministic per seed, approximate by contract —
// the sample's best must match exhaustive's design at the same combination
// (stable index ⇒ same mapper stream), and the budget caps visited work.
func TestSampledStrategy(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	base := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	base.SearchMoves = 120
	base.Strategy = StrategySampled
	base.SampleBudget = 7

	run := func(par int) (string, []int) {
		c := base
		c.Parallelism = par
		var combos []int
		c.Progress = func(pr Progress) {
			if pr.Total != 7 {
				t.Errorf("Total = %d, want sample budget 7", pr.Total)
			}
			combos = append(combos, pr.Combination)
		}
		best, _, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatal(err)
		}
		return designFingerprint(best), combos
	}
	best1, combos1 := run(1)
	best4, combos4 := run(4)
	if best1 != best4 || fmt.Sprint(combos1) != fmt.Sprint(combos4) {
		t.Fatalf("sampled run not deterministic across parallelism:\n  %s %v\n  %s %v",
			best1, combos1, best4, combos4)
	}
	if len(combos1) != 7 {
		t.Fatalf("visited %d combinations, want 7", len(combos1))
	}

	// Cross-check one sampled combination against an exhaustive run: the
	// stable combination index must give byte-identical per-combination
	// designs wherever both strategies evaluate.
	exh := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	exh.SearchMoves = 120
	exh.Strategy = StrategyExhaustive
	_, per, err := Explore(g, p, SEAMapper(exh), exh)
	if err != nil {
		t.Fatal(err)
	}
	smp := base
	smp.DiscardPerScaling = false
	var sampledDesigns []*Design
	var sampledCombos []int
	smp.Progress = func(pr Progress) {
		if !pr.Pruned && !pr.Skipped {
			sampledDesigns = append(sampledDesigns, pr.Design)
			sampledCombos = append(sampledCombos, pr.Combination)
		}
	}
	if _, _, err := Explore(g, p, SEAMapper(smp), smp); err != nil {
		t.Fatal(err)
	}
	if len(sampledDesigns) == 0 {
		t.Fatal("sample evaluated nothing")
	}
	for i, d := range sampledDesigns {
		idx := sampledCombos[i]
		if got, want := designFingerprint(d), designFingerprint(per[idx]); got != want {
			t.Errorf("sampled combination %d diverged from exhaustive:\n  exhaustive: %s\n  sampled:    %s", idx, want, got)
		}
	}
}

// TestDiscardPerScaling: the flag suppresses the per-combination list while
// leaving the chosen design untouched.
func TestDiscardPerScaling(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	c := cfg(taskgraph.Fig8Deadline, 1)
	c.SearchMoves = 80
	c.Strategy = StrategyExhaustive
	withList, per, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) == 0 {
		t.Fatal("exhaustive run returned no perScaling list")
	}
	c.DiscardPerScaling = true
	withoutList, per2, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if per2 != nil {
		t.Errorf("DiscardPerScaling still returned %d entries", len(per2))
	}
	if designFingerprint(withList) != designFingerprint(withoutList) {
		t.Error("DiscardPerScaling changed the chosen design")
	}
}
