package mapping

import (
	"context"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
)

// MapContext carries everything a mapper needs for one scaling combination
// of the design loop: the pinned workload, a reusable Evaluator already
// bound to Scaling, a cancellation context, and the combination-derived
// seed. The Explore engine builds one per combination; MapOnce builds a
// standalone one for single-scaling runs.
type MapContext struct {
	// Ctx cancels the mapper; implementations must return Ctx.Err()
	// promptly after cancellation.
	Ctx      context.Context
	Graph    *taskgraph.Graph
	Platform *arch.Platform
	// Scaling is the per-core scaling vector of this combination. Shared;
	// do not mutate.
	Scaling []int
	// Eval is bound to (Graph, Platform, Scaling). Evaluations it returns
	// are borrowed: mappers must Clone any evaluation they return or retain
	// across calls.
	Eval *metrics.Evaluator
	// Seed is derived deterministically from (Config.Seed, combination
	// index), so every mapper sees the same stream at the same combination
	// regardless of worker scheduling, and distinct combinations get
	// decorrelated streams.
	Seed int64

	// scratch holds the worker-owned feasibility-probe buffers. The Explore
	// engine reuses one MapContext (and its scratch) per worker across
	// every combination that worker maps — mappers must not retain the
	// context or any of its fields past their call. Nil outside the engine;
	// probeFeasible then allocates per call.
	scratch *comboScratch
}

// MapperFunc produces a mapping for one scaling combination. The soft
// error-aware mapper (SEAMapper) and the simulated-annealing baselines in
// internal/anneal both satisfy this shape, so the outer Fig. 4 loop can
// drive either. The returned Evaluation must be owned by the caller (not
// borrowed from mc.Eval).
type MapperFunc func(mc *MapContext) (sched.Mapping, *metrics.Evaluation, error)

// NewMapContext builds a standalone context for running a mapper at a
// single scaling vector outside the Explore engine, with cfg.Seed as the
// stream seed.
func NewMapContext(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	scaling []int, cfg Config) (*MapContext, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e, err := metrics.NewEvaluator(g, p, cfg.SER,
		metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec})
	if err != nil {
		return nil, err
	}
	if err := e.Bind(scaling); err != nil {
		return nil, err
	}
	return &MapContext{
		Ctx:      ctx,
		Graph:    g,
		Platform: p,
		Scaling:  e.Scaling(),
		Eval:     e,
		Seed:     cfg.Seed,
	}, nil
}

// MapOnce runs mapper at a single scaling vector with a fresh evaluator —
// the entry point for fixed-scaling studies (Fig. 9, the ablations) and the
// public MapAtScaling facade.
func MapOnce(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	scaling []int, mapper MapperFunc, cfg Config) (sched.Mapping, *metrics.Evaluation, error) {
	mc, err := NewMapContext(ctx, g, p, scaling, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mapper(mc)
}

// SEAMapper returns the proposed two-stage soft error-aware mapper
// (InitialSEAMapping followed by OptimizedMapping) as a MapperFunc.
func SEAMapper(cfg Config) MapperFunc {
	return func(mc *MapContext) (sched.Mapping, *metrics.Evaluation, error) {
		init, err := InitialSEAMapping(mc.Graph, mc.Platform, mc.Scaling, cfg)
		if err != nil {
			return nil, nil, err
		}
		ev, err := optimizedMapping(mc, init, cfg)
		if err != nil {
			return nil, nil, err
		}
		return ev.Schedule.Mapping, ev, nil
	}
}

// OptimizedMapping implements the search stage of Fig. 7: starting from the
// initial mapping, it explores neighboring mappings (single-task moves and
// pairwise swaps — "maximum two task movements" per iteration), list
// schedules each candidate, and returns the evaluation of the best feasible
// mapping found: minimum SEUs experienced subject to T_M ≤ T_Mref.
//
// The search runs on the shared engine of internal/search — the same
// neighborhood and budget discipline as the Exp:1-3 baselines, so the four
// experiments differ only in objective (here: eq. (3)'s Γ, with a deadline
// penalty pulling infeasible walks back) and starting point (here: the
// Fig. 6 greedy mapping). The paper bounds the search by wall-clock time;
// a deterministic move budget (Config.SearchMoves) replaces it.
//
// This is the one-shot form; the engine path (optimizedMapping via
// SEAMapper) reuses the caller's MapContext and evaluator.
func OptimizedMapping(g *taskgraph.Graph, p *arch.Platform, scaling []int,
	initial sched.Mapping, cfg Config) (*metrics.Evaluation, error) {
	mc, err := NewMapContext(context.Background(), g, p, scaling, cfg)
	if err != nil {
		return nil, err
	}
	return optimizedMapping(mc, initial, cfg)
}

// optimizedMapping is the Fig. 7 search on a prepared MapContext. The
// returned evaluation is owned by the caller.
func optimizedMapping(mc *MapContext, initial sched.Mapping, cfg Config) (*metrics.Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Phase 1 (≈2/3 of the budget): annealing walk on Γ, shared engine.
	annealMoves := cfg.SearchMoves * 2 / 3
	if annealMoves < 1 {
		annealMoves = 1
	}
	res, err := search.Anneal(search.Problem{
		Ctx:     mc.Ctx,
		Cores:   mc.Platform.Cores(),
		Initial: initial,
		// The second restart starts from a balanced scatter: the greedy
		// stage-1 seed excels under deadline pressure but can trap the
		// walk at deep uniform scalings where clustering is infeasible.
		AltInitials: []sched.Mapping{sched.RoundRobin(mc.Graph.N(), mc.Platform.Cores())},
		Moves:       annealMoves,
		Seed:        mc.Seed ^ 0x5EAD0,
		Evaluator:   mc.Eval,
		Objective: func(ev *metrics.Evaluation) search.Cost {
			v := ev.Gamma
			if cfg.DeadlineSec > 0 && !ev.MeetsDeadline {
				// Proportional penalty keeps the gradient toward
				// feasibility visible (Fig. 7 steps B-C).
				v *= 1 + 10*(ev.TMSeconds-cfg.DeadlineSec)/cfg.DeadlineSec
			}
			return search.Cost{Value: v, Feasible: ev.MeetsDeadline}
		},
	})
	if err != nil {
		return nil, err
	}
	// Phase 2 (remaining budget): deterministic per-task descent. The Γ
	// landscape has a narrow valley along the T_M floor where random moves
	// look flat; systematically trying every (task, core) relocation finds
	// the register-locality improvements SA walks past.
	return polishGamma(mc, res.Best, cfg, cfg.SearchMoves-annealMoves)
}

// polishGamma runs first-improvement descent over single-task relocations
// (every-core-used invariant preserved), bounded by an evaluation budget.
// The returned evaluation is owned by the caller.
func polishGamma(mc *MapContext, m sched.Mapping, cfg Config, budget int) (*metrics.Evaluation, error) {
	e := mc.Eval
	best, err := e.Evaluate(m)
	if err != nil {
		return nil, err
	}
	n := mc.Graph.N()
	cores := mc.Platform.Cores()
	bestM := m.Clone()
	bestGamma, bestTM, bestFeasible := best.Gamma, best.TMSeconds, best.MeetsDeadline
	finish := func() (*metrics.Evaluation, error) {
		ev, err := e.Evaluate(bestM)
		if err != nil {
			return nil, err
		}
		return ev.Clone(), nil
	}
	if cores < 2 || n < 2 {
		return finish()
	}
	cur := m.Clone()
	for budget > 0 {
		if err := mc.Ctx.Err(); err != nil {
			return nil, err
		}
		improved := false
		loads := cur.CoreLoads(cores)
	sweep:
		for t := 0; t < n; t++ {
			if n >= cores && loads[cur[t]] < 2 {
				continue // relocation would empty the core
			}
			if err := mc.Ctx.Err(); err != nil {
				return nil, err
			}
			home := cur[t]
			for c := 0; c < cores; c++ {
				if c == home {
					continue
				}
				cur[t] = c
				ev, err := e.Evaluate(cur)
				if err != nil {
					return nil, err
				}
				budget--
				better := ev.MeetsDeadline && (!bestFeasible || ev.Gamma < bestGamma)
				if !better && !bestFeasible && ev.TMSeconds < bestTM {
					better = true // still hunting feasibility
				}
				if better {
					bestGamma, bestTM, bestFeasible = ev.Gamma, ev.TMSeconds, ev.MeetsDeadline
					copy(bestM, cur)
					loads[home]--
					loads[c]++
					improved = true
					if budget <= 0 {
						return finish()
					}
					continue sweep
				}
				cur[t] = home
				if budget <= 0 {
					return finish()
				}
			}
		}
		if !improved {
			return finish()
		}
	}
	return finish()
}
