package mapping

import (
	"fmt"
	"math/rand"
	"sort"

	"seadopt/internal/arch"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
)

// OptimizedMapping implements the search stage of Fig. 7: starting from the
// initial mapping, it explores neighboring mappings (single-task moves and
// pairwise swaps — "maximum two task movements" per iteration), list
// schedules each candidate, and returns the evaluation of the best feasible
// mapping found: minimum SEUs experienced subject to T_M ≤ T_Mref.
//
// The search runs on the shared engine of internal/search — the same
// neighborhood and budget discipline as the Exp:1-3 baselines, so the four
// experiments differ only in objective (here: eq. (3)'s Γ, with a deadline
// penalty pulling infeasible walks back) and starting point (here: the
// Fig. 6 greedy mapping). The paper bounds the search by wall-clock time;
// a deterministic move budget (Config.SearchMoves) replaces it.
func OptimizedMapping(g *taskgraph.Graph, p *arch.Platform, scaling []int,
	initial sched.Mapping, cfg Config) (*metrics.Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt := metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec}

	// Phase 1 (≈2/3 of the budget): annealing walk on Γ, shared engine.
	annealMoves := cfg.SearchMoves * 2 / 3
	if annealMoves < 1 {
		annealMoves = 1
	}
	res, err := search.Anneal(search.Problem{
		Cores:   p.Cores(),
		Initial: initial,
		// The second restart starts from a balanced scatter: the greedy
		// stage-1 seed excels under deadline pressure but can trap the
		// walk at deep uniform scalings where clustering is infeasible.
		AltInitials: []sched.Mapping{sched.RoundRobin(g.N(), p.Cores())},
		Moves:       annealMoves,
		Seed:        cfg.Seed ^ 0x5EAD0,
		Evaluate: func(m sched.Mapping) (search.Cost, error) {
			ev, err := metrics.Evaluate(g, p, m, scaling, cfg.SER, opt)
			if err != nil {
				return search.Cost{}, err
			}
			v := ev.Gamma
			if cfg.DeadlineSec > 0 && !ev.MeetsDeadline {
				// Proportional penalty keeps the gradient toward
				// feasibility visible (Fig. 7 steps B-C).
				v *= 1 + 10*(ev.TMSeconds-cfg.DeadlineSec)/cfg.DeadlineSec
			}
			return search.Cost{Value: v, Feasible: ev.MeetsDeadline}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	// Phase 2 (remaining budget): deterministic per-task descent. The Γ
	// landscape has a narrow valley along the T_M floor where random moves
	// look flat; systematically trying every (task, core) relocation finds
	// the register-locality improvements SA walks past.
	return polishGamma(g, p, scaling, res.Best, cfg, opt, cfg.SearchMoves-annealMoves)
}

// polishGamma runs first-improvement descent over single-task relocations
// (every-core-used invariant preserved), bounded by an evaluation budget.
func polishGamma(g *taskgraph.Graph, p *arch.Platform, scaling []int,
	m sched.Mapping, cfg Config, opt metrics.Options, budget int) (*metrics.Evaluation, error) {
	best, err := metrics.Evaluate(g, p, m, scaling, cfg.SER, opt)
	if err != nil {
		return nil, err
	}
	n := g.N()
	cores := p.Cores()
	if cores < 2 || n < 2 {
		return best, nil
	}
	cur := m.Clone()
	for budget > 0 {
		improved := false
		loads := cur.CoreLoads(cores)
	sweep:
		for t := 0; t < n; t++ {
			if n >= cores && loads[cur[t]] < 2 {
				continue // relocation would empty the core
			}
			home := cur[t]
			for c := 0; c < cores; c++ {
				if c == home {
					continue
				}
				cur[t] = c
				ev, err := metrics.Evaluate(g, p, cur, scaling, cfg.SER, opt)
				if err != nil {
					return nil, err
				}
				budget--
				better := ev.MeetsDeadline && (!best.MeetsDeadline || ev.Gamma < best.Gamma)
				if !better && !best.MeetsDeadline && ev.TMSeconds < best.TMSeconds {
					better = true // still hunting feasibility
				}
				if better {
					best = ev
					loads[home]--
					loads[c]++
					improved = true
					if budget <= 0 {
						return best, nil
					}
					continue sweep
				}
				cur[t] = home
				if budget <= 0 {
					return best, nil
				}
			}
		}
		if !improved {
			return best, nil
		}
	}
	return best, nil
}

// Design is one optimized design point: the scaling vector chosen by the
// outer loop and the best mapping the inner search found for it.
type Design struct {
	Scaling []int
	Mapping sched.Mapping
	Eval    *metrics.Evaluation
}

// MapperFunc produces a mapping for one scaling vector. The soft error-aware
// mapper (SEAMapper) and the simulated-annealing baselines in internal/anneal
// both satisfy this shape, so the outer Fig. 4 loop can drive either.
type MapperFunc func(g *taskgraph.Graph, p *arch.Platform, scaling []int) (sched.Mapping, *metrics.Evaluation, error)

// SEAMapper returns the proposed two-stage soft error-aware mapper
// (InitialSEAMapping followed by OptimizedMapping) as a MapperFunc.
func SEAMapper(cfg Config) MapperFunc {
	return func(g *taskgraph.Graph, p *arch.Platform, scaling []int) (sched.Mapping, *metrics.Evaluation, error) {
		init, err := InitialSEAMapping(g, p, scaling, cfg)
		if err != nil {
			return nil, nil, err
		}
		ev, err := OptimizedMapping(g, p, scaling, init, cfg)
		if err != nil {
			return nil, nil, err
		}
		return ev.Schedule.Mapping, ev, nil
	}
}

// Explore runs the outer design loop of Fig. 4: every voltage-scaling
// combination from the Fig. 5 enumeration is offered to the mapper
// (step 2); step 3's assessment keeps the deadline-meeting design whose
// *scaling* has minimum nominal power — power minimization happens at the
// voltage-scaling level (step 1 of the flow), before mapping — tie-broken
// by minimum Γ and then by minimum measured (utilization-weighted) power.
// perScaling lists one Design per combination in enumeration order, for
// the experiment harness.
func Explore(g *taskgraph.Graph, p *arch.Platform, mapper MapperFunc, cfg Config) (best *Design, perScaling []*Design, err error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	combos, err := allScalings(p)
	if err != nil {
		return nil, nil, err
	}
	var bestNominal float64
	bestProbed := false
	for _, scaling := range combos {
		m, ev, err := mapper(g, p, scaling)
		if err != nil {
			return nil, nil, fmt.Errorf("mapping: scaling %v: %w", scaling, err)
		}
		nominal, err := p.DynamicPower(scaling, nil)
		if err != nil {
			return nil, nil, err
		}
		// Step 1's feasibility decision is mapper-independent: a common
		// deadline probe decides which scalings are candidates, so every
		// experiment (Exp:1-4) selects its design from the same scaling
		// set and differences between them come from mapping alone. If the
		// probe proves feasibility that the experiment's own mapper missed,
		// the probe's mapping is the design at this scaling.
		probeEv, probed := feasibleAtScaling(g, p, scaling, cfg)
		if probed && !ev.MeetsDeadline {
			m, ev = probeEv.Schedule.Mapping, probeEv
		}
		probed = probed && ev.MeetsDeadline
		d := &Design{Scaling: append([]int(nil), scaling...), Mapping: m, Eval: ev}
		perScaling = append(perScaling, d)
		better := false
		switch {
		case best == nil:
			better = true
		case probed != bestProbed:
			better = probed
		default:
			better = betterDesign(ev, nominal, best.Eval, bestNominal)
		}
		if better {
			best = d
			bestNominal = nominal
			bestProbed = probed
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("mapping: no scaling combinations to explore")
	}
	return best, perScaling, nil
}

// betterDesign implements the step-3 acceptance order: feasibility first,
// then nominal scaling power, then Γ, then measured power.
func betterDesign(a *metrics.Evaluation, aNominal float64, b *metrics.Evaluation, bNominal float64) bool {
	if a.MeetsDeadline != b.MeetsDeadline {
		return a.MeetsDeadline
	}
	const rel = 1e-9
	if d := aNominal - bNominal; d < -rel*(aNominal+bNominal) {
		return true
	} else if d > rel*(aNominal+bNominal) {
		return false
	}
	if a.Gamma != b.Gamma {
		return a.Gamma < b.Gamma
	}
	return a.PowerW < b.PowerW
}

// ProbeMoves is the hill-climb budget of the common feasibility probe.
const ProbeMoves = 400

// feasibleAtScaling is the mapper-independent deadline probe of step 1: a
// longest-processing-time balanced mapping refined by a short makespan hill
// climb, with a fixed derived seed so every experiment sees the same
// verdict for the same (graph, platform, scaling, deadline). On success it
// returns the feasible mapping's evaluation.
func feasibleAtScaling(g *taskgraph.Graph, p *arch.Platform, scaling []int, cfg Config) (*metrics.Evaluation, bool) {
	opt := metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec}

	// LPT seed: heaviest tasks first onto the least-loaded core, weighting
	// load by the core's clock period (slow cores absorb less work).
	n := g.N()
	cores := p.Cores()
	order := make([]taskgraph.TaskID, n)
	for i := range order {
		order[i] = taskgraph.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := g.Task(order[a]).Cycles, g.Task(order[b]).Cycles
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	m := make(sched.Mapping, n)
	loadSec := make([]float64, cores)
	freq := make([]float64, cores)
	for c, s := range scaling {
		freq[c] = p.MustLevel(s).FreqHz()
	}
	for _, t := range order {
		bestCore := 0
		for c := 1; c < cores; c++ {
			if loadSec[c] < loadSec[bestCore] {
				bestCore = c
			}
		}
		m[t] = bestCore
		loadSec[bestCore] += float64(g.Task(t).Cycles) / freq[bestCore]
	}

	ev, err := metrics.Evaluate(g, p, m, scaling, cfg.SER, opt)
	if err != nil {
		return nil, false
	}
	if ev.MeetsDeadline {
		return ev, true
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xFEA51B1E))
	cur, curEv := m, ev
	for move := 0; move < ProbeMoves; move++ {
		neighbor := search.Neighbor(rng, cur, cores)
		nev, err := metrics.Evaluate(g, p, neighbor, scaling, cfg.SER, opt)
		if err != nil {
			return nil, false
		}
		if nev.MeetsDeadline {
			return nev, true
		}
		if nev.TMSeconds <= curEv.TMSeconds {
			cur, curEv = neighbor, nev
		}
	}
	return nil, false
}

// allScalings returns the Fig. 5 enumeration for the platform.
func allScalings(p *arch.Platform) ([][]int, error) {
	return enumerate(p.Cores(), p.NumLevels())
}
