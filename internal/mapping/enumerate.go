package mapping

import "seadopt/internal/vscale"

// enumerate wraps the vscale Fig. 5 enumeration.
func enumerate(cores, levels int) ([][]int, error) {
	return vscale.All(cores, levels)
}
