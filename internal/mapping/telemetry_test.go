package mapping

import (
	"fmt"
	"runtime"
	"testing"

	"seadopt/internal/taskgraph"
)

// progressFingerprint renders one Progress event byte-comparably. It must
// run inside the callback: the engine recycles the Scaling slab as soon as
// the callback returns.
func progressFingerprint(ev Progress) string {
	return fmt.Sprintf("i=%d t=%d c=%d s=%v pruned=%v skipped=%v adm=%v fs=%d d=%s",
		ev.Index, ev.Total, ev.Combination, ev.Scaling, ev.Pruned, ev.Skipped,
		ev.Admitted, ev.FrontierSize, designFingerprint(ev.Design))
}

// TestExploreDeterministicTelemetryOnOff is the observability contract:
// attaching a Telemetry collector changes nothing observable — the chosen
// design, the perScaling list and the whole Progress stream are
// byte-identical with telemetry on or off, at parallelism 1, 4 and NumCPU.
func TestExploreDeterministicTelemetryOnOff(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)

	type run struct {
		best string
		per  []string
		prog []string
	}
	runAt := func(par int, tel *Telemetry) run {
		c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
		c.SearchMoves = 300
		c.Parallelism = par
		c.Telemetry = tel
		var evs []string
		c.Progress = func(pr Progress) { evs = append(evs, progressFingerprint(pr)) }
		best, per, err := Explore(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatalf("parallelism %d telemetry=%v: %v", par, tel != nil, err)
		}
		r := run{best: designFingerprint(best), prog: evs}
		for _, d := range per {
			r.per = append(r.per, designFingerprint(d))
		}
		return r
	}

	ref := runAt(1, nil)
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		got := runAt(par, NewTelemetry())
		if got.best != ref.best {
			t.Errorf("parallelism %d with telemetry: best diverged:\n  off: %s\n  on:  %s",
				par, ref.best, got.best)
		}
		if fmt.Sprint(got.per) != fmt.Sprint(ref.per) {
			t.Errorf("parallelism %d with telemetry: perScaling diverged", par)
		}
		if len(got.prog) != len(ref.prog) {
			t.Fatalf("parallelism %d with telemetry: %d progress events, want %d",
				par, len(got.prog), len(ref.prog))
		}
		for i := range ref.prog {
			if got.prog[i] != ref.prog[i] {
				t.Errorf("parallelism %d with telemetry: progress[%d] diverged:\n  off: %s\n  on:  %s",
					par, i, ref.prog[i], got.prog[i])
			}
		}
	}
}

// TestExploreDeterministicTelemetryPareto repeats the on/off contract for
// the Pareto fold: the frontier and its Progress stream (admissions,
// frontier sizes) are unchanged by an attached collector.
func TestExploreDeterministicTelemetryPareto(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)

	runAt := func(par int, tel *Telemetry) (string, []string) {
		c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
		c.SearchMoves = 300
		c.Parallelism = par
		c.Telemetry = tel
		var evs []string
		c.Progress = func(pr Progress) { evs = append(evs, progressFingerprint(pr)) }
		frontier, err := ExplorePareto(g, p, SEAMapper(c), c)
		if err != nil {
			t.Fatalf("parallelism %d telemetry=%v: %v", par, tel != nil, err)
		}
		fp := ""
		for _, d := range frontier {
			fp += designFingerprint(d) + "\n"
		}
		return fp, evs
	}

	refFront, refProg := runAt(1, nil)
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		gotFront, gotProg := runAt(par, NewTelemetry())
		if gotFront != refFront {
			t.Errorf("parallelism %d with telemetry: frontier diverged:\n  off:\n%s  on:\n%s",
				par, refFront, gotFront)
		}
		if fmt.Sprint(gotProg) != fmt.Sprint(refProg) {
			t.Errorf("parallelism %d with telemetry: pareto progress stream diverged", par)
		}
	}
}

// TestTelemetryAccounting checks the snapshot's internal consistency: the
// verdict counters partition the fold total, phase clocks and worker spans
// are non-negative and within the wall clock's order of magnitude, and the
// deterministic counters match across parallelism.
func TestTelemetryAccounting(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)

	statsAt := func(par int) *ExploreStats {
		c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
		c.SearchMoves = 300
		c.Parallelism = par
		tel := NewTelemetry()
		c.Telemetry = tel
		if _, _, err := Explore(g, p, SEAMapper(c), c); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return tel.Stats()
	}

	seq := statsAt(1)
	if seq.Passes < 1 {
		t.Fatalf("Passes = %d, want >= 1", seq.Passes)
	}
	if got := seq.Combos.Evaluated + seq.Combos.Pruned + seq.Combos.Skipped; got != seq.Combos.Total {
		t.Errorf("verdicts don't partition: %d+%d+%d != %d",
			seq.Combos.Evaluated, seq.Combos.Pruned, seq.Combos.Skipped, seq.Combos.Total)
	}
	if seq.Combos.Total != 15 { // MPEG2 on 4 cores × 3 levels: C(3+4-1,4) = 15
		t.Errorf("Combos.Total = %d, want 15", seq.Combos.Total)
	}
	if seq.Combos.MapperRuns == 0 {
		t.Error("MapperRuns = 0: the mapper must have run for the chosen design")
	}
	for _, ns := range []int64{
		seq.WallNanos, seq.Phases.BoundsNanos, seq.Phases.RankedSeedNanos,
		seq.Phases.EnumerationNanos, seq.Phases.ProbeNanos,
		seq.Phases.MapperNanos, seq.Phases.FoldNanos,
	} {
		if ns < 0 {
			t.Errorf("negative phase clock: %+v", seq.Phases)
		}
	}
	if seq.Phases.MapperNanos > seq.WallNanos {
		t.Errorf("sequential mapper busy %d ns exceeds wall %d ns", seq.Phases.MapperNanos, seq.WallNanos)
	}
	if len(seq.Workers) != 1 {
		t.Fatalf("sequential run has %d workers, want 1", len(seq.Workers))
	}
	var spanned int64
	for _, sp := range seq.Workers[0].Spans {
		if sp.EndNanos < sp.StartNanos {
			t.Errorf("span ends before it starts: %+v", sp)
		}
		spanned++
	}
	if spanned != seq.Workers[0].Combinations {
		t.Errorf("recorded %d spans but counted %d combinations (none should be dropped here)",
			spanned, seq.Workers[0].Combinations)
	}
	if seq.Eval.Evaluations == 0 {
		t.Error("evaluator stats empty: expected merged per-worker EvalStats")
	}

	par := statsAt(4)
	// Fold-time verdict counters are deterministic; MapperRuns/MapperSpared
	// are worker-side and legitimately vary with dispatch timing (a
	// combination can be dispatched before the skip that would spare it).
	det := func(c ComboStats) [4]int64 { return [4]int64{c.Total, c.Evaluated, c.Pruned, c.Skipped} }
	if det(par.Combos) != det(seq.Combos) {
		t.Errorf("deterministic combo counters diverged across parallelism:\n  seq: %+v\n  par: %+v",
			seq.Combos, par.Combos)
	}
	var parCombos int64
	for _, ws := range par.Workers {
		parCombos += ws.Combinations
	}
	// Workers only see dispatched combinations (the dispatcher resolves
	// pruned/skipped ones itself), and every mapper run rode a worker span.
	if parCombos > par.Combos.Total || parCombos < par.Combos.MapperRuns {
		t.Errorf("worker combination sum %d outside [MapperRuns %d, Total %d]",
			parCombos, par.Combos.MapperRuns, par.Combos.Total)
	}
	// Incumbent events are decided on the fold goroutine: identical streams.
	kinds := func(st *ExploreStats) string {
		s := ""
		for _, ev := range st.Events {
			s += fmt.Sprintf("%s@%d;", ev.Kind, ev.Index)
		}
		return s
	}
	if kinds(par) != kinds(seq) {
		t.Errorf("event sequence diverged across parallelism:\n  seq: %s\n  par: %s",
			kinds(seq), kinds(par))
	}
}

// TestTelemetryAccumulatesAcrossPasses: an impossible deadline makes the
// engine re-fold the space (all-infeasible fallback); the collector must
// count both passes rather than resetting.
func TestTelemetryAccumulatesAcrossPasses(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	c := cfg(1e-6, taskgraph.MPEG2Frames) // unmeetable deadline
	c.SearchMoves = 100
	tel := NewTelemetry()
	c.Telemetry = tel
	best, _, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("fallback must still choose a least-infeasible design")
	}
	st := tel.Stats()
	if st.Passes < 2 {
		t.Fatalf("Passes = %d, want >= 2 (all-infeasible fallback re-folds)", st.Passes)
	}
	if got := st.Combos.Evaluated + st.Combos.Pruned + st.Combos.Skipped; got != st.Combos.Total {
		t.Errorf("verdicts don't partition across passes: %+v", st.Combos)
	}
	if st.Combos.Total < 30 {
		t.Errorf("Combos.Total = %d, want >= 30 (two passes over 15 combinations)", st.Combos.Total)
	}
}
