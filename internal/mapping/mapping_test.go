package mapping

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

func plat(cores int) *arch.Platform {
	return arch.MustNewPlatform(cores, arch.ARM7Levels3())
}

func cfg(deadline float64, iters int) Config {
	return Config{
		SER:         faults.NewSERModel(faults.DefaultSER),
		DeadlineSec: deadline,
		Iterations:  iters,
		SearchMoves: 600,
		Seed:        1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg(1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.DeadlineSec = -1
	if bad.Validate() == nil {
		t.Error("negative deadline accepted")
	}
	bad = good
	bad.SearchMoves = -1
	if bad.Validate() == nil {
		t.Error("negative budget accepted")
	}
	bad = good
	bad.SER = faults.SERModel{}
	if bad.Validate() == nil {
		t.Error("invalid SER accepted")
	}
}

func TestInitialSEAMappingFig8(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	scaling := []int{1, 2, 2} // the worked example's s1=1, s2=2, s3=2
	m, err := InitialSEAMapping(g, p, scaling, cfg(taskgraph.Fig8Deadline, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(g, 3); err != nil {
		t.Fatal(err)
	}
	// Every core hosts at least one task (the algorithm reserves tasks for
	// the remaining cores — Fig. 6 line 4).
	if used := m.UsedCores(3); used != 3 {
		t.Errorf("mapping uses %d cores, want 3 (mapping %v)", used, m)
	}
	// t1 (the root) goes to core 0 first (Fig. 6 line 1/3).
	if m[0] != 0 {
		t.Errorf("root task mapped to core %d, want 0", m[0])
	}
	// Per-core busy time must respect the deadline given the example's
	// voltage scalings once optimized; the initial mapping at least keeps
	// core 0 within it.
	s, err := sched.ListSchedule(g, p, m, scaling)
	if err != nil {
		t.Fatal(err)
	}
	if s.BusySeconds(0) > taskgraph.Fig8Deadline {
		t.Errorf("core 0 busy %v s exceeds the 75 ms deadline", s.BusySeconds(0))
	}
}

func TestInitialSEAMappingAllGraphs(t *testing.T) {
	graphs := []*taskgraph.Graph{
		taskgraph.MPEG2(),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(40), 3),
		taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 9),
	}
	for _, g := range graphs {
		for cores := 2; cores <= 6; cores++ {
			p := plat(cores)
			scaling := make([]int, cores)
			for i := range scaling {
				scaling[i] = 2
			}
			m, err := InitialSEAMapping(g, p, scaling, cfg(1e9, 1))
			if err != nil {
				t.Fatalf("%s/%d cores: %v", g.Name(), cores, err)
			}
			if err := m.Validate(g, cores); err != nil {
				t.Fatalf("%s/%d cores: %v", g.Name(), cores, err)
			}
			if used := m.UsedCores(cores); used < 2 {
				t.Errorf("%s/%d cores: only %d cores used", g.Name(), cores, used)
			}
		}
	}
}

func TestInitialSEAMappingPrefersSharedRegisters(t *testing.T) {
	// On the MPEG-2 graph with a loose deadline, the greedy stage should
	// co-locate chains that share registers rather than scattering them:
	// its Γ must beat a round-robin scatter at the same scaling.
	g := taskgraph.MPEG2()
	p := plat(4)
	scaling := []int{2, 2, 2, 2}
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	m, err := InitialSEAMapping(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	opt := metrics.Options{Iterations: c.Iterations, DeadlineSec: c.DeadlineSec}
	evGreedy, err := metrics.Evaluate(g, p, m, scaling, c.SER, opt)
	if err != nil {
		t.Fatal(err)
	}
	evRR, err := metrics.Evaluate(g, p, sched.RoundRobin(g.N(), 4), scaling, c.SER, opt)
	if err != nil {
		t.Fatal(err)
	}
	if evGreedy.TotalRegBits >= evRR.TotalRegBits {
		t.Errorf("greedy R = %d bits not below round-robin %d", evGreedy.TotalRegBits, evRR.TotalRegBits)
	}
}

func TestOptimizedMappingImprovesOrEqualsInitial(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	scaling := []int{2, 2, 3, 2}
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	init, err := InitialSEAMapping(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	opt := metrics.Options{Iterations: c.Iterations, DeadlineSec: c.DeadlineSec}
	evInit, err := metrics.Evaluate(g, p, init, scaling, c.SER, opt)
	if err != nil {
		t.Fatal(err)
	}
	evBest, err := OptimizedMapping(g, p, scaling, init, c)
	if err != nil {
		t.Fatal(err)
	}
	if evInit.MeetsDeadline && !evBest.MeetsDeadline {
		t.Fatal("search lost feasibility")
	}
	if evBest.MeetsDeadline && evInit.MeetsDeadline && evBest.Gamma > evInit.Gamma {
		t.Errorf("search worsened Γ: %v -> %v", evInit.Gamma, evBest.Gamma)
	}
}

func TestOptimizedMappingFindsFeasibility(t *testing.T) {
	// Start from an infeasible all-on-one-core mapping with a deadline only
	// a parallel mapping can meet; the search must recover feasibility.
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(20), 4)
	p := plat(4)
	scaling := []int{1, 1, 1, 1}
	all0 := sched.NewMapping(g.N())
	c := cfg(0, 1)
	evAll0, err := metrics.Evaluate(g, p, all0, scaling, c.SER, metrics.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deadline at 70% of the serial makespan: infeasible serially, feasible
	// with modest parallelism (the layered generator bounds graph width).
	c.DeadlineSec = evAll0.TMSeconds * 0.7
	c.SearchMoves = 3000
	ev, err := OptimizedMapping(g, p, scaling, all0, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.MeetsDeadline {
		t.Errorf("search failed to reach feasibility: T_M %v vs deadline %v",
			ev.TMSeconds, c.DeadlineSec)
	}
}

func TestOptimizedMappingDeterministic(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(25), 8)
	p := plat(3)
	scaling := []int{2, 2, 2}
	c := cfg(1e9, 1)
	init, err := InitialSEAMapping(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OptimizedMapping(g, p, scaling, init, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizedMapping(g, p, scaling, init, c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gamma != b.Gamma || fmt.Sprint(a.Schedule.Mapping) != fmt.Sprint(b.Schedule.Mapping) {
		t.Error("same seed produced different optimization results")
	}
	c2 := c
	c2.Seed = 99
	d, err := OptimizedMapping(g, p, scaling, init, c2)
	if err != nil {
		t.Fatal(err)
	}
	_ = d // different seed may or may not coincide; just ensure it runs
}

func TestSEAMapperBeatsRandomMappings(t *testing.T) {
	// At a fixed scaling, the proposed mapper's Γ should be no worse than
	// the best of a handful of random mappings (sanity on search quality).
	g := taskgraph.MPEG2()
	p := plat(4)
	scaling := []int{2, 2, 3, 2}
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	c.SearchMoves = 1500
	_, ev, err := MapOnce(context.Background(), g, p, scaling, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.MeetsDeadline {
		t.Fatal("proposed mapper infeasible at Table II scaling")
	}
	rng := rand.New(rand.NewSource(31))
	opt := metrics.Options{Iterations: c.Iterations, DeadlineSec: c.DeadlineSec}
	beaten := 0
	for i := 0; i < 20; i++ {
		m := sched.RandomMapping(rng, g.N(), 4)
		evR, err := metrics.Evaluate(g, p, m, scaling, c.SER, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !evR.MeetsDeadline || evR.Gamma >= ev.Gamma {
			beaten++
		}
	}
	if beaten < 18 {
		t.Errorf("proposed mapper beaten by %d/20 random mappings", 20-beaten)
	}
}

func TestExploreMPEG2(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	c := cfg(taskgraph.MPEG2Deadline, taskgraph.MPEG2Frames)
	c.SearchMoves = 400
	c.Strategy = StrategyExhaustive // the test inspects every per-scaling design
	best, per, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 15 {
		t.Fatalf("explored %d scalings, want 15 (Fig. 5b)", len(per))
	}
	if !best.Eval.MeetsDeadline {
		t.Fatal("best design misses deadline")
	}
	// Best must sit at the minimal nominal-power scaling among feasible
	// designs (step 1 minimizes power at the scaling level).
	nominal := func(s []int) float64 {
		v, err := p.DynamicPower(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	bestNom := nominal(best.Scaling)
	for _, d := range per {
		if d.Eval.MeetsDeadline && nominal(d.Scaling) < bestNom*(1-1e-9) {
			t.Errorf("scaling %v is feasible with lower nominal power %v < %v",
				d.Scaling, nominal(d.Scaling), bestNom)
		}
	}
	// The paper's winning designs run scaled down, not all-nominal.
	allNominal := true
	for _, s := range best.Scaling {
		if s != 1 {
			allNominal = false
		}
	}
	if allNominal {
		t.Error("best design is all-nominal; voltage scaling bought nothing")
	}
	// Power in the single-digit mW band of Table II.
	if mw := best.Eval.PowerW * 1e3; mw < 1 || mw > 12 {
		t.Errorf("best design power %v mW outside Table II band", mw)
	}
}

func TestExploreImpossibleDeadline(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	c := cfg(1e-9, 1) // nanosecond deadline: nothing is feasible
	c.SearchMoves = 100
	best, _, err := Explore(g, p, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if best.Eval.MeetsDeadline {
		t.Error("impossible deadline reported met")
	}
}
