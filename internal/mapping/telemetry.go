package mapping

import (
	"sync"
	"sync/atomic"
	"time"

	"seadopt/internal/metrics"
)

// Event and span caps: the collector must stay O(1) per combination and
// bounded in memory however large the enumeration is, so prune/skip event
// marks and per-worker spans stop accumulating at these limits (the
// summary counters keep counting; EventsDropped/Dropped record the loss).
// Incumbent, bound-tightening and admission events are rare and are always
// recorded.
const (
	maxTelemetryEvents      = 4096
	maxTelemetryWorkerSpans = 4096
)

// Exploration event kinds, in the order they can appear in a stream.
const (
	// EventIncumbent marks a scalar fold acceptance: the combination's
	// design became the incumbent best.
	EventIncumbent = "incumbent"
	// EventBound marks a tightening of the branch-and-bound dominance
	// threshold (the minimum probed-feasible nominal power seen so far).
	EventBound = "bound"
	// EventAdmitted marks a Pareto frontier admission.
	EventAdmitted = "admitted"
	// EventPruned marks a combination the admissible makespan bound proved
	// infeasible (the mapper never ran).
	EventPruned = "pruned"
	// EventSkipped marks a combination proven irrelevant to the fold's
	// result (dominance or probe-infeasibility skip).
	EventSkipped = "skipped"
)

// ExploreEvent is one timestamped exploration event. Index is the visit
// position (-1 for pre-stream events such as the ranked seed); Combination
// the stable enumeration index. Timestamps are nanoseconds since the run
// started and — unlike every other engine output — depend on wall clock,
// so they vary run to run while the event *sequence* stays deterministic.
type ExploreEvent struct {
	AtNanos      int64   `json:"at_ns"`
	Kind         string  `json:"kind"`
	Index        int     `json:"index"`
	Combination  int     `json:"combination"`
	NominalW     float64 `json:"nominal_power_w,omitempty"`
	FrontierSize int     `json:"frontier_size,omitempty"`
}

// WorkerSpan is one combination a worker processed: Kind is "map" when the
// mapper ran, "skip" when the combination resolved without it (probe-proved
// irrelevant or cancelled as dominated mid-flight).
type WorkerSpan struct {
	StartNanos  int64  `json:"start_ns"`
	EndNanos    int64  `json:"end_ns"`
	Combination int    `json:"combination"`
	Kind        string `json:"kind"`
}

// WorkerStats aggregates one worker's activity. BusyNanos sums the span
// durations (including spans beyond the recording cap); idle time is the
// run wall clock minus BusyNanos.
type WorkerStats struct {
	Worker       int          `json:"worker"`
	BusyNanos    int64        `json:"busy_ns"`
	Combinations int64        `json:"combinations"`
	Spans        []WorkerSpan `json:"spans,omitempty"`
	Dropped      int64        `json:"spans_dropped,omitempty"`
}

// PhaseStats is the per-component busy-clock breakdown of an exploration.
// The phases are independent clocks, not disjoint wall segments: probe and
// mapper time accrue concurrently on every worker, while bounds, ranked
// seed, enumeration and fold are single-goroutine. Their sum therefore
// exceeds the wall clock whenever Parallelism > 1.
type PhaseStats struct {
	// BoundsNanos is the admissible-bound precompute (metrics.NewBounds).
	BoundsNanos int64 `json:"bounds_ns"`
	// RankedSeedNanos is the Config.Ranked ascending-nominal incumbent pass.
	RankedSeedNanos int64 `json:"ranked_seed_ns"`
	// EnumerationNanos is the dispatcher's walk of the combination source:
	// cursor advances, bound pruning and dispatch-skip tests.
	EnumerationNanos int64 `json:"enumeration_ns"`
	// ProbeNanos is worker time in the shared feasibility probe.
	ProbeNanos int64 `json:"probe_ns"`
	// MapperNanos is worker time in the per-combination mapper search.
	MapperNanos int64 `json:"mapper_ns"`
	// FoldNanos is the ordered reduction: verdicts, fold acceptance and
	// Progress callbacks.
	FoldNanos int64 `json:"fold_ns"`
}

// ComboStats counts combination verdicts at fold time, where they are
// deterministic. Total accumulates across passes (the all-infeasible
// fallback re-folds the space), so Evaluated+Pruned+Skipped == Total.
type ComboStats struct {
	Total     int64 `json:"total"`
	Evaluated int64 `json:"evaluated"`
	Pruned    int64 `json:"pruned"`
	Skipped   int64 `json:"skipped"`
	// MapperRuns counts combinations whose mapper search actually ran;
	// MapperSpared counts probe-infeasible combinations whose run was
	// skipped as provably irrelevant.
	MapperRuns   int64 `json:"mapper_runs"`
	MapperSpared int64 `json:"mapper_spared"`
}

// ProbeCacheStats counts feasibility-probe lookups. Hit/miss totals can
// vary with worker timing (two workers may race to first-probe the same
// combination); every verdict-bearing output remains deterministic.
type ProbeCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HitRate is Hits/(Hits+Misses), 0 when no probes ran.
func (p ProbeCacheStats) HitRate() float64 {
	total := p.Hits + p.Misses
	if total == 0 {
		return 0
	}
	return float64(p.Hits) / float64(total)
}

// ExploreStats is a snapshot of a Telemetry collector: everything the
// observability layer knows about one exploration run. All durations are
// nanoseconds; all counters accumulate across the engine's internal passes
// (ranked seed, main stream, all-infeasible fallback).
type ExploreStats struct {
	Strategy    string            `json:"strategy"`
	Parallelism int               `json:"parallelism"`
	Passes      int               `json:"passes"`
	WallNanos   int64             `json:"wall_ns"`
	Phases      PhaseStats        `json:"phases"`
	Combos      ComboStats        `json:"combinations"`
	ProbeCache  ProbeCacheStats   `json:"probe_cache"`
	Eval        metrics.EvalStats `json:"eval"`
	// Events holds incumbent/bound/admission events (always recorded) and
	// up to maxTelemetryEvents prune/skip marks, in fold order.
	Events        []ExploreEvent `json:"events,omitempty"`
	EventsDropped int64          `json:"events_dropped,omitempty"`
	Workers       []WorkerStats  `json:"workers,omitempty"`
}

// Telemetry collects observe-only instrumentation from the explore core.
// Attach one via Config.Telemetry and snapshot it with Stats after the
// exploration returns. A collector accumulates across every internal pass
// of one logical exploration (ranked seeding, the main stream, the
// all-infeasible fallback); do not share one across unrelated runs.
//
// The collector is strictly an observer: it never feeds back into any
// engine decision, so the chosen Design, Pareto frontier and Progress
// stream are byte-identical with telemetry attached or not, at any
// Parallelism. Hot-path recording is allocation-free after warm-up:
// single-writer counters are plain fields ordered by the core's own
// happens-before edges (channel close / WaitGroup), cross-worker sums are
// atomics, and events/spans append into capped slices.
type Telemetry struct {
	startOnce sync.Once
	base      time.Time

	// Fold/setup-goroutine state (single writer at any moment; reads
	// happen after the run's happens-before edges).
	strategy    Strategy
	parallelism int
	passes      int
	boundsNanos int64
	rankedNanos int64
	foldNanos   int64
	combos      ComboStats
	events      []ExploreEvent
	eventsDrop  int64

	// Dispatcher-goroutine state.
	enumNanos int64

	// Cross-goroutine sums.
	probeNanos  atomic.Int64
	mapperNanos atomic.Int64
	probeHits   atomic.Int64
	probeMisses atomic.Int64
	mapperRuns  atomic.Int64
	mapperSkips atomic.Int64

	evalMu sync.Mutex
	eval   metrics.EvalStats

	workers []workerTel
}

type workerTel struct {
	busy   int64
	combos int64
	spans  []WorkerSpan
	drop   int64
}

// NewTelemetry returns an empty collector.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// now returns nanoseconds since the collector's monotonic base, starting
// the clock on first use.
func (t *Telemetry) now() int64 {
	t.startOnce.Do(func() { t.base = time.Now() })
	return int64(time.Since(t.base))
}

// beginPass records one engine pass over the combination space; called on
// the exploring goroutine before workers start.
func (t *Telemetry) beginPass(strategy Strategy, parallelism, workers int) {
	t.now() // start the wall clock
	t.strategy = strategy
	t.parallelism = parallelism
	t.passes++
	if len(t.workers) < workers {
		grown := make([]workerTel, workers)
		copy(grown, t.workers)
		t.workers = grown
	}
}

func (t *Telemetry) addBounds(d int64) { t.boundsNanos += d }
func (t *Telemetry) addRanked(d int64) { t.rankedNanos += d }
func (t *Telemetry) addEnum(d int64)   { t.enumNanos += d }
func (t *Telemetry) addFold(d int64)   { t.foldNanos += d }

func (t *Telemetry) observeProbe(d int64, hit bool) {
	t.probeNanos.Add(d)
	if hit {
		t.probeHits.Add(1)
	} else {
		t.probeMisses.Add(1)
	}
}

func (t *Telemetry) observeMapper(d int64) {
	t.mapperNanos.Add(d)
	t.mapperRuns.Add(1)
}

func (t *Telemetry) mapperSpared() { t.mapperSkips.Add(1) }

func (t *Telemetry) addEvalStats(s metrics.EvalStats) {
	t.evalMu.Lock()
	t.eval.Merge(s)
	t.evalMu.Unlock()
}

// workerSpan records one processed combination on worker w's private row.
func (t *Telemetry) workerSpan(w int, startNs, endNs int64, combination int, kind string) {
	wt := &t.workers[w]
	wt.busy += endNs - startNs
	wt.combos++
	if len(wt.spans) >= maxTelemetryWorkerSpans {
		wt.drop++
		return
	}
	wt.spans = append(wt.spans, WorkerSpan{
		StartNanos: startNs, EndNanos: endNs, Combination: combination, Kind: kind,
	})
}

// comboVerdict records one fold-time verdict; kind is EventPruned,
// EventSkipped or "" for an evaluated combination. Runs on the fold
// goroutine, so the counter sequence is deterministic.
func (t *Telemetry) comboVerdict(kind string, index, combination int, nominal float64) {
	t.combos.Total++
	switch kind {
	case EventPruned:
		t.combos.Pruned++
	case EventSkipped:
		t.combos.Skipped++
	default:
		t.combos.Evaluated++
		return
	}
	if len(t.events) >= maxTelemetryEvents {
		t.eventsDrop++
		return
	}
	t.events = append(t.events, ExploreEvent{
		AtNanos: t.now(), Kind: kind, Index: index, Combination: combination, NominalW: nominal,
	})
}

// event records a rare always-kept event (incumbent, bound, admitted).
func (t *Telemetry) event(kind string, index, combination int, nominal float64, frontier int) {
	t.events = append(t.events, ExploreEvent{
		AtNanos: t.now(), Kind: kind, Index: index, Combination: combination,
		NominalW: nominal, FrontierSize: frontier,
	})
}

// Stats snapshots the collector. Call it only after the exploration has
// returned; the snapshot is deep-copied and safe to retain.
func (t *Telemetry) Stats() *ExploreStats {
	st := &ExploreStats{
		Strategy:    string(t.strategy.withDefault()),
		Parallelism: t.parallelism,
		Passes:      t.passes,
		WallNanos:   t.now(),
		Phases: PhaseStats{
			BoundsNanos:      t.boundsNanos,
			RankedSeedNanos:  t.rankedNanos,
			EnumerationNanos: t.enumNanos,
			ProbeNanos:       t.probeNanos.Load(),
			MapperNanos:      t.mapperNanos.Load(),
			FoldNanos:        t.foldNanos,
		},
		Combos: t.combos,
		ProbeCache: ProbeCacheStats{
			Hits:   t.probeHits.Load(),
			Misses: t.probeMisses.Load(),
		},
		EventsDropped: t.eventsDrop,
		Events:        append([]ExploreEvent(nil), t.events...),
	}
	st.Combos.MapperRuns = t.mapperRuns.Load()
	st.Combos.MapperSpared = t.mapperSkips.Load()
	t.evalMu.Lock()
	st.Eval = t.eval
	t.evalMu.Unlock()
	st.Workers = make([]WorkerStats, len(t.workers))
	for w := range t.workers {
		wt := &t.workers[w]
		st.Workers[w] = WorkerStats{
			Worker:       w,
			BusyNanos:    wt.busy,
			Combinations: wt.combos,
			Spans:        append([]WorkerSpan(nil), wt.spans...),
			Dropped:      wt.drop,
		}
	}
	return st
}
