package mapping

import (
	"context"
	"testing"

	"seadopt/internal/metrics"
	"seadopt/internal/taskgraph"
)

func TestExhaustiveFig8Optimal(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	// The worked example's mixed scaling; under our single-pass DAG timing
	// its 75 ms deadline is critical-path-infeasible at s=2 (see
	// EXPERIMENTS.md), so the optimality check uses a 120 ms constraint.
	scaling := []int{1, 2, 2}
	c := cfg(0.120, 1)

	best, err := ExhaustiveMapping(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	if !best.MeetsDeadline {
		t.Fatal("exhaustive optimum misses deadline")
	}

	// The heuristic must be within 10% of the true optimum here, and can
	// never beat it.
	c.SearchMoves = 1500
	_, heur, err := MapOnce(context.Background(), g, p, scaling, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if heur.MeetsDeadline && heur.Gamma < best.Gamma*(1-1e-9) {
		t.Fatalf("heuristic Γ %v beats the 'optimal' %v — exhaustive search is broken",
			heur.Gamma, best.Gamma)
	}
	if heur.MeetsDeadline && heur.Gamma > best.Gamma*1.10 {
		t.Errorf("heuristic gap %.1f%% exceeds 10%% on the 6-task example",
			(heur.Gamma/best.Gamma-1)*100)
	}
}

func TestExhaustiveSymmetryReduction(t *testing.T) {
	// With all cores at the same level, permuted mappings are equivalent;
	// the canonical-form enumeration must still find the same optimum as a
	// distinct-level run restricted to... (sanity: optimum feasible and
	// no better heuristic exists at generous budget).
	g := taskgraph.Fig8()
	p := plat(3)
	scaling := []int{2, 2, 2}
	c := cfg(1.0, 1) // loose deadline

	best, err := ExhaustiveMapping(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	c.SearchMoves = 4000
	_, heur, err := MapOnce(context.Background(), g, p, scaling, SEAMapper(c), c)
	if err != nil {
		t.Fatal(err)
	}
	if heur.Gamma < best.Gamma*(1-1e-9) {
		t.Fatalf("heuristic %v beats exhaustive %v under symmetry reduction", heur.Gamma, best.Gamma)
	}
	// On this tiny graph the generous-budget heuristic should actually
	// reach the optimum.
	if heur.Gamma > best.Gamma*1.001 {
		t.Errorf("heuristic did not reach optimum: %v vs %v", heur.Gamma, best.Gamma)
	}
}

func TestExhaustiveRejectsHugeSpaces(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(40), 1)
	p := plat(6)
	c := cfg(taskgraph.RandomDeadline(40), 1)
	if _, err := ExhaustiveMapping(g, p, []int{1, 2, 3, 1, 2, 3}, c); err == nil {
		t.Error("6^40 space accepted")
	}
}

func TestExhaustiveInfeasible(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(2)
	c := cfg(1e-9, 1) // impossible deadline
	if _, err := ExhaustiveMapping(g, p, []int{3, 3}, c); err == nil {
		t.Error("impossible deadline produced a design")
	}
}

func TestExhaustiveUsesAllCores(t *testing.T) {
	g := taskgraph.Fig8()
	p := plat(3)
	c := cfg(1.0, 1)
	best, err := ExhaustiveMapping(g, p, []int{1, 1, 1}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Schedule.Mapping.UsesAllCores(3) {
		t.Errorf("optimal mapping leaves a core empty: %v", best.Schedule.Mapping)
	}
	_ = metrics.Options{}
}
