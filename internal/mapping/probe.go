package mapping

import (
	"math/rand"
	"sort"
	"sync"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
)

// ProbeMoves is the hill-climb budget of the common feasibility probe.
const ProbeMoves = 400

// ProbeCache memoizes the mapper-independent feasibility probe per scaling
// combination — keyed by the combination's stable enumeration index, which
// identifies the scaling vector for a fixed platform — so a probe verdict
// computed once is shared by every Explore call driven with the same cache:
// the four experiments of Table II probe each scaling once between them, the
// ranked incumbent pass's probes are reused by the main stream, and a
// deadline sweep probes each combination once for the whole sweep. It is
// safe for concurrent use.
//
// The cache stores each combination's probe *trajectory*, not a single
// verdict. The probe's candidate sequence — LPT seed then seeded hill-climb
// moves — is a pure function of (graph, platform, scaling, Config.Seed),
// independent of the deadline: the deadline only decides where the climb
// stops (at the first candidate meeting it). Because the first deadline-
// meeting candidate is always a strict running minimum of the makespan
// sequence, recording the strict prefix minima plus the climb's resumable
// state lets the cache answer ANY deadline byte-identically to a cold probe
// at that deadline, resuming the climb deeper only when a tighter deadline
// needs it. A deadline-only sweep therefore re-probes nothing.
//
// A cache is shareable across Explore calls that agree on graph and
// platform content, Config.Seed and Config.Iterations; DeadlineSec and SER
// may vary freely between calls (per-(deadline, SER) evaluations are
// memoized per entry). Do not share one across different workloads.
type ProbeCache struct {
	mu      sync.Mutex
	entries map[int]*probeEntry
	// horizon is the tightest positive deadline the cache expects to serve
	// (see EnsureHorizon). Entries climb down to it eagerly so later
	// tighter-deadline calls within the horizon are pure cache hits.
	horizon float64
}

// NewProbeCache returns an empty probe cache.
func NewProbeCache() *ProbeCache {
	return &ProbeCache{entries: make(map[int]*probeEntry)}
}

// EnsureHorizon declares that probes at deadline d (seconds, > 0) are
// expected: entries will climb at least until they can answer d, even when
// first probed at a looser deadline. A sweep sets the horizon to its minimum
// positive deadline so point 1 does the whole climb and every later point
// probes entirely from cache. The horizon only tightens (the minimum of all
// declared values wins) and never changes any verdict — only when the climb
// work happens.
func (pc *ProbeCache) EnsureHorizon(d float64) {
	if d <= 0 {
		return
	}
	pc.mu.Lock()
	if pc.horizon == 0 || d < pc.horizon {
		pc.horizon = d
	}
	pc.mu.Unlock()
}

// Len reports how many combinations have a cached trajectory.
func (pc *ProbeCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// probeMin is one strict running minimum of a probe trajectory's makespan
// sequence: the first candidate meeting any deadline D is always the first
// minimum with tm <= D.
type probeMin struct {
	tm float64
	m  sched.Mapping // owned copy
}

// probeEvalKey memoizes the winner's full Evaluation per (deadline, SER):
// those are the only evaluator inputs that vary across calls sharing a
// cache, and both affect Evaluation fields (MeetsDeadline, Γ).
type probeEvalKey struct {
	deadline float64
	ser      faults.SERModel
}

// probeEntry is one combination's resumable probe trajectory. The per-entry
// mutex gives single-flight semantics: concurrent probes of the same
// combination serialize, and a resume never re-runs a recorded move, so the
// total climb work per entry equals one cold probe at the tightest deadline
// served — regardless of caller order or concurrency.
type probeEntry struct {
	mu     sync.Mutex
	seeded bool
	minima []probeMin
	evals  map[probeEvalKey]*metrics.Evaluation

	// Resumable climb state; released once the move budget is exhausted.
	cur       sched.Mapping
	spare     sched.Mapping
	curTM     float64 // running minimum == minima[len-1].tm
	rng       *rand.Rand
	moves     int
	exhausted bool
}

// feasibleAtScaling is the mapper-independent deadline probe of step 1: a
// longest-processing-time balanced mapping refined by a short makespan hill
// climb, with a fixed seed derived from Config.Seed so every experiment
// sees the same verdict for the same (graph, platform, scaling, deadline).
// idx is the combination's stable enumeration index (the cache key). On
// success it returns the feasible mapping's evaluation (owned by the
// cache; treat as read-only). hit reports whether the verdict was served
// without running any climb work — telemetry only; verdicts themselves
// never depend on timing.
func (pc *ProbeCache) feasibleAtScaling(mc *MapContext, idx int, cfg Config) (*metrics.Evaluation, bool, bool, error) {
	pc.mu.Lock()
	if pc.entries == nil {
		pc.entries = make(map[int]*probeEntry)
	}
	en, existed := pc.entries[idx]
	if !existed {
		en = &probeEntry{evals: make(map[probeEvalKey]*metrics.Evaluation)}
		pc.entries[idx] = en
	}
	horizon := pc.horizon
	pc.mu.Unlock()

	en.mu.Lock()
	defer en.mu.Unlock()

	deadline := cfg.DeadlineSec
	// target is how deep the climb must go before this call can return:
	// deep enough to answer the caller's deadline, and — when a horizon is
	// declared — deep enough to answer the horizon too, so expected tighter
	// calls become pure hits. A non-positive deadline is met by any
	// candidate, so only the horizon can demand climbing.
	target := 0.0
	if deadline > 0 {
		target = deadline
	}
	if horizon > 0 && (target <= 0 || horizon < target) {
		target = horizon
	}

	sc := mc.scratch
	if sc == nil {
		sc = newComboScratch(mc.Graph.N(), mc.Platform.Cores())
	}
	worked := false
	if !en.seeded {
		if err := en.seed(mc, sc, cfg); err != nil {
			return nil, false, false, err
		}
		worked = true
	}
	for target > 0 && !en.exhausted && en.curTM > target {
		if err := mc.Ctx.Err(); err != nil {
			return nil, false, false, err
		}
		if err := en.step(mc, sc); err != nil {
			return nil, false, false, err
		}
		worked = true
	}
	if en.exhausted && en.cur != nil {
		en.cur, en.spare, en.rng = nil, nil, nil
	}
	hit := existed && !worked

	// Replay the cold probe's early exit: the winner for this deadline is
	// the first recorded strict minimum meeting it (the seed when the
	// deadline is unconstrained).
	var winner sched.Mapping
	if deadline <= 0 {
		winner = en.minima[0].m
	} else {
		for i := range en.minima {
			if en.minima[i].tm <= deadline {
				winner = en.minima[i].m
				break
			}
		}
	}
	if winner == nil {
		return nil, false, hit, nil
	}
	key := probeEvalKey{deadline: deadline, ser: cfg.SER}
	if ev, ok := en.evals[key]; ok {
		return ev, true, hit, nil
	}
	ev, err := mc.Eval.Evaluate(winner)
	if err != nil {
		return nil, false, false, err
	}
	ev = ev.Clone()
	en.evals[key] = ev
	return ev, true, hit, nil
}

// seed builds the LPT seed mapping — heaviest tasks first onto the least-
// loaded core, weighting load by the core's clock period (slow cores absorb
// less work) — records it as the trajectory's first minimum and arms the
// climb state.
func (en *probeEntry) seed(mc *MapContext, sc *comboScratch, cfg Config) error {
	g, p := mc.Graph, mc.Platform
	n := g.N()
	cores := p.Cores()

	order := sc.order[:n]
	for i := range order {
		order[i] = taskgraph.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := g.Task(order[a]).Cycles, g.Task(order[b]).Cycles
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	m := sc.m[:n]
	loadSec := sc.loadSec[:cores]
	freq := sc.freq[:cores]
	for c := range loadSec {
		loadSec[c] = 0
	}
	for c, s := range mc.Scaling {
		freq[c] = p.MustCoreLevel(c, s).FreqHz()
	}
	for _, t := range order {
		bestCore := 0
		for c := 1; c < cores; c++ {
			if loadSec[c] < loadSec[bestCore] {
				bestCore = c
			}
		}
		m[t] = bestCore
		loadSec[bestCore] += float64(g.Task(t).Cycles) / freq[bestCore]
	}

	// The climb needs only each candidate's T_M, so it runs on the
	// makespan-only evaluation path; the one full Evaluate per (deadline,
	// SER) happens on the recorded winner. TMSeconds is bit-identical
	// between the two paths, so the verdict sequence — and with it every
	// probe-derived decision — matches the uncached probe exactly.
	tm, _, err := mc.Eval.Makespan(m)
	if err != nil {
		return err
	}
	en.minima = append(en.minima, probeMin{tm: tm, m: m.Clone()})
	en.cur = m.Clone()
	en.spare = make(sched.Mapping, n)
	en.curTM = tm
	en.rng = rand.New(rand.NewSource(cfg.Seed ^ 0xFEA51B1E))
	en.seeded = true
	return nil
}

// step advances the climb by one move, exactly mirroring the cold probe's
// acceptance walk (accept when the candidate's makespan does not exceed the
// running minimum; record strict improvements as minima).
func (en *probeEntry) step(mc *MapContext, sc *comboScratch) error {
	cores := mc.Platform.Cores()
	neighbor := search.NeighborInto(en.rng, en.spare, en.cur, cores, sc.loads)
	ntm, _, err := mc.Eval.Makespan(neighbor)
	if err != nil {
		return err
	}
	if ntm < en.curTM {
		en.minima = append(en.minima, probeMin{tm: ntm, m: neighbor.Clone()})
		en.cur, en.spare = neighbor, en.cur
		en.curTM = ntm
	} else if ntm == en.curTM {
		en.cur, en.spare = neighbor, en.cur
	}
	en.moves++
	if en.moves >= ProbeMoves {
		en.exhausted = true
	}
	return nil
}

// WarmPoint is one member of a prior exploration's result offered as a
// warm-start seed: the combination's stable enumeration index plus the
// realized makespan and Γ of its optimized design. Power is deliberately
// absent — the engine recomputes the combination's nominal power itself, so
// a caller cannot desynchronize the dominance arithmetic.
type WarmPoint struct {
	Combination int
	Makespan    float64
	Gamma       float64
}

// Reuse bundles the state an exploration can share with related
// explorations over the same workload: the probe trajectory cache, the
// metrics.Bounds precompute (read-only after construction) and a pool of
// evaluators (rebound per borrower via Evaluator.SetDeadline). A sweep
// allocates one Reuse for all its points; the service shares one across
// fingerprint-matching submissions.
//
// Contract: every exploration driven through one Reuse must agree on graph
// and platform *content* and on Config.Iterations, Config.Seed; DeadlineSec,
// SER and objectives may vary. Sharing across different workloads corrupts
// results. Safe for concurrent use.
type Reuse struct {
	probe *ProbeCache

	mu          sync.Mutex
	g           *taskgraph.Graph
	p           *arch.Platform
	bounds      *metrics.Bounds
	boundsIters int
	pool        []*metrics.Evaluator
	poolSER     faults.SERModel
	poolIters   int
}

// NewReuse returns an empty reuse bundle with a fresh probe cache.
func NewReuse() *Reuse {
	return &Reuse{probe: NewProbeCache()}
}

// Probe returns the bundle's shared probe cache.
func (r *Reuse) Probe() *ProbeCache { return r.probe }

// boundsFor returns the shared Bounds precompute, building it on first use.
// Bounds values are a pure function of (graph, platform, iterations)
// content, so content-equal graphs hit the same precompute.
func (r *Reuse) boundsFor(g *taskgraph.Graph, p *arch.Platform, iterations int) *metrics.Bounds {
	if iterations < 1 {
		iterations = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.bounds == nil || r.boundsIters != iterations {
		r.bounds = metrics.NewBounds(g, p, iterations)
		r.boundsIters = iterations
		r.g, r.p = g, p
	}
	return r.bounds
}

// evaluator borrows a pooled evaluator compatible with cfg, rebinding its
// deadline, or builds a fresh one when the pool is empty or was built for a
// different (SER, iterations) signature. Return it with release.
func (r *Reuse) evaluator(g *taskgraph.Graph, p *arch.Platform, cfg Config) (*metrics.Evaluator, error) {
	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	r.mu.Lock()
	if r.poolSER != cfg.SER || r.poolIters != iters {
		r.pool = nil
		r.poolSER, r.poolIters = cfg.SER, iters
	}
	if n := len(r.pool); n > 0 {
		e := r.pool[n-1]
		r.pool = r.pool[:n-1]
		r.mu.Unlock()
		e.SetDeadline(cfg.DeadlineSec)
		return e, nil
	}
	r.mu.Unlock()
	return metrics.NewEvaluator(g, p, cfg.SER,
		metrics.Options{Iterations: iters, DeadlineSec: cfg.DeadlineSec})
}

// release returns a borrowed evaluator to the pool; it is dropped if the
// pool's signature moved on in the meantime.
func (r *Reuse) release(e *metrics.Evaluator, cfg Config) {
	iters := cfg.Iterations
	if iters < 1 {
		iters = 1
	}
	r.mu.Lock()
	if r.poolSER == cfg.SER && r.poolIters == iters {
		r.pool = append(r.pool, e)
	}
	r.mu.Unlock()
}

// acquireEvaluator hands exploration code an evaluator for cfg — pooled via
// cfg.Reuse when present, freshly built otherwise — plus a release func.
// Pooled evaluators carry cumulative work counters across borrowers, so the
// caller must attribute only the counter delta since acquisition to its own
// telemetry.
func acquireEvaluator(g *taskgraph.Graph, p *arch.Platform, cfg Config) (*metrics.Evaluator, func(), error) {
	if cfg.Reuse != nil {
		e, err := cfg.Reuse.evaluator(g, p, cfg)
		if err != nil {
			return nil, nil, err
		}
		return e, func() { cfg.Reuse.release(e, cfg) }, nil
	}
	e, err := metrics.NewEvaluator(g, p, cfg.SER,
		metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec})
	if err != nil {
		return nil, nil, err
	}
	return e, func() {}, nil
}

// boundsFor returns the Bounds precompute for cfg — shared via cfg.Reuse
// when present, freshly built otherwise.
func boundsFor(g *taskgraph.Graph, p *arch.Platform, cfg Config) *metrics.Bounds {
	if cfg.Reuse != nil {
		return cfg.Reuse.boundsFor(g, p, cfg.Iterations)
	}
	return metrics.NewBounds(g, p, cfg.Iterations)
}
