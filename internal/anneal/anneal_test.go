package anneal

import (
	"fmt"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/taskgraph"
)

func plat(cores int) *arch.Platform {
	return arch.MustNewPlatform(cores, arch.ARM7Levels3())
}

func cfg(obj Objective) Config {
	return Config{
		Objective:   obj,
		SER:         faults.NewSERModel(faults.DefaultSER),
		DeadlineSec: taskgraph.MPEG2Deadline,
		Iterations:  taskgraph.MPEG2Frames,
		Moves:       1200,
		Seed:        7,
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg(ObjectiveRegisterUsage)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.DeadlineSec = -1
	if bad.Validate() == nil {
		t.Error("negative deadline accepted")
	}
	bad = good
	bad.Objective = Objective(99)
	if bad.Validate() == nil {
		t.Error("unknown objective accepted")
	}
	bad = good
	bad.Moves = -1
	if bad.Validate() == nil {
		t.Error("negative moves accepted")
	}
}

func TestObjectiveString(t *testing.T) {
	for o, want := range map[Objective]string{
		ObjectiveRegisterUsage:  "register-usage",
		ObjectiveMakespan:       "makespan",
		ObjectiveRegTimeProduct: "regtime-product",
		ObjectiveGamma:          "gamma",
	} {
		if o.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(o), o.String(), want)
		}
	}
	if Objective(42).String() == "" {
		t.Error("unknown objective produced empty string")
	}
}

// The defining property of the baselines: each annealer wins on its own
// objective. Exp:1's R must be ≤ Exp:2's R; Exp:2's T_M must be ≤ Exp:1's
// T_M — the two ends of the paper's trade-off (Fig. 3a).
func TestObjectivesPullOppositeDirections(t *testing.T) {
	g := taskgraph.MPEG2()
	p := plat(4)
	scaling := []int{2, 2, 3, 2}

	evR, err := Anneal(g, p, scaling, cfg(ObjectiveRegisterUsage))
	if err != nil {
		t.Fatal(err)
	}
	evT, err := Anneal(g, p, scaling, cfg(ObjectiveMakespan))
	if err != nil {
		t.Fatal(err)
	}
	if evR.TotalRegBits > evT.TotalRegBits {
		t.Errorf("register-usage annealer R=%d > makespan annealer R=%d",
			evR.TotalRegBits, evT.TotalRegBits)
	}
	if evT.TMSeconds > evR.TMSeconds {
		t.Errorf("makespan annealer T_M=%v > register annealer T_M=%v",
			evT.TMSeconds, evR.TMSeconds)
	}
}

func TestGammaOracleBeatsUnawareBaselines(t *testing.T) {
	// Annealing directly on Γ must produce Γ no worse than annealing on R
	// or T_M at the same scaling (it optimizes the reported metric).
	g := taskgraph.MPEG2()
	p := plat(4)
	scaling := []int{2, 2, 3, 2}
	cG := cfg(ObjectiveGamma)
	cG.Moves = 5000
	evG, err := Anneal(g, p, scaling, cG)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []Objective{ObjectiveRegisterUsage, ObjectiveMakespan, ObjectiveRegTimeProduct} {
		ev, err := Anneal(g, p, scaling, cfg(obj))
		if err != nil {
			t.Fatal(err)
		}
		// SA is stochastic: allow a small margin, but the oracle must not
		// lose badly on the metric it optimizes directly.
		if evG.Gamma > ev.Gamma*1.05 {
			t.Errorf("Γ-oracle %v worse than %v baseline %v", evG.Gamma, obj, ev.Gamma)
		}
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(30), 2)
	p := plat(3)
	scaling := []int{2, 2, 2}
	c := cfg(ObjectiveRegTimeProduct)
	c.DeadlineSec = taskgraph.RandomDeadline(30)
	c.Iterations = 1
	a, err := Anneal(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(g, p, scaling, c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Gamma != b.Gamma || fmt.Sprint(a.Schedule.Mapping) != fmt.Sprint(b.Schedule.Mapping) {
		t.Error("same seed produced different annealing results")
	}
}

func TestAnnealRespectsDeadlinePressure(t *testing.T) {
	// With a deadline only parallel mappings meet, the annealer must end
	// feasible for every objective (the penalty drives it there).
	g := taskgraph.MustRandom(taskgraph.DefaultRandomConfig(24), 6)
	p := plat(4)
	scaling := []int{1, 1, 1, 1}
	serial, err := metrics.Evaluate(g, p, sched.NewMapping(g.N()), scaling,
		faults.NewSERModel(faults.DefaultSER), metrics.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []Objective{ObjectiveRegisterUsage, ObjectiveMakespan, ObjectiveRegTimeProduct, ObjectiveGamma} {
		c := cfg(obj)
		c.Iterations = 1
		c.DeadlineSec = serial.TMSeconds * 0.6
		c.Moves = 2500
		ev, err := Anneal(g, p, scaling, c)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.MeetsDeadline {
			t.Errorf("%v: annealer ended infeasible (T_M %v vs deadline %v)",
				obj, ev.TMSeconds, c.DeadlineSec)
		}
	}
}

func TestMapperAdapterInExplore(t *testing.T) {
	// The annealer must plug into the Fig. 4 outer loop exactly like the
	// proposed mapper (Exp:1-3 run under the same voltage-scaling
	// iteration).
	g := taskgraph.Fig8()
	p := plat(3)
	c := cfg(ObjectiveMakespan)
	c.DeadlineSec = taskgraph.Fig8Deadline
	c.Iterations = 1
	c.Moves = 300
	mcfg := mapping.Config{
		SER:         c.SER,
		DeadlineSec: c.DeadlineSec,
		Iterations:  1,
		SearchMoves: 100,
	}
	best, per, err := mapping.Explore(g, p, Mapper(c), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 10 { // C(3+3-1,3) = 10 combos for 3 cores / 3 levels
		t.Fatalf("explored %d scalings, want 10", len(per))
	}
	if !best.Eval.MeetsDeadline {
		t.Error("no feasible design found for the Fig. 8 example")
	}
}
