// Package anneal implements the soft error-unaware task-mapping baselines of
// the paper's evaluation (Table II, Exp:1-3): simulated-annealing mapping in
// the style of Orsila et al. [13] with pluggable objectives —
//
//	Exp:1  minimize register usage R (memory-aware distribution)
//	Exp:2  minimize multiprocessor execution time T_M (parallelism)
//	Exp:3  minimize the product T_M × R (joint trade-off)
//
// plus ObjectiveGamma, the oracle that anneals directly on eq. (3)'s Γ, used
// by ablation benchmarks to separate "better search" from "better
// objective". Deadline feasibility enters the cost as a multiplicative
// penalty so the annealer is pulled back into the feasible region.
package anneal

import (
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
)

// Objective selects what the annealer minimizes.
type Objective int

const (
	// ObjectiveRegisterUsage minimizes R = Σ_i R_i (Exp:1).
	ObjectiveRegisterUsage Objective = iota
	// ObjectiveMakespan minimizes T_M (Exp:2, "parallelism").
	ObjectiveMakespan
	// ObjectiveRegTimeProduct minimizes T_M × R (Exp:3).
	ObjectiveRegTimeProduct
	// ObjectiveGamma minimizes eq. (3)'s Γ directly (ablation oracle).
	ObjectiveGamma
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveRegisterUsage:
		return "register-usage"
	case ObjectiveMakespan:
		return "makespan"
	case ObjectiveRegTimeProduct:
		return "regtime-product"
	case ObjectiveGamma:
		return "gamma"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Config parameterizes a simulated-annealing run.
type Config struct {
	Objective   Objective
	SER         faults.SERModel
	DeadlineSec float64
	Iterations  int // stream iterations for T_M semantics
	Moves       int // annealing steps; zero selects DefaultMoves
	Seed        int64
	// InitialTempFrac sets T0 as a fraction of the initial cost
	// (default 0.2); FinalTempFrac sets the end temperature (default 1e-4).
	InitialTempFrac float64
	FinalTempFrac   float64
}

// DefaultMoves is the annealing budget when Config.Moves is zero.
const DefaultMoves = 4000

func (c Config) withDefaults() Config {
	if c.Moves == 0 {
		c.Moves = DefaultMoves
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.InitialTempFrac <= 0 {
		c.InitialTempFrac = 0.2
	}
	if c.FinalTempFrac <= 0 {
		c.FinalTempFrac = 1e-4
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.SER.Validate(); err != nil {
		return err
	}
	if c.DeadlineSec < 0 {
		return fmt.Errorf("anneal: negative deadline %v", c.DeadlineSec)
	}
	if c.Moves < 0 {
		return fmt.Errorf("anneal: negative move budget %d", c.Moves)
	}
	if c.Objective < ObjectiveRegisterUsage || c.Objective > ObjectiveGamma {
		return fmt.Errorf("anneal: unknown objective %d", int(c.Objective))
	}
	return nil
}

// cost extracts the objective value with deadline penalty.
func cost(obj Objective, deadline float64, ev *metrics.Evaluation) float64 {
	var v float64
	switch obj {
	case ObjectiveRegisterUsage:
		v = float64(ev.TotalRegBits)
	case ObjectiveMakespan:
		v = ev.TMSeconds
	case ObjectiveRegTimeProduct:
		v = float64(ev.TotalRegBits) * ev.TMSeconds
	case ObjectiveGamma:
		v = ev.Gamma
	}
	if deadline > 0 && ev.TMSeconds > deadline {
		// Penalize in proportion to the violation so downhill moves toward
		// feasibility are visible to the annealer.
		v *= 1 + 10*(ev.TMSeconds-deadline)/deadline
	}
	return v
}

// Anneal searches for a mapping minimizing the configured objective at the
// given scaling vector, returning the evaluation of the best feasible
// mapping found (or the best overall if nothing feasible was seen). It runs
// on the shared engine of internal/search — the same neighborhood and
// cooling as the proposed mapper, so the experiments differ only in
// objective and starting point (Exp:1-3 start from a round-robin scatter).
func Anneal(g *taskgraph.Graph, p *arch.Platform, scaling []int, cfg Config) (*metrics.Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.ValidScaling(scaling); err != nil {
		return nil, err
	}
	opt := metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec}

	res, err := search.Anneal(search.Problem{
		Cores:           p.Cores(),
		Initial:         sched.RoundRobin(g.N(), p.Cores()),
		Moves:           cfg.Moves,
		Seed:            cfg.Seed ^ 0xA22EA1,
		InitialTempFrac: cfg.InitialTempFrac,
		FinalTempFrac:   cfg.FinalTempFrac,
		Evaluate: func(m sched.Mapping) (search.Cost, error) {
			ev, err := metrics.Evaluate(g, p, m, scaling, cfg.SER, opt)
			if err != nil {
				return search.Cost{}, err
			}
			return search.Cost{
				Value:    cost(cfg.Objective, cfg.DeadlineSec, ev),
				Feasible: ev.MeetsDeadline,
			}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return metrics.Evaluate(g, p, res.Best, scaling, cfg.SER, opt)
}

// Mapper adapts the annealer to the outer Fig. 4 design loop, so Exp:1-3
// run under the same power-minimizing voltage-scaling iteration as the
// proposed technique (the paper applies step 1 to all four experiments).
func Mapper(cfg Config) mapping.MapperFunc {
	return func(g *taskgraph.Graph, p *arch.Platform, scaling []int) (sched.Mapping, *metrics.Evaluation, error) {
		ev, err := Anneal(g, p, scaling, cfg)
		if err != nil {
			return nil, nil, err
		}
		return ev.Schedule.Mapping, ev, nil
	}
}
