// Package anneal implements the soft error-unaware task-mapping baselines of
// the paper's evaluation (Table II, Exp:1-3): simulated-annealing mapping in
// the style of Orsila et al. [13] with pluggable objectives —
//
//	Exp:1  minimize register usage R (memory-aware distribution)
//	Exp:2  minimize multiprocessor execution time T_M (parallelism)
//	Exp:3  minimize the product T_M × R (joint trade-off)
//
// plus ObjectiveGamma, the oracle that anneals directly on eq. (3)'s Γ, used
// by ablation benchmarks to separate "better search" from "better
// objective". Deadline feasibility enters the cost as a multiplicative
// penalty so the annealer is pulled back into the feasible region.
package anneal

import (
	"context"
	"fmt"

	"seadopt/internal/arch"
	"seadopt/internal/faults"
	"seadopt/internal/mapping"
	"seadopt/internal/metrics"
	"seadopt/internal/sched"
	"seadopt/internal/search"
	"seadopt/internal/taskgraph"
)

// Objective selects what the annealer minimizes.
type Objective int

const (
	// ObjectiveRegisterUsage minimizes R = Σ_i R_i (Exp:1).
	ObjectiveRegisterUsage Objective = iota
	// ObjectiveMakespan minimizes T_M (Exp:2, "parallelism").
	ObjectiveMakespan
	// ObjectiveRegTimeProduct minimizes T_M × R (Exp:3).
	ObjectiveRegTimeProduct
	// ObjectiveGamma minimizes eq. (3)'s Γ directly (ablation oracle).
	ObjectiveGamma
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveRegisterUsage:
		return "register-usage"
	case ObjectiveMakespan:
		return "makespan"
	case ObjectiveRegTimeProduct:
		return "regtime-product"
	case ObjectiveGamma:
		return "gamma"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Config parameterizes a simulated-annealing run.
type Config struct {
	Objective   Objective
	SER         faults.SERModel
	DeadlineSec float64
	Iterations  int // stream iterations for T_M semantics
	Moves       int // annealing steps; zero selects DefaultMoves
	Seed        int64
	// InitialTempFrac sets T0 as a fraction of the initial cost
	// (default 0.2); FinalTempFrac sets the end temperature (default 1e-4).
	InitialTempFrac float64
	FinalTempFrac   float64
}

// DefaultMoves is the annealing budget when Config.Moves is zero.
const DefaultMoves = 4000

func (c Config) withDefaults() Config {
	if c.Moves == 0 {
		c.Moves = DefaultMoves
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.InitialTempFrac <= 0 {
		c.InitialTempFrac = 0.2
	}
	if c.FinalTempFrac <= 0 {
		c.FinalTempFrac = 1e-4
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.SER.Validate(); err != nil {
		return err
	}
	if c.DeadlineSec < 0 {
		return fmt.Errorf("anneal: negative deadline %v", c.DeadlineSec)
	}
	if c.Moves < 0 {
		return fmt.Errorf("anneal: negative move budget %d", c.Moves)
	}
	if c.Objective < ObjectiveRegisterUsage || c.Objective > ObjectiveGamma {
		return fmt.Errorf("anneal: unknown objective %d", int(c.Objective))
	}
	return nil
}

// cost extracts the objective value with deadline penalty.
func cost(obj Objective, deadline float64, ev *metrics.Evaluation) float64 {
	var v float64
	switch obj {
	case ObjectiveRegisterUsage:
		v = float64(ev.TotalRegBits)
	case ObjectiveMakespan:
		v = ev.TMSeconds
	case ObjectiveRegTimeProduct:
		v = float64(ev.TotalRegBits) * ev.TMSeconds
	case ObjectiveGamma:
		v = ev.Gamma
	}
	if deadline > 0 && ev.TMSeconds > deadline {
		// Penalize in proportion to the violation so downhill moves toward
		// feasibility are visible to the annealer.
		v *= 1 + 10*(ev.TMSeconds-deadline)/deadline
	}
	return v
}

// Anneal searches for a mapping minimizing the configured objective at the
// given scaling vector, returning the evaluation of the best feasible
// mapping found (or the best overall if nothing feasible was seen). It runs
// on the shared engine of internal/search — the same neighborhood and
// cooling as the proposed mapper, so the experiments differ only in
// objective and starting point (Exp:1-3 start from a round-robin scatter).
//
// This is the one-shot form: it builds a throwaway evaluator. The engine
// path (Mapper, driven by mapping.Explore) anneals on the worker's shared
// evaluator via AnnealEval.
func Anneal(g *taskgraph.Graph, p *arch.Platform, scaling []int, cfg Config) (*metrics.Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := metrics.NewEvaluator(g, p, cfg.SER,
		metrics.Options{Iterations: cfg.Iterations, DeadlineSec: cfg.DeadlineSec})
	if err != nil {
		return nil, err
	}
	if err := e.Bind(scaling); err != nil {
		return nil, err
	}
	return AnnealEval(context.Background(), e, cfg, cfg.Seed)
}

// AnnealEval anneals on a prepared evaluator already bound to its scaling
// vector, deriving the walk from seed. The returned evaluation is owned by
// the caller.
func AnnealEval(ctx context.Context, e *metrics.Evaluator, cfg Config, seed int64) (*metrics.Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res, err := search.Anneal(search.Problem{
		Ctx:             ctx,
		Cores:           e.Platform().Cores(),
		Initial:         sched.RoundRobin(e.Graph().N(), e.Platform().Cores()),
		Moves:           cfg.Moves,
		Seed:            seed ^ 0xA22EA1,
		InitialTempFrac: cfg.InitialTempFrac,
		FinalTempFrac:   cfg.FinalTempFrac,
		Evaluator:       e,
		Objective: func(ev *metrics.Evaluation) search.Cost {
			return search.Cost{
				Value:    cost(cfg.Objective, cfg.DeadlineSec, ev),
				Feasible: ev.MeetsDeadline,
			}
		},
	})
	if err != nil {
		return nil, err
	}
	ev, err := e.Evaluate(res.Best)
	if err != nil {
		return nil, err
	}
	return ev.Clone(), nil
}

// Mapper adapts the annealer to the outer Fig. 4 design loop, so Exp:1-3
// run under the same power-minimizing voltage-scaling iteration as the
// proposed technique (the paper applies step 1 to all four experiments).
// Within the loop the walk derives from the combination seed, not
// cfg.Seed, so the baselines parallelize deterministically exactly like the
// proposed mapper.
func Mapper(cfg Config) mapping.MapperFunc {
	return func(mc *mapping.MapContext) (sched.Mapping, *metrics.Evaluation, error) {
		ev, err := AnnealEval(mc.Ctx, mc.Eval, cfg, mc.Seed)
		if err != nil {
			return nil, nil, err
		}
		return ev.Schedule.Mapping, ev, nil
	}
}
