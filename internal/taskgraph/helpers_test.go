package taskgraph

import "testing/quick"

// quickCfg bounds property-test iterations so the suite stays fast.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 40}
}
