package taskgraph

import "seadopt/internal/registers"

// MPEG2CycleUnit is the clock-cycle value of one cost unit in Fig. 2: "all
// costs are multiples of 5.5×10⁶ clock cycles".
const MPEG2CycleUnit = 5_500_000

// Kb is one kilobit (1024 bits), the unit the paper quotes register sizes in.
const Kb = 1024

// MPEG2 returns the 11-task MPEG-2 video decoder task graph of Fig. 2.
//
// Node and edge costs are taken verbatim from the figure (in units of
// 5.5e6 cycles). The register inventory is a reconstruction: the paper
// profiles it with SystemC but only publishes three facts (§III), all of
// which this inventory reproduces exactly:
//
//   - t5 and t6 share ≈6.4 kbit of registers (the block buffer, which the
//     inverse-quantizer also streams into the row IDCT, t7);
//   - t6, t7 and t8 share ≈8 kbit (the coefficient buffer);
//   - splitting {t5,t6} and {t7,t8} across two cores duplicates ≈14.4 kbit
//     (block buffer 6.4 kbit + coefficient buffer 8 kbit, both crossing
//     the cut).
//
// Shared buffers follow the decoder dataflow; per-task locals are sized so
// that 4-core register usage lands near the 80–120 kbit/cycle band Table II
// reports (single-core ≈82 kbit, 4-core mappings ≈94–134 kbit).
func MPEG2() *Graph {
	inv := registers.NewInventory()
	// Shared inter-task buffers (bits). The decoder's heavy state sits in
	// the middle of the pipeline (block/coefficient/IDCT/pixel buffers), so
	// balanced mappings — whose cuts are forced through that region — pay
	// the largest duplication, which is what bends the Γ-vs-T_M curve of
	// Fig. 3(b) upward at the parallel end.
	inv.MustAdd("sh_bitstream", 2*Kb) // bitstream window: t1,t2,t3
	inv.MustAdd("sh_header", 1*Kb)    // sequence/slice header ctx: t1,t2
	inv.MustAdd("sh_mbctx", 3*Kb)     // macroblock context: t2,t3,t4
	inv.MustAdd("sh_mv", 2*Kb)        // motion vectors: t3,t9
	inv.MustAdd("sh_rle", 8*Kb)       // run-length symbol buffer: t4,t5
	inv.MustAdd("sh_block", 6554)     // 6.4 kbit block buffer: t5,t6,t7 (§III)
	inv.MustAdd("sh_coef", 8*Kb)      // coefficient buffer: t6,t7,t8 (§III)
	inv.MustAdd("sh_idct", 10*Kb)     // row-IDCT intermediate: t7,t8
	inv.MustAdd("sh_pred", 8*Kb)      // motion-compensated prediction: t9,t10
	inv.MustAdd("sh_pix", 10*Kb)      // reconstructed pixel strip: t8,t10
	inv.MustAdd("sh_frame", 4*Kb)     // display frame slice: t10,t11
	// Per-task local working registers.
	locals := []int64{
		1024, // t1
		1536, // t2
		1536, // t3
		2048, // t4
		1536, // t5
		2048, // t6
		2048, // t7
		2048, // t8
		3072, // t9
		2048, // t10
		1024, // t11
	}
	names := []string{
		"DecodeHeaderSeq", "DecodeFrameSliceHdr", "DecodeMacroblockSeq",
		"RunLengthDecode", "InverseScan", "InverseQuantize",
		"IDCTRow", "IDCTCol", "MotionCompensate", "AddBlocks",
		"StoreDisplayFrame",
	}
	for i, bits := range locals {
		inv.MustAdd(localRegID(i), bits)
	}

	shared := [][]string{
		{"sh_bitstream", "sh_header"},             // t1
		{"sh_bitstream", "sh_header", "sh_mbctx"}, // t2
		{"sh_bitstream", "sh_mbctx", "sh_mv"},     // t3
		{"sh_mbctx", "sh_rle"},                    // t4
		{"sh_rle", "sh_block"},                    // t5
		{"sh_block", "sh_coef"},                   // t6
		{"sh_block", "sh_coef", "sh_idct"},        // t7
		{"sh_coef", "sh_idct", "sh_pix"},          // t8
		{"sh_mv", "sh_pred"},                      // t9
		{"sh_pred", "sh_pix", "sh_frame"},         // t10
		{"sh_frame"},                              // t11
	}
	costUnits := []int64{10, 15, 16, 31, 25, 39, 63, 61, 48, 41, 21}

	b := NewBuilder("mpeg2-decoder", inv)
	ids := make([]TaskID, len(names))
	for i, name := range names {
		regs := append([]string{localRegID(i)}, shared[i]...)
		ids[i] = b.AddTask(name, costUnits[i]*MPEG2CycleUnit, regs...)
	}
	// Fig. 2 edges (communication costs in units of 5.5e6 cycles). The
	// decoder pipeline is a chain with the motion-compensation branch
	// t3->t9->t10 merging into AddBlocks.
	type ed struct {
		u, v  int
		units int64
	}
	for _, e := range []ed{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 2}, {3, 4, 2}, {4, 5, 3},
		{5, 6, 3}, {6, 7, 4}, {7, 9, 4},
		{2, 8, 2}, {8, 9, 4},
		{9, 10, 4},
	} {
		b.AddEdge(ids[e.u], ids[e.v], e.units*MPEG2CycleUnit)
	}
	return b.MustBuild()
}

func localRegID(taskIndex int) string {
	return "loc_t" + string(rune('1'+taskIndex%9)) + suffix(taskIndex)
}

// suffix disambiguates task indexes ≥ 9 ("loc_t1a" for t10, "loc_t2a" for t11).
func suffix(taskIndex int) string {
	if taskIndex >= 9 {
		return "a"
	}
	return ""
}

// MPEG2Deadline is the real-time constraint of §V: decoding a 437-frame
// tennis bitstream at 29.97 frames per second, expressed in seconds.
const MPEG2Deadline = 437.0 / 29.97 // ≈ 14.581 s

// MPEG2Frames is the number of frames in the tennis bitstream; the task
// costs of Fig. 2 cover the full stream, so one frame is cost/MPEG2Frames.
const MPEG2Frames = 437
