package taskgraph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// roundTripGraphs are the workloads of the paper's evaluation: the profiled
// MPEG-2 decoder, the Fig. 8 worked example, and a spread of §V random
// graphs.
func roundTripGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	graphs := map[string]*Graph{
		"mpeg2": MPEG2(),
		"fig8":  Fig8(),
	}
	for _, n := range []int{8, 20, 60} {
		for seed := int64(1); seed <= 4; seed++ {
			g, err := Random(DefaultRandomConfig(n), seed)
			if err != nil {
				t.Fatalf("Random(%d, %d): %v", n, seed, err)
			}
			graphs[fmt.Sprintf("random-%d-%d", n, seed)] = g
		}
	}
	return graphs
}

// TestJSONRoundTripByteIdentical is the export-format contract: for every
// evaluation workload, MarshalJSON → FromJSON → MarshalJSON reproduces the
// exact bytes, and a second decode generation stays stable too. The service
// cache keys on these bytes, so any drift here silently splits cache
// identities.
func TestJSONRoundTripByteIdentical(t *testing.T) {
	for name, g := range roundTripGraphs(t) {
		t.Run(name, func(t *testing.T) {
			j1, err := g.MarshalJSON()
			if err != nil {
				t.Fatalf("MarshalJSON: %v", err)
			}
			g2, err := FromJSON(j1)
			if err != nil {
				t.Fatalf("FromJSON: %v", err)
			}
			j2, err := g2.MarshalJSON()
			if err != nil {
				t.Fatalf("re-MarshalJSON: %v", err)
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("round trip not byte-identical:\n first: %s\nsecond: %s", j1, j2)
			}
			g3, err := FromJSON(j2)
			if err != nil {
				t.Fatalf("second FromJSON: %v", err)
			}
			j3, err := g3.MarshalJSON()
			if err != nil {
				t.Fatalf("third MarshalJSON: %v", err)
			}
			if !bytes.Equal(j2, j3) {
				t.Fatalf("second generation drifted")
			}

			// Semantic spot checks besides the byte identity.
			if g2.N() != g.N() || len(g2.Edges()) != len(g.Edges()) {
				t.Fatalf("reconstructed shape %d tasks/%d edges, want %d/%d",
					g2.N(), len(g2.Edges()), g.N(), len(g.Edges()))
			}
			if got, want := g2.Inventory().TotalBits(), g.Inventory().TotalBits(); got != want {
				t.Fatalf("reconstructed inventory %d bits, want %d", got, want)
			}
			if got, want := g2.CriticalPathCycles(), g.CriticalPathCycles(); got != want {
				t.Fatalf("reconstructed critical path %d cycles, want %d", got, want)
			}
		})
	}
}

// TestMarshalJSONOrderInvariant: two documents describing the same DAG with
// registers and edges declared in different orders encode identically, so
// they share a ProblemKey downstream.
func TestMarshalJSONOrderInvariant(t *testing.T) {
	const docA = `{"name":"g","registers":[{"id":"rx","bits":8},{"id":"ra","bits":16}],
		"tasks":[{"name":"a","cycles":5,"registers":["rx","ra"]},
		         {"name":"b","cycles":5,"registers":[]},
		         {"name":"c","cycles":5,"registers":[]}],
		"edges":[{"from":0,"to":2,"cycles":3},{"from":0,"to":1,"cycles":2},{"from":1,"to":2,"cycles":1}]}`
	const docB = `{"name":"g","registers":[{"id":"ra","bits":16},{"id":"rx","bits":8}],
		"tasks":[{"name":"a","cycles":5,"registers":["ra","rx"]},
		         {"name":"b","cycles":5,"registers":[]},
		         {"name":"c","cycles":5,"registers":[]}],
		"edges":[{"from":1,"to":2,"cycles":1},{"from":0,"to":1,"cycles":2},{"from":0,"to":2,"cycles":3}]}`
	ga, err := FromJSON([]byte(docA))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := FromJSON([]byte(docB))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := ga.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := gb.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("declaration order leaked into the canonical encoding:\n%s\nvs\n%s", ja, jb)
	}
}

func TestGraphUnmarshalJSONPointer(t *testing.T) {
	j, err := MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var g Graph
	if err := json.Unmarshal(j, &g); err != nil {
		t.Fatalf("json.Unmarshal(*Graph): %v", err)
	}
	if g.N() != MPEG2().N() {
		t.Fatalf("unmarshaled %d tasks, want %d", g.N(), MPEG2().N())
	}
	j2, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, j2) {
		t.Fatal("UnmarshalJSON round trip not byte-identical")
	}
}

func TestFromJSONRejects(t *testing.T) {
	cases := map[string]string{
		"cycle": `{"name":"c","registers":[],"tasks":[{"name":"a","cycles":1,"registers":[]},
			{"name":"b","cycles":1,"registers":[]}],
			"edges":[{"from":0,"to":1,"cycles":0},{"from":1,"to":0,"cycles":0}]}`,
		"dangling edge": `{"name":"d","registers":[],"tasks":[{"name":"a","cycles":1,"registers":[]}],
			"edges":[{"from":0,"to":7,"cycles":0}]}`,
		"negative edge index": `{"name":"d","registers":[],"tasks":[{"name":"a","cycles":1,"registers":[]}],
			"edges":[{"from":-1,"to":0,"cycles":0}]}`,
		"duplicate register": `{"name":"r","registers":[{"id":"x","bits":8},{"id":"x","bits":8}],
			"tasks":[{"name":"a","cycles":1,"registers":["x"]}],"edges":[]}`,
		"unknown register": `{"name":"r","registers":[],
			"tasks":[{"name":"a","cycles":1,"registers":["ghost"]}],"edges":[]}`,
		"non-positive cost": `{"name":"r","registers":[],
			"tasks":[{"name":"a","cycles":0,"registers":[]}],"edges":[]}`,
		"not json": `digraph g { a -> b; }`,
	}
	for name, doc := range cases {
		if _, err := FromJSON([]byte(doc)); err == nil {
			t.Errorf("%s: FromJSON accepted invalid input", name)
		}
	}
}
