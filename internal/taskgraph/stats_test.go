package taskgraph

import (
	"strings"
	"testing"

	"seadopt/internal/registers"
)

func TestComputeStatsChain(t *testing.T) {
	inv := registers.NewInventory()
	inv.MustAdd("r", 100)
	b := NewBuilder("chain", inv)
	a := b.AddTask("a", 10, "r")
	bb := b.AddTask("b", 20, "r")
	c := b.AddTask("c", 30, "r")
	b.AddEdge(a, bb, 5)
	b.AddEdge(bb, c, 5)
	g := b.MustBuild()

	s := g.ComputeStats()
	if s.Tasks != 3 || s.Edges != 2 || s.Roots != 1 || s.Leaves != 1 {
		t.Errorf("shape wrong: %+v", s)
	}
	if s.Depth != 3 || s.Width != 1 {
		t.Errorf("depth/width = %d/%d, want 3/1", s.Depth, s.Width)
	}
	if s.TotalComputeCycles != 60 || s.CriticalPathCycles != 70 {
		t.Errorf("cycles = %d/%d", s.TotalComputeCycles, s.CriticalPathCycles)
	}
	// Pure chain: parallelism < 1 because comm inflates the critical path.
	if s.Parallelism >= 1 {
		t.Errorf("chain parallelism = %v, want < 1", s.Parallelism)
	}
	if s.RegisterBits != 100 {
		t.Errorf("register bits = %d", s.RegisterBits)
	}
}

func TestComputeStatsDiamond(t *testing.T) {
	inv := registers.NewInventory()
	inv.MustAdd("r", 100)
	b := NewBuilder("diamond", inv)
	a := b.AddTask("a", 10, "r")
	l := b.AddTask("l", 10, "r")
	rr := b.AddTask("r", 10, "r")
	d := b.AddTask("d", 10, "r")
	b.AddEdge(a, l, 0)
	b.AddEdge(a, rr, 0)
	b.AddEdge(l, d, 0)
	b.AddEdge(rr, d, 0)
	g := b.MustBuild()

	s := g.ComputeStats()
	if s.Depth != 3 || s.Width != 2 {
		t.Errorf("depth/width = %d/%d, want 3/2", s.Depth, s.Width)
	}
	// 40 cycles total over a 30-cycle critical path.
	if !almost(s.Parallelism, 4.0/3.0) {
		t.Errorf("parallelism = %v, want 4/3", s.Parallelism)
	}
	if s.CommToComputeRatio != 0 {
		t.Errorf("comm ratio = %v, want 0", s.CommToComputeRatio)
	}
}

func TestStatsOnStockGraphs(t *testing.T) {
	mp := MPEG2().ComputeStats()
	if mp.Tasks != 11 || mp.Depth < 9 {
		t.Errorf("MPEG-2 stats off: %+v", mp)
	}
	// The decoder is a near-chain: parallelism must be modest.
	if mp.Parallelism > 1.5 {
		t.Errorf("MPEG-2 parallelism = %v, suspiciously high", mp.Parallelism)
	}
	// The layered random generator bounds width by MaxWidth (4 by default),
	// so parallelism stays in the range that makes Table III's deadline
	// pressure real.
	for _, n := range []int{20, 60, 100} {
		rs := MustRandom(DefaultRandomConfig(n), int64(n)).ComputeStats()
		if rs.Width > DefaultRandomConfig(n).MaxWidth {
			t.Errorf("random-%d width %d exceeds MaxWidth", n, rs.Width)
		}
		if rs.Parallelism < 1.0 || rs.Parallelism > 4.5 {
			t.Errorf("random-%d parallelism = %v outside the intended band", n, rs.Parallelism)
		}
	}
	out := mp.String()
	for _, want := range []string{"tasks 11", "parallelism", "kbit"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q:\n%s", want, out)
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
