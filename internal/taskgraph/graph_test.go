package taskgraph

import (
	"testing"

	"seadopt/internal/registers"
)

func testInventory() *registers.Inventory {
	inv := registers.NewInventory()
	for _, id := range []string{"a", "b", "c", "d"} {
		inv.MustAdd(id, 1024)
	}
	return inv
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("g", testInventory())
	t0 := b.AddTask("alpha", 100, "a")
	t1 := b.AddTask("beta", 200, "a", "b")
	t2 := b.AddTask("gamma", 300, "c")
	b.AddEdge(t0, t1, 10)
	b.AddEdge(t0, t2, 20)
	b.AddEdge(t1, t2, 30)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if g.Name() != "g" {
		t.Errorf("Name = %q", g.Name())
	}
	if got := g.Task(t1).Cycles; got != 200 {
		t.Errorf("task cost = %d, want 200", got)
	}
	if cost, ok := g.EdgeCost(t0, t2); !ok || cost != 20 {
		t.Errorf("EdgeCost(t0,t2) = %d,%v", cost, ok)
	}
	if _, ok := g.EdgeCost(t2, t0); ok {
		t.Error("reverse edge should not exist")
	}
	if got := g.TotalComputeCycles(); got != 600 {
		t.Errorf("TotalComputeCycles = %d, want 600", got)
	}
	if got := g.TotalCommCycles(); got != 60 {
		t.Errorf("TotalCommCycles = %d, want 60", got)
	}
	roots, leaves := g.Roots(), g.Leaves()
	if len(roots) != 1 || roots[0] != t0 {
		t.Errorf("Roots = %v", roots)
	}
	if len(leaves) != 1 || leaves[0] != t2 {
		t.Errorf("Leaves = %v", leaves)
	}
	if len(g.Edges()) != 3 {
		t.Errorf("Edges() returned %d edges", len(g.Edges()))
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"nil inventory", func() (*Graph, error) {
			b := NewBuilder("g", nil)
			b.AddTask("x", 1)
			return b.Build()
		}},
		{"empty graph", func() (*Graph, error) {
			return NewBuilder("g", testInventory()).Build()
		}},
		{"empty task name", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			b.AddTask("", 1)
			return b.Build()
		}},
		{"non-positive cost", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			b.AddTask("x", 0)
			return b.Build()
		}},
		{"unknown register", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			b.AddTask("x", 1, "nonexistent")
			return b.Build()
		}},
		{"self edge", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			x := b.AddTask("x", 1)
			b.AddEdge(x, x, 1)
			return b.Build()
		}},
		{"edge to undefined task", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			x := b.AddTask("x", 1)
			b.AddEdge(x, TaskID(99), 1)
			return b.Build()
		}},
		{"negative edge cost", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			x := b.AddTask("x", 1)
			y := b.AddTask("y", 1)
			b.AddEdge(x, y, -1)
			return b.Build()
		}},
		{"duplicate edge", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			x := b.AddTask("x", 1)
			y := b.AddTask("y", 1)
			b.AddEdge(x, y, 1)
			b.AddEdge(x, y, 2)
			return b.Build()
		}},
		{"cycle", func() (*Graph, error) {
			b := NewBuilder("g", testInventory())
			x := b.AddTask("x", 1)
			y := b.AddTask("y", 1)
			z := b.AddTask("z", 1)
			b.AddEdge(x, y, 1)
			b.AddEdge(y, z, 1)
			b.AddEdge(z, x, 1)
			return b.Build()
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", tc.name)
		}
	}
}

func TestTopoOrderValid(t *testing.T) {
	g := MPEG2()
	order := g.TopoOrder()
	if len(order) != g.N() {
		t.Fatalf("topo order has %d tasks, want %d", len(order), g.N())
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
}

func TestBLevelsAndCriticalPath(t *testing.T) {
	//      t0(10) --5--> t1(20) --5--> t3(40)
	//          \--1--> t2(30) --1--/
	b := NewBuilder("g", testInventory())
	t0 := b.AddTask("t0", 10)
	t1 := b.AddTask("t1", 20)
	t2 := b.AddTask("t2", 30)
	t3 := b.AddTask("t3", 40)
	b.AddEdge(t0, t1, 5)
	b.AddEdge(t0, t2, 1)
	b.AddEdge(t1, t3, 5)
	b.AddEdge(t2, t3, 1)
	g := b.MustBuild()

	bl := g.BLevels()
	if bl[t3] != 40 {
		t.Errorf("blevel(t3) = %d, want 40", bl[t3])
	}
	if bl[t2] != 71 { // 30 + 1 + 40
		t.Errorf("blevel(t2) = %d, want 71", bl[t2])
	}
	if bl[t1] != 65 { // 20 + 5 + 40
		t.Errorf("blevel(t1) = %d, want 65", bl[t1])
	}
	if bl[t0] != 82 { // 10 + max(5+65, 1+71) = 10 + 72
		t.Errorf("blevel(t0) = %d, want 82", bl[t0])
	}
	if got := g.CriticalPathCycles(); got != 82 {
		t.Errorf("critical path = %d, want 82", got)
	}
}

func TestDescendants(t *testing.T) {
	g := MPEG2()
	desc := g.DescendantsOf(0) // t1 reaches everything
	if len(desc) != g.N()-1 {
		t.Errorf("descendants of t1 = %d tasks, want %d", len(desc), g.N()-1)
	}
	leaf := g.Leaves()[0]
	if len(g.DescendantsOf(leaf)) != 0 {
		t.Error("leaf should have no descendants")
	}
}

func TestMPEG2MatchesPaper(t *testing.T) {
	g := MPEG2()
	if g.N() != 11 {
		t.Fatalf("MPEG2 has %d tasks, want 11", g.N())
	}
	wantUnits := []int64{10, 15, 16, 31, 25, 39, 63, 61, 48, 41, 21}
	for i, u := range wantUnits {
		if got := g.Task(TaskID(i)).Cycles; got != u*MPEG2CycleUnit {
			t.Errorf("task %d cost = %d, want %d", i, got, u*MPEG2CycleUnit)
		}
	}
	if len(g.Edges()) != 11 {
		t.Errorf("MPEG2 has %d edges, want 11", len(g.Edges()))
	}
	// §III sharing facts. Tasks are 0-indexed: t5 is index 4.
	inv := g.Inventory()
	t5 := g.Task(4).Registers
	t6 := g.Task(5).Registers
	t7 := g.Task(6).Registers
	t8 := g.Task(7).Registers
	if got := inv.SharedBits(t5, t6); got != 6554 {
		t.Errorf("t5/t6 shared bits = %d, want 6554 (≈6.4 kbit)", got)
	}
	tri := registers.Intersect(registers.Intersect(t6, t7), t8)
	if got := inv.SetBits(tri); got != 8*Kb {
		t.Errorf("t6/t7/t8 shared bits = %d, want %d (8 kbit)", got, 8*Kb)
	}
	// Duplication across the {t5,t6} | {t7,t8} cut: registers used on both
	// sides get a copy on each core. Must be ≈14.4 kbit (6.4 + 8).
	left := registers.Union(t5, t6)
	right := registers.Union(t7, t8)
	if got := inv.SharedBits(left, right); got != 6554+8*Kb {
		t.Errorf("cut duplication = %d bits, want %d (≈14.4 kbit)", got, 6554+8*Kb)
	}
	// Whole-app register usage on one core should sit near the Table II band.
	all := g.UnionRegisters(g.TopoOrder())
	bits := inv.SetBits(all)
	if bits < 70*Kb || bits > 130*Kb {
		t.Errorf("single-core register usage = %d bits (%.1f kbit), want 70-130 kbit", bits, float64(bits)/Kb)
	}
}

func TestFig8MatchesPaper(t *testing.T) {
	g := Fig8()
	if g.N() != 6 {
		t.Fatalf("Fig8 has %d tasks, want 6", g.N())
	}
	wantUnits := []int64{5, 4, 4, 5, 6, 4}
	for i, u := range wantUnits {
		if got := g.Task(TaskID(i)).Cycles; got != u*Fig8CycleUnit {
			t.Errorf("t%d cost = %d, want %d", i+1, got, u*Fig8CycleUnit)
		}
	}
	inv := g.Inventory()
	wantSizes := map[string]int64{
		"r1": 4096, "r2": 2048, "r3": 2048, "r4": 5120, "r5": 4096,
		"r6": 2048, "r7": 2048, "r8": 4096, "r9": 2048,
	}
	for id, bits := range wantSizes {
		if got := inv.Bits(id); got != bits {
			t.Errorf("register %s = %d bits, want %d", id, got, bits)
		}
	}
	// Register table of Fig. 8(c).
	wantRegs := [][]string{
		{"r1", "r2", "r3"},
		{"r2", "r4", "r5", "r6"},
		{"r4", "r5", "r6"},
		{"r5", "r6", "r7"},
		{"r6", "r7", "r8"},
		{"r7", "r8", "r9"},
	}
	for i, regs := range wantRegs {
		if !g.Task(TaskID(i)).Registers.Equal(registers.NewSet(regs...)) {
			t.Errorf("t%d registers = %v, want %v", i+1, g.Task(TaskID(i)).Registers.IDs(), regs)
		}
	}
	// Narrative check: t1's dependents are exactly {t2, t3}.
	succ := g.Succs(0)
	if len(succ) != 2 {
		t.Fatalf("t1 has %d dependents, want 2", len(succ))
	}
	got := map[TaskID]bool{succ[0].To: true, succ[1].To: true}
	if !got[1] || !got[2] {
		t.Errorf("t1 dependents = %v, want {t2,t3}", succ)
	}
}

func TestUnionRegisters(t *testing.T) {
	g := Fig8()
	u := g.UnionRegisters([]TaskID{0, 1}) // t1 ∪ t2 = r1..r6
	want := registers.NewSet("r1", "r2", "r3", "r4", "r5", "r6")
	if !u.Equal(want) {
		t.Errorf("union = %v, want %v", u.IDs(), want.IDs())
	}
	if got := g.Inventory().SetBits(u); got != 4096+2048+2048+5120+4096+2048 {
		t.Errorf("union bits = %d", got)
	}
}
