package taskgraph

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandomDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig(40)
	a := MustRandom(cfg, 7)
	b := MustRandom(cfg, 7)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Error("same (cfg, seed) produced different graphs")
	}
	c := MustRandom(cfg, 8)
	cj, _ := json.Marshal(c)
	if string(aj) == string(cj) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomRespectsConfig(t *testing.T) {
	for _, n := range []int{20, 40, 60, 80, 100} {
		cfg := DefaultRandomConfig(n)
		g := MustRandom(cfg, int64(n))
		if g.N() != n {
			t.Fatalf("N=%d: got %d tasks", n, g.N())
		}
		for _, task := range g.Tasks() {
			units := task.Cycles / cfg.CycleUnit
			if task.Cycles%cfg.CycleUnit != 0 || units < cfg.CompMin || units > cfg.CompMax {
				t.Errorf("N=%d task %s: cost %d outside [%d,%d] units",
					n, task.Name, task.Cycles, cfg.CompMin, cfg.CompMax)
			}
			if task.Registers.Len() == 0 {
				t.Errorf("N=%d task %s: empty register footprint", n, task.Name)
			}
		}
		maxDep := n / 2
		for _, task := range g.Tasks() {
			if d := len(g.Succs(task.ID)); d > maxDep {
				t.Errorf("N=%d task %s: %d dependents exceeds N/2=%d", n, task.Name, d, maxDep)
			}
		}
		for _, e := range g.Edges() {
			units := e.Cycles / cfg.CycleUnit
			if e.Cycles%cfg.CycleUnit != 0 || units < cfg.CommMin || units > cfg.CommMax {
				t.Errorf("N=%d edge %d->%d: cost %d outside range", n, e.From, e.To, e.Cycles)
			}
		}
		// Weak connectivity: every non-root task has a predecessor.
		for _, task := range g.Tasks() {
			if task.ID != 0 && len(g.Preds(task.ID)) == 0 && len(g.Succs(task.ID)) == 0 {
				t.Errorf("N=%d task %s: isolated", n, task.Name)
			}
		}
	}
}

func TestRandomEdgesCreateSharedBuffers(t *testing.T) {
	g := MustRandom(DefaultRandomConfig(30), 3)
	inv := g.Inventory()
	for _, e := range g.Edges() {
		from := g.Task(e.From).Registers
		to := g.Task(e.To).Registers
		if inv.SharedBits(from, to) == 0 {
			t.Errorf("edge %d->%d: endpoints share no register bits", e.From, e.To)
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	bad := []RandomConfig{
		{}, // zero value
		func() RandomConfig { c := DefaultRandomConfig(1); return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.CompMin = 0; return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.CompMax = 0; return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.CommMin = -1; return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.RegMinBits = 0; return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.RegMaxBits = 1; return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.CycleUnit = 0; return c }(),
		func() RandomConfig { c := DefaultRandomConfig(10); c.MeanDependents = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Random(cfg, 1); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

// Property: every generated random graph is a valid DAG whose topological
// order covers all tasks and respects every edge.
func TestRandomAlwaysDAG(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%60
		g, err := Random(DefaultRandomConfig(n), seed)
		if err != nil {
			return false
		}
		order := g.TopoOrder()
		if len(order) != n {
			return false
		}
		pos := make(map[TaskID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestRandomDeadline(t *testing.T) {
	if got := RandomDeadline(60); got != 30 {
		t.Errorf("RandomDeadline(60) = %v s, want 30 (paper: 1000·N/2 ms)", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, g := range []*Graph{MPEG2(), Fig8(), MustRandom(DefaultRandomConfig(25), 11)} {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("%s: marshal: %v", g.Name(), err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s: FromJSON: %v", g.Name(), err)
		}
		if back.N() != g.N() || len(back.Edges()) != len(g.Edges()) {
			t.Fatalf("%s: round trip changed shape", g.Name())
		}
		for i := 0; i < g.N(); i++ {
			a, b := g.Task(TaskID(i)), back.Task(TaskID(i))
			if a.Name != b.Name || a.Cycles != b.Cycles || !a.Registers.Equal(b.Registers) {
				t.Fatalf("%s: task %d mismatch after round trip", g.Name(), i)
			}
		}
		if back.Inventory().TotalBits() != g.Inventory().TotalBits() {
			t.Fatalf("%s: inventory mismatch after round trip", g.Name())
		}
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := FromJSON([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := FromJSON([]byte(`{"name":"x","tasks":[],"edges":[]}`)); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDOT(t *testing.T) {
	dot := Fig8().DOT()
	for _, want := range []string{"digraph", "t0 -> t1", "t4 -> t5", "t1 ["} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
