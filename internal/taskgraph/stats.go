package taskgraph

import (
	"fmt"
	"strings"
)

// Stats summarizes the structural properties of a task graph that drive the
// design-space behaviour: depth bounds achievable speedup, width bounds
// useful core counts, and the parallelism ratio predicts where the paper's
// architecture-allocation curves (Table III) flatten.
type Stats struct {
	Tasks  int
	Edges  int
	Roots  int
	Leaves int
	// Depth is the number of tasks on the longest dependency chain.
	Depth int
	// Width is the maximum number of tasks at equal dependency depth.
	Width int
	// TotalComputeCycles and CriticalPathCycles are in clock cycles.
	TotalComputeCycles int64
	CriticalPathCycles int64
	// Parallelism = total compute / critical path: the asymptotic speedup
	// bound of the graph on infinitely many cores.
	Parallelism float64
	// CommToComputeRatio is total communication cycles over compute cycles.
	CommToComputeRatio float64
	// AvgOutDegree is the mean number of dependents per task.
	AvgOutDegree float64
	// RegisterBits is the total register inventory size.
	RegisterBits int64
}

// ComputeStats analyses the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Tasks:              g.N(),
		Edges:              len(g.Edges()),
		Roots:              len(g.Roots()),
		Leaves:             len(g.Leaves()),
		TotalComputeCycles: g.TotalComputeCycles(),
		CriticalPathCycles: g.CriticalPathCycles(),
		RegisterBits:       g.Inventory().TotalBits(),
	}
	// Depth per task = 1 + max depth of predecessors, in topo order.
	depth := make([]int, g.N())
	levelCount := map[int]int{}
	for _, t := range g.TopoOrder() {
		d := 1
		for _, e := range g.Preds(t) {
			if depth[e.From]+1 > d {
				d = depth[e.From] + 1
			}
		}
		depth[t] = d
		levelCount[d]++
		if d > s.Depth {
			s.Depth = d
		}
	}
	for _, n := range levelCount {
		if n > s.Width {
			s.Width = n
		}
	}
	if s.CriticalPathCycles > 0 {
		s.Parallelism = float64(s.TotalComputeCycles) / float64(s.CriticalPathCycles)
	}
	if s.TotalComputeCycles > 0 {
		s.CommToComputeRatio = float64(g.TotalCommCycles()) / float64(s.TotalComputeCycles)
	}
	if s.Tasks > 0 {
		s.AvgOutDegree = float64(s.Edges) / float64(s.Tasks)
	}
	return s
}

// String renders a compact multi-line report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tasks %d, edges %d (avg out-degree %.2f), roots %d, leaves %d\n",
		s.Tasks, s.Edges, s.AvgOutDegree, s.Roots, s.Leaves)
	fmt.Fprintf(&sb, "depth %d, width %d, parallelism %.2f\n", s.Depth, s.Width, s.Parallelism)
	fmt.Fprintf(&sb, "compute %.3g cycles, critical path %.3g cycles, comm/compute %.1f%%\n",
		float64(s.TotalComputeCycles), float64(s.CriticalPathCycles), s.CommToComputeRatio*100)
	fmt.Fprintf(&sb, "register inventory %.1f kbit", float64(s.RegisterBits)/1024.0)
	return sb.String()
}
