package taskgraph

import (
	"encoding/json"
	"fmt"
	"strings"

	"seadopt/internal/registers"
)

// DOT renders the graph in Graphviz dot syntax, with computation costs on
// nodes and communication costs on edges.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.name)
	sb.WriteString("  rankdir=TB;\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&sb, "  t%d [label=\"%s\\n%d cyc\"];\n", t.ID, t.Name, t.Cycles)
	}
	for _, es := range g.succ {
		for _, e := range es {
			fmt.Fprintf(&sb, "  t%d -> t%d [label=\"%d\"];\n", e.From, e.To, e.Cycles)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Name      string         `json:"name"`
	Registers []jsonRegister `json:"registers"`
	Tasks     []jsonTask     `json:"tasks"`
	Edges     []jsonEdge     `json:"edges"`
}

type jsonRegister struct {
	ID   string `json:"id"`
	Bits int64  `json:"bits"`
}

type jsonTask struct {
	Name      string   `json:"name"`
	Cycles    int64    `json:"cycles"`
	Registers []string `json:"registers"`
}

type jsonEdge struct {
	From   int   `json:"from"`
	To     int   `json:"to"`
	Cycles int64 `json:"cycles"`
}

// MarshalJSON serializes the graph, including its register inventory, into a
// self-contained JSON document.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, id := range g.inventory.IDs() {
		r, _ := g.inventory.Get(id)
		jg.Registers = append(jg.Registers, jsonRegister{ID: r.ID, Bits: r.Bits})
	}
	for _, t := range g.tasks {
		jg.Tasks = append(jg.Tasks, jsonTask{Name: t.Name, Cycles: t.Cycles, Registers: t.Registers.IDs()})
	}
	for _, es := range g.succ {
		for _, e := range es {
			jg.Edges = append(jg.Edges, jsonEdge{From: int(e.From), To: int(e.To), Cycles: e.Cycles})
		}
	}
	return json.Marshal(jg)
}

// FromJSON reconstructs a Graph from the output of MarshalJSON.
func FromJSON(data []byte) (*Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("taskgraph: decoding graph JSON: %w", err)
	}
	inv := registers.NewInventory()
	for _, r := range jg.Registers {
		if err := inv.Add(r.ID, r.Bits); err != nil {
			return nil, err
		}
	}
	b := NewBuilder(jg.Name, inv)
	for _, t := range jg.Tasks {
		b.AddTask(t.Name, t.Cycles, t.Registers...)
	}
	for _, e := range jg.Edges {
		b.AddEdge(TaskID(e.From), TaskID(e.To), e.Cycles)
	}
	return b.Build()
}
