package taskgraph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"seadopt/internal/registers"
)

// DOT renders the graph in Graphviz dot syntax, with computation costs on
// nodes and communication costs on edges.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.name)
	sb.WriteString("  rankdir=TB;\n")
	for _, t := range g.tasks {
		fmt.Fprintf(&sb, "  t%d [label=\"%s\\n%d cyc\"];\n", t.ID, t.Name, t.Cycles)
	}
	for _, es := range g.succ {
		for _, e := range es {
			fmt.Fprintf(&sb, "  t%d -> t%d [label=\"%d\"];\n", e.From, e.To, e.Cycles)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Name      string         `json:"name"`
	Registers []jsonRegister `json:"registers"`
	Tasks     []jsonTask     `json:"tasks"`
	Edges     []jsonEdge     `json:"edges"`
}

type jsonRegister struct {
	ID   string `json:"id"`
	Bits int64  `json:"bits"`
}

type jsonTask struct {
	Name      string   `json:"name"`
	Cycles    int64    `json:"cycles"`
	Registers []string `json:"registers"`
}

type jsonEdge struct {
	From   int   `json:"from"`
	To     int   `json:"to"`
	Cycles int64 `json:"cycles"`
}

// MarshalJSON serializes the graph, including its register inventory, into a
// self-contained JSON document.
//
// The encoding is canonical: registers sorted by ID, tasks in ID order with
// sorted register footprints, edges sorted by (from, to), and empty
// collections encode as [] rather than null. Marshaling a graph
// reconstructed by FromJSON reproduces the original bytes, and two graphs
// that differ only in register-declaration or edge-declaration order encode
// identically — which is what content-addressed caching keys rely on. Task
// numbering is semantic (TaskIDs are positional), so task order is the one
// dimension identity is sensitive to.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{
		Name:      g.name,
		Registers: make([]jsonRegister, 0, g.inventory.Len()),
		Tasks:     make([]jsonTask, 0, len(g.tasks)),
		Edges:     make([]jsonEdge, 0),
	}
	regIDs := g.inventory.IDs()
	sort.Strings(regIDs)
	for _, id := range regIDs {
		r, _ := g.inventory.Get(id)
		jg.Registers = append(jg.Registers, jsonRegister{ID: r.ID, Bits: r.Bits})
	}
	for _, t := range g.tasks {
		regs := t.Registers.IDs()
		if regs == nil {
			regs = []string{}
		}
		jg.Tasks = append(jg.Tasks, jsonTask{Name: t.Name, Cycles: t.Cycles, Registers: regs})
	}
	for _, es := range g.succ {
		for _, e := range es {
			jg.Edges = append(jg.Edges, jsonEdge{From: int(e.From), To: int(e.To), Cycles: e.Cycles})
		}
	}
	sort.Slice(jg.Edges, func(i, j int) bool {
		if jg.Edges[i].From != jg.Edges[j].From {
			return jg.Edges[i].From < jg.Edges[j].From
		}
		return jg.Edges[i].To < jg.Edges[j].To
	})
	return json.Marshal(jg)
}

// FromJSON reconstructs a Graph from the output of MarshalJSON. The result
// passes the full Builder validation (well-formed costs, no duplicate or
// dangling edges, acyclic), and re-marshaling it reproduces the canonical
// form of the input byte-for-byte.
func FromJSON(data []byte) (*Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("taskgraph: decoding graph JSON: %w", err)
	}
	inv := registers.NewInventory()
	for _, r := range jg.Registers {
		if err := inv.Add(r.ID, r.Bits); err != nil {
			return nil, fmt.Errorf("taskgraph: decoding graph JSON: %w", err)
		}
	}
	b := NewBuilder(jg.Name, inv)
	for i, t := range jg.Tasks {
		if int(b.AddTask(t.Name, t.Cycles, t.Registers...)) != i {
			return nil, fmt.Errorf("taskgraph: decoding graph JSON: task %d misnumbered", i)
		}
	}
	for _, e := range jg.Edges {
		if e.From < 0 || e.From >= len(jg.Tasks) || e.To < 0 || e.To >= len(jg.Tasks) {
			return nil, fmt.Errorf("taskgraph: decoding graph JSON: edge %d->%d references a task outside [0,%d)",
				e.From, e.To, len(jg.Tasks))
		}
		b.AddEdge(TaskID(e.From), TaskID(e.To), e.Cycles)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("taskgraph: decoding graph JSON: %w", err)
	}
	return g, nil
}

// UnmarshalJSON lets a Graph deserialize in place (json.Unmarshal into
// *Graph), so wire structs can embed graphs directly. It is FromJSON with
// pointer-receiver plumbing.
func (g *Graph) UnmarshalJSON(data []byte) error {
	gg, err := FromJSON(data)
	if err != nil {
		return err
	}
	*g = *gg
	return nil
}
