package taskgraph

import (
	"fmt"
	"math/rand"

	"seadopt/internal/registers"
)

// RandomCycleUnit is the clock-cycle value of one cost unit for the random
// task graphs of §V: "all costs as multiples of 3.5×10⁶ clock cycles".
const RandomCycleUnit = 3_500_000

// RandomConfig parameterizes the random task-graph generator exactly as the
// paper's evaluation section describes. The zero value is not useful; start
// from DefaultRandomConfig.
type RandomConfig struct {
	N int // number of tasks

	// Computation cost per task: uniform integer in [CompMin, CompMax],
	// in units of CycleUnit. Paper: 1..30.
	CompMin, CompMax int64
	// Communication cost per edge: uniform integer in [CommMin, CommMax],
	// in units of CycleUnit. Paper: 1..10.
	CommMin, CommMax int64
	// Local register footprint per task: uniform in [RegMinBits, RegMaxBits].
	// Paper: 1 kbit .. 5 kbit.
	RegMinBits, RegMaxBits int64
	// Out-degree per task: exponential with MeanDependents, truncated to
	// [0, N/2] (paper: "number of dependents was found by exponential
	// distribution between 0 to N/2").
	MeanDependents float64
	// MaxWidth bounds the parallelism of the generated graph: tasks are
	// laid out in pipeline layers of 1..MaxWidth tasks (TGFF-style), which
	// reproduces the deadline pressure visible in the paper's Table III
	// power numbers (≈10 mW at two cores means the two-core designs run
	// near nominal voltage, i.e. the graphs are far from embarrassingly
	// parallel).
	MaxWidth int
	// SharedBufferBitsPerCommUnit sizes the shared buffer register created
	// for every edge (the data exchanged between the endpoint tasks):
	// comm-units × this many bits. This is the reconstruction that gives
	// random graphs the same R-vs-T_M trade-off mechanism as the profiled
	// MPEG-2 decoder (shared state duplicated across cut edges).
	SharedBufferBitsPerCommUnit int64

	CycleUnit int64 // cycles per cost unit
}

// DefaultRandomConfig returns the paper's §V parameterization for N tasks.
func DefaultRandomConfig(n int) RandomConfig {
	return RandomConfig{
		N:                           n,
		CompMin:                     1,
		CompMax:                     30,
		CommMin:                     1,
		CommMax:                     10,
		RegMinBits:                  1 * Kb,
		RegMaxBits:                  5 * Kb,
		MeanDependents:              1.5,
		MaxWidth:                    4,
		SharedBufferBitsPerCommUnit: 512,
		CycleUnit:                   RandomCycleUnit,
	}
}

// RandomDeadline returns the paper's deadline for an N-task random graph:
// 1000×N/2 ms, in seconds.
func RandomDeadline(n int) float64 { return float64(n) / 2.0 }

// Random generates a random application task graph per cfg using the given
// seed. The same (cfg, seed) pair always yields the same graph.
//
// Construction: tasks are laid out in pipeline layers of 1..MaxWidth tasks;
// every non-first-layer task depends on one or two tasks of the previous
// layer (bounding parallelism and anchoring every later task to the first
// layer — though a first-layer task that no one draws as a predecessor can
// still end up isolated, so weak connectivity is likely but not guaranteed),
// and each task additionally draws an exponential number of extra dependents
// among the tasks of the next few layers, truncated to N/2 (the paper's
// distribution). Each task has a private register; each edge additionally
// creates a buffer register shared by its two endpoint tasks — the same
// duplication mechanism the profiled MPEG-2 inventory exhibits.
func Random(cfg RandomConfig, seed int64) (*Graph, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("taskgraph: random graph needs N >= 2, got %d", cfg.N)
	}
	if cfg.CompMin <= 0 || cfg.CompMax < cfg.CompMin {
		return nil, fmt.Errorf("taskgraph: bad computation cost range [%d,%d]", cfg.CompMin, cfg.CompMax)
	}
	if cfg.CommMin < 0 || cfg.CommMax < cfg.CommMin {
		return nil, fmt.Errorf("taskgraph: bad communication cost range [%d,%d]", cfg.CommMin, cfg.CommMax)
	}
	if cfg.RegMinBits <= 0 || cfg.RegMaxBits < cfg.RegMinBits {
		return nil, fmt.Errorf("taskgraph: bad register range [%d,%d]", cfg.RegMinBits, cfg.RegMaxBits)
	}
	if cfg.CycleUnit <= 0 {
		return nil, fmt.Errorf("taskgraph: non-positive cycle unit %d", cfg.CycleUnit)
	}
	if cfg.MeanDependents <= 0 {
		return nil, fmt.Errorf("taskgraph: non-positive mean dependents %v", cfg.MeanDependents)
	}
	if cfg.MaxWidth < 1 {
		return nil, fmt.Errorf("taskgraph: non-positive max width %d", cfg.MaxWidth)
	}

	rng := rand.New(rand.NewSource(seed))
	inv := registers.NewInventory()

	uniform := func(lo, hi int64) int64 { return lo + rng.Int63n(hi-lo+1) }

	// Lay tasks out in pipeline layers of bounded width.
	var layers [][]int
	for next := 0; next < cfg.N; {
		w := 1 + rng.Intn(cfg.MaxWidth)
		if next+w > cfg.N {
			w = cfg.N - next
		}
		layer := make([]int, w)
		for i := range layer {
			layer[i] = next
			next++
		}
		layers = append(layers, layer)
	}

	type edgeRec struct {
		u, v  int
		units int64
	}
	var edges []edgeRec
	outDeg := make([]int, cfg.N)
	linked := make(map[[2]int]bool)
	maxDep := cfg.N / 2
	addEdge := func(u, v int) bool {
		key := [2]int{u, v}
		if linked[key] || outDeg[u] >= maxDep {
			return false
		}
		linked[key] = true
		outDeg[u]++
		edges = append(edges, edgeRec{u, v, uniform(cfg.CommMin, cfg.CommMax)})
		return true
	}

	// Backbone: every non-first-layer task consumes one or two tasks of the
	// previous layer.
	for li := 1; li < len(layers); li++ {
		prev := layers[li-1]
		for _, v := range layers[li] {
			nPreds := 1 + rng.Intn(2)
			if nPreds > len(prev) {
				nPreds = len(prev)
			}
			for _, pi := range rng.Perm(len(prev))[:nPreds] {
				addEdge(prev[pi], v)
			}
		}
	}
	// Extra dependents: exponential out-degree into the next few layers.
	const lookahead = 3
	for li, layer := range layers {
		var pool []int
		for lj := li + 1; lj < len(layers) && lj <= li+lookahead; lj++ {
			pool = append(pool, layers[lj]...)
		}
		if len(pool) == 0 {
			continue
		}
		for _, u := range layer {
			k := int(rng.ExpFloat64() * cfg.MeanDependents)
			if k > len(pool) {
				k = len(pool)
			}
			for _, pi := range rng.Perm(len(pool))[:k] {
				addEdge(u, pool[pi])
			}
		}
	}

	// Register inventory: one private register per task, one shared buffer
	// per edge.
	taskRegs := make([][]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := fmt.Sprintf("loc_%03d", i)
		inv.MustAdd(id, uniform(cfg.RegMinBits, cfg.RegMaxBits))
		taskRegs[i] = append(taskRegs[i], id)
	}
	if cfg.SharedBufferBitsPerCommUnit > 0 {
		for ei, e := range edges {
			id := fmt.Sprintf("buf_%03d_%03d_%d", e.u, e.v, ei)
			inv.MustAdd(id, e.units*cfg.SharedBufferBitsPerCommUnit)
			taskRegs[e.u] = append(taskRegs[e.u], id)
			taskRegs[e.v] = append(taskRegs[e.v], id)
		}
	}

	b := NewBuilder(fmt.Sprintf("random-%d-seed%d", cfg.N, seed), inv)
	ids := make([]TaskID, cfg.N)
	for i := 0; i < cfg.N; i++ {
		name := fmt.Sprintf("t%03d", i)
		ids[i] = b.AddTask(name, uniform(cfg.CompMin, cfg.CompMax)*cfg.CycleUnit, taskRegs[i]...)
	}
	for _, e := range edges {
		b.AddEdge(ids[e.u], ids[e.v], e.units*cfg.CycleUnit)
	}
	return b.Build()
}

// MustRandom is Random but panics on error; for fixtures and benchmarks.
func MustRandom(cfg RandomConfig, seed int64) *Graph {
	g, err := Random(cfg, seed)
	if err != nil {
		panic(err)
	}
	return g
}
