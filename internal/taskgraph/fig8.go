package taskgraph

import "seadopt/internal/registers"

// Fig8CycleUnit is the clock-cycle value of one cost unit in Fig. 8: "all
// costs are multiples of 60×10⁴ cycles".
const Fig8CycleUnit = 600_000

// Fig8Deadline is the real-time constraint of the worked example, 75 ms.
const Fig8Deadline = 0.075

// Fig8 returns the 6-task example application of Fig. 8 together with its
// exact register table (Fig. 8(b)-(c)):
//
//	reg   bits        used by
//	r1    4096        t1
//	r2    2048        t1, t2
//	r3    2048        t1
//	r4    5120        t2, t3
//	r5    4096        t2, t3, t4
//	r6    2048        t2, t3, t4, t5
//	r7    2048        t4, t5, t6
//	r8    4096        t5, t6
//	r9    2048        t6
//
// Node costs (units of 60e4 cycles): t1=5, t2=4, t3=4, t4=5, t5=6, t6=4.
//
// The figure's edge list is not printed explicitly; the edge set below is
// reconstructed so the figure's algorithm trace holds: t1's dependency list
// is {t2, t3}, mapping t3 exposes {t4, t5}, t2's dependent is t4, and t6 is
// the join consuming t4 and t5 (see DESIGN.md §5.7).
func Fig8() *Graph {
	inv := registers.NewInventory()
	sizes := []int64{4096, 2048, 2048, 5120, 4096, 2048, 2048, 4096, 2048}
	names := []string{"r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"}
	for i, n := range names {
		inv.MustAdd(n, sizes[i])
	}

	b := NewBuilder("fig8-example", inv)
	t1 := b.AddTask("t1", 5*Fig8CycleUnit, "r1", "r2", "r3")
	t2 := b.AddTask("t2", 4*Fig8CycleUnit, "r2", "r4", "r5", "r6")
	t3 := b.AddTask("t3", 4*Fig8CycleUnit, "r4", "r5", "r6")
	t4 := b.AddTask("t4", 5*Fig8CycleUnit, "r5", "r6", "r7")
	t5 := b.AddTask("t5", 6*Fig8CycleUnit, "r6", "r7", "r8")
	t6 := b.AddTask("t6", 4*Fig8CycleUnit, "r7", "r8", "r9")

	b.AddEdge(t1, t2, 1*Fig8CycleUnit)
	b.AddEdge(t1, t3, 2*Fig8CycleUnit)
	b.AddEdge(t2, t4, 1*Fig8CycleUnit)
	b.AddEdge(t3, t4, 2*Fig8CycleUnit)
	b.AddEdge(t3, t5, 1*Fig8CycleUnit)
	b.AddEdge(t4, t6, 2*Fig8CycleUnit)
	b.AddEdge(t5, t6, 3*Fig8CycleUnit)
	return b.MustBuild()
}
