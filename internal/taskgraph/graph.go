// Package taskgraph models applications as directed acyclic task graphs.
//
// Following §II-B of the paper, an application is a DAG G(V,E): each node is
// a computational task with an execution cost in clock cycles and a register
// footprint (a registers.Set over the application's register inventory); each
// edge carries a communication cost in clock cycles that is paid only when
// producer and consumer are mapped to different cores.
//
// The package ships the three workloads of the paper's evaluation:
//
//   - MPEG2: the 11-task MPEG-2 video decoder of Fig. 2, with a register
//     inventory reconstructed from the sharing figures quoted in §III.
//   - Fig8: the 6-task worked example of Fig. 8 with its exact r1..r9
//     register table.
//   - Random: the random-graph generator parameterized exactly as §V
//     describes (uniform costs, exponential out-degree, 1–5 kbit footprints).
package taskgraph

import (
	"fmt"
	"sort"

	"seadopt/internal/registers"
)

// TaskID indexes a task within its graph; IDs are dense in [0, N).
type TaskID int

// Task is one computational node of the application DAG.
type Task struct {
	ID        TaskID
	Name      string
	Cycles    int64         // computation cost in clock cycles
	Registers registers.Set // register footprint (local + shared resources)
}

// Edge is a data dependency with a communication cost in clock cycles,
// billed only for cross-core producer/consumer placements.
type Edge struct {
	From   TaskID
	To     TaskID
	Cycles int64
}

// Graph is an immutable application task graph. Build one with a Builder or
// one of the stock constructors (MPEG2, Fig8, Random).
type Graph struct {
	name      string
	tasks     []Task
	inventory *registers.Inventory

	succ [][]Edge // outgoing edges per task
	pred [][]Edge // incoming edges per task
	topo []TaskID // one valid topological order
}

// Builder assembles a Graph incrementally and validates it on Build.
type Builder struct {
	name      string
	tasks     []Task
	edges     []Edge
	inventory *registers.Inventory
	err       error
}

// NewBuilder starts a graph named name over the given register inventory.
// The inventory may be empty but must be non-nil.
func NewBuilder(name string, inv *registers.Inventory) *Builder {
	b := &Builder{name: name, inventory: inv}
	if inv == nil {
		b.err = fmt.Errorf("taskgraph: nil register inventory for graph %q", name)
	}
	return b
}

// AddTask appends a task with the given name, computation cost and register
// footprint, returning its ID. Errors are deferred to Build.
func (b *Builder) AddTask(name string, cycles int64, regIDs ...string) TaskID {
	id := TaskID(len(b.tasks))
	set := registers.NewSet(regIDs...)
	if b.err == nil {
		if name == "" {
			b.err = fmt.Errorf("taskgraph: task %d has empty name", id)
		} else if cycles <= 0 {
			b.err = fmt.Errorf("taskgraph: task %q has non-positive cost %d", name, cycles)
		} else {
			for _, r := range regIDs {
				if !b.inventory.Has(r) {
					b.err = fmt.Errorf("taskgraph: task %q references unknown register %q", name, r)
					break
				}
			}
		}
	}
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Cycles: cycles, Registers: set})
	return id
}

// AddEdge records a dependency from -> to with the given communication cost.
func (b *Builder) AddEdge(from, to TaskID, cycles int64) {
	if b.err == nil {
		switch {
		case from == to:
			b.err = fmt.Errorf("taskgraph: self edge on task %d", from)
		case int(from) < 0 || int(from) >= len(b.tasks) || int(to) < 0 || int(to) >= len(b.tasks):
			b.err = fmt.Errorf("taskgraph: edge %d->%d references undefined task", from, to)
		case cycles < 0:
			b.err = fmt.Errorf("taskgraph: edge %d->%d has negative cost %d", from, to, cycles)
		}
	}
	b.edges = append(b.edges, Edge{From: from, To: to, Cycles: cycles})
}

// Build validates the accumulated tasks and edges (well-formed, no duplicate
// edges, acyclic) and returns the finished Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.tasks) == 0 {
		return nil, fmt.Errorf("taskgraph: graph %q has no tasks", b.name)
	}
	g := &Graph{
		name:      b.name,
		tasks:     b.tasks,
		inventory: b.inventory,
		succ:      make([][]Edge, len(b.tasks)),
		pred:      make([][]Edge, len(b.tasks)),
	}
	seen := make(map[[2]TaskID]bool, len(b.edges))
	for _, e := range b.edges {
		key := [2]TaskID{e.From, e.To}
		if seen[key] {
			return nil, fmt.Errorf("taskgraph: duplicate edge %d->%d in %q", e.From, e.To, b.name)
		}
		seen[key] = true
		g.succ[e.From] = append(g.succ[e.From], e)
		g.pred[e.To] = append(g.pred[e.To], e)
	}
	topo, err := g.computeTopo()
	if err != nil {
		return nil, err
	}
	g.topo = topo
	return g, nil
}

// MustBuild is Build but panics on error; for static fixtures.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// computeTopo returns a topological order (Kahn's algorithm with a
// deterministic smallest-ID-first tie break) or an error if cyclic.
func (g *Graph) computeTopo() ([]TaskID, error) {
	indeg := make([]int, len(g.tasks))
	for _, edges := range g.succ {
		for _, e := range edges {
			indeg[e.To]++
		}
	}
	var ready []TaskID
	for id := range g.tasks {
		if indeg[id] == 0 {
			ready = append(ready, TaskID(id))
		}
	}
	order := make([]TaskID, 0, len(g.tasks))
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		t := ready[0]
		ready = ready[1:]
		order = append(order, t)
		for _, e := range g.succ[t] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("taskgraph: graph %q contains a cycle", g.name)
	}
	return order, nil
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// N returns the number of tasks.
func (g *Graph) N() int { return len(g.tasks) }

// Task returns the task with the given ID.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Tasks returns all tasks in ID order. The slice is shared; do not mutate.
func (g *Graph) Tasks() []Task { return g.tasks }

// Inventory returns the register inventory the task footprints refer to.
func (g *Graph) Inventory() *registers.Inventory { return g.inventory }

// Succs returns the outgoing edges of task id.
func (g *Graph) Succs(id TaskID) []Edge { return g.succ[id] }

// Preds returns the incoming edges of task id.
func (g *Graph) Preds(id TaskID) []Edge { return g.pred[id] }

// Edges returns every edge of the graph, grouped by source task.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, es := range g.succ {
		out = append(out, es...)
	}
	return out
}

// EdgeCost returns the communication cost of edge from->to and whether the
// edge exists.
func (g *Graph) EdgeCost(from, to TaskID) (int64, bool) {
	for _, e := range g.succ[from] {
		if e.To == to {
			return e.Cycles, true
		}
	}
	return 0, false
}

// TopoOrder returns a copy of one valid topological order.
func (g *Graph) TopoOrder() []TaskID {
	out := make([]TaskID, len(g.topo))
	copy(out, g.topo)
	return out
}

// Roots returns the tasks with no predecessors, in ID order.
func (g *Graph) Roots() []TaskID {
	var out []TaskID
	for id := range g.tasks {
		if len(g.pred[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// Leaves returns the tasks with no successors, in ID order.
func (g *Graph) Leaves() []TaskID {
	var out []TaskID
	for id := range g.tasks {
		if len(g.succ[id]) == 0 {
			out = append(out, TaskID(id))
		}
	}
	return out
}

// TotalComputeCycles returns the summed computation cost of all tasks.
func (g *Graph) TotalComputeCycles() int64 {
	var total int64
	for _, t := range g.tasks {
		total += t.Cycles
	}
	return total
}

// TotalCommCycles returns the summed communication cost of all edges.
func (g *Graph) TotalCommCycles() int64 {
	var total int64
	for _, es := range g.succ {
		for _, e := range es {
			total += e.Cycles
		}
	}
	return total
}

// BLevels returns, per task, the length in cycles of the longest path from
// the task to any leaf, including the task's own cost and all edge costs on
// the path. This is the classic list-scheduling priority.
func (g *Graph) BLevels() []int64 {
	bl := make([]int64, len(g.tasks))
	for i := len(g.topo) - 1; i >= 0; i-- {
		id := g.topo[i]
		best := int64(0)
		for _, e := range g.succ[id] {
			if v := e.Cycles + bl[e.To]; v > best {
				best = v
			}
		}
		bl[id] = g.tasks[id].Cycles + best
	}
	return bl
}

// CriticalPathCycles returns the longest path through the graph in cycles,
// including edge costs (a lower bound on any single-iteration makespan when
// every communication crosses cores).
func (g *Graph) CriticalPathCycles() int64 {
	var best int64
	for _, v := range g.BLevels() {
		if v > best {
			best = v
		}
	}
	return best
}

// DescendantsOf returns the set of tasks reachable from id (excluding id).
func (g *Graph) DescendantsOf(id TaskID) map[TaskID]bool {
	out := make(map[TaskID]bool)
	stack := []TaskID{id}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.succ[t] {
			if !out[e.To] {
				out[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return out
}

// UnionRegisters returns the union of the register footprints of the given
// tasks — the per-core register set of eq. (8) when those tasks share a core.
func (g *Graph) UnionRegisters(ids []TaskID) registers.Set {
	out := make(registers.Set)
	for _, id := range ids {
		out.UnionWith(g.tasks[id].Registers)
	}
	return out
}
