package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"seadopt/internal/ingest"
	"seadopt/internal/taskgraph"
)

// paretoProblem is the MPEG-2 problem in pareto mode.
func paretoProblem(t *testing.T, seed int64) *ingest.Problem {
	t.Helper()
	p := mpeg2Problem(t, seed)
	p.Options.Mode = ingest.ModePareto
	return p
}

// frontierResult is the wire shape of a pareto job result.
type frontierResult struct {
	Mode       string            `json:"mode"`
	Objectives string            `json:"objectives"`
	Size       int               `json:"size"`
	Frontier   []json.RawMessage `json:"frontier"`
}

func decodeFrontier(t *testing.T, raw json.RawMessage) frontierResult {
	t.Helper()
	var fr frontierResult
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatalf("decoding frontier result: %v\n%s", err, raw)
	}
	if fr.Mode != ingest.ModePareto {
		t.Fatalf("result mode %q, want pareto", fr.Mode)
	}
	if fr.Size != len(fr.Frontier) || fr.Size == 0 {
		t.Fatalf("frontier size %d, members %d", fr.Size, len(fr.Frontier))
	}
	return fr
}

// TestParetoJobEndToEnd: a pareto-mode job runs to done with a frontier
// result, caches under its own key (scalar and pareto never cross), and a
// resubmission is a cache hit with byte-identical bytes.
func TestParetoJobEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	st, err := s.Submit(paretoProblem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, st.ID, StateDone)
	fr := decodeFrontier(t, done.Result)
	if fr.Objectives != "power,makespan,gamma" {
		t.Errorf("default objectives rendered %q", fr.Objectives)
	}

	scalar, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Key == done.Key {
		t.Error("scalar submission shares the pareto problem key")
	}
	waitState(t, s, scalar.ID, StateDone)

	again, err := s.Submit(paretoProblem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("identical pareto resubmission missed the cache")
	}
	if string(again.Result) != string(done.Result) {
		t.Error("cached frontier bytes differ from the original")
	}
	if got := s.Metrics().EngineExecutions; got != 2 {
		t.Errorf("engine executions = %d, want 2 (one pareto, one scalar)", got)
	}
	if got := s.Metrics().ParetoExecutions; got != 1 {
		t.Errorf("pareto executions = %d, want 1", got)
	}
	if got := s.Metrics().ParetoFrontierSize; got != int64(fr.Size) {
		t.Errorf("pareto frontier size metric = %d, want %d", got, fr.Size)
	}
}

// TestParetoDefaultMode: a daemon configured with a default pareto mode
// (and default objectives) applies them before hashing, so plain
// submissions get frontiers and cache under the pareto key.
func TestParetoDefaultMode(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DefaultMode: ingest.ModePareto, DefaultObjectives: "power,gamma"})
	st, err := s.Submit(mpeg2Problem(t, 2010), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, st.ID, StateDone)
	fr := decodeFrontier(t, done.Result)
	if fr.Objectives != "power,gamma" {
		t.Errorf("default objectives %q not applied (got %q)", "power,gamma", fr.Objectives)
	}

	// An explicit mode wins over the server default.
	explicit := mpeg2Problem(t, 2010)
	explicit.Options.Mode = ingest.ModeScalar
	st2, err := s.Submit(explicit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Key == done.Key {
		t.Error("explicit scalar submission inherited the pareto default key")
	}
}

// TestParetoHTTPEndToEnd: the full wire path — envelope submission with
// mode=pareto, per-point SSE progress carrying frontier sizes, the frontier
// result on GET, and the /metrics scrape exposing the frontier gauge plus
// the jobs-per-state series.
func TestParetoHTTPEndToEnd(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(map[string]any{
		"format":   "json",
		"graph":    json.RawMessage(gj),
		"platform": map[string]int{"cores": 4, "levels": 3},
		"options": map[string]any{
			"deadline_sec":      taskgraph.MPEG2Deadline,
			"stream_iterations": taskgraph.MPEG2Frames,
			"seed":              2010,
			"mode":              "pareto",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := postJob(t, ts.URL, env)
	done := waitJobHTTP(t, ts.URL, st.ID, StateDone)
	fr := decodeFrontier(t, done.Result)

	events, _ := readSSE(t, ts.URL, st.ID)
	if len(events) == 0 {
		t.Fatal("no SSE progress events")
	}
	admitted := 0
	lastFront := 0
	for _, ev := range events {
		if ev.Admitted {
			admitted++
		}
		if ev.FrontierSize > 0 {
			lastFront = ev.FrontierSize
		}
	}
	if admitted == 0 {
		t.Error("no SSE event marked a frontier admission")
	}
	if lastFront != fr.Size {
		t.Errorf("final SSE frontier size %d, result size %d", lastFront, fr.Size)
	}

	if got := metricValue(t, ts.URL, "seadoptd_pareto_frontier_size"); got != int64(fr.Size) {
		t.Errorf("seadoptd_pareto_frontier_size = %d, want %d", got, fr.Size)
	}
	if got := metricValue(t, ts.URL, "seadoptd_pareto_executions_total"); got != 1 {
		t.Errorf("seadoptd_pareto_executions_total = %d, want 1", got)
	}
	// Explicit jobs-per-state scrape: exactly one done job, every other
	// state's series present and zero.
	if got := metricValue(t, ts.URL, `seadoptd_jobs{state="done"}`); got != 1 {
		t.Errorf(`seadoptd_jobs{state="done"} = %d, want 1`, got)
	}
	for _, state := range []string{"queued", "running", "failed", "canceled"} {
		if got := metricValue(t, ts.URL, `seadoptd_jobs{state="`+state+`"}`); got != 0 {
			t.Errorf(`seadoptd_jobs{state=%q} = %d, want 0`, state, got)
		}
	}

	// Raw-body submissions reach pareto mode through query params.
	resp, err := http.Post(ts.URL+"/v1/jobs?format=json&mode=pareto&objectives=power,latency&deadline_sec=0.1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad objectives submission returned %d, want 400", resp.StatusCode)
	}
}
