package service

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// A value exactly on a bound lands IN that bucket (le is inclusive).
	h.Observe(1)        // bucket le=1
	h.Observe(2)        // bucket le=2
	h.Observe(1.5)      // bucket le=2
	h.Observe(4)        // bucket le=4
	h.Observe(4.000001) // +Inf overflow
	h.Observe(0)        // le=1
	h.Observe(-3)       // le=1 (clamped low, still counted in sum)

	s := h.Snapshot()
	want := []uint64{3, 2, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d: count %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if got := 1 + 2 + 1.5 + 4 + 4.000001 + 0 - 3; math.Abs(s.Sum-got) > 1e-9 {
		t.Errorf("Sum = %v, want %v", s.Sum, got)
	}
}

func TestHistogramSnapshotIsolation(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	s := h.Snapshot()
	h.Observe(0.5)
	if s.Counts[0] != 1 || s.Count != 1 {
		t.Errorf("snapshot mutated by later observations: %+v", s)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newHistogram accepted non-ascending bounds")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestExpBuckets(t *testing.T) {
	b := expBuckets(100e-6, 2, 4)
	want := []float64{100e-6, 200e-6, 400e-6, 800e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d: %v, want %v", i, b[i], want[i])
		}
	}
	lb := latencyBuckets()
	if len(lb) != 21 {
		t.Errorf("latencyBuckets: %d bounds, want 21", len(lb))
	}
	if lb[len(lb)-1] < 100 {
		t.Errorf("latencyBuckets top bound %v too small to cover long explorations", lb[len(lb)-1])
	}
}

// sampleMetrics builds a fully-populated snapshot so the render tests cover
// every family, including the per-route HTTP histograms.
func sampleMetrics() Metrics {
	hist := func(vals ...float64) HistogramSnapshot {
		h := newHistogram(latencyBuckets())
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	return Metrics{
		QueueDepth: 1, Workers: 2, CacheEntries: 3, CacheCapacity: 256,
		CacheHits: 4, CacheMisses: 5, Coalesced: 6, EngineExecutions: 7,
		Submitted: 8, CombinationsExplored: 900, CombinationsPruned: 100,
		ParetoExecutions: 2, ParetoFrontierSize: 5,
		Jobs:      map[State]int64{StateDone: 7, StateQueued: 1},
		QueueWait: hist(0.0001, 0.5),
		ExecTime:  hist(1.25, 91.0),
		HTTP: map[string]HistogramSnapshot{
			"POST /v1/jobs":     hist(0.002),
			"GET /metrics":      hist(0.0005, 0.0007),
			"GET /v1/jobs/{id}": hist(0.001),
		},
		Goroutines: 12, HeapAllocBytes: 1 << 20, HeapSysBytes: 1 << 22,
		GCCycles: 3, GCPauseTotalSec: 0.00125,
		BuildVersion: "(devel)", BuildRevision: "abc123", BuildGo: "go1.24.0",
	}
}

// TestRenderMetricsLints feeds the full rendering through the strict
// exposition-format parser: every histogram must be well-formed (cumulative
// buckets, +Inf, _sum/_count) and no family duplicated or sample-less.
func TestRenderMetricsLints(t *testing.T) {
	var buf bytes.Buffer
	renderMetrics(&buf, sampleMetrics())
	if err := LintMetrics(buf.Bytes()); err != nil {
		t.Fatalf("rendered metrics fail exposition lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"seadoptd_job_queue_wait_seconds_bucket{le=\"+Inf\"} 2",
		"seadoptd_engine_exec_seconds_count 2",
		"seadoptd_http_request_duration_seconds_count{route=\"GET /metrics\"} 2",
		"seadoptd_build_info{version=\"(devel)\",revision=\"abc123\",go=\"go1.24.0\"} 1",
		"seadoptd_gc_pause_seconds_total 0.00125",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered metrics", want)
		}
	}
	if histCount := strings.Count(out, "# TYPE") - strings.Count(out, "gauge") - strings.Count(out, "counter"); histCount < 3 {
		t.Errorf("want >= 3 histogram families, got %d", histCount)
	}
}

// TestRenderMetricsDeterministic pins the ordering contract: a fixed
// snapshot renders byte-identically every time, per-state job gauges appear
// in the fixed lifecycle order, and map-derived route series are sorted.
func TestRenderMetricsDeterministic(t *testing.T) {
	m := sampleMetrics()
	var a, b bytes.Buffer
	renderMetrics(&a, m)
	renderMetrics(&b, m)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("renderMetrics is not deterministic for a fixed snapshot")
	}

	out := a.String()
	stateOrder := []string{
		`seadoptd_jobs{state="queued"}`,
		`seadoptd_jobs{state="running"}`,
		`seadoptd_jobs{state="done"}`,
		`seadoptd_jobs{state="failed"}`,
		`seadoptd_jobs{state="canceled"}`,
	}
	last := -1
	for _, s := range stateOrder {
		i := strings.Index(out, s)
		if i < 0 {
			t.Fatalf("missing per-state gauge %q", s)
		}
		if i < last {
			t.Errorf("per-state gauge %q out of order", s)
		}
		last = i
	}

	routeOrder := []string{
		`route="GET /metrics"`,
		`route="GET /v1/jobs/{id}"`,
		`route="POST /v1/jobs"`,
	}
	last = -1
	for _, s := range routeOrder {
		i := strings.Index(out, s)
		if i < 0 {
			t.Fatalf("missing HTTP route series %q", s)
		}
		if i < last {
			t.Errorf("HTTP route %q not in sorted order", s)
		}
		last = i
	}
}

// TestRenderMetricsNoHTTPSamples: before any request is instrumented the
// HTTP family must be absent entirely (a declared family with no samples is
// an exposition error).
func TestRenderMetricsNoHTTPSamples(t *testing.T) {
	m := sampleMetrics()
	m.HTTP = nil
	var buf bytes.Buffer
	renderMetrics(&buf, m)
	if strings.Contains(buf.String(), "seadoptd_http_request_duration_seconds") {
		t.Error("HTTP family declared with no samples")
	}
	if err := LintMetrics(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLintMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": "foo 1\n",
		"duplicate TYPE":           "# HELP foo x\n# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"bad type":                 "# HELP foo x\n# TYPE foo widget\nfoo 1\n",
		"missing +Inf bucket": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"out-of-order le": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing _count": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"malformed labels":    "# HELP foo x\n# TYPE foo gauge\nfoo{bad-label=\"1\"} 1\n",
		"non-numeric value":   "# HELP foo x\n# TYPE foo gauge\nfoo banana\n",
		"declared but absent": "# HELP foo x\n# TYPE foo gauge\n",
	}
	for name, text := range cases {
		if err := LintMetrics([]byte(text)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", name, text)
		}
	}
	valid := "# HELP foo x\n# TYPE foo gauge\nfoo{a=\"1\",b=\"two words\"} 1\n"
	if err := LintMetrics([]byte(valid)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}
