package service

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintMetrics validates a Prometheus text-format (v0.0.4) exposition
// strictly: every sample must belong to a family that declared both # HELP
// and # TYPE before its first sample, family declarations must not repeat,
// declared families must emit at least one sample, label syntax and sample
// values must parse, and histogram families must carry cumulative
// non-decreasing le buckets ending at +Inf plus matching _sum/_count series.
// The service's own tests and the CI integration step run every /metrics
// scrape through it.
func LintMetrics(data []byte) error {
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelRe    = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	)
	type family struct {
		help, typ string
		samples   int
		buckets   map[string][]float64 // histogram: label-set (minus le) -> le bounds in order
		cums      map[string]float64   // histogram: label-set -> last cumulative bucket count
		sums      map[string]bool
		counts    map[string]bool
	}
	families := map[string]*family{}
	get := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{buckets: map[string][]float64{}, cums: map[string]float64{}, sums: map[string]bool{}, counts: map[string]bool{}}
			families[name] = f
		}
		return f
	}
	// baseOf maps a sample name to its family name for typed suffixes.
	baseOf := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := families[base]; ok && f.typ == "histogram" {
					return base, suf
				}
			}
		}
		return name, ""
	}

	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricName.MatchString(name) {
				return fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			f := get(name)
			if f.help != "" {
				return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if f.samples > 0 {
				return fmt.Errorf("line %d: HELP for %s after its samples", lineNo, name)
			}
			f.help = rest[len(name)+1:]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricName.MatchString(fields[0]) {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			f := get(name)
			if f.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if f.samples > 0 {
				return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		name, labels, value, ok := splitSample(line)
		if !ok || !metricName.MatchString(name) {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: sample value %q: %v", lineNo, value, err)
		}
		var le string
		var rest []string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					return fmt.Errorf("line %d: malformed label %q", lineNo, pair)
				}
				if lm[1] == "le" {
					le = lm[2]
				} else {
					rest = append(rest, pair)
				}
			}
		}
		base, suf := baseOf(name)
		f, ok := families[base]
		if !ok || f.typ == "" {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		if f.help == "" {
			return fmt.Errorf("line %d: sample %s has no HELP", lineNo, name)
		}
		f.samples++
		if f.typ != "histogram" {
			continue
		}
		sort.Strings(rest)
		series := strings.Join(rest, ",")
		switch suf {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
			}
			bound, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("line %d: %s le=%q: %v", lineNo, name, le, err)
			}
			bounds := f.buckets[series]
			if len(bounds) > 0 && bound <= bounds[len(bounds)-1] {
				return fmt.Errorf("line %d: %s le=%q out of order", lineNo, name, le)
			}
			cum, _ := strconv.ParseFloat(value, 64)
			if len(bounds) > 0 && cum < f.cums[series] {
				return fmt.Errorf("line %d: %s le=%q count %s below previous bucket %v (buckets must be cumulative)",
					lineNo, name, le, value, f.cums[series])
			}
			f.cums[series] = cum
			f.buckets[series] = append(bounds, bound)
		case "_sum":
			f.sums[series] = true
		case "_count":
			f.counts[series] = true
		default:
			return fmt.Errorf("line %d: bare sample %s for histogram family %s", lineNo, name, base)
		}
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		switch {
		case f.typ == "":
			return fmt.Errorf("family %s has HELP but no TYPE", name)
		case f.help == "":
			return fmt.Errorf("family %s has TYPE but no HELP", name)
		case f.samples == 0:
			return fmt.Errorf("family %s declared but emitted no samples", name)
		}
		if f.typ != "histogram" {
			continue
		}
		for series, bounds := range f.buckets {
			if len(bounds) == 0 || !isInf(bounds[len(bounds)-1]) {
				return fmt.Errorf("histogram %s{%s} missing +Inf bucket", name, series)
			}
			if !f.sums[series] || !f.counts[series] {
				return fmt.Errorf("histogram %s{%s} missing _sum or _count", name, series)
			}
		}
		if len(f.buckets) == 0 {
			return fmt.Errorf("histogram %s emitted no buckets", name)
		}
	}
	return nil
}

// splitSample tears one sample line into name, label body and value. It
// scans the optional {...} block quote-aware, because label values may
// legally contain '{', '}' or spaces (e.g. route="GET /v1/jobs/{id}").
func splitSample(line string) (name, labels, value string, ok bool) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		inQuote, escaped := false, false
		end := -1
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case c == '\\' && inQuote:
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case c == '}' && !inQuote:
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", "", false
		}
		labels = rest[1:end]
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value plus optional timestamp
		return "", "", "", false
	}
	return name, labels, fields[0], true
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\' && inQuote:
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func isInf(v float64) bool { return math.IsInf(v, 1) }
