package service

import (
	"container/list"
	"math"
	"strconv"
	"strings"
	"sync"

	"seadopt"
	"seadopt/internal/ingest"
)

// This file holds the two cross-job acceleration registries:
//
//   - reuseRegistry shares the engine's verdict-preserving reuse layer
//     (probe trajectories, the bounds precompute, pooled evaluators)
//     between jobs whose problems share a ProbeKey — same graph, platform,
//     seed and stream-iteration count, whatever their deadline, SER or
//     strategy. Sharing it never changes any result byte.
//
//   - warmRegistry remembers finished results by problem Fingerprint so a
//     later submission over the same workload — with a different deadline
//     or objective set — starts its branch-and-bound from a near-optimal
//     incumbent (scalar WarmHints) or a pre-seeded dominance frontier
//     (Pareto WarmFrontier). Hints are re-validated by the receiving run's
//     own probe, so the final Design/frontier is byte-identical to a cold
//     run; only the pruned/skipped split of the progress stream may differ.
//
// Both are small LRUs: a long-running daemon's memory stays bounded and an
// evicted bundle simply costs the next matching job a cold start.

// warmSig is the eligibility signature of cross-job warm seeding: the
// options that shape realized design points for a fixed workload. Two
// problems with equal Fingerprint and equal warmSig realize identical
// (mapping, evaluation) pairs for every scaling combination they both
// visit, which is exactly the soundness contract of WarmHints and
// WarmFrontier.
func warmSig(o ingest.Options) string {
	iters := o.StreamIterations
	if iters < 1 {
		iters = 1
	}
	var sb strings.Builder
	sb.WriteString(strconv.FormatInt(o.Seed, 10))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(iters))
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(o.SearchMoves))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatUint(math.Float64bits(o.SER), 16))
	return sb.String()
}

// warmScalarKey addresses the scalar hint list of a workload: winners from
// any deadline are useful hints for any other, so the deadline is NOT part
// of the key.
func warmScalarKey(fingerprint string, o ingest.Options) string {
	return fingerprint + "|" + warmSig(o) + "|scalar"
}

// warmParetoKey addresses a workload's frontier at one deadline: frontier
// ghosts are sound only against runs whose mapper inputs differ at most in
// the objective selection, so the deadline IS part of the key.
func warmParetoKey(fingerprint string, o ingest.Options) string {
	return fingerprint + "|" + warmSig(o) + "|pareto|" +
		strconv.FormatFloat(o.DeadlineSec, 'g', -1, 64)
}

// maxWarmHints caps the scalar hint list per workload; hints beyond the
// few most recent winners rarely tighten the incumbent further.
const maxWarmHints = 8

type warmEntry struct {
	key    string
	hints  []int
	points []seadopt.WarmPoint
}

// warmRegistry is a goroutine-safe LRU of warm-start seeds.
type warmRegistry struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *warmEntry
	m   map[string]*list.Element
}

func newWarmRegistry(capacity int) *warmRegistry {
	return &warmRegistry{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// touch returns (creating if create is set) the entry for key, promoted to
// most-recently-used. The caller holds r.mu.
func (r *warmRegistry) touch(key string, create bool) *warmEntry {
	if el, ok := r.m[key]; ok {
		r.ll.MoveToFront(el)
		return el.Value.(*warmEntry)
	}
	if !create {
		return nil
	}
	e := &warmEntry{key: key}
	r.m[key] = r.ll.PushFront(e)
	for r.ll.Len() > r.cap {
		oldest := r.ll.Back()
		r.ll.Remove(oldest)
		delete(r.m, oldest.Value.(*warmEntry).key)
	}
	return e
}

// Hints returns a copy of the recorded scalar winner ranks for key.
func (r *warmRegistry) Hints(key string) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.touch(key, false)
	if e == nil || len(e.hints) == 0 {
		return nil
	}
	return append([]int(nil), e.hints...)
}

// RecordHint prepends a scalar winner rank to key's hint list (deduplicated,
// capped at maxWarmHints).
func (r *warmRegistry) RecordHint(key string, rank int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.touch(key, true)
	hints := make([]int, 0, len(e.hints)+1)
	hints = append(hints, rank)
	for _, h := range e.hints {
		if h != rank && len(hints) < maxWarmHints {
			hints = append(hints, h)
		}
	}
	e.hints = hints
}

// Frontier returns a copy of the recorded frontier seed points for key.
func (r *warmRegistry) Frontier(key string) []seadopt.WarmPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.touch(key, false)
	if e == nil || len(e.points) == 0 {
		return nil
	}
	return append([]seadopt.WarmPoint(nil), e.points...)
}

// RecordFrontier replaces key's frontier seed with the latest realized one.
func (r *warmRegistry) RecordFrontier(key string, points []seadopt.WarmPoint) {
	if len(points) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.touch(key, true)
	e.points = append([]seadopt.WarmPoint(nil), points...)
}

type reuseEntry struct {
	key    string
	bundle *seadopt.ExploreReuse
}

// reuseRegistry is a goroutine-safe LRU of engine reuse bundles keyed by
// ProbeKey. Evicting an entry only detaches it from future jobs; flights
// already holding the bundle keep using it safely.
type reuseRegistry struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *reuseEntry
	m   map[string]*list.Element
}

func newReuseRegistry(capacity int) *reuseRegistry {
	return &reuseRegistry{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the shared reuse bundle for key, creating it on first use.
func (r *reuseRegistry) Get(key string) *seadopt.ExploreReuse {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[key]; ok {
		r.ll.MoveToFront(el)
		return el.Value.(*reuseEntry).bundle
	}
	e := &reuseEntry{key: key, bundle: seadopt.NewExploreReuse()}
	r.m[key] = r.ll.PushFront(e)
	for r.ll.Len() > r.cap {
		oldest := r.ll.Back()
		r.ll.Remove(oldest)
		delete(r.m, oldest.Value.(*reuseEntry).key)
	}
	return e.bundle
}
