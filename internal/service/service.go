// Package service turns the seadopt optimizer into a long-running
// optimization-as-a-service daemon: a job-oriented server core with a
// bounded-worker queue, per-job cancellation, and a content-addressed
// result cache.
//
// # Job model
//
// A submission is an ingest.Problem — (task graph, platform, options) — and
// a priority. Every submission gets a Job with a dense ID and walks the
// state machine
//
//	queued → running → done | failed
//	   \________\____→ canceled
//
// Problems are content-addressed by their ingest ProblemKey. Three tiers of
// deduplication keep concurrent traffic off the engine:
//
//  1. result cache: a completed result for the same key completes the job
//     immediately (cache hit, no queueing);
//  2. single-flight coalescing: a job whose key is already queued or
//     running attaches to that in-flight computation and shares its
//     result, progress stream, and — by construction — its bytes;
//  3. otherwise the job becomes a new flight on the priority queue, served
//     by a bounded worker pool running the deterministic exploration
//     engine, so equal problems produce byte-identical results even when
//     caching is disabled.
//
// Cancelling a job detaches it from its flight; the underlying computation
// is cancelled (promptly, via context) only when its last attached job is
// gone. The HTTP front end in this package exposes the whole model, with
// per-job Server-Sent-Events progress streams mirroring the engine's
// in-enumeration-order Progress callbacks.
package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seadopt"
	"seadopt/internal/arch"
	"seadopt/internal/buildinfo"
	"seadopt/internal/ingest"
)

// State is a job lifecycle state.
type State string

// The job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Service errors. The HTTP layer maps them onto status codes.
var (
	ErrNotFound  = errors.New("service: no such job")
	ErrFinished  = errors.New("service: job already finished")
	ErrDraining  = errors.New("service: server is draining, not accepting jobs")
	ErrQueueFull = errors.New("service: job queue is full")
)

// Config tunes a Server.
type Config struct {
	// Workers bounds the number of concurrently executing optimization
	// jobs. 0 selects 2: each job's engine already fans out over
	// EngineParallelism cores, so a small number of concurrent jobs keeps
	// the machine busy without thrashing.
	Workers int
	// CacheEntries caps the LRU result cache; 0 selects 256, negative
	// disables caching.
	CacheEntries int
	// QueueDepth bounds the number of queued (not yet running) flights;
	// 0 selects 1024. Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// EngineParallelism is the per-job exploration parallelism
	// (OptimizeOptions.Parallelism): 0 selects GOMAXPROCS. The result is
	// identical at any setting.
	EngineParallelism int
	// JobRetention caps how many finished (done/failed/canceled) job
	// records — and their progress logs — stay queryable; beyond it the
	// oldest finished jobs are evicted so a long-running daemon's memory
	// stays bounded. 0 selects 4096, negative retains everything. Results
	// outlive their job records in the LRU cache.
	JobRetention int
	// DefaultStrategy is applied to submissions that leave the strategy
	// job option empty, before the problem is hashed — so a daemon booted
	// with -strategy exhaustive caches those results under the exhaustive
	// key. "" selects the engine default (branch-and-bound).
	DefaultStrategy string
	// DefaultMode is applied to submissions that leave the mode job option
	// empty, before the problem is hashed — a daemon booted with -pareto
	// serves frontiers for plain submissions. "" selects scalar mode.
	DefaultMode string
	// DefaultObjectives is applied to pareto-mode submissions that leave
	// the objectives job option empty, before the problem is hashed.
	// "" selects all three objectives.
	DefaultObjectives string
	// DefaultPlatform is applied to submissions that carry no platform
	// field — a daemon booted with -platform serves that MPSoC (possibly
	// heterogeneous) by default. Nil selects 4 ARM7 cores × Table I.
	// Submissions that do name a platform are unaffected.
	DefaultPlatform *arch.Platform
	// DisableWarmStart turns off cross-job result seeding: submissions no
	// longer inherit incumbent hints or frontier ghosts from
	// fingerprint-matching prior results, and sweep jobs run every point
	// cold. Warm starts never change result bytes — only the
	// pruned/skipped split of the progress stream — so this exists for
	// byte-exact progress reproduction and A/B measurement, not
	// correctness. The verdict-preserving probe/bounds/evaluator reuse
	// layer stays on either way.
	DisableWarmStart bool
	// StoreDir, when non-empty, enables the durable job store: every
	// accepted submission, terminal outcome and warm-start seed is
	// appended (and fsynced) to an append-only journal under this
	// directory before it is acknowledged, and a restarting daemon
	// replays the journal — finished results are served byte-identically
	// from it, and jobs that were queued or running at the crash are
	// re-enqueued under their original IDs. Empty keeps the server fully
	// in-memory.
	StoreDir string
	// Peers lists sibling seadoptd base URLs (e.g. "http://host:8080")
	// this server fans exploration shards out to. Each eligible job's
	// combination space is split into contiguous rank ranges: one runs
	// embedded in this process, the rest POST to the peers' internal
	// shard endpoint (falling back to embedded execution when a peer is
	// unreachable). The merged result is byte-identical to a single-node
	// run. Empty disables distribution.
	Peers []string
	// Shards overrides the shard count for distributed jobs; 0 selects
	// len(Peers)+1 (one embedded shard plus one per peer).
	Shards int
	// AdvertiseURL is this server's own base URL as reachable by its
	// peers; workers poll it to exchange bound-tightening facts so remote
	// shards prune against the global best. Empty disables the fact
	// exchange (shards then prune only locally — results are still
	// byte-identical, just slower).
	AdvertiseURL string
	// RateLimit caps per-client submissions per second (clients are keyed
	// by X-Client-Id, falling back to the remote address); breaches get
	// 429 with a Retry-After. 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket burst size; 0 selects
	// max(1, ceil(RateLimit)).
	RateBurst int
	// MaxBodyBytes caps submission payloads; oversized bodies get 413.
	// 0 selects 16 MiB.
	MaxBodyBytes int64
	// Now supplies the clock behind job timestamps, queue-wait and
	// execution durations and the latency histograms. Nil selects
	// time.Now; tests inject a fake clock to assert exact durations.
	Now func() time.Time
	// Logger receives structured job-lifecycle, worker-pool and HTTP
	// request logs. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.EngineParallelism <= 0 {
		c.EngineParallelism = runtime.GOMAXPROCS(0)
	}
	if c.JobRetention == 0 {
		c.JobRetention = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(math.Ceil(c.RateLimit))
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// ProgressEvent is one resolved scaling combination of a job's design-space
// exploration, mirrored from the engine's in-order Progress callbacks: Index
// is the 0-based visit index within Total, and events always arrive in
// enumeration order. Under the branch-and-bound strategy, combinations the
// engine proved irrelevant without mapping them carry Pruned or Skipped
// (their design fields are zero), and every event carries the cumulative
// pruned-or-skipped count so SSE clients can watch the bound work.
type ProgressEvent struct {
	Index       int     `json:"index"`
	Total       int     `json:"total"`
	Combination int     `json:"combination"`
	Scaling     []int   `json:"scaling"`
	Pruned      bool    `json:"pruned,omitempty"`
	Skipped     bool    `json:"skipped,omitempty"`
	PrunedTotal int     `json:"pruned_total"`
	PowerW      float64 `json:"power_w"`
	Gamma       float64 `json:"gamma"`
	Feasible    bool    `json:"feasible"`
	BestPowerW  float64 `json:"best_power_w"`
	BestGamma   float64 `json:"best_gamma"`
	// Pareto-mode fields: whether this combination's design joined the
	// frontier, and the frontier size after folding it in — the per-point
	// stream an SSE client plots the growing trade-off surface from.
	Admitted     bool `json:"admitted,omitempty"`
	FrontierSize int  `json:"frontier_size,omitempty"`
	// Point tags sweep-mode events with the 1-based sweep point (in the
	// deterministic platform-major × deadline × objective-set order) the
	// combination belongs to. Zero — absent on the wire — for single-point
	// jobs.
	Point int `json:"point,omitempty"`
}

// Job is the server-side record of one submission. All fields are guarded
// by the Server mutex; external callers see JobStatus snapshots.
type Job struct {
	id        string
	key       string
	graph     string
	priority  int
	state     State
	cacheHit  bool
	coalesced bool
	errMsg    string
	result    []byte
	summary   string
	total     int // exploration size, for flight-less (cache-hit) jobs
	stats     *seadopt.ExploreStats
	submitted time.Time
	started   time.Time // when the job's flight was dequeued (zero while queued)
	finished  time.Time
	flight    *flight
	// detached flips when the job is individually canceled, so progress
	// watchers can observe it without the server mutex.
	detached atomic.Bool
}

// JobStatus is an externally-visible snapshot of a job.
type JobStatus struct {
	ID          string          `json:"id"`
	Key         string          `json:"key"`
	Graph       string          `json:"graph"`
	State       State           `json:"state"`
	Priority    int             `json:"priority"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	Coalesced   bool            `json:"coalesced,omitempty"`
	Completed   int             `json:"progress_completed"`
	Total       int             `json:"progress_total"`
	Error       string          `json:"error,omitempty"`
	Summary     string          `json:"summary,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  time.Time       `json:"finished_at,omitzero"`
	// QueueWaitSec is how long the job waited for a worker; RunSec how
	// long its engine execution took (running jobs report the elapsed
	// time so far). Cache-hit jobs report neither.
	QueueWaitSec float64 `json:"queue_wait_sec,omitempty"`
	RunSec       float64 `json:"run_sec,omitempty"`
	// Stats is the engine's exploration-telemetry snapshot, available
	// once the job is done (and served from cache with the result).
	Stats *seadopt.ExploreStats `json:"engine_stats,omitempty"`
}

// flight is one underlying engine execution, shared by every job whose
// problem hashes to the same key while it is queued or running.
type flight struct {
	key      string
	problem  *ingest.Problem
	seq      int64
	prio     int
	index    int // heap index; -1 once popped
	refs     int // attached (non-canceled) jobs
	jobs     []*Job
	running  bool
	enqueued time.Time
	ctx      context.Context
	cancel   context.CancelFunc

	// The progress log has its own lock so SSE streaming never contends
	// with the scheduler. Lock ordering: Server.mu may be held when taking
	// logMu, never the reverse.
	logMu   sync.Mutex
	logCond *sync.Cond
	events  []ProgressEvent
	closed  bool
}

func (f *flight) append(ev ProgressEvent) {
	f.logMu.Lock()
	f.events = append(f.events, ev)
	f.logCond.Broadcast()
	f.logMu.Unlock()
}

// close marks the progress stream terminal and wakes every watcher.
func (f *flight) close() {
	f.logMu.Lock()
	f.closed = true
	f.logCond.Broadcast()
	f.logMu.Unlock()
}

// notify wakes watchers so they can re-check non-log conditions (job
// cancellation, client disconnect).
func (f *flight) notify() {
	f.logMu.Lock()
	f.logCond.Broadcast()
	f.logMu.Unlock()
}

// flightQueue is a priority heap: higher priority first, FIFO within a
// priority (by submission sequence).
type flightQueue []*flight

func (q flightQueue) Len() int { return len(q) }
func (q flightQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q flightQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *flightQueue) Push(x any) {
	f := x.(*flight)
	f.index = len(*q)
	*q = append(*q, f)
}
func (q *flightQueue) Pop() any {
	old := *q
	f := old[len(old)-1]
	old[len(old)-1] = nil
	f.index = -1
	*q = old[:len(old)-1]
	return f
}

// Server is the optimization-as-a-service core: it owns the job table, the
// flight queue, the worker pool and the result cache. Create one with New
// and shut it down with Close.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*Job
	jobOrder  []string
	flights   map[string]*flight
	queue     flightQueue
	cache     *lruCache
	jobSeq    int64
	flightSeq int64
	terminal  int // jobs currently retained in a terminal state
	draining  bool

	wg sync.WaitGroup

	// Latency histograms (internally locked; never taken under s.mu
	// ordering constraints — they are leaf locks).
	queueWaitHist *histogram
	execHist      *histogram
	httpMu        sync.Mutex
	httpHists     map[string]*histogram // by route pattern
	reqSeq        atomic.Int64          // HTTP request IDs

	// hookExecute, when non-nil, runs at the top of every engine
	// execution; timing tests use it to hold a flight open while they
	// advance a fake clock.
	hookExecute func(*flight)

	// Cross-job acceleration registries: shared engine reuse bundles by
	// ProbeKey, warm-start seeds by problem Fingerprint.
	reuses *reuseRegistry
	warm   *warmRegistry

	// Durable job store (nil when StoreDir is empty); recovering is set
	// while the journal replays so replayed operations are not
	// re-journaled.
	store      *jobStore
	recovering bool

	// Admission control (nil when RateLimit is 0).
	limiter *rateLimiter

	// Distributed exploration: live fact-exchange boards by session
	// token, served to polling peer workers.
	exchanges exchangeTable
	shardSeq  atomic.Int64

	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	coalesced    atomic.Int64
	engineExecs  atomic.Int64
	submitted    atomic.Int64
	explored     atomic.Int64 // combinations the mapper actually evaluated
	pruned       atomic.Int64 // combinations pruned or skipped by the bound
	paretoJobs   atomic.Int64 // pareto-mode engine executions
	frontierSize atomic.Int64 // frontier size of the latest finished pareto job
	sweepPoints  atomic.Int64 // sweep points evaluated by batch jobs
	warmStarts   atomic.Int64 // engine executions seeded from a prior result
	shardedExecs atomic.Int64 // engine executions fanned out over shards
	shardsServed atomic.Int64 // shard requests this server executed for peers

	// Admission rejections by reason; every reason is always exported.
	rejectedDraining atomic.Int64
	rejectedPayload  atomic.Int64
	rejectedQueue    atomic.Int64
	rejectedRate     atomic.Int64
}

// New starts a Server with cfg's worker pool running. It panics if cfg
// names a StoreDir whose journal cannot be opened; callers enabling the
// durable store should use NewServer and handle the error.
func New(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewServer starts a Server: it opens (and replays) the durable job store
// when cfg.StoreDir is set, then starts the worker pool. Jobs that were
// queued or running when a previous process died are re-enqueued under
// their original IDs before any worker runs.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		ctx:           ctx,
		cancel:        cancel,
		jobs:          make(map[string]*Job),
		flights:       make(map[string]*flight),
		cache:         newLRUCache(cfg.CacheEntries),
		reuses:        newReuseRegistry(32),
		warm:          newWarmRegistry(128),
		queueWaitHist: newHistogram(latencyBuckets()),
		execHist:      newHistogram(latencyBuckets()),
		httpHists:     make(map[string]*histogram),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, float64(cfg.RateBurst), cfg.Now)
	}
	if cfg.StoreDir != "" {
		store, recs, err := openJobStore(cfg.StoreDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.store = store
		s.recover(recs)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover replays the journal into the in-memory state: warm-start seeds
// reload, finished results reinstall into the cache and their job records,
// and jobs without a terminal outcome are re-enqueued under their original
// IDs (re-running deterministically to the same bytes). No worker runs yet,
// so recovery is single-threaded.
func (s *Server) recover(recs []storeRecord) {
	type jobRec struct {
		rec      *storeRecord
		result   *storeRecord
		canceled *storeRecord
	}
	jobs := make(map[string]*jobRec)
	var order []string
	var maxSeq int64
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case "job":
			if _, ok := jobs[rec.ID]; !ok {
				order = append(order, rec.ID)
				jobs[rec.ID] = &jobRec{rec: rec}
			}
			var seq int64
			if _, err := fmt.Sscanf(rec.ID, "j-%d", &seq); err == nil && seq > maxSeq {
				maxSeq = seq
			}
		case "result":
			if jr, ok := jobs[rec.ID]; ok {
				jr.result = rec
			}
		case "cancel":
			if jr, ok := jobs[rec.ID]; ok {
				jr.canceled = rec
			}
		case "hint":
			s.warm.RecordHint(rec.Key, rec.Rank)
		case "frontier":
			s.warm.RecordFrontier(rec.Key, fromStorePoints(rec.Points))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recovering = true
	defer func() { s.recovering = false }()
	s.jobSeq = maxSeq
	// First pass: reinstall finished results into the cache, so re-enqueued
	// and future submissions over the same key serve the stored bytes.
	for _, id := range order {
		jr := jobs[id]
		if jr.result != nil && jr.result.State == StateDone {
			s.cache.Add(&cacheEntry{
				key:     jr.result.Key,
				result:  jr.result.Result,
				summary: jr.result.Summary,
				total:   jr.result.Total,
			})
		}
	}
	requeued, terminal := 0, 0
	for _, id := range order {
		jr := jobs[id]
		j := &Job{
			id:        id,
			key:       jr.rec.Key,
			graph:     jr.rec.Graph,
			priority:  jr.rec.Priority,
			submitted: jr.rec.At,
		}
		switch {
		case jr.canceled != nil:
			j.state = StateCanceled
			j.finished = jr.canceled.At
			j.detached.Store(true)
			s.terminal++
			terminal++
		case jr.result != nil:
			j.state = jr.result.State
			j.result = jr.result.Result
			j.summary = jr.result.Summary
			j.total = jr.result.Total
			j.errMsg = jr.result.Error
			j.finished = jr.result.At
			s.terminal++
			terminal++
		default:
			// Accepted but unfinished at the crash: decode and re-enqueue.
			p, err := ingest.DecodeProblem(jr.rec.Problem)
			if err != nil {
				j.state = StateFailed
				j.errMsg = "recovery: " + err.Error()
				j.finished = j.submitted
				s.terminal++
				terminal++
				break
			}
			if e, hit := s.cache.Get(j.key); hit {
				// An identical problem finished before the crash.
				j.state = StateDone
				j.cacheHit = true
				j.result = e.result
				j.summary = e.summary
				j.total = e.total
				j.finished = j.submitted
				s.terminal++
				terminal++
				break
			}
			if f, ok := s.flights[j.key]; ok {
				j.state = StateQueued
				j.coalesced = true
				j.flight = f
				f.refs++
				f.jobs = append(f.jobs, j)
				if j.priority > f.prio {
					f.prio = j.priority
					heap.Fix(&s.queue, f.index)
				}
				requeued++
				break
			}
			fctx, fcancel := context.WithCancel(s.ctx)
			s.flightSeq++
			f := &flight{
				key:      j.key,
				problem:  p,
				seq:      s.flightSeq,
				prio:     j.priority,
				refs:     1,
				jobs:     []*Job{j},
				enqueued: j.submitted,
				ctx:      fctx,
				cancel:   fcancel,
			}
			f.logCond = sync.NewCond(&f.logMu)
			j.state = StateQueued
			j.flight = f
			s.flights[j.key] = f
			heap.Push(&s.queue, f)
			requeued++
		}
		s.jobs[id] = j
		s.jobOrder = append(s.jobOrder, id)
	}
	s.pruneLocked()
	if len(order) > 0 {
		s.cfg.Logger.Info("store recovered",
			"dir", s.cfg.StoreDir, "jobs", len(order),
			"requeued", requeued, "terminal", terminal)
	}
}

// Submit enqueues an optimization problem and returns the job's initial
// status: done immediately on a cache hit, queued/running when coalesced
// onto an in-flight computation, queued otherwise. Submissions that leave
// the strategy option empty inherit the server's default strategy before
// hashing, so their cache identity records the walk that will run.
func (s *Server) Submit(p *ingest.Problem, priority int) (JobStatus, error) {
	if defaulted, changed := s.applyDefaults(p.Options); changed {
		// Work on a copy: the caller's Problem keeps its empty-option
		// markers, so resubmitting it elsewhere still means "that server's
		// default" rather than this server's.
		copied := *p
		copied.Options = defaulted
		p = &copied
	}
	// Hash outside the lock; the graph encoding dominates the cost. The
	// encoding itself is kept: it is what the durable store journals and
	// what the distributed shard protocol ships to peers.
	enc, err := p.CanonicalEncoding()
	if err != nil {
		return JobStatus{}, err
	}
	key := ingest.EncodingKey(enc)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	e, hit := s.cache.Get(key)
	inflight, coalescing := s.flights[key]
	if !hit && !coalescing && len(s.queue) >= s.cfg.QueueDepth {
		// Reject before anything is recorded: rejected traffic must not
		// move the submitted/miss counters or leave a job record behind.
		return JobStatus{}, ErrQueueFull
	}
	s.jobSeq++
	j := &Job{
		id:        fmt.Sprintf("j-%06d", s.jobSeq),
		key:       key,
		graph:     p.Graph.Name(),
		priority:  priority,
		submitted: s.cfg.Now(),
	}
	if s.store != nil {
		// Durability before acknowledgement: the job record must be synced
		// to disk before the submission is accepted anywhere in memory. A
		// failed append releases the ID and rejects the submission.
		err := s.store.Append(storeRecord{
			Kind: "job", ID: j.id, Key: key, Graph: j.graph,
			Priority: priority, Problem: enc, At: j.submitted,
		})
		if err != nil {
			s.jobSeq--
			return JobStatus{}, err
		}
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.submitted.Add(1)

	if hit {
		s.cacheHits.Add(1)
		j.state = StateDone
		j.cacheHit = true
		j.result = e.result
		j.summary = e.summary
		j.total = e.total
		j.stats = e.stats
		j.finished = j.submitted
		s.terminal++
		s.pruneLocked()
		s.cfg.Logger.Info("job submitted",
			"job", j.id, "key", key, "graph", j.graph, "priority", priority,
			"state", j.state, "cache_hit", true)
		return s.statusLocked(j), nil
	}
	s.cacheMisses.Add(1)

	if f := inflight; coalescing {
		s.coalesced.Add(1)
		j.coalesced = true
		j.flight = f
		f.refs++
		f.jobs = append(f.jobs, j)
		s.cfg.Logger.Info("job submitted",
			"job", j.id, "key", key, "graph", j.graph, "priority", priority,
			"state", StateQueued, "coalesced", true)
		if f.running {
			j.state = StateRunning
			j.started = s.cfg.Now()
		} else {
			j.state = StateQueued
			// A high-priority submission drags its shared flight forward.
			if priority > f.prio {
				f.prio = priority
				heap.Fix(&s.queue, f.index)
			}
		}
		return s.statusLocked(j), nil
	}

	fctx, fcancel := context.WithCancel(s.ctx)
	s.flightSeq++
	f := &flight{
		key:      key,
		problem:  p,
		seq:      s.flightSeq,
		prio:     priority,
		refs:     1,
		jobs:     []*Job{j},
		enqueued: j.submitted,
		ctx:      fctx,
		cancel:   fcancel,
	}
	f.logCond = sync.NewCond(&f.logMu)
	j.state = StateQueued
	j.flight = f
	s.flights[key] = f
	heap.Push(&s.queue, f)
	s.cond.Signal()
	s.cfg.Logger.Info("job submitted",
		"job", j.id, "key", key, "graph", j.graph, "priority", priority,
		"state", StateQueued)
	return s.statusLocked(j), nil
}

// applyDefaults fills the server-default strategy, mode and objectives into
// options that leave them empty, before the problem is hashed — so the
// cache identity always records the walk and fold that will actually run.
func (s *Server) applyDefaults(o ingest.Options) (ingest.Options, bool) {
	changed := false
	if o.Strategy == "" && s.cfg.DefaultStrategy != "" {
		o.Strategy = s.cfg.DefaultStrategy
		changed = true
	}
	if o.Mode == "" && s.cfg.DefaultMode != "" {
		o.Mode = s.cfg.DefaultMode
		changed = true
	}
	if mode, err := ingest.ParseMode(o.Mode); err == nil && mode == ingest.ModePareto &&
		o.Objectives == "" && s.cfg.DefaultObjectives != "" {
		o.Objectives = s.cfg.DefaultObjectives
		changed = true
	}
	return o, changed
}

// Job returns a snapshot of the job with the given ID.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return s.statusLocked(j), nil
}

// Jobs returns snapshots of every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Cancel cancels a queued or running job. The job is detached from its
// flight immediately; the underlying engine execution is cancelled only
// when no other job is attached to it. Cancelling a finished job returns
// ErrFinished.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	if j.state.Terminal() {
		return s.statusLocked(j), fmt.Errorf("%w (%s is %s)", ErrFinished, id, j.state)
	}
	j.state = StateCanceled
	j.finished = s.cfg.Now()
	j.detached.Store(true)
	s.terminal++
	if s.store != nil {
		// Losing a cancel record is safe — the job would merely re-run
		// after a crash — so a failed append only warns.
		if err := s.store.Append(storeRecord{Kind: "cancel", ID: j.id, At: j.finished}); err != nil {
			s.cfg.Logger.Warn("store append failed", "kind", "cancel", "job", j.id, "error", err.Error())
		}
	}
	s.cfg.Logger.Info("job canceled", "job", j.id, "key", j.key)
	if f := j.flight; f != nil {
		f.refs--
		if f.refs == 0 {
			f.cancel()
			// Unpublish the dying flight either way, so an identical
			// resubmission starts fresh instead of coalescing onto a
			// cancelled execution and being reported canceled itself.
			delete(s.flights, f.key)
			if !f.running {
				// Still queued: nothing will ever run it; retire it now.
				heap.Remove(&s.queue, f.index)
				defer f.close()
			}
		}
		defer f.notify()
	}
	s.pruneLocked()
	return s.statusLocked(j), nil
}

// Watch returns a progress watcher for the job, replaying the events
// already emitted and following the live stream.
func (s *Server) Watch(id string) (*Watcher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return &Watcher{j: j, f: j.flight}, nil
}

// Watcher iterates a job's progress events in enumeration order. Each job's
// watchers see the same sequence: a replay of everything already emitted,
// then the live tail.
type Watcher struct {
	j    *Job
	f    *flight
	next int
}

// Next blocks until another progress event is available and returns it.
// It returns ok=false when the stream is over: the flight finished, the
// job was canceled, or ctx was cancelled (client gone).
func (w *Watcher) Next(ctx context.Context) (ProgressEvent, bool) {
	f := w.f
	if f == nil {
		return ProgressEvent{}, false // cache-hit job: no computation ran
	}
	stop := context.AfterFunc(ctx, f.notify)
	defer stop()
	f.logMu.Lock()
	defer f.logMu.Unlock()
	for {
		if w.next < len(f.events) {
			ev := f.events[w.next]
			w.next++
			return ev, true
		}
		if f.closed || ctx.Err() != nil || w.j.detached.Load() {
			return ProgressEvent{}, false
		}
		f.logCond.Wait()
	}
}

// worker serves flights off the priority queue until Close drains the
// server.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		f := heap.Pop(&s.queue).(*flight)
		if f.refs == 0 {
			// Raced with a cancellation that did not retire it; nothing to do.
			if cur, ok := s.flights[f.key]; ok && cur == f {
				delete(s.flights, f.key)
			}
			s.mu.Unlock()
			f.close()
			continue
		}
		f.running = true
		started := s.cfg.Now()
		for _, j := range f.jobs {
			if j.state == StateQueued {
				j.state = StateRunning
				j.started = started
			}
		}
		wait := started.Sub(f.enqueued).Seconds()
		s.mu.Unlock()
		s.queueWaitHist.Observe(wait)
		s.cfg.Logger.Info("flight started",
			"key", f.key, "jobs", len(f.jobs), "queue_wait_sec", wait)
		s.run(f)
	}
}

// run executes a flight and fans its outcome out to every attached job.
func (s *Server) run(f *flight) {
	execStart := s.cfg.Now()
	result, summary, stats, err := s.execute(f)
	execSec := s.cfg.Now().Sub(execStart).Seconds()
	s.execHist.Observe(execSec)
	s.mu.Lock()
	// Retire only our own entry: a cancellation may already have
	// unpublished this flight and let a fresh one claim the key.
	if cur, ok := s.flights[f.key]; ok && cur == f {
		delete(s.flights, f.key)
	}
	if err == nil {
		total := 0
		f.logMu.Lock()
		if n := len(f.events); n > 0 {
			total = f.events[n-1].Total
		}
		f.logMu.Unlock()
		s.cache.Add(&cacheEntry{key: f.key, result: result, summary: summary, total: total, stats: stats})
	}
	now := s.cfg.Now()
	finished := 0
	for _, j := range f.jobs {
		if j.state != StateRunning {
			continue // individually canceled while we ran
		}
		j.finished = now
		switch {
		case err == nil:
			j.state = StateDone
			j.result = result
			j.summary = summary
			j.stats = stats
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.state = StateCanceled
			j.errMsg = "canceled"
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
		}
		if s.store != nil {
			// A lost result record only costs a deterministic re-run after
			// the next crash, so a failed append warns rather than failing
			// the job.
			total := 0
			if j.state == StateDone {
				f.logMu.Lock()
				if n := len(f.events); n > 0 {
					total = f.events[n-1].Total
				}
				f.logMu.Unlock()
			}
			aerr := s.store.Append(storeRecord{
				Kind: "result", ID: j.id, Key: f.key, State: j.state,
				Result: j.result, Summary: j.summary, Total: total,
				Error: j.errMsg, At: now,
			})
			if aerr != nil {
				s.cfg.Logger.Warn("store append failed", "kind", "result", "job", j.id, "error", aerr.Error())
			}
		}
		s.terminal++
		finished++
	}
	s.pruneLocked()
	s.mu.Unlock()
	f.close()
	outcome := "done"
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "canceled"
	case err != nil:
		outcome = "failed"
	}
	logArgs := []any{"key", f.key, "outcome", outcome, "jobs", finished, "exec_sec", execSec}
	if err != nil {
		logArgs = append(logArgs, "error", err.Error())
	}
	s.cfg.Logger.Info("flight finished", logArgs...)
}

// execute runs the engine for a flight. This is the only place the service
// calls into the optimizer; the engine-execution counter around it is what
// the single-flight and cache tests assert on.
func (s *Server) execute(f *flight) (result []byte, summary string, stats *seadopt.ExploreStats, err error) {
	if hook := s.hookExecute; hook != nil {
		hook(f)
	}
	o := f.problem.Options
	mode, err := ingest.ParseMode(o.Mode)
	if err != nil {
		return nil, "", nil, err
	}
	if mode == ingest.ModeSweep {
		return s.executeSweep(f)
	}
	sys, err := seadopt.NewSystem(f.problem.Graph, f.problem.Platform)
	if err != nil {
		return nil, "", nil, err
	}
	strategy, err := seadopt.ParseExploreStrategy(o.Strategy)
	if err != nil {
		return nil, "", nil, err
	}
	objectives, err := seadopt.ParseParetoObjectives(o.Objectives)
	if err != nil {
		return nil, "", nil, err
	}
	stats = new(seadopt.ExploreStats)
	prunedSoFar := 0 // engine Progress callbacks are serialized in order
	opts := seadopt.OptimizeOptions{
		Stats:            stats,
		SER:              o.SER,
		DeadlineSec:      o.DeadlineSec,
		StreamIterations: o.StreamIterations,
		SearchMoves:      o.SearchMoves,
		Seed:             o.Seed,
		Strategy:         strategy,
		SampleBudget:     o.SampleBudget,
		Objectives:       objectives,
		Parallelism:      s.cfg.EngineParallelism,
		Progress: func(p seadopt.ExploreProgress) {
			s.mirrorProgress(f, 0, &prunedSoFar, p)
		},
	}
	// Share the verdict-preserving reuse layer (probe trajectories, bounds,
	// pooled evaluators) across every job over the same probe universe.
	if pk, kerr := f.problem.ProbeKey(); kerr == nil {
		opts.Reuse = s.reuses.Get(pk)
	}
	// Distributed execution: when peers (or an explicit shard count) are
	// configured and the job shape is distributable, fan the enumeration out
	// over shards and merge through the byte-identical replay. Engine
	// telemetry is per-process, so sharded flights carry no stats snapshot
	// (their /stats endpoint answers 409) — the result and progress bytes
	// are still identical to a single-node run.
	runners, shardCleanup := s.shardRunnersFor(f, sys, opts, strategy, mode)
	if runners != nil {
		defer shardCleanup()
		stats = nil
		opts.Stats = nil
	}
	// Warm-start from a fingerprint-matching prior result whose deadline or
	// objectives differed. Seeds are re-validated against this run's
	// constraints by the engine, so the result bytes are identical to a
	// cold run — only pruning gets ahead of itself.
	bnb := strategy == seadopt.StrategyBranchAndBound
	warmable := !s.cfg.DisableWarmStart && o.Baseline == ""
	var fp string
	if warmable {
		v, ferr := f.problem.Fingerprint()
		if ferr != nil {
			warmable = false
		}
		fp = v
	}
	s.engineExecs.Add(1)
	if mode == ingest.ModePareto {
		if warmable && bnb {
			if ghosts := s.warm.Frontier(warmParetoKey(fp, o)); len(ghosts) > 0 {
				opts.WarmFrontier = ghosts
				s.warmStarts.Add(1)
			}
		}
		s.paretoJobs.Add(1)
		var frontier []*seadopt.Design
		if runners != nil {
			frontier, err = sys.OptimizeShardedParetoContext(f.ctx, opts, runners)
		} else {
			frontier, err = sys.OptimizeParetoContext(f.ctx, opts)
		}
		if err != nil {
			return nil, "", nil, err
		}
		if warmable {
			s.recordFrontier(warmParetoKey(fp, o), frontierWarmPoints(sys, o.DeadlineSec, frontier))
		}
		s.frontierSize.Store(int64(len(frontier)))
		result, summary, err = marshalFrontier(frontier, objectives)
		return result, summary, stats, err
	}
	var d *seadopt.Design
	switch o.Baseline {
	case "":
		if warmable && bnb {
			if hints := s.warm.Hints(warmScalarKey(fp, o)); len(hints) > 0 {
				opts.WarmHints = hints
				s.warmStarts.Add(1)
			}
		}
		if runners != nil {
			d, err = sys.OptimizeShardedContext(f.ctx, opts, runners)
		} else {
			d, err = sys.OptimizeContext(f.ctx, opts)
		}
	case "reg":
		d, err = sys.OptimizeBaselineContext(f.ctx, seadopt.MinimizeRegisterUsage, opts)
	case "makespan":
		d, err = sys.OptimizeBaselineContext(f.ctx, seadopt.MinimizeMakespan, opts)
	case "regtime":
		d, err = sys.OptimizeBaselineContext(f.ctx, seadopt.MinimizeRegTime, opts)
	default:
		return nil, "", nil, fmt.Errorf("service: unknown baseline %q", o.Baseline)
	}
	if err != nil {
		return nil, "", nil, err
	}
	if warmable && (o.DeadlineSec <= 0 || d.Eval.MeetsDeadline) {
		if rank, rerr := sys.ScalingRank(d.Scaling); rerr == nil {
			s.recordHint(warmScalarKey(fp, o), rank)
		}
	}
	result, err = json.Marshal(d)
	if err != nil {
		return nil, "", nil, err
	}
	return result, d.Summary(), stats, nil
}

// mirrorProgress folds one engine progress callback into the flight's event
// log. point tags sweep events with their 1-based sweep point (0 — absent on
// the wire — for single-point jobs); prunedSoFar is the job-wide cumulative
// pruned/skipped counter (engine callbacks are serialized in order, per
// point and across sweep points).
func (s *Server) mirrorProgress(f *flight, point int, prunedSoFar *int, p seadopt.ExploreProgress) {
	ev := ProgressEvent{
		Index:        p.Index,
		Total:        p.Total,
		Combination:  p.Combination,
		Scaling:      append([]int{}, p.Scaling...),
		Pruned:       p.Pruned,
		Skipped:      p.Skipped,
		Admitted:     p.Admitted,
		FrontierSize: p.FrontierSize,
		Point:        point,
	}
	if p.Pruned || p.Skipped {
		*prunedSoFar++
		s.pruned.Add(1)
	} else {
		s.explored.Add(1)
		ev.PowerW = p.Design.Eval.PowerW
		ev.Gamma = p.Design.Eval.Gamma
		ev.Feasible = p.Design.Eval.MeetsDeadline
	}
	ev.PrunedTotal = *prunedSoFar
	if p.Best != nil {
		ev.BestPowerW = p.Best.Eval.PowerW
		ev.BestGamma = p.Best.Eval.Gamma
	}
	f.append(ev)
}

// recordHint records a scalar warm-start winner and journals it, so the
// warm registry survives a restart.
func (s *Server) recordHint(key string, rank int) {
	s.warm.RecordHint(key, rank)
	if s.store != nil {
		if err := s.store.Append(storeRecord{Kind: "hint", Key: key, Rank: rank}); err != nil {
			s.cfg.Logger.Warn("store append failed", "kind", "hint", "error", err.Error())
		}
	}
}

// recordFrontier records a Pareto warm-start frontier and journals it.
func (s *Server) recordFrontier(key string, points []seadopt.WarmPoint) {
	if len(points) == 0 {
		return
	}
	s.warm.RecordFrontier(key, points)
	if s.store != nil {
		if err := s.store.Append(storeRecord{Kind: "frontier", Key: key, Points: toStorePoints(points)}); err != nil {
			s.cfg.Logger.Warn("store append failed", "kind", "frontier", "error", err.Error())
		}
	}
}

// frontierWarmPoints converts a realized frontier into WarmPoint seeds for
// later Pareto runs over the same workload and deadline. Degenerate
// best-effort members that miss the deadline are excluded — they are not
// sound dominance ghosts.
func frontierWarmPoints(sys *seadopt.System, deadline float64, frontier []*seadopt.Design) []seadopt.WarmPoint {
	pts := make([]seadopt.WarmPoint, 0, len(frontier))
	for _, d := range frontier {
		if deadline > 0 && !d.Eval.MeetsDeadline {
			continue
		}
		rank, err := sys.ScalingRank(d.Scaling)
		if err != nil {
			continue
		}
		pts = append(pts, seadopt.WarmPoint{Combination: rank, Makespan: d.Eval.TMSeconds, Gamma: d.Eval.Gamma})
	}
	return pts
}

// marshalFrontier renders a Pareto frontier result: a wrapper object
// carrying the objective selection, the frontier size and the ordered
// member designs in the same wire encoding scalar results use. The encoding
// is deterministic, so frontier results cache and coalesce like scalar
// ones.
func marshalFrontier(frontier []*seadopt.Design, objectives seadopt.ParetoObjectives) ([]byte, string, error) {
	payload := struct {
		Mode       string            `json:"mode"`
		Objectives string            `json:"objectives"`
		Size       int               `json:"size"`
		Frontier   []*seadopt.Design `json:"frontier"`
	}{Mode: ingest.ModePareto, Objectives: objectives.String(), Size: len(frontier), Frontier: frontier}
	result, err := json.Marshal(payload)
	if err != nil {
		return nil, "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "pareto frontier over (%s): %d design(s)\n", objectives.String(), len(frontier))
	for i, d := range frontier {
		fmt.Fprintf(&sb, "  [%d] scaling %v  %s\n", i, d.Scaling, d.Eval.String())
	}
	return result, sb.String(), nil
}

// pruneLocked evicts the oldest finished jobs beyond the retention cap;
// the caller holds s.mu. Running and queued jobs are never evicted, and
// evicted results remain servable from the LRU cache.
func (s *Server) pruneLocked() {
	if s.cfg.JobRetention < 0 || s.terminal <= s.cfg.JobRetention {
		return
	}
	evict := s.terminal - s.cfg.JobRetention
	keep := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if evict > 0 && j.state.Terminal() {
			delete(s.jobs, id)
			s.terminal--
			evict--
			continue
		}
		keep = append(keep, id)
	}
	// Let the dropped tail be collected.
	for i := len(keep); i < len(s.jobOrder); i++ {
		s.jobOrder[i] = ""
	}
	s.jobOrder = keep
}

// statusLocked snapshots a job; the caller holds s.mu.
func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		Key:         j.key,
		Graph:       j.graph,
		State:       j.state,
		Priority:    j.priority,
		CacheHit:    j.cacheHit,
		Coalesced:   j.coalesced,
		Error:       j.errMsg,
		Summary:     j.summary,
		SubmittedAt: j.submitted,
		FinishedAt:  j.finished,
	}
	if !j.started.IsZero() {
		st.QueueWaitSec = j.started.Sub(j.submitted).Seconds()
		end := j.finished
		if end.IsZero() {
			end = s.cfg.Now() // still running: elapsed so far
		}
		st.RunSec = end.Sub(j.started).Seconds()
	}
	if j.state == StateDone {
		st.Result = j.result
		st.Stats = j.stats
	}
	if f := j.flight; f != nil {
		f.logMu.Lock()
		st.Completed = len(f.events)
		if n := len(f.events); n > 0 {
			st.Total = f.events[n-1].Total
		}
		f.logMu.Unlock()
	} else if j.total > 0 {
		// No flight to count from: a cache hit or a job recovered from the
		// durable store carries its finished enumeration size directly.
		st.Completed, st.Total = j.total, j.total
	}
	return st
}

// Metrics is a point-in-time snapshot of the server's operational counters.
type Metrics struct {
	QueueDepth           int              `json:"queue_depth"`
	Workers              int              `json:"workers"`
	Draining             bool             `json:"draining"`
	CacheEntries         int              `json:"cache_entries"`
	CacheCapacity        int              `json:"cache_capacity"`
	CacheHits            int64            `json:"cache_hits"`
	CacheMisses          int64            `json:"cache_misses"`
	CacheEvictions       int64            `json:"cache_evictions"`
	Coalesced            int64            `json:"coalesced"`
	EngineExecutions     int64            `json:"engine_executions"`
	Submitted            int64            `json:"submitted"`
	CombinationsExplored int64            `json:"combinations_explored"`
	CombinationsPruned   int64            `json:"combinations_pruned"`
	ParetoExecutions     int64            `json:"pareto_executions"`
	ParetoFrontierSize   int64            `json:"pareto_frontier_size"`
	SweepPoints          int64            `json:"sweep_points"`
	WarmStarts           int64            `json:"warm_starts"`
	ShardedExecutions    int64            `json:"sharded_executions"`
	ShardsServed         int64            `json:"shards_served"`
	Rejected             map[string]int64 `json:"rejected"`
	Jobs                 map[State]int64  `json:"jobs"`

	// Latency distributions.
	QueueWait HistogramSnapshot            `json:"queue_wait_seconds"`
	ExecTime  HistogramSnapshot            `json:"engine_exec_seconds"`
	HTTP      map[string]HistogramSnapshot `json:"http_request_seconds"`

	// Go runtime health, read at snapshot time.
	Goroutines      int     `json:"goroutines"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	GCCycles        uint32  `json:"gc_cycles"`
	GCPauseTotalSec float64 `json:"gc_pause_total_sec"`

	// Build identity (buildinfo.Read).
	BuildVersion  string `json:"build_version"`
	BuildRevision string `json:"build_revision"`
	BuildGo       string `json:"build_go"`
}

// Metrics snapshots the server counters, including jobs-per-state gauges.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		QueueDepth:           len(s.queue),
		Workers:              s.cfg.Workers,
		Draining:             s.draining,
		CacheEntries:         s.cache.Len(),
		CacheCapacity:        s.cfg.CacheEntries,
		CacheHits:            s.cacheHits.Load(),
		CacheMisses:          s.cacheMisses.Load(),
		CacheEvictions:       s.cache.Evictions(),
		Coalesced:            s.coalesced.Load(),
		EngineExecutions:     s.engineExecs.Load(),
		Submitted:            s.submitted.Load(),
		CombinationsExplored: s.explored.Load(),
		CombinationsPruned:   s.pruned.Load(),
		ParetoExecutions:     s.paretoJobs.Load(),
		ParetoFrontierSize:   s.frontierSize.Load(),
		SweepPoints:          s.sweepPoints.Load(),
		WarmStarts:           s.warmStarts.Load(),
		ShardedExecutions:    s.shardedExecs.Load(),
		ShardsServed:         s.shardsServed.Load(),
		Rejected: map[string]int64{
			rejectDraining:        s.rejectedDraining.Load(),
			rejectPayloadTooLarge: s.rejectedPayload.Load(),
			rejectQueueFull:       s.rejectedQueue.Load(),
			rejectRateLimit:       s.rejectedRate.Load(),
		},
		Jobs: make(map[State]int64),
	}
	for _, j := range s.jobs {
		m.Jobs[j.state]++
	}
	m.QueueWait = s.queueWaitHist.Snapshot()
	m.ExecTime = s.execHist.Snapshot()
	m.HTTP = make(map[string]HistogramSnapshot)
	s.httpMu.Lock()
	for route, h := range s.httpHists {
		m.HTTP[route] = h.Snapshot()
	}
	s.httpMu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Goroutines = runtime.NumGoroutine()
	m.HeapAllocBytes = ms.HeapAlloc
	m.HeapSysBytes = ms.HeapSys
	m.GCCycles = ms.NumGC
	m.GCPauseTotalSec = float64(ms.PauseTotalNs) / 1e9

	info := buildinfo.Read()
	m.BuildVersion = info.Version
	m.BuildRevision = info.Revision
	m.BuildGo = info.Go
	return m
}

// httpHist returns (creating on first use) the latency histogram for a
// route pattern.
func (s *Server) httpHist(route string) *histogram {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	h, ok := s.httpHists[route]
	if !ok {
		h = newHistogram(latencyBuckets())
		s.httpHists[route] = h
	}
	return h
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close drains the server: new submissions are rejected, queued and running
// flights are allowed to finish, and Close returns when the worker pool has
// exited. If ctx expires first, every remaining flight is cancelled and
// Close waits for the (prompt) abort before returning ctx.Err().
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cfg.Logger.Info("server draining")

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		s.closeStore()
		return nil
	case <-ctx.Done():
		s.cancel() // aborts in-flight engine executions promptly
		<-done
		s.closeStore()
		return ctx.Err()
	}
}

func (s *Server) closeStore() {
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			s.cfg.Logger.Warn("store close failed", "error", err.Error())
		}
	}
}
