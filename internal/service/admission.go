package service

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Rejection reason labels shared by the structured logs, the Metrics
// snapshot and the seadoptd_rejected_total{reason=...} series.
const (
	rejectDraining        = "draining"
	rejectPayloadTooLarge = "payload_too_large"
	rejectQueueFull       = "queue_full"
	rejectRateLimit       = "rate_limit"
)

// rejectReasons fixes the rendering order of seadoptd_rejected_total so the
// exposition is byte-stable and every reason is always present.
var rejectReasons = []string{rejectDraining, rejectPayloadTooLarge, rejectQueueFull, rejectRateLimit}

// rateLimiter is a per-client token bucket over the server's injected
// clock: each client key holds up to burst tokens, refilled at rate tokens
// per second; a submission spends one. It is deliberately approximate
// across clients (a shared map under one mutex — submissions are not a hot
// path) but exact per client, so tests with a fake clock can assert the
// precise breach point.
type rateLimiter struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	now   func() time.Time
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiterMaxClients caps the bucket map; beyond it, full (idle) buckets
// are swept so an attacker rotating client IDs cannot grow memory without
// bound.
const rateLimiterMaxClients = 8192

func newRateLimiter(rate, burst float64, now func() time.Time) *rateLimiter {
	return &rateLimiter{rate: rate, burst: burst, now: now, m: make(map[string]*bucket)}
}

// allow spends one token from key's bucket. When the bucket is empty it
// returns false and how long until the next token accrues — the
// Retry-After the HTTP layer surfaces.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.m[key]
	if !ok {
		if len(l.m) >= rateLimiterMaxClients {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.m[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / l.rate
	return false, time.Duration(wait * float64(time.Second))
}

// sweepLocked drops buckets that have refilled to full — clients idle long
// enough that forgetting them changes nothing.
func (l *rateLimiter) sweepLocked(now time.Time) {
	for key, b := range l.m {
		tokens := b.tokens
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			tokens = math.Min(l.burst, tokens+dt*l.rate)
		}
		if tokens >= l.burst {
			delete(l.m, key)
		}
	}
}

// clientKey identifies the submitting client for rate limiting: an explicit
// X-Client-Id header, else the remote address without the ephemeral port.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders a Retry-After value: whole seconds, rounded up,
// at least 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
