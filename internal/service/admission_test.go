package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postRaw fires one submission and returns the response (caller closes).
func postRaw(t *testing.T, base string, body []byte, clientID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-Id", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRateLimitReturns429: with a 1/s limit and burst 1, the second
// submission in the same instant gets 429 with a Retry-After; after the
// bucket refills it is accepted again. Limits are per client key, so a
// distinct X-Client-Id is unaffected.
func TestRateLimitReturns429(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	_, ts := newHTTPServer(t, Config{Workers: 1, RateLimit: 1, RateBurst: 1, Now: clk.Now})
	body := mpeg2Envelope(t)

	resp := postRaw(t, ts.URL, body, "alice")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("first submission: %d", resp.StatusCode)
	}

	resp = postRaw(t, ts.URL, body, "alice")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission: %d, want 429: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After %q, want \"1\"", ra)
	}
	if !strings.Contains(string(raw), "rate") {
		t.Fatalf("429 body does not explain the rejection: %s", raw)
	}

	// A different client is not affected by alice's bucket.
	resp = postRaw(t, ts.URL, body, "bob")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("distinct client: %d, want accepted", resp.StatusCode)
	}

	// After the advertised wait the bucket has a token again.
	clk.Advance(time.Second)
	resp = postRaw(t, ts.URL, body, "alice")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill submission: %d, want accepted", resp.StatusCode)
	}

	if got := metricValue(t, ts.URL, `seadoptd_rejected_total{reason="rate_limit"}`); got != 1 {
		t.Fatalf("rejected_total{rate_limit} = %d, want 1", got)
	}
}

// TestQueueFullReturns503: when the queue is at capacity, submissions get
// 503 with Retry-After — backpressure, not a client fault — and count under
// the queue_full rejection reason.
func TestQueueFullReturns503(t *testing.T) {
	s, ts := newHTTPServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.hookExecute = func(*flight) { <-release }
	defer close(release)

	envelope := func(seed int) []byte {
		body := mpeg2Envelope(t)
		return bytes.Replace(body, []byte(`"seed":2010`), []byte(fmt.Sprintf(`"seed":%d`, seed)), 1)
	}

	// Seed 1 occupies the worker, seed 2 fills the queue, seed 3 overflows.
	for i, seed := range []int{1, 2} {
		resp := postRaw(t, ts.URL, envelope(seed), "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: %d", i, resp.StatusCode)
		}
	}
	resp := postRaw(t, ts.URL, envelope(3), "")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: %d, want 503: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("503 Retry-After %q, want \"1\"", ra)
	}
	if got := metricValue(t, ts.URL, `seadoptd_rejected_total{reason="queue_full"}`); got != 1 {
		t.Fatalf("rejected_total{queue_full} = %d, want 1", got)
	}
}

// TestPayloadTooLargeReturns413: bodies over MaxBodyBytes are rejected with
// 413 before any parsing, and counted under payload_too_large.
func TestPayloadTooLargeReturns413(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1, MaxBodyBytes: 64 << 10})
	resp := postRaw(t, ts.URL, bytes.Repeat([]byte("x"), 128<<10), "")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission: %d, want 413: %s", resp.StatusCode, raw)
	}
	if got := metricValue(t, ts.URL, `seadoptd_rejected_total{reason="payload_too_large"}`); got != 1 {
		t.Fatalf("rejected_total{payload_too_large} = %d, want 1", got)
	}
	// A normally-sized submission still goes through.
	resp = postRaw(t, ts.URL, mpeg2Envelope(t), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("normal submission under a body cap: %d", resp.StatusCode)
	}
}

// TestRejectionMetricsLint: every rejection reason is always exported (zero
// or not), and the whole exposition passes the format lint.
func TestRejectionMetricsLint(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, reason := range rejectReasons {
		series := fmt.Sprintf("seadoptd_rejected_total{reason=%q} 0", reason)
		if !strings.Contains(string(raw), series) {
			t.Errorf("fresh /metrics is missing %s", series)
		}
	}
	for _, name := range []string{"seadoptd_sharded_executions_total 0", "seadoptd_shards_served_total 0"} {
		if !strings.Contains(string(raw), name) {
			t.Errorf("fresh /metrics is missing %s", name)
		}
	}
	if err := LintMetrics(raw); err != nil {
		t.Fatalf("metrics lint: %v", err)
	}
}

// TestRateLimiterBuckets covers the limiter in isolation: burst semantics,
// refill over time and the bounded-map sweep.
func TestRateLimiterBuckets(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	l := newRateLimiter(2, 2, clk.Now)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("k"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.allow("k")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("wait %v, want (0, 500ms] at 2/s", wait)
	}
	clk.Advance(wait)
	if ok, _ := l.allow("k"); !ok {
		t.Fatal("request after advertised wait denied")
	}

	// The client map stays bounded: once every bucket has idled back to
	// full, the insert that would exceed the cap sweeps them all out.
	for i := 0; i < rateLimiterMaxClients; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	clk.Advance(time.Minute) // everyone refills to full
	for i := 0; i < 10; i++ {
		l.allow(fmt.Sprintf("late-%d", i))
	}
	l.mu.Lock()
	n := len(l.m)
	l.mu.Unlock()
	if n > rateLimiterMaxClients {
		t.Fatalf("limiter holds %d buckets, cap %d", n, rateLimiterMaxClients)
	}
}

// TestRetryAfterSeconds: the Retry-After header must be a whole positive
// second count — RFC 9110 allows 0, but a 0 invites an immediate retry
// storm, so the renderer rounds up and clamps to at least 1.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
