package service

import (
	"container/list"

	"seadopt"
)

// cacheEntry is a finished optimization result, content-addressed by its
// ProblemKey: the wire-encoded Design plus the human summary, the size of
// the exploration that produced it and its telemetry snapshot.
type cacheEntry struct {
	key     string
	result  []byte // Design wire JSON (seadopt.Design.MarshalJSON)
	summary string
	total   int // scaling combinations explored
	stats   *seadopt.ExploreStats
}

// lruCache is a fixed-capacity LRU over finished results. It is not
// goroutine-safe; the Server serializes access under its mutex.
type lruCache struct {
	cap       int
	ll        *list.List // front = most recently used; values are *cacheEntry
	m         map[string]*list.Element
	evictions int64 // entries dropped by the capacity bound, ever
}

// newLRUCache returns a cache holding at most capacity entries; a
// non-positive capacity disables caching entirely (every Get misses, every
// Add is dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the entry for key and promotes it to most-recently-used.
func (c *lruCache) Get(key string) (*cacheEntry, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// Add inserts (or refreshes) an entry, evicting the least-recently-used
// entry beyond capacity.
func (c *lruCache) Add(e *cacheEntry) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.m[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.m[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached results.
func (c *lruCache) Len() int { return c.ll.Len() }

// Evictions returns how many entries the capacity bound has dropped since
// the cache was created.
func (c *lruCache) Evictions() int64 { return c.evictions }
