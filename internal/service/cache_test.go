package service

import (
	"fmt"
	"testing"
)

func entry(i int) *cacheEntry {
	return &cacheEntry{key: fmt.Sprintf("k%d", i), result: []byte(fmt.Sprintf("r%d", i)), total: i}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Add(entry(1))
	c.Add(entry(2))
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 evicted below capacity")
	}
	// k1 is now most recent; adding k3 evicts k2.
	c.Add(entry(3))
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived past capacity")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently-used k1 evicted")
	}
	if _, ok := c.Get("k3"); !ok {
		t.Fatal("fresh k3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestLRUCacheRefresh(t *testing.T) {
	c := newLRUCache(2)
	c.Add(entry(1))
	e := entry(1)
	e.result = []byte("updated")
	c.Add(e)
	if c.Len() != 1 {
		t.Fatalf("refreshing an entry grew the cache to %d", c.Len())
	}
	got, ok := c.Get("k1")
	if !ok || string(got.result) != "updated" {
		t.Fatalf("refresh lost: %v %q", ok, got.result)
	}
}

func TestLRUCacheDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.Add(entry(1))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache non-empty")
	}
}
