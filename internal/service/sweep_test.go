package service

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"seadopt/internal/arch"
	"seadopt/internal/ingest"
	"seadopt/internal/taskgraph"
)

// sweepProblem is an MPEG-2 deadline sweep across the primary 4-core
// platform plus one extra 3-core sweep platform.
func sweepProblem(t *testing.T, deadlines []float64) *ingest.Problem {
	t.Helper()
	return &ingest.Problem{
		Graph:          taskgraph.MPEG2(),
		Platform:       arch.MustNewPlatform(4, arch.ARM7Levels3()),
		SweepPlatforms: []*arch.Platform{arch.MustNewPlatform(3, arch.ARM7Levels3())},
		Options: ingest.Options{
			Mode:             ingest.ModeSweep,
			SweepDeadlines:   deadlines,
			SweepPointMode:   "scalar",
			StreamIterations: taskgraph.MPEG2Frames,
			Seed:             2010,
		},
	}
}

// TestSweepJobEndToEnd submits one mode=sweep job — 3 deadlines × 2
// platforms — and checks the aggregate result against equivalent
// single-point submissions point by point: every sweep point's design must
// be byte-identical to what a cold standalone job over the same (graph,
// platform, deadline) serves, and the progress stream must tag every event
// with its 1-based point in nondecreasing order.
func TestSweepJobEndToEnd(t *testing.T) {
	d := taskgraph.MPEG2Deadline
	deadlines := []float64{d * 1.2, d, d * 0.8}
	s := newTestServer(t, Config{Workers: 1})
	st, err := s.Submit(sweepProblem(t, deadlines), 0)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, s, st.ID, StateDone)

	var agg struct {
		Mode      string `json:"mode"`
		PointMode string `json:"point_mode"`
		Platforms int    `json:"platforms"`
		Size      int    `json:"size"`
		Points    []struct {
			Point       int             `json:"point"`
			Platform    int             `json:"platform"`
			DeadlineSec float64         `json:"deadline_sec"`
			Design      json.RawMessage `json:"design"`
		} `json:"points"`
	}
	if err := json.Unmarshal(final.Result, &agg); err != nil {
		t.Fatalf("aggregate result: %v\n%s", err, final.Result)
	}
	if agg.Mode != "sweep" || agg.PointMode != "scalar" || agg.Platforms != 2 || agg.Size != 6 || len(agg.Points) != 6 {
		t.Fatalf("aggregate envelope mode=%s point_mode=%s platforms=%d size=%d points=%d, want sweep/scalar/2/6/6",
			agg.Mode, agg.PointMode, agg.Platforms, agg.Size, len(agg.Points))
	}

	// Each point must serve the same design bytes as a cold single-point
	// job on a fresh server.
	cold := newTestServer(t, Config{Workers: 1})
	platforms := []*arch.Platform{arch.MustNewPlatform(4, arch.ARM7Levels3()), arch.MustNewPlatform(3, arch.ARM7Levels3())}
	for i, pt := range agg.Points {
		if pt.Point != i+1 {
			t.Fatalf("point %d numbered %d, want 1-based submission order", i, pt.Point)
		}
		single := &ingest.Problem{
			Graph:    taskgraph.MPEG2(),
			Platform: platforms[pt.Platform],
			Options: ingest.Options{
				DeadlineSec:      pt.DeadlineSec,
				StreamIterations: taskgraph.MPEG2Frames,
				Seed:             2010,
			},
		}
		sst, err := cold.Submit(single, 0)
		if err != nil {
			t.Fatal(err)
		}
		sfinal := waitState(t, cold, sst.ID, StateDone)
		if !bytes.Equal(pt.Design, sfinal.Result) {
			t.Errorf("sweep point %d (platform %d, deadline %v) diverged from the standalone job:\n  sweep: %s\n  solo:  %s",
				pt.Point, pt.Platform, pt.DeadlineSec, pt.Design, sfinal.Result)
		}
	}

	// The progress stream must tag every event with its 1-based point, and
	// points must stream in order.
	w, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	last, events := 0, 0
	for {
		ev, ok := w.Next(context.Background())
		if !ok {
			break
		}
		events++
		if ev.Point < 1 || ev.Point > 6 {
			t.Fatalf("sweep event carries point %d, want 1..6", ev.Point)
		}
		if ev.Point < last {
			t.Fatalf("point %d streamed after point %d", ev.Point, last)
		}
		last = ev.Point
	}
	if events == 0 {
		t.Fatal("sweep job streamed no progress events")
	}
	if last != 6 {
		t.Fatalf("last streamed point is %d, want 6", last)
	}
	if got := s.Metrics(); got.SweepPoints != 6 {
		t.Fatalf("SweepPoints metric = %d, want 6", got.SweepPoints)
	}
}

// TestSweepHTTPEndToEnd covers the wire surface of sweep mode: a JSON
// envelope with mode=sweep, Pareto point mode crossing two objective sets,
// and an extra entry in the "platforms" list; the SSE stream must tag every
// progress event with its sweep point and the aggregate result must carry
// one frontier per point.
func TestSweepHTTPEndToEnd(t *testing.T) {
	_, ts := newHTTPServer(t, Config{Workers: 1})
	gj, err := taskgraph.MPEG2().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]any{
		"format":    "json",
		"graph":     json.RawMessage(gj),
		"platform":  map[string]int{"cores": 4, "levels": 3},
		"platforms": []any{map[string]int{"cores": 3, "levels": 3}},
		"options": map[string]any{
			"mode":                 "sweep",
			"sweep_point_mode":     "pareto",
			"sweep_deadlines":      []float64{taskgraph.MPEG2Deadline, taskgraph.MPEG2Deadline * 0.8},
			"sweep_objective_sets": []string{"", "power,makespan"},
			"stream_iterations":    taskgraph.MPEG2Frames,
			"seed":                 2010,
		},
	}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	st := postJob(t, ts.URL, body)
	final := waitJobHTTP(t, ts.URL, st.ID, StateDone)

	var agg struct {
		Mode      string `json:"mode"`
		PointMode string `json:"point_mode"`
		Platforms int    `json:"platforms"`
		Size      int    `json:"size"`
		Points    []struct {
			Point      int    `json:"point"`
			Objectives string `json:"objectives"`
			Size       int    `json:"size"`
		} `json:"points"`
	}
	if err := json.Unmarshal(final.Result, &agg); err != nil {
		t.Fatalf("aggregate result: %v\n%s", err, final.Result)
	}
	// 2 platforms × 2 deadlines × 2 objective sets.
	if agg.Mode != "sweep" || agg.PointMode != "pareto" || agg.Platforms != 2 || agg.Size != 8 {
		t.Fatalf("aggregate envelope mode=%s point_mode=%s platforms=%d size=%d, want sweep/pareto/2/8",
			agg.Mode, agg.PointMode, agg.Platforms, agg.Size)
	}
	for i, pt := range agg.Points {
		if pt.Point != i+1 {
			t.Fatalf("point %d numbered %d", i, pt.Point)
		}
		if pt.Size < 1 {
			t.Fatalf("point %d has an empty frontier", pt.Point)
		}
	}

	events, done := readSSE(t, ts.URL, st.ID)
	if len(events) == 0 {
		t.Fatal("no SSE progress events")
	}
	last := 0
	for _, ev := range events {
		if ev.Point < 1 || ev.Point > 8 {
			t.Fatalf("SSE event carries point %d, want 1..8", ev.Point)
		}
		if ev.Point < last {
			t.Fatalf("SSE point %d streamed after point %d", ev.Point, last)
		}
		last = ev.Point
	}
	if done.State != StateDone {
		t.Fatalf("terminal SSE state %s", done.State)
	}
	if got := metricValue(t, ts.URL, "seadoptd_sweep_points_total"); got != 8 {
		t.Fatalf("seadoptd_sweep_points_total = %d, want 8", got)
	}
}

// TestWarmStartAcrossJobs submits two jobs that differ only in deadline:
// the second must be seeded from the first (WarmStarts metric) while
// serving exactly the bytes a warm-start-disabled server computes cold.
func TestWarmStartAcrossJobs(t *testing.T) {
	run := func(cfg Config) (first, second []byte, m Metrics) {
		s := newTestServer(t, cfg)
		a := mpeg2Problem(t, 2010)
		st, err := s.Submit(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		first = waitState(t, s, st.ID, StateDone).Result

		b := mpeg2Problem(t, 2010)
		b.Options.DeadlineSec = taskgraph.MPEG2Deadline * 1.25
		st, err = s.Submit(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		second = waitState(t, s, st.ID, StateDone).Result
		return first, second, s.Metrics()
	}

	_, warmSecond, warmMetrics := run(Config{Workers: 1})
	if warmMetrics.WarmStarts < 1 {
		t.Errorf("WarmStarts = %d after a fingerprint-matching resubmission, want >= 1", warmMetrics.WarmStarts)
	}
	_, coldSecond, coldMetrics := run(Config{Workers: 1, DisableWarmStart: true})
	if coldMetrics.WarmStarts != 0 {
		t.Errorf("WarmStarts = %d on a warm-start-disabled server, want 0", coldMetrics.WarmStarts)
	}
	if !bytes.Equal(warmSecond, coldSecond) {
		t.Errorf("warm-started result differs from cold result:\n  warm: %s\n  cold: %s", warmSecond, coldSecond)
	}
}

// TestWarmStartFromSweep: a mode=sweep job's winners land in the cross-job
// warm registry, so a later single-point submission of the same workload
// warm-starts from the sweep — serving exactly the bytes a
// warm-start-disabled server computes cold.
func TestWarmStartFromSweep(t *testing.T) {
	d := taskgraph.MPEG2Deadline
	run := func(cfg Config) ([]byte, Metrics) {
		s := newTestServer(t, cfg)
		st, err := s.Submit(sweepProblem(t, []float64{d * 1.2, d}), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, st.ID, StateDone)
		st, err = s.Submit(mpeg2Problem(t, 2010), 0)
		if err != nil {
			t.Fatal(err)
		}
		return waitState(t, s, st.ID, StateDone).Result, s.Metrics()
	}
	warm, wm := run(Config{Workers: 1})
	if wm.WarmStarts < 1 {
		t.Errorf("WarmStarts = %d after a sweep over the same workload, want >= 1", wm.WarmStarts)
	}
	cold, cm := run(Config{Workers: 1, DisableWarmStart: true})
	if cm.WarmStarts != 0 {
		t.Errorf("WarmStarts = %d on a warm-start-disabled server, want 0", cm.WarmStarts)
	}
	if !bytes.Equal(warm, cold) {
		t.Errorf("sweep-warm-started result differs from cold result:\n  warm: %s\n  cold: %s", warm, cold)
	}
}

// TestCacheEvictionMetrics fills a 1-entry result cache with two distinct
// jobs and checks the eviction counter and the /metrics series riding on
// it.
func TestCacheEvictionMetrics(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheEntries: 1})
	for _, seed := range []int64{1, 2} {
		st, err := s.Submit(mpeg2Problem(t, seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, st.ID, StateDone)
	}
	m := s.Metrics()
	if m.CacheEvictions != 1 {
		t.Fatalf("CacheEvictions = %d after overflowing a 1-entry cache, want 1", m.CacheEvictions)
	}
	var buf bytes.Buffer
	renderMetrics(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"seadoptd_result_cache_size 1",
		"seadoptd_result_cache_evictions_total 1",
		"seadoptd_sweep_points_total 0",
		"seadoptd_warm_starts_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if err := LintMetrics(buf.Bytes()); err != nil {
		t.Errorf("metrics lint: %v", err)
	}
}
